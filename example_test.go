package blobseer_test

import (
	"context"
	"fmt"
	"io"
	"log"

	"blobseer"
)

// ExampleBlob shows the handle-based write path: create a BLOB, stream
// into it through the write-behind writer, and publish concurrent
// offset writes — each one an immutable snapshot.
func ExampleBlob() {
	cl, err := blobseer.Start(blobseer.Config{DataProviders: 4, BlockSize: 1 << 10})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Stop()
	ctx := context.Background()

	c := cl.NewClient("")
	b, err := c.CreateBlob(ctx, 1<<10, 1)
	if err != nil {
		log.Fatal(err)
	}

	// Stream 3 KB through the shared write-behind engine.
	w := b.NewWriter(ctx, blobseer.WriterOptions{Depth: 2})
	for i := 0; i < 3; i++ {
		if _, err := w.Write(make([]byte, 1<<10)); err != nil {
			log.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}

	// Overwrite the middle block: a new differential snapshot.
	update := make([]byte, 1<<10)
	copy(update, "updated")
	v, err := b.Write(ctx, 1<<10, update)
	if err != nil {
		log.Fatal(err)
	}
	s, err := b.WaitPublished(ctx, v, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("published v%d, size %d\n", s.Version(), s.Size())
	// Output: published v4, size 3072
}

// ExampleSnapshot shows the handle-based read path: pin the latest
// published snapshot once, then read with zero-copy ReadAt into a
// caller-owned buffer — no metadata round-trips per call — while the
// blob keeps moving underneath.
func ExampleSnapshot() {
	cl, err := blobseer.Start(blobseer.Config{DataProviders: 4, BlockSize: 1 << 10})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Stop()
	ctx := context.Background()

	c := cl.NewClient("")
	b, err := c.CreateBlob(ctx, 1<<10, 1)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := b.Append(ctx, []byte("immutable snapshot contents")); err != nil {
		log.Fatal(err)
	}

	s, err := b.Latest(ctx)
	if err != nil {
		log.Fatal(err)
	}
	// New versions published after the pin do not disturb this reader.
	overwrite := make([]byte, s.Size()) // reaches EOF: a legal overwrite
	copy(overwrite, "overwritten!")
	if _, err := b.Write(ctx, 0, overwrite); err != nil {
		log.Fatal(err)
	}

	buf := make([]byte, 9)
	if _, err := s.ReadAt(buf, 10); err != nil && err != io.EOF {
		log.Fatal(err)
	}
	fmt.Printf("v%d bytes [10,19): %q\n", s.Version(), buf)

	// Sequential streaming over the same pin.
	r := s.NewReader(ctx, blobseer.ReaderOptions{Readahead: 2})
	defer r.Close()
	all, err := io.ReadAll(r)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stream: %q\n", all)
	// Output:
	// v1 bytes [10,19): "snapshot "
	// stream: "immutable snapshot contents"
}
