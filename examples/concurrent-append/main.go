// Concurrent-append demonstrates the capability HDFS lacks entirely
// (Section V-F): many clients appending to the *same* file at the same
// time. A fleet of goroutines plays event-log shippers that each append
// block-sized batches of fixed-width records to one shared log — the
// paper's Figure 5 access pattern. BlobSeer's version manager orders
// the appends without locking any data, every record survives, and
// each batch publishes a snapshot a reader can pin.
//
// Alignment matters: a block-aligned append never touches existing
// data, so appenders proceed with full write/write concurrency. (An
// unaligned tail would need a read-modify-write merge, which is only
// safe for a single appender — the same restriction Hadoop's own
// append has.)
package main

import (
	"bufio"
	"context"
	"fmt"
	"log"
	"strings"
	"sync"
	"time"

	"blobseer"
)

const (
	shippers  = 16
	batches   = 8
	blockSize = 4 << 10
	recLen    = 32 // fixed-width records, so a batch is exactly one block
	recsBatch = blockSize / recLen
)

func main() {
	log.SetFlags(0)
	ctx := context.Background()

	cl, err := blobseer.Start(blobseer.Config{
		DataProviders: 8,
		MetaProviders: 2,
		BlockSize:     blockSize,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Stop()

	// Create the shared log once.
	setup, err := cl.NewBSFS("")
	if err != nil {
		log.Fatal(err)
	}
	w, err := setup.Create(ctx, "/logs/events.log", true)
	if err != nil {
		log.Fatal(err)
	}
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}

	// Every shipper gets its own BSFS client and appends batches of
	// records. No shipper coordinates with any other.
	start := time.Now()
	var wg sync.WaitGroup
	var mu sync.Mutex
	var total int64
	for s := 0; s < shippers; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			fsys, err := cl.NewBSFS("")
			if err != nil {
				log.Fatal(err)
			}
			for b := 0; b < batches; b++ {
				a, err := fsys.Append(ctx, "/logs/events.log")
				if err != nil {
					log.Fatal(err)
				}
				n, err := a.Write(batch(s, b))
				if err != nil {
					log.Fatal(err)
				}
				if err := a.Close(); err != nil {
					log.Fatal(err)
				}
				mu.Lock()
				total += int64(n)
				mu.Unlock()
			}
		}(s)
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Verify: every record of every shipper is present exactly once.
	// The verification reader drops to the handle API — pin the latest
	// snapshot once and stream it through the shared readahead engine;
	// shippers still publishing new versions cannot disturb the pin.
	bh, err := setup.OpenBlob(ctx, "/logs/events.log")
	if err != nil {
		log.Fatal(err)
	}
	snap, err := bh.Latest(ctx)
	if err != nil {
		log.Fatal(err)
	}
	r := snap.NewReader(ctx, blobseer.ReaderOptions{Readahead: 2})
	defer r.Close()
	counts := make(map[int]int)
	lines := 0
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		var s, b, rec int
		if _, err := fmt.Sscanf(sc.Text(), "shipper=%d batch=%d rec=%d", &s, &b, &rec); err != nil {
			log.Fatalf("corrupt record %q: %v", sc.Text(), err)
		}
		counts[s]++
		lines++
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	want := shippers * batches * recsBatch
	if lines != want {
		log.Fatalf("lost records: want %d lines, got %d", want, lines)
	}
	for s := 0; s < shippers; s++ {
		if counts[s] != batches*recsBatch {
			log.Fatalf("shipper %d: want %d records, got %d", s, batches*recsBatch, counts[s])
		}
	}

	v, err := setup.Versions(ctx, "/logs/events.log")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d shippers appended %d records (%d bytes) concurrently in %v\n",
		shippers, lines, total, elapsed.Round(time.Millisecond))
	fmt.Printf("aggregated append throughput: %.1f MB/s\n",
		float64(total)/(1<<20)/elapsed.Seconds())
	fmt.Printf("every batch is a snapshot: %d published versions, zero lost records\n", v)
}

// batch renders one block-sized batch of fixed-width records.
func batch(shipper, b int) []byte {
	var sb strings.Builder
	sb.Grow(blockSize)
	for r := 0; r < recsBatch; r++ {
		rec := fmt.Sprintf("shipper=%02d batch=%02d rec=%03d", shipper, b, r)
		sb.WriteString(rec)
		sb.WriteString(strings.Repeat(" ", recLen-1-len(rec)))
		sb.WriteByte('\n')
	}
	return []byte(sb.String())
}
