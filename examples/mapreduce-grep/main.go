// Mapreduce-grep reproduces the paper's headline workload at laptop
// scale: a distributed grep over a shared input file, run twice — once
// with BSFS (BlobSeer) as the storage layer and once with the HDFS-like
// baseline — using the *same unmodified Map/Reduce engine*, exactly how
// the paper swaps storage layers under Hadoop (Section IV). It prints
// both job times and the locality statistics of Section V-E.
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"strings"
	"time"

	"blobseer"
)

const (
	nodes     = 6
	blockSize = 256 << 10 // 256 KB chunks so several splits exist
	inputSize = 6 << 20   // 6 MB of text
	pattern   = "concurrency"
)

func main() {
	log.SetFlags(0)
	for _, backend := range []string{"bsfs", "hdfs"} {
		elapsed, matches, st := runGrep(backend)
		fmt.Printf("%-4s: %d lines matched %q in %v — %d maps (%d local, %d remote)\n",
			backend, matches, pattern, elapsed.Round(time.Millisecond),
			st.MapsTotal, st.LocalMaps, st.RemoteMaps)
	}
}

// runGrep deploys one storage backend plus a co-located Map/Reduce
// engine, generates the input, runs grep, and returns the job time and
// match count.
func runGrep(backend string) (time.Duration, int64, blobseer.JobStatus) {
	ctx := context.Background()

	var fsFor func(host string) (blobseer.FileSystem, error)
	switch backend {
	case "bsfs":
		cl, err := blobseer.Start(blobseer.Config{DataProviders: nodes, BlockSize: blockSize})
		if err != nil {
			log.Fatal(err)
		}
		defer cl.Stop()
		fsFor = func(host string) (blobseer.FileSystem, error) { return cl.NewBSFS(host) }
	case "hdfs":
		h, err := blobseer.StartHDFS(blobseer.HDFSConfig{Datanodes: nodes, BlockSize: blockSize})
		if err != nil {
			log.Fatal(err)
		}
		defer h.Stop()
		fsFor = func(host string) (blobseer.FileSystem, error) { return h.NewFS(host) }
	}

	// Tasktracker i runs on the same synthetic host as storage daemon i:
	// the paper's co-deployment, which is what makes "local maps" exist.
	mr, err := blobseer.StartMapRed(blobseer.MapRedConfig{Trackers: nodes, FSFor: fsFor})
	if err != nil {
		log.Fatal(err)
	}
	defer mr.Stop()

	fsys, err := fsFor("")
	if err != nil {
		log.Fatal(err)
	}
	if err := generateInput(ctx, fsys, "/input/corpus.txt", inputSize); err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	jt := mr.Client()
	jobID, err := jt.Submit(ctx, blobseer.JobConf{
		Name:       "grep",
		App:        blobseer.AppGrep,
		Args:       map[string]string{"pattern": pattern},
		InputPaths: []string{"/input/corpus.txt"},
		OutputDir:  "/out",
		NumReduces: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	st, err := jt.Wait(ctx, jobID, 0)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	if st.State != blobseer.JobSucceeded {
		log.Fatalf("%s job failed: %s", backend, st.Err)
	}

	// The single reducer wrote "pattern\tcount". The Map/Reduce engine
	// is storage-neutral, so read through the portable fs API — except
	// on BSFS, where the handle surface pins the output's snapshot
	// version explicitly (a later pipeline stage could keep reading it
	// even while a re-run overwrites /out).
	var out []byte
	if bs, ok := fsys.(*blobseer.BSFS); ok {
		bh, err := bs.OpenBlob(ctx, "/out/part-r-00000")
		if err != nil {
			log.Fatal(err)
		}
		snap, err := bh.Latest(ctx)
		if err != nil {
			log.Fatal(err)
		}
		out = make([]byte, snap.Size())
		if _, err := snap.ReadAt(out, 0); err != nil && err != io.EOF {
			log.Fatal(err)
		}
	} else {
		r, err := fsys.Open(ctx, "/out/part-r-00000")
		if err != nil {
			log.Fatal(err)
		}
		defer r.Close()
		var err2 error
		out, err2 = io.ReadAll(r)
		if err2 != nil {
			log.Fatal(err2)
		}
	}
	var matches int64
	if _, err := fmt.Sscanf(strings.TrimSpace(string(out)), pattern+"\t%d", &matches); err != nil {
		log.Fatalf("unexpected reducer output %q: %v", out, err)
	}
	return elapsed, matches, st
}

// generateInput writes size bytes of random sentences, like the paper's
// boot-up phase before the grep runs.
func generateInput(ctx context.Context, fsys blobseer.FileSystem, path string, size int) error {
	words := []string{
		"high", "throughput", "under", "heavy", "concurrency", "for",
		"hadoop", "map", "reduce", "applications", "blobseer", "storage",
	}
	w, err := fsys.Create(ctx, path, true)
	if err != nil {
		return err
	}
	var sb strings.Builder
	seed := uint64(42)
	for written := 0; written < size; {
		sb.Reset()
		n := 5 + int(seed%8)
		for i := 0; i < n; i++ {
			seed = seed*6364136223846793005 + 1442695040888963407
			sb.WriteString(words[seed%uint64(len(words))])
			if i < n-1 {
				sb.WriteByte(' ')
			}
		}
		sb.WriteByte('\n')
		c, err := io.WriteString(w, sb.String())
		if err != nil {
			w.Close()
			return err
		}
		written += c
	}
	return w.Close()
}
