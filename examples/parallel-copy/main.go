// Parallel-copy demonstrates Section V-F's motivating example: copying
// a large distributed file "in parallel by multiple clients which read
// different parts of the file, then concurrently append the data to
// the destination file". It copies the same file twice — once through
// a conventional single reader/writer stream, once with BlobSeer's
// concurrent offset writers — verifies both copies bit for bit, and
// prints the speed ratio. On HDFS this parallel copy is impossible by
// construction: a file has exactly one writer.
package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"log"
	"sync"
	"time"

	"blobseer"
)

const (
	blockSize = 64 << 10
	fileSize  = 256 * blockSize // 16 MB
	workers   = 8
)

func main() {
	log.SetFlags(0)
	ctx := context.Background()

	cl, err := blobseer.Start(blobseer.Config{
		DataProviders: 8,
		MetaProviders: 2,
		BlockSize:     blockSize,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Stop()
	fsys, err := cl.NewBSFS("")
	if err != nil {
		log.Fatal(err)
	}

	// The source: fileSize bytes of a repeating pattern.
	pattern := []byte("blobseer brings high throughput under heavy concurrency ")
	w, err := fsys.Create(ctx, "/data/source", true)
	if err != nil {
		log.Fatal(err)
	}
	written := 0
	for written < fileSize {
		n := len(pattern)
		if written+n > fileSize {
			n = fileSize - written
		}
		c, err := w.Write(pattern[:n])
		if err != nil {
			log.Fatal(err)
		}
		written += c
	}
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("source: %d MB across %d blocks on %d providers\n",
		fileSize>>20, fileSize/blockSize, len(cl.ProviderAddrs))

	// Serial copy: one stream does everything.
	serialStart := time.Now()
	src, err := fsys.Open(ctx, "/data/source")
	if err != nil {
		log.Fatal(err)
	}
	dst, err := fsys.Create(ctx, "/data/copy-serial", true)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := io.Copy(dst, src); err != nil {
		log.Fatal(err)
	}
	if err := dst.Close(); err != nil {
		log.Fatal(err)
	}
	src.Close()
	serial := time.Since(serialStart)

	// Parallel copy: `workers` uncoordinated writers, each writing its
	// range at a fixed offset — every write is an independent snapshot,
	// serialized only at version assignment.
	parallelStart := time.Now()
	if err := fsys.ParallelCopy(ctx, "/data/source", "/data/copy-parallel", workers); err != nil {
		log.Fatal(err)
	}
	parallel := time.Since(parallelStart)

	// Verify both copies through the handle API: pin each copy's latest
	// snapshot once, then let the same `workers` goroutines check
	// disjoint ranges with zero-copy ReadAt into slices of one shared
	// buffer — concurrent random-access reads with no per-call metadata
	// round-trips, the read-side mirror of the parallel write path.
	for _, path := range []string{"/data/copy-serial", "/data/copy-parallel"} {
		bh, err := fsys.OpenBlob(ctx, path)
		if err != nil {
			log.Fatal(err)
		}
		snap, err := bh.Latest(ctx)
		if err != nil {
			log.Fatal(err)
		}
		if snap.Size() != fileSize {
			log.Fatalf("%s: %d bytes, want %d", path, snap.Size(), fileSize)
		}
		data := make([]byte, fileSize)
		var vg sync.WaitGroup
		per := (fileSize + workers - 1) / workers
		for w := 0; w < workers; w++ {
			off := w * per
			if off >= fileSize {
				break
			}
			end := min(off+per, fileSize)
			vg.Add(1)
			go func(off, end int) {
				defer vg.Done()
				if _, err := snap.ReadAt(data[off:end], int64(off)); err != nil && err != io.EOF {
					log.Fatalf("%s: read [%d,%d): %v", path, off, end, err)
				}
			}(off, end)
		}
		vg.Wait()
		for off := 0; off < fileSize; off += len(pattern) {
			end := min(off+len(pattern), fileSize)
			if !bytes.Equal(data[off:end], pattern[:end-off]) {
				log.Fatalf("%s: corruption at offset %d", path, off)
			}
		}
	}

	fmt.Printf("serial copy:   %8v (1 stream)\n", serial.Round(time.Millisecond))
	fmt.Printf("parallel copy: %8v (%d concurrent offset writers)\n", parallel.Round(time.Millisecond), workers)
	fmt.Printf("speedup: %.1fx — both copies verified bit for bit\n", float64(serial)/float64(parallel))
	fmt.Println("(HDFS cannot run the parallel version at all: one writer per file)")
}
