// Versioned-branching replays the exact BLOB lifecycle of the paper's
// Figure 1 against a live deployment — append four blocks, overwrite
// the middle two, append one more — and shows what Section VI-A
// promises versioning buys a Map/Reduce workflow: every snapshot stays
// readable while new versions are produced, so a pipeline stage can
// rewrite part of a dataset while another stage still consumes the
// original, with only the differential patch stored.
//
// It drives the handle-based client API: one Blob handle owns the
// writes, and each version is pinned once as a Snapshot whose
// ReadAt fills caller-owned buffers with zero metadata round-trips.
package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"log"

	"blobseer"
)

const blockSize = 64 << 10 // the paper's 64 MB, laptop-sized

// block builds one full block filled with a label byte.
func block(label byte) []byte { return bytes.Repeat([]byte{label}, blockSize) }

// summarize renders a snapshot as one letter per block, reading
// through the pinned handle into a reused buffer.
func summarize(s *blobseer.Snapshot, buf []byte) string {
	buf = buf[:s.Size()]
	if _, err := s.ReadAt(buf, 0); err != nil && err != io.EOF {
		log.Fatal(err)
	}
	var out []byte
	for off := 0; off < len(buf); off += blockSize {
		out = append(out, buf[off])
	}
	return string(out)
}

func main() {
	log.SetFlags(0)
	ctx := context.Background()

	cl, err := blobseer.Start(blobseer.Config{DataProviders: 6, BlockSize: blockSize})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Stop()

	// The low-level BLOB API: this is the layer below BSFS. CreateBlob
	// returns a handle that pins the blob's static metadata once.
	client := cl.NewClient("")
	b, err := client.CreateBlob(ctx, blockSize, 1)
	if err != nil {
		log.Fatal(err)
	}

	// Figure 1(a): append the first four blocks to an empty BLOB.
	v1, err := b.Append(ctx,
		bytes.Join([][]byte{block('A'), block('B'), block('C'), block('D')}, nil))
	if err != nil {
		log.Fatal(err)
	}

	// Figure 1(b): overwrite the second and third block — a write at a
	// random offset, which HDFS forbids outright.
	v2, err := b.Write(ctx, blockSize,
		bytes.Join([][]byte{block('x'), block('y')}, nil))
	if err != nil {
		log.Fatal(err)
	}

	// Figure 1(c): append one more block.
	v3, err := b.Append(ctx, block('E'))
	if err != nil {
		log.Fatal(err)
	}

	// Every snapshot remains readable: the "branch" a slow pipeline
	// stage pinned at v1 still sees is byte-identical to the original.
	// Snapshot pins (version, size) once — no VersionInfo round-trip
	// per read, and ReadAt reuses one caller-owned buffer throughout.
	buf := make([]byte, 5*blockSize)
	for _, v := range []blobseer.Version{v1, v2, v3} {
		s, err := b.Snapshot(ctx, v)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("snapshot v%d: blocks [%s] (%d bytes)\n", s.Version(), summarize(s, buf), s.Size())
	}

	// Only differential patches were stored: 4 + 2 + 1 blocks, not
	// 4 + 4 + 5 — count what the providers actually hold.
	var blocks int
	for _, addr := range cl.ProviderAddrs {
		st := cl.ProviderService(addr).Store().Stats()
		blocks += int(st.Items)
	}
	fmt.Printf("providers store %d blocks for 3 snapshots spanning %d logical blocks\n", blocks, 4+4+5)

	// A stage that went wrong is undone by branching from an old
	// snapshot: re-write the original middle blocks on top of v3,
	// reading them straight out of the pinned v1 snapshot.
	s1, err := b.Snapshot(ctx, v1)
	if err != nil {
		log.Fatal(err)
	}
	orig := make([]byte, 2*blockSize)
	if _, err := s1.ReadAt(orig, blockSize); err != nil && err != io.EOF {
		log.Fatal(err)
	}
	v4, err := b.Write(ctx, blockSize, orig)
	if err != nil {
		log.Fatal(err)
	}
	s4, err := b.WaitPublished(ctx, v4, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rollback  v%d: blocks [%s] — middle blocks restored from v%d\n", s4.Version(), summarize(s4, buf), v1)

	// Finally, reclaim history: garbage-collect everything below the
	// rollback snapshot. The sweep is differential-aware — blocks the
	// kept snapshot still reads through shared subtrees survive.
	st, err := client.GC(ctx, b.ID(), v4)
	if err != nil {
		log.Fatal(err)
	}
	blocksAfter := 0
	for _, addr := range cl.ProviderAddrs {
		blocksAfter += int(cl.ProviderService(addr).Store().Stats().Items)
	}
	fmt.Printf("gc below v%d: freed %d tree nodes and %d block replicas; providers now hold %d blocks\n",
		v4, st.NodesFreed, st.BlocksFreed, blocksAfter)
	if _, err := b.Snapshot(ctx, v1); err != nil {
		fmt.Printf("pinning pruned v%d now fails as specified: %v\n", v1, err)
	} else if _, err := client.Read(ctx, b.ID(), v1, 0, blockSize); err != nil {
		fmt.Printf("reading pruned v%d now fails as specified: %v\n", v1, err)
	}
	if got := summarize(s4, buf); got != "ABCDE" {
		log.Fatalf("kept snapshot must survive GC intact: %q", got)
	}
	fmt.Printf("kept      v%d: blocks [%s] — intact after garbage collection\n", v4, summarize(s4, buf))
}
