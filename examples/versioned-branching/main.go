// Versioned-branching replays the exact BLOB lifecycle of the paper's
// Figure 1 against a live deployment — append four blocks, overwrite
// the middle two, append one more — and shows what Section VI-A
// promises versioning buys a Map/Reduce workflow: every snapshot stays
// readable while new versions are produced, so a pipeline stage can
// rewrite part of a dataset while another stage still consumes the
// original, with only the differential patch stored.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"

	"blobseer"
)

const blockSize = 64 << 10 // the paper's 64 MB, laptop-sized

// block builds one full block filled with a label byte.
func block(label byte) []byte { return bytes.Repeat([]byte{label}, blockSize) }

// summarize renders a snapshot as one letter per block.
func summarize(data []byte) string {
	var out []byte
	for off := 0; off < len(data); off += blockSize {
		out = append(out, data[off])
	}
	return string(out)
}

func main() {
	log.SetFlags(0)
	ctx := context.Background()

	cl, err := blobseer.Start(blobseer.Config{DataProviders: 6, BlockSize: blockSize})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Stop()

	// The low-level BLOB API: this is the layer below BSFS.
	client := cl.NewClient("")
	meta, err := client.Create(ctx, blockSize, 1)
	if err != nil {
		log.Fatal(err)
	}

	// Figure 1(a): append the first four blocks to an empty BLOB.
	v1, err := client.Append(ctx, meta.ID,
		bytes.Join([][]byte{block('A'), block('B'), block('C'), block('D')}, nil))
	if err != nil {
		log.Fatal(err)
	}

	// Figure 1(b): overwrite the second and third block — a write at a
	// random offset, which HDFS forbids outright.
	v2, err := client.Write(ctx, meta.ID, blockSize,
		bytes.Join([][]byte{block('x'), block('y')}, nil))
	if err != nil {
		log.Fatal(err)
	}

	// Figure 1(c): append one more block.
	v3, err := client.Append(ctx, meta.ID, block('E'))
	if err != nil {
		log.Fatal(err)
	}

	// Every snapshot remains readable: the "branch" a slow pipeline
	// stage pinned at v1 still sees is byte-identical to the original.
	for _, v := range []blobseer.Version{v1, v2, v3} {
		d, err := client.VM().VersionInfo(ctx, meta.ID, v)
		if err != nil {
			log.Fatal(err)
		}
		data, err := client.Read(ctx, meta.ID, v, 0, d.SizeAfter)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("snapshot v%d: blocks [%s] (%d bytes)\n", v, summarize(data), len(data))
	}

	// Only differential patches were stored: 4 + 2 + 1 blocks, not
	// 4 + 4 + 5 — count what the providers actually hold.
	var blocks int
	for _, addr := range cl.ProviderAddrs {
		st := cl.ProviderService(addr).Store().Stats()
		blocks += int(st.Items)
	}
	fmt.Printf("providers store %d blocks for 3 snapshots spanning %d logical blocks\n", blocks, 4+4+5)

	// A stage that went wrong is undone by branching from an old
	// snapshot: re-append the original middle blocks on top of v3.
	orig, err := client.Read(ctx, meta.ID, v1, blockSize, 2*blockSize)
	if err != nil {
		log.Fatal(err)
	}
	v4, err := client.Write(ctx, meta.ID, blockSize, orig)
	if err != nil {
		log.Fatal(err)
	}
	d, err := client.VM().VersionInfo(ctx, meta.ID, v4)
	if err != nil {
		log.Fatal(err)
	}
	data, err := client.Read(ctx, meta.ID, v4, 0, d.SizeAfter)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rollback  v%d: blocks [%s] — middle blocks restored from v%d\n", v4, summarize(data), v1)

	// Finally, reclaim history: garbage-collect everything below the
	// rollback snapshot. The sweep is differential-aware — blocks the
	// kept snapshot still reads through shared subtrees survive.
	st, err := client.GC(ctx, meta.ID, v4)
	if err != nil {
		log.Fatal(err)
	}
	blocksAfter := 0
	for _, addr := range cl.ProviderAddrs {
		blocksAfter += int(cl.ProviderService(addr).Store().Stats().Items)
	}
	fmt.Printf("gc below v%d: freed %d tree nodes and %d block replicas; providers now hold %d blocks\n",
		v4, st.NodesFreed, st.BlocksFreed, blocksAfter)
	if _, err := client.Read(ctx, meta.ID, v1, 0, blockSize); err != nil {
		fmt.Printf("reading pruned v%d now fails as specified: %v\n", v1, err)
	}
	data, err = client.Read(ctx, meta.ID, v4, 0, d.SizeAfter)
	if err != nil || summarize(data) != "ABCDE" {
		log.Fatalf("kept snapshot must survive GC intact: %q, %v", summarize(data), err)
	}
	fmt.Printf("kept      v%d: blocks [%s] — intact after garbage collection\n", v4, summarize(data))
}
