// Quickstart walks the whole BlobSeer stack in one process: it deploys
// every daemon of the paper's Figure 2 (version manager, provider
// manager, namespace manager, data providers, metadata providers),
// then exercises the BSFS file-system API — create, read, append,
// snapshot versioning and block-location queries.
package main

import (
	"context"
	"fmt"
	"io"
	"log"

	"blobseer"
)

func main() {
	log.SetFlags(0)
	ctx := context.Background()

	// 1. Deploy: 4 data providers, 2 metadata providers, 1 MB blocks.
	cl, err := blobseer.Start(blobseer.Config{
		DataProviders: 4,
		MetaProviders: 2,
		BlockSize:     1 << 20,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Stop()
	fmt.Printf("deployed BlobSeer: %d data providers, %d metadata providers\n",
		len(cl.ProviderAddrs), len(cl.MetaAddrs))

	// 2. A BSFS client (host "" = not co-located with any provider).
	fsys, err := cl.NewBSFS("")
	if err != nil {
		log.Fatal(err)
	}

	// 3. Create a file and write to it.
	w, err := fsys.Create(ctx, "/demo/hello.txt", true)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := io.WriteString(w, "BLOBs are huge flat byte sequences.\n"); err != nil {
		log.Fatal(err)
	}
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}

	// 4. Append — each write/append publishes a new immutable snapshot.
	a, err := fsys.Append(ctx, "/demo/hello.txt")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := io.WriteString(a, "Appends are lock-free and fully concurrent.\n"); err != nil {
		log.Fatal(err)
	}
	if err := a.Close(); err != nil {
		log.Fatal(err)
	}

	// 5. Read the latest snapshot.
	r, err := fsys.Open(ctx, "/demo/hello.txt")
	if err != nil {
		log.Fatal(err)
	}
	latest, err := io.ReadAll(r)
	r.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("latest contents:\n%s", latest)

	// 6. Time travel: version 1 is the file before the append — HDFS
	// has nothing like this (Section VI-A).
	v, err := fsys.Versions(ctx, "/demo/hello.txt")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("published versions: %d\n", v)
	old, err := fsys.OpenVersion(ctx, "/demo/hello.txt", 1)
	if err != nil {
		log.Fatal(err)
	}
	first, err := io.ReadAll(old)
	old.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("snapshot v1:\n%s", first)

	// 7. Where do the blocks live? (what Hadoop's scheduler asks)
	st, err := fsys.Stat(ctx, "/demo/hello.txt")
	if err != nil {
		log.Fatal(err)
	}
	locs, err := fsys.Locations(ctx, "/demo/hello.txt", 0, st.Size)
	if err != nil {
		log.Fatal(err)
	}
	for _, l := range locs {
		fmt.Printf("block [%d, +%d) on %v\n", l.Off, l.Len, l.Hosts)
	}

	// 8. Drop below the file API: OpenBlob resolves the path to its
	// BLOB handle, and one pinned Snapshot serves random-access ReadAt
	// into caller-owned buffers with no per-call metadata round-trips —
	// the surface the streaming readers above are built on.
	bh, err := fsys.OpenBlob(ctx, "/demo/hello.txt")
	if err != nil {
		log.Fatal(err)
	}
	snap, err := bh.Latest(ctx)
	if err != nil {
		log.Fatal(err)
	}
	word := make([]byte, 4)
	if _, err := snap.ReadAt(word, 0); err != nil && err != io.EOF {
		log.Fatal(err)
	}
	fmt.Printf("handle API: snapshot v%d holds %d bytes; bytes [0,4) = %q\n",
		snap.Version(), snap.Size(), word)
}
