module blobseer

go 1.24
