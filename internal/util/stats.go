package util

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Percentile returns the p-th percentile (0..100) of xs using
// nearest-rank on a sorted copy.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	if p <= 0 {
		return cp[0]
	}
	if p >= 100 {
		return cp[len(cp)-1]
	}
	rank := int(math.Ceil(p / 100 * float64(len(cp))))
	if rank < 1 {
		rank = 1
	}
	return cp[rank-1]
}

// ManhattanDistance computes the paper's load-balance metric
// (Section V-D): the L1 distance between a storage layout vector
// (blocks stored per node) and the ideally balanced vector where every
// node stores total/len(counts) blocks. This is the quantity plotted in
// Figure 3(b) as the "degree of unbalance".
func ManhattanDistance(counts []int) float64 {
	if len(counts) == 0 {
		return 0
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	ideal := float64(total) / float64(len(counts))
	var d float64
	for _, c := range counts {
		d += math.Abs(float64(c) - ideal)
	}
	return d
}
