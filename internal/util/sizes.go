// Package util provides small shared helpers: byte-size constants and
// formatting, summary statistics, and deterministic RNG plumbing used
// across the BlobSeer reproduction.
package util

import "fmt"

// Byte size constants. The paper's experiments use 64 MB blocks (the
// HDFS chunk size) and 4 KB fine-grain reads.
const (
	KB int64 = 1 << 10
	MB int64 = 1 << 20
	GB int64 = 1 << 30
	TB int64 = 1 << 40
)

// FormatBytes renders n as a human-readable base-2 size ("64.0MB").
func FormatBytes(n int64) string {
	switch {
	case n >= TB:
		return fmt.Sprintf("%.1fTB", float64(n)/float64(TB))
	case n >= GB:
		return fmt.Sprintf("%.1fGB", float64(n)/float64(GB))
	case n >= MB:
		return fmt.Sprintf("%.1fMB", float64(n)/float64(MB))
	case n >= KB:
		return fmt.Sprintf("%.1fKB", float64(n)/float64(KB))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// CeilDiv returns ceil(a/b) for positive b.
func CeilDiv(a, b int64) int64 {
	if b <= 0 {
		panic("util: CeilDiv with non-positive divisor")
	}
	if a <= 0 {
		return 0
	}
	return (a + b - 1) / b
}

// NextPow2 returns the smallest power of two >= n (and >= 1).
func NextPow2(n int64) int64 {
	if n <= 1 {
		return 1
	}
	p := int64(1)
	for p < n {
		p <<= 1
	}
	return p
}

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int64) bool { return n > 0 && n&(n-1) == 0 }

// Min returns the smaller of a and b.
func Min(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// Max returns the larger of a and b.
func Max(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
