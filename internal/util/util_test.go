package util

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFormatBytes(t *testing.T) {
	cases := []struct {
		in   int64
		want string
	}{
		{0, "0B"},
		{512, "512B"},
		{KB, "1.0KB"},
		{64 * MB, "64.0MB"},
		{3 * GB / 2, "1.5GB"},
		{2 * TB, "2.0TB"},
	}
	for _, c := range cases {
		if got := FormatBytes(c.in); got != c.want {
			t.Errorf("FormatBytes(%d) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestCeilDiv(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{0, 4, 0},
		{1, 4, 1},
		{4, 4, 1},
		{5, 4, 2},
		{-3, 4, 0},
		{64 * MB, 64 * MB, 1},
		{64*MB + 1, 64 * MB, 2},
	}
	for _, c := range cases {
		if got := CeilDiv(c.a, c.b); got != c.want {
			t.Errorf("CeilDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCeilDivPanicsOnBadDivisor(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero divisor")
		}
	}()
	CeilDiv(1, 0)
}

func TestNextPow2(t *testing.T) {
	cases := []struct{ in, want int64 }{
		{-5, 1}, {0, 1}, {1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {246, 256}, {1 << 20, 1 << 20},
	}
	for _, c := range cases {
		if got := NextPow2(c.in); got != c.want {
			t.Errorf("NextPow2(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestNextPow2Property(t *testing.T) {
	f := func(n uint16) bool {
		v := NextPow2(int64(n))
		return IsPow2(v) && v >= int64(n) && (v == 1 || v/2 < int64(n) || int64(n) <= 1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIsPow2(t *testing.T) {
	for _, n := range []int64{1, 2, 4, 8, 1 << 30} {
		if !IsPow2(n) {
			t.Errorf("IsPow2(%d) = false, want true", n)
		}
	}
	for _, n := range []int64{0, -1, 3, 6, 12, 1<<30 + 1} {
		if IsPow2(n) {
			t.Errorf("IsPow2(%d) = true, want false", n)
		}
	}
}

func TestMinMax(t *testing.T) {
	if Min(3, 5) != 3 || Min(5, 3) != 3 {
		t.Error("Min broken")
	}
	if Max(3, 5) != 5 || Max(5, 3) != 5 {
		t.Error("Max broken")
	}
}

func TestMeanStdDev(t *testing.T) {
	if m := Mean(nil); m != 0 {
		t.Errorf("Mean(nil) = %v", m)
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("Mean = %v, want 5", m)
	}
	if sd := StdDev(xs); math.Abs(sd-2) > 1e-12 {
		t.Errorf("StdDev = %v, want 2", sd)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if p := Percentile(xs, 0); p != 1 {
		t.Errorf("p0 = %v", p)
	}
	if p := Percentile(xs, 100); p != 5 {
		t.Errorf("p100 = %v", p)
	}
	if p := Percentile(xs, 50); p != 3 {
		t.Errorf("p50 = %v", p)
	}
	if p := Percentile(nil, 50); p != 0 {
		t.Errorf("empty percentile = %v", p)
	}
	// Input must not be mutated.
	if xs[0] != 5 {
		t.Error("Percentile mutated its input")
	}
}

func TestManhattanDistance(t *testing.T) {
	// Perfectly balanced layout has distance 0.
	if d := ManhattanDistance([]int{3, 3, 3, 3}); d != 0 {
		t.Errorf("balanced distance = %v", d)
	}
	// The paper's example shape: all chunks clustered on few nodes.
	// 4 blocks all on node 0 of 4 nodes: ideal = 1 each;
	// |4-1| + 3*|0-1| = 6.
	if d := ManhattanDistance([]int{4, 0, 0, 0}); d != 6 {
		t.Errorf("clustered distance = %v, want 6", d)
	}
	if d := ManhattanDistance(nil); d != 0 {
		t.Errorf("empty distance = %v", d)
	}
}

func TestManhattanDistanceProperty(t *testing.T) {
	// Distance is invariant under permutation and zero iff balanced.
	f := func(a, b, c, d uint8) bool {
		v1 := []int{int(a), int(b), int(c), int(d)}
		v2 := []int{int(d), int(c), int(b), int(a)}
		return math.Abs(ManhattanDistance(v1)-ManhattanDistance(v2)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSplitMix64Deterministic(t *testing.T) {
	a, b := NewSplitMix64(42), NewSplitMix64(42)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewSplitMix64(43)
	same := true
	a = NewSplitMix64(42)
	for i := 0; i < 10; i++ {
		if a.Next() != c.Next() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestSplitMix64Bounds(t *testing.T) {
	r := NewSplitMix64(7)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(10); v < 0 || v >= 10 {
			t.Fatalf("Intn out of bounds: %d", v)
		}
		if v := r.Int63n(1 << 40); v < 0 || v >= 1<<40 {
			t.Fatalf("Int63n out of bounds: %d", v)
		}
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of bounds: %v", f)
		}
	}
}

func TestSplitMix64Perm(t *testing.T) {
	r := NewSplitMix64(1)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}
