package util

// SplitMix64 is a tiny, fast, deterministic PRNG used where the
// reproduction needs seedable randomness without pulling in math/rand
// state (block nonces in tests, synthetic workload generation, the
// simulator). The zero value is a valid generator seeded with 0.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a generator seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 { return &SplitMix64{state: seed} }

// Next returns the next 64-bit value in the sequence.
func (s *SplitMix64) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a value in [0, n). It panics if n <= 0.
func (s *SplitMix64) Intn(n int) int {
	if n <= 0 {
		panic("util: Intn with non-positive bound")
	}
	return int(s.Next() % uint64(n))
}

// Int63n returns a value in [0, n). It panics if n <= 0.
func (s *SplitMix64) Int63n(n int64) int64 {
	if n <= 0 {
		panic("util: Int63n with non-positive bound")
	}
	return int64(s.Next() % uint64(n))
}

// Float64 returns a value in [0, 1).
func (s *SplitMix64) Float64() float64 {
	return float64(s.Next()>>11) / float64(1<<53)
}

// Perm returns a pseudo-random permutation of [0, n).
func (s *SplitMix64) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := s.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}
