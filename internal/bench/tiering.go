package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"blobseer/internal/store"
	"blobseer/internal/util"
)

// Tiered-store ablation for BENCH_tiering.json, run on REAL stores (the
// tiering win is a property of the implementation, like the WAL group
// commit — not something the fluid simulator should assert). Four arms:
//
//	fs-hot          plain FSStore reads: the single-tier baseline
//	tiered-hot      Tiered(fs, fs) with everything hot: the engine's
//	                read-path overhead must stay within a few percent
//	                of the plain backend (acceptance: >= 90%)
//	tiered-cold     after DemoteNow moved every block cold: each read
//	                pays the cold tier + promotion exactly once, and
//	                every byte must come back intact (readable == 1.0)
//	tiered-promoted re-reads after promotion: back at the hot rate
//
// Each arm reads the full block set `rounds` times; the report keeps
// the per-round series and the best-of summary ratios (best-of damps
// scheduler noise on shared CI machines).

// blockFill returns block i's deterministic payload, so the cold arm
// can verify promotion returns the exact bytes that were written.
func blockFill(i, size int) []byte {
	pat := []byte(fmt.Sprintf("tier-block-%d|", i))
	return bytes.Repeat(pat, size/len(pat)+1)[:size]
}

// readAll reads every block once and returns the aggregate throughput
// in MB/s, plus how many blocks came back bit-exact.
func readAll(st store.Store, blocks, size int) (mbps float64, intact int, err error) {
	start := time.Now()
	for i := 0; i < blocks; i++ {
		val, err := st.Get(fmt.Sprintf("b%08d", i))
		if err != nil {
			return 0, intact, fmt.Errorf("read block %d: %w", i, err)
		}
		if bytes.Equal(val, blockFill(i, size)) {
			intact++
		}
	}
	elapsed := time.Since(start).Seconds()
	return float64(blocks*size) / float64(util.MB) / elapsed, intact, nil
}

func fillStore(st store.Store, blocks, size int) error {
	for i := 0; i < blocks; i++ {
		if err := st.Put(fmt.Sprintf("b%08d", i), blockFill(i, size)); err != nil {
			return err
		}
	}
	return nil
}

// TieringBench is the BENCH_tiering.json document.
type TieringBench struct {
	// Throughput holds one read-MB/s series per arm, X = round.
	Throughput []Series `json:"throughput"`
	// HotRatio is best tiered-hot MB/s over best fs-hot MB/s — the
	// tiered engine's hot-path overhead (acceptance: >= 0.9).
	HotRatio float64 `json:"hot_ratio"`
	// Readable is the fraction of demoted blocks whose post-demotion
	// read returned bit-exact data via promotion (must be 1.0).
	Readable float64 `json:"readable"`
	// PromotedRatio is best promoted-re-read MB/s over best fs-hot
	// MB/s: promotion restores the hot path.
	PromotedRatio float64 `json:"promoted_ratio"`
	Blocks        int     `json:"blocks"`
	BlockBytes    int     `json:"block_bytes"`
	Demotions     int64   `json:"demotions"`
	Promotions    int64   `json:"promotions"`
}

func best(s Series) float64 {
	m := 0.0
	for _, p := range s.Points {
		if p.Y > m {
			m = p.Y
		}
	}
	return m
}

// AblationTiering measures the four arms over blocks x size bytes with
// `rounds` read passes per arm.
func AblationTiering(blocks, size, rounds int) (TieringBench, error) {
	r := TieringBench{Blocks: blocks, BlockBytes: size}

	// Arm 1 store: plain fs baseline.
	fsDir, err := os.MkdirTemp("", "bench-tier-fs-*")
	if err != nil {
		return r, err
	}
	defer os.RemoveAll(fsDir)
	fsStore, err := store.NewFSStore(fsDir, false)
	if err != nil {
		return r, err
	}
	defer fsStore.Close()

	// Arms 2-4 store: the tiered engine over two fs backends.
	hotDir, err := os.MkdirTemp("", "bench-tier-hot-*")
	if err != nil {
		return r, err
	}
	defer os.RemoveAll(hotDir)
	coldDir, err := os.MkdirTemp("", "bench-tier-cold-*")
	if err != nil {
		return r, err
	}
	defer os.RemoveAll(coldDir)
	hot, err := store.NewFSStore(hotDir, false)
	if err != nil {
		return r, err
	}
	cold, err := store.NewFSStore(coldDir, false)
	if err != nil {
		hot.Close()
		return r, err
	}
	ti := store.NewTiered(hot, cold, store.TierOptions{})
	defer ti.Close()

	// Fill both stores, then warm both with one untimed pass, THEN run
	// the timed rounds interleaved arm-by-arm: dirty-page writeback, GC
	// pauses and scheduler noise hit both arms equally instead of
	// landing on whichever arm happens to run last.
	if err := fillStore(fsStore, blocks, size); err != nil {
		return r, err
	}
	if err := fillStore(ti, blocks, size); err != nil {
		return r, err
	}
	if _, _, err := readAll(fsStore, blocks, size); err != nil {
		return r, err
	}
	if _, _, err := readAll(ti, blocks, size); err != nil {
		return r, err
	}
	fsHot := Series{Name: "fs-hot", XLabel: "round", YLabel: "read MB/s"}
	tieredHot := Series{Name: "tiered-hot", XLabel: "round", YLabel: "read MB/s"}
	for round := 0; round < rounds; round++ {
		mbps, _, err := readAll(fsStore, blocks, size)
		if err != nil {
			return r, err
		}
		fsHot.Points = append(fsHot.Points, Point{X: float64(round), Y: mbps})
		mbps, _, err = readAll(ti, blocks, size)
		if err != nil {
			return r, err
		}
		tieredHot.Points = append(tieredHot.Points, Point{X: float64(round), Y: mbps})
	}

	// Demote everything, then read it all back: promotion must return
	// every byte.
	demoted, err := ti.DemoteNow()
	if err != nil {
		return r, err
	}
	if demoted != blocks {
		return r, fmt.Errorf("demoted %d of %d blocks", demoted, blocks)
	}
	if hs, _ := ti.TierStats(); hs.Items != 0 {
		return r, fmt.Errorf("hot tier still holds %d blocks after demote-all", hs.Items)
	}
	tieredCold := Series{Name: "tiered-cold", XLabel: "round", YLabel: "read MB/s"}
	mbps, intact, err := readAll(ti, blocks, size)
	if err != nil {
		return r, err
	}
	tieredCold.Points = append(tieredCold.Points, Point{X: 0, Y: mbps})
	r.Readable = float64(intact) / float64(blocks)

	tieredProm := Series{Name: "tiered-promoted", XLabel: "round", YLabel: "read MB/s"}
	for round := 0; round < rounds; round++ {
		mbps, _, err := readAll(ti, blocks, size)
		if err != nil {
			return r, err
		}
		tieredProm.Points = append(tieredProm.Points, Point{X: float64(round), Y: mbps})
	}

	c := ti.Counters()
	r.Demotions = c.Demotions
	r.Promotions = c.Promotions
	r.Throughput = []Series{fsHot, tieredHot, tieredCold, tieredProm}
	if b := best(fsHot); b > 0 {
		r.HotRatio = best(tieredHot) / b
		r.PromotedRatio = best(tieredProm) / b
	}
	return r, nil
}

// TieringBenchRun runs the ablation at report scale; quick shrinks it
// for CI smoke runs.
func TieringBenchRun(quick bool) (TieringBench, error) {
	blocks, size, rounds := 64, int(util.MB), 5
	if quick {
		blocks, size, rounds = 32, 256*int(util.KB), 5
	}
	return AblationTiering(blocks, size, rounds)
}

// Check validates the acceptance properties the ablation pins: every
// demoted block readable via promotion, and the tiered hot path within
// 10% of the plain fs backend.
func (r TieringBench) Check() error {
	if r.Readable < 1.0 {
		return fmt.Errorf("only %.2f of demoted blocks readable after demotion", r.Readable)
	}
	if r.HotRatio < 0.9 {
		return fmt.Errorf("tiered hot-path throughput is %.2fx the plain fs backend, want >= 0.9", r.HotRatio)
	}
	return nil
}

// WriteJSON writes the report to path, indented for diffability.
func (r TieringBench) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
