package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"blobseer/internal/blob"
	"blobseer/internal/placement"
	"blobseer/internal/sim"
	"blobseer/internal/simnet"
	"blobseer/internal/simstore"
	"blobseer/internal/util"
	"blobseer/internal/vmanager"
	"blobseer/internal/wal"
)

// Control-plane scaling experiments for BENCH_vmshard.json: how far the
// two mechanisms that attack the version manager's serialization point
// (Section III-A4) actually go.
//
//  1. Sharding: with K independent version-manager shards, writers to
//     blobs owned by different shards never share a service queue, so
//     aggregate publication throughput should scale ~linearly in K
//     until something else (the data path) becomes the floor.
//  2. WAL group commit: under every-record fsync, concurrent publishers
//     coalesce into shared fsyncs, so aggregate durable publish rate
//     *rises* with writer count instead of staying flat at 1/fsync.
//
// The sharding arm runs on the simulator, where the version manager's
// per-op service time is the modeled bottleneck (the same calibration
// AblationVMService sweeps): that isolates the queueing effect of K from
// disk-speed noise. The group-commit arm runs on the real WAL, because
// fsync coalescing is a wall-clock property of the implementation.

// vmshardBlock keeps the publish loop control-plane-bound: the property
// under test is the version-assignment queue, not data bandwidth.
const vmshardBlock = 64 * util.KB

// AblationVMShards measures aggregate publish throughput with the
// control plane split into K shards, each writer appending to its own
// blob (the Map/Reduce output pattern: many files, many writers).
// Blob IDs spread over shards by id % K, exactly the Router's rule.
func AblationVMShards(writers, versions int, shardCounts []int) []Series {
	s := Series{Name: "sharded-vm", XLabel: "shards", YLabel: "publishes/sec"}
	for _, k := range shardCounts {
		tun := simstore.DefaultTuning()
		tun.VMShards = k
		env := sim.NewEnv()
		net := simnet.New(env, simnet.Grid5000(fabricNodes))
		vmNode, metas, provs := bsfsTopology()
		b := simstore.NewBSFS(net, tun, placement.NewRoundRobin(), vmNode, metas, provs)
		blobs := make([]blob.Meta, writers)
		for i := range blobs {
			blobs[i] = b.CreateBlob(vmshardBlock, 1)
		}
		var last sim.Time
		for i := 0; i < writers; i++ {
			i := i
			client := provs[(i*7+len(provs)/2)%len(provs)]
			b.Env.Go(func(p *sim.Proc) {
				for v := 0; v < versions; v++ {
					if _, err := b.Write(p, client, blobs[i].ID, blob.KindAppend, 0, vmshardBlock, uint64(v)+1); err != nil {
						panic(err)
					}
				}
				if p.Now() > last {
					last = p.Now()
				}
			})
		}
		b.Env.Run()
		s.Points = append(s.Points, Point{X: float64(k), Y: float64(writers*versions) / last.Seconds()})
	}
	return []Series{s}
}

// GroupCommitBench measures durable publish throughput on a real
// WAL-backed version manager under every-record fsync, as the writer
// count grows. Each writer publishes to its own blob; the WAL's group
// commit lets concurrent AppendSyncs share fsyncs, so the aggregate
// rate should scale well past the single-writer fsync ceiling. Each
// series point also implies the coalescing ratio: the returned fsync
// series reports fsyncs per durable record (1.0 = no coalescing).
func GroupCommitBench(versions int, writerCounts []int) ([]Series, error) {
	rate := Series{Name: "group-commit", XLabel: "writers", YLabel: "publishes/sec"}
	coalesce := Series{Name: "fsyncs-per-record", XLabel: "writers", YLabel: "fsyncs/record"}
	for _, w := range writerCounts {
		dir, err := os.MkdirTemp("", "bench-groupcommit-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		log, err := wal.Open(dir, wal.Options{Policy: wal.SyncAlways})
		if err != nil {
			return nil, err
		}
		st, err := vmanager.Recover(log, nil)
		if err != nil {
			log.Close()
			return nil, err
		}
		blobs := make([]blob.Meta, w)
		for i := range blobs {
			if blobs[i], err = st.CreateBlob(vmshardBlock, 1); err != nil {
				st.CloseWAL()
				return nil, err
			}
		}
		before, err := st.WALStatus()
		if err != nil {
			st.CloseWAL()
			return nil, err
		}
		start := time.Now()
		var wg sync.WaitGroup
		errs := make([]error, w)
		for i := 0; i < w; i++ {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				id := blobs[i].ID
				for v := 0; v < versions; v++ {
					a, err := st.AssignVersion(id, blob.KindAppend, 0, vmshardBlock, uint64(v)+1, blob.NoVersion)
					if err != nil {
						errs[i] = err
						return
					}
					if err := st.Commit(id, a.Version); err != nil {
						errs[i] = err
						return
					}
				}
			}()
		}
		wg.Wait()
		elapsed := time.Since(start)
		after, err := st.WALStatus()
		st.CloseWAL()
		if err != nil {
			return nil, err
		}
		for _, e := range errs {
			if e != nil {
				return nil, e
			}
		}
		records := after.Records - before.Records
		syncs := after.Syncs - before.Syncs
		rate.Points = append(rate.Points, Point{X: float64(w), Y: float64(w*versions) / elapsed.Seconds()})
		coalesce.Points = append(coalesce.Points, Point{X: float64(w), Y: float64(syncs) / float64(records)})
	}
	return []Series{rate, coalesce}, nil
}

// VMShardBench is the BENCH_vmshard.json document.
type VMShardBench struct {
	ShardScaling []Series `json:"shard_scaling"`
	GroupCommit  []Series `json:"group_commit"`
}

// VMShardScalingBench runs both control-plane scaling experiments.
// quick shrinks the sweeps for CI smoke runs.
func VMShardScalingBench(quick bool) (VMShardBench, error) {
	writers, versions, gcVersions := 8, 50, 400
	shardCounts := []int{1, 2, 4, 8}
	writerCounts := []int{1, 2, 8}
	if quick {
		versions, gcVersions = 10, 100
		shardCounts = []int{1, 4}
		writerCounts = []int{1, 8}
	}
	var r VMShardBench
	var err error
	r.ShardScaling = AblationVMShards(writers, versions, shardCounts)
	if r.GroupCommit, err = GroupCommitBench(gcVersions, writerCounts); err != nil {
		return r, fmt.Errorf("group-commit arm: %w", err)
	}
	return r, nil
}

// WriteJSON writes the report to path, indented for diffability.
func (r VMShardBench) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
