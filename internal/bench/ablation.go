package bench

import (
	"fmt"

	"blobseer/internal/blob"
	"blobseer/internal/placement"
	"blobseer/internal/sim"
	"blobseer/internal/simnet"
	"blobseer/internal/simstore"
	"blobseer/internal/util"
)

// Ablation experiments: each isolates one design choice the paper
// calls out and re-runs a microbenchmark with that choice varied. They
// answer "how much of the headline result does this mechanism buy?".

// AblationPlacement re-runs the Figure 4 concurrent-read workload with
// BlobSeer's placement strategy swapped out (Sections V-D/V-E credit
// the round-robin balance for the sustained read throughput).
func AblationPlacement(clients int) []Series {
	strategies := []struct {
		name string
		s    func() placement.Strategy
	}{
		{"roundrobin", func() placement.Strategy { return placement.NewRoundRobin() }},
		{"random", func() placement.Strategy { return placement.NewRandom(7) }},
		{"sticky(8)", func() placement.Strategy { return placement.NewRandomSticky(8, 7) }},
		{"leastloaded", func() placement.Strategy { return placement.NewLeastLoaded() }},
	}
	tun := simstore.DefaultTuning()
	out := make([]Series, 0, len(strategies))
	for _, st := range strategies {
		env := sim.NewEnv()
		net := simnet.New(env, simnet.Grid5000(fabricNodes))
		vm, metas, provs := bsfsTopology()
		b := simstore.NewBSFS(net, tun, st.s(), vm, metas, provs)
		m := b.CreateBlob(BlockSize, 1)
		size := int64(clients) * BlockSize
		b.Env.Go(func(p *sim.Proc) {
			for off := int64(0); off < size; off += BlockSize {
				if _, err := b.Write(p, clientNode, m.ID, blob.KindAppend, 0, BlockSize, uint64(off)+1); err != nil {
					panic(err)
				}
			}
		})
		b.Env.Run()
		s := Series{Name: st.name, XLabel: "clients", YLabel: "MB/s per client"}
		s.Points = append(s.Points, Point{X: float64(clients), Y: readChunksBSFS(b, m.ID, provs, clients)})
		out = append(out, s)
	}
	return out
}

// AblationMetadataProviders re-runs the Figure 4 workload with the
// metadata DHT shrunk to 1, 5 and 20 providers: the decentralized
// metadata claim of Section III-A3 (ref [13]).
func AblationMetadataProviders(clients int, metaCounts []int) []Series {
	tun := simstore.DefaultTuning()
	out := make([]Series, 0, len(metaCounts))
	for _, mc := range metaCounts {
		env := sim.NewEnv()
		net := simnet.New(env, simnet.Grid5000(fabricNodes))
		var metas, provs []simnet.NodeID
		for i := 1; i <= mc; i++ {
			metas = append(metas, simnet.NodeID(i))
		}
		for i := mc + 1; i < totalNodes; i++ {
			provs = append(provs, simnet.NodeID(i))
		}
		b := simstore.NewBSFS(net, tun, placement.NewRoundRobin(), 0, metas, provs)
		m := b.CreateBlob(BlockSize, 1)
		size := int64(clients) * BlockSize
		b.Env.Go(func(p *sim.Proc) {
			for off := int64(0); off < size; off += BlockSize {
				if _, err := b.Write(p, clientNode, m.ID, blob.KindAppend, 0, BlockSize, uint64(off)+1); err != nil {
					panic(err)
				}
			}
		})
		b.Env.Run()
		s := Series{Name: fmt.Sprintf("meta=%d", mc), XLabel: "clients", YLabel: "MB/s per client"}
		s.Points = append(s.Points, Point{X: float64(clients), Y: readChunksBSFS(b, m.ID, provs, clients)})
		out = append(out, s)
	}
	return out
}

// AblationVMService re-runs the Figure 5 concurrent-append workload
// with the version manager's per-operation service time varied: version
// assignment is the only serialization point of the write protocol
// (Section III-A4), so this measures how slow it may get before it
// gates the aggregate throughput.
func AblationVMService(clients int, serviceMS []float64) []Series {
	out := make([]Series, 0, len(serviceMS))
	for _, ms := range serviceMS {
		tun := simstore.DefaultTuning()
		tun.VMService = sim.Time(ms * float64(sim.Millisecond))
		env := sim.NewEnv()
		net := simnet.New(env, simnet.Grid5000(fabricNodes))
		vm, metas, provs := bsfsTopology()
		b := simstore.NewBSFS(net, tun, placement.NewRoundRobin(), vm, metas, provs)
		m := b.CreateBlob(BlockSize, 1)
		var last sim.Time
		for i := 0; i < clients; i++ {
			i := i
			client := provs[(i+len(provs)/2)%len(provs)]
			b.Env.Go(func(p *sim.Proc) {
				if _, err := b.Write(p, client, m.ID, blob.KindAppend, 0, BlockSize, uint64(i)+1); err != nil {
					panic(err)
				}
				if p.Now() > last {
					last = p.Now()
				}
			})
		}
		b.Env.Run()
		s := Series{Name: fmt.Sprintf("vm=%.1fms", ms), XLabel: "clients", YLabel: "aggregated MB/s"}
		s.Points = append(s.Points, Point{X: float64(clients), Y: mbps(int64(clients)*BlockSize, last)})
		out = append(out, s)
	}
	return out
}

// AblationBlockSize re-runs the Figure 3a single-writer workload with
// the striping unit varied (the GPFS discussion of Section II-B: 16 MB
// blocks vs Hadoop's 64 MB chunks).
func AblationBlockSize(fileGB float64, blockMBs []int) []Series {
	tun := simstore.DefaultTuning()
	out := make([]Series, 0, len(blockMBs))
	for _, bm := range blockMBs {
		bs := int64(bm) * util.MB
		size := int64(fileGB*float64(util.GB)) / bs * bs
		b := newBSFS(tun)
		m := b.CreateBlob(bs, 1)
		var end sim.Time
		b.Env.Go(func(p *sim.Proc) {
			for off := int64(0); off < size; off += bs {
				if _, err := b.Write(p, clientNode, m.ID, blob.KindAppend, 0, bs, uint64(off)+1); err != nil {
					panic(err)
				}
				end = p.Now()
			}
		})
		b.Env.Run()
		s := Series{Name: fmt.Sprintf("block=%dMB", bm), XLabel: "file size (GB)", YLabel: "MB/s"}
		s.Points = append(s.Points, Point{X: fileGB, Y: mbps(size, end)})
		out = append(out, s)
	}
	return out
}

// AblationStreaming quantifies the BSFS client's streaming pipeline
// (Section IV-B) on the paper topology: one dedicated client streams an
// nBlocks x 64 MB file through the write-behind and readahead windows
// with the depth varied. Depth 0 is the fully synchronous client
// (DisableCache): exactly one block in flight, every block boundary a
// stall on the version manager and metadata round-trips; deeper windows
// overlap those latencies — and fill the client link past the
// single-stream protocol efficiency — across consecutive blocks.
func AblationStreaming(nBlocks int, depths []int) []Series {
	tun := simstore.DefaultTuning()
	write := Series{Name: "stream-write", XLabel: "window (blocks)", YLabel: "MB/s"}
	read := Series{Name: "stream-read", XLabel: "window (blocks)", YLabel: "MB/s"}
	for _, d := range depths {
		b := newBSFS(tun)
		m := b.CreateBlob(BlockSize, 1)
		var wEnd sim.Time
		b.Env.Go(func(p *sim.Proc) {
			if err := b.StreamWrite(p, clientNode, m.ID, nBlocks, d, 0); err != nil {
				panic(err)
			}
			wEnd = p.Now()
		})
		b.Env.Run()
		write.Points = append(write.Points, Point{X: float64(d), Y: mbps(int64(nBlocks)*BlockSize, wEnd)})

		rStart := b.Env.Now()
		var rEnd sim.Time
		b.Env.Go(func(p *sim.Proc) {
			if err := b.StreamRead(p, clientNode, m.ID, nBlocks, d); err != nil {
				panic(err)
			}
			rEnd = p.Now()
		})
		b.Env.Run()
		read.Points = append(read.Points, Point{X: float64(d), Y: mbps(int64(nBlocks)*BlockSize, rEnd-rStart)})
	}
	return []Series{write, read}
}

// AblationRepair measures availability under provider failure and what
// the repair plane buys back (the self-healing claim: replication-based
// fault tolerance only sustains throughput if redundancy is *restored*
// under churn, not merely tolerated). An nBlocks x 64 MB file is
// written at R=3 over a compact provider pool; concurrent chunk readers
// measure per-client throughput healthy, after one provider is killed
// (reads shift onto the survivors' disks and uplinks — the dip), and
// after a repair pass has re-replicated the lost blocks. The recovery
// series reports the pass itself: replicas re-created and the time the
// provider-to-provider copies took.
func AblationRepair(nBlocks, providers int) []Series {
	tun := simstore.DefaultTuning()
	const repl = 3
	build := func() (*simstore.BSFS, blob.Meta, []simnet.NodeID) {
		env := sim.NewEnv()
		fabric := providers + 6
		net := simnet.New(env, simnet.Grid5000(fabric))
		metas := []simnet.NodeID{1, 2, 3, 4}
		provs := make([]simnet.NodeID, providers)
		for i := range provs {
			provs[i] = simnet.NodeID(5 + i)
		}
		writer := simnet.NodeID(fabric - 1)
		b := simstore.NewBSFS(net, tun, placement.NewRoundRobin(), 0, metas, provs)
		m := b.CreateBlob(BlockSize, repl)
		b.Env.Go(func(p *sim.Proc) {
			for i := 0; i < nBlocks; i++ {
				if _, err := b.Write(p, writer, m.ID, blob.KindAppend, 0, BlockSize, uint64(i)+1); err != nil {
					panic(err)
				}
			}
		})
		b.Env.Run()
		return b, m, provs
	}

	noRepair := Series{Name: "no-repair", XLabel: "phase (0=healthy 1=one dead 2=three dead)", YLabel: "MB/s per client"}
	selfHeal := Series{Name: "self-heal", XLabel: "phase (0=healthy 1=one dead 2=three dead)", YLabel: "MB/s per client"}
	lostNR := Series{Name: "lost-blocks-no-repair", XLabel: "phase", YLabel: "unreadable blocks"}
	lostSH := Series{Name: "lost-blocks-self-heal", XLabel: "phase", YLabel: "unreadable blocks"}
	recovery := Series{Name: "recovery", XLabel: "replicas re-created", YLabel: "seconds"}

	run := func(heal bool) (Series, Series) {
		tp := Series{Points: make([]Point, 0, 3)}
		lost := Series{Points: make([]Point, 0, 3)}
		b, m, provs := build()
		y, f := readChunksTolerant(b, m.ID, provs, nBlocks)
		tp.Points = append(tp.Points, Point{X: 0, Y: y})
		lost.Points = append(lost.Points, Point{X: 0, Y: float64(f)})

		// First failure: every block keeps >= 2 live replicas; reads
		// dip (survivors' disks and uplinks absorb the shifted load)
		// but nothing is lost, with or without repair.
		b.KillProvider(simstore.ProviderAddr(provs[0]))
		y, f = readChunksTolerant(b, m.ID, provs, nBlocks)
		tp.Points = append(tp.Points, Point{X: 1, Y: y})
		lost.Points = append(lost.Points, Point{X: 1, Y: float64(f)})

		if heal {
			start := b.Env.Now()
			var copies int
			b.Env.Go(func(p *sim.Proc) {
				n, err := b.Repair(p, 8)
				if err != nil {
					panic(err)
				}
				copies = n
			})
			b.Env.Run()
			recovery.Points = append(recovery.Points, Point{X: float64(copies), Y: (b.Env.Now() - start).Seconds()})
		}

		// Further failures: round-robin placed replica sets {i, i+1,
		// i+2}, so with three consecutive providers dead the blocks
		// placed exactly there lose every original replica. Without
		// repair those blocks are gone; with the post-first-failure
		// repair pass, their relocated copies (found through the
		// location overlay) keep every block readable.
		b.KillProvider(simstore.ProviderAddr(provs[1]))
		b.KillProvider(simstore.ProviderAddr(provs[2]))
		y, f = readChunksTolerant(b, m.ID, provs, nBlocks)
		tp.Points = append(tp.Points, Point{X: 2, Y: y})
		lost.Points = append(lost.Points, Point{X: 2, Y: float64(f)})
		return tp, lost
	}

	tp, lost := run(false)
	noRepair.Points, lostNR.Points = tp.Points, lost.Points
	tp, lost = run(true)
	selfHeal.Points, lostSH.Points = tp.Points, lost.Points
	return []Series{noRepair, selfHeal, lostNR, lostSH, recovery}
}

// readChunksTolerant is readChunksBSFS for degraded deployments: chunk
// reads that fail (every replica of some block dead) are counted
// instead of panicking, and the mean throughput covers the successful
// readers only.
func readChunksTolerant(b *simstore.BSFS, id blob.ID, nodes []simnet.NodeID, n int) (float64, int) {
	var secs []float64
	failed := 0
	for i := 0; i < n; i++ {
		i := i
		client := nodes[(i+len(nodes)/2)%len(nodes)]
		b.Env.Go(func(p *sim.Proc) {
			start := p.Now()
			if _, err := b.Read(p, client, id, int64(i)*BlockSize, BlockSize); err != nil {
				failed++
				return
			}
			secs = append(secs, (p.Now() - start).Seconds())
		})
	}
	b.Env.Run()
	return meanChunkMBps(secs), failed
}

// AblationReplication re-runs the single-writer workload with the data
// replication level varied (the fault-tolerance mechanism of Section
// VI-B: each block is written to `r` providers), once per data plane.
// Fan-out pays R×B of client uplink per block, so its throughput
// divides by R; chain replication ships each block once and pushes the
// extra copies provider-to-provider, keeping the client link the only
// bottleneck.
func AblationReplication(fileGB float64, replications []int) []Series {
	tun := simstore.DefaultTuning()
	out := make([]Series, 0, 2*len(replications))
	for _, plane := range []struct {
		name   string
		fanout bool
	}{{"fanout", true}, {"chained", false}} {
		for _, r := range replications {
			size := int64(fileGB*float64(util.GB)) / BlockSize * BlockSize
			b := newBSFS(tun)
			b.FanoutWrites = plane.fanout
			m := b.CreateBlob(BlockSize, r)
			var end sim.Time
			b.Env.Go(func(p *sim.Proc) {
				for off := int64(0); off < size; off += BlockSize {
					if _, err := b.Write(p, clientNode, m.ID, blob.KindAppend, 0, BlockSize, uint64(off)+1); err != nil {
						panic(err)
					}
					end = p.Now()
				}
			})
			b.Env.Run()
			s := Series{Name: fmt.Sprintf("repl=%d %s", r, plane.name), XLabel: "file size (GB)", YLabel: "MB/s"}
			s.Points = append(s.Points, Point{X: fileGB, Y: mbps(size, end)})
			out = append(out, s)
		}
	}
	return out
}
