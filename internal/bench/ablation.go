package bench

import (
	"fmt"

	"blobseer/internal/blob"
	"blobseer/internal/placement"
	"blobseer/internal/sim"
	"blobseer/internal/simnet"
	"blobseer/internal/simstore"
	"blobseer/internal/util"
)

// Ablation experiments: each isolates one design choice the paper
// calls out and re-runs a microbenchmark with that choice varied. They
// answer "how much of the headline result does this mechanism buy?".

// AblationPlacement re-runs the Figure 4 concurrent-read workload with
// BlobSeer's placement strategy swapped out (Sections V-D/V-E credit
// the round-robin balance for the sustained read throughput).
func AblationPlacement(clients int) []Series {
	strategies := []struct {
		name string
		s    func() placement.Strategy
	}{
		{"roundrobin", func() placement.Strategy { return placement.NewRoundRobin() }},
		{"random", func() placement.Strategy { return placement.NewRandom(7) }},
		{"sticky(8)", func() placement.Strategy { return placement.NewRandomSticky(8, 7) }},
		{"leastloaded", func() placement.Strategy { return placement.NewLeastLoaded() }},
	}
	tun := simstore.DefaultTuning()
	out := make([]Series, 0, len(strategies))
	for _, st := range strategies {
		env := sim.NewEnv()
		net := simnet.New(env, simnet.Grid5000(fabricNodes))
		vm, metas, provs := bsfsTopology()
		b := simstore.NewBSFS(net, tun, st.s(), vm, metas, provs)
		m := b.CreateBlob(BlockSize, 1)
		size := int64(clients) * BlockSize
		b.Env.Go(func(p *sim.Proc) {
			for off := int64(0); off < size; off += BlockSize {
				if _, err := b.Write(p, clientNode, m.ID, blob.KindAppend, 0, BlockSize, uint64(off)+1); err != nil {
					panic(err)
				}
			}
		})
		b.Env.Run()
		s := Series{Name: st.name, XLabel: "clients", YLabel: "MB/s per client"}
		s.Points = append(s.Points, Point{X: float64(clients), Y: readChunksBSFS(b, m.ID, provs, clients)})
		out = append(out, s)
	}
	return out
}

// AblationMetadataProviders re-runs the Figure 4 workload with the
// metadata DHT shrunk to 1, 5 and 20 providers: the decentralized
// metadata claim of Section III-A3 (ref [13]).
func AblationMetadataProviders(clients int, metaCounts []int) []Series {
	tun := simstore.DefaultTuning()
	out := make([]Series, 0, len(metaCounts))
	for _, mc := range metaCounts {
		env := sim.NewEnv()
		net := simnet.New(env, simnet.Grid5000(fabricNodes))
		var metas, provs []simnet.NodeID
		for i := 1; i <= mc; i++ {
			metas = append(metas, simnet.NodeID(i))
		}
		for i := mc + 1; i < totalNodes; i++ {
			provs = append(provs, simnet.NodeID(i))
		}
		b := simstore.NewBSFS(net, tun, placement.NewRoundRobin(), 0, metas, provs)
		m := b.CreateBlob(BlockSize, 1)
		size := int64(clients) * BlockSize
		b.Env.Go(func(p *sim.Proc) {
			for off := int64(0); off < size; off += BlockSize {
				if _, err := b.Write(p, clientNode, m.ID, blob.KindAppend, 0, BlockSize, uint64(off)+1); err != nil {
					panic(err)
				}
			}
		})
		b.Env.Run()
		s := Series{Name: fmt.Sprintf("meta=%d", mc), XLabel: "clients", YLabel: "MB/s per client"}
		s.Points = append(s.Points, Point{X: float64(clients), Y: readChunksBSFS(b, m.ID, provs, clients)})
		out = append(out, s)
	}
	return out
}

// AblationVMService re-runs the Figure 5 concurrent-append workload
// with the version manager's per-operation service time varied: version
// assignment is the only serialization point of the write protocol
// (Section III-A4), so this measures how slow it may get before it
// gates the aggregate throughput.
func AblationVMService(clients int, serviceMS []float64) []Series {
	out := make([]Series, 0, len(serviceMS))
	for _, ms := range serviceMS {
		tun := simstore.DefaultTuning()
		tun.VMService = sim.Time(ms * float64(sim.Millisecond))
		env := sim.NewEnv()
		net := simnet.New(env, simnet.Grid5000(fabricNodes))
		vm, metas, provs := bsfsTopology()
		b := simstore.NewBSFS(net, tun, placement.NewRoundRobin(), vm, metas, provs)
		m := b.CreateBlob(BlockSize, 1)
		var last sim.Time
		for i := 0; i < clients; i++ {
			i := i
			client := provs[(i+len(provs)/2)%len(provs)]
			b.Env.Go(func(p *sim.Proc) {
				if _, err := b.Write(p, client, m.ID, blob.KindAppend, 0, BlockSize, uint64(i)+1); err != nil {
					panic(err)
				}
				if p.Now() > last {
					last = p.Now()
				}
			})
		}
		b.Env.Run()
		s := Series{Name: fmt.Sprintf("vm=%.1fms", ms), XLabel: "clients", YLabel: "aggregated MB/s"}
		s.Points = append(s.Points, Point{X: float64(clients), Y: mbps(int64(clients)*BlockSize, last)})
		out = append(out, s)
	}
	return out
}

// AblationBlockSize re-runs the Figure 3a single-writer workload with
// the striping unit varied (the GPFS discussion of Section II-B: 16 MB
// blocks vs Hadoop's 64 MB chunks).
func AblationBlockSize(fileGB float64, blockMBs []int) []Series {
	tun := simstore.DefaultTuning()
	out := make([]Series, 0, len(blockMBs))
	for _, bm := range blockMBs {
		bs := int64(bm) * util.MB
		size := int64(fileGB*float64(util.GB)) / bs * bs
		b := newBSFS(tun)
		m := b.CreateBlob(bs, 1)
		var end sim.Time
		b.Env.Go(func(p *sim.Proc) {
			for off := int64(0); off < size; off += bs {
				if _, err := b.Write(p, clientNode, m.ID, blob.KindAppend, 0, bs, uint64(off)+1); err != nil {
					panic(err)
				}
				end = p.Now()
			}
		})
		b.Env.Run()
		s := Series{Name: fmt.Sprintf("block=%dMB", bm), XLabel: "file size (GB)", YLabel: "MB/s"}
		s.Points = append(s.Points, Point{X: fileGB, Y: mbps(size, end)})
		out = append(out, s)
	}
	return out
}

// AblationStreaming quantifies the BSFS client's streaming pipeline
// (Section IV-B) on the paper topology: one dedicated client streams an
// nBlocks x 64 MB file through the write-behind and readahead windows
// with the depth varied. Depth 0 is the fully synchronous client
// (DisableCache): exactly one block in flight, every block boundary a
// stall on the version manager and metadata round-trips; deeper windows
// overlap those latencies — and fill the client link past the
// single-stream protocol efficiency — across consecutive blocks.
func AblationStreaming(nBlocks int, depths []int) []Series {
	tun := simstore.DefaultTuning()
	write := Series{Name: "stream-write", XLabel: "window (blocks)", YLabel: "MB/s"}
	read := Series{Name: "stream-read", XLabel: "window (blocks)", YLabel: "MB/s"}
	for _, d := range depths {
		b := newBSFS(tun)
		m := b.CreateBlob(BlockSize, 1)
		var wEnd sim.Time
		b.Env.Go(func(p *sim.Proc) {
			if err := b.StreamWrite(p, clientNode, m.ID, nBlocks, d, 0); err != nil {
				panic(err)
			}
			wEnd = p.Now()
		})
		b.Env.Run()
		write.Points = append(write.Points, Point{X: float64(d), Y: mbps(int64(nBlocks)*BlockSize, wEnd)})

		rStart := b.Env.Now()
		var rEnd sim.Time
		b.Env.Go(func(p *sim.Proc) {
			if err := b.StreamRead(p, clientNode, m.ID, nBlocks, d); err != nil {
				panic(err)
			}
			rEnd = p.Now()
		})
		b.Env.Run()
		read.Points = append(read.Points, Point{X: float64(d), Y: mbps(int64(nBlocks)*BlockSize, rEnd-rStart)})
	}
	return []Series{write, read}
}

// AblationReplication re-runs the single-writer workload with the data
// replication level varied (the fault-tolerance mechanism of Section
// VI-B: each block is written to `r` providers), once per data plane.
// Fan-out pays R×B of client uplink per block, so its throughput
// divides by R; chain replication ships each block once and pushes the
// extra copies provider-to-provider, keeping the client link the only
// bottleneck.
func AblationReplication(fileGB float64, replications []int) []Series {
	tun := simstore.DefaultTuning()
	out := make([]Series, 0, 2*len(replications))
	for _, plane := range []struct {
		name   string
		fanout bool
	}{{"fanout", true}, {"chained", false}} {
		for _, r := range replications {
			size := int64(fileGB*float64(util.GB)) / BlockSize * BlockSize
			b := newBSFS(tun)
			b.FanoutWrites = plane.fanout
			m := b.CreateBlob(BlockSize, r)
			var end sim.Time
			b.Env.Go(func(p *sim.Proc) {
				for off := int64(0); off < size; off += BlockSize {
					if _, err := b.Write(p, clientNode, m.ID, blob.KindAppend, 0, BlockSize, uint64(off)+1); err != nil {
						panic(err)
					}
					end = p.Now()
				}
			})
			b.Env.Run()
			s := Series{Name: fmt.Sprintf("repl=%d %s", r, plane.name), XLabel: "file size (GB)", YLabel: "MB/s"}
			s.Points = append(s.Points, Point{X: fileGB, Y: mbps(size, end)})
			out = append(out, s)
		}
	}
	return out
}
