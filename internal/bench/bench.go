// Package bench regenerates every figure of the paper's evaluation
// (Section V) on the simulated Grid'5000 testbed. Each runner deploys a
// fresh simulated cluster with the paper's topology, drives the exact
// workload of the corresponding subsection, and returns the series the
// figure plots. cmd/figures prints them; bench_test.go wraps them as Go
// benchmarks.
package bench

import (
	"fmt"
	"strings"

	"blobseer/internal/blob"
	"blobseer/internal/placement"
	"blobseer/internal/sim"
	"blobseer/internal/simmr"
	"blobseer/internal/simnet"
	"blobseer/internal/simstore"
	"blobseer/internal/util"
)

// BlockSize is the paper's chunk size: 64 MB everywhere.
const BlockSize = 64 * util.MB

// Point is one (x, y) sample of a series.
type Point struct {
	X float64
	Y float64
}

// Series is one curve of a figure.
type Series struct {
	Name   string
	XLabel string
	YLabel string
	Points []Point
}

// Table renders series side by side for terminal output.
func Table(title string, series []Series) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	if len(series) == 0 {
		return sb.String()
	}
	fmt.Fprintf(&sb, "%18s", series[0].XLabel)
	for _, s := range series {
		fmt.Fprintf(&sb, "  %24s", s.Name+" ("+s.YLabel+")")
	}
	sb.WriteByte('\n')
	for i := range series[0].Points {
		fmt.Fprintf(&sb, "%18.2f", series[0].Points[i].X)
		for _, s := range series {
			if i < len(s.Points) {
				fmt.Fprintf(&sb, "  %24.2f", s.Points[i].Y)
			} else {
				fmt.Fprintf(&sb, "  %24s", "-")
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Topology constants mirroring Section V-C/V-D: 270 machines + 1
// dedicated client machine. BlobSeer: 1 version manager (co-hosting the
// provider manager and namespace manager), 20 metadata providers, 249
// data providers. HDFS: 1 namenode, 269 datanodes.
const (
	totalNodes  = 270
	metaCount   = 20
	clientNode  = simnet.NodeID(totalNodes) // dedicated writer machine
	fabricNodes = totalNodes + 1
)

func bsfsTopology() (vm simnet.NodeID, metas, provs []simnet.NodeID) {
	vm = 0
	for i := 1; i <= metaCount; i++ {
		metas = append(metas, simnet.NodeID(i))
	}
	for i := metaCount + 1; i < totalNodes; i++ {
		provs = append(provs, simnet.NodeID(i))
	}
	return
}

func hdfsTopology() (nn simnet.NodeID, dns []simnet.NodeID) {
	nn = 0
	for i := 1; i < totalNodes; i++ {
		dns = append(dns, simnet.NodeID(i))
	}
	return
}

func newBSFS(tun simstore.Tuning) *simstore.BSFS {
	env := sim.NewEnv()
	net := simnet.New(env, simnet.Grid5000(fabricNodes))
	vm, metas, provs := bsfsTopology()
	return simstore.NewBSFS(net, tun, placement.NewRoundRobin(), vm, metas, provs)
}

func newHDFS(tun simstore.Tuning, seed uint64) *simstore.HDFS {
	env := sim.NewEnv()
	net := simnet.New(env, simnet.Grid5000(fabricNodes))
	nn, dns := hdfsTopology()
	return simstore.NewHDFS(net, tun, placement.NewLocalFirst(placement.NewRandomSticky(8, seed)), nn, dns)
}

// Fig3a reproduces "single writer, single file": one dedicated client
// sequentially writes an N x 64 MB file; the y-axis is its sustained
// write throughput (MB/s) as the file size (GB) grows.
func Fig3a(fileGBs []float64) []Series {
	tun := simstore.DefaultTuning()
	hdfs := Series{Name: "HDFS", XLabel: "file size (GB)", YLabel: "MB/s"}
	bsfs := Series{Name: "BSFS", XLabel: "file size (GB)", YLabel: "MB/s"}
	for _, gb := range fileGBs {
		size := int64(gb * float64(util.GB))
		size = size / BlockSize * BlockSize
		if size == 0 {
			size = BlockSize
		}

		h := newHDFS(tun, uint64(size))
		var hEnd sim.Time
		h.Env.Go(func(p *sim.Proc) {
			if err := h.Write(p, clientNode, "/f", size, BlockSize); err != nil {
				panic(err)
			}
			hEnd = p.Now()
		})
		h.Env.Run()
		hdfs.Points = append(hdfs.Points, Point{X: gb, Y: mbps(size, hEnd)})

		b := newBSFS(tun)
		m := b.CreateBlob(BlockSize, 1)
		var bEnd sim.Time
		b.Env.Go(func(p *sim.Proc) {
			// The BSFS writer commits one block at a time
			// (write-behind cache), like the real client.
			for off := int64(0); off < size; off += BlockSize {
				if _, err := b.Write(p, clientNode, m.ID, blob.KindAppend, 0, BlockSize, uint64(off)+1); err != nil {
					panic(err)
				}
			}
			bEnd = p.Now()
		})
		b.Env.Run()
		bsfs.Points = append(bsfs.Points, Point{X: gb, Y: mbps(size, bEnd)})
	}
	return []Series{hdfs, bsfs}
}

// Fig3b reproduces the load-balance evaluation: the Manhattan distance
// between the produced data layout and a perfectly balanced one, for
// the same single-writer runs as Fig3a.
func Fig3b(fileGBs []float64) []Series {
	tun := simstore.DefaultTuning()
	hdfs := Series{Name: "HDFS", XLabel: "file size (GB)", YLabel: "unbalance"}
	bsfs := Series{Name: "BSFS", XLabel: "file size (GB)", YLabel: "unbalance"}
	for _, gb := range fileGBs {
		size := int64(gb*float64(util.GB)) / BlockSize * BlockSize
		if size == 0 {
			size = BlockSize
		}
		h := newHDFS(tun, uint64(size)+7)
		h.Env.Go(func(p *sim.Proc) {
			if err := h.Write(p, clientNode, "/f", size, BlockSize); err != nil {
				panic(err)
			}
		})
		h.Env.Run()
		hdfs.Points = append(hdfs.Points, Point{X: gb, Y: util.ManhattanDistance(h.Layout())})

		b := newBSFS(tun)
		m := b.CreateBlob(BlockSize, 1)
		b.Env.Go(func(p *sim.Proc) {
			for off := int64(0); off < size; off += BlockSize {
				if _, err := b.Write(p, clientNode, m.ID, blob.KindAppend, 0, BlockSize, uint64(off)+1); err != nil {
					panic(err)
				}
			}
		})
		b.Env.Run()
		bsfs.Points = append(bsfs.Points, Point{X: gb, Y: util.ManhattanDistance(b.Layout())})
	}
	return []Series{hdfs, bsfs}
}

// Fig4 reproduces "concurrent reads, shared file": a dedicated node
// writes N x 64 MB; then N clients (running on storage machines, as in
// the paper's measurement phase) each read a distinct 64 MB chunk. The
// y-axis is the average per-client throughput.
func Fig4(clients []int) []Series {
	tun := simstore.DefaultTuning()
	hdfs := Series{Name: "HDFS", XLabel: "clients", YLabel: "MB/s per client"}
	bsfs := Series{Name: "BSFS", XLabel: "clients", YLabel: "MB/s per client"}
	for _, n := range clients {
		size := int64(n) * BlockSize

		h := newHDFS(tun, uint64(n)*13+1)
		_, dns := hdfsTopology()
		h.Env.Go(func(p *sim.Proc) { // boot-up phase from the dedicated node
			if err := h.Write(p, clientNode, "/f", size, BlockSize); err != nil {
				panic(err)
			}
		})
		h.Env.Run()
		hdfs.Points = append(hdfs.Points, Point{X: float64(n), Y: readChunksHDFS(h, dns, n)})

		b := newBSFS(tun)
		m := b.CreateBlob(BlockSize, 1)
		b.Env.Go(func(p *sim.Proc) {
			for off := int64(0); off < size; off += BlockSize {
				if _, err := b.Write(p, clientNode, m.ID, blob.KindAppend, 0, BlockSize, uint64(off)+1); err != nil {
					panic(err)
				}
			}
		})
		b.Env.Run()
		_, _, provs := bsfsTopology()
		bsfs.Points = append(bsfs.Points, Point{X: float64(n), Y: readChunksBSFS(b, m.ID, provs, n)})
	}
	return []Series{hdfs, bsfs}
}

// readChunksHDFS runs the measurement phase of Fig4 on HDFS and returns
// the mean per-client throughput in MB/s. Client i runs on a storage
// machine offset by half the cluster so co-location is coincidental,
// like the paper's random client subset.
func readChunksHDFS(h *simstore.HDFS, nodes []simnet.NodeID, n int) float64 {
	var secs []float64
	for i := 0; i < n; i++ {
		i := i
		client := nodes[(i+len(nodes)/2)%len(nodes)]
		h.Env.Go(func(p *sim.Proc) {
			start := p.Now()
			if _, err := h.Read(p, client, "/f", int64(i)*BlockSize, BlockSize); err != nil {
				panic(err)
			}
			secs = append(secs, (p.Now() - start).Seconds())
		})
	}
	h.Env.Run()
	return meanChunkMBps(secs)
}

func readChunksBSFS(b *simstore.BSFS, id blob.ID, nodes []simnet.NodeID, n int) float64 {
	var secs []float64
	for i := 0; i < n; i++ {
		i := i
		client := nodes[(i+len(nodes)/2)%len(nodes)]
		b.Env.Go(func(p *sim.Proc) {
			start := p.Now()
			if _, err := b.Read(p, client, id, int64(i)*BlockSize, BlockSize); err != nil {
				panic(err)
			}
			secs = append(secs, (p.Now() - start).Seconds())
		})
	}
	b.Env.Run()
	return meanChunkMBps(secs)
}

func meanChunkMBps(secs []float64) float64 {
	if len(secs) == 0 {
		return 0
	}
	tp := make([]float64, len(secs))
	for i, s := range secs {
		tp[i] = float64(BlockSize) / float64(util.MB) / s
	}
	return util.Mean(tp)
}

// Fig5 reproduces "concurrent appends, shared file": N clients each
// append 64 MB to one BLOB; the y-axis is the aggregated throughput
// (MB/s). HDFS has no curve here — it does not implement append.
func Fig5(clients []int) []Series {
	tun := simstore.DefaultTuning()
	bsfs := Series{Name: "BSFS", XLabel: "clients", YLabel: "aggregated MB/s"}
	for _, n := range clients {
		b := newBSFS(tun)
		m := b.CreateBlob(BlockSize, 1)
		_, _, provs := bsfsTopology()
		var last sim.Time
		for i := 0; i < n; i++ {
			i := i
			client := provs[(i+len(provs)/2)%len(provs)]
			b.Env.Go(func(p *sim.Proc) {
				if _, err := b.Write(p, client, m.ID, blob.KindAppend, 0, BlockSize, uint64(i)+1); err != nil {
					panic(err)
				}
				if p.Now() > last {
					last = p.Now()
				}
			})
		}
		b.Env.Run()
		bsfs.Points = append(bsfs.Points, Point{X: float64(n), Y: mbps(int64(n)*BlockSize, last)})
	}
	return []Series{bsfs}
}

// Application-model constants for Figure 6 (see EXPERIMENTS.md).
const (
	rtwGenRate   = 66e6 // RandomTextWriter text generation, bytes/s
	grepScanRate = 24e6 // grep map task scan rate, bytes/s
)

// Fig6a reproduces RandomTextWriter: 6.4 GB of total output, the
// per-mapper share varying from 128 MB (50 mappers) to 6.4 GB (one
// mapper); 50 co-deployed tasktracker/storage machines.
func Fig6a(mappers []int) []Series {
	gbF := float64(util.GB)
	totalOut := int64(6.4 * gbF)
	tun := simstore.DefaultTuning()
	hdfs := Series{Name: "HDFS", XLabel: "GB per mapper", YLabel: "seconds"}
	bsfs := Series{Name: "BSFS", XLabel: "GB per mapper", YLabel: "seconds"}
	for _, m := range mappers {
		per := totalOut / int64(m)
		x := float64(per) / float64(util.GB)

		// 50 co-deployed machines (Section V-G); storage services on
		// the same 50 nodes, dedicated control nodes.
		for _, which := range []string{"hdfs", "bsfs"} {
			env := sim.NewEnv()
			net := simnet.New(env, simnet.Grid5000(60))
			trackers := make([]simnet.NodeID, 50)
			for i := range trackers {
				trackers[i] = simnet.NodeID(10 + i)
			}
			var st simstore.Storage
			if which == "hdfs" {
				h := simstore.NewHDFS(net, tun, placement.NewLocalFirst(placement.NewRandomSticky(8, uint64(m))), 0, trackers)
				st = simstore.NewHDFSFiles(h, BlockSize)
			} else {
				metas := []simnet.NodeID{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
				b := simstore.NewBSFS(net, tun, placement.NewRoundRobin(), 0, metas, trackers)
				st = simstore.NewBSFSFiles(b, BlockSize, 1)
			}
			done, err := simmr.RunRandomTextWriter(st, simmr.DefaultConfig(trackers), m, per, rtwGenRate)
			if err != nil {
				panic(err)
			}
			pt := Point{X: x, Y: done.Seconds()}
			if which == "hdfs" {
				hdfs.Points = append(hdfs.Points, pt)
			} else {
				bsfs.Points = append(bsfs.Points, pt)
			}
		}
	}
	return []Series{hdfs, bsfs}
}

// Fig6b reproduces distributed grep: the input file grows from 6.4 GB
// to 12.8 GB (about 100 to 200 concurrent mappers over 150 co-deployed
// machines).
func Fig6b(inputGBs []float64) []Series {
	tun := simstore.DefaultTuning()
	hdfs := Series{Name: "HDFS", XLabel: "input size (GB)", YLabel: "seconds"}
	bsfs := Series{Name: "BSFS", XLabel: "input size (GB)", YLabel: "seconds"}
	for _, gb := range inputGBs {
		size := int64(gb*float64(util.GB)) / BlockSize * BlockSize
		for _, which := range []string{"hdfs", "bsfs"} {
			env := sim.NewEnv()
			net := simnet.New(env, simnet.Grid5000(172))
			trackers := make([]simnet.NodeID, 150)
			for i := range trackers {
				trackers[i] = simnet.NodeID(21 + i)
			}
			var st simstore.Storage
			if which == "hdfs" {
				// One fixed seed across the sweep: the same deployment serves
				// every input size in the paper's experiment.
				h := simstore.NewHDFS(net, tun, placement.NewLocalFirst(placement.NewRandomSticky(8, 42)), 0, trackers)
				st = simstore.NewHDFSFiles(h, BlockSize)
			} else {
				metas := make([]simnet.NodeID, 20)
				for i := range metas {
					metas[i] = simnet.NodeID(1 + i)
				}
				b := simstore.NewBSFS(net, tun, placement.NewRoundRobin(), 0, metas, trackers)
				st = simstore.NewBSFSFiles(b, BlockSize, 1)
			}
			// Boot-up: write the input from a dedicated node (node 171
			// is outside the tracker range).
			writer := simnet.NodeID(171)
			if err := st.CreateFile("/input"); err != nil {
				panic(err)
			}
			env.Go(func(p *sim.Proc) {
				for off := int64(0); off < size; off += BlockSize {
					if err := st.AppendBlock(p, writer, "/input", BlockSize); err != nil {
						panic(err)
					}
				}
			})
			env.Run()
			done, err := simmr.RunGrep(st, simmr.DefaultConfig(trackers), "/input", grepScanRate)
			if err != nil {
				panic(err)
			}
			pt := Point{X: gb, Y: done.Seconds()}
			if which == "hdfs" {
				hdfs.Points = append(hdfs.Points, pt)
			} else {
				bsfs.Points = append(bsfs.Points, pt)
			}
		}
	}
	return []Series{hdfs, bsfs}
}

func mbps(bytes int64, elapsed sim.Time) float64 {
	s := elapsed.Seconds()
	if s <= 0 {
		return 0
	}
	return float64(bytes) / float64(util.MB) / s
}
