package bench

import "testing"

func TestQuickShapes(t *testing.T) {
	t.Logf("Fig3a: %+v", Fig3a([]float64{1, 4}))
	t.Logf("Fig3b: %+v", Fig3b([]float64{1, 4, 16}))
	t.Logf("Fig4: %+v", Fig4([]int{1, 50, 150}))
	t.Logf("Fig5: %+v", Fig5([]int{1, 50, 150}))
	t.Logf("Fig6a: %+v", Fig6a([]int{50, 2, 1}))
	t.Logf("Fig6b: %+v", Fig6b([]float64{6.4, 12.8}))
}
