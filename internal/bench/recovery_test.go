package bench

import (
	"path/filepath"
	"testing"
)

// TestCrashRecoveryDirection pins the ablation's headline claims: the
// volatile arm loses the publication line a crash erases, the WAL arm
// recovers every acknowledged version, and both auxiliary sweeps
// produce sane positive measurements.
func TestCrashRecoveryDirection(t *testing.T) {
	r, err := CrashRecoveryBench(true)
	if err != nil {
		t.Fatal(err)
	}

	byName := map[string]Series{}
	for _, s := range r.Durability {
		byName[s.Name] = s
	}
	noWAL, ok := byName["no-wal"]
	if !ok || len(noWAL.Points) != 1 {
		t.Fatalf("missing no-wal durability arm: %+v", r.Durability)
	}
	if noWAL.Points[0].X == 0 {
		t.Fatal("no-wal arm acknowledged zero writes; nothing was tested")
	}
	if noWAL.Points[0].Y != 0 {
		t.Errorf("no-wal arm survived %v versions across a crash; expected the publication line lost",
			noWAL.Points[0].Y)
	}
	walArm, ok := byName["wal"]
	if !ok || len(walArm.Points) != 1 {
		t.Fatalf("missing wal durability arm: %+v", r.Durability)
	}
	if walArm.Points[0].Y != walArm.Points[0].X {
		t.Errorf("wal arm recovered %v of %v acknowledged versions; durability must be total",
			walArm.Points[0].Y, walArm.Points[0].X)
	}

	if len(r.RecoveryTime) != 1 || len(r.RecoveryTime[0].Points) < 2 {
		t.Fatalf("recovery-time sweep too small: %+v", r.RecoveryTime)
	}
	for _, p := range r.RecoveryTime[0].Points {
		if p.Y < 0 {
			t.Errorf("negative recovery time at %v records", p.X)
		}
	}

	if len(r.FsyncCost) != 3 {
		t.Fatalf("fsync sweep arms = %d, want 3", len(r.FsyncCost))
	}
	for _, s := range r.FsyncCost {
		if len(s.Points) != 1 || s.Points[0].Y <= 0 {
			t.Errorf("fsync arm %s: non-positive throughput %+v", s.Name, s.Points)
		}
	}

	// The report must serialize: it is the BENCH_recovery.json artifact.
	if err := r.WriteJSON(filepath.Join(t.TempDir(), "BENCH_recovery.json")); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
}
