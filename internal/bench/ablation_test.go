package bench

import (
	"strings"
	"testing"
)

// The ablation runners re-run microbenchmark workloads with one design
// choice varied; these tests pin the *direction* each choice moves the
// result, which is the claim DESIGN.md makes for each.

func single(t *testing.T, s Series) float64 {
	t.Helper()
	if len(s.Points) != 1 {
		t.Fatalf("series %s has %d points, want 1", s.Name, len(s.Points))
	}
	return s.Points[0].Y
}

func TestAblationPlacementDirection(t *testing.T) {
	series := AblationPlacement(100)
	byName := map[string]float64{}
	for _, s := range series {
		byName[s.Name] = single(t, s)
	}
	if byName["roundrobin"] <= 3*byName["sticky(8)"] {
		t.Errorf("round-robin %.1f should beat sticky %.1f by >3x under concurrent reads",
			byName["roundrobin"], byName["sticky(8)"])
	}
	if byName["random"] <= byName["sticky(8)"] {
		t.Errorf("random %.1f should beat sticky %.1f", byName["random"], byName["sticky(8)"])
	}
}

func TestAblationMetadataProvidersDirection(t *testing.T) {
	series := AblationMetadataProviders(100, []int{1, 20})
	one, twenty := single(t, series[0]), single(t, series[1])
	if twenty <= one {
		t.Errorf("20 metadata providers (%.1f) should beat 1 (%.1f)", twenty, one)
	}
}

func TestAblationVMServiceDirection(t *testing.T) {
	series := AblationVMService(100, []float64{0.5, 50})
	fast, slow := single(t, series[0]), single(t, series[1])
	if fast <= 2*slow {
		t.Errorf("a 100x faster version manager should buy >2x aggregate append throughput: %.0f vs %.0f", fast, slow)
	}
}

func TestAblationBlockSizeInsensitiveForSingleWriter(t *testing.T) {
	series := AblationBlockSize(2, []int{16, 128})
	small, large := single(t, series[0]), single(t, series[1])
	if diff := (large - small) / large; diff > 0.1 || diff < -0.1 {
		t.Errorf("single-writer throughput should be block-size insensitive: 16MB %.1f vs 128MB %.1f", small, large)
	}
}

func TestAblationReplicationScalesCost(t *testing.T) {
	series := AblationReplication(2, []int{1, 2})
	byName := map[string]float64{}
	for _, s := range series {
		byName[s.Name] = single(t, s)
	}
	// Fan-out pays the full replication tax on the client uplink.
	ratio := byName["repl=1 fanout"] / byName["repl=2 fanout"]
	if ratio < 1.8 || ratio > 2.2 {
		t.Errorf("doubling fan-out replication should halve write throughput: ratio %.2f (%v)", ratio, byName)
	}
	// Chain replication moves that tax provider-to-provider: at R=2 it
	// must clearly beat fan-out, and stay near its own R=1 rate.
	if byName["repl=2 chained"] <= 1.5*byName["repl=2 fanout"] {
		t.Errorf("chained r2 %.1f should beat fanout r2 %.1f by >1.5x",
			byName["repl=2 chained"], byName["repl=2 fanout"])
	}
	if byName["repl=2 chained"] < 0.8*byName["repl=1 chained"] {
		t.Errorf("chained write throughput should be near replication-insensitive: r1 %.1f, r2 %.1f",
			byName["repl=1 chained"], byName["repl=2 chained"])
	}
}

// TestAblationRepairDirection pins the self-healing claim: after one
// provider dies and a repair pass runs, a failure wave that strips
// every original replica of some blocks (three consecutive providers
// down) loses data without repair and loses nothing with it — the
// relocated copies reached through the location overlay keep every
// block readable.
func TestAblationRepairDirection(t *testing.T) {
	series := AblationRepair(24, 8)
	byName := map[string]Series{}
	for _, s := range series {
		byName[s.Name] = s
	}
	lostNR := byName["lost-blocks-no-repair"].Points
	lostSH := byName["lost-blocks-self-heal"].Points
	if len(lostNR) != 3 || len(lostSH) != 3 {
		t.Fatalf("lost-blocks series malformed: %v / %v", lostNR, lostSH)
	}
	if lostNR[2].Y == 0 {
		t.Error("no-repair should lose blocks once three consecutive providers are dead")
	}
	if lostSH[2].Y != 0 {
		t.Errorf("self-heal lost %.0f blocks; repair + overlay should keep all readable", lostSH[2].Y)
	}
	rec := byName["recovery"].Points
	if len(rec) != 1 || rec[0].X == 0 || rec[0].Y <= 0 {
		t.Errorf("recovery series should report replicas re-created and a positive duration, got %v", rec)
	}
	// The throughput dip: losing a provider shifts its read load onto
	// the survivors.
	heal := byName["self-heal"].Points
	if !(heal[1].Y < heal[0].Y) {
		t.Errorf("expected a throughput dip after the first kill: %.1f -> %.1f", heal[0].Y, heal[1].Y)
	}
}

func TestTableRendering(t *testing.T) {
	s := []Series{
		{Name: "A", XLabel: "x", YLabel: "u", Points: []Point{{1, 10}, {2, 20}}},
		{Name: "B", XLabel: "x", YLabel: "u", Points: []Point{{1, 30}}},
	}
	out := Table("title", s)
	if !strings.Contains(out, "title") || !strings.Contains(out, "A (u)") || !strings.Contains(out, "B (u)") {
		t.Fatalf("missing headers:\n%s", out)
	}
	if !strings.Contains(out, "30.00") {
		t.Fatalf("missing value:\n%s", out)
	}
	// Series B has no point at x=2: rendered as a dash, not a crash.
	if !strings.Contains(out, "-") {
		t.Fatalf("missing placeholder for short series:\n%s", out)
	}
	if Table("empty", nil) == "" {
		t.Fatal("empty table should still carry its title")
	}
}
