package bench

import "testing"

// TestAblationTieringQuick runs the CI-scale tiering ablation and pins
// the two acceptance properties via Check: every demoted block comes
// back bit-exact through promotion, and the tiered engine's hot path
// stays within 10% of the plain fs backend.
func TestAblationTieringQuick(t *testing.T) {
	r, err := TieringBenchRun(true)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Check(); err != nil {
		t.Error(err)
	}
	if len(r.Throughput) != 4 {
		t.Fatalf("want 4 throughput arms, got %d", len(r.Throughput))
	}
	if r.Demotions != int64(r.Blocks) {
		t.Errorf("Demotions = %d, want %d (one per block)", r.Demotions, r.Blocks)
	}
	if r.Promotions < int64(r.Blocks) {
		t.Errorf("Promotions = %d, want >= %d (cold arm promotes every block)", r.Promotions, r.Blocks)
	}
}

// TestAblationTieringColdSlower checks the cold arm actually pays for
// the demotion round trip: its single pass must not beat the best hot
// pass (it does strictly more work — cold read + promotion write).
func TestAblationTieringColdSlower(t *testing.T) {
	r, err := TieringBenchRun(true)
	if err != nil {
		t.Fatal(err)
	}
	var hot, cold Series
	for _, s := range r.Throughput {
		switch s.Name {
		case "tiered-hot":
			hot = s
		case "tiered-cold":
			cold = s
		}
	}
	if len(cold.Points) != 1 {
		t.Fatalf("cold arm should have exactly one pass, got %d", len(cold.Points))
	}
	if cold.Points[0].Y > best(hot) {
		t.Errorf("cold pass (%.1f MB/s) beat the best hot pass (%.1f MB/s); promotion cost unmodeled?",
			cold.Points[0].Y, best(hot))
	}
}
