package bench

import "testing"

// These tests pin the qualitative findings of the paper's evaluation
// (Section V): who wins, in which direction each curve moves, and
// roughly by what factor. They are the repository's regression guard
// for the reproduced figures; exact values live in EXPERIMENTS.md.

func ys(s Series) []float64 {
	out := make([]float64, len(s.Points))
	for i, p := range s.Points {
		out[i] = p.Y
	}
	return out
}

// TestFig3aShape: a single writer sustains significantly higher
// throughput on BSFS than on HDFS at every file size, and BSFS holds
// its throughput as the file grows to 16 GB.
func TestFig3aShape(t *testing.T) {
	series := Fig3a([]float64{1, 4, 16})
	hdfs, bsfs := ys(series[0]), ys(series[1])
	for i := range hdfs {
		if bsfs[i] <= hdfs[i]*1.2 {
			t.Errorf("size %v GB: BSFS %.1f MB/s should beat HDFS %.1f MB/s by >20%%",
				series[0].Points[i].X, bsfs[i], hdfs[i])
		}
	}
	if min, max := minMax(bsfs); min < 0.9*max {
		t.Errorf("BSFS single-writer throughput should be sustained, got spread [%.1f, %.1f]", min, max)
	}
}

// TestFig3bShape: HDFS's layout unbalance grows steeply with file size
// while BSFS stays much closer to the ideal balanced layout.
func TestFig3bShape(t *testing.T) {
	series := Fig3b([]float64{1, 8, 16})
	hdfs, bsfs := ys(series[0]), ys(series[1])
	if !(hdfs[0] < hdfs[1] && hdfs[1] < hdfs[2]) {
		t.Errorf("HDFS unbalance should grow with file size: %v", hdfs)
	}
	if bsfs[2] > hdfs[2]/3 {
		t.Errorf("at 16 GB BSFS unbalance %.1f should be far below HDFS %.1f", bsfs[2], hdfs[2])
	}
}

// TestFig4Shape: under concurrent readers of a shared file, BSFS
// delivers roughly flat per-client throughput while HDFS collapses.
func TestFig4Shape(t *testing.T) {
	series := Fig4([]int{1, 100, 250})
	hdfs, bsfs := ys(series[0]), ys(series[1])
	if bsfs[2] < 0.8*bsfs[0] {
		t.Errorf("BSFS per-client read throughput should stay near-flat: 1 client %.1f vs 250 clients %.1f", bsfs[0], bsfs[2])
	}
	if hdfs[2] > 0.5*hdfs[0] {
		t.Errorf("HDFS per-client read throughput should collapse under concurrency: 1 client %.1f vs 250 clients %.1f", hdfs[0], hdfs[2])
	}
	if bsfs[2] < 3*hdfs[2] {
		t.Errorf("at 250 clients BSFS %.1f should beat HDFS %.1f by >3x", bsfs[2], hdfs[2])
	}
}

// TestFig5Shape: aggregated append throughput scales with the number of
// concurrent appenders (the version manager does not serialize data).
func TestFig5Shape(t *testing.T) {
	series := Fig5([]int{1, 50, 250})
	bsfs := ys(series[0])
	if bsfs[1] < 20*bsfs[0] {
		t.Errorf("50 appenders should aggregate >20x one appender: %.0f vs %.0f MB/s", bsfs[1], bsfs[0])
	}
	if bsfs[2] < 2.5*bsfs[1] {
		t.Errorf("250 appenders should aggregate >2.5x 50 appenders: %.0f vs %.0f MB/s", bsfs[2], bsfs[1])
	}
}

// TestFig6aShape: RandomTextWriter completes faster on BSFS at every
// mapper count, with the relative gain growing as fewer, bigger mappers
// make the single-writer pattern dominate (paper: 7% -> 11%).
func TestFig6aShape(t *testing.T) {
	series := Fig6a([]int{50, 5, 1})
	hdfs, bsfs := ys(series[0]), ys(series[1])
	var gains []float64
	for i := range hdfs {
		if bsfs[i] >= hdfs[i] {
			t.Errorf("point %d: BSFS %.1fs should beat HDFS %.1fs", i, bsfs[i], hdfs[i])
		}
		gains = append(gains, (hdfs[i]-bsfs[i])/hdfs[i])
	}
	if len(gains) == 3 && gains[2] <= gains[0] {
		t.Errorf("relative gain should grow as mappers decrease: %v", gains)
	}
	if gains[0] < 0.02 || gains[0] > 0.25 {
		t.Errorf("gain at 50 mappers should be modest (paper: 7%%), got %.0f%%", gains[0]*100)
	}
}

// TestFig6bShape: distributed grep completes much faster on BSFS
// (paper: 35%), the gap widening with input size (paper: to 38%), and
// both curves growing with input size.
func TestFig6bShape(t *testing.T) {
	series := Fig6b([]float64{6.4, 12.8})
	hdfs, bsfs := ys(series[0]), ys(series[1])
	gain0 := (hdfs[0] - bsfs[0]) / hdfs[0]
	gain1 := (hdfs[1] - bsfs[1]) / hdfs[1]
	if gain0 < 0.15 {
		t.Errorf("gain at 6.4 GB should be large (paper: 35%%), got %.0f%%", gain0*100)
	}
	if gain1 <= gain0 {
		t.Errorf("gain should widen with input size: %.0f%% -> %.0f%%", gain0*100, gain1*100)
	}
	if hdfs[1] <= hdfs[0] || bsfs[1] <= bsfs[0] {
		t.Errorf("both curves should grow with input size: hdfs %v bsfs %v", hdfs, bsfs)
	}
}

func minMax(xs []float64) (lo, hi float64) {
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return
}
