package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"blobseer/internal/fs"
	"blobseer/internal/metrics"
	"blobseer/internal/util"
)

// The blaster is a closed-loop load generator for a whole deployment:
// N workers drive a configurable open/read/write/append mix against a
// file system (a live cluster's BSFS mount, or the HDFS baseline),
// with an untimed ramp-up, a measured steady-state window, and a
// BENCH_blaster.json report of sustained throughput, per-op latency
// percentiles and the error rate against a budget. Every observation
// flows through internal/metrics, so a -metrics-addr endpoint shows
// the client side of the run live next to the daemons' own registries.

// Blaster op names, in report order.
var blasterOps = []string{"open", "read", "write", "append"}

// BlasterConfig parameterizes one load run.
type BlasterConfig struct {
	// FS is the target file system (required).
	FS fs.FileSystem
	// Workers is the closed-loop worker count (default 4).
	Workers int
	// Duration is the measured steady-state window (default 10s).
	// 0 selects long-run mode: the window lasts until ctx is canceled.
	Duration time.Duration
	// Ramp is the untimed warm-up before measurement starts: workers
	// run the full mix but rates are taken only over the window.
	Ramp time.Duration
	// Files is the shared working set size (default 8); opens, reads
	// and appends spread across it uniformly.
	Files int
	// FileSize is each working-set file's initial size (default
	// 4×IOSize), the range random reads land in.
	FileSize int64
	// IOSize is the bytes moved per read/write/append op (default 64 KB).
	IOSize int
	// MixOpen/MixRead/MixWrite/MixAppend weight the op mix (default
	// 10/60/20/10; zero-total falls back to the default mix).
	MixOpen, MixRead, MixWrite, MixAppend int
	// Rate, when positive, switches the blaster from closed-loop to
	// paced open-loop mode: operations are issued against a global
	// schedule of Rate ops/s regardless of how fast the system answers.
	// Each op's corrected latency is measured from its *intended* start
	// time, so queueing delay from a stalled system is charged to the
	// ops that waited — the coordinated-omission correction a
	// closed-loop harness silently forgoes. The report then carries
	// both corrected and service-time percentiles.
	Rate float64
	// ErrorBudget is the highest tolerable failed-op fraction over the
	// measured window; Check() fails above it (default 0).
	ErrorBudget float64
	// Registry receives the blaster's live metrics (per-op latency
	// histograms, op/error/byte counters). Nil creates a private one.
	Registry *metrics.Registry
	// OnError, when non-nil, observes every failed op (diagnostics;
	// the error is still counted against the budget).
	OnError func(op string, err error)
	// Trace, when non-nil and TraceEvery > 0, wraps every TraceEvery-th
	// op's context (e.g. with core.WithTrace) and returns the trace ID
	// it started; the first few IDs land in the report so a run can be
	// cross-examined with `bsfsctl trace`. The hook shape keeps bench
	// free of a client-stack dependency.
	Trace      func(ctx context.Context) (context.Context, string)
	TraceEvery int
	// Seed fixes the workers' RNG streams (default 1).
	Seed int64
}

func (c *BlasterConfig) fill() {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Files <= 0 {
		c.Files = 8
	}
	if c.IOSize <= 0 {
		c.IOSize = 64 * int(util.KB)
	}
	if c.FileSize <= 0 {
		c.FileSize = 4 * int64(c.IOSize)
	}
	if c.MixOpen+c.MixRead+c.MixWrite+c.MixAppend <= 0 {
		c.MixOpen, c.MixRead, c.MixWrite, c.MixAppend = 10, 60, 20, 10
	}
	if c.Registry == nil {
		c.Registry = metrics.NewRegistry()
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// BlasterOpStats summarizes one op type over the measured window
// (percentiles cover the whole run including ramp — the mix is
// identical in both phases, so the contamination is noise-level).
type BlasterOpStats struct {
	Count  int64   `json:"count"`
	Errors int64   `json:"errors"`
	P50us  float64 `json:"p50_us"`
	P99us  float64 `json:"p99_us"`
	P999us float64 `json:"p999_us"`
}

// BlasterReport is the BENCH_blaster.json document.
type BlasterReport struct {
	Workers   int                       `json:"workers"`
	Seconds   float64                   `json:"seconds"`
	Ops       map[string]BlasterOpStats `json:"ops"`
	TotalOps  int64                     `json:"total_ops"`
	OpsPerSec float64                   `json:"ops_per_sec"`
	ReadMBps  float64                   `json:"read_mbps"`
	WriteMBps float64                   `json:"write_mbps"`
	// TargetRate and Corrected are present only in paced open-loop
	// runs: Corrected repeats the per-op percentiles measured from each
	// op's intended start time, so a stalled system's queueing delay is
	// visible instead of silently omitted. Ops keeps the service-time
	// view (measured from actual start) in both modes.
	TargetRate  float64                   `json:"target_rate,omitempty"`
	Corrected   map[string]BlasterOpStats `json:"corrected,omitempty"`
	TraceIDs    []string                  `json:"trace_ids,omitempty"`
	ErrorRate   float64                   `json:"error_rate"`
	ErrorBudget float64                   `json:"error_budget"`
}

// Check validates the run: the window must have completed work and the
// failed-op fraction must stay inside the budget.
func (r BlasterReport) Check() error {
	if r.TotalOps <= 0 {
		return fmt.Errorf("blaster: no operations completed in the measured window")
	}
	if r.ErrorRate > r.ErrorBudget {
		return fmt.Errorf("blaster: error rate %.4f exceeds budget %.4f", r.ErrorRate, r.ErrorBudget)
	}
	return nil
}

// WriteJSON writes the report to path, indented for diffability.
func (r BlasterReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// blasterMetrics is the pre-resolved instrument set all workers share.
type blasterMetrics struct {
	lat     map[string]*metrics.Histogram
	corr    map[string]*metrics.Histogram // paced mode only: intended-start latency
	ops     map[string]*metrics.Counter
	errs    map[string]*metrics.Counter
	bytesR  *metrics.Counter
	bytesW  *metrics.Counter
	workers *metrics.Gauge
}

func newBlasterMetrics(reg *metrics.Registry, paced bool) *blasterMetrics {
	m := &blasterMetrics{
		lat:     make(map[string]*metrics.Histogram, len(blasterOps)),
		ops:     make(map[string]*metrics.Counter, len(blasterOps)),
		errs:    make(map[string]*metrics.Counter, len(blasterOps)),
		bytesR:  reg.Counter("bytes_read"),
		bytesW:  reg.Counter("bytes_written"),
		workers: reg.Gauge("workers"),
	}
	for _, op := range blasterOps {
		m.lat[op] = reg.Histogram("latency_" + op)
		m.ops[op] = reg.Counter("ops_" + op)
		m.errs[op] = reg.Counter("errors_" + op)
	}
	if paced {
		m.corr = make(map[string]*metrics.Histogram, len(blasterOps))
		for _, op := range blasterOps {
			m.corr[op] = reg.Histogram("corrected_" + op)
		}
	}
	return m
}

// pacer hands out the open-loop schedule: ticket i's intended start is
// t0 + i/rate, shared across every worker through one atomic counter.
// A worker that falls behind its ticket runs it immediately — the
// op is late, and the corrected histogram charges it the full delay.
type pacer struct {
	start time.Time
	rate  float64
	next  atomic.Int64
}

func (p *pacer) intended() time.Time {
	i := p.next.Add(1) - 1
	return p.start.Add(time.Duration(float64(i) / p.rate * float64(time.Second)))
}

// traceTag tags every Nth op with a fresh trace and retains the first
// few IDs for the report.
type traceTag struct {
	hook  func(ctx context.Context) (context.Context, string)
	every int64
	n     atomic.Int64

	mu  sync.Mutex
	ids []string
}

func (t *traceTag) wrap(ctx context.Context) context.Context {
	if t == nil || t.hook == nil || t.every <= 0 {
		return ctx
	}
	if t.n.Add(1)%t.every != 1 && t.every != 1 {
		return ctx
	}
	ctx, id := t.hook(ctx)
	t.mu.Lock()
	if len(t.ids) < 16 {
		t.ids = append(t.ids, id)
	}
	t.mu.Unlock()
	return ctx
}

func (t *traceTag) traced() []string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]string(nil), t.ids...)
}

// RunBlaster executes one load run: set up the working set, ramp, then
// measure for cfg.Duration (or until ctx cancels in long-run mode).
func RunBlaster(ctx context.Context, cfg BlasterConfig) (BlasterReport, error) {
	cfg.fill()
	if cfg.FS == nil {
		return BlasterReport{}, fmt.Errorf("blaster: no file system configured")
	}
	fsys := cfg.FS
	if err := fsys.Mkdirs(ctx, "/blaster"); err != nil {
		return BlasterReport{}, fmt.Errorf("blaster: mkdirs: %w", err)
	}
	// Working set: Files files of FileSize deterministic bytes each, so
	// reads always land on real data from the first tick.
	fill := make([]byte, cfg.FileSize)
	for i := range fill {
		fill[i] = byte('a' + i%26)
	}
	for i := 0; i < cfg.Files; i++ {
		w, err := fsys.Create(ctx, blasterFile(i), true)
		if err != nil {
			return BlasterReport{}, fmt.Errorf("blaster: create working set: %w", err)
		}
		if _, err := w.Write(fill); err != nil {
			w.Close()
			return BlasterReport{}, fmt.Errorf("blaster: fill working set: %w", err)
		}
		if err := w.Close(); err != nil {
			return BlasterReport{}, fmt.Errorf("blaster: fill working set: %w", err)
		}
	}

	bm := newBlasterMetrics(cfg.Registry, cfg.Rate > 0)
	bm.workers.Set(int64(cfg.Workers))
	var pace *pacer
	if cfg.Rate > 0 {
		pace = &pacer{start: time.Now(), rate: cfg.Rate}
	}
	tags := &traceTag{hook: cfg.Trace, every: int64(cfg.TraceEvery)}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < cfg.Workers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			blasterWorker(ctx, cfg, bm, id, stop, pace, tags)
		}(i)
	}

	// Ramp (untimed), then snapshot-bracket the measured window: rates
	// come from counter deltas, so the warm-up never inflates them.
	if cfg.Ramp > 0 {
		select {
		case <-time.After(cfg.Ramp):
		case <-ctx.Done():
		}
	}
	snap0 := cfg.Registry.Snapshot()
	t0 := time.Now()
	if cfg.Duration > 0 {
		select {
		case <-time.After(cfg.Duration):
		case <-ctx.Done():
		}
	} else {
		<-ctx.Done() // long-run mode: measure until canceled
	}
	elapsed := time.Since(t0).Seconds()
	snap1 := cfg.Registry.Snapshot()
	close(stop)
	wg.Wait()
	bm.workers.Set(0)

	r := BlasterReport{
		Workers:     cfg.Workers,
		Seconds:     elapsed,
		Ops:         make(map[string]BlasterOpStats, len(blasterOps)),
		ErrorBudget: cfg.ErrorBudget,
	}
	var totalErrs int64
	for _, op := range blasterOps {
		h := snap1.Histograms["latency_"+op]
		st := BlasterOpStats{
			Count:  snap1.Counters["ops_"+op] - snap0.Counters["ops_"+op],
			Errors: snap1.Counters["errors_"+op] - snap0.Counters["errors_"+op],
			P50us:  h.P50 / 1e3,
			P99us:  h.P99 / 1e3,
			P999us: h.P999 / 1e3,
		}
		r.Ops[op] = st
		r.TotalOps += st.Count
		totalErrs += st.Errors
	}
	if cfg.Rate > 0 {
		r.TargetRate = cfg.Rate
		r.Corrected = make(map[string]BlasterOpStats, len(blasterOps))
		for _, op := range blasterOps {
			h := snap1.Histograms["corrected_"+op]
			r.Corrected[op] = BlasterOpStats{
				Count:  r.Ops[op].Count,
				Errors: r.Ops[op].Errors,
				P50us:  h.P50 / 1e3,
				P99us:  h.P99 / 1e3,
				P999us: h.P999 / 1e3,
			}
		}
	}
	r.TraceIDs = tags.traced()
	if elapsed > 0 {
		r.OpsPerSec = float64(r.TotalOps) / elapsed
		r.ReadMBps = float64(snap1.Counters["bytes_read"]-snap0.Counters["bytes_read"]) / float64(util.MB) / elapsed
		r.WriteMBps = float64(snap1.Counters["bytes_written"]-snap0.Counters["bytes_written"]) / float64(util.MB) / elapsed
	}
	if n := r.TotalOps + totalErrs; n > 0 {
		r.ErrorRate = float64(totalErrs) / float64(n)
	}
	return r, nil
}

func blasterFile(i int) string { return fmt.Sprintf("/blaster/f%03d", i) }

// blasterWorker loops the weighted op mix until stopped. Ops run on
// the caller's ctx; shutdown closes stop between ops, so no op is ever
// canceled mid-flight and counted as a spurious error. With a pacer
// the worker waits for each ticket's intended start instead of
// re-issuing immediately, and the corrected histogram measures from
// that intended start.
func blasterWorker(ctx context.Context, cfg BlasterConfig, bm *blasterMetrics, id int, stop <-chan struct{}, pace *pacer, tags *traceTag) {
	rng := rand.New(rand.NewSource(cfg.Seed + int64(id)))
	total := cfg.MixOpen + cfg.MixRead + cfg.MixWrite + cfg.MixAppend
	buf := make([]byte, cfg.IOSize)
	for i := range buf {
		buf[i] = byte('A' + (id+i)%26)
	}
	for {
		var intended time.Time
		if pace != nil {
			intended = pace.intended()
			select {
			case <-stop:
				return
			case <-ctx.Done():
				return
			case <-time.After(time.Until(intended)):
				// A past intended time fires immediately: the op runs
				// late and its corrected latency includes the backlog.
			}
		} else {
			select {
			case <-stop:
				return
			case <-ctx.Done():
				return
			default:
			}
		}
		var op string
		switch n := rng.Intn(total); {
		case n < cfg.MixOpen:
			op = "open"
		case n < cfg.MixOpen+cfg.MixRead:
			op = "read"
		case n < cfg.MixOpen+cfg.MixRead+cfg.MixWrite:
			op = "write"
		default:
			op = "append"
		}
		octx := tags.wrap(ctx)
		t0 := time.Now()
		nbytes, err := blasterOp(octx, cfg, rng, id, op, buf)
		if err != nil {
			bm.errs[op].Inc()
			if cfg.OnError != nil {
				cfg.OnError(op, err)
			}
			continue
		}
		bm.lat[op].ObserveSince(t0)
		if pace != nil {
			bm.corr[op].ObserveSince(intended)
		}
		bm.ops[op].Inc()
		switch op {
		case "read":
			bm.bytesR.Add(nbytes)
		case "write", "append":
			bm.bytesW.Add(nbytes)
		}
	}
}

// blasterOp executes one operation and reports the bytes it moved.
func blasterOp(ctx context.Context, cfg BlasterConfig, rng *rand.Rand, id int, op string, buf []byte) (int64, error) {
	fsys := cfg.FS
	switch op {
	case "open":
		r, err := fsys.Open(ctx, blasterFile(rng.Intn(cfg.Files)))
		if err != nil {
			return 0, err
		}
		return 0, r.Close()

	case "read":
		r, err := fsys.Open(ctx, blasterFile(rng.Intn(cfg.Files)))
		if err != nil {
			return 0, err
		}
		defer r.Close()
		// A random in-range offset; files only grow (appends), so the
		// initial size is always a safe bound.
		maxOff := cfg.FileSize - int64(len(buf))
		if maxOff < 0 {
			maxOff = 0
		}
		off := rng.Int63n(maxOff + 1)
		if _, err := r.Seek(off, io.SeekStart); err != nil {
			return 0, err
		}
		n, err := io.ReadFull(r, buf)
		if err == io.ErrUnexpectedEOF || err == io.EOF {
			err = nil // clamped at a concurrent snapshot boundary
		}
		return int64(n), err

	case "write":
		// Whole-file overwrite on a per-worker target: exercises the
		// create/publish path without racing other workers' namespaces.
		w, err := fsys.Create(ctx, fmt.Sprintf("/blaster/w%03d", id), true)
		if err != nil {
			return 0, err
		}
		if _, err := w.Write(buf); err != nil {
			w.Close()
			return 0, err
		}
		return int64(len(buf)), w.Close()

	case "append":
		// Concurrent appends to a shared file — Figure 5's workload.
		w, err := fsys.Append(ctx, blasterFile(rng.Intn(cfg.Files)))
		if err != nil {
			return 0, err
		}
		if _, err := w.Write(buf); err != nil {
			w.Close()
			return 0, err
		}
		return int64(len(buf)), w.Close()
	}
	return 0, fmt.Errorf("blaster: unknown op %q", op)
}
