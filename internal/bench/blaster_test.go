package bench

import (
	"context"
	"testing"
	"time"

	"blobseer/internal/cluster"
	"blobseer/internal/core"
	"blobseer/internal/metrics"
	"blobseer/internal/trace"
	"blobseer/internal/util"
)

// TestBlasterShortRun drives a short mixed load against an in-process
// cluster and pins the report contract: work completed in the window,
// every op type observed, errors within budget, and Check() green.
func TestBlasterShortRun(t *testing.T) {
	cl, err := cluster.StartBlobSeer(cluster.Config{
		DataProviders: 2,
		MetaProviders: 2,
		BlockSize:     64 * util.KB,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	fsys, err := cl.NewBSFS("")
	if err != nil {
		t.Fatal(err)
	}

	reg := metrics.NewRegistry()
	report, err := RunBlaster(context.Background(), BlasterConfig{
		FS:       fsys,
		Workers:  3,
		Duration: 400 * time.Millisecond,
		Ramp:     100 * time.Millisecond,
		Files:    4,
		IOSize:   8 * int(util.KB),
		// Concurrent appends to a shared file race the unaligned-tail
		// read-modify-write merge; the loser's republish can be rejected
		// by the version manager (ErrUnaligned). That contention is a
		// real property of the system under this mix, not a blaster bug
		// — budget for it instead of demanding a spotless run.
		ErrorBudget: 0.05,
		Registry:    reg,
		Seed:        42,
		OnError:     func(op string, err error) { t.Logf("op %s: %v", op, err) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := report.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
	if report.TotalOps == 0 || report.OpsPerSec <= 0 {
		t.Fatalf("empty run: %+v", report)
	}
	if report.ErrorRate > report.ErrorBudget {
		t.Fatalf("error rate %.4f exceeds budget %.4f", report.ErrorRate, report.ErrorBudget)
	}
	for _, op := range []string{"open", "read", "write", "append"} {
		st, ok := report.Ops[op]
		if !ok {
			t.Fatalf("report missing op %q", op)
		}
		if st.Count == 0 {
			t.Errorf("op %q never completed in the window", op)
		}
		if st.Count > 0 && st.P50us <= 0 {
			t.Errorf("op %q has %d observations but p50 %.1fµs", op, st.Count, st.P50us)
		}
	}
	// The live registry doubles as the /metrics surface: the same
	// counters the report was computed from must be visible there.
	snap := reg.Snapshot()
	if snap.Counters["bytes_read"] == 0 || snap.Counters["bytes_written"] == 0 {
		t.Errorf("registry byte counters not populated: %+v", snap.Counters)
	}

	// Long-run mode: a canceled context ends the window.
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	report2, err := RunBlaster(ctx, BlasterConfig{
		FS:          fsys,
		Workers:     2,
		Duration:    0, // until ctx cancels
		Files:       4,
		IOSize:      4 * int(util.KB),
		ErrorBudget: 0.05,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := report2.Check(); err != nil {
		t.Fatalf("long-run Check: %v", err)
	}
}

// TestBlasterErrorBudget pins the gate: a report over budget fails
// Check, one at or under it passes.
func TestBlasterErrorBudget(t *testing.T) {
	r := BlasterReport{TotalOps: 98, ErrorRate: 0.02, ErrorBudget: 0.01}
	if err := r.Check(); err == nil {
		t.Fatal("Check passed over budget")
	}
	r.ErrorBudget = 0.02
	if err := r.Check(); err != nil {
		t.Fatalf("Check failed at budget: %v", err)
	}
	if err := (BlasterReport{}).Check(); err == nil {
		t.Fatal("Check passed an empty run")
	}
}

// TestBlasterPacedOpenLoop: with Rate set the blaster paces ops from a
// global schedule and reports corrected percentiles measured from each
// op's intended start — the coordinated-omission-honest view. A trace
// hook tags sampled ops and the IDs surface in the report.
func TestBlasterPacedOpenLoop(t *testing.T) {
	cl, err := cluster.StartBlobSeer(cluster.Config{
		DataProviders: 2,
		MetaProviders: 2,
		BlockSize:     64 * util.KB,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	fsys, err := cl.NewBSFS("")
	if err != nil {
		t.Fatal(err)
	}

	traced := 0
	report, err := RunBlaster(context.Background(), BlasterConfig{
		FS:          fsys,
		Workers:     2,
		Duration:    500 * time.Millisecond,
		Ramp:        50 * time.Millisecond,
		Files:       4,
		IOSize:      4 * int(util.KB),
		Rate:        200, // well under what the in-proc cluster sustains
		ErrorBudget: 0.05,
		Seed:        11,
		Trace: func(ctx context.Context) (context.Context, string) {
			traced++
			tctx, id := core.WithTrace(ctx)
			return tctx, id.String()
		},
		TraceEvery: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := report.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
	if report.TargetRate != 200 {
		t.Errorf("TargetRate = %v, want 200", report.TargetRate)
	}
	// A paced run at well under capacity completes close to rate*window
	// ops, not "as many as possible": the loop really is open.
	want := 200 * 0.5
	if f := float64(report.TotalOps); f < want/2 || f > want*2 {
		t.Errorf("paced run completed %d ops, want about %.0f", report.TotalOps, want)
	}
	if len(report.Corrected) == 0 {
		t.Fatal("paced report carries no corrected percentiles")
	}
	for op, st := range report.Ops {
		cs, ok := report.Corrected[op]
		if !ok || st.Count == 0 {
			continue
		}
		// Corrected latency includes the wait from the intended start,
		// so its percentiles can never undercut the service time's.
		if cs.P99us < st.P99us-1 {
			t.Errorf("op %s: corrected p99 %.0fµs below service p99 %.0fµs", op, cs.P99us, st.P99us)
		}
	}
	if traced == 0 || len(report.TraceIDs) == 0 {
		t.Errorf("trace hook fired %d times, report carries %d IDs; want both > 0",
			traced, len(report.TraceIDs))
	}
	for _, id := range report.TraceIDs {
		if _, err := trace.ParseID(id); err != nil {
			t.Errorf("reported trace ID %q unparseable: %v", id, err)
		}
	}
}

// TestBlasterClosedLoopHasNoCorrected: without Rate the corrected view
// must be absent, not zero-filled — closed-loop latency from intended
// start would be meaningless.
func TestBlasterClosedLoopHasNoCorrected(t *testing.T) {
	cl, err := cluster.StartBlobSeer(cluster.Config{
		DataProviders: 1,
		MetaProviders: 1,
		BlockSize:     64 * util.KB,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	fsys, err := cl.NewBSFS("")
	if err != nil {
		t.Fatal(err)
	}
	report, err := RunBlaster(context.Background(), BlasterConfig{
		FS:          fsys,
		Workers:     1,
		Duration:    200 * time.Millisecond,
		Files:       2,
		IOSize:      4 * int(util.KB),
		ErrorBudget: 0.05,
		Seed:        3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.TargetRate != 0 || len(report.Corrected) != 0 || len(report.TraceIDs) != 0 {
		t.Errorf("closed-loop report leaked open-loop fields: rate %v, %d corrected, %d trace ids",
			report.TargetRate, len(report.Corrected), len(report.TraceIDs))
	}
}
