package bench

import (
	"context"
	"testing"
	"time"

	"blobseer/internal/cluster"
	"blobseer/internal/metrics"
	"blobseer/internal/util"
)

// TestBlasterShortRun drives a short mixed load against an in-process
// cluster and pins the report contract: work completed in the window,
// every op type observed, errors within budget, and Check() green.
func TestBlasterShortRun(t *testing.T) {
	cl, err := cluster.StartBlobSeer(cluster.Config{
		DataProviders: 2,
		MetaProviders: 2,
		BlockSize:     64 * util.KB,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	fsys, err := cl.NewBSFS("")
	if err != nil {
		t.Fatal(err)
	}

	reg := metrics.NewRegistry()
	report, err := RunBlaster(context.Background(), BlasterConfig{
		FS:       fsys,
		Workers:  3,
		Duration: 400 * time.Millisecond,
		Ramp:     100 * time.Millisecond,
		Files:    4,
		IOSize:   8 * int(util.KB),
		// Concurrent appends to a shared file race the unaligned-tail
		// read-modify-write merge; the loser's republish can be rejected
		// by the version manager (ErrUnaligned). That contention is a
		// real property of the system under this mix, not a blaster bug
		// — budget for it instead of demanding a spotless run.
		ErrorBudget: 0.05,
		Registry:    reg,
		Seed:        42,
		OnError:     func(op string, err error) { t.Logf("op %s: %v", op, err) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := report.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
	if report.TotalOps == 0 || report.OpsPerSec <= 0 {
		t.Fatalf("empty run: %+v", report)
	}
	if report.ErrorRate > report.ErrorBudget {
		t.Fatalf("error rate %.4f exceeds budget %.4f", report.ErrorRate, report.ErrorBudget)
	}
	for _, op := range []string{"open", "read", "write", "append"} {
		st, ok := report.Ops[op]
		if !ok {
			t.Fatalf("report missing op %q", op)
		}
		if st.Count == 0 {
			t.Errorf("op %q never completed in the window", op)
		}
		if st.Count > 0 && st.P50us <= 0 {
			t.Errorf("op %q has %d observations but p50 %.1fµs", op, st.Count, st.P50us)
		}
	}
	// The live registry doubles as the /metrics surface: the same
	// counters the report was computed from must be visible there.
	snap := reg.Snapshot()
	if snap.Counters["bytes_read"] == 0 || snap.Counters["bytes_written"] == 0 {
		t.Errorf("registry byte counters not populated: %+v", snap.Counters)
	}

	// Long-run mode: a canceled context ends the window.
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	report2, err := RunBlaster(ctx, BlasterConfig{
		FS:          fsys,
		Workers:     2,
		Duration:    0, // until ctx cancels
		Files:       4,
		IOSize:      4 * int(util.KB),
		ErrorBudget: 0.05,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := report2.Check(); err != nil {
		t.Fatalf("long-run Check: %v", err)
	}
}

// TestBlasterErrorBudget pins the gate: a report over budget fails
// Check, one at or under it passes.
func TestBlasterErrorBudget(t *testing.T) {
	r := BlasterReport{TotalOps: 98, ErrorRate: 0.02, ErrorBudget: 0.01}
	if err := r.Check(); err == nil {
		t.Fatal("Check passed over budget")
	}
	r.ErrorBudget = 0.02
	if err := r.Check(); err != nil {
		t.Fatalf("Check failed at budget: %v", err)
	}
	if err := (BlasterReport{}).Check(); err == nil {
		t.Fatal("Check passed an empty run")
	}
}
