package bench

import "testing"

// TestAblationVMShardsDirection pins the sharding claim: with the
// version manager's service time the bottleneck, 4 shards must buy at
// least 2.5x the aggregate publish throughput of 1 under 8 concurrent
// writers (the acceptance bar; ideal is 4x minus the data-path floor).
func TestAblationVMShardsDirection(t *testing.T) {
	series := AblationVMShards(8, 10, []int{1, 4})
	if len(series) != 1 || len(series[0].Points) != 2 {
		t.Fatalf("malformed series: %+v", series)
	}
	one, four := series[0].Points[0].Y, series[0].Points[1].Y
	if four < 2.5*one {
		t.Errorf("4 shards should buy >=2.5x publish throughput over 1: %.0f vs %.0f/s", four, one)
	}
}

// TestAblationVMShardsMonotone checks the full sweep keeps climbing:
// more shards never cost throughput while the control plane is the
// bottleneck.
func TestAblationVMShardsMonotone(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep in -short mode")
	}
	series := AblationVMShards(8, 10, []int{1, 2, 4, 8})
	pts := series[0].Points
	for i := 1; i < len(pts); i++ {
		if pts[i].Y <= pts[i-1].Y {
			t.Errorf("K=%.0f (%.0f/s) should beat K=%.0f (%.0f/s)",
				pts[i].X, pts[i].Y, pts[i-1].X, pts[i-1].Y)
		}
	}
}

// TestGroupCommitCoalesces pins the WAL group-commit mechanism on the
// real log: 8 concurrent durable publishers must share fsyncs (strictly
// fewer fsyncs than records) and beat 2x the single-writer rate — the
// whole point of leader-follower batching.
func TestGroupCommitCoalesces(t *testing.T) {
	series, err := GroupCommitBench(200, []int{1, 8})
	if err != nil {
		t.Fatal(err)
	}
	rate, coalesce := series[0], series[1]
	one, eight := rate.Points[0].Y, rate.Points[1].Y
	if eight < 2*one {
		t.Errorf("8 concurrent writers should publish >2x faster than 1 under group commit: %.0f vs %.0f/s", eight, one)
	}
	if f := coalesce.Points[1].Y; f >= 1.0 {
		t.Errorf("8 writers should coalesce fsyncs (fsyncs/record < 1), got %.3f", f)
	}
}
