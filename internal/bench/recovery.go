package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"blobseer/internal/blob"
	"blobseer/internal/cluster"
	"blobseer/internal/util"
	"blobseer/internal/vmanager"
	"blobseer/internal/wal"
)

// Crash-recovery ablation: the durability layer's three claims,
// measured on the real (in-process) stack rather than the simulator —
// recovery cost and fsync cost are wall-clock properties of the WAL
// implementation, not of the modeled fabric.
//
//  1. Durability: without a WAL a version-manager crash erases the
//     publication line; with one, every acknowledged write survives.
//  2. Recovery time grows with the un-snapshotted log suffix.
//  3. Fsync policy is the durability/throughput trade: every-record
//     fsync pays per operation, interval fsync amortizes it.
//
// CrashRecoveryBench bundles all three for BENCH_recovery.json.

// recoveryBlock keeps the durability arms quick: the property under
// test is the publication line, not data-plane bandwidth.
const recoveryBlock = 64 * util.KB

// AblationCrashRecovery runs the durability arms on a live cluster:
// write `versions` versions, crash and restart the version manager,
// and count what survived. The "no-wal" arm runs volatile (DataDir
// unset) and loses the line; the "wal" arm recovers it entirely.
func AblationCrashRecovery(versions int) ([]Series, error) {
	arms := []struct {
		name    string
		durable bool
	}{
		{"no-wal", false},
		{"wal", true},
	}
	ctx := context.Background()
	out := make([]Series, 0, len(arms))
	for _, arm := range arms {
		cfg := cluster.Config{
			DataProviders: 2,
			MetaProviders: 1,
			BlockSize:     recoveryBlock,
			CallTimeout:   2 * time.Second,
		}
		if arm.durable {
			dir, err := os.MkdirTemp("", "bench-recovery-*")
			if err != nil {
				return nil, err
			}
			defer os.RemoveAll(dir)
			cfg.DataDir = dir
		}
		c, err := cluster.StartBlobSeer(cfg)
		if err != nil {
			return nil, err
		}
		b, err := c.NewClient("").CreateBlob(ctx, recoveryBlock, 1)
		if err != nil {
			c.Stop()
			return nil, err
		}
		payload := make([]byte, recoveryBlock)
		acked := 0
		for i := 0; i < versions; i++ {
			if _, err := b.Append(ctx, payload); err == nil {
				acked++
			}
		}
		c.KillVManager()
		if err := c.RestartVManager(); err != nil {
			c.Stop()
			return nil, err
		}
		survived := 0
		vm := vmanager.NewClient(c.Pool, c.VMAddr)
		if pub, _, err := vm.Latest(ctx, b.ID()); err == nil {
			survived = int(pub)
		}
		c.Stop()
		out = append(out, Series{
			Name: arm.name, XLabel: "acked versions", YLabel: "survived versions",
			Points: []Point{{X: float64(acked), Y: float64(survived)}},
		})
	}
	return out, nil
}

// AblationRecoveryTime measures replay cost against log length: build
// a version-manager WAL of n records (one assign + one commit per
// version), then time a cold Recover.
func AblationRecoveryTime(counts []int) ([]Series, error) {
	s := Series{Name: "replay", XLabel: "log records", YLabel: "recovery ms"}
	for _, n := range counts {
		dir, err := os.MkdirTemp("", "bench-replay-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		// Interval sync while seeding: we measure replay, not append.
		if err := seedVMLog(dir, n/2); err != nil {
			return nil, err
		}
		start := time.Now()
		log, err := wal.Open(dir, wal.Options{Policy: wal.SyncInterval, Interval: 50 * time.Millisecond})
		if err != nil {
			return nil, err
		}
		st, err := vmanager.Recover(log, nil)
		if err != nil {
			log.Close()
			return nil, err
		}
		elapsed := time.Since(start)
		st.CloseWAL()
		s.Points = append(s.Points, Point{X: float64(n), Y: float64(elapsed.Microseconds()) / 1e3})
	}
	return []Series{s}, nil
}

// seedVMLog writes a WAL holding `versions` committed versions (plus
// the create record) and closes it.
func seedVMLog(dir string, versions int) error {
	log, err := wal.Open(dir, wal.Options{Policy: wal.SyncInterval, Interval: 50 * time.Millisecond})
	if err != nil {
		return err
	}
	st, err := vmanager.Recover(log, nil)
	if err != nil {
		log.Close()
		return err
	}
	defer st.CloseWAL()
	m, err := st.CreateBlob(recoveryBlock, 1)
	if err != nil {
		return err
	}
	for i := 0; i < versions; i++ {
		a, err := st.AssignVersion(m.ID, blob.KindAppend, 0, recoveryBlock, uint64(i)+1, blob.NoVersion)
		if err != nil {
			return err
		}
		if err := st.Commit(m.ID, a.Version); err != nil {
			return err
		}
	}
	return nil
}

// AblationFsyncPolicy measures the throughput cost of the fsync
// policy: assign+commit pairs per second on a bare version-manager
// core under every-record fsync, interval fsync, and no WAL at all
// (the upper bound durability pays against).
func AblationFsyncPolicy(versions int) ([]Series, error) {
	arms := []struct {
		name string
		opts *wal.Options // nil = volatile
	}{
		{"fsync-always", &wal.Options{Policy: wal.SyncAlways}},
		{"fsync-5ms", &wal.Options{Policy: wal.SyncInterval, Interval: 5 * time.Millisecond}},
		{"no-wal", nil},
	}
	out := make([]Series, 0, len(arms))
	for _, arm := range arms {
		var st *vmanager.State
		if arm.opts == nil {
			st = vmanager.NewState(nil)
		} else {
			dir, err := os.MkdirTemp("", "bench-fsync-*")
			if err != nil {
				return nil, err
			}
			defer os.RemoveAll(dir)
			log, err := wal.Open(dir, *arm.opts)
			if err != nil {
				return nil, err
			}
			st, err = vmanager.Recover(log, nil)
			if err != nil {
				log.Close()
				return nil, err
			}
		}
		m, err := st.CreateBlob(recoveryBlock, 1)
		if err != nil {
			st.CloseWAL()
			return nil, err
		}
		start := time.Now()
		for i := 0; i < versions; i++ {
			a, err := st.AssignVersion(m.ID, blob.KindAppend, 0, recoveryBlock, uint64(i)+1, blob.NoVersion)
			if err != nil {
				st.CloseWAL()
				return nil, err
			}
			if err := st.Commit(m.ID, a.Version); err != nil {
				st.CloseWAL()
				return nil, err
			}
		}
		elapsed := time.Since(start)
		st.CloseWAL()
		opsPerSec := float64(versions) / elapsed.Seconds()
		out = append(out, Series{
			Name: arm.name, XLabel: "versions", YLabel: "publishes/sec",
			Points: []Point{{X: float64(versions), Y: opsPerSec}},
		})
	}
	return out, nil
}

// RecoveryBench is the BENCH_recovery.json document.
type RecoveryBench struct {
	Durability   []Series `json:"durability"`
	RecoveryTime []Series `json:"recovery_time"`
	FsyncCost    []Series `json:"fsync_cost"`
}

// CrashRecoveryBench runs all three recovery experiments. quick
// shrinks the sweeps for CI smoke runs.
func CrashRecoveryBench(quick bool) (RecoveryBench, error) {
	versions, fsyncN := 32, 2000
	counts := []int{1000, 5000, 20000}
	if quick {
		versions, fsyncN = 8, 200
		counts = []int{200, 1000}
	}
	var r RecoveryBench
	var err error
	if r.Durability, err = AblationCrashRecovery(versions); err != nil {
		return r, fmt.Errorf("durability arm: %w", err)
	}
	if r.RecoveryTime, err = AblationRecoveryTime(counts); err != nil {
		return r, fmt.Errorf("recovery-time arm: %w", err)
	}
	if r.FsyncCost, err = AblationFsyncPolicy(fsyncN); err != nil {
		return r, fmt.Errorf("fsync arm: %w", err)
	}
	return r, nil
}

// WriteJSON writes the report to path, indented for diffability.
func (r RecoveryBench) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
