package stream

import (
	"context"
	"io"
	"sync"
)

// StartState is the write mode a Writer resolves on its first flush.
type StartState struct {
	// OffsetMode streams commit at self-tracked offsets (create-mode
	// streams, appends continuing after an unaligned-tail merge); when
	// false, commits go through the storage layer's native append and
	// the offset is fixed by the version manager at assignment time.
	OffsetMode bool
	// Off is the file offset of the first flush in offset mode.
	Off int64
	// Prefix is prepended to the stream's buffered data before the
	// first flush — the read-modify-write merge of an unaligned tail.
	Prefix []byte
}

// WriterConfig wires a Writer to its blob.
type WriterConfig struct {
	// BlockSize is the commit granularity: data is committed one full
	// block at a time, plus one final (possibly partial) block at Close.
	BlockSize int64
	// Depth is the write-behind window: up to this many full-block
	// commits proceed in the background while Write keeps buffering.
	// <= 0 keeps writes fully synchronous — each block commit completes
	// before Write returns.
	Depth int
	// Start resolves the write mode on first flush (nil = offset mode
	// from offset 0). It runs at most once.
	Start func(ctx context.Context) (StartState, error)
	// WriteAt commits data at a fixed, block-aligned offset (required).
	WriteAt func(ctx context.Context, off int64, data []byte) error
	// Append commits data through the storage layer's native append
	// (required unless Start always selects offset mode).
	Append func(ctx context.Context, data []byte) error
	// Collector, when non-nil, aggregates this writer's write-behind
	// activity into shared client-wide metrics.
	Collector *Collector
}

// Writer is a sequential writer with write-behind buffering: data is
// committed one full block at a time; the final partial block is
// committed at Close (Section IV-B). With Depth > 0 full-block commits
// run on a bounded background worker pool while Write keeps buffering;
// commit errors are latched and surfaced on the next Write or Close,
// and Close drains the window before committing the final partial
// block.
type Writer struct {
	ctx       context.Context
	cfg       WriterConfig
	blockSize int64
	depth     int

	mu         sync.Mutex
	started    bool
	offsetMode bool  // create mode, or append after an unaligned-tail merge
	written    int64 // offset mode: file offset of the next flush
	buf        []byte
	closed     bool
	closeErr   error

	// Write-behind state (depth > 0). Workers never take mu, so
	// holding it across a blocking enqueue cannot deadlock.
	queue chan wbBlock
	wg    sync.WaitGroup

	errMu sync.Mutex
	werr  error // first background commit error, latched
}

var _ io.WriteCloser = (*Writer)(nil)

// wbBlock is one full block handed to the write-behind pool. off < 0
// marks a block-aligned append (offset fixed by the version manager).
type wbBlock struct {
	off  int64
	data []byte
}

// NewWriter returns a writer committing through cfg. The context is
// pinned for the writer's lifetime: canceling it fails all later
// commits.
func NewWriter(ctx context.Context, cfg WriterConfig) *Writer {
	depth := cfg.Depth
	if depth < 0 {
		depth = 0
	}
	cfg.Collector.writerOpened()
	return &Writer{
		ctx:       ctx,
		cfg:       cfg,
		blockSize: cfg.BlockSize,
		depth:     depth,
	}
}

// asyncErr returns the latched background commit error, if any.
func (w *Writer) asyncErr() error {
	w.errMu.Lock()
	defer w.errMu.Unlock()
	return w.werr
}

func (w *Writer) setAsyncErr(err error) {
	w.errMu.Lock()
	if w.werr == nil {
		w.werr = err
	}
	w.errMu.Unlock()
}

// Write implements io.Writer.
func (w *Writer) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		if w.closeErr != nil {
			return 0, w.closeErr
		}
		return 0, ErrWriterClosed
	}
	if err := w.asyncErr(); err != nil {
		return 0, err
	}
	total := 0
	for len(p) > 0 {
		room := int(w.blockSize) - len(w.buf)
		if room <= 0 {
			if err := w.lockedFlush(false); err != nil {
				return total, err
			}
			room = int(w.blockSize) - len(w.buf)
		}
		n := len(p)
		if n > room {
			n = room
		}
		w.buf = append(w.buf, p[:n]...)
		p = p[n:]
		total += n
	}
	// Eagerly flush full blocks so long streams commit as they go.
	if int64(len(w.buf)) >= w.blockSize {
		if err := w.lockedFlush(false); err != nil {
			return total, err
		}
	}
	return total, nil
}

// lockedStart resolves the write mode on first flush through the Start
// hook: offset-tracked streams and merged unaligned-tail appends track
// offsets themselves; native appends leave offset assignment to the
// storage layer.
func (w *Writer) lockedStart() error {
	if w.started {
		return nil
	}
	st := StartState{OffsetMode: true}
	if w.cfg.Start != nil {
		var err error
		st, err = w.cfg.Start(w.ctx)
		if err != nil {
			return err
		}
	}
	w.offsetMode = st.OffsetMode
	w.written = st.Off
	if len(st.Prefix) > 0 {
		w.buf = append(append([]byte(nil), st.Prefix...), w.buf...)
	}
	w.started = true
	return nil
}

// lockedFlush commits buffered data. Unless final, it only commits
// whole blocks so every flush offset stays block-aligned (the
// remainder stays buffered for the next round). With write-behind
// enabled, non-final flushes enqueue whole blocks to the background
// pool instead of committing inline. On error the buffered data is
// restored, so a transient failure loses nothing.
func (w *Writer) lockedFlush(final bool) error {
	if len(w.buf) == 0 {
		return nil
	}
	if err := w.lockedStart(); err != nil {
		return err
	}
	if w.depth > 0 && !final {
		return w.lockedEnqueueFull()
	}
	data := w.buf
	if final {
		w.buf = nil
	} else {
		keep := int64(len(data)) % w.blockSize
		flushLen := int64(len(data)) - keep
		if flushLen == 0 {
			return nil // no whole block buffered yet
		}
		w.buf = append([]byte(nil), data[flushLen:]...)
		data = data[:flushLen]
	}
	if !w.offsetMode {
		// Native append: fully concurrent with other appenders, the
		// storage layer fixes the offset (Figure 5's workload).
		if err := w.cfg.Append(w.ctx, data); err != nil {
			w.buf = append(data, w.buf...)
			return err
		}
		return nil
	}
	off := w.written
	w.written += int64(len(data))
	if err := w.cfg.WriteAt(w.ctx, off, data); err != nil {
		w.buf = append(data, w.buf...)
		w.written = off
		return err
	}
	return nil
}

// lockedEnqueueFull hands every whole buffered block to the
// write-behind pool, blocking while the window is full.
func (w *Writer) lockedEnqueueFull() error {
	for int64(len(w.buf)) >= w.blockSize {
		if err := w.asyncErr(); err != nil {
			return err
		}
		data := w.buf
		block := data[:w.blockSize:w.blockSize]
		w.buf = append([]byte(nil), data[w.blockSize:]...)
		blk := wbBlock{off: -1, data: block}
		if w.offsetMode {
			blk.off = w.written
			w.written += w.blockSize
		}
		w.lockedEnsureWorkers()
		w.cfg.Collector.commitQueued()
		w.queue <- blk
	}
	return nil
}

// lockedEnsureWorkers starts the commit pool on first use. Offset-mode
// streams commit up to depth blocks concurrently (each block's offset
// is fixed at enqueue time, so completion order is irrelevant —
// exactly the write/write concurrency BlobSeer is built for). Appends
// use a single worker: offsets are assigned in arrival order, so
// in-flight appends from one stream must stay ordered.
func (w *Writer) lockedEnsureWorkers() {
	if w.queue != nil {
		return
	}
	w.queue = make(chan wbBlock, w.depth)
	workers := 1
	if w.offsetMode {
		workers = w.depth
	}
	for i := 0; i < workers; i++ {
		w.wg.Add(1)
		go w.commitLoop()
	}
}

// commitLoop drains the write-behind queue. After the first error the
// remaining blocks are discarded (the stream is broken anyway) so the
// producer never blocks on a dead pipeline.
func (w *Writer) commitLoop() {
	defer w.wg.Done()
	for blk := range w.queue {
		if w.asyncErr() != nil {
			w.cfg.Collector.commitDone(0)
			continue
		}
		var err error
		if blk.off >= 0 {
			err = w.cfg.WriteAt(w.ctx, blk.off, blk.data)
		} else {
			err = w.cfg.Append(w.ctx, blk.data)
		}
		if err != nil {
			w.setAsyncErr(err)
		}
		w.cfg.Collector.commitDone(int64(len(blk.data)))
	}
}

// Close drains the write-behind window, then commits the final
// (possibly partial) block. A failed Close does not latch the writer
// closed-with-success: retrying is allowed (the unflushed tail is
// preserved), and once a background commit error is latched every
// further Close reports it instead of pretending the data is safe.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return w.closeErr
	}
	if w.queue != nil {
		close(w.queue)
		w.wg.Wait()
		w.queue = nil
	}
	if err := w.asyncErr(); err != nil {
		w.closed = true
		w.closeErr = err
		w.cfg.Collector.writerClosed()
		return err
	}
	if err := w.lockedFlush(true); err != nil {
		return err
	}
	w.closed = true
	w.cfg.Collector.writerClosed()
	return nil
}

// Buffered reports the bytes accepted by Write but not yet handed to a
// commit (tests, diagnostics).
func (w *Writer) Buffered() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.buf)
}
