package stream_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"testing"

	"blobseer/internal/stream"
)

const B = 4 * 1024

func pattern(tag byte, n int) []byte {
	d := make([]byte, n)
	for i := range d {
		d[i] = tag ^ byte(i*13)
	}
	return d
}

// memSource is an in-memory snapshot with per-fetch accounting and an
// optional per-fetch failure hook.
type memSource struct {
	data    []byte
	fetches atomic.Int64
	fail    atomic.Bool
}

func (m *memSource) fetch(ctx context.Context, off, length int64) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if m.fail.Load() {
		return nil, errors.New("memSource: injected fetch failure")
	}
	m.fetches.Add(1)
	end := off + length
	if end > int64(len(m.data)) {
		return nil, fmt.Errorf("memSource: fetch [%d,+%d) past size %d", off, length, len(m.data))
	}
	return append([]byte(nil), m.data[off:end]...), nil
}

func (m *memSource) reader(readahead int) *stream.Reader {
	return stream.NewReader(context.Background(), stream.ReaderConfig{
		Fetch:     m.fetch,
		Size:      int64(len(m.data)),
		BlockSize: B,
		Readahead: readahead,
	})
}

// memSink is an in-memory blob accepting offset writes and appends.
type memSink struct {
	mu      sync.Mutex
	data    []byte
	commits []string // op log: "w@off:len" / "a:len"
	failPfx atomic.Bool
}

func (m *memSink) writeAt(ctx context.Context, off int64, p []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if m.failPfx.Load() {
		return errors.New("memSink: injected commit failure")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if need := off + int64(len(p)); int64(len(m.data)) < need {
		m.data = append(m.data, make([]byte, need-int64(len(m.data)))...)
	}
	copy(m.data[off:], p)
	m.commits = append(m.commits, fmt.Sprintf("w@%d:%d", off, len(p)))
	return nil
}

func (m *memSink) append(ctx context.Context, p []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if m.failPfx.Load() {
		return errors.New("memSink: injected commit failure")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.data = append(m.data, p...)
	m.commits = append(m.commits, fmt.Sprintf("a:%d", len(p)))
	return nil
}

func (m *memSink) bytes() []byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]byte(nil), m.data...)
}

func (m *memSink) writer(depth int, start func(ctx context.Context) (stream.StartState, error)) *stream.Writer {
	return stream.NewWriter(context.Background(), stream.WriterConfig{
		BlockSize: B,
		Depth:     depth,
		Start:     start,
		WriteAt:   m.writeAt,
		Append:    m.append,
	})
}

// TestReaderSequentialPipelined: a sequential stream through a wide
// window returns exact bytes and actually uses the readahead pipeline.
func TestReaderSequentialPipelined(t *testing.T) {
	src := &memSource{data: pattern('r', 7*B+321)}
	r := src.reader(3)
	defer r.Close()
	var got []byte
	buf := make([]byte, 4096)
	for {
		n, err := r.Read(buf)
		got = append(got, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(got, src.data) {
		t.Fatalf("round trip mismatch: %d vs %d bytes", len(got), len(src.data))
	}
	st := r.ReadStats()
	if st.Prefetched == 0 || st.PrefetchHits == 0 {
		t.Errorf("sequential stream should use the readahead window, stats = %+v", st)
	}
}

// TestReaderSeekCancelsWindow: seeking away from a warm run drops and
// cancels the unconsumed prefetches.
func TestReaderSeekCancelsWindow(t *testing.T) {
	src := &memSource{data: pattern('s', 8*B)}
	r := src.reader(3)
	defer r.Close()
	buf := make([]byte, 100)
	if _, err := io.ReadFull(r, buf); err != nil {
		t.Fatal(err)
	}
	if st := r.ReadStats(); st.Prefetched == 0 {
		t.Fatalf("sequential start should prefetch, stats = %+v", st)
	}
	if _, err := r.Seek(7*B, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	if st := r.ReadStats(); st.Canceled == 0 {
		t.Errorf("Seek away should cancel the window, stats = %+v", st)
	}
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, src.data[7*B:]) {
		t.Error("read after seek mismatch")
	}
}

// TestReaderNoCacheFetchesExactRanges: ablation mode bypasses the block
// cache entirely — every Read fetches at request granularity.
func TestReaderNoCacheFetchesExactRanges(t *testing.T) {
	src := &memSource{data: pattern('n', 2*B)}
	r := stream.NewReader(context.Background(), stream.ReaderConfig{
		Fetch:     src.fetch,
		Size:      int64(len(src.data)),
		BlockSize: B,
		Readahead: 4, // NoCache wins: forced synchronous
		NoCache:   true,
	})
	defer r.Close()
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, src.data) {
		t.Fatal("nocache round trip mismatch")
	}
	if st := r.ReadStats(); st.Prefetched != 0 {
		t.Errorf("NoCache reader prefetched %d blocks, want 0", st.Prefetched)
	}
}

// TestReaderClosedSemantics: Read and Seek on a closed reader return
// ErrReaderClosed, matching the shared ErrClosed sentinel.
func TestReaderClosedSemantics(t *testing.T) {
	src := &memSource{data: pattern('c', B)}
	r := src.reader(0)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(make([]byte, 8)); !errors.Is(err, stream.ErrReaderClosed) || !errors.Is(err, stream.ErrClosed) {
		t.Errorf("Read after Close = %v, want ErrReaderClosed matching ErrClosed", err)
	}
	if _, err := r.Seek(0, io.SeekStart); !errors.Is(err, stream.ErrReaderClosed) {
		t.Errorf("Seek after Close = %v, want ErrReaderClosed", err)
	}
	if err := r.Close(); err != nil {
		t.Errorf("double Close = %v", err)
	}
}

// TestWriterOffsetModeCommitsAlignedBlocks: an offset stream commits
// whole blocks at block-aligned offsets plus one final partial block.
func TestWriterOffsetModeCommitsAlignedBlocks(t *testing.T) {
	sink := &memSink{}
	w := sink.writer(0, nil)
	data := pattern('o', 3*B+100)
	for off := 0; off < len(data); off += 777 {
		end := min(off+777, len(data))
		if _, err := w.Write(data[off:end]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sink.bytes(), data) {
		t.Fatal("offset stream content mismatch")
	}
	for _, c := range sink.commits {
		var off, ln int
		if _, err := fmt.Sscanf(c, "w@%d:%d", &off, &ln); err != nil {
			t.Fatalf("unexpected commit op %q", c)
		}
		if off%B != 0 {
			t.Errorf("unaligned commit %q", c)
		}
	}
}

// TestWriterWriteBehindParity: the same stream through depth-0 and
// deep windows produces identical content (the old bsfs-internal
// pipeline's ablation contract, now pinned at the engine level).
func TestWriterWriteBehindParity(t *testing.T) {
	data := pattern('p', 5*B+1234)
	run := func(depth int) []byte {
		sink := &memSink{}
		w := sink.writer(depth, nil)
		for off := 0; off < len(data); off += 4096 {
			end := min(off+4096, len(data))
			if _, err := w.Write(data[off:end]); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		return sink.bytes()
	}
	syncBytes := run(0)
	pipeBytes := run(4)
	if !bytes.Equal(syncBytes, data) || !bytes.Equal(pipeBytes, data) {
		t.Fatal("content mismatch against source")
	}
}

// TestWriterAppendModeSingleWorkerOrdered: append-mode write-behind
// must keep commit order (one worker), so the sink's append log is the
// stream's block order.
func TestWriterAppendModeSingleWorkerOrdered(t *testing.T) {
	sink := &memSink{}
	start := func(ctx context.Context) (stream.StartState, error) {
		return stream.StartState{OffsetMode: false}, nil
	}
	w := sink.writer(3, start)
	data := pattern('q', 6*B)
	for off := 0; off < len(data); off += 999 {
		end := min(off+999, len(data))
		if _, err := w.Write(data[off:end]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sink.bytes(), data) {
		t.Fatal("append stream out of order or corrupted")
	}
}

// TestWriterStartPrefixMerge: the Start hook's prefix (the unaligned-
// tail read-modify-write merge) lands exactly once at the start offset.
func TestWriterStartPrefixMerge(t *testing.T) {
	tail := pattern('t', 100)
	sink := &memSink{}
	// Pre-existing content: one full block plus the unaligned tail.
	if err := sink.writeAt(context.Background(), 0, pattern('x', B)); err != nil {
		t.Fatal(err)
	}
	if err := sink.writeAt(context.Background(), B, tail); err != nil {
		t.Fatal(err)
	}
	start := func(ctx context.Context) (stream.StartState, error) {
		return stream.StartState{OffsetMode: true, Off: B, Prefix: tail}, nil
	}
	w := sink.writer(2, start)
	added := pattern('z', 2*B)
	if _, err := w.Write(added); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	want := append(append(append([]byte(nil), pattern('x', B)...), tail...), added...)
	if !bytes.Equal(sink.bytes(), want) {
		t.Fatal("prefix merge mismatch")
	}
}

// TestWriterErrorLatchedAndCloseContract: a background commit failure
// surfaces on a later Write, and every subsequent Close keeps
// reporting it; a failed final flush never latches success.
func TestWriterErrorLatchedAndCloseContract(t *testing.T) {
	sink := &memSink{}
	w := sink.writer(2, nil)
	if _, err := w.Write(pattern('e', B)); err != nil {
		t.Fatal(err)
	}
	sink.failPfx.Store(true)
	var werr error
	for i := 0; i < 64 && werr == nil; i++ {
		_, werr = w.Write(pattern('e', B))
	}
	if werr == nil {
		// The window may have committed everything before the injection;
		// the error must then surface on Close.
		if err := w.Close(); err == nil {
			t.Fatal("commit failure never surfaced on Write or Close")
		}
	} else {
		first := w.Close()
		if first == nil {
			t.Fatal("Close after latched error returned nil")
		}
		if second := w.Close(); second == nil {
			t.Fatal("repeat Close dropped the latched error")
		}
	}
	if _, err := w.Write([]byte("x")); err == nil {
		t.Fatal("Write after failed Close returned nil")
	}

	// Synchronous tail-loss pin: a failing final flush keeps failing on
	// repeat Close instead of silently reporting the tail durable.
	sink2 := &memSink{}
	w2 := sink2.writer(0, nil)
	if _, err := w2.Write(pattern('f', B/2)); err != nil {
		t.Fatal(err)
	}
	sink2.failPfx.Store(true)
	if err := w2.Close(); err == nil {
		t.Fatal("Close with failing flush returned nil")
	}
	if err := w2.Close(); err == nil {
		t.Fatal("repeat Close after failed flush returned nil (tail silently lost)")
	}
	// A failed Close does NOT latch the writer closed: the unflushed
	// tail is preserved and retrying is allowed once the fault clears.
	sink2.failPfx.Store(false)
	if err := w2.Close(); err != nil {
		t.Fatalf("retried Close after fault cleared = %v", err)
	}
	if !bytes.Equal(sink2.bytes(), pattern('f', B/2)) {
		t.Fatal("retried Close lost the tail")
	}
	if _, err := w2.Write([]byte("x")); !errors.Is(err, stream.ErrWriterClosed) {
		t.Fatalf("Write after successful Close = %v, want ErrWriterClosed", err)
	}
}

// TestReaderConcurrentSeekReadRace exercises Seek racing Read under
// the race detector at the engine level (no cluster underneath).
func TestReaderConcurrentSeekReadRace(t *testing.T) {
	src := &memSource{data: pattern('R', 8*B)}
	r := src.reader(3)
	defer r.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		offs := []int64{5 * B, 0, 3 * B, 7 * B, B, 6 * B, 2 * B, 4 * B}
		for round := 0; round < 10; round++ {
			for _, off := range offs {
				if _, err := r.Seek(off, io.SeekStart); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	buf := make([]byte, 4096)
	for {
		_, err := r.Read(buf)
		if err == io.EOF {
			select {
			case <-done:
				return
			default:
				if _, err := r.Seek(0, io.SeekStart); err != nil {
					t.Fatal(err)
				}
			}
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
	}
}
