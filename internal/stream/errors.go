// Package stream is the shared streaming engine of the BSFS layer
// (Section IV-B), factored out so every consumer of BlobSeer data —
// the BSFS file system, the HDFS-comparison harness, raw-blob
// applications through core.Snapshot/core.Blob handles — runs on one
// implementation of sequential-access detection, bounded asynchronous
// readahead and write-behind block commits.
//
// The package is storage-agnostic: a Reader pulls data through a Fetch
// function over a pinned immutable snapshot, and a Writer pushes
// full-block commits through WriteAt/Append hooks. core wires these to
// Snapshot.ReadAt and Blob.Write/Blob.Append; tests wire them to
// in-memory backends.
package stream

import "errors"

// Errors shared by all streaming handles.
var (
	// ErrClosed is the shared sentinel for any operation on a closed
	// handle; ErrReaderClosed and ErrWriterClosed both match it under
	// errors.Is, so callers that don't care which side was closed can
	// test the one sentinel.
	ErrClosed = errors.New("stream: handle is closed")
	// ErrReaderClosed is returned by Read/Seek on a closed reader.
	ErrReaderClosed error = &closedError{"reader"}
	// ErrWriterClosed is returned by Write on a closed writer.
	ErrWriterClosed error = &closedError{"writer"}
)

// closedError gives reader/writer-specific messages while remaining
// errors.Is-compatible with the shared ErrClosed sentinel.
type closedError struct{ what string }

func (e *closedError) Error() string        { return "stream: " + e.what + " is closed" }
func (e *closedError) Is(target error) bool { return target == ErrClosed }
