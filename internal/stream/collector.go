package stream

import "sync/atomic"

// Collector aggregates pipeline activity across every Reader and
// Writer wired to it — the per-stream ReadStats answer "what did this
// reader do", the Collector answers "what is the streaming layer doing
// right now" for a whole client (BSFS mounts feed all their file
// streams into one). All methods are safe on a nil *Collector, so
// wiring is unconditional and costs nothing when metrics are off.
type Collector struct {
	prefetched   atomic.Int64
	prefetchHits atomic.Int64
	canceled     atomic.Int64
	readersOpen  atomic.Int64
	writersOpen  atomic.Int64
	wbDepth      atomic.Int64
	wbCommits    atomic.Int64
	wbBytes      atomic.Int64
}

func (c *Collector) readerOpened() {
	if c != nil {
		c.readersOpen.Add(1)
	}
}

func (c *Collector) readerClosed() {
	if c != nil {
		c.readersOpen.Add(-1)
	}
}

func (c *Collector) writerOpened() {
	if c != nil {
		c.writersOpen.Add(1)
	}
}

func (c *Collector) writerClosed() {
	if c != nil {
		c.writersOpen.Add(-1)
	}
}

func (c *Collector) prefetchStart() {
	if c != nil {
		c.prefetched.Add(1)
	}
}

func (c *Collector) prefetchHit() {
	if c != nil {
		c.prefetchHits.Add(1)
	}
}

func (c *Collector) prefetchDrop() {
	if c != nil {
		c.canceled.Add(1)
	}
}

func (c *Collector) commitQueued() {
	if c != nil {
		c.wbDepth.Add(1)
	}
}

func (c *Collector) commitDone(n int64) {
	if c != nil {
		c.wbDepth.Add(-1)
		c.wbCommits.Add(1)
		c.wbBytes.Add(n)
	}
}

// Prefetched returns background block fetches started ahead of readers.
func (c *Collector) Prefetched() int64 {
	if c == nil {
		return 0
	}
	return c.prefetched.Load()
}

// PrefetchHits returns blocks consumed out of readahead windows.
func (c *Collector) PrefetchHits() int64 {
	if c == nil {
		return 0
	}
	return c.prefetchHits.Load()
}

// Canceled returns window entries dropped unconsumed.
func (c *Collector) Canceled() int64 {
	if c == nil {
		return 0
	}
	return c.canceled.Load()
}

// ReadersOpen returns currently open readers.
func (c *Collector) ReadersOpen() int64 {
	if c == nil {
		return 0
	}
	return c.readersOpen.Load()
}

// WritersOpen returns currently open writers.
func (c *Collector) WritersOpen() int64 {
	if c == nil {
		return 0
	}
	return c.writersOpen.Load()
}

// WriteBehindDepth returns write-behind blocks currently in flight
// (enqueued or committing).
func (c *Collector) WriteBehindDepth() int64 {
	if c == nil {
		return 0
	}
	return c.wbDepth.Load()
}

// WriteBehindCommits returns completed background block commits.
func (c *Collector) WriteBehindCommits() int64 {
	if c == nil {
		return 0
	}
	return c.wbCommits.Load()
}

// WriteBehindBytes returns bytes committed through write-behind pools.
func (c *Collector) WriteBehindBytes() int64 {
	if c == nil {
		return 0
	}
	return c.wbBytes.Load()
}
