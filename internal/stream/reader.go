package stream

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
)

// Fetch reads [off, off+length) of a pinned immutable snapshot and
// returns the bytes. Implementations must be safe for concurrent calls:
// the readahead window fetches several ranges at once.
type Fetch func(ctx context.Context, off, length int64) ([]byte, error)

// ReaderConfig wires a Reader to its snapshot.
type ReaderConfig struct {
	// Fetch supplies snapshot bytes (required).
	Fetch Fetch
	// Size is the pinned snapshot size; the stream EOFs there.
	Size int64
	// BlockSize is the caching and prefetch granularity.
	BlockSize int64
	// Readahead is the asynchronous prefetch window: up to this many
	// blocks are fetched by background goroutines ahead of a sequential
	// stream. <= 0 keeps reads fully synchronous — one block fetched at
	// a time, on demand.
	Readahead int
	// NoCache disables block-granularity caching and prefetch entirely:
	// every Read fetches exactly the range it still needs (ablation
	// benches; the simulator models per-request costs).
	NoCache bool
	// Collector, when non-nil, aggregates this reader's pipeline
	// activity into shared client-wide metrics.
	Collector *Collector
}

// ReadStats counts the reader-side pipeline activity (tests, tuning).
type ReadStats struct {
	Prefetched   int // background block fetches started ahead of pos
	PrefetchHits int // blocks consumed out of the readahead window
	Canceled     int // window entries dropped unconsumed by Seek/Close
}

// PipelinedReader is implemented by stream readers; callers can
// type-assert a generic reader to observe the readahead pipeline.
type PipelinedReader interface {
	ReadStats() ReadStats
}

// Reader is a sequential io.ReadSeekCloser over a pinned snapshot with
// whole-block prefetching: when the requested data is not cached, the
// full enclosing block is fetched (Section IV-B), so a Hadoop-style
// sequence of 4 KB reads costs one block transfer. With Readahead > 0
// the reader also detects sequential access and keeps a bounded window
// of blocks in flight ahead of the stream position, fetched by
// background goroutines, so consuming block i overlaps the transfer of
// blocks i+1..i+N.
type Reader struct {
	ctx       context.Context
	fetch     Fetch
	size      int64
	blockSize int64
	readahead int
	noCache   bool

	mu       sync.Mutex
	pos      int64
	cacheOff int64 // file offset of cached block (-1 = empty)
	cache    []byte
	closed   bool

	nextSeq int64                // block start that would continue the sequential run (-1 = none)
	window  map[int64]*blockLoad // block start -> in-flight or completed background fetch
	stats   ReadStats
	coll    *Collector
}

var (
	_ io.ReadSeekCloser = (*Reader)(nil)
	_ PipelinedReader   = (*Reader)(nil)
)

// blockLoad is one asynchronous block fetch.
type blockLoad struct {
	done   chan struct{}
	cancel context.CancelFunc
	data   []byte
	err    error
}

// NewReader returns a reader over the snapshot described by cfg. The
// context is pinned for the reader's lifetime: canceling it aborts all
// outstanding fetches.
func NewReader(ctx context.Context, cfg ReaderConfig) *Reader {
	readahead := cfg.Readahead
	if readahead < 0 || cfg.NoCache {
		readahead = 0
	}
	cfg.Collector.readerOpened()
	return &Reader{
		ctx:       ctx,
		fetch:     cfg.Fetch,
		size:      cfg.Size,
		blockSize: cfg.BlockSize,
		readahead: readahead,
		noCache:   cfg.NoCache,
		cacheOff:  -1,
		nextSeq:   -1,
		window:    make(map[int64]*blockLoad),
		coll:      cfg.Collector,
	}
}

// errSeekRaced reports that a concurrent Seek moved the stream while a
// pipelined fetch was waited on (the lock is released during the
// wait); the read loop resumes from the new position.
var errSeekRaced = errors.New("stream: seek raced a block fetch")

// Read implements io.Reader.
func (r *Reader) Read(p []byte) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return 0, ErrReaderClosed
	}
	if r.pos >= r.size {
		return 0, io.EOF
	}
	n := 0
	for n < len(p) && r.pos < r.size {
		data, err := r.lockedFetch(r.pos)
		if errors.Is(err, errSeekRaced) {
			// A concurrent Seek moved the stream. Bytes already copied
			// stay a single contiguous range (return them); otherwise
			// resume from the position the Seek set.
			if n > 0 {
				return n, nil
			}
			continue
		}
		if err != nil {
			if n > 0 {
				return n, nil
			}
			return 0, err
		}
		want := min(int64(len(p)-n), r.size-r.pos)
		c := copy(p[n:int64(n)+want], data)
		n += c
		r.pos += int64(c)
		if c == 0 {
			break
		}
	}
	if n == 0 && r.pos >= r.size {
		return 0, io.EOF // a racing Seek pushed the stream to EOF
	}
	return n, nil
}

// lockedFetch returns cached bytes at file offset off, loading the
// enclosing block if needed.
func (r *Reader) lockedFetch(off int64) ([]byte, error) {
	blockStart := off / r.blockSize * r.blockSize
	if r.cache == nil || r.cacheOff != blockStart || off-blockStart >= int64(len(r.cache)) {
		length := r.blockSize
		if blockStart+length > r.size {
			length = r.size - blockStart
		}
		if r.noCache {
			// Ablation mode: fetch only what was asked (here: to block
			// end, since callers of lockedFetch consume incrementally;
			// the distinction matters for the simulator, which models
			// per-request costs).
			return r.fetch(r.ctx, off, blockStart+length-off)
		}
		if r.readahead > 0 {
			if err := r.lockedLoadPipelined(off, blockStart, length); err != nil {
				return nil, err
			}
		} else {
			data, err := r.fetch(r.ctx, blockStart, length)
			if err != nil {
				return nil, err
			}
			r.cache = data
			r.cacheOff = blockStart
		}
	}
	return r.cache[off-r.cacheOff:], nil
}

// lockedLoadPipelined installs the block at blockStart into the cache
// through the readahead window: it consumes a background fetch if one
// is in flight (or starts one), launches the next window of prefetches
// when the access pattern is sequential, and waits with the lock
// released so Seek/Close stay responsive. off is the stream position
// the caller is serving; if a concurrent Seek moves r.pos off it while
// the lock is down, errSeekRaced tells the read loop to resume from
// the new position instead of mis-pairing old bytes with the new one.
func (r *Reader) lockedLoadPipelined(off, blockStart, length int64) error {
	f, hit := r.window[blockStart]
	if !hit {
		f = r.startFetch(blockStart, length)
		r.window[blockStart] = f
	} else {
		r.stats.PrefetchHits++
		r.coll.prefetchHit()
	}

	// Sequential-access detection: the run continues (or starts at the
	// beginning of the file). Top the window back up before blocking on
	// the current block so the pipeline never drains.
	if blockStart == 0 || blockStart == r.nextSeq {
		for next := blockStart + r.blockSize; next < r.size && next <= blockStart+int64(r.readahead)*r.blockSize; next += r.blockSize {
			if _, ok := r.window[next]; ok {
				continue
			}
			ln := min(r.blockSize, r.size-next)
			r.window[next] = r.startFetch(next, ln)
			r.stats.Prefetched++
			r.coll.prefetchStart()
		}
	}
	r.nextSeq = blockStart + r.blockSize

	// Blocks behind the stream position are dead weight: cancel them.
	r.lockedPruneBehind(blockStart)

	for attempt := 0; ; attempt++ {
		r.mu.Unlock()
		<-f.done
		r.mu.Lock()
		if r.closed {
			return ErrReaderClosed
		}
		if r.window[blockStart] == f {
			delete(r.window, blockStart)
		}
		if f.err == nil {
			r.cache = f.data
			r.cacheOff = blockStart
			if r.pos != off {
				return errSeekRaced // block kept cached; serve the new pos
			}
			return nil
		}
		if r.pos != off {
			return errSeekRaced
		}
		// A prefetch canceled by a concurrent Seek (whose target then
		// turned out to need this block after all) is not a stream
		// error: retry once in the foreground.
		if attempt > 0 || !errors.Is(f.err, context.Canceled) || r.ctx.Err() != nil {
			return f.err
		}
		f = r.startFetch(blockStart, length)
		r.window[blockStart] = f
	}
}

// startFetch launches a background fetch of [blockStart,
// blockStart+length) with its own cancelable context.
func (r *Reader) startFetch(blockStart, length int64) *blockLoad {
	fctx, cancel := context.WithCancel(r.ctx)
	f := &blockLoad{done: make(chan struct{}), cancel: cancel}
	go func() {
		defer close(f.done)
		f.data, f.err = r.fetch(fctx, blockStart, length)
		cancel()
	}()
	return f
}

// lockedCancelWindow aborts every outstanding background fetch.
func (r *Reader) lockedCancelWindow() {
	for start, f := range r.window {
		f.cancel()
		delete(r.window, start)
		r.stats.Canceled++
		r.coll.prefetchDrop()
	}
	r.nextSeq = -1
}

// lockedPruneBehind aborts window fetches strictly behind blockStart,
// keeping the warm entries ahead of it.
func (r *Reader) lockedPruneBehind(blockStart int64) {
	for start, f := range r.window {
		if start < blockStart {
			f.cancel()
			delete(r.window, start)
			r.stats.Canceled++
			r.coll.prefetchDrop()
		}
	}
}

// Seek implements io.Seeker. Seeking away from the run cancels the
// readahead window: prefetches issued for the abandoned run are
// aborted rather than left to fetch blocks the stream no longer
// wants. A seek whose target is still in hand — inside the cached
// block or a prefetched window entry — keeps the warm pipeline and
// only drops entries the stream has passed.
func (r *Reader) Seek(offset int64, whence int) (int64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return 0, ErrReaderClosed
	}
	var abs int64
	switch whence {
	case io.SeekStart:
		abs = offset
	case io.SeekCurrent:
		abs = r.pos + offset
	case io.SeekEnd:
		abs = r.size + offset
	default:
		return 0, fmt.Errorf("stream: bad whence %d", whence)
	}
	if abs < 0 {
		return 0, fmt.Errorf("stream: negative seek position %d", abs)
	}
	if abs != r.pos {
		newBlock := abs / r.blockSize * r.blockSize
		switch {
		case r.cache != nil && r.cacheOff == newBlock:
			r.lockedPruneBehind(newBlock)
		case r.window[newBlock] != nil:
			r.lockedPruneBehind(newBlock)
			r.nextSeq = newBlock // the run continues on the prefetched block
		default:
			r.lockedCancelWindow()
		}
	}
	r.pos = abs
	return abs, nil
}

// Close implements io.Closer.
func (r *Reader) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.lockedCancelWindow()
	if !r.closed {
		r.coll.readerClosed()
	}
	r.closed = true
	r.cache = nil
	return nil
}

// Size returns the pinned snapshot size.
func (r *Reader) Size() int64 { return r.size }

// ReadStats implements PipelinedReader.
func (r *Reader) ReadStats() ReadStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}
