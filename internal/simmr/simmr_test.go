package simmr

import (
	"testing"

	"blobseer/internal/placement"
	"blobseer/internal/sim"
	"blobseer/internal/simnet"
	"blobseer/internal/simstore"
	"blobseer/internal/util"
)

const blockSize = 64 * util.MB

// deploy builds a BSFS-backed Storage over `trackers` co-deployed
// nodes (IDs 10..10+n-1) on a fabric with two spare client nodes.
func deploy(t *testing.T, trackers int) (simstore.Storage, []simnet.NodeID) {
	t.Helper()
	env := sim.NewEnv()
	net := simnet.New(env, simnet.Grid5000(trackers+12))
	nodes := make([]simnet.NodeID, trackers)
	for i := range nodes {
		nodes[i] = simnet.NodeID(10 + i)
	}
	b := simstore.NewBSFS(net, simstore.DefaultTuning(), placement.NewRoundRobin(),
		0, []simnet.NodeID{1, 2}, nodes)
	return simstore.NewBSFSFiles(b, blockSize, 1), nodes
}

func TestRandomTextWriterCompletes(t *testing.T) {
	st, nodes := deploy(t, 8)
	cfg := DefaultConfig(nodes)
	done, err := RunRandomTextWriter(st, cfg, 4, 2*blockSize, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	if done <= cfg.JobOverhead {
		t.Fatalf("completion %v should exceed the %v job overhead", done, cfg.JobOverhead)
	}
	// Every mapper wrote its own file of the requested size.
	for _, name := range []string{"/out/part-m-00000", "/out/part-m-00003"} {
		if got := st.Size(name); got != 2*blockSize {
			t.Errorf("%s size = %d, want %d", name, got, 2*blockSize)
		}
	}
}

func TestRandomTextWriterMoreMappersFinishFaster(t *testing.T) {
	run := func(mappers int) sim.Time {
		st, nodes := deploy(t, 8)
		done, err := RunRandomTextWriter(st, DefaultConfig(nodes), mappers, 8*blockSize/int64(mappers), 100e6)
		if err != nil {
			t.Fatal(err)
		}
		return done
	}
	serial, parallel := run(1), run(8)
	if parallel >= serial {
		t.Errorf("8 mappers (%v) should beat 1 mapper (%v) for the same total output", parallel, serial)
	}
}

func TestRandomTextWriterSlowerGenerationSlowsJob(t *testing.T) {
	run := func(rate float64) sim.Time {
		st, nodes := deploy(t, 4)
		done, err := RunRandomTextWriter(st, DefaultConfig(nodes), 4, blockSize, rate)
		if err != nil {
			t.Fatal(err)
		}
		return done
	}
	fast, slow := run(200e6), run(20e6)
	if slow <= fast {
		t.Errorf("10x slower generation should lengthen the job: fast %v, slow %v", fast, slow)
	}
}

func TestGrepCompletesAndScalesWithInput(t *testing.T) {
	run := func(chunks int) sim.Time {
		st, nodes := deploy(t, 8)
		if err := st.CreateFile("/in"); err != nil {
			t.Fatal(err)
		}
		env := st.Env()
		env.Go(func(p *sim.Proc) {
			for i := 0; i < chunks; i++ {
				if err := st.AppendBlock(p, simnet.NodeID(3), "/in", blockSize); err != nil {
					t.Error(err)
					return
				}
			}
		})
		env.Run()
		done, err := RunGrep(st, DefaultConfig(nodes), "/in", 50e6)
		if err != nil {
			t.Fatal(err)
		}
		return done
	}
	small, large := run(4), run(32)
	if small <= 0 || large <= small {
		t.Errorf("grep time should grow with input: 4 chunks %v, 32 chunks %v", small, large)
	}
}

func TestGrepEmptyInputFails(t *testing.T) {
	st, nodes := deploy(t, 4)
	if err := st.CreateFile("/empty"); err != nil {
		t.Fatal(err)
	}
	if _, err := RunGrep(st, DefaultConfig(nodes), "/empty", 50e6); err == nil {
		t.Fatal("grep over an empty input should fail")
	}
}

// TestGrepJobTimeExcludesBootUp pins the measurement-phase rule: the
// job clock starts at submission, not at simulation time zero, so the
// input-writing boot-up phase must not count (the paper measures only
// the Map/Reduce job).
func TestGrepJobTimeExcludesBootUp(t *testing.T) {
	run := func(extraBoot bool) sim.Time {
		st, nodes := deploy(t, 8)
		if err := st.CreateFile("/in"); err != nil {
			t.Fatal(err)
		}
		env := st.Env()
		env.Go(func(p *sim.Proc) {
			if extraBoot {
				p.Sleep(500 * sim.Second) // arbitrary pre-job activity
			}
			for i := 0; i < 8; i++ {
				if err := st.AppendBlock(p, simnet.NodeID(3), "/in", blockSize); err != nil {
					t.Error(err)
					return
				}
			}
		})
		env.Run()
		done, err := RunGrep(st, DefaultConfig(nodes), "/in", 50e6)
		if err != nil {
			t.Fatal(err)
		}
		return done
	}
	base, delayed := run(false), run(true)
	if base != delayed {
		t.Errorf("job time must not depend on pre-job activity: %v vs %v", base, delayed)
	}
}

// TestGrepShuffleChargeScalesWithMaps pins the reduce-phase model.
func TestGrepShuffleChargeScalesWithMaps(t *testing.T) {
	run := func(shuffle sim.Time) sim.Time {
		st, nodes := deploy(t, 8)
		if err := st.CreateFile("/in"); err != nil {
			t.Fatal(err)
		}
		env := st.Env()
		env.Go(func(p *sim.Proc) {
			for i := 0; i < 10; i++ {
				if err := st.AppendBlock(p, simnet.NodeID(3), "/in", blockSize); err != nil {
					t.Error(err)
				}
			}
		})
		env.Run()
		cfg := DefaultConfig(nodes)
		cfg.ShufflePerMap = shuffle
		done, err := RunGrep(st, cfg, "/in", 50e6)
		if err != nil {
			t.Fatal(err)
		}
		return done
	}
	without, with := run(0), run(sim.Second)
	if diff := with - without; diff != 10*sim.Second {
		t.Errorf("10 maps at 1s shuffle each should add exactly 10s, added %v", diff)
	}
}

// TestGrepPrefersLocalMaps verifies the locality scheduling: with one
// chunk per tracker node, every map can and should run node-local, so
// the whole map phase costs no network transfer and finishes near the
// scan-rate bound.
func TestGrepPrefersLocalMaps(t *testing.T) {
	st, nodes := deploy(t, 8)
	if err := st.CreateFile("/in"); err != nil {
		t.Fatal(err)
	}
	env := st.Env()
	env.Go(func(p *sim.Proc) {
		for i := 0; i < 8; i++ { // round-robin: one chunk per tracker
			if err := st.AppendBlock(p, simnet.NodeID(3), "/in", blockSize); err != nil {
				t.Error(err)
			}
		}
	})
	env.Run()
	cfg := DefaultConfig(nodes)
	cfg.ShufflePerMap = 0
	done, err := RunGrep(st, cfg, "/in", 50e6)
	if err != nil {
		t.Fatal(err)
	}
	// All 8 maps run in one wave, all local (disk-bound read at 85MB/s
	// + scan at 50MB/s), plus heartbeat and overhead.
	scan := float64(blockSize) / 50e6
	read := float64(blockSize) / 85e6
	bound := sim.DurationFromSeconds(scan+read) + 2*cfg.Heartbeat + cfg.JobOverhead
	if done > bound+sim.Second {
		t.Errorf("all-local grep took %v, want <= %v (no network transfers)", done, bound)
	}
}

// deployTuned builds a BSFS Storage whose client pipelines with the
// given streaming windows (DefaultTuning leaves them at 0, the
// synchronous client the figures are calibrated against).
func deployTuned(t *testing.T, trackers, readahead, writeBehind int) (simstore.Storage, []simnet.NodeID) {
	t.Helper()
	env := sim.NewEnv()
	net := simnet.New(env, simnet.Grid5000(trackers+12))
	nodes := make([]simnet.NodeID, trackers)
	for i := range nodes {
		nodes[i] = simnet.NodeID(10 + i)
	}
	tun := simstore.DefaultTuning()
	tun.ReadaheadBlocks = readahead
	tun.WriteBehindDepth = writeBehind
	b := simstore.NewBSFS(net, tun, placement.NewRoundRobin(), 0, []simnet.NodeID{1, 2}, nodes)
	return simstore.NewBSFSFiles(b, blockSize, 1), nodes
}

// TestRandomTextWriterWriteBehindOverlapsGeneration: with the client's
// write-behind window open, text generation overlaps block commits and
// the job must finish strictly faster than with the synchronous client
// (generation and commit rates are comparable, so the overlap is
// roughly a halving of per-block time).
func TestRandomTextWriterWriteBehindOverlapsGeneration(t *testing.T) {
	run := func(wb int) sim.Time {
		st, nodes := deployTuned(t, 4, 0, wb)
		done, err := RunRandomTextWriter(st, DefaultConfig(nodes), 4, 8*blockSize, 66e6)
		if err != nil {
			t.Fatal(err)
		}
		return done
	}
	syncT, pipeT := run(0), run(2)
	if pipeT >= syncT {
		t.Errorf("write-behind job (%v) should beat the synchronous job (%v)", pipeT, syncT)
	}
}

// TestGrepReadaheadOverlapsScan: with readahead on, each map's chunk
// fetch streams under its scan, shortening the job.
func TestGrepReadaheadOverlapsScan(t *testing.T) {
	run := func(ra int) sim.Time {
		st, nodes := deployTuned(t, 8, ra, 0)
		if err := st.CreateFile("/in"); err != nil {
			t.Fatal(err)
		}
		env := st.Env()
		env.Go(func(p *sim.Proc) {
			for i := 0; i < 16; i++ {
				if err := st.AppendBlock(p, simnet.NodeID(3), "/in", blockSize); err != nil {
					t.Error(err)
					return
				}
			}
		})
		env.Run()
		done, err := RunGrep(st, DefaultConfig(nodes), "/in", 50e6)
		if err != nil {
			t.Fatal(err)
		}
		return done
	}
	syncT, pipeT := run(0), run(2)
	if pipeT >= syncT {
		t.Errorf("readahead job (%v) should beat the synchronous job (%v)", pipeT, syncT)
	}
}
