// Package simmr models Hadoop job execution at the paper's scale for
// the Figure 6 experiments: tasktrackers co-deployed with storage
// nodes, slot-limited task execution, pull-based scheduling with
// node-local preference and remote stealing, and a fixed per-job
// framework overhead. Storage traffic goes through simstore, so the
// BSFS/HDFS difference seen in job completion times comes from the
// same placement and protocol models as the microbenchmarks.
package simmr

import (
	"fmt"

	"blobseer/internal/sim"
	"blobseer/internal/simnet"
	"blobseer/internal/simstore"
)

// Config describes the Map/Reduce deployment and framework costs.
type Config struct {
	Trackers    []simnet.NodeID
	MapSlots    int      // per tracker (2 in Hadoop 0.20's default)
	Heartbeat   sim.Time // tracker poll interval (task dispatch latency)
	JobOverhead sim.Time // job setup/teardown (JVM spawn, init, commit)
	// ShufflePerMap is the reduce-side cost of fetching and merging one
	// map task's output: the reduce phase scales with the number of
	// maps, which is why the paper's grep completion time grows with
	// input size even though all maps run in a single wave.
	ShufflePerMap sim.Time
}

// DefaultConfig returns Hadoop-0.20-flavoured framework constants.
func DefaultConfig(trackers []simnet.NodeID) Config {
	return Config{
		Trackers:      trackers,
		MapSlots:      2,
		Heartbeat:     500 * sim.Millisecond,
		JobOverhead:   12 * sim.Second,
		ShufflePerMap: 25 * sim.Millisecond,
	}
}

// condSig is a broadcast condition signal on the cooperative kernel:
// waiters block until the next signal() after their wait began (the
// one-shot sim.Event recreated per round, condition-variable style).
type condSig struct {
	env *sim.Env
	ev  *sim.Event
}

func (c *condSig) wait(p *sim.Proc) {
	if c.ev == nil || c.ev.Fired() {
		c.ev = c.env.NewEvent()
	}
	c.ev.Wait(p)
}

func (c *condSig) signal() {
	if c.ev != nil {
		c.ev.Fire()
	}
}

// streamBlocks writes `total` bytes of `name` block by block from node
// tn, generating text at genRate. With wb <= 0 it models the
// synchronous client: generate a block, then stall through its full
// commit. With wb > 0 it models the BSFS write-behind window: a single
// committer drains blocks in order (like the real append-mode worker)
// while the producer generates up to wb blocks ahead, so text
// generation overlaps block commits.
func streamBlocks(p *sim.Proc, st simstore.Storage, tn simnet.NodeID, name string, total int64, genRate float64, wb int) error {
	bs := st.BlockSize()
	nextLen := func(written int64) int64 {
		n := bs
		if written+n > total {
			n = total - written
		}
		return n
	}
	if wb <= 0 {
		for written := int64(0); written < total; {
			n := nextLen(written)
			p.Sleep(sim.DurationFromSeconds(float64(n) / genRate))
			if err := st.AppendBlock(p, tn, name, n); err != nil {
				return err
			}
			written += n
		}
		return nil
	}
	env := st.Env()
	var (
		queue  []int64 // generated blocks queued or in flight (head included)
		closed bool
		err    error
	)
	change := &condSig{env: env}
	done := env.NewEvent()
	env.Go(func(cp *sim.Proc) {
		defer done.Fire()
		for {
			for len(queue) == 0 && !closed && err == nil {
				change.wait(cp)
			}
			if err != nil || len(queue) == 0 {
				return
			}
			if e := st.AppendBlock(cp, tn, name, queue[0]); e != nil && err == nil {
				err = e
			}
			queue = queue[1:] // popped after commit: the window counts in-flight blocks
			change.signal()
		}
	})
	for written := int64(0); written < total && err == nil; {
		n := nextLen(written)
		p.Sleep(sim.DurationFromSeconds(float64(n) / genRate))
		for len(queue) >= wb && err == nil {
			change.wait(p)
		}
		if err != nil {
			break
		}
		queue = append(queue, n)
		change.signal()
		written += n
	}
	closed = true
	change.signal()
	done.Wait(p)
	return err
}

// RunRandomTextWriter simulates the paper's first application
// (Section V-G): `mappers` map-only tasks, each generating
// bytesPerMapper of text at genRate (bytes/sec of CPU work) and writing
// it block-by-block to its own output file. When the storage client
// pipelines (Storage.Pipeline's write-behind depth), generation
// overlaps the block commits. It returns the job completion time.
func RunRandomTextWriter(st simstore.Storage, cfg Config, mappers int, bytesPerMapper int64, genRate float64) (sim.Time, error) {
	env := st.Env()
	start := env.Now() // job time excludes whatever ran before submission
	var lastEnd sim.Time
	var firstErr error
	next := 0
	_, wb := st.Pipeline()

	for _, tn := range cfg.Trackers {
		tn := tn
		for s := 0; s < cfg.MapSlots; s++ {
			env.Go(func(p *sim.Proc) {
				for {
					p.Sleep(cfg.Heartbeat)
					if next >= mappers || firstErr != nil {
						return
					}
					task := next
					next++
					name := fmt.Sprintf("/out/part-m-%05d", task)
					if err := st.CreateFile(name); err != nil {
						firstErr = err
						return
					}
					if err := streamBlocks(p, st, tn, name, bytesPerMapper, genRate, wb); err != nil {
						firstErr = err
						return
					}
					if end := p.Now(); end > lastEnd {
						lastEnd = end
					}
				}
			})
		}
	}
	env.Run()
	if firstErr != nil {
		return 0, firstErr
	}
	return lastEnd - start + cfg.JobOverhead, nil
}

// grepSplit is one map task of the grep job.
type grepSplit struct {
	off, size int64
	node      simnet.NodeID
	taken     bool
}

// RunGrep simulates the distributed grep of Section V-G: one map per
// chunk of the (pre-written) input file, locality-preferring pull
// scheduling, per-task read + scan at scanRate, negligible reduce. It
// returns the job completion time.
func RunGrep(st simstore.Storage, cfg Config, input string, scanRate float64) (sim.Time, error) {
	env := st.Env()
	start := env.Now() // the boot-up phase that wrote the input is not job time
	size := st.Size(input)
	if size == 0 {
		return 0, fmt.Errorf("simmr: input %s is empty", input)
	}
	nodes := st.ChunkNodes(input)
	bs := st.BlockSize()
	var splits []*grepSplit
	for off := int64(0); off < size; off += bs {
		ln := bs
		if off+ln > size {
			ln = size - off
		}
		idx := int(off / bs)
		node := simnet.NodeID(-1)
		if idx < len(nodes) {
			node = nodes[idx]
		}
		splits = append(splits, &grepSplit{off: off, size: ln, node: node})
	}

	var lastEnd sim.Time
	var firstErr error
	remaining := len(splits)

	// take returns the next split for a tracker: node-local first
	// (Hadoop's "local maps"), else any pending ("remote maps").
	take := func(tn simnet.NodeID) *grepSplit {
		for _, s := range splits {
			if !s.taken && s.node == tn {
				s.taken = true
				return s
			}
		}
		for _, s := range splits {
			if !s.taken {
				s.taken = true
				return s
			}
		}
		return nil
	}

	for _, tn := range cfg.Trackers {
		tn := tn
		for sl := 0; sl < cfg.MapSlots; sl++ {
			env.Go(func(p *sim.Proc) {
				for {
					p.Sleep(cfg.Heartbeat)
					if remaining == 0 || firstErr != nil {
						return
					}
					s := take(tn)
					if s == nil {
						return
					}
					scan := sim.DurationFromSeconds(float64(s.size) / scanRate)
					if ra, _ := st.Pipeline(); ra > 0 {
						// Readahead streams the chunk under the scan:
						// the task costs max(fetch, scan), the fluid
						// limit of a full readahead window.
						readDone := env.NewEvent()
						var readErr error
						env.Go(func(cp *sim.Proc) {
							readErr = st.ReadRange(cp, tn, input, s.off, s.size)
							readDone.Fire()
						})
						p.Sleep(scan)
						readDone.Wait(p)
						if readErr != nil {
							firstErr = readErr
							return
						}
					} else {
						if err := st.ReadRange(p, tn, input, s.off, s.size); err != nil {
							firstErr = err
							return
						}
						p.Sleep(scan)
					}
					remaining--
					if end := p.Now(); end > lastEnd {
						lastEnd = end
					}
				}
			})
		}
	}
	env.Run()
	if firstErr != nil {
		return 0, firstErr
	}
	// The reduce phase fetches and merges every map's counter output.
	shuffle := sim.Time(len(splits)) * cfg.ShufflePerMap
	return lastEnd - start + shuffle + cfg.JobOverhead, nil
}
