package blob

import (
	"strings"
	"testing"
	"testing/quick"

	"blobseer/internal/util"
)

func TestRangeBasics(t *testing.T) {
	r := Range{Off: 10, Len: 20}
	if r.End() != 30 {
		t.Errorf("End = %d", r.End())
	}
	if r.IsEmpty() {
		t.Error("non-empty range reported empty")
	}
	if !(Range{Off: 5, Len: 0}).IsEmpty() {
		t.Error("empty range not reported empty")
	}
}

func TestRangeIntersects(t *testing.T) {
	cases := []struct {
		a, b Range
		want bool
	}{
		{Range{0, 10}, Range{5, 10}, true},
		{Range{0, 10}, Range{10, 10}, false}, // touching, half-open
		{Range{0, 10}, Range{9, 1}, true},
		{Range{5, 5}, Range{0, 5}, false},
		{Range{0, 0}, Range{0, 10}, false}, // empty never intersects
		{Range{0, 100}, Range{40, 1}, true},
	}
	for _, c := range cases {
		if got := c.a.Intersects(c.b); got != c.want {
			t.Errorf("%v ∩ %v = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := c.b.Intersects(c.a); got != c.want {
			t.Errorf("intersects not symmetric for %v, %v", c.a, c.b)
		}
	}
}

func TestRangeIntersection(t *testing.T) {
	got := (Range{0, 10}).Intersection(Range{5, 10})
	if got.Off != 5 || got.Len != 5 {
		t.Errorf("Intersection = %v", got)
	}
	if !(Range{0, 5}).Intersection(Range{7, 2}).IsEmpty() {
		t.Error("disjoint intersection not empty")
	}
}

func TestRangeContains(t *testing.T) {
	if !(Range{0, 10}).Contains(Range{2, 3}) {
		t.Error("containment failed")
	}
	if (Range{0, 10}).Contains(Range{8, 3}) {
		t.Error("overflow containment passed")
	}
}

func TestMetaValidate(t *testing.T) {
	if err := (Meta{BlockSize: 64 * util.MB, Replication: 1}).Validate(); err != nil {
		t.Errorf("valid meta rejected: %v", err)
	}
	if err := (Meta{BlockSize: 0, Replication: 1}).Validate(); err == nil {
		t.Error("zero block size accepted")
	}
	if err := (Meta{BlockSize: 1, Replication: 0}).Validate(); err == nil {
		t.Error("zero replication accepted")
	}
}

func TestHistoryAppendAndLookup(t *testing.T) {
	h := &History{}
	if h.Latest() != NoVersion {
		t.Error("fresh history has a version")
	}
	if h.SizeAt(NoVersion) != 0 {
		t.Error("empty snapshot size != 0")
	}
	if err := h.Append(WriteDesc{Version: 1, Off: 0, Len: 100, SizeAfter: 100}); err != nil {
		t.Fatal(err)
	}
	if err := h.Append(WriteDesc{Version: 3}); err == nil {
		t.Error("gap append accepted")
	}
	if err := h.Append(WriteDesc{Version: 2, Off: 50, Len: 100, SizeAfter: 150, Kind: KindAppend}); err != nil {
		t.Fatal(err)
	}
	if h.Latest() != 2 {
		t.Errorf("Latest = %d", h.Latest())
	}
	if h.SizeAt(1) != 100 || h.SizeAt(2) != 150 {
		t.Error("SizeAt wrong")
	}
	if h.SizeAt(9) != -1 {
		t.Error("unknown version size should be -1")
	}
	d, ok := h.Desc(2)
	if !ok || d.Kind != KindAppend {
		t.Error("Desc(2) wrong")
	}
	if _, ok := h.Desc(0); ok {
		t.Error("Desc(0) should not exist")
	}
}

func TestHistoryLatestIntersecting(t *testing.T) {
	h := &History{}
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(h.Append(WriteDesc{Version: 1, Off: 0, Len: 400, SizeAfter: 400}))   // blocks 0-3
	must(h.Append(WriteDesc{Version: 2, Off: 100, Len: 200, SizeAfter: 400})) // blocks 1-2
	must(h.Append(WriteDesc{Version: 3, Off: 400, Len: 100, SizeAfter: 500})) // block 4

	cases := []struct {
		r    Range
		upTo Version
		want Version
	}{
		{Range{0, 100}, 3, 1},   // only v1 touched block 0
		{Range{100, 100}, 3, 2}, // v2 overwrote block 1
		{Range{100, 100}, 1, 1}, // capped at v1
		{Range{400, 100}, 3, 3},
		{Range{400, 100}, 2, NoVersion}, // block 4 did not exist before v3
		{Range{500, 100}, 3, NoVersion},
		{Range{0, 500}, 3, 3},
		{Range{0, 500}, 99, 3}, // upTo beyond history is clamped
	}
	for _, c := range cases {
		if got := h.LatestIntersecting(c.r, c.upTo); got != c.want {
			t.Errorf("LatestIntersecting(%v, %d) = %d, want %d", c.r, c.upTo, got, c.want)
		}
	}
}

func TestHistoryExtend(t *testing.T) {
	h := &History{}
	if err := h.Extend([]WriteDesc{{Version: 1, Len: 10, SizeAfter: 10}, {Version: 2, Len: 5, Off: 10, SizeAfter: 15}}); err != nil {
		t.Fatal(err)
	}
	// Overwrite version 2 with an aborted marker, add version 3.
	if err := h.Extend([]WriteDesc{{Version: 2, Len: 5, Off: 10, SizeAfter: 15, Aborted: true}, {Version: 3, Off: 15, Len: 1, SizeAfter: 16}}); err != nil {
		t.Fatal(err)
	}
	d, _ := h.Desc(2)
	if !d.Aborted {
		t.Error("Extend did not overwrite descriptor")
	}
	if h.Latest() != 3 {
		t.Errorf("Latest = %d", h.Latest())
	}
	if err := h.Extend([]WriteDesc{{Version: 9}}); err == nil {
		t.Error("gap extend accepted")
	}
	if err := h.Extend([]WriteDesc{{Version: 0}}); err == nil {
		t.Error("version-0 descriptor accepted")
	}
}

func TestHistoryClone(t *testing.T) {
	h := &History{}
	if err := h.Append(WriteDesc{Version: 1, Len: 1, SizeAfter: 1}); err != nil {
		t.Fatal(err)
	}
	c := h.Clone()
	if err := c.Append(WriteDesc{Version: 2, Off: 1, Len: 1, SizeAfter: 2}); err != nil {
		t.Fatal(err)
	}
	if h.Latest() != 1 || c.Latest() != 2 {
		t.Error("clone shares backing storage")
	}
}

func TestBlocksAndSpan(t *testing.T) {
	const B = 64 * util.MB
	cases := []struct {
		size, wantBlocks, wantSpan int64
	}{
		{0, 0, B},
		{1, 1, B},
		{B, 1, B},
		{B + 1, 2, 2 * B},
		{3 * B, 3, 4 * B},
		{246 * B, 246, 256 * B},
	}
	for _, c := range cases {
		if got := Blocks(c.size, B); got != c.wantBlocks {
			t.Errorf("Blocks(%d) = %d, want %d", c.size, got, c.wantBlocks)
		}
		if got := SpanBytes(c.size, B); got != c.wantSpan {
			t.Errorf("SpanBytes(%d) = %d, want %d", c.size, got, c.wantSpan)
		}
	}
}

func TestLatestIntersectingMatchesBruteForce(t *testing.T) {
	// Property: LatestIntersecting agrees with a direct scan for random
	// histories and query ranges.
	f := func(seed uint64, qOff, qLen uint16) bool {
		r := util.NewSplitMix64(seed)
		h := &History{}
		size := int64(0)
		for v := 1; v <= 20; v++ {
			off := r.Int63n(1000)
			ln := 1 + r.Int63n(200)
			if end := off + ln; end > size {
				size = end
			}
			if err := h.Append(WriteDesc{Version: Version(v), Off: off, Len: ln, SizeAfter: size}); err != nil {
				return false
			}
		}
		q := Range{Off: int64(qOff % 1200), Len: int64(qLen%300) + 1}
		upTo := Version(r.Intn(22))
		got := h.LatestIntersecting(q, upTo)
		want := NoVersion
		limit := upTo
		if limit > h.Latest() {
			limit = h.Latest()
		}
		for v := Version(1); v <= limit; v++ {
			d, _ := h.Desc(v)
			if d.Range().Intersects(q) {
				want = v
			}
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWriteKindString(t *testing.T) {
	if KindWrite.String() != "write" || KindAppend.String() != "append" {
		t.Error("WriteKind strings wrong")
	}
}

func TestBlockKeyString(t *testing.T) {
	k := BlockKey{Blob: 7, Nonce: 0xff, Seq: 3}
	if k.String() != "b7/ff/3" {
		t.Errorf("BlockKey string = %q", k.String())
	}
}

func TestParseBlockKeyRoundTrip(t *testing.T) {
	keys := []BlockKey{
		{Blob: 1, Nonce: 0, Seq: 0},
		{Blob: 7, Nonce: 0xff, Seq: 3},
		{Blob: 1<<64 - 1, Nonce: 1<<64 - 1, Seq: 1<<32 - 1},
		{Blob: 42, Nonce: 0xdeadbeef, Seq: 12345},
	}
	for _, k := range keys {
		got, err := ParseBlockKey(k.String())
		if err != nil || got != k {
			t.Errorf("ParseBlockKey(%q) = %v, %v", k.String(), got, err)
		}
	}
	bad := []string{"", "b", "x7/ff/3", "b7/ff", "b7/ff/3/4", "b7/ff/3x", "t1/2/0/4", "b7/fg/3"}
	for _, s := range bad {
		if _, err := ParseBlockKey(s); err == nil {
			t.Errorf("ParseBlockKey(%q) accepted malformed key", s)
		}
	}
}

func TestBlockKeyWritePrefix(t *testing.T) {
	w := BlockKey{Blob: 1, Nonce: 0x1}
	// The prefix matches every seq of the same write...
	for _, seq := range []uint32{0, 1, 9, 10, 12345, 1<<32 - 1} {
		k := BlockKey{Blob: w.Blob, Nonce: w.Nonce, Seq: seq}
		if !strings.HasPrefix(k.String(), w.WritePrefix()) {
			t.Errorf("prefix %q does not match %q", w.WritePrefix(), k)
		}
	}
	// ...and never a key of a different nonce or blob, even ones whose
	// decimal/hex renderings share leading digits.
	others := []BlockKey{
		{Blob: 1, Nonce: 0x12, Seq: 0},
		{Blob: 1, Nonce: 0x10, Seq: 0},
		{Blob: 1, Nonce: 0x21, Seq: 0},
		{Blob: 11, Nonce: 0x1, Seq: 0},
		{Blob: 2, Nonce: 0x1, Seq: 0},
	}
	for _, o := range others {
		if strings.HasPrefix(o.String(), w.WritePrefix()) {
			t.Errorf("prefix %q wrongly matches %q", w.WritePrefix(), o)
		}
	}
}
