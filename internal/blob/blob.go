// Package blob defines the fundamental value types of the BlobSeer data
// model: BLOB identifiers, snapshot versions, byte ranges, block keys
// and the per-blob write-descriptor history that drives both metadata
// weaving and read resolution.
//
// Terminology follows the paper: a BLOB is a flat sequence of bytes
// striped into fixed-size blocks; every write or append produces a new
// snapshot version that shares unmodified data and metadata with its
// predecessors.
package blob

import (
	"errors"
	"fmt"

	"blobseer/internal/util"
)

// ID uniquely identifies a BLOB in the system. IDs are allocated by the
// version manager, starting at 1; 0 is "no blob".
type ID uint64

// Version identifies a snapshot of a BLOB. Versions are dense and
// assigned sequentially by the version manager starting at 1. Version 0
// is the implicit empty snapshot every BLOB starts with.
type Version uint64

// NoVersion is the version of the empty initial snapshot.
const NoVersion Version = 0

// Range is a half-open byte range [Off, Off+Len) within a BLOB.
type Range struct {
	Off int64
	Len int64
}

// End returns the exclusive end offset of the range.
func (r Range) End() int64 { return r.Off + r.Len }

// IsEmpty reports whether the range covers no bytes.
func (r Range) IsEmpty() bool { return r.Len <= 0 }

// Intersects reports whether r and o share at least one byte.
func (r Range) Intersects(o Range) bool {
	return !r.IsEmpty() && !o.IsEmpty() && r.Off < o.End() && o.Off < r.End()
}

// Intersection returns the overlapping part of r and o (possibly empty).
func (r Range) Intersection(o Range) Range {
	off := util.Max(r.Off, o.Off)
	end := util.Min(r.End(), o.End())
	if end <= off {
		return Range{Off: off, Len: 0}
	}
	return Range{Off: off, Len: end - off}
}

// Contains reports whether o lies fully within r.
func (r Range) Contains(o Range) bool {
	return o.Off >= r.Off && o.End() <= r.End()
}

func (r Range) String() string {
	return fmt.Sprintf("[%d,%d)", r.Off, r.End())
}

// BlockKey names a stored data block on a data provider. Because the
// version number of a write is only assigned *after* the data has been
// stored (two-phase write, Section III-A4), blocks are keyed by a
// client-chosen nonce unique per write operation rather than by version.
type BlockKey struct {
	Blob  ID
	Nonce uint64 // unique per write operation
	Seq   uint32 // block index within the write's payload
}

func (k BlockKey) String() string {
	return fmt.Sprintf("%s%d", k.WritePrefix(), k.Seq)
}

// WritePrefix returns the store-key prefix shared by every block the
// write operation (blob + nonce) stored, and by no other write: the
// trailing separator keeps nonce 0x1 from matching nonce 0x12. Provider
// garbage collection deletes by this prefix.
func (k BlockKey) WritePrefix() string {
	return fmt.Sprintf("b%d/%x/", k.Blob, k.Nonce)
}

// KeyPrefix is the first byte of every serialized BlockKey — the store
// namespace holding block payloads (metadata nodes live under "t").
// Block reports enumerate it.
const KeyPrefix = "b"

// ParseBlockKey inverts BlockKey.String: it parses a store key of the
// form "b<blob>/<nonce hex>/<seq>" back into its components. Provider
// block reports round-trip their inventory through this.
func ParseBlockKey(s string) (BlockKey, error) {
	var k BlockKey
	if len(s) < 2 || s[0] != 'b' {
		return k, fmt.Errorf("blob: malformed block key %q", s)
	}
	if _, err := fmt.Sscanf(s[1:], "%d/%x/%d", &k.Blob, &k.Nonce, &k.Seq); err != nil {
		return k, fmt.Errorf("blob: malformed block key %q: %w", s, err)
	}
	if k.String() != s {
		return k, fmt.Errorf("blob: malformed block key %q", s)
	}
	return k, nil
}

// Meta is the per-blob static configuration fixed at creation time.
type Meta struct {
	ID          ID
	BlockSize   int64 // striping unit; 64 MB in the paper's experiments
	Replication int   // number of providers storing each block
}

// Validate checks the configuration invariants.
func (m Meta) Validate() error {
	if m.BlockSize <= 0 {
		return errors.New("blob: block size must be positive")
	}
	if m.Replication < 1 {
		return errors.New("blob: replication must be >= 1")
	}
	return nil
}

// WriteKind distinguishes writes at an explicit offset from appends
// whose offset is fixed by the version manager at assignment time.
type WriteKind uint8

const (
	// KindWrite is a write at a caller-specified offset.
	KindWrite WriteKind = iota
	// KindAppend is an append; the offset is the size of the previous
	// snapshot, decided by the version manager.
	KindAppend
)

func (k WriteKind) String() string {
	if k == KindAppend {
		return "append"
	}
	return "write"
}

// WriteDesc describes one committed-or-in-progress write: the version it
// was assigned, the byte range it covers, and the blob size after it.
// The ordered sequence of WriteDescs is the blob's history; it is the
// "hint" the version manager hands to writers so they can weave metadata
// concurrently with lower-version writers still in progress.
type WriteDesc struct {
	Version   Version
	Off       int64
	Len       int64
	SizeAfter int64
	Kind      WriteKind
	Nonce     uint64 // the writer's block-key nonce (GC and abort repair)
	Aborted   bool   // true if the writer died and the VM repaired the version
}

// Range returns the byte range covered by the write.
func (d WriteDesc) Range() Range { return Range{Off: d.Off, Len: d.Len} }

// History is the dense, version-ordered sequence of write descriptors of
// one blob. Descs[i] has Version == i+1. History is a value type: the
// version manager owns the authoritative copy, clients keep a cached
// prefix and extend it from AssignVersion/GetHistory replies.
type History struct {
	Descs []WriteDesc
}

// Len returns the number of versions recorded.
func (h *History) Len() int { return len(h.Descs) }

// Latest returns the highest version recorded (NoVersion if none).
func (h *History) Latest() Version { return Version(len(h.Descs)) }

// Desc returns the descriptor for version v.
func (h *History) Desc(v Version) (WriteDesc, bool) {
	if v == NoVersion || int(v) > len(h.Descs) {
		return WriteDesc{}, false
	}
	return h.Descs[v-1], true
}

// SizeAt returns the blob size as of version v (0 for NoVersion).
func (h *History) SizeAt(v Version) int64 {
	if v == NoVersion {
		return 0
	}
	d, ok := h.Desc(v)
	if !ok {
		return -1
	}
	return d.SizeAfter
}

// Append extends the history with d; d.Version must be the next dense
// version.
func (h *History) Append(d WriteDesc) error {
	if d.Version != Version(len(h.Descs))+1 {
		return fmt.Errorf("blob: history gap: have %d versions, appending version %d", len(h.Descs), d.Version)
	}
	h.Descs = append(h.Descs, d)
	return nil
}

// Extend merges a contiguous descriptor suffix fetched from the version
// manager into the local cache. Overlapping entries are overwritten
// (an entry may change Aborted status after a repair).
func (h *History) Extend(descs []WriteDesc) error {
	for _, d := range descs {
		idx := int(d.Version) - 1
		switch {
		case idx < 0:
			return fmt.Errorf("blob: descriptor with version 0")
		case idx < len(h.Descs):
			h.Descs[idx] = d
		case idx == len(h.Descs):
			h.Descs = append(h.Descs, d)
		default:
			return fmt.Errorf("blob: history gap: have %d versions, got version %d", len(h.Descs), d.Version)
		}
	}
	return nil
}

// LatestIntersecting returns the newest version w <= upTo whose write
// range intersects r (NoVersion if none). Aborted versions still count:
// their metadata exists (repaired to describe an empty payload), so
// borrowing from them stays well-defined.
func (h *History) LatestIntersecting(r Range, upTo Version) Version {
	if upTo > Version(len(h.Descs)) {
		upTo = Version(len(h.Descs))
	}
	for v := upTo; v >= 1; v-- {
		if h.Descs[v-1].Range().Intersects(r) {
			return v
		}
	}
	return NoVersion
}

// Clone returns a deep copy of the history.
func (h *History) Clone() *History {
	return &History{Descs: append([]WriteDesc(nil), h.Descs...)}
}

// Blocks returns the number of blocks needed to hold size bytes given
// blockSize striping.
func Blocks(size, blockSize int64) int64 { return util.CeilDiv(size, blockSize) }

// SpanBytes returns the byte span covered by the segment-tree root of a
// snapshot holding size bytes: the smallest power-of-two number of
// blocks covering the size, times the block size (minimum one block).
func SpanBytes(size, blockSize int64) int64 {
	return util.NextPow2(Blocks(size, blockSize)) * blockSize
}
