package vmanager

import (
	"context"
	"errors"
	"sort"
	"sync/atomic"
	"time"

	"blobseer/internal/blob"
	"blobseer/internal/rpc"
)

// API is the version-manager client surface shared by the
// single-address Client and the sharded Router, so everything above
// the control plane (core client, BSFS, namespace, repair) is
// oblivious to how many shard services stand behind it.
type API interface {
	CreateBlob(ctx context.Context, blockSize int64, replication int) (blob.Meta, error)
	GetMeta(ctx context.Context, id blob.ID) (blob.Meta, error)
	AssignVersion(ctx context.Context, id blob.ID, kind blob.WriteKind, off, size int64, nonce uint64, since blob.Version) (Assignment, error)
	Commit(ctx context.Context, id blob.ID, v blob.Version) error
	Abort(ctx context.Context, id blob.ID, v blob.Version) error
	Latest(ctx context.Context, id blob.ID) (blob.Version, int64, error)
	VersionInfo(ctx context.Context, id blob.ID, v blob.Version) (blob.WriteDesc, error)
	History(ctx context.Context, id blob.ID, since blob.Version) ([]blob.WriteDesc, error)
	WaitPublished(ctx context.Context, id blob.ID, v blob.Version, timeout time.Duration) (blob.Version, int64, error)
	ListBlobs(ctx context.Context) ([]blob.ID, error)
	Prune(ctx context.Context, id blob.ID, keep blob.Version) (blob.Version, error)
	PrunedBelow(ctx context.Context, id blob.ID) (blob.Version, error)
	ForceSnapshot(ctx context.Context) error
	SetRetry(b rpc.Backoff)
}

var (
	_ API = (*Client)(nil)
	_ API = (*Router)(nil)
)

// Router fans a sharded version-manager deployment back into one
// client. Every per-blob operation routes to the shard that owns the
// blob — ShardOf(id, K), the same rule the shards mint by — so a
// write to blob X touches exactly one shard service. CreateBlob
// round-robins across shards (any shard can mint; IDs never collide
// because each shard mints its own residue class mod K).
//
// The Router holds no routing table and no shard state: the shard
// count and the ID are the route. It is safe for concurrent use.
type Router struct {
	shards []*Client
	next   atomic.Uint64 // round-robin cursor for CreateBlob
}

// NewRouter returns a router over the shard services at addrs, in
// shard-index order (addrs[k] must be shard k of len(addrs)).
func NewRouter(pool *rpc.Pool, addrs []string) *Router {
	if len(addrs) == 0 {
		panic("vmanager: NewRouter with no shard addresses")
	}
	shards := make([]*Client, len(addrs))
	for i, a := range addrs {
		shards[i] = NewClient(pool, a)
	}
	return &Router{shards: shards}
}

// NumShards reports the shard count K.
func (r *Router) NumShards() int { return len(r.shards) }

// Shards exposes the per-shard clients in shard order (bsfsctl's
// per-shard status loop; do not mutate).
func (r *Router) Shards() []*Client { return r.shards }

// ShardFor returns the client owning id.
func (r *Router) ShardFor(id blob.ID) *Client {
	return r.shards[ShardOf(id, len(r.shards))]
}

// SetRetry overrides the retry schedule on every shard client.
func (r *Router) SetRetry(b rpc.Backoff) {
	for _, c := range r.shards {
		c.SetRetry(b)
	}
}

// CreateBlob allocates a new blob on the next shard in round-robin
// order, spreading unrelated blobs across the control plane.
func (r *Router) CreateBlob(ctx context.Context, blockSize int64, replication int) (blob.Meta, error) {
	k := int(r.next.Add(1)-1) % len(r.shards)
	return r.shards[k].CreateBlob(ctx, blockSize, replication)
}

// GetMeta fetches a blob's static configuration from its shard.
func (r *Router) GetMeta(ctx context.Context, id blob.ID) (blob.Meta, error) {
	return r.ShardFor(id).GetMeta(ctx, id)
}

// AssignVersion requests a version number from the blob's shard.
func (r *Router) AssignVersion(ctx context.Context, id blob.ID, kind blob.WriteKind, off, size int64, nonce uint64, since blob.Version) (Assignment, error) {
	return r.ShardFor(id).AssignVersion(ctx, id, kind, off, size, nonce, since)
}

// Commit reports a completed write to the blob's shard.
func (r *Router) Commit(ctx context.Context, id blob.ID, v blob.Version) error {
	return r.ShardFor(id).Commit(ctx, id, v)
}

// Abort reports a failed write to the blob's shard.
func (r *Router) Abort(ctx context.Context, id blob.ID, v blob.Version) error {
	return r.ShardFor(id).Abort(ctx, id, v)
}

// Latest returns the newest published version and size.
func (r *Router) Latest(ctx context.Context, id blob.ID) (blob.Version, int64, error) {
	return r.ShardFor(id).Latest(ctx, id)
}

// VersionInfo fetches one version's descriptor.
func (r *Router) VersionInfo(ctx context.Context, id blob.ID, v blob.Version) (blob.WriteDesc, error) {
	return r.ShardFor(id).VersionInfo(ctx, id, v)
}

// History fetches descriptors after since.
func (r *Router) History(ctx context.Context, id blob.ID, since blob.Version) ([]blob.WriteDesc, error) {
	return r.ShardFor(id).History(ctx, id, since)
}

// WaitPublished blocks on the blob's shard until v publishes.
func (r *Router) WaitPublished(ctx context.Context, id blob.ID, v blob.Version, timeout time.Duration) (blob.Version, int64, error) {
	return r.ShardFor(id).WaitPublished(ctx, id, v, timeout)
}

// ListBlobs merges every shard's blob list into ascending ID order.
func (r *Router) ListBlobs(ctx context.Context) ([]blob.ID, error) {
	var out []blob.ID
	for _, c := range r.shards {
		ids, err := c.ListBlobs(ctx)
		if err != nil {
			return nil, err
		}
		out = append(out, ids...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// Prune advances the oldest readable version on the blob's shard.
func (r *Router) Prune(ctx context.Context, id blob.ID, keep blob.Version) (blob.Version, error) {
	return r.ShardFor(id).Prune(ctx, id, keep)
}

// PrunedBelow returns the oldest readable version from the blob's shard.
func (r *Router) PrunedBelow(ctx context.Context, id blob.ID) (blob.Version, error) {
	return r.ShardFor(id).PrunedBelow(ctx, id)
}

// ForceSnapshot snapshots every shard's WAL, reporting the first
// failure after attempting all of them.
func (r *Router) ForceSnapshot(ctx context.Context) error {
	var errs []error
	for _, c := range r.shards {
		if err := c.ForceSnapshot(ctx); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}
