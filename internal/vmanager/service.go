package vmanager

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"blobseer/internal/blob"
	"blobseer/internal/mdtree"
	"blobseer/internal/metrics"
	"blobseer/internal/rpc"
	"blobseer/internal/wal"
	"blobseer/internal/wire"
)

// RPC method numbers.
const (
	mCreateBlob uint16 = iota + 1
	mGetMeta
	mAssignVersion
	mCommit
	mAbort
	mLatest
	mVersionInfo
	mHistory
	mWaitPublished
	mListBlobs
	mPrune
	mPrunedBelow
	mWALStatus
	mForceSnapshot
)

// RPC status codes for the sentinel errors.
const (
	CodeUnknownBlob uint16 = 20 + iota
	CodeUnaligned
	CodeBadRange
	CodeBadVersion
	CodeTimeout
	CodePruned
	CodeBadPrune
)

func codeFor(err error) uint16 {
	switch {
	case errors.Is(err, ErrUnknownBlob):
		return CodeUnknownBlob
	case errors.Is(err, ErrUnaligned):
		return CodeUnaligned
	case errors.Is(err, ErrBadRange):
		return CodeBadRange
	case errors.Is(err, ErrBadVersion):
		return CodeBadVersion
	case errors.Is(err, ErrTimeout):
		return CodeTimeout
	case errors.Is(err, ErrPruned):
		return CodePruned
	case errors.Is(err, ErrBadPrune):
		return CodeBadPrune
	default:
		return rpc.StatusError
	}
}

func wrap(err error) error {
	if err == nil {
		return nil
	}
	return rpc.CodedError(codeFor(err), err.Error())
}

// errFromCode converts an RPC error back to the matching sentinel so
// client-side errors.Is checks work across the wire.
func errFromCode(err error) error {
	if err == nil {
		return nil
	}
	switch rpc.CodeOf(err) {
	case CodeUnknownBlob:
		return ErrUnknownBlob
	case CodeUnaligned:
		return ErrUnaligned
	case CodeBadRange:
		return ErrBadRange
	case CodeBadVersion:
		return ErrBadVersion
	case CodeTimeout:
		return ErrTimeout
	case CodePruned:
		return ErrPruned
	case CodeBadPrune:
		return ErrBadPrune
	default:
		return err
	}
}

// MetadataRepairer returns a Repairer that rebuilds an aborted
// version's tree over st with empty block references: reads of the
// aborted range resolve to leaves with no providers and are zero-filled
// (the aborted writer's data was never defined).
func MetadataRepairer(st mdtree.Store) Repairer {
	return func(meta blob.Meta, hist *blob.History, v blob.Version) error {
		d, ok := hist.Desc(v)
		if !ok {
			return ErrBadVersion
		}
		n := blob.Blocks(d.Len, meta.BlockSize)
		refs := make([]mdtree.BlockRef, n)
		for i := range refs {
			ln := meta.BlockSize
			if int64(i) == n-1 {
				if rem := d.Len - int64(n-1)*meta.BlockSize; rem > 0 {
					ln = rem
				}
			}
			refs[i] = mdtree.BlockRef{
				Key: blob.BlockKey{Blob: meta.ID, Nonce: d.Nonce, Seq: uint32(i)},
				Len: ln,
			}
		}
		_, err := mdtree.Build(context.Background(), st, meta, hist, v, refs)
		return err
	}
}

// OpCounts is the per-operation dispatch breakdown of one
// version-manager service, in RPC-method order. In a sharded
// deployment each shard keeps its own counts, which is what makes
// shard imbalance (and shard-local routing) directly observable.
type OpCounts struct {
	Create      int64
	GetMeta     int64
	Assign      int64
	Commit      int64
	Abort       int64
	Latest      int64
	VersionInfo int64
	History     int64
	Wait        int64
	List        int64
	Prune       int64
	PrunedBelow int64
	WALStatus   int64
	Snapshot    int64
}

// Total sums every per-op counter (== Service.Calls()).
func (o OpCounts) Total() int64 {
	return o.Create + o.GetMeta + o.Assign + o.Commit + o.Abort + o.Latest +
		o.VersionInfo + o.History + o.Wait + o.List + o.Prune + o.PrunedBelow +
		o.WALStatus + o.Snapshot
}

// opNames maps RPC method numbers to metric-name suffixes.
var opNames = [mForceSnapshot]string{
	"create", "get_meta", "assign", "commit", "abort", "latest",
	"version_info", "history", "wait", "list", "prune", "pruned_below",
	"wal_status", "force_snapshot",
}

// MethodName maps an RPC method number to its operation name, for the
// server-side tracer.
func MethodName(m uint16) string {
	if m >= 1 && m <= mForceSnapshot {
		return opNames[m-1]
	}
	return "unknown"
}

// Service is the RPC shell around State, plus the dead-writer janitor.
type Service struct {
	state *State
	calls atomic.Int64
	ops   [mForceSnapshot]atomic.Int64 // indexed by RPC method - 1

	reg       *metrics.Registry
	opLatency [mForceSnapshot]*metrics.Histogram

	stopJanitor chan struct{}
}

// NewService wraps state.
func NewService(state *State) *Service {
	s := &Service{state: state, stopJanitor: make(chan struct{})}
	s.reg = metrics.NewRegistry()
	for m := uint16(1); m <= mForceSnapshot; m++ {
		s.opLatency[m-1] = s.reg.Histogram("latency_" + opNames[m-1])
	}
	s.reg.GaugeFunc("rpc_calls", s.calls.Load)
	// WAL shape gauges: evaluated only at scrape time. A manager running
	// without a WAL reports zeros.
	walGauge := func(pick func(wal.Status) int64) func() int64 {
		return func() int64 {
			st, err := state.WALStatus()
			if err != nil {
				return 0
			}
			return pick(st)
		}
	}
	s.reg.GaugeFunc("wal_segments", walGauge(func(st wal.Status) int64 { return int64(st.Segments) }))
	s.reg.GaugeFunc("wal_log_bytes", walGauge(func(st wal.Status) int64 { return st.LogBytes }))
	s.reg.GaugeFunc("wal_records", walGauge(func(st wal.Status) int64 { return int64(st.Records) }))
	s.reg.GaugeFunc("wal_syncs", walGauge(func(st wal.Status) int64 { return int64(st.Syncs) }))
	s.reg.GaugeFunc("wal_last_sync_age_ms", walGauge(func(st wal.Status) int64 {
		if st.LastSyncUnix == 0 {
			return 0
		}
		return time.Now().UnixMilli() - st.LastSyncUnix*1000
	}))
	s.reg.GaugeFunc("wal_unsnapshotted", walGauge(func(st wal.Status) int64 {
		return int64(st.LastSeq - st.SnapshotSeq)
	}))
	return s
}

// Metrics exposes the shard's registry (per-op latency histograms,
// dispatch counts, WAL group-commit gauges) for HTTP export.
func (s *Service) Metrics() *metrics.Registry { return s.reg }

// State exposes the core (simulator, tests).
func (s *Service) State() *State { return s.state }

// Calls reports the cumulative RPC dispatch count — the metadata
// round-trips clients have charged this version manager. Regression
// tests pin it: reads against a pinned core.Snapshot must not grow it.
// It always equals Ops().Total().
func (s *Service) Calls() int64 { return s.calls.Load() }

// Ops reports the dispatch count split by operation.
func (s *Service) Ops() OpCounts {
	return OpCounts{
		Create:      s.ops[mCreateBlob-1].Load(),
		GetMeta:     s.ops[mGetMeta-1].Load(),
		Assign:      s.ops[mAssignVersion-1].Load(),
		Commit:      s.ops[mCommit-1].Load(),
		Abort:       s.ops[mAbort-1].Load(),
		Latest:      s.ops[mLatest-1].Load(),
		VersionInfo: s.ops[mVersionInfo-1].Load(),
		History:     s.ops[mHistory-1].Load(),
		Wait:        s.ops[mWaitPublished-1].Load(),
		List:        s.ops[mListBlobs-1].Load(),
		Prune:       s.ops[mPrune-1].Load(),
		PrunedBelow: s.ops[mPrunedBelow-1].Load(),
		WALStatus:   s.ops[mWALStatus-1].Load(),
		Snapshot:    s.ops[mForceSnapshot-1].Load(),
	}
}

// counted wraps a handler with the total and per-op dispatch counters
// plus the per-op latency histogram.
func (s *Service) counted(m uint16, fn rpc.HandlerFunc) rpc.HandlerFunc {
	h := s.opLatency[m-1]
	return func(ctx context.Context, p []byte) ([]byte, error) {
		s.calls.Add(1)
		s.ops[m-1].Add(1)
		t0 := time.Now()
		resp, err := fn(ctx, p)
		h.ObserveSince(t0)
		return resp, err
	}
}

// StartJanitor aborts writes stuck in flight longer than maxAge,
// checking every interval. Stop with StopJanitor.
func (s *Service) StartJanitor(maxAge, interval time.Duration) {
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-s.stopJanitor:
				return
			case <-t.C:
				for _, e := range s.state.Expired(maxAge) {
					// Best effort: a concurrent Commit may win the race.
					_ = s.state.Abort(e.Blob, e.Version)
				}
			}
		}
	}()
}

// StopJanitor terminates the janitor goroutine.
func (s *Service) StopJanitor() {
	select {
	case <-s.stopJanitor:
	default:
		close(s.stopJanitor)
	}
}

// Mux returns the RPC dispatch table.
func (s *Service) Mux() *rpc.Mux {
	m := rpc.NewMux()
	m.Handle(mCreateBlob, s.counted(mCreateBlob, s.handleCreate))
	m.Handle(mGetMeta, s.counted(mGetMeta, s.handleGetMeta))
	m.Handle(mAssignVersion, s.counted(mAssignVersion, s.handleAssign))
	m.Handle(mCommit, s.counted(mCommit, s.handleCommit))
	m.Handle(mAbort, s.counted(mAbort, s.handleAbort))
	m.Handle(mLatest, s.counted(mLatest, s.handleLatest))
	m.Handle(mVersionInfo, s.counted(mVersionInfo, s.handleVersionInfo))
	m.Handle(mHistory, s.counted(mHistory, s.handleHistory))
	m.Handle(mWaitPublished, s.counted(mWaitPublished, s.handleWait))
	m.Handle(mListBlobs, s.counted(mListBlobs, s.handleListBlobs))
	m.Handle(mPrune, s.counted(mPrune, s.handlePrune))
	m.Handle(mPrunedBelow, s.counted(mPrunedBelow, s.handlePrunedBelow))
	m.Handle(mWALStatus, s.counted(mWALStatus, s.handleWALStatus))
	m.Handle(mForceSnapshot, s.counted(mForceSnapshot, s.handleForceSnapshot))
	return m
}

func encodeOps(b *wire.Buffer, o OpCounts) {
	b.I64(o.Create)
	b.I64(o.GetMeta)
	b.I64(o.Assign)
	b.I64(o.Commit)
	b.I64(o.Abort)
	b.I64(o.Latest)
	b.I64(o.VersionInfo)
	b.I64(o.History)
	b.I64(o.Wait)
	b.I64(o.List)
	b.I64(o.Prune)
	b.I64(o.PrunedBelow)
	b.I64(o.WALStatus)
	b.I64(o.Snapshot)
}

func decodeOps(r *wire.Reader) OpCounts {
	return OpCounts{
		Create:      r.I64(),
		GetMeta:     r.I64(),
		Assign:      r.I64(),
		Commit:      r.I64(),
		Abort:       r.I64(),
		Latest:      r.I64(),
		VersionInfo: r.I64(),
		History:     r.I64(),
		Wait:        r.I64(),
		List:        r.I64(),
		Prune:       r.I64(),
		PrunedBelow: r.I64(),
		WALStatus:   r.I64(),
		Snapshot:    r.I64(),
	}
}

func (s *Service) handleWALStatus(ctx context.Context, p []byte) ([]byte, error) {
	st, err := s.state.WALStatus()
	if err != nil {
		return nil, wrap(err)
	}
	b := wire.NewBuffer(192)
	b.String(st.Dir)
	b.U32(uint32(st.Segments))
	b.U64(st.FirstSeq)
	b.U64(st.LastSeq)
	b.U64(st.SnapshotSeq)
	b.I64(st.LogBytes)
	b.U64(st.Records)
	b.I64(st.LastSyncUnix)
	b.U64(st.Syncs)
	encodeOps(b, s.Ops())
	return b.Bytes(), nil
}

func (s *Service) handleForceSnapshot(ctx context.Context, p []byte) ([]byte, error) {
	if err := s.state.SnapshotNow(); err != nil {
		return nil, wrap(err)
	}
	return nil, nil
}

func encodeDesc(b *wire.Buffer, d blob.WriteDesc) {
	b.U64(uint64(d.Version))
	b.I64(d.Off)
	b.I64(d.Len)
	b.I64(d.SizeAfter)
	b.U8(uint8(d.Kind))
	b.U64(d.Nonce)
	b.Bool(d.Aborted)
}

func decodeDesc(r *wire.Reader) blob.WriteDesc {
	return blob.WriteDesc{
		Version:   blob.Version(r.U64()),
		Off:       r.I64(),
		Len:       r.I64(),
		SizeAfter: r.I64(),
		Kind:      blob.WriteKind(r.U8()),
		Nonce:     r.U64(),
		Aborted:   r.Bool(),
	}
}

func encodeDescs(b *wire.Buffer, ds []blob.WriteDesc) {
	b.U32(uint32(len(ds)))
	for _, d := range ds {
		encodeDesc(b, d)
	}
}

func decodeDescs(r *wire.Reader) []blob.WriteDesc {
	n := r.U32()
	if r.Err() != nil || n > uint32(r.Remaining()) {
		return nil
	}
	out := make([]blob.WriteDesc, 0, n)
	for i := uint32(0); i < n; i++ {
		out = append(out, decodeDesc(r))
	}
	return out
}

func (s *Service) handleCreate(ctx context.Context, p []byte) ([]byte, error) {
	r := wire.NewReader(p)
	blockSize := r.I64()
	replication := int(r.U32())
	if err := r.Err(); err != nil {
		return nil, err
	}
	m, err := s.state.CreateBlob(blockSize, replication)
	if err != nil {
		return nil, wrap(err)
	}
	b := wire.NewBuffer(8)
	b.U64(uint64(m.ID))
	return b.Bytes(), nil
}

func (s *Service) handleGetMeta(ctx context.Context, p []byte) ([]byte, error) {
	r := wire.NewReader(p)
	id := blob.ID(r.U64())
	if err := r.Err(); err != nil {
		return nil, err
	}
	m, err := s.state.GetMeta(id)
	if err != nil {
		return nil, wrap(err)
	}
	b := wire.NewBuffer(12)
	b.I64(m.BlockSize)
	b.U32(uint32(m.Replication))
	return b.Bytes(), nil
}

func (s *Service) handleAssign(ctx context.Context, p []byte) ([]byte, error) {
	r := wire.NewReader(p)
	id := blob.ID(r.U64())
	kind := blob.WriteKind(r.U8())
	off := r.I64()
	size := r.I64()
	nonce := r.U64()
	since := blob.Version(r.U64())
	if err := r.Err(); err != nil {
		return nil, err
	}
	a, err := s.state.AssignVersion(id, kind, off, size, nonce, since)
	if err != nil {
		return nil, wrap(err)
	}
	b := wire.NewBuffer(64)
	b.U64(uint64(a.Version))
	b.I64(a.Off)
	b.I64(a.Size)
	encodeDescs(b, a.Descs)
	return b.Bytes(), nil
}

func (s *Service) handleCommit(ctx context.Context, p []byte) ([]byte, error) {
	r := wire.NewReader(p)
	id := blob.ID(r.U64())
	v := blob.Version(r.U64())
	if err := r.Err(); err != nil {
		return nil, err
	}
	return nil, wrap(s.state.Commit(id, v))
}

func (s *Service) handleAbort(ctx context.Context, p []byte) ([]byte, error) {
	r := wire.NewReader(p)
	id := blob.ID(r.U64())
	v := blob.Version(r.U64())
	if err := r.Err(); err != nil {
		return nil, err
	}
	return nil, wrap(s.state.Abort(id, v))
}

func (s *Service) handleLatest(ctx context.Context, p []byte) ([]byte, error) {
	r := wire.NewReader(p)
	id := blob.ID(r.U64())
	if err := r.Err(); err != nil {
		return nil, err
	}
	v, size, err := s.state.Latest(id)
	if err != nil {
		return nil, wrap(err)
	}
	b := wire.NewBuffer(16)
	b.U64(uint64(v))
	b.I64(size)
	return b.Bytes(), nil
}

func (s *Service) handleVersionInfo(ctx context.Context, p []byte) ([]byte, error) {
	r := wire.NewReader(p)
	id := blob.ID(r.U64())
	v := blob.Version(r.U64())
	if err := r.Err(); err != nil {
		return nil, err
	}
	d, err := s.state.VersionInfo(id, v)
	if err != nil {
		return nil, wrap(err)
	}
	b := wire.NewBuffer(48)
	encodeDesc(b, d)
	return b.Bytes(), nil
}

func (s *Service) handleHistory(ctx context.Context, p []byte) ([]byte, error) {
	r := wire.NewReader(p)
	id := blob.ID(r.U64())
	since := blob.Version(r.U64())
	if err := r.Err(); err != nil {
		return nil, err
	}
	ds, err := s.state.History(id, since)
	if err != nil {
		return nil, wrap(err)
	}
	b := wire.NewBuffer(4 + len(ds)*48)
	encodeDescs(b, ds)
	return b.Bytes(), nil
}

func (s *Service) handleWait(ctx context.Context, p []byte) ([]byte, error) {
	r := wire.NewReader(p)
	id := blob.ID(r.U64())
	v := blob.Version(r.U64())
	timeoutMs := r.I64()
	if err := r.Err(); err != nil {
		return nil, err
	}
	pub, size, err := s.state.WaitPublished(id, v, time.Duration(timeoutMs)*time.Millisecond)
	if err != nil {
		return nil, wrap(err)
	}
	b := wire.NewBuffer(16)
	b.U64(uint64(pub))
	b.I64(size)
	return b.Bytes(), nil
}

func (s *Service) handleListBlobs(ctx context.Context, p []byte) ([]byte, error) {
	ids := s.state.Blobs()
	b := wire.NewBuffer(4 + len(ids)*8)
	b.U32(uint32(len(ids)))
	for _, id := range ids {
		b.U64(uint64(id))
	}
	return b.Bytes(), nil
}

// Client is the version-manager RPC client.
func (s *Service) handlePrune(ctx context.Context, p []byte) ([]byte, error) {
	r := wire.NewReader(p)
	id := blob.ID(r.U64())
	keep := blob.Version(r.U64())
	if err := r.Err(); err != nil {
		return nil, err
	}
	from, err := s.state.Prune(id, keep)
	if err != nil {
		return nil, wrap(err)
	}
	b := wire.NewBuffer(8)
	b.U64(uint64(from))
	return b.Bytes(), nil
}

func (s *Service) handlePrunedBelow(ctx context.Context, p []byte) ([]byte, error) {
	r := wire.NewReader(p)
	id := blob.ID(r.U64())
	if err := r.Err(); err != nil {
		return nil, err
	}
	v, err := s.state.PrunedBelow(id)
	if err != nil {
		return nil, wrap(err)
	}
	b := wire.NewBuffer(8)
	b.U64(uint64(v))
	return b.Bytes(), nil
}

type Client struct {
	pool  *rpc.Pool
	addr  string
	retry rpc.Backoff
}

// NewClient returns a client for the version manager at addr. Calls
// retry transport-classified failures with rpc.DefaultBackoff, so a
// version-manager crash-restart cycle is invisible to callers
// (Publish/Commit is idempotent; a retried AssignVersion whose first
// response was lost leaks an in-flight version for the janitor).
func NewClient(pool *rpc.Pool, addr string) *Client {
	return &Client{pool: pool, addr: addr, retry: rpc.DefaultBackoff}
}

// SetRetry overrides the client's retry schedule (chaos tests widen it,
// latency-sensitive callers shrink it).
func (c *Client) SetRetry(b rpc.Backoff) { c.retry = b }

func (c *Client) call(ctx context.Context, m uint16, payload []byte) ([]byte, error) {
	var resp []byte
	err := rpc.Retry(ctx, c.retry, func(ctx context.Context) error {
		cl, err := c.pool.Get(c.addr)
		if err != nil {
			return err
		}
		resp, err = cl.Call(ctx, m, payload)
		return err
	})
	if err != nil {
		return nil, errFromCode(err)
	}
	return resp, nil
}

// CreateBlob allocates a new blob.
func (c *Client) CreateBlob(ctx context.Context, blockSize int64, replication int) (blob.Meta, error) {
	b := wire.NewBuffer(12)
	b.I64(blockSize)
	b.U32(uint32(replication))
	resp, err := c.call(ctx, mCreateBlob, b.Bytes())
	if err != nil {
		return blob.Meta{}, err
	}
	r := wire.NewReader(resp)
	m := blob.Meta{ID: blob.ID(r.U64()), BlockSize: blockSize, Replication: replication}
	return m, r.Err()
}

// GetMeta fetches a blob's static configuration.
func (c *Client) GetMeta(ctx context.Context, id blob.ID) (blob.Meta, error) {
	b := wire.NewBuffer(8)
	b.U64(uint64(id))
	resp, err := c.call(ctx, mGetMeta, b.Bytes())
	if err != nil {
		return blob.Meta{}, err
	}
	r := wire.NewReader(resp)
	m := blob.Meta{ID: id, BlockSize: r.I64(), Replication: int(r.U32())}
	return m, r.Err()
}

// AssignVersion requests a version number for a prepared write.
func (c *Client) AssignVersion(ctx context.Context, id blob.ID, kind blob.WriteKind, off, size int64, nonce uint64, since blob.Version) (Assignment, error) {
	b := wire.NewBuffer(48)
	b.U64(uint64(id))
	b.U8(uint8(kind))
	b.I64(off)
	b.I64(size)
	b.U64(nonce)
	b.U64(uint64(since))
	resp, err := c.call(ctx, mAssignVersion, b.Bytes())
	if err != nil {
		return Assignment{}, err
	}
	r := wire.NewReader(resp)
	a := Assignment{
		Version: blob.Version(r.U64()),
		Off:     r.I64(),
		Size:    r.I64(),
		Descs:   decodeDescs(r),
	}
	return a, r.Err()
}

// Commit reports a completed write.
func (c *Client) Commit(ctx context.Context, id blob.ID, v blob.Version) error {
	b := wire.NewBuffer(16)
	b.U64(uint64(id))
	b.U64(uint64(v))
	_, err := c.call(ctx, mCommit, b.Bytes())
	return err
}

// Abort reports a failed write.
func (c *Client) Abort(ctx context.Context, id blob.ID, v blob.Version) error {
	b := wire.NewBuffer(16)
	b.U64(uint64(id))
	b.U64(uint64(v))
	_, err := c.call(ctx, mAbort, b.Bytes())
	return err
}

// Latest returns the newest published version and size.
func (c *Client) Latest(ctx context.Context, id blob.ID) (blob.Version, int64, error) {
	b := wire.NewBuffer(8)
	b.U64(uint64(id))
	resp, err := c.call(ctx, mLatest, b.Bytes())
	if err != nil {
		return 0, 0, err
	}
	r := wire.NewReader(resp)
	v := blob.Version(r.U64())
	size := r.I64()
	return v, size, r.Err()
}

// VersionInfo fetches one version's descriptor.
func (c *Client) VersionInfo(ctx context.Context, id blob.ID, v blob.Version) (blob.WriteDesc, error) {
	b := wire.NewBuffer(16)
	b.U64(uint64(id))
	b.U64(uint64(v))
	resp, err := c.call(ctx, mVersionInfo, b.Bytes())
	if err != nil {
		return blob.WriteDesc{}, err
	}
	r := wire.NewReader(resp)
	d := decodeDesc(r)
	return d, r.Err()
}

// History fetches descriptors after since.
func (c *Client) History(ctx context.Context, id blob.ID, since blob.Version) ([]blob.WriteDesc, error) {
	b := wire.NewBuffer(16)
	b.U64(uint64(id))
	b.U64(uint64(since))
	resp, err := c.call(ctx, mHistory, b.Bytes())
	if err != nil {
		return nil, err
	}
	r := wire.NewReader(resp)
	ds := decodeDescs(r)
	return ds, r.Err()
}

// WaitPublished blocks until v is published or timeout passes. The
// call blocks server-side by design, so it is exempted from the
// per-call I/O deadline; if the manager restarts mid-wait the retry in
// call re-issues it, re-arming the waiter on the recovered state.
func (c *Client) WaitPublished(ctx context.Context, id blob.ID, v blob.Version, timeout time.Duration) (blob.Version, int64, error) {
	b := wire.NewBuffer(24)
	b.U64(uint64(id))
	b.U64(uint64(v))
	b.I64(int64(timeout / time.Millisecond))
	resp, err := c.call(rpc.NoTimeout(ctx), mWaitPublished, b.Bytes())
	if err != nil {
		return 0, 0, err
	}
	r := wire.NewReader(resp)
	pub := blob.Version(r.U64())
	size := r.I64()
	return pub, size, r.Err()
}

// ListBlobs returns all blob IDs.
func (c *Client) ListBlobs(ctx context.Context) ([]blob.ID, error) {
	resp, err := c.call(ctx, mListBlobs, nil)
	if err != nil {
		return nil, err
	}
	r := wire.NewReader(resp)
	n := r.U32()
	out := make([]blob.ID, 0, n)
	for i := uint32(0); i < n; i++ {
		out = append(out, blob.ID(r.U64()))
	}
	return out, r.Err()
}

// PrunedBelow returns the oldest still-readable version of the blob
// (1 if never pruned). The repair scanner uses it to bound its walk to
// versions whose metadata still exists.
func (c *Client) PrunedBelow(ctx context.Context, id blob.ID) (blob.Version, error) {
	b := wire.NewBuffer(8)
	b.U64(uint64(id))
	resp, err := c.call(ctx, mPrunedBelow, b.Bytes())
	if err != nil {
		return 0, err
	}
	r := wire.NewReader(resp)
	v := blob.Version(r.U64())
	return v, r.Err()
}

// Prune advances the oldest readable version to keep, returning the
// previous prune point (see State.Prune).
func (c *Client) Prune(ctx context.Context, id blob.ID, keep blob.Version) (blob.Version, error) {
	b := wire.NewBuffer(16)
	b.U64(uint64(id))
	b.U64(uint64(keep))
	resp, err := c.call(ctx, mPrune, b.Bytes())
	if err != nil {
		return 0, errFromCode(err)
	}
	r := wire.NewReader(resp)
	from := blob.Version(r.U64())
	return from, r.Err()
}

// StatusReply is one shard's WAL shape plus its per-op dispatch
// counters (bsfsctl vm status).
type StatusReply struct {
	WAL wal.Status
	Ops OpCounts
}

// Status reports the manager's write-ahead-log shape and per-op
// dispatch counters. Fails with a remote error when the manager runs
// without a WAL.
func (c *Client) Status(ctx context.Context) (StatusReply, error) {
	resp, err := c.call(ctx, mWALStatus, nil)
	if err != nil {
		return StatusReply{}, err
	}
	r := wire.NewReader(resp)
	st := StatusReply{
		WAL: wal.Status{
			Dir:          r.String(),
			Segments:     int(r.U32()),
			FirstSeq:     r.U64(),
			LastSeq:      r.U64(),
			SnapshotSeq:  r.U64(),
			LogBytes:     r.I64(),
			Records:      r.U64(),
			LastSyncUnix: r.I64(),
			Syncs:        r.U64(),
		},
		Ops: decodeOps(r),
	}
	return st, r.Err()
}

// WALStatus reports the manager's write-ahead-log shape (see Status).
func (c *Client) WALStatus(ctx context.Context) (wal.Status, error) {
	st, err := c.Status(ctx)
	return st.WAL, err
}

// ForceSnapshot snapshots the manager's state into its WAL and
// compacts the log behind it.
func (c *Client) ForceSnapshot(ctx context.Context) error {
	_, err := c.call(ctx, mForceSnapshot, nil)
	return err
}
