package vmanager

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	"blobseer/internal/blob"
	"blobseer/internal/mdtree"
	"blobseer/internal/rpc"
	"blobseer/internal/wal"
)

// startShardedVM deploys K shard services on an inproc network and
// returns a Router over them (addresses in shard order).
func startShardedVM(t *testing.T, k int) *Router {
	t.Helper()
	n := rpc.NewInprocNetwork()
	addrs := make([]string, k)
	for i := 0; i < k; i++ {
		svc := NewService(NewShardState(MetadataRepairer(mdtree.NewMemStore()), ShardInfo{Index: i, Count: k}))
		addrs[i] = fmt.Sprintf("vmanager-%d", i)
		lis, err := n.Listen(addrs[i])
		if err != nil {
			t.Fatal(err)
		}
		srv := rpc.NewServer(svc.Mux())
		go srv.Serve(lis)
		t.Cleanup(func() { srv.Close() })
	}
	pool := rpc.NewPool(n.Dial)
	t.Cleanup(pool.Close)
	return NewRouter(pool, addrs)
}

func TestShardOf(t *testing.T) {
	if got := ShardOf(7, 0); got != 0 {
		t.Errorf("ShardOf(7, 0) = %d, want 0", got)
	}
	if got := ShardOf(7, 1); got != 0 {
		t.Errorf("ShardOf(7, 1) = %d, want 0", got)
	}
	for id := blob.ID(1); id < 100; id++ {
		if got, want := ShardOf(id, 4), int(uint64(id)%4); got != want {
			t.Fatalf("ShardOf(%d, 4) = %d, want %d", id, got, want)
		}
	}
}

// TestShardStateMintsOwnedIDs pins the ID encoding: shard k of K mints
// only IDs ≡ k (mod K), never 0, advancing by stride K.
func TestShardStateMintsOwnedIDs(t *testing.T) {
	for _, tc := range []struct {
		k, n int
		want []blob.ID
	}{
		{0, 1, []blob.ID{1, 2, 3}},
		{0, 4, []blob.ID{4, 8, 12}}, // ID 0 means "no blob", so shard 0 starts at K
		{1, 4, []blob.ID{1, 5, 9}},
		{3, 4, []blob.ID{3, 7, 11}},
	} {
		s := NewShardState(nil, ShardInfo{Index: tc.k, Count: tc.n})
		for i, want := range tc.want {
			m, err := s.CreateBlob(B, 1)
			if err != nil {
				t.Fatal(err)
			}
			if m.ID != want {
				t.Errorf("shard %d/%d create #%d: id %d, want %d", tc.k, tc.n, i, m.ID, want)
			}
			if !s.Owns(m.ID) {
				t.Errorf("shard %d/%d does not own its own mint %d", tc.k, tc.n, m.ID)
			}
		}
	}
}

// TestRecoverShardRoundTrip replays a shard's WAL into a fresh state
// and checks both the publication line and the minting cursor survive
// with the shard stride intact.
func TestRecoverShardRoundTrip(t *testing.T) {
	dir := t.TempDir()
	si := ShardInfo{Index: 2, Count: 4}
	log, err := wal.Open(dir, wal.Options{Policy: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	st, err := RecoverShard(log, nil, si)
	if err != nil {
		t.Fatal(err)
	}
	m, err := st.CreateBlob(B, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.ID != 2 {
		t.Fatalf("first mint on shard 2/4 = %d, want 2", m.ID)
	}
	a, err := st.AssignVersion(m.ID, blob.KindAppend, 0, B, 0x1, blob.NoVersion)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Commit(m.ID, a.Version); err != nil {
		t.Fatal(err)
	}
	if err := st.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	log2, err := wal.Open(dir, wal.Options{Policy: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	re, err := RecoverShard(log2, nil, si)
	if err != nil {
		t.Fatal(err)
	}
	defer re.CloseWAL()
	if got := re.Shard(); got != si {
		t.Fatalf("recovered shard info %+v, want %+v", got, si)
	}
	if v, _, err := re.Latest(m.ID); err != nil || v != a.Version {
		t.Fatalf("recovered Latest = %d, %v; want %d", v, err, a.Version)
	}
	// The minting cursor must resume on the shard's stride.
	m2, err := re.CreateBlob(B, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m2.ID != 6 {
		t.Fatalf("post-recovery mint = %d, want 6 (2 + stride 4)", m2.ID)
	}
}

// TestRecoverShardRejectsForeignLog pins the guard: replaying a WAL
// into a shard that does not own its blobs fails loudly instead of
// silently splitting a blob's history across shards.
func TestRecoverShardRejectsForeignLog(t *testing.T) {
	dir := t.TempDir()
	log, err := wal.Open(dir, wal.Options{Policy: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	st, err := RecoverShard(log, nil, ShardInfo{Index: 1, Count: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.CreateBlob(B, 1); err != nil { // mints ID 1
		t.Fatal(err)
	}
	if err := st.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	log2, err := wal.Open(dir, wal.Options{Policy: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	if _, err := RecoverShard(log2, nil, ShardInfo{Index: 3, Count: 4}); err == nil ||
		!strings.Contains(err.Error(), "shard") {
		t.Fatalf("foreign-shard replay err = %v, want shard-ownership error", err)
	}
}

// TestRouterCreateBlobRace is the sharding satellite: N goroutines
// minting blobs through the Router concurrently must get globally
// unique IDs, each owned by the shard the routing rule predicts.
// Run with -race.
func TestRouterCreateBlobRace(t *testing.T) {
	const shards = 4
	r := startShardedVM(t, shards)
	ctx := context.Background()

	const goroutines = 8
	const perG = 25
	var mu sync.Mutex
	ids := make(map[blob.ID]bool)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				m, err := r.CreateBlob(ctx, B, 1)
				if err != nil {
					t.Errorf("create: %v", err)
					return
				}
				mu.Lock()
				if ids[m.ID] {
					t.Errorf("duplicate blob id %d", m.ID)
				}
				ids[m.ID] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(ids) != goroutines*perG {
		t.Fatalf("minted %d unique ids, want %d", len(ids), goroutines*perG)
	}
	// Every ID must resolve through the shard the routing rule picks:
	// GetMeta goes to ShardFor(id), and only the minting shard knows it.
	for id := range ids {
		if _, err := r.GetMeta(ctx, id); err != nil {
			t.Fatalf("blob %d not found on predicted shard %d: %v", id, ShardOf(id, shards), err)
		}
	}
	// The round-robin spread: every shard minted something.
	perShard := make([]int, shards)
	for id := range ids {
		perShard[ShardOf(id, shards)]++
	}
	for k, n := range perShard {
		if n == 0 {
			t.Errorf("shard %d minted nothing: %v", k, perShard)
		}
	}
	// ListBlobs merges all shards, sorted and complete.
	all, err := r.ListBlobs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(ids) {
		t.Fatalf("ListBlobs merged %d ids, want %d", len(all), len(ids))
	}
	if !sort.SliceIsSorted(all, func(i, j int) bool { return all[i] < all[j] }) {
		t.Error("merged ListBlobs not sorted")
	}
}

// TestRouterRoutesPerBlobOps drives a full publish through the Router
// and checks cross-shard isolation: an unknown blob owned by another
// shard errors with the usual sentinel.
func TestRouterRoutesPerBlobOps(t *testing.T) {
	r := startShardedVM(t, 2)
	ctx := context.Background()
	m, err := r.CreateBlob(ctx, B, 1)
	if err != nil {
		t.Fatal(err)
	}
	a, err := r.AssignVersion(ctx, m.ID, blob.KindAppend, 0, B, 0x1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Commit(ctx, m.ID, a.Version); err != nil {
		t.Fatal(err)
	}
	v, size, err := r.Latest(ctx, m.ID)
	if err != nil || v != a.Version || size != B {
		t.Fatalf("Latest = %d/%d, %v", v, size, err)
	}
	// An ID the owning shard never minted: routed there, rejected there.
	missing := m.ID + 2*10 // same shard, unknown blob
	if _, err := r.GetMeta(ctx, missing); !errors.Is(err, ErrUnknownBlob) {
		t.Fatalf("GetMeta(missing) err = %v, want ErrUnknownBlob", err)
	}
}
