// Package vmanager implements BlobSeer's version manager (Section
// III-B): the entity that assigns snapshot version numbers, fixes
// append offsets, and controls when new snapshots are revealed to
// readers. Version assignment is the *only* serialization point of the
// whole write path; everything before (data transfer) and after
// (metadata weaving) runs fully in parallel across writers.
//
// Publication ordering implements the paper's linearizability rule: a
// snapshot v becomes visible only when the metadata of every version
// <= v has been committed, so readers always observe consistent,
// immutable snapshots.
//
// Serialization is per *blob*, not global, and the manager scales on
// both axes:
//
//   - Vertically, State stripes its blob table across numStripes locks
//     (blob -> stripe by hash of the ID), so writers to unrelated blobs
//     never contend and the dead-writer janitor's Expired scan pauses
//     one stripe at a time instead of freezing every publish.
//   - Horizontally, K independent shard services each own the blob IDs
//     congruent to their index mod K (see ShardInfo and Router). IDs
//     are minted shard-locally with stride K, so shards never
//     coordinate — not even for CreateBlob.
package vmanager

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"blobseer/internal/blob"
	"blobseer/internal/wal"
)

// Sentinel validation errors (mapped to RPC codes by the service).
var (
	// ErrUnknownBlob is returned for operations on nonexistent blobs.
	ErrUnknownBlob = errors.New("vmanager: unknown blob")
	// ErrUnaligned is returned when a write offset (or an append onto
	// an unaligned EOF) violates the block-alignment rule.
	ErrUnaligned = errors.New("vmanager: offset not block-aligned")
	// ErrBadRange is returned for empty or mid-blob partial-block writes.
	ErrBadRange = errors.New("vmanager: invalid write range")
	// ErrBadVersion is returned for commits/aborts of unassigned versions.
	ErrBadVersion = errors.New("vmanager: no such assigned version")
	// ErrTimeout is returned by WaitPublished when the deadline passes.
	ErrTimeout = errors.New("vmanager: wait timed out")
	// ErrPruned is returned when reading a version that Prune discarded.
	ErrPruned = errors.New("vmanager: version garbage-collected")
	// ErrBadPrune is returned for prune points beyond the published version.
	ErrBadPrune = errors.New("vmanager: prune point not published yet")
)

// Repairer rebuilds the metadata of an aborted version so that higher
// versions woven against it remain readable. The production wiring uses
// mdtree.Build over the metadata DHT with empty block references.
type Repairer func(meta blob.Meta, hist *blob.History, v blob.Version) error

// ShardInfo identifies one horizontal shard of the version-manager
// control plane: this service owns exactly the blob IDs id with
// ShardOf(id, Count) == Index. The zero value (normalized to 0/1) is
// the classic unsharded manager.
type ShardInfo struct {
	Index int // this shard's index in [0, Count)
	Count int // total shards in the deployment
}

func (si ShardInfo) normalize() ShardInfo {
	if si.Count < 1 {
		si.Count = 1
	}
	if si.Index < 0 || si.Index >= si.Count {
		panic(fmt.Sprintf("vmanager: shard index %d out of range [0,%d)", si.Index, si.Count))
	}
	return si
}

// firstID is the smallest ID this shard mints. Shard IDs advance with
// stride Count, so shard k mints k, k+K, k+2K, ... — except that ID 0
// means "no blob" throughout the codebase, so shard 0 starts at K. A
// single-shard deployment keeps the historical 1, 2, 3, ... sequence.
func (si ShardInfo) firstID() blob.ID {
	if si.Count <= 1 {
		return 1
	}
	if si.Index == 0 {
		return blob.ID(si.Count)
	}
	return blob.ID(si.Index)
}

// ShardOf is the routing rule shared by the minting side (State) and
// the client side (Router): blob id is owned by shard id mod shards.
func ShardOf(id blob.ID, shards int) int {
	if shards <= 1 {
		return 0
	}
	return int(uint64(id) % uint64(shards))
}

// numStripes is the lock-striping factor inside one State. Stripes are
// picked by a multiplicative hash of the blob ID (not id mod
// numStripes: sharded IDs advance with stride Count, and a plain
// modulus would alias the stride onto a subset of stripes).
const numStripes = 32

func stripeIndex(id blob.ID) int {
	return int((uint64(id) * 0x9E3779B97F4A7C15) >> 59) // top 5 bits
}

type stripe struct {
	mu    sync.Mutex
	blobs map[blob.ID]*blobState
}

// State is the version manager's pure core: all bookkeeping, no I/O.
// It is safe for concurrent use. The RPC Service wraps it; the
// large-scale simulator drives it directly.
//
// There is no global lock: per-blob bookkeeping lives in lock-striped
// tables, ID minting has its own mutex, and the WAL serializes appends
// internally. Replay only requires that records for one blob hit the
// log in mutation order, which holding the blob's stripe lock across
// mutation+append guarantees.
type State struct {
	shard ShardInfo

	idMu   sync.Mutex
	nextID blob.ID

	stripes [numStripes]stripe

	repair Repairer

	// log, when non-nil, journals every mutation for crash recovery
	// (see recovery.go). Attached by Recover; nil keeps the historical
	// purely-in-memory behavior (simulator, most tests).
	logMu sync.Mutex
	log   *wal.Log
}

type blobState struct {
	meta      blob.Meta
	hist      blob.History
	committed []bool // per assigned version
	published blob.Version
	// prunedBelow is the oldest still-readable version: snapshots with
	// version < prunedBelow were garbage-collected. Descriptors are kept
	// forever (they are what makes concurrent metadata weaving and
	// liveness analysis possible); only node/block payloads are freed.
	prunedBelow blob.Version
	assigned    map[blob.Version]time.Time // in-flight versions -> assign time
	waiters     []waiter
}

type waiter struct {
	version blob.Version
	ch      chan struct{}
}

// NewState returns an empty single-shard version manager core. repair
// may be nil (aborted versions then publish without metadata; tests
// only).
func NewState(repair Repairer) *State {
	return NewShardState(repair, ShardInfo{})
}

// NewShardState returns an empty version manager core owning shard
// si.Index of si.Count. It panics on an out-of-range index.
func NewShardState(repair Repairer, si ShardInfo) *State {
	si = si.normalize()
	s := &State{shard: si, nextID: si.firstID(), repair: repair}
	for i := range s.stripes {
		s.stripes[i].blobs = make(map[blob.ID]*blobState)
	}
	return s
}

// Shard reports this manager's shard identity (0/1 when unsharded).
func (s *State) Shard() ShardInfo { return s.shard }

// Owns reports whether id routes to this shard.
func (s *State) Owns(id blob.ID) bool {
	return ShardOf(id, s.shard.Count) == s.shard.Index
}

func (s *State) stripeFor(id blob.ID) *stripe {
	return &s.stripes[stripeIndex(id)]
}

// lockAll acquires every stripe lock in index order (snapshot and
// shutdown paths). unlockAll releases them.
func (s *State) lockAll() {
	for i := range s.stripes {
		s.stripes[i].mu.Lock()
	}
}

func (s *State) unlockAll() {
	for i := range s.stripes {
		s.stripes[i].mu.Unlock()
	}
}

// CreateBlob registers a new empty BLOB and returns its metadata. The
// ID is minted shard-locally: id ≡ shard index (mod shard count), so
// IDs are globally unique across shards with zero coordination.
func (s *State) CreateBlob(blockSize int64, replication int) (blob.Meta, error) {
	m := blob.Meta{BlockSize: blockSize, Replication: replication}
	if err := m.Validate(); err != nil {
		return blob.Meta{}, err
	}
	s.idMu.Lock()
	m.ID = s.nextID
	s.nextID += blob.ID(s.shard.Count)
	s.idMu.Unlock()

	st := s.stripeFor(m.ID)
	st.mu.Lock()
	defer st.mu.Unlock()
	st.blobs[m.ID] = &blobState{meta: m, assigned: make(map[blob.Version]time.Time)}
	// Forced sync: the namespace (and the client) will hold this ID
	// durably, so the blob's existence must survive a crash too.
	if err := s.appendStriped(true, encodeCreate(m)); err != nil {
		return blob.Meta{}, err
	}
	return m, nil
}

// GetMeta returns the static configuration of a blob.
func (s *State) GetMeta(id blob.ID) (blob.Meta, error) {
	st := s.stripeFor(id)
	st.mu.Lock()
	defer st.mu.Unlock()
	bs, ok := st.blobs[id]
	if !ok {
		return blob.Meta{}, ErrUnknownBlob
	}
	return bs.meta, nil
}

// Blobs lists all blob IDs in ascending order (CLI/debugging).
func (s *State) Blobs() []blob.ID {
	var out []blob.ID
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.Lock()
		for id := range st.blobs {
			out = append(out, id)
		}
		st.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Assignment is the reply to AssignVersion: the new version, its fixed
// byte range, and the descriptor suffix the client was missing (its
// weaving "hint", which includes descriptors of in-progress writers).
type Assignment struct {
	Version blob.Version
	Off     int64
	Size    int64 // blob size after this write
	Descs   []blob.WriteDesc
}

// AssignVersion validates the write, assigns the next version number
// (fixing the offset for appends), and returns the history delta since
// sinceVersion. This method is the write path's serialization point —
// per blob: writers to different blobs proceed through different
// stripes in parallel.
func (s *State) AssignVersion(id blob.ID, kind blob.WriteKind, off, size int64, nonce uint64, since blob.Version) (Assignment, error) {
	st := s.stripeFor(id)
	st.mu.Lock()
	defer st.mu.Unlock()
	bs, ok := st.blobs[id]
	if !ok {
		return Assignment{}, ErrUnknownBlob
	}
	if size <= 0 {
		return Assignment{}, fmt.Errorf("%w: size %d", ErrBadRange, size)
	}
	B := bs.meta.BlockSize
	cur := bs.hist.SizeAt(bs.hist.Latest()) // size incl. in-progress writers
	if kind == blob.KindAppend {
		off = cur
	}
	if off%B != 0 {
		if kind == blob.KindAppend {
			return Assignment{}, fmt.Errorf("%w: append onto unaligned EOF %d (use the file-layer read-modify-write path)", ErrUnaligned, cur)
		}
		return Assignment{}, fmt.Errorf("%w: offset %d", ErrUnaligned, off)
	}
	// Partial final blocks are only legal at (or past) EOF; a mid-blob
	// write must cover whole blocks, otherwise the new leaf would lose
	// bytes of the overwritten block.
	if size%B != 0 && off+size < cur {
		return Assignment{}, fmt.Errorf("%w: partial-block write [%d,%d) inside blob of size %d", ErrBadRange, off, off+size, cur)
	}
	v := bs.hist.Latest() + 1
	after := cur
	if off+size > after {
		after = off + size
	}
	d := blob.WriteDesc{Version: v, Off: off, Len: size, SizeAfter: after, Kind: kind, Nonce: nonce}
	if err := bs.hist.Append(d); err != nil {
		return Assignment{}, err
	}
	bs.committed = append(bs.committed, false)
	at := time.Now()
	bs.assigned[v] = at
	// Policy append (not forced): the log is sequential, so the fsync
	// that makes this version's *commit* durable also covers the
	// assign record — a commit can never be durable without its
	// assignment. An assign lost on its own is just a version that
	// never happened.
	if err := s.appendStriped(false, encodeAssign(id, d, at)); err != nil {
		return Assignment{}, err
	}
	return Assignment{Version: v, Off: off, Size: after, Descs: bs.descsSinceLocked(since)}, nil
}

func (bs *blobState) descsSinceLocked(since blob.Version) []blob.WriteDesc {
	if since > bs.hist.Latest() {
		return nil
	}
	return append([]blob.WriteDesc(nil), bs.hist.Descs[since:]...)
}

// Commit records that version v's data and metadata are fully written
// and publishes every version whose predecessors are all committed.
func (s *State) Commit(id blob.ID, v blob.Version) error {
	st := s.stripeFor(id)
	st.mu.Lock()
	defer st.mu.Unlock()
	bs, ok := st.blobs[id]
	if !ok {
		return ErrUnknownBlob
	}
	if v == blob.NoVersion || v > bs.hist.Latest() {
		return fmt.Errorf("%w: %d", ErrBadVersion, v)
	}
	// Forced sync *before* the in-memory publish advances: the ack the
	// client is about to receive promises the version survives a
	// crash, so the record must be on disk first. Concurrent commits on
	// other stripes issue their fsyncs in parallel; the WAL coalesces
	// them into shared group commits.
	if err := s.appendStriped(true, encodeVersionRec(recCommit, id, v)); err != nil {
		return err
	}
	bs.committed[v-1] = true
	delete(bs.assigned, v)
	bs.advanceLocked()
	return nil
}

// advanceLocked publishes consecutive committed versions and wakes
// satisfied waiters.
func (bs *blobState) advanceLocked() {
	for int(bs.published) < len(bs.committed) && bs.committed[bs.published] {
		bs.published++
	}
	kept := bs.waiters[:0]
	for _, w := range bs.waiters {
		if bs.published >= w.version {
			close(w.ch)
		} else {
			kept = append(kept, w)
		}
	}
	bs.waiters = kept
}

// Abort marks version v as failed, rebuilds its metadata as an empty
// patch (so later versions that wove references to it stay readable)
// and then commits it so publication can advance past it.
func (s *State) Abort(id blob.ID, v blob.Version) error {
	st := s.stripeFor(id)
	st.mu.Lock()
	bs, ok := st.blobs[id]
	if !ok {
		st.mu.Unlock()
		return ErrUnknownBlob
	}
	if v == blob.NoVersion || v > bs.hist.Latest() {
		st.mu.Unlock()
		return fmt.Errorf("%w: %d", ErrBadVersion, v)
	}
	if bs.committed[v-1] {
		st.mu.Unlock()
		return fmt.Errorf("vmanager: version %d already committed", v)
	}
	bs.hist.Descs[v-1].Aborted = true
	// Policy append: if this record is lost, the version stays in
	// `assigned` after recovery and the janitor re-runs the abort.
	if err := s.appendStriped(false, encodeVersionRec(recAbort, id, v)); err != nil {
		st.mu.Unlock()
		return err
	}
	meta := bs.meta
	hist := bs.hist.Clone()
	repair := s.repair
	st.mu.Unlock()

	if repair != nil {
		if err := repair(meta, hist, v); err != nil {
			return fmt.Errorf("vmanager: repair of aborted version %d: %w", v, err)
		}
	}
	return s.Commit(id, v)
}

// Latest returns the newest published version and the blob size at it.
// This is the call every reader (and BSFS open) issues first.
func (s *State) Latest(id blob.ID) (blob.Version, int64, error) {
	st := s.stripeFor(id)
	st.mu.Lock()
	defer st.mu.Unlock()
	bs, ok := st.blobs[id]
	if !ok {
		return 0, 0, ErrUnknownBlob
	}
	return bs.published, bs.hist.SizeAt(bs.published), nil
}

// VersionInfo returns the descriptor of a published or in-flight
// version (readers need SizeAfter to compute the root span).
func (s *State) VersionInfo(id blob.ID, v blob.Version) (blob.WriteDesc, error) {
	st := s.stripeFor(id)
	st.mu.Lock()
	defer st.mu.Unlock()
	bs, ok := st.blobs[id]
	if !ok {
		return blob.WriteDesc{}, ErrUnknownBlob
	}
	d, ok := bs.hist.Desc(v)
	if !ok {
		return blob.WriteDesc{}, fmt.Errorf("%w: %d", ErrBadVersion, v)
	}
	if v < bs.prunedBelow {
		return blob.WriteDesc{}, fmt.Errorf("%w: version %d (oldest kept: %d)", ErrPruned, v, bs.prunedBelow)
	}
	return d, nil
}

// History returns descriptors for versions in (since, latest].
func (s *State) History(id blob.ID, since blob.Version) ([]blob.WriteDesc, error) {
	st := s.stripeFor(id)
	st.mu.Lock()
	defer st.mu.Unlock()
	bs, ok := st.blobs[id]
	if !ok {
		return nil, ErrUnknownBlob
	}
	return bs.descsSinceLocked(since), nil
}

// Prune advances the blob's oldest readable version to keep: versions
// < keep become unreadable and their storage may be reclaimed. It
// returns the previous prune point, so the caller garbage-collects
// exactly the versions in [from, keep). keep must already be
// published (in-flight writers always hold higher versions). Pruning
// below the current point is a no-op (from == keep). Write
// descriptors are never discarded — only data and metadata payloads.
//
// Note the paper's contract: old snapshots stay readable only "as long
// as they have not been garbaged". A reader pinned to a version below
// keep fails once the sweep completes.
func (s *State) Prune(id blob.ID, keep blob.Version) (from blob.Version, err error) {
	st := s.stripeFor(id)
	st.mu.Lock()
	defer st.mu.Unlock()
	bs, ok := st.blobs[id]
	if !ok {
		return 0, ErrUnknownBlob
	}
	if keep == blob.NoVersion || keep > bs.published {
		return 0, fmt.Errorf("%w: keep %d, published %d", ErrBadPrune, keep, bs.published)
	}
	from = bs.prunedBelow
	if from == blob.NoVersion {
		from = 1
	}
	if keep <= from {
		return keep, nil
	}
	bs.prunedBelow = keep
	// Forced sync: the caller garbage-collects payloads based on this
	// answer; forgetting the prune point after a crash would leave the
	// manager offering versions whose blocks are already gone.
	if err := s.appendStriped(true, encodeVersionRec(recPrune, id, keep)); err != nil {
		return 0, err
	}
	return from, nil
}

// PrunedBelow returns the oldest readable version (1 if never pruned).
func (s *State) PrunedBelow(id blob.ID) (blob.Version, error) {
	st := s.stripeFor(id)
	st.mu.Lock()
	defer st.mu.Unlock()
	bs, ok := st.blobs[id]
	if !ok {
		return 0, ErrUnknownBlob
	}
	if bs.prunedBelow == blob.NoVersion {
		return 1, nil
	}
	return bs.prunedBelow, nil
}

// WaitPublished blocks until version v is published or the timeout
// expires (timeout <= 0 waits forever). It returns the published
// version and size at return time. This is the paper's "mechanism that
// allows the client to find out when new snapshot versions are
// available".
func (s *State) WaitPublished(id blob.ID, v blob.Version, timeout time.Duration) (blob.Version, int64, error) {
	st := s.stripeFor(id)
	st.mu.Lock()
	bs, ok := st.blobs[id]
	if !ok {
		st.mu.Unlock()
		return 0, 0, ErrUnknownBlob
	}
	if bs.published >= v {
		pub, size := bs.published, bs.hist.SizeAt(bs.published)
		st.mu.Unlock()
		return pub, size, nil
	}
	ch := make(chan struct{})
	bs.waiters = append(bs.waiters, waiter{version: v, ch: ch})
	st.mu.Unlock()

	var timer <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		timer = t.C
	}
	select {
	case <-ch:
		pub, size, err := s.Latest(id)
		if err == nil && pub < v {
			// Woken by ReleaseWaiters (shutdown/crash), not by the
			// publication: report a timeout, never a false success.
			return pub, size, ErrTimeout
		}
		return pub, size, err
	case <-timer:
		// Deregister, or every timed-out poll would leak its waiter
		// slot (and channel) in bs.waiters until publication.
		st.mu.Lock()
		for i, w := range bs.waiters {
			if w.ch == ch {
				bs.waiters = append(bs.waiters[:i], bs.waiters[i+1:]...)
				break
			}
		}
		st.mu.Unlock()
		// The publish may have raced the timer; prefer reporting it.
		select {
		case <-ch:
			return s.Latest(id)
		default:
		}
		pub, size, _ := s.Latest(id)
		return pub, size, ErrTimeout
	}
}

// PendingWaiters returns the number of registered WaitPublished
// waiters for a blob (tests, leak diagnostics).
func (s *State) PendingWaiters(id blob.ID) int {
	st := s.stripeFor(id)
	st.mu.Lock()
	defer st.mu.Unlock()
	bs, ok := st.blobs[id]
	if !ok {
		return 0
	}
	return len(bs.waiters)
}

// ReleaseWaiters wakes every registered WaitPublished waiter across
// all blobs. Woken waiters whose version has not published report
// ErrTimeout. Used at shutdown and by the chaos harness: a crashing
// manager must not leave handlers blocked (they would stall the
// server drain for their full wait timeout).
func (s *State) ReleaseWaiters() {
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.Lock()
		for _, bs := range st.blobs {
			for _, w := range bs.waiters {
				close(w.ch)
			}
			bs.waiters = nil
		}
		st.mu.Unlock()
	}
}

// Expired returns in-flight (blob, version) pairs assigned longer than
// maxAge ago. The service's janitor aborts them — the dead-writer
// recovery path. The scan walks one stripe at a time, so publishes on
// the other 31 stripes proceed while it runs.
func (s *State) Expired(maxAge time.Duration) []struct {
	Blob    blob.ID
	Version blob.Version
} {
	var out []struct {
		Blob    blob.ID
		Version blob.Version
	}
	cutoff := time.Now().Add(-maxAge)
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.Lock()
		for id, bs := range st.blobs {
			for v, at := range bs.assigned {
				if at.Before(cutoff) {
					out = append(out, struct {
						Blob    blob.ID
						Version blob.Version
					}{id, v})
				}
			}
		}
		st.mu.Unlock()
	}
	return out
}
