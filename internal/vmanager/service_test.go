package vmanager

import (
	"context"
	"errors"
	"testing"
	"time"

	"blobseer/internal/blob"
	"blobseer/internal/mdtree"
	"blobseer/internal/rpc"
)

func startVM(t *testing.T) *Client {
	t.Helper()
	n := rpc.NewInprocNetwork()
	svc := NewService(NewState(MetadataRepairer(mdtree.NewMemStore())))
	lis, err := n.Listen("vmanager")
	if err != nil {
		t.Fatal(err)
	}
	srv := rpc.NewServer(svc.Mux())
	go srv.Serve(lis)
	t.Cleanup(func() { srv.Close() })
	pool := rpc.NewPool(n.Dial)
	t.Cleanup(pool.Close)
	return NewClient(pool, "vmanager")
}

func TestClientRoundTrip(t *testing.T) {
	c := startVM(t)
	ctx := context.Background()

	m, err := c.CreateBlob(ctx, B, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.ID == 0 {
		t.Fatal("zero blob id")
	}
	got, err := c.GetMeta(ctx, m.ID)
	if err != nil || got.BlockSize != B || got.Replication != 2 {
		t.Fatalf("GetMeta = %+v, %v", got, err)
	}

	a, err := c.AssignVersion(ctx, m.ID, blob.KindAppend, 0, 2*B, 0x11, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.Version != 1 || a.Off != 0 || a.Size != 2*B || len(a.Descs) != 1 {
		t.Fatalf("assignment = %+v", a)
	}
	if a.Descs[0].Nonce != 0x11 || a.Descs[0].Kind != blob.KindAppend {
		t.Errorf("desc round trip = %+v", a.Descs[0])
	}
	if err := c.Commit(ctx, m.ID, a.Version); err != nil {
		t.Fatal(err)
	}
	v, size, err := c.Latest(ctx, m.ID)
	if err != nil || v != 1 || size != 2*B {
		t.Fatalf("Latest = %d/%d, %v", v, size, err)
	}
	d, err := c.VersionInfo(ctx, m.ID, 1)
	if err != nil || d.SizeAfter != 2*B {
		t.Fatalf("VersionInfo = %+v, %v", d, err)
	}
	ds, err := c.History(ctx, m.ID, 0)
	if err != nil || len(ds) != 1 {
		t.Fatalf("History = %+v, %v", ds, err)
	}
	ids, err := c.ListBlobs(ctx)
	if err != nil || len(ids) != 1 || ids[0] != m.ID {
		t.Fatalf("ListBlobs = %v, %v", ids, err)
	}
}

func TestClientSentinelErrors(t *testing.T) {
	c := startVM(t)
	ctx := context.Background()

	if _, err := c.GetMeta(ctx, 42); !errors.Is(err, ErrUnknownBlob) {
		t.Errorf("unknown blob over RPC = %v", err)
	}
	m, _ := c.CreateBlob(ctx, B, 1)
	if _, err := c.AssignVersion(ctx, m.ID, blob.KindWrite, 3, B, 1, 0); !errors.Is(err, ErrUnaligned) {
		t.Errorf("unaligned over RPC = %v", err)
	}
	if err := c.Commit(ctx, m.ID, 7); !errors.Is(err, ErrBadVersion) {
		t.Errorf("bad version over RPC = %v", err)
	}
}

func TestClientWaitPublished(t *testing.T) {
	c := startVM(t)
	ctx := context.Background()
	m, _ := c.CreateBlob(ctx, B, 1)
	a, _ := c.AssignVersion(ctx, m.ID, blob.KindAppend, 0, B, 1, 0)

	done := make(chan error, 1)
	go func() {
		_, _, err := c.WaitPublished(ctx, m.ID, a.Version, 5*time.Second)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	if err := c.Commit(ctx, m.ID, a.Version); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("wait = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("wait never returned")
	}

	// Timeout path.
	c.AssignVersion(ctx, m.ID, blob.KindAppend, 0, B, 2, 0)
	if _, _, err := c.WaitPublished(ctx, m.ID, 2, 20*time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Errorf("timeout over RPC = %v", err)
	}
}

func TestJanitorAbortsStuckWriters(t *testing.T) {
	st := mdtree.NewMemStore()
	svc := NewService(NewState(MetadataRepairer(st)))
	defer svc.StopJanitor()
	s := svc.State()
	m, _ := s.CreateBlob(B, 1)
	s.AssignVersion(m.ID, blob.KindAppend, 0, B, 1, 0)

	svc.StartJanitor(10*time.Millisecond, 5*time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for {
		if v, _, _ := s.Latest(m.ID); v == 1 {
			break // janitor aborted + repaired + published
		}
		if time.Now().After(deadline) {
			t.Fatal("janitor never reclaimed the stuck write")
		}
		time.Sleep(5 * time.Millisecond)
	}
	ds, _ := s.History(m.ID, 0)
	if !ds[0].Aborted {
		t.Error("stuck write not marked aborted")
	}
}
