package vmanager

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"blobseer/internal/blob"
	"blobseer/internal/mdtree"
	"blobseer/internal/util"
)

const B = 64 * 1024 // block size for these tests

func newBlob(t *testing.T, s *State) blob.Meta {
	t.Helper()
	m, err := s.CreateBlob(B, 1)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCreateBlob(t *testing.T) {
	s := NewState(nil)
	m1 := newBlob(t, s)
	m2 := newBlob(t, s)
	if m1.ID == m2.ID {
		t.Error("duplicate blob IDs")
	}
	if _, err := s.CreateBlob(0, 1); err == nil {
		t.Error("invalid block size accepted")
	}
	got, err := s.GetMeta(m1.ID)
	if err != nil || got.BlockSize != B {
		t.Errorf("GetMeta = %+v, %v", got, err)
	}
	if _, err := s.GetMeta(999); !errors.Is(err, ErrUnknownBlob) {
		t.Errorf("unknown blob err = %v", err)
	}
	if len(s.Blobs()) != 2 {
		t.Error("Blobs() wrong")
	}
}

func TestAssignSequentialVersions(t *testing.T) {
	s := NewState(nil)
	m := newBlob(t, s)
	a1, err := s.AssignVersion(m.ID, blob.KindAppend, 0, 2*B, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a1.Version != 1 || a1.Off != 0 || a1.Size != 2*B {
		t.Errorf("a1 = %+v", a1)
	}
	// Second append chains onto the first even though it is uncommitted
	// (the paper: "the writing of this snapshot may still be in
	// progress").
	a2, err := s.AssignVersion(m.ID, blob.KindAppend, 0, B, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a2.Version != 2 || a2.Off != 2*B || a2.Size != 3*B {
		t.Errorf("a2 = %+v", a2)
	}
	if len(a2.Descs) != 2 {
		t.Errorf("hint has %d descs, want 2 (including in-progress v1)", len(a2.Descs))
	}
	// Delta fetch: client already knows version 1.
	a3, err := s.AssignVersion(m.ID, blob.KindWrite, 0, B, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(a3.Descs) != 2 || a3.Descs[0].Version != 2 {
		t.Errorf("delta descs = %+v", a3.Descs)
	}
}

func TestAssignValidation(t *testing.T) {
	s := NewState(nil)
	m := newBlob(t, s)
	if _, err := s.AssignVersion(m.ID, blob.KindWrite, 5, B, 1, 0); !errors.Is(err, ErrUnaligned) {
		t.Errorf("unaligned offset err = %v", err)
	}
	if _, err := s.AssignVersion(m.ID, blob.KindWrite, 0, 0, 1, 0); !errors.Is(err, ErrBadRange) {
		t.Errorf("empty write err = %v", err)
	}
	if _, err := s.AssignVersion(999, blob.KindWrite, 0, B, 1, 0); !errors.Is(err, ErrUnknownBlob) {
		t.Errorf("unknown blob err = %v", err)
	}
	// Build a 4-block blob, then try a mid-blob partial write.
	if _, err := s.AssignVersion(m.ID, blob.KindAppend, 0, 4*B, 1, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AssignVersion(m.ID, blob.KindWrite, 0, B/2, 2, 0); !errors.Is(err, ErrBadRange) {
		t.Errorf("mid-blob partial write err = %v", err)
	}
	// A partial write that reaches EOF is fine.
	if _, err := s.AssignVersion(m.ID, blob.KindWrite, 3*B, B/2+B, 3, 0); err != nil {
		t.Errorf("EOF-reaching partial write rejected: %v", err)
	}
	// Appending onto the now-unaligned EOF must fail with ErrUnaligned.
	if _, err := s.AssignVersion(m.ID, blob.KindAppend, 0, B, 4, 0); !errors.Is(err, ErrUnaligned) {
		t.Errorf("append on unaligned EOF err = %v", err)
	}
}

func TestPublicationOrdering(t *testing.T) {
	// The linearizability gate: version 2 committing before version 1
	// must NOT become visible until version 1 commits too.
	s := NewState(nil)
	m := newBlob(t, s)
	s.AssignVersion(m.ID, blob.KindAppend, 0, B, 1, 0)
	s.AssignVersion(m.ID, blob.KindAppend, 0, B, 2, 0)

	if err := s.Commit(m.ID, 2); err != nil {
		t.Fatal(err)
	}
	if v, _, _ := s.Latest(m.ID); v != 0 {
		t.Fatalf("published %d before v1 committed", v)
	}
	if err := s.Commit(m.ID, 1); err != nil {
		t.Fatal(err)
	}
	v, size, _ := s.Latest(m.ID)
	if v != 2 || size != 2*B {
		t.Errorf("published = %d (size %d), want 2 (%d)", v, size, 2*B)
	}
}

func TestCommitValidation(t *testing.T) {
	s := NewState(nil)
	m := newBlob(t, s)
	if err := s.Commit(m.ID, 1); !errors.Is(err, ErrBadVersion) {
		t.Errorf("commit of unassigned version err = %v", err)
	}
	if err := s.Commit(999, 1); !errors.Is(err, ErrUnknownBlob) {
		t.Errorf("commit on unknown blob err = %v", err)
	}
	if err := s.Abort(m.ID, 3); !errors.Is(err, ErrBadVersion) {
		t.Errorf("abort of unassigned version err = %v", err)
	}
}

func TestWaitPublished(t *testing.T) {
	s := NewState(nil)
	m := newBlob(t, s)
	s.AssignVersion(m.ID, blob.KindAppend, 0, B, 1, 0)

	done := make(chan blob.Version, 1)
	go func() {
		v, _, err := s.WaitPublished(m.ID, 1, 5*time.Second)
		if err != nil {
			done <- 0
			return
		}
		done <- v
	}()
	time.Sleep(10 * time.Millisecond)
	if err := s.Commit(m.ID, 1); err != nil {
		t.Fatal(err)
	}
	select {
	case v := <-done:
		if v != 1 {
			t.Errorf("waiter got version %d", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiter never woke")
	}
}

func TestWaitPublishedTimeout(t *testing.T) {
	s := NewState(nil)
	m := newBlob(t, s)
	s.AssignVersion(m.ID, blob.KindAppend, 0, B, 1, 0)
	_, _, err := s.WaitPublished(m.ID, 1, 20*time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Errorf("err = %v, want ErrTimeout", err)
	}
	// Already-published waits return immediately.
	s.Commit(m.ID, 1)
	v, _, err := s.WaitPublished(m.ID, 1, 0)
	if err != nil || v != 1 {
		t.Errorf("immediate wait = %d, %v", v, err)
	}
}

func TestAbortWithRepairKeepsLaterVersionsReadable(t *testing.T) {
	// Writer A (v1) dies after version assignment. Writer B (v2) wove
	// references to v1's metadata. After the VM repairs v1, v2's
	// snapshot must be fully readable with v1's range zero-filled.
	st := mdtree.NewMemStore()
	s := NewState(MetadataRepairer(st))
	m, err := s.CreateBlob(B, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// v1 assigned (writer then dies before weaving metadata).
	a1, err := s.AssignVersion(m.ID, blob.KindAppend, 0, 2*B, 0xdead, 0)
	if err != nil {
		t.Fatal(err)
	}
	// v2 assigned and fully written (weaves against v1's planned nodes).
	a2, err := s.AssignVersion(m.ID, blob.KindAppend, 0, B, 0xbeef, 0)
	if err != nil {
		t.Fatal(err)
	}
	h := &blob.History{}
	if err := h.Extend(a2.Descs); err != nil {
		t.Fatal(err)
	}
	refs := []mdtree.BlockRef{{Key: blob.BlockKey{Blob: m.ID, Nonce: 0xbeef, Seq: 0}, Providers: []string{"p"}, Len: B}}
	if _, err := mdtree.Build(ctx, st, m, h, a2.Version, refs); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(m.ID, a2.Version); err != nil {
		t.Fatal(err)
	}
	// Nothing published yet: v1 blocks the line.
	if v, _, _ := s.Latest(m.ID); v != 0 {
		t.Fatalf("published %d too early", v)
	}
	// The janitor (here: direct call) aborts v1.
	if err := s.Abort(m.ID, a1.Version); err != nil {
		t.Fatal(err)
	}
	v, size, _ := s.Latest(m.ID)
	if v != 2 || size != 3*B {
		t.Fatalf("after repair: published %d size %d", v, size)
	}
	// v2's snapshot must resolve: blocks 0-1 zero-filled (aborted),
	// block 2 has data.
	ext, err := mdtree.Resolve(ctx, st, m, 2, 3*B, blob.Range{Off: 0, Len: 3 * B})
	if err != nil {
		t.Fatal(err)
	}
	var dataLen int64
	for _, e := range ext {
		if e.HasData && len(e.Block.Providers) > 0 {
			dataLen += e.Len
		}
	}
	if dataLen != B {
		t.Errorf("live data = %d, want %d", dataLen, B)
	}
	// The aborted version is marked in the history hint.
	ds, _ := s.History(m.ID, 0)
	if !ds[0].Aborted {
		t.Error("aborted descriptor not marked")
	}
}

func TestAbortCommittedVersionRejected(t *testing.T) {
	s := NewState(nil)
	m := newBlob(t, s)
	s.AssignVersion(m.ID, blob.KindAppend, 0, B, 1, 0)
	s.Commit(m.ID, 1)
	if err := s.Abort(m.ID, 1); err == nil {
		t.Error("abort of committed version succeeded")
	}
}

func TestExpired(t *testing.T) {
	s := NewState(nil)
	m := newBlob(t, s)
	s.AssignVersion(m.ID, blob.KindAppend, 0, B, 1, 0)
	if got := s.Expired(time.Hour); len(got) != 0 {
		t.Errorf("fresh write already expired: %v", got)
	}
	time.Sleep(5 * time.Millisecond)
	got := s.Expired(time.Millisecond)
	if len(got) != 1 || got[0].Version != 1 {
		t.Errorf("expired = %v", got)
	}
	s.Commit(m.ID, 1)
	if got := s.Expired(0); len(got) != 0 {
		t.Errorf("committed write still tracked: %v", got)
	}
}

func TestConcurrentAssignDistinctVersions(t *testing.T) {
	s := NewState(nil)
	m := newBlob(t, s)
	const N = 64
	var wg sync.WaitGroup
	versions := make([]blob.Version, N)
	offsets := make([]int64, N)
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			a, err := s.AssignVersion(m.ID, blob.KindAppend, 0, B, uint64(i), 0)
			if err != nil {
				t.Error(err)
				return
			}
			versions[i] = a.Version
			offsets[i] = a.Off
		}(i)
	}
	wg.Wait()
	seenV := map[blob.Version]bool{}
	seenOff := map[int64]bool{}
	for i := 0; i < N; i++ {
		if seenV[versions[i]] || seenOff[offsets[i]] {
			t.Fatalf("duplicate version/offset: v=%d off=%d", versions[i], offsets[i])
		}
		seenV[versions[i]] = true
		seenOff[offsets[i]] = true
	}
	// Offsets must be a permutation of {0, B, ..., (N-1)B}: concurrent
	// appends serialize into disjoint ranges.
	for off := int64(0); off < N*B; off += B {
		if !seenOff[off] {
			t.Errorf("offset %d never assigned", off)
		}
	}
}

func TestVersionInfo(t *testing.T) {
	s := NewState(nil)
	m := newBlob(t, s)
	s.AssignVersion(m.ID, blob.KindAppend, 0, B+B/2, 7, 0)
	d, err := s.VersionInfo(m.ID, 1)
	if err != nil || d.SizeAfter != B+B/2 || d.Nonce != 7 {
		t.Errorf("VersionInfo = %+v, %v", d, err)
	}
	if _, err := s.VersionInfo(m.ID, 9); !errors.Is(err, ErrBadVersion) {
		t.Errorf("bad version err = %v", err)
	}
}

func TestRandomCommitOrderPublishesInOrder(t *testing.T) {
	// Property-style check: whatever order commits arrive in, the
	// published version only advances over fully-committed prefixes.
	s := NewState(nil)
	m := newBlob(t, s)
	const N = 20
	for i := 0; i < N; i++ {
		if _, err := s.AssignVersion(m.ID, blob.KindAppend, 0, B, uint64(i), 0); err != nil {
			t.Fatal(err)
		}
	}
	rng := util.NewSplitMix64(99)
	order := rng.Perm(N)
	committed := make([]bool, N+1)
	for _, idx := range order {
		v := blob.Version(idx + 1)
		if err := s.Commit(m.ID, v); err != nil {
			t.Fatal(err)
		}
		committed[v] = true
		want := blob.Version(0)
		for w := 1; w <= N && committed[w]; w++ {
			want = blob.Version(w)
		}
		got, _, _ := s.Latest(m.ID)
		if got != want {
			t.Fatalf("after commit %d: published %d, want %d", v, got, want)
		}
	}
}

// TestWaitPublishedTimeoutDeregistersWaiter is the regression pin for
// the waiter leak: a timed-out WaitPublished must remove its slot from
// the waiter list, or a client polling with short timeouts grows the
// slice (and leaks a channel) on every call until publication.
func TestWaitPublishedTimeoutDeregistersWaiter(t *testing.T) {
	s := NewState(nil)
	m := newBlob(t, s)
	s.AssignVersion(m.ID, blob.KindAppend, 0, B, 1, 0)

	for i := 0; i < 25; i++ {
		if _, _, err := s.WaitPublished(m.ID, 1, time.Millisecond); !errors.Is(err, ErrTimeout) {
			t.Fatalf("poll %d err = %v, want ErrTimeout", i, err)
		}
	}
	if n := s.PendingWaiters(m.ID); n != 0 {
		t.Fatalf("%d waiters still registered after timed-out polls, want 0", n)
	}

	// A live waiter still counts, and publication still wakes it.
	done := make(chan error, 1)
	go func() {
		_, _, err := s.WaitPublished(m.ID, 1, 5*time.Second)
		done <- err
	}()
	for i := 0; i < 100 && s.PendingWaiters(m.ID) == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	if n := s.PendingWaiters(m.ID); n != 1 {
		t.Fatalf("live waiter not registered (n=%d)", n)
	}
	if err := s.Commit(m.ID, 1); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("waiter err = %v", err)
	}
	if n := s.PendingWaiters(m.ID); n != 0 {
		t.Fatalf("%d waiters left after publication, want 0", n)
	}
}
