package vmanager

import (
	"errors"
	"fmt"
	"time"

	"blobseer/internal/blob"
	"blobseer/internal/wal"
	"blobseer/internal/wire"
)

// WAL record types. The version manager logs every state mutation —
// create/assign/commit/abort/prune — and recovery replays them into a
// fresh State. Records are self-contained (they carry the values the
// mutation *produced*, e.g. the assigned version and fixed offset), so
// replay never re-runs validation or re-derives anything.
const (
	recCreate uint8 = iota + 1
	recAssign
	recCommit
	recAbort
	recPrune
)

// encodeCreate -> recCreate | id | blockSize | replication
func encodeCreate(m blob.Meta) []byte {
	b := wire.NewBuffer(32)
	b.U8(recCreate)
	b.U64(uint64(m.ID))
	b.I64(m.BlockSize)
	b.U32(uint32(m.Replication))
	return b.Bytes()
}

// encodeAssign -> recAssign | id | desc | assignUnixNano. The assign
// time rides along so a recovered manager's dead-writer janitor still
// fires for writes that were in flight at the crash: their age is
// measured from the original assignment, not from the restart.
func encodeAssign(id blob.ID, d blob.WriteDesc, at time.Time) []byte {
	b := wire.NewBuffer(64)
	b.U8(recAssign)
	b.U64(uint64(id))
	encodeDesc(b, d)
	b.I64(at.UnixNano())
	return b.Bytes()
}

func encodeVersionRec(t uint8, id blob.ID, v blob.Version) []byte {
	b := wire.NewBuffer(24)
	b.U8(t)
	b.U64(uint64(id))
	b.U64(uint64(v))
	return b.Bytes()
}

// Recover rebuilds a single-shard version-manager State from the log
// (snapshot first, then the record suffix) and attaches the log so
// subsequent mutations are journaled. A fresh/empty log yields a fresh
// State, so this is the only constructor the durable deployment path
// needs.
//
// Replay is idempotent: records already reflected in the state (e.g.
// folded into the snapshot, or replayed twice) are skipped, so
// recovering from a log that was already recovered once produces the
// same state.
func Recover(log *wal.Log, repair Repairer) (*State, error) {
	return RecoverShard(log, repair, ShardInfo{})
}

// RecoverShard is Recover for one shard of a sharded deployment. Each
// shard journals only the blobs it owns into its own log, so shard
// recovery is fully independent of its siblings. The log must have
// been written under the same shard topology: replaying a record for a
// blob this shard does not own fails loudly instead of silently
// merging foreign state.
func RecoverShard(log *wal.Log, repair Repairer, si ShardInfo) (*State, error) {
	s := NewShardState(repair, si)
	err := log.Replay(func(p []byte, isSnap bool) error {
		if isSnap {
			return s.loadSnapshot(p)
		}
		return s.applyRecord(p)
	})
	if err != nil {
		return nil, fmt.Errorf("vmanager: recover: %w", err)
	}
	s.logMu.Lock()
	s.log = log
	s.logMu.Unlock()
	return s, nil
}

func (s *State) shardMismatch(id blob.ID) error {
	return fmt.Errorf("vmanager: blob %d is not owned by shard %d/%d (log written under a different shard topology?)",
		id, s.shard.Index, s.shard.Count)
}

// applyRecord folds one WAL record into the state. Mutations here
// mirror the live mutators minus validation (the record was only
// written after validation passed) and minus side effects (no repair
// calls, no client acks — a version whose abort-repair never finished
// is still in `assigned`, so the janitor re-aborts it after recovery).
func (s *State) applyRecord(p []byte) error {
	r := wire.NewReader(p)
	t := r.U8()
	id := blob.ID(r.U64())
	if !s.Owns(id) {
		return s.shardMismatch(id)
	}
	st := s.stripeFor(id)
	st.mu.Lock()
	defer st.mu.Unlock()
	switch t {
	case recCreate:
		blockSize := r.I64()
		replication := int(r.U32())
		if err := r.Err(); err != nil {
			return err
		}
		if _, ok := st.blobs[id]; ok {
			return nil // already applied
		}
		st.blobs[id] = &blobState{
			meta:     blob.Meta{ID: id, BlockSize: blockSize, Replication: replication},
			assigned: make(map[blob.Version]time.Time),
		}
		// Re-arm minting past every replayed ID, preserving this
		// shard's residue class (IDs advance with stride Count).
		s.idMu.Lock()
		if id >= s.nextID {
			s.nextID = id + blob.ID(s.shard.Count)
		}
		s.idMu.Unlock()
	case recAssign:
		d := decodeDesc(r)
		at := time.Unix(0, r.I64())
		if err := r.Err(); err != nil {
			return err
		}
		bs, ok := st.blobs[id]
		if !ok {
			return fmt.Errorf("vmanager: assign record for unknown blob %d", id)
		}
		if d.Version <= bs.hist.Latest() {
			return nil // already applied
		}
		if err := bs.hist.Append(d); err != nil {
			return err
		}
		bs.committed = append(bs.committed, false)
		bs.assigned[d.Version] = at
	case recCommit:
		v := blob.Version(r.U64())
		if err := r.Err(); err != nil {
			return err
		}
		bs, ok := st.blobs[id]
		if !ok {
			return fmt.Errorf("vmanager: commit record for unknown blob %d", id)
		}
		if v == blob.NoVersion || v > bs.hist.Latest() {
			return fmt.Errorf("vmanager: commit record for unassigned version %d of blob %d", v, id)
		}
		bs.committed[v-1] = true
		delete(bs.assigned, v)
		bs.advanceLocked()
	case recAbort:
		v := blob.Version(r.U64())
		if err := r.Err(); err != nil {
			return err
		}
		bs, ok := st.blobs[id]
		if !ok {
			return fmt.Errorf("vmanager: abort record for unknown blob %d", id)
		}
		if v == blob.NoVersion || v > bs.hist.Latest() {
			return fmt.Errorf("vmanager: abort record for unassigned version %d of blob %d", v, id)
		}
		bs.hist.Descs[v-1].Aborted = true
	case recPrune:
		keep := blob.Version(r.U64())
		if err := r.Err(); err != nil {
			return err
		}
		bs, ok := st.blobs[id]
		if !ok {
			return fmt.Errorf("vmanager: prune record for unknown blob %d", id)
		}
		if keep > bs.prunedBelow {
			bs.prunedBelow = keep
		}
	default:
		return fmt.Errorf("vmanager: unknown WAL record type %d", t)
	}
	return nil
}

// appendStriped journals a record if a log is attached. Callers hold
// the stripe lock of the blob the record is about, which serializes
// log order with mutation order *per blob* — the property replay
// depends on (records for different blobs are independent under
// replay, so their cross-stripe interleaving is free). force bypasses
// the interval fsync policy for records that back client-visible
// acknowledgements.
//
// On a log error the in-memory mutation has already happened; the
// caller surfaces the error so the client treats the operation as
// failed. The memory/disk divergence this leaves (an assigned version
// the disk never heard of) is the same shape as a lost in-flight
// writer, which the janitor already cleans up.
func (s *State) appendStriped(force bool, p []byte) error {
	s.logMu.Lock()
	log := s.log
	s.logMu.Unlock()
	if log == nil {
		return nil
	}
	if force {
		return log.AppendSync(p)
	}
	return log.Append(p)
}

// encodeSnapshotAllLocked serializes the full state. Callers hold
// every stripe lock and idMu. Layout: u64 nextID | u32 nblobs | per
// blob: id, blockSize, replication, descs, committed bools, published,
// prunedBelow, assigned (v, unixNano) pairs.
func (s *State) encodeSnapshotAllLocked() []byte {
	b := wire.NewBuffer(256)
	b.U64(uint64(s.nextID))
	n := 0
	for i := range s.stripes {
		n += len(s.stripes[i].blobs)
	}
	b.U32(uint32(n))
	for i := range s.stripes {
		for id, bs := range s.stripes[i].blobs {
			b.U64(uint64(id))
			b.I64(bs.meta.BlockSize)
			b.U32(uint32(bs.meta.Replication))
			encodeDescs(b, bs.hist.Descs)
			b.U32(uint32(len(bs.committed)))
			for _, c := range bs.committed {
				b.Bool(c)
			}
			b.U64(uint64(bs.published))
			b.U64(uint64(bs.prunedBelow))
			b.U32(uint32(len(bs.assigned)))
			for v, at := range bs.assigned {
				b.U64(uint64(v))
				b.I64(at.UnixNano())
			}
		}
	}
	return b.Bytes()
}

func (s *State) loadSnapshot(p []byte) error {
	r := wire.NewReader(p)
	nextID := blob.ID(r.U64())
	n := r.U32()
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.Lock()
		st.blobs = make(map[blob.ID]*blobState)
		st.mu.Unlock()
	}
	for i := uint32(0); i < n && r.Err() == nil; i++ {
		id := blob.ID(r.U64())
		bs := &blobState{
			meta:     blob.Meta{ID: id, BlockSize: r.I64(), Replication: int(r.U32())},
			assigned: make(map[blob.Version]time.Time),
		}
		bs.hist.Descs = decodeDescs(r)
		nc := r.U32()
		if r.Err() != nil || nc > uint32(r.Remaining()) {
			return errors.New("vmanager: corrupt snapshot (committed run)")
		}
		bs.committed = make([]bool, nc)
		for j := uint32(0); j < nc; j++ {
			bs.committed[j] = r.Bool()
		}
		bs.published = blob.Version(r.U64())
		bs.prunedBelow = blob.Version(r.U64())
		na := r.U32()
		if r.Err() != nil || na > uint32(r.Remaining()) {
			return errors.New("vmanager: corrupt snapshot (assigned run)")
		}
		for j := uint32(0); j < na; j++ {
			v := blob.Version(r.U64())
			bs.assigned[v] = time.Unix(0, r.I64())
		}
		if !s.Owns(id) {
			return s.shardMismatch(id)
		}
		st := s.stripeFor(id)
		st.mu.Lock()
		st.blobs[id] = bs
		st.mu.Unlock()
	}
	if err := r.Err(); err != nil {
		return fmt.Errorf("vmanager: corrupt snapshot: %w", err)
	}
	s.idMu.Lock()
	if nextID > s.nextID {
		s.nextID = nextID
	}
	s.idMu.Unlock()
	return nil
}

// ErrNoWAL is returned by snapshot/status operations on a manager
// running without a write-ahead log.
var ErrNoWAL = errors.New("vmanager: no write-ahead log attached")

// SnapshotNow serializes the current state as a WAL snapshot and
// compacts the log behind it. Every stripe lock (and the minting lock)
// is held across the snapshot write so the saved state is exactly
// consistent with the log prefix it supersedes; version-manager
// operations pause for the duration (an explicit admin/maintenance
// action, not a hot-path one).
func (s *State) SnapshotNow() error {
	s.logMu.Lock()
	log := s.log
	s.logMu.Unlock()
	if log == nil {
		return ErrNoWAL
	}
	s.idMu.Lock()
	defer s.idMu.Unlock()
	s.lockAll()
	defer s.unlockAll()
	return log.SaveSnapshot(s.encodeSnapshotAllLocked())
}

// WALStatus reports the attached log's shape (bsfsctl vm status).
func (s *State) WALStatus() (wal.Status, error) {
	s.logMu.Lock()
	log := s.log
	s.logMu.Unlock()
	if log == nil {
		return wal.Status{}, ErrNoWAL
	}
	return log.Status(), nil
}

// CloseWAL flushes and closes the attached log (graceful shutdown).
func (s *State) CloseWAL() error {
	s.logMu.Lock()
	log := s.log
	s.log = nil
	s.logMu.Unlock()
	if log == nil {
		return nil
	}
	return log.Close()
}
