package vmanager

import (
	"errors"
	"fmt"
	"time"

	"blobseer/internal/blob"
	"blobseer/internal/wal"
	"blobseer/internal/wire"
)

// WAL record types. The version manager logs every state mutation —
// create/assign/commit/abort/prune — and recovery replays them into a
// fresh State. Records are self-contained (they carry the values the
// mutation *produced*, e.g. the assigned version and fixed offset), so
// replay never re-runs validation or re-derives anything.
const (
	recCreate uint8 = iota + 1
	recAssign
	recCommit
	recAbort
	recPrune
)

// encodeCreate -> recCreate | id | blockSize | replication
func encodeCreate(m blob.Meta) []byte {
	b := wire.NewBuffer(32)
	b.U8(recCreate)
	b.U64(uint64(m.ID))
	b.I64(m.BlockSize)
	b.U32(uint32(m.Replication))
	return b.Bytes()
}

// encodeAssign -> recAssign | id | desc | assignUnixNano. The assign
// time rides along so a recovered manager's dead-writer janitor still
// fires for writes that were in flight at the crash: their age is
// measured from the original assignment, not from the restart.
func encodeAssign(id blob.ID, d blob.WriteDesc, at time.Time) []byte {
	b := wire.NewBuffer(64)
	b.U8(recAssign)
	b.U64(uint64(id))
	encodeDesc(b, d)
	b.I64(at.UnixNano())
	return b.Bytes()
}

func encodeVersionRec(t uint8, id blob.ID, v blob.Version) []byte {
	b := wire.NewBuffer(24)
	b.U8(t)
	b.U64(uint64(id))
	b.U64(uint64(v))
	return b.Bytes()
}

// Recover rebuilds a version-manager State from the log (snapshot
// first, then the record suffix) and attaches the log so subsequent
// mutations are journaled. A fresh/empty log yields a fresh State, so
// this is the only constructor the durable deployment path needs.
//
// Replay is idempotent: records already reflected in the state (e.g.
// folded into the snapshot, or replayed twice) are skipped, so
// recovering from a log that was already recovered once produces the
// same state.
func Recover(log *wal.Log, repair Repairer) (*State, error) {
	s := NewState(repair)
	err := log.Replay(func(p []byte, isSnap bool) error {
		if isSnap {
			return s.loadSnapshot(p)
		}
		return s.applyRecord(p)
	})
	if err != nil {
		return nil, fmt.Errorf("vmanager: recover: %w", err)
	}
	s.log = log
	return s, nil
}

// applyRecord folds one WAL record into the state. Mutations here
// mirror the live mutators minus validation (the record was only
// written after validation passed) and minus side effects (no repair
// calls, no client acks — a version whose abort-repair never finished
// is still in `assigned`, so the janitor re-aborts it after recovery).
func (s *State) applyRecord(p []byte) error {
	r := wire.NewReader(p)
	t := r.U8()
	id := blob.ID(r.U64())
	s.mu.Lock()
	defer s.mu.Unlock()
	switch t {
	case recCreate:
		blockSize := r.I64()
		replication := int(r.U32())
		if err := r.Err(); err != nil {
			return err
		}
		if _, ok := s.blobs[id]; ok {
			return nil // already applied
		}
		s.blobs[id] = &blobState{
			meta:     blob.Meta{ID: id, BlockSize: blockSize, Replication: replication},
			assigned: make(map[blob.Version]time.Time),
		}
		if id >= s.nextID {
			s.nextID = id + 1
		}
	case recAssign:
		d := decodeDesc(r)
		at := time.Unix(0, r.I64())
		if err := r.Err(); err != nil {
			return err
		}
		bs, ok := s.blobs[id]
		if !ok {
			return fmt.Errorf("vmanager: assign record for unknown blob %d", id)
		}
		if d.Version <= bs.hist.Latest() {
			return nil // already applied
		}
		if err := bs.hist.Append(d); err != nil {
			return err
		}
		bs.committed = append(bs.committed, false)
		bs.assigned[d.Version] = at
	case recCommit:
		v := blob.Version(r.U64())
		if err := r.Err(); err != nil {
			return err
		}
		bs, ok := s.blobs[id]
		if !ok {
			return fmt.Errorf("vmanager: commit record for unknown blob %d", id)
		}
		if v == blob.NoVersion || v > bs.hist.Latest() {
			return fmt.Errorf("vmanager: commit record for unassigned version %d of blob %d", v, id)
		}
		bs.committed[v-1] = true
		delete(bs.assigned, v)
		bs.advanceLocked()
	case recAbort:
		v := blob.Version(r.U64())
		if err := r.Err(); err != nil {
			return err
		}
		bs, ok := s.blobs[id]
		if !ok {
			return fmt.Errorf("vmanager: abort record for unknown blob %d", id)
		}
		if v == blob.NoVersion || v > bs.hist.Latest() {
			return fmt.Errorf("vmanager: abort record for unassigned version %d of blob %d", v, id)
		}
		bs.hist.Descs[v-1].Aborted = true
	case recPrune:
		keep := blob.Version(r.U64())
		if err := r.Err(); err != nil {
			return err
		}
		bs, ok := s.blobs[id]
		if !ok {
			return fmt.Errorf("vmanager: prune record for unknown blob %d", id)
		}
		if keep > bs.prunedBelow {
			bs.prunedBelow = keep
		}
	default:
		return fmt.Errorf("vmanager: unknown WAL record type %d", t)
	}
	return nil
}

// appendLocked journals a record if a log is attached. Callers hold
// s.mu, which serializes log order with mutation order — the property
// replay depends on. force bypasses the interval fsync policy for
// records that back client-visible acknowledgements.
//
// On a log error the in-memory mutation has already happened; the
// caller surfaces the error so the client treats the operation as
// failed. The memory/disk divergence this leaves (an assigned version
// the disk never heard of) is the same shape as a lost in-flight
// writer, which the janitor already cleans up.
func (s *State) appendLocked(force bool, p []byte) error {
	if s.log == nil {
		return nil
	}
	if force {
		return s.log.AppendSync(p)
	}
	return s.log.Append(p)
}

// encodeSnapshotLocked serializes the full state. Callers hold s.mu.
// Layout: u64 nextID | u32 nblobs | per blob: id, blockSize,
// replication, descs, committed bools, published, prunedBelow,
// assigned (v, unixNano) pairs.
func (s *State) encodeSnapshotLocked() []byte {
	b := wire.NewBuffer(256)
	b.U64(uint64(s.nextID))
	b.U32(uint32(len(s.blobs)))
	for id, bs := range s.blobs {
		b.U64(uint64(id))
		b.I64(bs.meta.BlockSize)
		b.U32(uint32(bs.meta.Replication))
		encodeDescs(b, bs.hist.Descs)
		b.U32(uint32(len(bs.committed)))
		for _, c := range bs.committed {
			b.Bool(c)
		}
		b.U64(uint64(bs.published))
		b.U64(uint64(bs.prunedBelow))
		b.U32(uint32(len(bs.assigned)))
		for v, at := range bs.assigned {
			b.U64(uint64(v))
			b.I64(at.UnixNano())
		}
	}
	return b.Bytes()
}

func (s *State) loadSnapshot(p []byte) error {
	r := wire.NewReader(p)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID = blob.ID(r.U64())
	n := r.U32()
	s.blobs = make(map[blob.ID]*blobState, n)
	for i := uint32(0); i < n && r.Err() == nil; i++ {
		id := blob.ID(r.U64())
		bs := &blobState{
			meta:     blob.Meta{ID: id, BlockSize: r.I64(), Replication: int(r.U32())},
			assigned: make(map[blob.Version]time.Time),
		}
		bs.hist.Descs = decodeDescs(r)
		nc := r.U32()
		if r.Err() != nil || nc > uint32(r.Remaining()) {
			return errors.New("vmanager: corrupt snapshot (committed run)")
		}
		bs.committed = make([]bool, nc)
		for j := uint32(0); j < nc; j++ {
			bs.committed[j] = r.Bool()
		}
		bs.published = blob.Version(r.U64())
		bs.prunedBelow = blob.Version(r.U64())
		na := r.U32()
		if r.Err() != nil || na > uint32(r.Remaining()) {
			return errors.New("vmanager: corrupt snapshot (assigned run)")
		}
		for j := uint32(0); j < na; j++ {
			v := blob.Version(r.U64())
			bs.assigned[v] = time.Unix(0, r.I64())
		}
		s.blobs[id] = bs
	}
	if err := r.Err(); err != nil {
		return fmt.Errorf("vmanager: corrupt snapshot: %w", err)
	}
	return nil
}

// ErrNoWAL is returned by snapshot/status operations on a manager
// running without a write-ahead log.
var ErrNoWAL = errors.New("vmanager: no write-ahead log attached")

// SnapshotNow serializes the current state as a WAL snapshot and
// compacts the log behind it. The state lock is held across the
// snapshot write so the saved state is exactly consistent with the log
// prefix it supersedes; version-manager operations pause for the
// duration (an explicit admin/maintenance action, not a hot-path one).
func (s *State) SnapshotNow() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.log == nil {
		return ErrNoWAL
	}
	return s.log.SaveSnapshot(s.encodeSnapshotLocked())
}

// WALStatus reports the attached log's shape (bsfsctl vm status).
func (s *State) WALStatus() (wal.Status, error) {
	s.mu.Lock()
	log := s.log
	s.mu.Unlock()
	if log == nil {
		return wal.Status{}, ErrNoWAL
	}
	return log.Status(), nil
}

// CloseWAL flushes and closes the attached log (graceful shutdown).
func (s *State) CloseWAL() error {
	s.mu.Lock()
	log := s.log
	s.log = nil
	s.mu.Unlock()
	if log == nil {
		return nil
	}
	return log.Close()
}
