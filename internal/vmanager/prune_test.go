package vmanager

import (
	"errors"
	"testing"

	"blobseer/internal/blob"
)

func pruneState(t *testing.T, versions int) (*State, blob.ID) {
	t.Helper()
	s := NewState(nil)
	m, err := s.CreateBlob(1024, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < versions; i++ {
		a, err := s.AssignVersion(m.ID, blob.KindAppend, 0, 1024, uint64(i)+1, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Commit(m.ID, a.Version); err != nil {
			t.Fatal(err)
		}
	}
	return s, m.ID
}

func TestPruneBasics(t *testing.T) {
	s, id := pruneState(t, 5)

	if _, err := s.Prune(id, 6); !errors.Is(err, ErrBadPrune) {
		t.Fatalf("prune beyond published: %v", err)
	}
	if _, err := s.Prune(99, 1); !errors.Is(err, ErrUnknownBlob) {
		t.Fatalf("prune unknown blob: %v", err)
	}

	from, err := s.Prune(id, 3)
	if err != nil {
		t.Fatal(err)
	}
	if from != 1 {
		t.Errorf("first prune from = %d, want 1", from)
	}
	if pb, _ := s.PrunedBelow(id); pb != 3 {
		t.Errorf("PrunedBelow = %d, want 3", pb)
	}

	// Monotone: re-pruning at or below the point is a no-op.
	if from, err = s.Prune(id, 3); err != nil || from != 3 {
		t.Errorf("same-point prune: from=%d err=%v", from, err)
	}
	if from, err = s.Prune(id, 2); err != nil || from != 2 {
		t.Errorf("backwards prune: from=%d err=%v", from, err)
	}
	if pb, _ := s.PrunedBelow(id); pb != 3 {
		t.Errorf("prune point moved backwards to %d", pb)
	}

	// Forward again.
	if from, err = s.Prune(id, 5); err != nil || from != 3 {
		t.Errorf("forward prune: from=%d err=%v", from, err)
	}
}

func TestPruneGatesVersionInfo(t *testing.T) {
	s, id := pruneState(t, 4)
	if _, err := s.Prune(id, 3); err != nil {
		t.Fatal(err)
	}
	for v := blob.Version(1); v <= 2; v++ {
		if _, err := s.VersionInfo(id, v); !errors.Is(err, ErrPruned) {
			t.Errorf("VersionInfo(v%d) = %v, want ErrPruned", v, err)
		}
	}
	for v := blob.Version(3); v <= 4; v++ {
		if _, err := s.VersionInfo(id, v); err != nil {
			t.Errorf("VersionInfo(v%d) = %v, want kept", v, err)
		}
	}
	// Latest and History are unaffected: descriptors are never dropped.
	if v, size, err := s.Latest(id); err != nil || v != 4 || size != 4*1024 {
		t.Errorf("Latest = (%d, %d, %v)", v, size, err)
	}
	descs, err := s.History(id, 0)
	if err != nil || len(descs) != 4 {
		t.Errorf("History kept %d descriptors, want 4 (err %v)", len(descs), err)
	}
}

func TestPruneDoesNotBlockNewWrites(t *testing.T) {
	s, id := pruneState(t, 3)
	if _, err := s.Prune(id, 3); err != nil {
		t.Fatal(err)
	}
	a, err := s.AssignVersion(id, blob.KindAppend, 0, 1024, 99, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(id, a.Version); err != nil {
		t.Fatal(err)
	}
	if v, _, _ := s.Latest(id); v != 4 {
		t.Errorf("write after prune: latest %d, want 4", v)
	}
}
