package vmanager

import (
	"testing"
	"time"

	"blobseer/internal/blob"
	"blobseer/internal/wal"
)

func openState(t *testing.T, dir string) *State {
	t.Helper()
	log, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := Recover(log, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.CloseWAL() })
	return s
}

func assignCommit(t *testing.T, s *State, id blob.ID, size int64) blob.Version {
	t.Helper()
	a, err := s.AssignVersion(id, blob.KindAppend, 0, size, 0, blob.NoVersion)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(id, a.Version); err != nil {
		t.Fatal(err)
	}
	return a.Version
}

func TestRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openState(t, dir)
	m, err := s.CreateBlob(4096, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		assignCommit(t, s, m.ID, 4096)
	}
	// One aborted version in the middle of the line.
	a, err := s.AssignVersion(m.ID, blob.KindAppend, 0, 4096, 0, blob.NoVersion)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Abort(m.ID, a.Version); err != nil {
		t.Fatal(err)
	}
	assignCommit(t, s, m.ID, 4096)
	if _, err := s.Prune(m.ID, 3); err != nil {
		t.Fatal(err)
	}
	wantPub, wantSize, _ := s.Latest(m.ID)
	s.CloseWAL()

	r := openState(t, dir)
	meta, err := r.GetMeta(m.ID)
	if err != nil {
		t.Fatalf("recovered state lost the blob: %v", err)
	}
	if meta != m {
		t.Errorf("meta = %+v, want %+v", meta, m)
	}
	pub, size, err := r.Latest(m.ID)
	if err != nil || pub != wantPub || size != wantSize {
		t.Errorf("Latest = (%d, %d, %v), want (%d, %d)", pub, size, err, wantPub, wantSize)
	}
	if pb, _ := r.PrunedBelow(m.ID); pb != 3 {
		t.Errorf("PrunedBelow = %d, want 3", pb)
	}
	d, err := r.VersionInfo(m.ID, a.Version)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Aborted {
		t.Errorf("aborted flag lost for version %d", a.Version)
	}
	// A new write after recovery continues the version line.
	v := assignCommit(t, r, m.ID, 4096)
	if pub, _, _ := r.Latest(m.ID); pub != v {
		t.Errorf("post-recovery publish = %d, want %d", pub, v)
	}
}

func TestRecoverInFlightVersionFeedsJanitor(t *testing.T) {
	dir := t.TempDir()
	s := openState(t, dir)
	m, _ := s.CreateBlob(4096, 1)
	a, err := s.AssignVersion(m.ID, blob.KindAppend, 0, 4096, 7, blob.NoVersion)
	if err != nil {
		t.Fatal(err)
	}
	// Force the assign record out: the crash we simulate is of the
	// *writer and manager together*, after the assign was journaled.
	s.log.Sync()
	s.CloseWAL()

	r := openState(t, dir)
	exp := r.Expired(0)
	if len(exp) != 1 || exp[0].Blob != m.ID || exp[0].Version != a.Version {
		t.Fatalf("Expired after recovery = %+v, want the in-flight version %d", exp, a.Version)
	}
	// The janitor's abort path completes the line and publication advances.
	if err := r.Abort(m.ID, a.Version); err != nil {
		t.Fatal(err)
	}
	if pub, _, _ := r.Latest(m.ID); pub != a.Version {
		t.Errorf("published = %d, want %d after janitor abort", pub, a.Version)
	}
}

func TestRecoverPreservesAssignTime(t *testing.T) {
	dir := t.TempDir()
	s := openState(t, dir)
	m, _ := s.CreateBlob(4096, 1)
	if _, err := s.AssignVersion(m.ID, blob.KindAppend, 0, 4096, 0, blob.NoVersion); err != nil {
		t.Fatal(err)
	}
	s.log.Sync()
	s.CloseWAL()

	time.Sleep(20 * time.Millisecond)
	r := openState(t, dir)
	// Age measured from the original assignment: the version must look
	// ~20ms old immediately after restart, not 0s old.
	if exp := r.Expired(10 * time.Millisecond); len(exp) != 1 {
		t.Errorf("Expired(10ms) = %+v; assign time was not preserved across recovery", exp)
	}
}

func TestRecoverIdempotentSecondReplay(t *testing.T) {
	dir := t.TempDir()
	s := openState(t, dir)
	m, _ := s.CreateBlob(4096, 1)
	for i := 0; i < 3; i++ {
		assignCommit(t, s, m.ID, 4096)
	}
	s.CloseWAL()

	// First recovery.
	r1 := openState(t, dir)
	pub1, size1, _ := r1.Latest(m.ID)
	r1.CloseWAL()
	// Second recovery over the very same (untouched) log.
	r2 := openState(t, dir)
	pub2, size2, _ := r2.Latest(m.ID)
	if pub1 != pub2 || size1 != size2 {
		t.Fatalf("second replay diverged: (%d,%d) vs (%d,%d)", pub1, size1, pub2, size2)
	}
	// Replaying the log into an already-recovered state must be a
	// no-op, not a corruption (records are applied idempotently).
	if err := r2.log.Replay(func(p []byte, isSnap bool) error {
		if isSnap {
			return r2.loadSnapshot(p)
		}
		return r2.applyRecord(p)
	}); err != nil {
		t.Fatalf("replay onto recovered state: %v", err)
	}
	pub3, size3, _ := r2.Latest(m.ID)
	if pub3 != pub1 || size3 != size1 {
		t.Errorf("double-applied state = (%d,%d), want (%d,%d)", pub3, size3, pub1, size1)
	}
}

func TestSnapshotCompactAndRecover(t *testing.T) {
	dir := t.TempDir()
	s := openState(t, dir)
	m, _ := s.CreateBlob(4096, 2)
	for i := 0; i < 4; i++ {
		assignCommit(t, s, m.ID, 4096)
	}
	if err := s.SnapshotNow(); err != nil {
		t.Fatal(err)
	}
	// Post-snapshot mutations live only in the record suffix.
	assignCommit(t, s, m.ID, 4096)
	in, err := s.AssignVersion(m.ID, blob.KindAppend, 0, 4096, 0, blob.NoVersion)
	if err != nil {
		t.Fatal(err)
	}
	s.log.Sync()
	st, err := s.WALStatus()
	if err != nil {
		t.Fatal(err)
	}
	if st.SnapshotSeq == 0 {
		t.Error("snapshot not recorded in WAL status")
	}
	s.CloseWAL()

	r := openState(t, dir)
	pub, _, err := r.Latest(m.ID)
	if err != nil {
		t.Fatal(err)
	}
	if pub != 5 {
		t.Errorf("published after snapshot+suffix recovery = %d, want 5", pub)
	}
	if meta, _ := r.GetMeta(m.ID); meta.Replication != 2 {
		t.Errorf("meta lost through snapshot: %+v", meta)
	}
	if exp := r.Expired(0); len(exp) != 1 || exp[0].Version != in.Version {
		t.Errorf("in-flight version %d lost through snapshot: %+v", in.Version, exp)
	}
}

func TestCommitIdempotent(t *testing.T) {
	dir := t.TempDir()
	s := openState(t, dir)
	m, _ := s.CreateBlob(4096, 1)
	v := assignCommit(t, s, m.ID, 4096)
	// A retried Publish across a manager restart re-sends the commit;
	// it must succeed, not error, and leave publication unchanged.
	if err := s.Commit(m.ID, v); err != nil {
		t.Fatalf("second commit of %d: %v", v, err)
	}
	if pub, _, _ := s.Latest(m.ID); pub != v {
		t.Errorf("published = %d, want %d", pub, v)
	}
}

func TestNoWALStateUnchanged(t *testing.T) {
	s := NewState(nil)
	m, err := s.CreateBlob(4096, 1)
	if err != nil {
		t.Fatal(err)
	}
	assignCommit(t, s, m.ID, 4096)
	if _, err := s.WALStatus(); err != ErrNoWAL {
		t.Errorf("WALStatus without log = %v, want ErrNoWAL", err)
	}
	if err := s.SnapshotNow(); err != ErrNoWAL {
		t.Errorf("SnapshotNow without log = %v, want ErrNoWAL", err)
	}
}
