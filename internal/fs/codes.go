package fs

import (
	"errors"

	"blobseer/internal/rpc"
)

// ErrBusy is returned when a file is already held by another writer
// (the HDFS-like baseline enforces single-writer semantics).
var ErrBusy = errors.New("fs: file is open by another writer")

// RPC status codes for the sentinel errors, shared by the BSFS
// namespace manager and the HDFS-like namenode so clients of either can
// errors.Is against the same sentinels.
const (
	CodeNotFound uint16 = 40 + iota
	CodeExists
	CodeIsDir
	CodeNotDir
	CodeNotEmpty
	CodeNoAppend
	CodeBusy
)

var codeByErr = []struct {
	err  error
	code uint16
}{
	{ErrNotFound, CodeNotFound},
	{ErrExists, CodeExists},
	{ErrIsDir, CodeIsDir},
	{ErrNotDir, CodeNotDir},
	{ErrNotEmpty, CodeNotEmpty},
	{ErrNoAppend, CodeNoAppend},
	{ErrBusy, CodeBusy},
}

// WrapErr converts a sentinel error into a coded RPC error (identity
// for nil and unknown errors).
func WrapErr(err error) error {
	if err == nil {
		return nil
	}
	for _, m := range codeByErr {
		if errors.Is(err, m.err) {
			return rpc.CodedError(m.code, err.Error())
		}
	}
	return err
}

// UnwrapErr converts a coded RPC error back into its sentinel
// (identity for nil and unknown codes).
func UnwrapErr(err error) error {
	if err == nil {
		return nil
	}
	code := rpc.CodeOf(err)
	for _, m := range codeByErr {
		if m.code == code {
			return m.err
		}
	}
	return err
}
