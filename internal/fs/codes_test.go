package fs

import (
	"errors"
	"fmt"
	"testing"

	"blobseer/internal/rpc"
)

// TestErrCodesRoundTrip: every sentinel survives the wrap -> wire ->
// unwrap path so errors.Is works across RPC boundaries.
func TestErrCodesRoundTrip(t *testing.T) {
	sentinels := []error{
		ErrNotFound, ErrExists, ErrIsDir, ErrNotDir, ErrNotEmpty, ErrNoAppend, ErrBusy,
	}
	for _, want := range sentinels {
		wrapped := WrapErr(fmt.Errorf("context: %w", want))
		if wrapped == nil {
			t.Fatalf("%v wrapped to nil", want)
		}
		// Simulate the wire: only the code and message survive.
		wire := rpc.CodedError(rpc.CodeOf(wrapped), wrapped.Error())
		got := UnwrapErr(wire)
		if !errors.Is(got, want) {
			t.Errorf("%v did not survive the wire: got %v", want, got)
		}
	}
}

func TestErrCodesIdentityForUnknown(t *testing.T) {
	if WrapErr(nil) != nil || UnwrapErr(nil) != nil {
		t.Fatal("nil must stay nil")
	}
	plain := errors.New("something else")
	if WrapErr(plain) != plain {
		t.Error("unknown errors must pass through WrapErr")
	}
	if UnwrapErr(plain) != plain {
		t.Error("unknown errors must pass through UnwrapErr")
	}
}

func TestErrCodesDistinct(t *testing.T) {
	seen := map[uint16]error{}
	for _, m := range codeByErr {
		if prev, dup := seen[m.code]; dup {
			t.Errorf("code %d assigned to both %v and %v", m.code, prev, m.err)
		}
		seen[m.code] = m.err
	}
}
