package fs

import (
	"testing"
	"testing/quick"
)

func TestClean(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", "/"},
		{"/", "/"},
		{"//", "/"},
		{"a", "/a"},
		{"/a/b/", "/a/b"},
		{"a//b", "/a/b"},
		{"/a/./b", "/a/b"},
		{"./x", "/x"},
	}
	for _, c := range cases {
		if got := Clean(c.in); got != c.want {
			t.Errorf("Clean(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestCleanIdempotent(t *testing.T) {
	f := func(p string) bool { return Clean(Clean(p)) == Clean(p) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSplit(t *testing.T) {
	got := Split("/a//b/./c/")
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Errorf("Split = %v", got)
	}
	if len(Split("/")) != 0 {
		t.Error("Split(/) not empty")
	}
}

func TestParentBase(t *testing.T) {
	cases := []struct{ in, parent, base string }{
		{"/a/b/c", "/a/b", "c"},
		{"/a", "/", "a"},
		{"/", "/", ""},
	}
	for _, c := range cases {
		if got := Parent(c.in); got != c.parent {
			t.Errorf("Parent(%q) = %q, want %q", c.in, got, c.parent)
		}
		if got := Base(c.in); got != c.base {
			t.Errorf("Base(%q) = %q, want %q", c.in, got, c.base)
		}
	}
}
