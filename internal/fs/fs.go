// Package fs defines the storage-neutral file-system interface the
// Map/Reduce engine is written against — the Go equivalent of the
// Hadoop FileSystem API of Section IV. Both BSFS (BlobSeer-backed) and
// the HDFS-like baseline implement it, which is exactly how the paper
// swaps storage layers under an unmodified Hadoop.
package fs

import (
	"context"
	"errors"
	"io"
	"strings"

	"blobseer/internal/stream"
)

// Errors shared by all implementations.
var (
	ErrNotFound = errors.New("fs: no such file or directory")
	ErrExists   = errors.New("fs: file already exists")
	ErrIsDir    = errors.New("fs: is a directory")
	ErrNotDir   = errors.New("fs: not a directory")
	ErrNotEmpty = errors.New("fs: directory not empty")
	ErrNoAppend = errors.New("fs: append not supported by this file system")

	// ErrClosed is the shared sentinel for any operation on a closed
	// handle; ErrReaderClosed and ErrWriterClosed both match it under
	// errors.Is, so callers that don't care which side was closed can
	// test the one sentinel. The sentinels live in the shared stream
	// engine (BSFS readers/writers ARE stream readers/writers); these
	// aliases keep the historical fs-level names working.
	ErrClosed = stream.ErrClosed
	// ErrReaderClosed is returned by Read/Seek on a closed reader.
	ErrReaderClosed = stream.ErrReaderClosed
	// ErrWriterClosed is returned by Write on a closed writer.
	ErrWriterClosed = stream.ErrWriterClosed
)

// FileStatus describes one namespace entry.
type FileStatus struct {
	Path  string
	Size  int64
	IsDir bool
}

// BlockLocation tells the scheduler where one block of a file range
// lives (Hadoop's getFileBlockLocations).
type BlockLocation struct {
	Off   int64
	Len   int64
	Hosts []string
}

// Reader is a sequential, seekable file reader.
type Reader interface {
	io.Reader
	io.Seeker
	io.Closer
}

// Writer is a sequential file writer; data becomes visible to readers
// at the implementation's commit granularity and durably at Close.
type Writer interface {
	io.Writer
	io.Closer
}

// FileSystem is the storage API used by applications and the
// Map/Reduce engine.
type FileSystem interface {
	// Create opens a new file for writing. Parent directories are
	// created implicitly. If overwrite is false and the file exists,
	// Create fails with ErrExists.
	Create(ctx context.Context, path string, overwrite bool) (Writer, error)
	// Open returns a reader over the file's current contents. The
	// snapshot seen is fixed at open time.
	Open(ctx context.Context, path string) (Reader, error)
	// Append opens an existing file for appending. Implementations
	// without append support return ErrNoAppend (HDFS, Section V-F).
	Append(ctx context.Context, path string) (Writer, error)
	// Stat describes a file or directory.
	Stat(ctx context.Context, path string) (FileStatus, error)
	// List enumerates a directory.
	List(ctx context.Context, path string) ([]FileStatus, error)
	// Mkdirs creates a directory and any missing parents.
	Mkdirs(ctx context.Context, path string) error
	// Delete removes a file, or a directory (recursively if asked).
	Delete(ctx context.Context, path string, recursive bool) error
	// Rename moves a file or directory.
	Rename(ctx context.Context, src, dst string) error
	// Locations exposes the physical data layout of a file range for
	// affinity scheduling.
	Locations(ctx context.Context, path string, off, length int64) ([]BlockLocation, error)
	// BlockSize returns the chunking granularity (64 MB in the paper).
	BlockSize() int64
	// Name identifies the implementation ("bsfs", "hdfs").
	Name() string
}

// SnapshotReader is the optional versioning capability of a storage
// layer (Section VI-A): every write publishes an immutable snapshot,
// and OpenVersion reads one by number. BSFS implements it; the
// HDFS-like baseline does not. Callers probe with a type assertion.
type SnapshotReader interface {
	// OpenVersion returns a reader pinned to the given published
	// snapshot version of the file.
	OpenVersion(ctx context.Context, path string, version uint64) (Reader, error)
}

// Clean canonicalizes a path: leading slash, no trailing slash, no
// empty or dot segments. The root is "/".
func Clean(path string) string {
	parts := Split(path)
	if len(parts) == 0 {
		return "/"
	}
	return "/" + strings.Join(parts, "/")
}

// Split returns the non-empty segments of a path.
func Split(path string) []string {
	raw := strings.Split(path, "/")
	out := make([]string, 0, len(raw))
	for _, s := range raw {
		if s != "" && s != "." {
			out = append(out, s)
		}
	}
	return out
}

// Parent returns the parent directory of a cleaned path ("/" for
// top-level entries and the root itself).
func Parent(path string) string {
	parts := Split(path)
	if len(parts) <= 1 {
		return "/"
	}
	return "/" + strings.Join(parts[:len(parts)-1], "/")
}

// Base returns the last segment of the path ("" for the root).
func Base(path string) string {
	parts := Split(path)
	if len(parts) == 0 {
		return ""
	}
	return parts[len(parts)-1]
}
