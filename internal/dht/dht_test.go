package dht

import (
	"context"
	"fmt"
	"testing"
	"testing/quick"

	"blobseer/internal/rpc"
	"blobseer/internal/store"
)

func TestRingLookupDeterministic(t *testing.T) {
	nodes := []string{"m1", "m2", "m3", "m4", "m5"}
	r1 := NewRing(nodes, 32)
	r2 := NewRing(nodes, 32)
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("key-%d", i)
		a, b := r1.Lookup(k, 2), r2.Lookup(k, 2)
		if len(a) != 2 || a[0] != b[0] || a[1] != b[1] {
			t.Fatalf("lookup not deterministic for %s: %v vs %v", k, a, b)
		}
	}
}

func TestRingReplicasDistinct(t *testing.T) {
	r := NewRing([]string{"a", "b", "c"}, 16)
	for i := 0; i < 50; i++ {
		got := r.Lookup(fmt.Sprintf("k%d", i), 3)
		if len(got) != 3 {
			t.Fatalf("lookup returned %d nodes", len(got))
		}
		seen := map[string]bool{}
		for _, n := range got {
			if seen[n] {
				t.Fatalf("duplicate replica: %v", got)
			}
			seen[n] = true
		}
	}
}

func TestRingClampsReplicas(t *testing.T) {
	r := NewRing([]string{"a", "b"}, 8)
	if got := r.Lookup("k", 5); len(got) != 2 {
		t.Errorf("lookup = %v", got)
	}
	if got := r.Lookup("k", 0); len(got) != 1 {
		t.Errorf("lookup with 0 = %v", got)
	}
}

func TestRingEmpty(t *testing.T) {
	r := NewRing(nil, 8)
	if got := r.Lookup("k", 1); got != nil {
		t.Errorf("empty ring lookup = %v", got)
	}
	if r.Len() != 0 {
		t.Error("empty ring Len != 0")
	}
}

func TestRingDistribution(t *testing.T) {
	// With 20 metadata providers (the paper's microbenchmark setup),
	// keys should spread without any provider being starved or owning
	// a grossly outsized share.
	nodes := make([]string, 20)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("meta-%d", i)
	}
	r := NewRing(nodes, DefaultVnodes)
	counts := map[string]int{}
	const keys = 20000
	for i := 0; i < keys; i++ {
		counts[r.Lookup(fmt.Sprintf("tree-node-%d", i), 1)[0]]++
	}
	want := keys / len(nodes)
	for n, c := range counts {
		if c < want/3 || c > want*3 {
			t.Errorf("node %s owns %d keys (ideal %d)", n, c, want)
		}
	}
	if len(counts) != len(nodes) {
		t.Errorf("only %d/%d nodes own keys", len(counts), len(nodes))
	}
}

func TestRingLookupStableUnderKeyProperty(t *testing.T) {
	r := NewRing([]string{"a", "b", "c", "d"}, 16)
	f := func(key string) bool {
		x := r.Lookup(key, 2)
		y := r.Lookup(key, 2)
		return len(x) == 2 && x[0] == y[0] && x[1] == y[1] && x[0] != x[1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// startDHT brings up n metadata providers on an inproc network.
func startDHT(t *testing.T, n, replicas int) (*Client, []*MetaService) {
	t.Helper()
	net := rpc.NewInprocNetwork()
	addrs := make([]string, n)
	svcs := make([]*MetaService, n)
	for i := 0; i < n; i++ {
		addrs[i] = fmt.Sprintf("meta-%d", i)
		svcs[i] = NewMetaService(store.NewMemStore())
		lis, err := net.Listen(addrs[i])
		if err != nil {
			t.Fatal(err)
		}
		srv := rpc.NewServer(svcs[i].Mux())
		go srv.Serve(lis)
		t.Cleanup(func() { srv.Close() })
	}
	pool := rpc.NewPool(net.Dial)
	t.Cleanup(pool.Close)
	return NewClient(NewRing(addrs, 16), pool, replicas), svcs
}

func TestDHTPutGet(t *testing.T) {
	c, _ := startDHT(t, 5, 2)
	ctx := context.Background()
	if err := c.Put(ctx, "node/1/0/64", []byte("leaf")); err != nil {
		t.Fatal(err)
	}
	v, err := c.Get(ctx, "node/1/0/64")
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "leaf" {
		t.Errorf("Get = %q", v)
	}
}

func TestDHTMissingKey(t *testing.T) {
	c, _ := startDHT(t, 3, 2)
	_, err := c.Get(context.Background(), "absent")
	if err == nil {
		t.Fatal("get of absent key succeeded")
	}
	if rpc.CodeOf(err) != CodeNotFound {
		t.Errorf("code = %d", rpc.CodeOf(err))
	}
}

func TestDHTReplication(t *testing.T) {
	c, svcs := startDHT(t, 4, 3)
	ctx := context.Background()
	if err := c.Put(ctx, "replicated-key", []byte("v")); err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, s := range svcs {
		if s.store.Has("replicated-key") {
			n++
		}
	}
	if n != 3 {
		t.Errorf("key on %d providers, want 3", n)
	}
}

func TestDHTReadSurvivesReplicaLoss(t *testing.T) {
	c, svcs := startDHT(t, 4, 3)
	ctx := context.Background()
	if err := c.Put(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	// Wipe the primary replica's store: reads must fall through to the
	// surviving replicas.
	primary := c.Ring().Lookup("k", 1)[0]
	for i, s := range svcs {
		if fmt.Sprintf("meta-%d", i) == primary {
			s.store.Delete("k")
		}
	}
	v, err := c.Get(ctx, "k")
	if err != nil || string(v) != "v" {
		t.Fatalf("Get after primary loss = %q, %v", v, err)
	}
}

func TestDHTDelete(t *testing.T) {
	c, svcs := startDHT(t, 3, 3)
	ctx := context.Background()
	c.Put(ctx, "k", []byte("v"))
	if err := c.Delete(ctx, "k"); err != nil {
		t.Fatal(err)
	}
	for i, s := range svcs {
		if s.store.Has("k") {
			t.Errorf("replica %d still has key", i)
		}
	}
}

func TestDHTManyKeysSpread(t *testing.T) {
	c, svcs := startDHT(t, 5, 1)
	ctx := context.Background()
	for i := 0; i < 200; i++ {
		if err := c.Put(ctx, fmt.Sprintf("key-%d", i), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	for i, s := range svcs {
		if st := s.store.Stats(); st.Items == 0 {
			t.Errorf("metadata provider %d stores nothing", i)
		}
	}
}
