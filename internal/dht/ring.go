// Package dht implements the distributed hash table BlobSeer stores its
// metadata in (Section III-A3): a consistent-hash ring over metadata
// providers, a metadata-provider RPC service, and a replicated
// key-value client. Distributing the segment-tree nodes over this DHT
// is what removes the centralized-metadata bottleneck the paper blames
// for HDFS's behaviour under concurrency.
//
// # Wire format
//
// All payloads use the package wire codec (big-endian, length-prefixed
// strings and byte slices). The single-key methods:
//
//	mMetaPut     request:  key string | val bytes32       response: empty
//	mMetaGet     request:  key string                     response: val bytes32 (or status CodeNotFound)
//	mMetaDelete  request:  key string                     response: empty
//	mMetaStat    request:  empty                          response: items i64 | bytes i64
//
// The batch methods move one multi-key payload per provider instead of
// one RPC per key; the client groups keys by their ring replica set and
// fans the per-provider RPCs out in parallel:
//
//	mMetaPutBatch  request:  count u32, then per pair: key string | val bytes32
//	               response: empty (the whole batch fails on any error)
//	mMetaGetBatch  request:  count u32, then per key: key string
//	               response: count u32, then per key (request order):
//	                         found bool | val bytes32 (empty when absent)
//
// A missing key inside mMetaGetBatch is not an RPC error: each entry
// carries its own presence flag, so one response mixes hits and
// authoritative misses and the client can fall through to further
// replicas only for the keys that need it.
//
// # Key namespaces
//
// Two key families share the DHT, distinguished by prefix:
//
//	"t<blob>/<version>/<off>/<span>"  segment-tree nodes (package mdtree)
//	"loc/b<blob>/<nonce hex>/<seq>"   location-overlay entries (package
//	                                  repair): value is a stringslice of
//	                                  extra provider addresses holding
//	                                  repair copies of the block
//
// Tree nodes are immutable; overlay entries are whole-value replaced by
// the (single-writer) repair engine and deleted by version GC.
package dht

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVnodes is the number of virtual nodes per physical metadata
// provider; enough to spread keys within a few percent of uniform.
const DefaultVnodes = 64

// Ring is an immutable consistent-hash ring. Build one with NewRing;
// membership changes create a new Ring (metadata providers are fixed
// for the lifetime of a deployment in the paper's experiments).
type Ring struct {
	points []ringPoint
	nodes  []string
}

type ringPoint struct {
	hash uint64
	node int // index into nodes
}

// NewRing builds a ring over the given node addresses with vnodes
// virtual points each (DefaultVnodes if vnodes <= 0).
func NewRing(nodes []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	r := &Ring{nodes: append([]string(nil), nodes...)}
	r.points = make([]ringPoint, 0, len(nodes)*vnodes)
	for i, n := range r.nodes {
		for v := 0; v < vnodes; v++ {
			h := hash64(fmt.Sprintf("%s#%d", n, v))
			r.points = append(r.points, ringPoint{hash: h, node: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].node < r.points[b].node
	})
	return r
}

// Nodes returns the ring's member addresses.
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// Len returns the number of members.
func (r *Ring) Len() int { return len(r.nodes) }

// Lookup returns the addresses of the n distinct nodes responsible for
// key, in preference order (primary first). n is clamped to the number
// of members.
func (r *Ring) Lookup(key string, n int) []string {
	if len(r.points) == 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	if n <= 0 {
		n = 1
	}
	h := hash64(key)
	idx := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if idx == len(r.points) {
		idx = 0
	}
	out := make([]string, 0, n)
	seen := make(map[int]bool, n)
	for i := 0; len(out) < n && i < len(r.points); i++ {
		p := r.points[(idx+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, r.nodes[p.node])
		}
	}
	return out
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	// FNV alone has poor avalanche on short, near-sequential keys
	// (exactly what tree-node identifiers look like); run the sum
	// through a splitmix64-style finalizer so consecutive keys land on
	// independent arcs of the ring.
	z := h.Sum64()
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
