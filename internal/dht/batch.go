package dht

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"blobseer/internal/wire"
)

// Batched DHT operations. A metadata tree level touches many keys at
// once; shipping them per-provider in one RPC turns O(keys x replicas)
// serialized round-trips into one parallel fan-out of O(providers)
// round-trips. Immutable metadata makes the semantics simple: any
// replica's answer for a key is the answer.

// PutBatch stores every pair on all of its replicas. Pairs are grouped
// by provider address (each provider receives one mMetaPutBatch RPC
// carrying every pair it is responsible for) and the per-provider RPCs
// run in parallel. Like Put, it fails if any replica write fails.
func (c *Client) PutBatch(ctx context.Context, kvs []wire.KV) error {
	if len(kvs) == 0 {
		return nil
	}
	if len(kvs) == 1 {
		return c.Put(ctx, kvs[0].Key, kvs[0].Val)
	}
	groups := make(map[string][]wire.KV)
	for _, kv := range kvs {
		addrs := c.ring.Lookup(kv.Key, c.replicas)
		if len(addrs) == 0 {
			return errors.New("dht: empty ring")
		}
		for _, addr := range addrs {
			groups[addr] = append(groups[addr], kv)
		}
	}
	addrs := make([]string, 0, len(groups))
	for addr := range groups {
		addrs = append(addrs, addr)
	}
	return c.eachReplica(addrs, func(addr string) error {
		return c.putBatchOne(ctx, addr, groups[addr])
	})
}

// Chunking limits: one RPC frame per chunk, kept far below
// wire.MaxFrameSize so even degenerate batches (a write materializing
// millions of nodes on one provider) never hit the frame cap the old
// per-node path was immune to.
const (
	maxBatchPairs = 8192
	maxBatchBytes = 8 << 20
)

func (c *Client) putBatchOne(ctx context.Context, addr string, kvs []wire.KV) error {
	for start := 0; start < len(kvs); {
		size := 4
		end := start
		for end < len(kvs) && end-start < maxBatchPairs {
			pair := 8 + len(kvs[end].Key) + len(kvs[end].Val)
			if end > start && size+pair > maxBatchBytes {
				break
			}
			size += pair
			end++
		}
		b := wire.NewBuffer(size)
		b.KVSlice(kvs[start:end])
		if _, err := c.callAddr(ctx, addr, mMetaPutBatch, b.Bytes()); err != nil {
			return fmt.Errorf("dht: put batch (%d keys) to %s: %w", end-start, addr, err)
		}
		start = end
	}
	return nil
}

// getState tracks one key's progress through the replica rounds of a
// GetBatch.
type getState struct {
	addrs    []string // replica preference order
	round    int      // next replica index to try
	notFound int      // replicas that authoritatively missed
}

// GetBatch fetches many keys at once. Keys are grouped by their primary
// replica and fetched with one parallel mMetaGetBatch RPC per provider;
// keys a provider misses (or whose provider is down) fall through to
// the next replica in further rounds. The result maps each found key to
// its value. A key absent from the map was authoritatively missing on
// every replica; if any key could not be resolved either way (all
// remaining replicas unreachable), GetBatch returns an error, because
// for immutable metadata an inconclusive miss must not be read as a
// hole.
func (c *Client) GetBatch(ctx context.Context, keys []string) (map[string][]byte, error) {
	out := make(map[string][]byte, len(keys))
	if len(keys) == 0 {
		return out, nil
	}
	states := make(map[string]*getState, len(keys))
	for _, key := range keys {
		if _, ok := states[key]; ok {
			continue // dedup: one fetch answers every occurrence
		}
		addrs := c.ring.Lookup(key, c.replicas)
		if len(addrs) == 0 {
			return nil, errors.New("dht: empty ring")
		}
		states[key] = &getState{addrs: addrs}
	}

	maxRounds := c.replicas
	for round := 0; round < maxRounds; round++ {
		// Group every unresolved key by the replica it should try next.
		groups := make(map[string][]string)
		for key, st := range states {
			if _, done := out[key]; done || st.round >= len(st.addrs) {
				continue
			}
			addr := st.addrs[st.round]
			st.round++
			if round > 0 {
				c.fallbacks.Add(1)
			}
			groups[addr] = append(groups[addr], key)
		}
		if len(groups) == 0 {
			break
		}
		type result struct {
			keys []string
			vals [][]byte // nil entry = authoritative miss
			err  error
		}
		results := make([]result, 0, len(groups))
		var (
			wg sync.WaitGroup
			mu sync.Mutex
		)
		for addr, group := range groups {
			wg.Add(1)
			go func(addr string, group []string) {
				defer wg.Done()
				vals, err := c.getBatchOne(ctx, addr, group)
				mu.Lock()
				results = append(results, result{keys: group, vals: vals, err: err})
				mu.Unlock()
			}(addr, group)
		}
		wg.Wait()
		for _, res := range results {
			for i, key := range res.keys {
				st := states[key]
				switch {
				case res.vals != nil && res.vals[i] != nil:
					// A value fetched before a later chunk failed is still
					// a value: keep it instead of re-fetching elsewhere.
					if _, done := out[key]; !done {
						out[key] = res.vals[i]
					}
				case res.err != nil:
					// Transport failure: the key stays unresolved and is
					// retried on the next replica (never counted as a miss).
				default:
					st.notFound++
				}
			}
		}
	}

	for key, st := range states {
		if _, ok := out[key]; ok {
			continue
		}
		if st.notFound < len(st.addrs) {
			// At least one replica never answered: the key may exist
			// there, so the caller must not treat this as a miss.
			return nil, fmt.Errorf("dht: get batch: key %q unresolved (%d/%d replicas answered not-found)", key, st.notFound, len(st.addrs))
		}
	}
	return out, nil
}

// getBatchOne fetches keys from one provider, chunking the multi-get
// so neither request nor response can approach the frame limit. The
// returned slice parallels keys; a nil entry is an authoritative miss.
// On error the slice carries whatever earlier chunks resolved, so the
// caller keeps values fetched before the failure. NOTE: with a non-nil
// error a nil entry means "unresolved", not "missing".
func (c *Client) getBatchOne(ctx context.Context, addr string, keys []string) ([][]byte, error) {
	vals := make([][]byte, len(keys))
	for start := 0; start < len(keys); {
		end := start + maxBatchPairs
		if end > len(keys) {
			end = len(keys)
		}
		chunk := keys[start:end]
		size := 4
		for _, k := range chunk {
			size += 4 + len(k)
		}
		b := wire.NewBuffer(size)
		b.StringSlice(chunk)
		resp, err := c.callAddr(ctx, addr, mMetaGetBatch, b.Bytes())
		if err != nil {
			return vals, fmt.Errorf("dht: get batch (%d keys) from %s: %w", len(chunk), addr, err)
		}
		r := wire.NewReader(resp)
		if n := r.U32(); int(n) != len(chunk) {
			return vals, fmt.Errorf("dht: get batch from %s: %d answers for %d keys", addr, n, len(chunk))
		}
		for i := range chunk {
			found := r.Bool()
			v := r.Bytes32()
			if found {
				if v == nil {
					v = []byte{}
				}
				vals[start+i] = v
			}
		}
		if err := r.Err(); err != nil {
			return vals, fmt.Errorf("dht: get batch from %s: %w", addr, err)
		}
		start = end
	}
	return vals, nil
}
