package dht

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"blobseer/internal/metrics"
	"blobseer/internal/rpc"
	"blobseer/internal/store"
	"blobseer/internal/wire"
)

// RPC method numbers for the metadata provider service.
const (
	mMetaPut uint16 = iota + 1
	mMetaGet
	mMetaDelete
	mMetaStat
	mMetaPutBatch
	mMetaGetBatch
)

// methodNames maps method numbers to operation names (method - 1).
var methodNames = [mMetaGetBatch]string{
	"put", "get", "delete", "stat", "put_batch", "get_batch",
}

// MethodName maps an RPC method number to its operation name, for the
// server-side tracer.
func MethodName(m uint16) string {
	if m >= 1 && m <= mMetaGetBatch {
		return methodNames[m-1]
	}
	return "unknown"
}

// CodeNotFound is the RPC status for a missing metadata key.
const CodeNotFound uint16 = 11

// ErrNotFound is returned when a metadata key is absent from every
// queried replica.
var ErrNotFound = rpc.CodedError(CodeNotFound, "dht: key not found")

// MetaService is the metadata-provider daemon implementation: a plain
// KV shell over a store.Store. Tree nodes, being immutable once
// written (the paper's "no existing metadata is ever modified"),
// make replication trivial: any replica answer is correct.
type MetaService struct {
	store store.Store

	reg       *metrics.Registry
	mPuts     *metrics.Counter
	mGets     *metrics.Counter
	mDeletes  *metrics.Counter
	mBatchPut *metrics.Histogram // pairs per put-batch RPC
	mBatchGet *metrics.Histogram // keys per get-batch RPC
	mBytesIn  *metrics.Counter
	mBytesOut *metrics.Counter
}

// NewMetaService returns a metadata provider over st.
func NewMetaService(st store.Store) *MetaService {
	s := &MetaService{store: st, reg: metrics.NewRegistry()}
	s.mPuts = s.reg.Counter("puts")
	s.mGets = s.reg.Counter("gets")
	s.mDeletes = s.reg.Counter("deletes")
	s.mBatchPut = s.reg.Histogram("put_batch_size")
	s.mBatchGet = s.reg.Histogram("get_batch_size")
	s.mBytesIn = s.reg.Counter("bytes_in")
	s.mBytesOut = s.reg.Counter("bytes_out")
	s.reg.GaugeFunc("store_items", func() int64 { return st.Stats().Items })
	s.reg.GaugeFunc("store_bytes", func() int64 { return st.Stats().Bytes })
	return s
}

// Store exposes the underlying store (tests, failure injection).
func (s *MetaService) Store() store.Store { return s.store }

// Metrics exposes the metadata provider's registry (op counts, batch
// size histograms, store occupancy) for HTTP export.
func (s *MetaService) Metrics() *metrics.Registry { return s.reg }

// Mux returns the RPC dispatch table.
func (s *MetaService) Mux() *rpc.Mux {
	m := rpc.NewMux()
	m.Handle(mMetaPut, s.handlePut)
	m.Handle(mMetaGet, s.handleGet)
	m.Handle(mMetaDelete, s.handleDelete)
	m.Handle(mMetaStat, s.handleStat)
	m.Handle(mMetaPutBatch, s.handlePutBatch)
	m.Handle(mMetaGetBatch, s.handleGetBatch)
	return m
}

func (s *MetaService) handlePut(ctx context.Context, payload []byte) ([]byte, error) {
	r := wire.NewReader(payload)
	key := r.String()
	val := r.Bytes32()
	if err := r.Err(); err != nil {
		return nil, err
	}
	s.mPuts.Inc()
	s.mBytesIn.Add(int64(len(val)))
	return nil, s.store.Put(key, val)
}

func (s *MetaService) handleGet(ctx context.Context, payload []byte) ([]byte, error) {
	r := wire.NewReader(payload)
	key := r.String()
	if err := r.Err(); err != nil {
		return nil, err
	}
	val, err := s.store.Get(key)
	if err == store.ErrNotFound {
		return nil, ErrNotFound
	}
	if err != nil {
		return nil, err
	}
	s.mGets.Inc()
	s.mBytesOut.Add(int64(len(val)))
	b := wire.NewBuffer(4 + len(val))
	b.Bytes32(val)
	return b.Bytes(), nil
}

func (s *MetaService) handleDelete(ctx context.Context, payload []byte) ([]byte, error) {
	r := wire.NewReader(payload)
	key := r.String()
	if err := r.Err(); err != nil {
		return nil, err
	}
	s.mDeletes.Inc()
	return nil, s.store.Delete(key)
}

func (s *MetaService) handleStat(ctx context.Context, payload []byte) ([]byte, error) {
	st := s.store.Stats()
	b := wire.NewBuffer(16)
	b.I64(st.Items)
	b.I64(st.Bytes)
	return b.Bytes(), nil
}

// handlePutBatch stores every pair of a multi-put; any failure aborts
// the batch (the client treats the whole RPC as failed, matching the
// durability contract of single puts).
func (s *MetaService) handlePutBatch(ctx context.Context, payload []byte) ([]byte, error) {
	r := wire.NewReader(payload)
	kvs := r.KVSlice()
	if err := r.Err(); err != nil {
		return nil, err
	}
	s.mBatchPut.Observe(int64(len(kvs)))
	for _, kv := range kvs {
		if err := s.store.Put(kv.Key, kv.Val); err != nil {
			return nil, err
		}
		s.mPuts.Inc()
		s.mBytesIn.Add(int64(len(kv.Val)))
	}
	return nil, nil
}

// handleGetBatch answers a multi-get. Unlike single gets, a missing key
// is not an RPC error: each requested key gets a presence flag so one
// response carries hits and authoritative misses side by side.
func (s *MetaService) handleGetBatch(ctx context.Context, payload []byte) ([]byte, error) {
	r := wire.NewReader(payload)
	keys := r.StringSlice()
	if err := r.Err(); err != nil {
		return nil, err
	}
	s.mBatchGet.Observe(int64(len(keys)))
	s.mGets.Add(int64(len(keys)))
	b := wire.NewBuffer(16 * len(keys))
	b.U32(uint32(len(keys)))
	for _, key := range keys {
		val, err := s.store.Get(key)
		switch {
		case err == store.ErrNotFound:
			b.Bool(false)
			b.Bytes32(nil)
		case err != nil:
			return nil, err
		default:
			b.Bool(true)
			b.Bytes32(val)
		}
	}
	return b.Bytes(), nil
}

// Client is the replicated DHT client used by BlobSeer writers and
// readers. Writes go to all replicas (metadata is tiny and immutable);
// reads try replicas in order and succeed on the first hit, which also
// provides availability when a metadata provider dies.
type Client struct {
	ring     *Ring
	pool     *rpc.Pool
	replicas int
	retry    rpc.Backoff

	// fallbacks counts reads that could not be served by the first
	// replica tried and fell through to a later one (dead or lagging
	// metadata providers make this grow).
	fallbacks atomic.Int64
}

// metaBackoff is the per-replica retry schedule. It is deliberately
// shorter than rpc.DefaultBackoff: reads already fall back across
// replicas, so a dead metadata provider should fail over quickly
// rather than be retried at length.
var metaBackoff = rpc.Backoff{Attempts: 4, Base: 5 * time.Millisecond, Max: 100 * time.Millisecond}

// NewClient returns a DHT client over the given ring with the given
// replication factor (clamped to ring size, minimum 1).
func NewClient(ring *Ring, pool *rpc.Pool, replicas int) *Client {
	if replicas < 1 {
		replicas = 1
	}
	return &Client{ring: ring, pool: pool, replicas: replicas, retry: metaBackoff}
}

// SetRetry overrides the per-replica retry schedule.
func (c *Client) SetRetry(b rpc.Backoff) { c.retry = b }

// Ring exposes the client's ring (location queries, tests).
func (c *Client) Ring() *Ring { return c.ring }

// Fallbacks reports how many reads fell through past the first replica
// (single and batched gets combined).
func (c *Client) Fallbacks() int64 { return c.fallbacks.Load() }

// callAddr issues one RPC against a specific metadata provider,
// re-dialing and retrying transport failures per the client schedule.
// Puts and deletes are idempotent; gets are read-only — all safe to
// repeat.
func (c *Client) callAddr(ctx context.Context, addr string, m uint16, payload []byte) ([]byte, error) {
	var resp []byte
	err := rpc.Retry(ctx, c.retry, func(ctx context.Context) error {
		cl, err := c.pool.Get(addr)
		if err != nil {
			return err
		}
		resp, err = cl.Call(ctx, m, payload)
		return err
	})
	return resp, err
}

// Put stores key on every replica in parallel; it fails if any replica
// write fails (metadata must be durable before a version can commit).
func (c *Client) Put(ctx context.Context, key string, val []byte) error {
	addrs := c.ring.Lookup(key, c.replicas)
	if len(addrs) == 0 {
		return errors.New("dht: empty ring")
	}
	b := wire.NewBuffer(8 + len(key) + len(val))
	b.String(key)
	b.Bytes32(val)
	payload := b.Bytes()
	return c.eachReplica(addrs, func(addr string) error {
		if _, err := c.callAddr(ctx, addr, mMetaPut, payload); err != nil {
			return fmt.Errorf("dht: put %q to %s: %w", key, addr, err)
		}
		return nil
	})
}

// eachReplica runs fn against every address concurrently and returns
// the first error.
func (c *Client) eachReplica(addrs []string, fn func(addr string) error) error {
	if len(addrs) == 1 {
		return fn(addrs[0])
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for _, addr := range addrs {
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			if err := fn(addr); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}(addr)
	}
	wg.Wait()
	return firstErr
}

// Get fetches key from the first answering replica. It returns
// ErrNotFound only when every replica authoritatively reported the key
// missing; if any replica was unreachable the miss is inconclusive and
// the transport error is returned instead, so callers can distinguish
// "the key does not exist" from "the key may exist on a dead provider".
func (c *Client) Get(ctx context.Context, key string) ([]byte, error) {
	addrs := c.ring.Lookup(key, c.replicas)
	if len(addrs) == 0 {
		return nil, errors.New("dht: empty ring")
	}
	b := wire.NewBuffer(8 + len(key))
	b.String(key)
	payload := b.Bytes()
	var lastErr error
	notFound := 0
	for i, addr := range addrs {
		if i > 0 {
			c.fallbacks.Add(1)
		}
		resp, err := c.callAddr(ctx, addr, mMetaGet, payload)
		if err != nil {
			if rpc.CodeOf(err) == CodeNotFound {
				// Authoritative miss on this replica; for immutable
				// metadata the key is absent only if no replica has it.
				notFound++
			} else {
				lastErr = err
			}
			continue
		}
		r := wire.NewReader(resp)
		val := r.Bytes32()
		if err := r.Err(); err != nil {
			lastErr = err
			continue
		}
		return val, nil
	}
	if notFound == len(addrs) || lastErr == nil {
		return nil, ErrNotFound
	}
	return nil, lastErr
}

// Delete removes key from all replicas in parallel (best effort; used
// by GC).
func (c *Client) Delete(ctx context.Context, key string) error {
	addrs := c.ring.Lookup(key, c.replicas)
	b := wire.NewBuffer(8 + len(key))
	b.String(key)
	payload := b.Bytes()
	return c.eachReplica(addrs, func(addr string) error {
		_, err := c.callAddr(ctx, addr, mMetaDelete, payload)
		return err
	})
}
