package dht

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"blobseer/internal/rpc"
	"blobseer/internal/store"
	"blobseer/internal/wire"
)

func TestDHTPutBatchReplicates(t *testing.T) {
	c, svcs := startDHT(t, 4, 2)
	ctx := context.Background()
	kvs := make([]wire.KV, 50)
	for i := range kvs {
		kvs[i] = wire.KV{Key: fmt.Sprintf("t1/1/%d/64", i*64), Val: []byte{byte(i)}}
	}
	if err := c.PutBatch(ctx, kvs); err != nil {
		t.Fatal(err)
	}
	// Every key must exist on exactly its 2 replicas.
	for _, kv := range kvs {
		n := 0
		for _, s := range svcs {
			if s.Store().Has(kv.Key) {
				n++
			}
		}
		if n != 2 {
			t.Errorf("key %s on %d providers, want 2", kv.Key, n)
		}
		got, err := c.Get(ctx, kv.Key)
		if err != nil || !bytes.Equal(got, kv.Val) {
			t.Errorf("Get(%s) = %q, %v", kv.Key, got, err)
		}
	}
}

func TestDHTGetBatch(t *testing.T) {
	c, _ := startDHT(t, 5, 2)
	ctx := context.Background()
	keys := make([]string, 80)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%d", i)
		if err := c.Put(ctx, keys[i], []byte(keys[i]+"-v")); err != nil {
			t.Fatal(err)
		}
	}
	got, err := c.GetBatch(ctx, keys)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(keys) {
		t.Fatalf("resolved %d/%d keys", len(got), len(keys))
	}
	for _, k := range keys {
		if string(got[k]) != k+"-v" {
			t.Errorf("GetBatch[%s] = %q", k, got[k])
		}
	}
}

func TestDHTGetBatchAuthoritativeMiss(t *testing.T) {
	c, _ := startDHT(t, 3, 2)
	ctx := context.Background()
	if err := c.Put(ctx, "present", []byte("v")); err != nil {
		t.Fatal(err)
	}
	got, err := c.GetBatch(ctx, []string{"present", "absent-1", "absent-2"})
	if err != nil {
		t.Fatal(err)
	}
	if string(got["present"]) != "v" {
		t.Errorf("present = %q", got["present"])
	}
	if _, ok := got["absent-1"]; ok {
		t.Error("absent key resolved")
	}
	if len(got) != 1 {
		t.Errorf("GetBatch returned %d entries, want 1", len(got))
	}
}

func TestDHTGetBatchSurvivesReplicaLoss(t *testing.T) {
	c, svcs := startDHT(t, 4, 2)
	ctx := context.Background()
	keys := make([]string, 40)
	for i := range keys {
		keys[i] = fmt.Sprintf("node-%d", i)
		if err := c.Put(ctx, keys[i], []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Wipe one provider entirely: every key it was primary for must
	// fall through to its surviving replica in round 2.
	if _, err := svcs[0].Store().DeletePrefix(""); err != nil {
		t.Fatal(err)
	}
	got, err := c.GetBatch(ctx, keys)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		if v, ok := got[k]; !ok || v[0] != byte(i) {
			t.Errorf("key %s lost after replica wipe (got %v, ok=%v)", k, v, ok)
		}
	}
}

func TestDHTGetBatchDeduplicatesKeys(t *testing.T) {
	c, _ := startDHT(t, 3, 1)
	ctx := context.Background()
	if err := c.Put(ctx, "dup", []byte("v")); err != nil {
		t.Fatal(err)
	}
	got, err := c.GetBatch(ctx, []string{"dup", "dup", "dup"})
	if err != nil {
		t.Fatal(err)
	}
	if string(got["dup"]) != "v" || len(got) != 1 {
		t.Errorf("GetBatch = %v", got)
	}
}

// startDHTDown brings up n providers but leaves the last `down` of them
// unreachable (listed in the ring with no listener behind them).
func startDHTDown(t *testing.T, n, down, replicas int) (*Client, []*MetaService) {
	t.Helper()
	net := rpc.NewInprocNetwork()
	addrs := make([]string, n)
	svcs := make([]*MetaService, 0, n-down)
	for i := 0; i < n; i++ {
		addrs[i] = fmt.Sprintf("meta-%d", i)
		if i >= n-down {
			continue // ring member with no daemon: dial fails
		}
		svc := NewMetaService(store.NewMemStore())
		svcs = append(svcs, svc)
		lis, err := net.Listen(addrs[i])
		if err != nil {
			t.Fatal(err)
		}
		srv := rpc.NewServer(svc.Mux())
		go srv.Serve(lis)
		t.Cleanup(func() { srv.Close() })
	}
	pool := rpc.NewPool(net.Dial)
	t.Cleanup(pool.Close)
	return NewClient(NewRing(addrs, 16), pool, replicas), svcs
}

func TestDHTGetMissVsTransportFailure(t *testing.T) {
	// With every replica up, a missing key is an authoritative
	// ErrNotFound. With one replica down, the same lookup must NOT claim
	// not-found: the key might live on the dead provider.
	ctx := context.Background()

	c, _ := startDHT(t, 3, 3)
	_, err := c.Get(ctx, "absent")
	if rpc.CodeOf(err) != CodeNotFound {
		t.Errorf("all-replicas miss: err = %v, want ErrNotFound", err)
	}

	cd, _ := startDHTDown(t, 3, 1, 3)
	_, err = cd.Get(ctx, "absent")
	if err == nil {
		t.Fatal("get with dead replica succeeded")
	}
	if rpc.CodeOf(err) == CodeNotFound {
		t.Errorf("inconclusive miss reported as ErrNotFound: %v", err)
	}

	// GetBatch must apply the same rule.
	_, err = cd.GetBatch(ctx, []string{"absent"})
	if err == nil {
		t.Error("batch get with dead replica treated the miss as authoritative")
	}
}

func TestDHTDeleteParallelStillDeletesEverywhere(t *testing.T) {
	c, svcs := startDHT(t, 5, 3)
	ctx := context.Background()
	for i := 0; i < 30; i++ {
		k := fmt.Sprintf("gc-%d", i)
		if err := c.Put(ctx, k, []byte("x")); err != nil {
			t.Fatal(err)
		}
		if err := c.Delete(ctx, k); err != nil {
			t.Fatal(err)
		}
		for j, s := range svcs {
			if s.Store().Has(k) {
				t.Errorf("replica %d still has %s", j, k)
			}
		}
	}
}

func TestDHTBatchChunksLargeBatches(t *testing.T) {
	// More pairs than maxBatchPairs on a single provider must chunk into
	// several frames and still deliver every pair, both directions.
	c, _ := startDHT(t, 1, 1)
	ctx := context.Background()
	n := maxBatchPairs + maxBatchPairs/2
	kvs := make([]wire.KV, n)
	keys := make([]string, n)
	for i := range kvs {
		keys[i] = fmt.Sprintf("k%d", i)
		kvs[i] = wire.KV{Key: keys[i], Val: []byte{byte(i), byte(i >> 8)}}
	}
	if err := c.PutBatch(ctx, kvs); err != nil {
		t.Fatal(err)
	}
	got, err := c.GetBatch(ctx, keys)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("resolved %d/%d keys", len(got), n)
	}
	for i, k := range keys {
		if v := got[k]; len(v) != 2 || v[0] != byte(i) || v[1] != byte(i>>8) {
			t.Fatalf("key %s = %v", k, v)
		}
	}
}

func TestDHTPutBatchEmpty(t *testing.T) {
	c, _ := startDHT(t, 2, 1)
	if err := c.PutBatch(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	got, err := c.GetBatch(context.Background(), nil)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty GetBatch = %v, %v", got, err)
	}
}
