package provider

import (
	"bytes"
	"context"
	"fmt"
	"sort"
	"testing"

	"blobseer/internal/blob"
	"blobseer/internal/rpc"
	"blobseer/internal/store"
)

// startProviders brings up n chained-capable providers on one inproc
// network sharing a pool (so chains and replication pushes can reach
// each other).
func startProviders(t *testing.T, n int) (*Client, []string, []*Service) {
	t.Helper()
	net := rpc.NewInprocNetwork()
	pool := rpc.NewPool(net.Dial)
	t.Cleanup(pool.Close)
	addrs := make([]string, n)
	svcs := make([]*Service, n)
	for i := 0; i < n; i++ {
		addrs[i] = fmt.Sprintf("prov-%d", i)
		svcs[i] = NewService(store.NewMemStore(), WithForwarder(pool))
		lis, err := net.Listen(addrs[i])
		if err != nil {
			t.Fatal(err)
		}
		srv := rpc.NewServer(svcs[i].Mux())
		go srv.Serve(lis)
		t.Cleanup(func() { srv.Close() })
	}
	return NewClient(pool), addrs, svcs
}

func TestBlockReport(t *testing.T) {
	c, addr, svc := startProvider(t)
	ctx := context.Background()
	keys := []blob.BlockKey{
		{Blob: 1, Nonce: 0xa, Seq: 0},
		{Blob: 1, Nonce: 0xa, Seq: 1},
		{Blob: 2, Nonce: 0xb, Seq: 0},
	}
	for _, k := range keys {
		if err := c.Put(ctx, addr, k, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	// Foreign (non-block) entries in the store are skipped, not mangled.
	if err := svc.Store().Put("t1/2/0/4", []byte("tree node")); err != nil {
		t.Fatal(err)
	}

	got, err := c.BlockReport(ctx, addr, "")
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(got, func(i, j int) bool { return got[i].String() < got[j].String() })
	if len(got) != len(keys) {
		t.Fatalf("BlockReport = %v, want the %d stored blocks", got, len(keys))
	}
	for i, k := range keys {
		if got[i] != k {
			t.Errorf("report[%d] = %v, want %v", i, got[i], k)
		}
	}
	// Prefix-scoped report: one write's blocks only.
	scoped, err := c.BlockReport(ctx, addr, blob.BlockKey{Blob: 1, Nonce: 0xa}.WritePrefix())
	if err != nil || len(scoped) != 2 {
		t.Errorf("scoped BlockReport = %v, %v; want 2 keys", scoped, err)
	}
}

func TestReplicatePushesOverChain(t *testing.T) {
	c, addrs, svcs := startProviders(t, 4)
	ctx := context.Background()
	key := blob.BlockKey{Blob: 3, Nonce: 0xcc, Seq: 0}
	data := bytes.Repeat([]byte("replica!"), 512)
	if err := c.Put(ctx, addrs[0], key, data); err != nil {
		t.Fatal(err)
	}

	// Push from 0 to 2 and 3 in one chained call.
	if err := c.Replicate(ctx, addrs[0], key, []string{addrs[2], addrs[3]}); err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{2, 3} {
		v, err := svcs[i].Store().Get(key.String())
		if err != nil || !bytes.Equal(v, data) {
			t.Errorf("target %d missing replica: %v", i, err)
		}
	}
	if svcs[1].Store().Has(key.String()) {
		t.Error("untargeted provider received the block")
	}

	// Replicating an absent block is a coded not-found, not a transport
	// failure (the repair engine must not mark the source dead).
	err := c.Replicate(ctx, addrs[1], key, []string{addrs[2]})
	if rpc.CodeOf(err) != CodeNotFound {
		t.Errorf("Replicate of absent block = %v, want CodeNotFound", err)
	}
	if rpc.TransportFailure(err) {
		t.Error("not-found misclassified as transport failure")
	}
}

func TestReplicateUnsupportedWithoutForwarder(t *testing.T) {
	// startProvider's service has no forwarder: a tail-only deployment
	// cannot act as a replication source.
	c, addr, _ := startProvider(t)
	ctx := context.Background()
	key := blob.BlockKey{Blob: 1, Nonce: 1, Seq: 0}
	if err := c.Put(ctx, addr, key, []byte("x")); err != nil {
		t.Fatal(err)
	}
	err := c.Replicate(ctx, addr, key, []string{"elsewhere"})
	if rpc.CodeOf(err) != CodeChainUnsupported {
		t.Errorf("Replicate without forwarder = %v, want CodeChainUnsupported", err)
	}
}
