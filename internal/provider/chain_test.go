package provider

import (
	"bytes"
	"context"
	"testing"
	"time"

	"blobseer/internal/blob"
	"blobseer/internal/rpc"
	"blobseer/internal/store"
	"blobseer/internal/wire"
)

// chainCluster starts n providers on one inproc network, all equipped
// to forward chain frames to each other.
func chainCluster(t *testing.T, n int) (*Client, []string, []*Service) {
	t.Helper()
	net := rpc.NewInprocNetwork()
	pool := rpc.NewPool(net.Dial)
	t.Cleanup(pool.Close)
	addrs := make([]string, n)
	svcs := make([]*Service, n)
	for i := 0; i < n; i++ {
		addrs[i] = string(rune('a'+i)) + "-provider"
		svcs[i] = NewService(store.NewMemStore(), WithForwarder(pool))
		lis, err := net.Listen(addrs[i])
		if err != nil {
			t.Fatal(err)
		}
		srv := rpc.NewServer(svcs[i].Mux())
		go srv.Serve(lis)
		t.Cleanup(func() { srv.Close() })
	}
	return NewClient(pool), addrs, svcs
}

func TestPutChainedReachesAllReplicas(t *testing.T) {
	c, addrs, svcs := chainCluster(t, 3)
	ctx := context.Background()
	key := blob.BlockKey{Blob: 1, Nonce: 0xc4a1, Seq: 0}
	data := bytes.Repeat([]byte("streamed-block-"), 700) // 10500 bytes, many frames

	if err := c.PutChained(ctx, addrs, key, data, 1024); err != nil {
		t.Fatal(err)
	}
	for i, svc := range svcs {
		got, err := svc.Store().Get(key.String())
		if err != nil {
			t.Fatalf("replica %d: %v", i, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("replica %d holds wrong bytes (%d vs %d)", i, len(got), len(data))
		}
	}
	// The block reads back through the ordinary path too.
	got, err := c.Get(ctx, addrs[2], key, 0, -1)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("tail read = %d bytes, %v", len(got), err)
	}
}

func TestPutChainedSingleReplicaNeedsNoForwarder(t *testing.T) {
	// A chain of one (replication 1) is a plain streaming put; even a
	// provider with no forwarder must accept it.
	net := rpc.NewInprocNetwork()
	pool := rpc.NewPool(net.Dial)
	defer pool.Close()
	svc := NewService(store.NewMemStore())
	lis, err := net.Listen("solo")
	if err != nil {
		t.Fatal(err)
	}
	srv := rpc.NewServer(svc.Mux())
	go srv.Serve(lis)
	defer srv.Close()

	c := NewClient(pool)
	key := blob.BlockKey{Blob: 2, Nonce: 1, Seq: 0}
	data := []byte("single replica payload")
	if err := c.PutChained(context.Background(), []string{"solo"}, key, data, 8); err != nil {
		t.Fatal(err)
	}
	got, err := svc.Store().Get(key.String())
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("stored = %q, %v", got, err)
	}
}

func TestPutChainedMidChainFailurePropagates(t *testing.T) {
	c, addrs, svcs := chainCluster(t, 3)
	ctx := context.Background()
	key := blob.BlockKey{Blob: 3, Nonce: 7, Seq: 0}
	data := bytes.Repeat([]byte{0xEE}, 4096)

	// An unreachable middle hop: the head's forward fails, the error
	// travels back as CodeChainFail, and the head aborts its partial
	// upload so no half-written block becomes visible.
	chain := []string{addrs[0], "nowhere", addrs[2]}
	err := c.PutChained(ctx, chain, key, data, 1024)
	if err == nil {
		t.Fatal("chained put through unreachable hop succeeded")
	}
	if rpc.CodeOf(err) != CodeChainFail {
		t.Errorf("error code = %d, want CodeChainFail", rpc.CodeOf(err))
	}
	for i, svc := range svcs {
		if svc.Store().Has(key.String()) {
			t.Errorf("replica %d committed a block from a failed chain", i)
		}
		if st := svc.Store().Stats(); st.Items != 0 {
			t.Errorf("replica %d leaked %d items", i, st.Items)
		}
	}
	// The head's upload table must not leak the aborted transfer. The
	// client cancels its remaining frames on the first error, so
	// abandoned handlers may still be mid-abort briefly — poll.
	deadline := time.Now().Add(2 * time.Second)
	for {
		svcs[0].mu.Lock()
		n := len(svcs[0].uploads)
		svcs[0].mu.Unlock()
		if n == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d dangling uploads after failed chain", n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestPutChainedRefusedWithoutForwarder(t *testing.T) {
	net := rpc.NewInprocNetwork()
	pool := rpc.NewPool(net.Dial)
	defer pool.Close()
	svc := NewService(store.NewMemStore()) // no forwarder
	lis, err := net.Listen("tailless")
	if err != nil {
		t.Fatal(err)
	}
	srv := rpc.NewServer(svc.Mux())
	go srv.Serve(lis)
	defer srv.Close()

	c := NewClient(pool)
	err = c.PutChained(context.Background(), []string{"tailless", "downstream"},
		blob.BlockKey{Blob: 4, Nonce: 1}, []byte("x"), 0)
	if err == nil {
		t.Fatal("chained put with downstream replicas accepted by forwarderless provider")
	}
	// The refusal is CodeChainUnsupported — a permanent property of the
	// provider that clients cache to stop attempting chains there.
	if rpc.CodeOf(err) != CodeChainUnsupported {
		t.Errorf("error code = %d, want CodeChainUnsupported", rpc.CodeOf(err))
	}
}

func TestBreakChainInjection(t *testing.T) {
	c, addrs, svcs := chainCluster(t, 2)
	ctx := context.Background()
	key := blob.BlockKey{Blob: 5, Nonce: 9, Seq: 0}

	svcs[1].BreakChain(true)
	err := c.PutChained(ctx, addrs, key, []byte("payload"), 0)
	if err == nil || rpc.CodeOf(err) != CodeChainFail {
		t.Fatalf("broken tail: err = %v, want CodeChainFail", err)
	}
	// Commits are gated on downstream acks: the head must not have
	// published a block whose tail never stored it.
	if svcs[0].Store().Has(key.String()) {
		t.Fatal("head committed a block its broken tail never acked")
	}
	// Plain puts are unaffected — that is what the fallback relies on.
	if err := c.Put(ctx, addrs[1], key, []byte("payload")); err != nil {
		t.Fatalf("plain put to chain-broken provider: %v", err)
	}
	// After unbreaking, a fresh write (fresh nonce, as real clients
	// always use) chains normally; the failed key stays tombstoned.
	svcs[1].BreakChain(false)
	fresh := blob.BlockKey{Blob: 5, Nonce: 10, Seq: 0}
	if err := c.PutChained(ctx, addrs, fresh, []byte("payload"), 0); err != nil {
		t.Fatalf("chain after unbreak: %v", err)
	}
}

func TestPutChainedConcurrentBlocks(t *testing.T) {
	// Many blocks streaming down overlapping chains concurrently: the
	// per-key upload tracking must not mix frames across blocks.
	c, addrs, svcs := chainCluster(t, 3)
	ctx := context.Background()
	const blocks = 16
	errs := make(chan error, blocks)
	for i := 0; i < blocks; i++ {
		go func(i int) {
			key := blob.BlockKey{Blob: 9, Nonce: 0xbeef, Seq: uint32(i)}
			data := bytes.Repeat([]byte{byte(i)}, 3000+i)
			if err := c.PutChained(ctx, addrs, key, data, 512); err != nil {
				errs <- err
				return
			}
			for _, svc := range svcs {
				got, err := svc.Store().Get(key.String())
				if err != nil || !bytes.Equal(got, data) {
					errs <- err
					return
				}
			}
			errs <- nil
		}(i)
	}
	for i := 0; i < blocks; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestDeleteWriteTombstonesInFlightChains(t *testing.T) {
	c, addrs, svcs := chainCluster(t, 2)
	ctx := context.Background()
	key := blob.BlockKey{Blob: 6, Nonce: 0xdead, Seq: 0}
	data := bytes.Repeat([]byte{1}, 4096)

	// Deliver part of the block, then GC the write (as a client whose
	// write failed does), then let a straggler frame arrive: it must
	// not resurrect the block.
	head := svcs[0]
	if err := head.applyFrame(key, chunkOf(data, 0, 1024)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.DeleteWrite(ctx, addrs[0], key.Blob, key.Nonce); err != nil {
		t.Fatal(err)
	}
	err := c.PutChained(ctx, addrs[:1], key, data, 0)
	if err == nil || rpc.CodeOf(err) != CodeChainFail {
		t.Fatalf("straggler frame after DeleteWrite: err = %v, want CodeChainFail", err)
	}
	if head.Store().Has(key.String()) {
		t.Fatal("garbage-collected write resurrected by straggler chain frame")
	}
	// A fresh write (new nonce) is unaffected.
	fresh := blob.BlockKey{Blob: 6, Nonce: 0xbeef, Seq: 0}
	if err := c.PutChained(ctx, addrs, fresh, data, 0); err != nil {
		t.Fatal(err)
	}
}

// chunkOf builds one frame of data for white-box handler tests.
func chunkOf(data []byte, off, end int) wire.Chunk {
	return wire.Chunk{Off: int64(off), Total: int64(len(data)), Data: data[off:end]}
}

func TestChainFrameRejectsAbsurdTotal(t *testing.T) {
	// A tiny frame claiming a huge Total must be refused before any
	// allocation, mirroring wire.MaxFrameSize's corrupt-peer bound.
	svc := NewService(store.NewMemStore())
	for _, total := range []int64{1<<40 + 1, int64(wire.MaxFrameSize) + 1} {
		b := wire.NewBuffer(64)
		encodeKey(b, blob.BlockKey{Blob: 7, Nonce: 1})
		b.StringSlice(nil)
		b.Chunk(wire.Chunk{Off: total - 1, Total: total, Data: []byte{1}})
		if _, err := svc.handlePutChained(context.Background(), b.Bytes()); err == nil {
			t.Fatalf("frame with total %d accepted", total)
		}
	}
	if st := svc.Store().Stats(); st.Items != 0 || st.Bytes != 0 {
		t.Errorf("rejected frames left state: %+v", st)
	}
}

func TestChainSplitsAroundTailOnlyHop(t *testing.T) {
	// Mixed-version deployment: the middle replica has no forwarder.
	// The upstream hop must discover that, serve it chain-less, and
	// drive the rest of the chain itself — the write still succeeds
	// with every replica holding the block, no client fallback needed.
	net := rpc.NewInprocNetwork()
	pool := rpc.NewPool(net.Dial)
	t.Cleanup(pool.Close)
	names := []string{"head", "tailonly", "tail"}
	svcs := make([]*Service, 3)
	for i, name := range names {
		if name == "tailonly" {
			svcs[i] = NewService(store.NewMemStore()) // no forwarder
		} else {
			svcs[i] = NewService(store.NewMemStore(), WithForwarder(pool))
		}
		lis, err := net.Listen(name)
		if err != nil {
			t.Fatal(err)
		}
		srv := rpc.NewServer(svcs[i].Mux())
		go srv.Serve(lis)
		t.Cleanup(func() { srv.Close() })
	}
	c := NewClient(pool)
	ctx := context.Background()
	data := bytes.Repeat([]byte{0x42}, 6000)
	for seq := uint32(0); seq < 2; seq++ { // second block uses the cached split
		key := blob.BlockKey{Blob: 8, Nonce: 0xf00d, Seq: seq}
		if err := c.PutChained(ctx, names, key, data, 1024); err != nil {
			t.Fatalf("block %d: %v", seq, err)
		}
		for i, svc := range svcs {
			got, err := svc.Store().Get(key.String())
			if err != nil || !bytes.Equal(got, data) {
				t.Fatalf("block %d replica %s: %d bytes, %v", seq, names[i], len(got), err)
			}
		}
	}
}
