package provider

import (
	"context"
	"errors"
	"testing"

	"blobseer/internal/blob"
	"blobseer/internal/rpc"
	"blobseer/internal/store"
)

func startProvider(t *testing.T) (*Client, string, *Service) {
	t.Helper()
	n := rpc.NewInprocNetwork()
	svc := NewService(store.NewMemStore())
	lis, err := n.Listen("provider-1")
	if err != nil {
		t.Fatal(err)
	}
	srv := rpc.NewServer(svc.Mux())
	go srv.Serve(lis)
	t.Cleanup(func() { srv.Close() })
	pool := rpc.NewPool(n.Dial)
	t.Cleanup(pool.Close)
	return NewClient(pool), "provider-1", svc
}

func TestPutGetBlock(t *testing.T) {
	c, addr, _ := startProvider(t)
	ctx := context.Background()
	key := blob.BlockKey{Blob: 1, Nonce: 0xabc, Seq: 0}
	data := []byte("block contents here")

	if err := c.Put(ctx, addr, key, data); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get(ctx, addr, key, 0, -1)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(data) {
		t.Errorf("Get = %q", got)
	}
}

func TestGetSubRange(t *testing.T) {
	// Fine-grain access (Section III-C: unaligned extremal blocks are
	// fetched partially).
	c, addr, _ := startProvider(t)
	ctx := context.Background()
	key := blob.BlockKey{Blob: 1, Nonce: 1, Seq: 2}
	if err := c.Put(ctx, addr, key, []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get(ctx, addr, key, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "456" {
		t.Errorf("subrange = %q", got)
	}
}

func TestGetMissingBlock(t *testing.T) {
	c, addr, _ := startProvider(t)
	_, err := c.Get(context.Background(), addr, blob.BlockKey{Blob: 9}, 0, -1)
	if err == nil {
		t.Fatal("missing block read succeeded")
	}
	if rpc.CodeOf(err) != CodeNotFound {
		t.Errorf("code = %d, want CodeNotFound", rpc.CodeOf(err))
	}
}

func TestHasBlock(t *testing.T) {
	c, addr, _ := startProvider(t)
	ctx := context.Background()
	key := blob.BlockKey{Blob: 2, Nonce: 5, Seq: 0}
	ok, err := c.Has(ctx, addr, key)
	if err != nil || ok {
		t.Fatalf("Has before put = %v, %v", ok, err)
	}
	c.Put(ctx, addr, key, []byte("x"))
	ok, err = c.Has(ctx, addr, key)
	if err != nil || !ok {
		t.Fatalf("Has after put = %v, %v", ok, err)
	}
}

func TestDeleteWriteGC(t *testing.T) {
	c, addr, svc := startProvider(t)
	ctx := context.Background()
	// Two writes (nonces) on the same blob, plus one on another blob.
	for seq := uint32(0); seq < 3; seq++ {
		c.Put(ctx, addr, blob.BlockKey{Blob: 1, Nonce: 0xaa, Seq: seq}, []byte("a"))
	}
	c.Put(ctx, addr, blob.BlockKey{Blob: 1, Nonce: 0xbb, Seq: 0}, []byte("b"))
	c.Put(ctx, addr, blob.BlockKey{Blob: 2, Nonce: 0xaa, Seq: 0}, []byte("c"))

	n, err := c.DeleteWrite(ctx, addr, 1, 0xaa)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("deleted %d, want 3", n)
	}
	if st := svc.Store().Stats(); st.Items != 2 {
		t.Errorf("remaining items = %d, want 2", st.Items)
	}
	// Nonce prefix must not collide: 0xa must not match 0xaa keys.
	c.Put(ctx, addr, blob.BlockKey{Blob: 3, Nonce: 0xaa, Seq: 0}, []byte("d"))
	n, err = c.DeleteWrite(ctx, addr, 3, 0xa)
	if err != nil || n != 0 {
		t.Errorf("prefix collision: deleted %d (err %v), want 0", n, err)
	}
}

func TestStat(t *testing.T) {
	c, addr, _ := startProvider(t)
	ctx := context.Background()
	c.Put(ctx, addr, blob.BlockKey{Blob: 1, Nonce: 1, Seq: 0}, make([]byte, 1000))
	st, err := c.Stat(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	if st.Items != 1 || st.Bytes != 1000 {
		t.Errorf("stats = %+v", st)
	}
}

func TestDialFailure(t *testing.T) {
	pool := rpc.NewPool(rpc.NewInprocNetwork().Dial)
	defer pool.Close()
	c := NewClient(pool)
	if err := c.Put(context.Background(), "nowhere", blob.BlockKey{}, nil); err == nil {
		t.Fatal("put to unreachable provider succeeded")
	}
	var re *rpc.RemoteError
	if errors.As(errors.New("x"), &re) {
		t.Fatal("sanity")
	}
}
