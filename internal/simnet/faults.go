package simnet

import (
	"fmt"

	"blobseer/internal/sim"
)

// faults.go — fault injection for the fabric: per-pair extra latency,
// deterministic message drops, and partitions. The chaos experiments
// (crash-recovery under a degraded network, Section V's failure
// scenarios) drive these knobs; the fluid-flow model underneath is
// unchanged. All faults are symmetric over an unordered node pair and
// free when unused: the fault table is nil until the first injection.

type pairKey struct{ a, b NodeID }

func keyOf(a, b NodeID) pairKey {
	if a > b {
		a, b = b, a
	}
	return pairKey{a, b}
}

type fault struct {
	extraLatency sim.Time
	partitioned  bool
	healed       *sim.Event // armed while partitioned; fired by Heal
	dropEvery    int        // every Nth Message pays the retransmit penalty
	dropPenalty  sim.Time
	msgCount     int
}

// faultOf returns the fault record for (a, b), nil when none exists.
func (n *Net) faultOf(a, b NodeID) *fault {
	if n.faults == nil {
		return nil
	}
	return n.faults[keyOf(a, b)]
}

func (n *Net) ensureFault(a, b NodeID) *fault {
	n.checkNode(a)
	n.checkNode(b)
	if a == b {
		panic(fmt.Sprintf("simnet: cannot inject a fault between node %d and itself", a))
	}
	if n.faults == nil {
		n.faults = make(map[pairKey]*fault)
	}
	k := keyOf(a, b)
	f := n.faults[k]
	if f == nil {
		f = &fault{}
		n.faults[k] = f
	}
	return f
}

// SetExtraLatency adds d of one-way latency to every transfer and
// message between a and b (on top of the fabric's base latency),
// modeling a degraded or cross-switch link. d = 0 clears it.
func (n *Net) SetExtraLatency(a, b NodeID, d sim.Time) {
	n.ensureFault(a, b).extraLatency = d
}

// SetMessageDrop makes every Nth control message between a and b pay
// penalty of extra delay — the flow-level stand-in for a dropped
// packet and its retransmission timeout. every = 0 clears the fault;
// penalty <= 0 defaults to one round trip at base latency.
func (n *Net) SetMessageDrop(a, b NodeID, every int, penalty sim.Time) {
	f := n.ensureFault(a, b)
	if penalty <= 0 {
		penalty = 2 * n.cfg.Latency
	}
	f.dropEvery = every
	f.dropPenalty = penalty
	f.msgCount = 0
}

// Partition cuts the link between a and b: in-flight transfers stall
// at their current progress, new transfers make no progress, and
// messages block — all until Heal. Idempotent.
func (n *Net) Partition(a, b NodeID) {
	f := n.ensureFault(a, b)
	if f.partitioned {
		return
	}
	f.partitioned = true
	f.healed = n.env.NewEvent()
	// Re-solve the rate allocation: partitioned flows drop to zero and
	// stop counting against their links, so bystander flows speed up.
	n.advance()
	n.recalc()
}

// Heal restores the link between a and b: stalled transfers resume
// and blocked messages proceed. Idempotent; healing an un-partitioned
// pair is a no-op.
func (n *Net) Heal(a, b NodeID) {
	f := n.faultOf(a, b)
	if f == nil || !f.partitioned {
		return
	}
	f.partitioned = false
	f.healed.Fire()
	n.advance()
	n.recalc()
}

// Partitioned reports whether the link between a and b is cut.
func (n *Net) Partitioned(a, b NodeID) bool {
	f := n.faultOf(a, b)
	return f != nil && f.partitioned
}

// latencyBetween is the one-way latency for the (a, b) link including
// any injected degradation.
func (n *Net) latencyBetween(a, b NodeID) sim.Time {
	d := n.cfg.Latency
	if f := n.faultOf(a, b); f != nil {
		d += f.extraLatency
	}
	return d
}

// stalled reports whether a non-local flow is currently partitioned.
func (n *Net) stalled(f *flow) bool {
	if f.local {
		return false
	}
	return n.Partitioned(f.src, f.dst)
}

// awaitHealed blocks p while the (src, dst) link is partitioned. The
// loop re-checks after every wake: the pair may have been partitioned
// again before p was scheduled.
func (n *Net) awaitHealed(p *sim.Proc, src, dst NodeID) {
	for {
		f := n.faultOf(src, dst)
		if f == nil || !f.partitioned {
			return
		}
		f.healed.Wait(p)
	}
}
