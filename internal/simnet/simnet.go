// Package simnet is a flow-level network model over the sim kernel:
// the stand-in for Grid'5000's 1 Gbit/s cluster fabric (Section V-A:
// measured 117.5 MB/s per TCP stream, 0.1 ms latency). Transfers are
// fluid flows; active flows share each node's uplink and downlink
// capacity max-min fairly, with optional per-flow rate caps modeling
// single-stream protocol efficiency. Bandwidth contention — the
// quantity every figure of the paper ultimately measures — emerges from
// this model plus the real placement logic.
package simnet

import (
	"fmt"
	"math"

	"blobseer/internal/sim"
)

// NodeID indexes a simulated machine.
type NodeID int

// Config describes the fabric.
type Config struct {
	Nodes   int
	UpBps   float64  // uplink capacity, bytes/sec
	DownBps float64  // downlink capacity, bytes/sec
	DiskBps float64  // per-node storage-medium capacity (0 = unmodeled)
	Latency sim.Time // one-way message latency
}

// Grid5000 returns the paper's testbed parameters: 117.5 MB/s measured
// TCP throughput per link, 0.1 ms intracluster latency, and a
// 2010-era sequential-disk medium behind every node. The disk capacity
// is what makes a handful of chunk-hoarding datanodes a bottleneck
// under concurrent reads (Figures 4 and 6b).
func Grid5000(nodes int) Config {
	const linkBps = 117.5 * 1e6
	return Config{
		Nodes:   nodes,
		UpBps:   linkBps,
		DownBps: linkBps,
		DiskBps: 85e6,
		Latency: 100 * sim.Microsecond,
	}
}

type flow struct {
	src, dst  NodeID
	disk      NodeID // node whose storage medium serves this flow (-1 = none)
	local     bool   // src == dst: no network legs, disk only
	remaining float64
	rate      float64
	cap       float64 // per-flow ceiling (0 = none)
	done      *sim.Event
}

// Net is the fabric.
type Net struct {
	env   *sim.Env
	cfg   Config
	flows map[*flow]struct{}

	lastUpdate sim.Time
	gen        uint64 // invalidates stale completion callbacks

	// faults holds injected link degradations keyed by unordered node
	// pair; nil until the first injection (see faults.go).
	faults map[pairKey]*fault

	// Stats
	BytesMoved float64
	egress     []float64 // per-node bytes sent over the uplink
	ingress    []float64 // per-node bytes received over the downlink
}

// New builds a fabric in env.
func New(env *sim.Env, cfg Config) *Net {
	if cfg.Nodes <= 0 {
		panic("simnet: need at least one node")
	}
	return &Net{
		env: env, cfg: cfg, flows: make(map[*flow]struct{}),
		egress:  make([]float64, cfg.Nodes),
		ingress: make([]float64, cfg.Nodes),
	}
}

// EgressOf returns the bytes node id has sent over its uplink so far —
// the per-node accounting behind the data plane's billing claims
// (local disk-only flows do not count).
func (n *Net) EgressOf(id NodeID) float64 {
	n.checkNode(id)
	return n.egress[id]
}

// IngressOf returns the bytes node id has received over its downlink.
func (n *Net) IngressOf(id NodeID) float64 {
	n.checkNode(id)
	return n.ingress[id]
}

// Env returns the owning simulation.
func (n *Net) Env() *sim.Env { return n.env }

// Config returns the fabric parameters.
func (n *Net) Config() Config { return n.cfg }

// Transfer moves size bytes from src to dst, blocking p until the flow
// completes. rateCap (bytes/sec) bounds this flow's rate; 0 means
// link-limited only. A latency charge precedes the flow. Local
// transfers (src == dst) cost nothing; use TransferDisk to bill the
// storage medium.
func (n *Net) Transfer(p *sim.Proc, src, dst NodeID, size int64, rateCap float64) {
	n.transfer(p, src, dst, size, rateCap, -1)
}

// TransferDisk is Transfer with the storage medium of node disk in the
// flow's path: the flow additionally shares that node's DiskBps with
// every other flow served by the same medium. Reads bill the serving
// node, writes the receiving node. src == dst is allowed and models a
// purely local, disk-bound access.
func (n *Net) TransferDisk(p *sim.Proc, src, dst NodeID, size int64, rateCap float64, disk NodeID) {
	n.checkNode(disk)
	n.transfer(p, src, dst, size, rateCap, disk)
}

func (n *Net) transfer(p *sim.Proc, src, dst NodeID, size int64, rateCap float64, disk NodeID) {
	local := src == dst
	if local && (disk < 0 || n.cfg.DiskBps <= 0) {
		// Local access with no disk model: free (page-cache speed).
		return
	}
	n.checkNode(src)
	n.checkNode(dst)
	if size <= 0 {
		if !local {
			n.awaitHealed(p, src, dst)
			p.Sleep(n.latencyBetween(src, dst))
		}
		return
	}
	if !local {
		n.awaitHealed(p, src, dst)
		p.Sleep(n.latencyBetween(src, dst))
	}
	if n.cfg.DiskBps <= 0 {
		disk = -1
	}
	f := &flow{src: src, dst: dst, disk: disk, local: local,
		remaining: float64(size), cap: rateCap, done: n.env.NewEvent()}
	n.advance()
	n.flows[f] = struct{}{}
	n.recalc()
	f.done.Wait(p)
}

// Message charges one request/response latency pair plus the (tiny)
// payload serialization — the cost model for control RPCs (version
// manager, metadata provider, namenode ops).
func (n *Net) Message(p *sim.Proc, src, dst NodeID, bytes int64) {
	if src == dst {
		return
	}
	n.checkNode(src)
	n.checkNode(dst)
	n.awaitHealed(p, src, dst)
	d := 2 * n.latencyBetween(src, dst)
	if bytes > 0 && n.cfg.UpBps > 0 {
		d += sim.DurationFromSeconds(float64(bytes) / n.cfg.UpBps)
	}
	if f := n.faultOf(src, dst); f != nil && f.dropEvery > 0 {
		f.msgCount++
		if f.msgCount%f.dropEvery == 0 {
			d += f.dropPenalty
		}
	}
	p.Sleep(d)
}

func (n *Net) checkNode(id NodeID) {
	if id < 0 || int(id) >= n.cfg.Nodes {
		panic(fmt.Sprintf("simnet: node %d out of range [0,%d)", id, n.cfg.Nodes))
	}
}

// advance applies progress at current rates since the last update.
func (n *Net) advance() {
	dt := (n.env.Now() - n.lastUpdate).Seconds()
	n.lastUpdate = n.env.Now()
	if dt <= 0 {
		return
	}
	for f := range n.flows {
		moved := f.rate * dt
		if moved > f.remaining {
			moved = f.remaining
		}
		f.remaining -= moved
		n.BytesMoved += moved
		if !f.local {
			n.egress[f.src] += moved
			n.ingress[f.dst] += moved
		}
	}
}

// recalc runs progressive filling (max-min fairness with per-flow
// caps), then schedules the next completion callback.
func (n *Net) recalc() {
	type link struct {
		capacity float64
		nFlows   int
	}
	up := make([]link, n.cfg.Nodes)
	down := make([]link, n.cfg.Nodes)
	disk := make([]link, n.cfg.Nodes)
	for i := range up {
		up[i].capacity = n.cfg.UpBps
		down[i].capacity = n.cfg.DownBps
		disk[i].capacity = n.cfg.DiskBps
	}
	unfrozen := make(map[*flow]struct{}, len(n.flows))
	for f := range n.flows {
		f.rate = 0
		if n.stalled(f) {
			// Partitioned: zero rate, and no claim on any link share —
			// bystander flows get the freed capacity.
			continue
		}
		unfrozen[f] = struct{}{}
		if !f.local {
			up[f.src].nFlows++
			down[f.dst].nFlows++
		}
		if f.disk >= 0 {
			disk[f.disk].nFlows++
		}
	}
	for len(unfrozen) > 0 {
		// The binding constraint this round: the smallest of all link
		// fair shares and all per-flow caps.
		bind := math.Inf(1)
		for i := range up {
			if up[i].nFlows > 0 {
				bind = math.Min(bind, up[i].capacity/float64(up[i].nFlows))
			}
			if down[i].nFlows > 0 {
				bind = math.Min(bind, down[i].capacity/float64(down[i].nFlows))
			}
			if disk[i].nFlows > 0 {
				bind = math.Min(bind, disk[i].capacity/float64(disk[i].nFlows))
			}
		}
		for f := range unfrozen {
			if f.cap > 0 {
				bind = math.Min(bind, f.cap)
			}
		}
		if math.IsInf(bind, 1) || bind < 0 {
			break
		}
		// Freeze every flow touching a binding constraint at `bind`.
		frozeAny := false
		for f := range unfrozen {
			binding := false
			if !f.local {
				if up[f.src].capacity/float64(up[f.src].nFlows) <= bind+1e-9 {
					binding = true
				}
				if down[f.dst].capacity/float64(down[f.dst].nFlows) <= bind+1e-9 {
					binding = true
				}
			}
			if f.disk >= 0 && disk[f.disk].capacity/float64(disk[f.disk].nFlows) <= bind+1e-9 {
				binding = true
			}
			if f.cap > 0 && f.cap <= bind+1e-9 {
				binding = true
			}
			if binding {
				f.rate = bind
				delete(unfrozen, f)
				if !f.local {
					up[f.src].capacity -= bind
					up[f.src].nFlows--
					down[f.dst].capacity -= bind
					down[f.dst].nFlows--
				}
				if f.disk >= 0 {
					disk[f.disk].capacity -= bind
					disk[f.disk].nFlows--
				}
				frozeAny = true
			}
		}
		if !frozeAny {
			// Numerical corner: freeze everything at the bound.
			for f := range unfrozen {
				f.rate = bind
				delete(unfrozen, f)
			}
		}
	}
	n.scheduleNextCompletion()
}

// scheduleNextCompletion arms a callback at the earliest flow finish.
func (n *Net) scheduleNextCompletion() {
	n.gen++
	gen := n.gen
	next := sim.Time(math.MaxInt64)
	found := false
	for f := range n.flows {
		if f.rate <= 0 {
			continue
		}
		// Round the ETA up: truncating would leave a sub-nanosecond
		// residue whose next callback fires after zero virtual time,
		// making no progress and re-arming itself forever.
		d := sim.Time(math.Ceil(f.remaining / f.rate * float64(sim.Second)))
		if d < 1 {
			d = 1
		}
		eta := n.env.Now() + d
		if eta < next {
			next = eta
			found = true
		}
	}
	if !found {
		return
	}
	delay := next - n.env.Now()
	if delay < 0 {
		delay = 0
	}
	n.env.Call(delay, func() {
		if gen != n.gen {
			return // a newer recalc superseded this callback
		}
		n.advance()
		const eps = 1e-6
		for f := range n.flows {
			if f.remaining <= eps {
				delete(n.flows, f)
				f.done.Fire()
			}
		}
		n.recalc()
	})
}

// ActiveFlows returns the number of in-flight transfers (tests).
func (n *Net) ActiveFlows() int { return len(n.flows) }
