package simnet

import (
	"math"
	"testing"

	"blobseer/internal/sim"
)

// cfg: 100 MB/s links, zero latency for exact arithmetic.
func testCfg(nodes int) Config {
	return Config{Nodes: nodes, UpBps: 100e6, DownBps: 100e6, Latency: 0}
}

func TestSingleFlowLinkLimited(t *testing.T) {
	env := sim.NewEnv()
	net := New(env, testCfg(2))
	var done sim.Time
	env.Go(func(p *sim.Proc) {
		net.Transfer(p, 0, 1, 100e6, 0) // 100 MB over a 100 MB/s link
		done = p.Now()
	})
	env.Run()
	if got := done.Seconds(); math.Abs(got-1.0) > 1e-6 {
		t.Errorf("transfer took %.6fs, want 1.0s", got)
	}
}

func TestPerFlowRateCap(t *testing.T) {
	env := sim.NewEnv()
	net := New(env, testCfg(2))
	var done sim.Time
	env.Go(func(p *sim.Proc) {
		net.Transfer(p, 0, 1, 100e6, 50e6) // capped at half the link
		done = p.Now()
	})
	env.Run()
	if got := done.Seconds(); math.Abs(got-2.0) > 1e-6 {
		t.Errorf("capped transfer took %.6fs, want 2.0s", got)
	}
}

func TestFairSharingOnSharedUplink(t *testing.T) {
	// Two flows from node 0 to distinct destinations share 0's uplink:
	// each gets 50 MB/s, so 50 MB each takes 1s.
	env := sim.NewEnv()
	net := New(env, testCfg(3))
	var d1, d2 sim.Time
	env.Go(func(p *sim.Proc) {
		net.Transfer(p, 0, 1, 50e6, 0)
		d1 = p.Now()
	})
	env.Go(func(p *sim.Proc) {
		net.Transfer(p, 0, 2, 50e6, 0)
		d2 = p.Now()
	})
	env.Run()
	if math.Abs(d1.Seconds()-1.0) > 1e-6 || math.Abs(d2.Seconds()-1.0) > 1e-6 {
		t.Errorf("shared uplink: %.6fs / %.6fs, want 1.0/1.0", d1.Seconds(), d2.Seconds())
	}
}

func TestRateReallocationAfterCompletion(t *testing.T) {
	// Flow A: 50 MB, flow B: 100 MB, same uplink. Phase 1 (1s): both at
	// 50 MB/s; A finishes having moved 50 MB, B has 50 MB left. Phase 2:
	// B alone at 100 MB/s -> 0.5s more. B completes at 1.5s.
	env := sim.NewEnv()
	net := New(env, testCfg(3))
	var dA, dB sim.Time
	env.Go(func(p *sim.Proc) {
		net.Transfer(p, 0, 1, 50e6, 0)
		dA = p.Now()
	})
	env.Go(func(p *sim.Proc) {
		net.Transfer(p, 0, 2, 100e6, 0)
		dB = p.Now()
	})
	env.Run()
	if math.Abs(dA.Seconds()-1.0) > 1e-6 {
		t.Errorf("A finished at %.6fs, want 1.0", dA.Seconds())
	}
	if math.Abs(dB.Seconds()-1.5) > 1e-6 {
		t.Errorf("B finished at %.6fs, want 1.5", dB.Seconds())
	}
}

func TestDownlinkBottleneck(t *testing.T) {
	// Two senders into one receiver: receiver downlink shared.
	env := sim.NewEnv()
	net := New(env, testCfg(3))
	var d1, d2 sim.Time
	env.Go(func(p *sim.Proc) {
		net.Transfer(p, 0, 2, 50e6, 0)
		d1 = p.Now()
	})
	env.Go(func(p *sim.Proc) {
		net.Transfer(p, 1, 2, 50e6, 0)
		d2 = p.Now()
	})
	env.Run()
	if math.Abs(d1.Seconds()-1.0) > 1e-6 || math.Abs(d2.Seconds()-1.0) > 1e-6 {
		t.Errorf("downlink sharing: %.6f/%.6f", d1.Seconds(), d2.Seconds())
	}
}

func TestMaxMinUnevenShares(t *testing.T) {
	// Node 0 sends to 1 and 2; node 3 also sends to 2. Node 2's
	// downlink carries two flows (50 each); flow 0->1 then picks up
	// the leftover of 0's uplink (50). All equal here; now cap flow
	// 0->2 at 20: flow 0->1 should get 80 (uplink leftover), flow 3->2
	// should get 80 (downlink leftover).
	env := sim.NewEnv()
	net := New(env, testCfg(4))
	rate := func(bytes float64, at sim.Time) float64 { return bytes / at.Seconds() }
	var t01, t02, t32 sim.Time
	env.Go(func(p *sim.Proc) { net.Transfer(p, 0, 1, 80e6, 0); t01 = p.Now() })
	env.Go(func(p *sim.Proc) { net.Transfer(p, 0, 2, 20e6, 20e6); t02 = p.Now() })
	env.Go(func(p *sim.Proc) { net.Transfer(p, 3, 2, 80e6, 0); t32 = p.Now() })
	env.Run()
	// All three should finish at 1s exactly under max-min.
	for name, at := range map[string]sim.Time{"0->1": t01, "0->2": t02, "3->2": t32} {
		if math.Abs(at.Seconds()-1.0) > 1e-6 {
			t.Errorf("flow %s finished at %.6f, want 1.0", name, at.Seconds())
		}
	}
	_ = rate
}

func TestConservationProperty(t *testing.T) {
	// Total bytes moved equals total bytes requested, whatever the
	// contention pattern.
	env := sim.NewEnv()
	net := New(env, testCfg(6))
	total := 0.0
	sizes := []int64{10e6, 25e6, 40e6, 5e6, 60e6, 33e6, 21e6}
	for i, s := range sizes {
		i, s := i, s
		total += float64(s)
		env.Go(func(p *sim.Proc) {
			p.Sleep(sim.Time(i) * 100 * sim.Millisecond) // staggered starts
			net.Transfer(p, NodeID(i%3), NodeID(3+i%3), s, 0)
		})
	}
	env.Run()
	if math.Abs(net.BytesMoved-total) > 1 {
		t.Errorf("moved %.0f bytes, want %.0f", net.BytesMoved, total)
	}
	if net.ActiveFlows() != 0 {
		t.Errorf("%d flows leaked", net.ActiveFlows())
	}
}

func TestLatencyCharged(t *testing.T) {
	env := sim.NewEnv()
	cfg := testCfg(2)
	cfg.Latency = 100 * sim.Microsecond
	net := New(env, cfg)
	var done sim.Time
	env.Go(func(p *sim.Proc) {
		net.Message(p, 0, 1, 0) // pure RTT
		done = p.Now()
	})
	env.Run()
	if done != 200*sim.Microsecond {
		t.Errorf("message RTT = %v, want 200µs", done)
	}
}

func TestLocalTransferFree(t *testing.T) {
	env := sim.NewEnv()
	net := New(env, testCfg(2))
	var done sim.Time
	env.Go(func(p *sim.Proc) {
		net.Transfer(p, 1, 1, 1e9, 0)
		net.Message(p, 1, 1, 100)
		done = p.Now()
	})
	env.Run()
	if done != 0 {
		t.Errorf("local transfer cost %v", done)
	}
}

func TestGrid5000Parameters(t *testing.T) {
	cfg := Grid5000(270)
	if cfg.Nodes != 270 || cfg.Latency != 100*sim.Microsecond {
		t.Errorf("cfg = %+v", cfg)
	}
	if math.Abs(cfg.UpBps-117.5e6) > 1 {
		t.Errorf("link speed = %v", cfg.UpBps)
	}
}

func TestManyConcurrentFlowsAggregate(t *testing.T) {
	// N disjoint pairs: aggregate bandwidth scales with N (the Figure 5
	// phenomenon in its purest form).
	env := sim.NewEnv()
	const N = 50
	net := New(env, testCfg(2*N))
	for i := 0; i < N; i++ {
		i := i
		env.Go(func(p *sim.Proc) {
			net.Transfer(p, NodeID(i), NodeID(N+i), 100e6, 0)
		})
	}
	end := env.Run()
	// Each pair independent: all finish in 1s.
	if math.Abs(end.Seconds()-1.0) > 1e-6 {
		t.Errorf("end = %.6fs, want 1.0 (no false contention)", end.Seconds())
	}
}

func TestPerNodeEgressIngressAccounting(t *testing.T) {
	// A relay chain 0 -> 1 -> 2: node 1 is charged both directions,
	// the endpoints one each, local flows neither.
	env := sim.NewEnv()
	net := New(env, Config{Nodes: 3, UpBps: 100e6, DownBps: 100e6, DiskBps: 100e6, Latency: 0})
	env.Go(func(p *sim.Proc) {
		net.Transfer(p, 0, 1, 60e6, 0)
		net.Transfer(p, 1, 2, 60e6, 0)
		net.TransferDisk(p, 2, 2, 40e6, 0, 2) // local: disk only, no link bytes
	})
	env.Run()
	cases := []struct {
		node         NodeID
		egress, ingr float64
	}{{0, 60e6, 0}, {1, 60e6, 60e6}, {2, 0, 60e6}}
	for _, c := range cases {
		if got := net.EgressOf(c.node); math.Abs(got-c.egress) > 1 {
			t.Errorf("node %d egress = %.0f, want %.0f", c.node, got, c.egress)
		}
		if got := net.IngressOf(c.node); math.Abs(got-c.ingr) > 1 {
			t.Errorf("node %d ingress = %.0f, want %.0f", c.node, got, c.ingr)
		}
	}
}
