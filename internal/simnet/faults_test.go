package simnet

import (
	"math"
	"testing"

	"blobseer/internal/sim"
)

func TestExtraLatencyOnMessage(t *testing.T) {
	env := sim.NewEnv()
	cfg := testCfg(3)
	cfg.Latency = sim.Millisecond
	net := New(env, cfg)
	net.SetExtraLatency(0, 1, 4*sim.Millisecond)
	var slow, fast sim.Time
	env.Go(func(p *sim.Proc) {
		net.Message(p, 0, 1, 0) // degraded link: 2*(1+4) ms
		slow = p.Now()
	})
	env.Go(func(p *sim.Proc) {
		net.Message(p, 0, 2, 0) // untouched link: 2*1 ms
		fast = p.Now()
	})
	env.Run()
	if slow != 10*sim.Millisecond {
		t.Errorf("degraded message took %v, want 10ms", slow)
	}
	if fast != 2*sim.Millisecond {
		t.Errorf("bystander message took %v, want 2ms", fast)
	}
}

func TestExtraLatencyOnTransferAndClear(t *testing.T) {
	env := sim.NewEnv()
	cfg := testCfg(2)
	cfg.Latency = sim.Millisecond
	net := New(env, cfg)
	net.SetExtraLatency(1, 0, 9*sim.Millisecond) // symmetric: set as (1,0)
	var first, second sim.Time
	env.Go(func(p *sim.Proc) {
		net.Transfer(p, 0, 1, 100e6, 0) // 10ms latency + 1s flow
		first = p.Now()
		net.SetExtraLatency(0, 1, 0)    // cleared
		net.Transfer(p, 0, 1, 100e6, 0) // 1ms latency + 1s flow
		second = p.Now()
	})
	env.Run()
	if want := sim.Second + 10*sim.Millisecond; first != want {
		t.Errorf("degraded transfer finished at %v, want %v", first, want)
	}
	if want := first + sim.Second + sim.Millisecond; second != want {
		t.Errorf("post-clear transfer finished at %v, want %v", second, want)
	}
}

func TestPartitionStallsInFlightTransfer(t *testing.T) {
	// A 100 MB flow on a 100 MB/s link: 1s unfaulted. Cut the link at
	// 0.5s, heal at 1.5s — the flow stalls for the 1s outage and
	// finishes at 2.0s with all bytes accounted.
	env := sim.NewEnv()
	net := New(env, testCfg(2))
	var done sim.Time
	env.Go(func(p *sim.Proc) {
		net.Transfer(p, 0, 1, 100e6, 0)
		done = p.Now()
	})
	env.Call(sim.Time(0.5*float64(sim.Second)), func() { net.Partition(0, 1) })
	env.Call(sim.Time(1.5*float64(sim.Second)), func() { net.Heal(0, 1) })
	env.Run()
	if got := done.Seconds(); math.Abs(got-2.0) > 1e-6 {
		t.Errorf("partitioned transfer took %.6fs, want 2.0s", got)
	}
	if math.Abs(net.EgressOf(0)-100e6) > 1 {
		t.Errorf("egress = %f, want 100e6", net.EgressOf(0))
	}
}

func TestPartitionFreesCapacityForBystanders(t *testing.T) {
	// Two flows share node 0's uplink at 50 MB/s each. Partitioning
	// one at t=0 gives the survivor the full link: 100 MB in 1s.
	env := sim.NewEnv()
	net := New(env, testCfg(3))
	var survivor sim.Time
	env.Go(func(p *sim.Proc) {
		net.Transfer(p, 0, 1, 100e6, 0)
		survivor = p.Now()
	})
	env.Go(func(p *sim.Proc) {
		net.Transfer(p, 0, 2, 100e6, 0)
	})
	env.Call(0, func() { net.Partition(0, 2) })
	env.Call(3*sim.Second, func() { net.Heal(0, 2) })
	env.Run()
	if got := survivor.Seconds(); math.Abs(got-1.0) > 1e-3 {
		t.Errorf("bystander flow took %.6fs, want ~1.0s", got)
	}
}

func TestPartitionBlocksMessagesUntilHeal(t *testing.T) {
	env := sim.NewEnv()
	cfg := testCfg(2)
	cfg.Latency = sim.Millisecond
	net := New(env, cfg)
	net.Partition(0, 1)
	if !net.Partitioned(0, 1) || !net.Partitioned(1, 0) {
		t.Fatal("partition not symmetric")
	}
	var done sim.Time
	env.Go(func(p *sim.Proc) {
		net.Message(p, 0, 1, 0)
		done = p.Now()
	})
	env.Call(sim.Second, func() { net.Heal(0, 1) })
	env.Run()
	if want := sim.Second + 2*sim.Millisecond; done != want {
		t.Errorf("message through partition completed at %v, want %v", done, want)
	}
	if net.Partitioned(0, 1) {
		t.Error("still partitioned after heal")
	}
}

func TestMessageDropPenalty(t *testing.T) {
	env := sim.NewEnv()
	cfg := testCfg(2)
	cfg.Latency = sim.Millisecond
	net := New(env, cfg)
	net.SetMessageDrop(0, 1, 2, 10*sim.Millisecond) // every 2nd message
	var done sim.Time
	env.Go(func(p *sim.Proc) {
		for i := 0; i < 4; i++ {
			net.Message(p, 0, 1, 0)
		}
		done = p.Now()
	})
	env.Run()
	// 4 round trips at 2ms + 2 drops at 10ms penalty each.
	if want := 8*sim.Millisecond + 20*sim.Millisecond; done != want {
		t.Errorf("4 messages with drops took %v, want %v", done, want)
	}
}

func TestHealIdempotentAndSelfFaultPanics(t *testing.T) {
	env := sim.NewEnv()
	net := New(env, testCfg(2))
	net.Heal(0, 1) // heal of an unfaulted pair: no-op
	net.Partition(0, 1)
	net.Partition(0, 1) // idempotent
	net.Heal(0, 1)
	net.Heal(0, 1)
	if net.Partitioned(0, 1) {
		t.Error("healed pair still partitioned")
	}
	defer func() {
		if recover() == nil {
			t.Error("self-partition did not panic")
		}
	}()
	net.Partition(1, 1)
}
