package simnet

import (
	"math"
	"testing"

	"blobseer/internal/sim"
)

func diskFabric(nodes int, upBps, diskBps float64) (*sim.Env, *Net) {
	env := sim.NewEnv()
	n := New(env, Config{
		Nodes:   nodes,
		UpBps:   upBps,
		DownBps: upBps,
		DiskBps: diskBps,
		Latency: 0,
	})
	return env, n
}

// TestLocalDiskFlow: a src==dst transfer with a disk runs at the disk
// rate (or the flow cap if lower); without a disk it is free.
func TestLocalDiskFlow(t *testing.T) {
	env, n := diskFabric(2, 100, 40)
	var took sim.Time
	env.Go(func(p *sim.Proc) {
		start := p.Now()
		n.TransferDisk(p, 0, 0, 400, 0, 0)
		took = p.Now() - start
	})
	env.Run()
	if got, want := took.Seconds(), 10.0; math.Abs(got-want) > 0.01 {
		t.Errorf("local disk flow took %.2fs, want %.2fs (400 B at 40 B/s)", got, want)
	}

	env2, n2 := diskFabric(2, 100, 40)
	var took2 sim.Time
	env2.Go(func(p *sim.Proc) {
		start := p.Now()
		n2.Transfer(p, 0, 0, 400, 0) // no disk: page-cache local access
		took2 = p.Now() - start
	})
	env2.Run()
	if took2 != 0 {
		t.Errorf("diskless local transfer took %v, want 0", took2)
	}
}

// TestDiskSharedAcrossReadAndWrite: a remote read served by node 1 and
// a remote write landing on node 1 share node 1's disk even though
// they use different link directions.
func TestDiskSharedAcrossReadAndWrite(t *testing.T) {
	env, n := diskFabric(3, 1000, 100)
	times := make([]sim.Time, 2)
	env.Go(func(p *sim.Proc) { // read: 1 -> 0, disk at 1
		start := p.Now()
		n.TransferDisk(p, 1, 0, 500, 0, 1)
		times[0] = p.Now() - start
	})
	env.Go(func(p *sim.Proc) { // write: 2 -> 1, disk at 1
		start := p.Now()
		n.TransferDisk(p, 2, 1, 500, 0, 1)
		times[1] = p.Now() - start
	})
	env.Run()
	// Disk 100 B/s shared two ways -> 50 B/s each -> 10 s. Links (1000)
	// never bind.
	for i, took := range times {
		if got := took.Seconds(); math.Abs(got-10) > 0.1 {
			t.Errorf("flow %d took %.2fs, want ~10s (disk shared)", i, got)
		}
	}
}

// TestDiskReleasedAfterCompletion: when a short flow finishes, the
// survivor speeds up to the full disk rate (progressive refill).
func TestDiskReleasedAfterCompletion(t *testing.T) {
	env, n := diskFabric(3, 1000, 100)
	var longTook sim.Time
	env.Go(func(p *sim.Proc) { // short: 250 B
		n.TransferDisk(p, 1, 0, 250, 0, 1)
	})
	env.Go(func(p *sim.Proc) { // long: 750 B
		start := p.Now()
		n.TransferDisk(p, 1, 2, 750, 0, 1)
		longTook = p.Now() - start
	})
	env.Run()
	// Both run at 50 B/s until the short one finishes at t=5 (250 B);
	// the long one then has 500 B left at 100 B/s -> 5 more seconds.
	if got := longTook.Seconds(); math.Abs(got-10) > 0.1 {
		t.Errorf("long flow took %.2fs, want ~10s (5 shared + 5 alone)", got)
	}
}

// TestDiskZeroMeansUnmodeled: DiskBps == 0 disables the constraint
// entirely, reproducing the pure link-sharing model.
func TestDiskZeroMeansUnmodeled(t *testing.T) {
	env, n := diskFabric(2, 100, 0)
	var took sim.Time
	env.Go(func(p *sim.Proc) {
		start := p.Now()
		n.TransferDisk(p, 0, 1, 1000, 0, 1)
		took = p.Now() - start
	})
	env.Run()
	if got := took.Seconds(); math.Abs(got-10) > 0.1 {
		t.Errorf("link-limited flow took %.2fs, want 10s", got)
	}
}

// TestConservationWithDisks: under an arbitrary mix of flows, no node's
// uplink, downlink or disk is ever over-committed by the computed
// rates.
func TestConservationWithDisks(t *testing.T) {
	env, n := diskFabric(6, 117, 85)
	specs := []struct {
		src, dst, disk NodeID
		size           int64
	}{
		{0, 1, 1, 900}, {0, 2, 2, 500}, {3, 1, 1, 700},
		{4, 1, 1, 400}, {5, 2, 2, 800}, {2, 0, 2, 600},
		{1, 1, 1, 300}, {3, 3, 3, 1000},
	}
	for _, s := range specs {
		s := s
		env.Go(func(p *sim.Proc) { n.TransferDisk(p, s.src, s.dst, s.size, 60, s.disk) })
	}
	// Audit rates at a few instants mid-simulation.
	for _, at := range []sim.Time{sim.Second, 3 * sim.Second, 6 * sim.Second} {
		at := at
		env.Call(at-env.Now(), func() {})
	}
	check := func() {
		up := make([]float64, 6)
		down := make([]float64, 6)
		disk := make([]float64, 6)
		for f := range n.flows {
			if !f.local {
				up[f.src] += f.rate
				down[f.dst] += f.rate
			}
			if f.disk >= 0 {
				disk[f.disk] += f.rate
			}
			if f.rate > 60+1e-6 {
				t.Errorf("flow rate %.1f exceeds its 60 B/s cap", f.rate)
			}
		}
		for i := 0; i < 6; i++ {
			if up[i] > 117+1e-6 || down[i] > 117+1e-6 {
				t.Errorf("node %d link over-committed: up %.1f down %.1f", i, up[i], down[i])
			}
			if disk[i] > 85+1e-6 {
				t.Errorf("node %d disk over-committed: %.1f", i, disk[i])
			}
		}
	}
	env.Go(func(p *sim.Proc) {
		for i := 0; i < 8; i++ {
			p.Sleep(sim.Second)
			check()
		}
	})
	env.Run()
}
