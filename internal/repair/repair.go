package repair

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"blobseer/internal/blob"
	"blobseer/internal/mdtree"
	"blobseer/internal/metrics"
	"blobseer/internal/pmanager"
	"blobseer/internal/provider"
	"blobseer/internal/vmanager"
)

// Defaults for the executor.
const (
	DefaultConcurrency = 4
	DefaultRetries     = 3
	DefaultBackoff     = 50 * time.Millisecond
)

// Config wires an Engine to a deployment.
type Config struct {
	VM      vmanager.API // single-shard client or sharded Router
	PM      *pmanager.Client
	Prov    *provider.Client
	Meta    mdtree.Store // metadata tree store (scan path)
	Overlay *Overlay     // relocation records (must be non-nil)

	Concurrency int           // parallel block repairs (DefaultConcurrency if <= 0)
	Retries     int           // attempts per block (DefaultRetries if <= 0)
	Backoff     time.Duration // base retry backoff, doubled per attempt (DefaultBackoff if <= 0)
}

// Engine is the repair plane: Scan finds under-replicated blocks,
// RunOnce repairs them, Start runs the loop in the background. Safe
// for concurrent use, though runs are serialized internally — two
// overlapping repair passes would race on target selection and copy
// blocks twice.
type Engine struct {
	cfg Config
	reg *metrics.Registry

	runMu sync.Mutex // serializes RunOnce/Decommission

	mu     sync.Mutex
	stop   chan struct{}
	last   Report
	copies int64 // cumulative replicas created
}

// New returns an engine over cfg.
func New(cfg Config) *Engine {
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = DefaultConcurrency
	}
	if cfg.Retries <= 0 {
		cfg.Retries = DefaultRetries
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = DefaultBackoff
	}
	e := &Engine{cfg: cfg, reg: metrics.NewRegistry()}
	lastGauge := func(pick func(Report) int64) func() int64 {
		return func() int64 { return pick(e.LastReport()) }
	}
	e.reg.GaugeFunc("backlog", lastGauge(func(r Report) int64 { return int64(r.UnderReplicated) }))
	e.reg.GaugeFunc("blocks_scanned", lastGauge(func(r Report) int64 { return int64(r.Blocks) }))
	e.reg.GaugeFunc("lost_blocks", lastGauge(func(r Report) int64 { return int64(r.Lost) }))
	e.reg.GaugeFunc("failed_blocks", lastGauge(func(r Report) int64 { return int64(r.Failed) }))
	e.reg.GaugeFunc("copies_total", e.Copies)
	return e
}

// Metrics exposes the repair registry (backlog depth, cumulative
// re-replications, retry counts) for HTTP export.
func (e *Engine) Metrics() *metrics.Registry { return e.reg }

// Task is one under-replicated block the scanner found.
type Task struct {
	Key     blob.BlockKey
	Len     int64    // stored bytes (repair traffic accounting)
	Holders []string // live providers currently holding the block (originals + overlay)
	Sources []string // usable copy sources (live, including draining providers)
	Missing int      // replicas to create
}

// Report summarizes one repair pass.
type Report struct {
	Blocks          int // unique live blocks scanned
	UnderReplicated int // blocks below their replication target
	Copies          int // replicas created this pass
	Failed          int // blocks whose repair did not complete
	Lost            int // blocks with no live source left (unrepairable)
	Elapsed         time.Duration
}

// LastReport returns the most recent pass's report.
func (e *Engine) LastReport() Report {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.last
}

// Copies returns the cumulative number of replicas the engine created —
// the op-count regression tests pin it to exactly the lost blocks.
func (e *Engine) Copies() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.copies
}

// membership is the scanner's view of the provider pool.
type membership struct {
	live   map[string]bool // allocation-eligible: alive and not draining
	source map[string]bool // copy-eligible: alive (draining included)
	load   map[string]int64
	addrs  []string // deterministic order
}

func (e *Engine) membership(ctx context.Context) (*membership, error) {
	infos, err := e.cfg.PM.List(ctx)
	if err != nil {
		return nil, fmt.Errorf("repair: membership: %w", err)
	}
	m := &membership{
		live:   make(map[string]bool, len(infos)),
		source: make(map[string]bool, len(infos)),
		load:   make(map[string]int64, len(infos)),
	}
	for _, in := range infos {
		if in.Alive {
			m.source[in.Addr] = true
			if !in.Draining {
				m.live[in.Addr] = true
				m.addrs = append(m.addrs, in.Addr)
				m.load[in.Addr] = in.Blocks
			}
		}
	}
	sort.Strings(m.addrs)
	return m, nil
}

// scannedBlock accumulates one unique block across every version that
// references it.
type scannedBlock struct {
	ref  mdtree.BlockRef
	want int
}

// Scan walks every blob's still-readable published versions, collects
// the unique blocks their metadata trees reference, and diffs each
// block's replica set (original providers plus overlay relocations)
// against live membership. It returns the repair work list; an empty
// list means the deployment is fully replicated.
func (e *Engine) Scan(ctx context.Context) ([]Task, error) {
	mem, err := e.membership(ctx)
	if err != nil {
		return nil, err
	}
	st, err := e.scanWith(ctx, mem)
	if err != nil {
		return nil, err
	}
	return st.tasks, nil
}

// scanState is one metadata walk's outcome: the repair work list plus
// the recorded-holder map the orphan audit diffs inventory against.
type scanState struct {
	tasks   []Task
	nBlocks int
	holders map[blob.BlockKey]map[string]bool // originals ∪ overlay, live or not
}

// scanWith diffs the block inventory against the given membership
// snapshot.
func (e *Engine) scanWith(ctx context.Context, mem *membership) (*scanState, error) {
	blocks, err := e.collectBlocks(ctx)
	if err != nil {
		return nil, err
	}
	st := &scanState{nBlocks: len(blocks), holders: make(map[blob.BlockKey]map[string]bool, len(blocks))}
	for _, sb := range blocks {
		extras, err := e.cfg.Overlay.Get(ctx, sb.ref.Key)
		if err != nil {
			return nil, fmt.Errorf("repair: overlay lookup %s: %w", sb.ref.Key, err)
		}
		all := dedupAddrs(sb.ref.Providers, extras)
		recorded := make(map[string]bool, len(all))
		var holders, sources []string
		for _, a := range all {
			recorded[a] = true
			if mem.live[a] {
				holders = append(holders, a)
			}
			if mem.source[a] {
				sources = append(sources, a)
			}
		}
		st.holders[sb.ref.Key] = recorded
		missing := sb.want - len(holders)
		if missing <= 0 {
			continue
		}
		st.tasks = append(st.tasks, Task{
			Key:     sb.ref.Key,
			Len:     sb.ref.Len,
			Holders: holders,
			Sources: sources,
			Missing: missing,
		})
	}
	// Deterministic execution order (and stable tests).
	sort.Slice(st.tasks, func(i, j int) bool { return st.tasks[i].Key.String() < st.tasks[j].Key.String() })
	return st, nil
}

// collectBlocks resolves every still-readable published version of
// every blob and returns the unique referenced blocks with their
// replication targets. The walk is bounded by the live version count;
// versions share subtrees, so the same block surfacing from many
// versions collapses into one entry.
func (e *Engine) collectBlocks(ctx context.Context) (map[blob.BlockKey]*scannedBlock, error) {
	ids, err := e.cfg.VM.ListBlobs(ctx)
	if err != nil {
		return nil, fmt.Errorf("repair: list blobs: %w", err)
	}
	out := make(map[blob.BlockKey]*scannedBlock)
	for _, id := range ids {
		meta, err := e.cfg.VM.GetMeta(ctx, id)
		if err != nil {
			return nil, fmt.Errorf("repair: meta of blob %d: %w", id, err)
		}
		published, _, err := e.cfg.VM.Latest(ctx, id)
		if err != nil {
			return nil, err
		}
		if published == blob.NoVersion {
			continue
		}
		oldest, err := e.cfg.VM.PrunedBelow(ctx, id)
		if err != nil {
			return nil, err
		}
		descs, err := e.cfg.VM.History(ctx, id, 0)
		if err != nil {
			return nil, err
		}
		hist := &blob.History{}
		if err := hist.Extend(descs); err != nil {
			return nil, err
		}
		for v := oldest; v <= published; v++ {
			d, ok := hist.Desc(v)
			if !ok || d.Aborted {
				continue
			}
			extents, err := mdtree.Resolve(ctx, e.cfg.Meta, meta, v, d.SizeAfter, blob.Range{Off: 0, Len: d.SizeAfter})
			if err != nil {
				return nil, fmt.Errorf("repair: resolve blob %d v%d: %w", id, v, err)
			}
			for _, ext := range extents {
				if !ext.HasData || len(ext.Block.Providers) == 0 {
					continue
				}
				if _, ok := out[ext.Block.Key]; !ok {
					out[ext.Block.Key] = &scannedBlock{ref: ext.Block, want: meta.Replication}
				}
			}
		}
	}
	return out, nil
}

func dedupAddrs(sets ...[]string) []string {
	seen := make(map[string]bool)
	var out []string
	for _, set := range sets {
		for _, a := range set {
			if !seen[a] {
				seen[a] = true
				out = append(out, a)
			}
		}
	}
	return out
}

// RunOnce performs one scan-and-repair pass: every under-replicated
// block is pushed to freshly chosen live providers, relocations are
// recorded in the overlay, and the pass's report is returned. Repair
// traffic is exactly the missing replicas — blocks already at their
// replication target move zero bytes.
func (e *Engine) RunOnce(ctx context.Context) (Report, error) {
	e.runMu.Lock()
	defer e.runMu.Unlock()
	start := time.Now()
	mem, err := e.membership(ctx)
	if err != nil {
		return Report{}, err
	}
	st, err := e.scanWith(ctx, mem)
	if err != nil {
		return Report{}, err
	}
	tasks := st.tasks

	rep := Report{Blocks: st.nBlocks, UnderReplicated: len(tasks)}
	var mu sync.Mutex // guards rep counters and mem.load
	sem := make(chan struct{}, e.cfg.Concurrency)
	var wg sync.WaitGroup
	for _, t := range tasks {
		if len(t.Sources) == 0 {
			rep.Lost++
			continue
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(t Task) {
			defer func() { <-sem; wg.Done() }()
			mu.Lock()
			targets := pickTargets(mem, t, t.Missing)
			mu.Unlock()
			if len(targets) == 0 {
				mu.Lock()
				rep.Failed++
				mu.Unlock()
				return
			}
			n, err := e.repairBlock(ctx, t, targets)
			mu.Lock()
			rep.Copies += n
			if err != nil {
				rep.Failed++
				// The copies were not made: return the load charge so
				// later passes don't see phantom placement.
				for _, a := range targets[n:] {
					mem.load[a]--
				}
			}
			mu.Unlock()
		}(t)
	}
	wg.Wait()
	rep.Elapsed = time.Since(start)
	e.mu.Lock()
	e.last = rep
	e.copies += int64(rep.Copies)
	e.mu.Unlock()
	e.reg.Counter("passes").Inc()
	e.reg.Counter("re_replications").Add(int64(rep.Copies))
	if rep.Failed > 0 {
		return rep, fmt.Errorf("repair: %d of %d under-replicated blocks not repaired", rep.Failed, rep.UnderReplicated)
	}
	return rep, nil
}

// pickTargets chooses up to n live providers that do not already hold
// the block, least-loaded first, charging mem.load so concurrent tasks
// spread instead of piling onto one node. Caller holds the pass mutex.
func pickTargets(mem *membership, t Task, n int) []string {
	holding := make(map[string]bool, len(t.Holders)+len(t.Sources))
	for _, a := range t.Holders {
		holding[a] = true
	}
	for _, a := range t.Sources {
		holding[a] = true // a draining source still physically holds the block
	}
	candidates := make([]string, 0, len(mem.addrs))
	for _, a := range mem.addrs {
		if !holding[a] {
			candidates = append(candidates, a)
		}
	}
	sort.SliceStable(candidates, func(i, j int) bool {
		return mem.load[candidates[i]] < mem.load[candidates[j]]
	})
	if len(candidates) > n {
		candidates = candidates[:n]
	}
	for _, a := range candidates {
		mem.load[a]++
	}
	return candidates
}

// repairBlock pushes the block from one of its sources to targets,
// rotating sources and backing off between attempts. It returns the
// number of replicas created (all-or-nothing per chained push, so on
// success that is len(targets)).
func (e *Engine) repairBlock(ctx context.Context, t Task, targets []string) (int, error) {
	backoff := e.cfg.Backoff
	var lastErr error
	for attempt := 0; attempt < e.cfg.Retries; attempt++ {
		if attempt > 0 {
			e.reg.Counter("retries").Inc()
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
				return 0, ctx.Err()
			}
			backoff *= 2
		}
		src := t.Sources[attempt%len(t.Sources)]
		if err := e.cfg.Prov.Replicate(ctx, src, t.Key, targets); err != nil {
			lastErr = err
			continue
		}
		if err := e.cfg.Overlay.Add(ctx, t.Key, targets); err != nil {
			// The copies exist but are unrecorded: the next scan still
			// counts the block under-replicated and retries, and the
			// re-push overwrites idempotently.
			return 0, fmt.Errorf("repair: record overlay for %s: %w", t.Key, err)
		}
		return len(targets), nil
	}
	return 0, fmt.Errorf("repair: block %s: %w", t.Key, lastErr)
}

// Orphans audits provider inventory against referenced metadata: every
// live provider's block report (the mBlockReport RPC over
// store.Store.Keys) is diffed against the union of replica sets and
// overlay relocations the scanner derives. A held block counts as an
// orphan when nothing can ever read or reclaim it through this
// provider:
//
//   - its blob is unknown to the version manager;
//   - its write was aborted (the best-effort GC missed this copy);
//   - its version was pruned and no kept version still references it;
//   - the block is referenced, but this provider is in neither the
//     original replica set nor the overlay (a stray copy — e.g. leaked
//     by a repair push whose overlay record was lost, or left behind on
//     a drained provider).
//
// Blocks whose nonce appears in no descriptor are skipped: a write in
// flight stores its blocks before version assignment, so they are
// indistinguishable from future data.
func (e *Engine) Orphans(ctx context.Context) (map[string]int, error) {
	_, orphans, err := e.Status(ctx)
	return orphans, err
}

// Status performs one combined metadata walk and returns both the
// repair work list and the orphan audit — what bsfsctl's providers
// command shows. Callers needing both must use this instead of
// Scan+Orphans, which would each pay a full walk of their own.
func (e *Engine) Status(ctx context.Context) ([]Task, map[string]int, error) {
	mem, err := e.membership(ctx)
	if err != nil {
		return nil, nil, err
	}
	st, err := e.scanWith(ctx, mem)
	if err != nil {
		return nil, nil, err
	}
	orphans, err := e.auditWith(ctx, mem, st.holders)
	if err != nil {
		return nil, nil, err
	}
	return st.tasks, orphans, nil
}

// auditWith diffs each live provider's block report against the
// recorded-holder map from a scan.
func (e *Engine) auditWith(ctx context.Context, mem *membership, holders map[blob.BlockKey]map[string]bool) (map[string]int, error) {
	// Per-blob descriptor tables: nonce -> descriptor, plus prune point.
	type blobInfo struct {
		nonces map[uint64]blob.WriteDesc
		oldest blob.Version
	}
	ids, err := e.cfg.VM.ListBlobs(ctx)
	if err != nil {
		return nil, err
	}
	infos := make(map[blob.ID]*blobInfo, len(ids))
	for _, id := range ids {
		descs, err := e.cfg.VM.History(ctx, id, 0)
		if err != nil {
			return nil, err
		}
		oldest, err := e.cfg.VM.PrunedBelow(ctx, id)
		if err != nil {
			return nil, err
		}
		bi := &blobInfo{nonces: make(map[uint64]blob.WriteDesc, len(descs)), oldest: oldest}
		for _, d := range descs {
			bi.nonces[d.Nonce] = d
		}
		infos[id] = bi
	}

	out := make(map[string]int, len(mem.source))
	for addr := range mem.source {
		report, err := e.cfg.Prov.BlockReport(ctx, addr, "")
		if err != nil {
			return nil, fmt.Errorf("repair: block report from %s: %w", addr, err)
		}
		n := 0
		for _, k := range report {
			if set, ok := holders[k]; ok {
				if !set[addr] {
					n++ // stray copy of a live block
				}
				continue
			}
			bi, ok := infos[k.Blob]
			if !ok {
				n++ // unknown blob
				continue
			}
			d, ok := bi.nonces[k.Nonce]
			if !ok {
				continue // possibly an in-flight write; not auditable
			}
			if d.Aborted || d.Version < bi.oldest {
				n++ // aborted or pruned write the GC sweep missed here
			}
		}
		out[addr] = n
	}
	return out, nil
}

// Start launches the background repair loop with the given scan
// period (non-positive intervals are ignored). Stop with Stop. Pass
// errors are reflected in LastReport.
func (e *Engine) Start(interval time.Duration) {
	if interval <= 0 {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.stop != nil {
		return // already running
	}
	stop := make(chan struct{})
	e.stop = stop
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				ctx, cancel := context.WithTimeout(context.Background(), interval*4)
				_, _ = e.RunOnce(ctx)
				cancel()
			}
		}
	}()
}

// Stop terminates the background loop.
func (e *Engine) Stop() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.stop != nil {
		close(e.stop)
		e.stop = nil
	}
}

// Decommission drains and retires a provider: it leaves the allocation
// pool immediately, a repair pass re-replicates everything it holds,
// and only then is it marked dead (retired). The provider keeps serving
// reads throughout the drain — planned maintenance loses no redundancy
// window, unlike a crash.
func (e *Engine) Decommission(ctx context.Context, addr string) (Report, error) {
	// Refuse unknown addresses outright: the manager-side marks are
	// silent no-ops for unregistered providers, and "decommissioned"
	// must never be reported for a typo.
	infos, err := e.cfg.PM.List(ctx)
	if err != nil {
		return Report{}, fmt.Errorf("repair: decommission %s: %w", addr, err)
	}
	known := false
	for _, in := range infos {
		if in.Addr == addr {
			known = true
		}
	}
	if !known {
		return Report{}, fmt.Errorf("repair: decommission %s: no such provider", addr)
	}
	if err := e.cfg.PM.Decommission(ctx, addr); err != nil {
		return Report{}, fmt.Errorf("repair: decommission %s: %w", addr, err)
	}
	rep, err := e.RunOnce(ctx)
	if err != nil {
		return rep, fmt.Errorf("repair: drain of %s incomplete: %w", addr, err)
	}
	// Verify nothing still depends on the draining provider before
	// retiring it: a block is safe once its live (non-draining) holders
	// alone meet the replication target. Under-replication *elsewhere*
	// (for example a block that already lost every replica — nothing a
	// drain could fix) must not wedge this provider in the draining
	// state forever.
	left, err := e.Scan(ctx)
	if err != nil {
		return rep, err
	}
	depends := 0
	for _, t := range left {
		for _, src := range t.Sources {
			if src == addr {
				depends++
				break
			}
		}
	}
	if depends > 0 {
		return rep, fmt.Errorf("repair: drain of %s incomplete: %d blocks still depend on it", addr, depends)
	}
	if err := e.cfg.PM.MarkDead(ctx, addr); err != nil {
		return rep, fmt.Errorf("repair: retire %s: %w", addr, err)
	}
	return rep, nil
}
