package repair

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"blobseer/internal/blob"
)

func TestOverlayAddGetRemove(t *testing.T) {
	ctx := context.Background()
	o := NewOverlay(NewMemKV())
	k := blob.BlockKey{Blob: 3, Nonce: 0xabc, Seq: 7}

	got, err := o.Get(ctx, k)
	if err != nil || got != nil {
		t.Fatalf("Get on empty overlay = %v, %v", got, err)
	}
	if err := o.Add(ctx, k, []string{"p2", "p1"}); err != nil {
		t.Fatal(err)
	}
	got, err = o.Get(ctx, k)
	if err != nil || len(got) != 2 || got[0] != "p1" || got[1] != "p2" {
		t.Fatalf("Get = %v, %v; want sorted [p1 p2]", got, err)
	}
	// Merge: duplicates collapse, new addresses append.
	if err := o.Add(ctx, k, []string{"p2", "p3"}); err != nil {
		t.Fatal(err)
	}
	got, _ = o.Get(ctx, k)
	if len(got) != 3 {
		t.Fatalf("merged Get = %v, want 3 distinct addrs", got)
	}
	// Entries are per-block: a sibling key stays empty.
	other := blob.BlockKey{Blob: 3, Nonce: 0xabc, Seq: 8}
	if got, _ := o.Get(ctx, other); got != nil {
		t.Errorf("sibling key has entries: %v", got)
	}
	if err := o.Remove(ctx, k); err != nil {
		t.Fatal(err)
	}
	if got, _ := o.Get(ctx, k); got != nil {
		t.Errorf("entry survived Remove: %v", got)
	}
	// Removing an absent entry is not an error (GC retries freely).
	if err := o.Remove(ctx, k); err != nil {
		t.Errorf("Remove of absent entry = %v", err)
	}
}

// TestOverlayConcurrentAddsConverge pins the verified read-merge-write:
// two writers adding different addresses for the same block (a repair
// daemon racing an operator's decommission) must both survive in the
// final entry.
func TestOverlayConcurrentAddsConverge(t *testing.T) {
	ctx := context.Background()
	o := NewOverlay(NewMemKV())
	k := blob.BlockKey{Blob: 9, Nonce: 9, Seq: 9}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		addr := fmt.Sprintf("p%d", i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := o.Add(ctx, k, []string{addr}); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	got, err := o.Get(ctx, k)
	if err != nil || len(got) != 8 {
		t.Fatalf("after 8 concurrent Adds: %v, %v; want all 8 addresses", got, err)
	}
}

func TestOverlayAddEmptyIsNoop(t *testing.T) {
	ctx := context.Background()
	kv := NewMemKV()
	o := NewOverlay(kv)
	k := blob.BlockKey{Blob: 1, Nonce: 1, Seq: 0}
	if err := o.Add(ctx, k, nil); err != nil {
		t.Fatal(err)
	}
	if got, _ := o.Get(ctx, k); got != nil {
		t.Errorf("empty Add created an entry: %v", got)
	}
}
