// Package repair implements BlobSeer's self-healing maintenance plane:
// a scanner that walks published versions' metadata and diffs every
// block's replica set against live membership, and a bounded-concurrency
// executor that drives provider-to-provider re-replication until each
// block is back at its target replication level.
//
// BlobSeer metadata is immutable — a published segment-tree leaf can
// never be rewritten to point at a relocated replica. The repair plane
// therefore records relocations in a *location overlay*: a DHT mapping
// from block key to the extra providers that hold repair copies.
// Readers consult the overlay only after exhausting a block's original
// replica set, so the hot path pays nothing while all originals live;
// version garbage collection purges overlay entries together with their
// blocks.
//
// # Overlay encoding
//
// Overlay entries live in the same metadata DHT as tree nodes, under
// their own key namespace (tree nodes use "t...", blocks "b...", the
// overlay "loc/b..."):
//
//	key:   "loc/" + BlockKey.String()   e.g. "loc/b7/1a2b/3"
//	value: addrs stringslice            (extra provider addresses)
//
// Values are whole-entry replaced on update (read-merge-write by the
// single repair writer); replication and replica fall-through come from
// the DHT client underneath, exactly as for tree nodes.
package repair

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"blobseer/internal/blob"
	"blobseer/internal/dht"
	"blobseer/internal/store"
	"blobseer/internal/wire"
)

// KV is the overlay's storage: the metadata DHT client in deployments,
// a MemKV in tests and the simulator.
type KV interface {
	Put(ctx context.Context, key string, val []byte) error
	Get(ctx context.Context, key string) ([]byte, error)
	Delete(ctx context.Context, key string) error
}

// Overlay maps block keys to the extra replica locations created by
// repair. It implements core.LocationOverlay.
type Overlay struct {
	kv KV
}

// NewOverlay returns an overlay stored in kv.
func NewOverlay(kv KV) *Overlay { return &Overlay{kv: kv} }

// overlayKey renders the DHT key of a block's overlay entry.
func overlayKey(k blob.BlockKey) string { return "loc/" + k.String() }

func isNotFound(err error) bool {
	return errors.Is(err, dht.ErrNotFound) || errors.Is(err, store.ErrNotFound)
}

// Get returns the block's extra replica locations (nil when none were
// ever recorded — not an error).
func (o *Overlay) Get(ctx context.Context, key blob.BlockKey) ([]string, error) {
	val, err := o.kv.Get(ctx, overlayKey(key))
	if isNotFound(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	r := wire.NewReader(val)
	addrs := r.StringSlice()
	return addrs, r.Err()
}

// Add merges addrs into the block's overlay entry. Within one engine
// the executor runs one task per block, but two engines can overlap (a
// background repair daemon and an operator's bsfsctl decommission), so
// the read-merge-write is verified: after writing, the entry is read
// back and re-merged until it contains every address we meant to
// record. Concurrent adders thus converge to the union instead of one
// silently overwriting the other's relocations.
func (o *Overlay) Add(ctx context.Context, key blob.BlockKey, addrs []string) error {
	if len(addrs) == 0 {
		return nil
	}
	const attempts = 4
	for i := 0; i < attempts; i++ {
		existing, err := o.Get(ctx, key)
		if err != nil {
			return err
		}
		merged := mergeAddrs(existing, addrs)
		b := wire.NewBuffer(16)
		b.StringSlice(merged)
		if err := o.kv.Put(ctx, overlayKey(key), b.Bytes()); err != nil {
			return err
		}
		back, err := o.Get(ctx, key)
		if err != nil {
			return err
		}
		if containsAll(back, addrs) {
			return nil
		}
	}
	return fmt.Errorf("repair: overlay entry for %s kept losing updates", key)
}

// mergeAddrs returns the sorted union of the two address sets.
func mergeAddrs(a, b []string) []string {
	seen := make(map[string]bool, len(a)+len(b))
	out := make([]string, 0, len(a)+len(b))
	for _, set := range [][]string{a, b} {
		for _, addr := range set {
			if !seen[addr] {
				seen[addr] = true
				out = append(out, addr)
			}
		}
	}
	sort.Strings(out)
	return out
}

func containsAll(haystack, needles []string) bool {
	set := make(map[string]bool, len(haystack))
	for _, a := range haystack {
		set[a] = true
	}
	for _, n := range needles {
		if !set[n] {
			return false
		}
	}
	return true
}

// Remove purges the block's overlay entry (version GC: the block is
// gone, its relocation record must not outlive it).
func (o *Overlay) Remove(ctx context.Context, key blob.BlockKey) error {
	return o.kv.Delete(ctx, overlayKey(key))
}

// MemKV is an in-memory KV for tests and the simulator. Safe for
// concurrent use.
type MemKV struct {
	mu sync.Mutex
	m  map[string][]byte
}

// NewMemKV returns an empty in-memory overlay store.
func NewMemKV() *MemKV { return &MemKV{m: make(map[string][]byte)} }

// Put implements KV.
func (s *MemKV) Put(_ context.Context, key string, val []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[key] = append([]byte(nil), val...)
	return nil
}

// Get implements KV.
func (s *MemKV) Get(_ context.Context, key string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.m[key]
	if !ok {
		return nil, store.ErrNotFound
	}
	return append([]byte(nil), v...), nil
}

// Delete implements KV.
func (s *MemKV) Delete(_ context.Context, key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.m, key)
	return nil
}
