package simstore

import (
	"testing"

	"blobseer/internal/blob"
	"blobseer/internal/placement"
	"blobseer/internal/sim"
	"blobseer/internal/simnet"
)

// tieredBSFS deploys the small fabric with the cold-tier model on: cold
// reads stream at a quarter of the link rate and pay a promotion setup.
func tieredBSFS(t *testing.T) *BSFS {
	t.Helper()
	env := sim.NewEnv()
	net := simnet.New(env, simnet.Grid5000(12))
	tun := DefaultTuning()
	tun.ColdReadBps = 0.25 * net.Config().UpBps
	tun.ColdPenalty = 5 * sim.Millisecond
	return NewBSFS(net, tun, placement.NewRoundRobin(),
		0, []simnet.NodeID{1, 2}, []simnet.NodeID{3, 4, 5, 6, 7, 8, 9})
}

// TestSimColdReadSlowerThenPromoted: a demoted block's first read pays
// the cold tier (slower than a hot read), the second read — after
// promotion — runs at the hot rate again, and every byte stays
// readable throughout.
func TestSimColdReadSlowerThenPromoted(t *testing.T) {
	b := tieredBSFS(t)
	m := b.CreateBlob(testBlock, 1)
	b.Env.Go(func(p *sim.Proc) {
		if _, err := b.Write(p, 10, m.ID, blob.KindAppend, 0, 2*testBlock, 1); err != nil {
			t.Error(err)
		}
	})
	b.Env.Run()

	// Hot baseline.
	var hotStart, hotEnd sim.Time
	b.Env.Go(func(p *sim.Proc) {
		hotStart = p.Now()
		if n, err := b.Read(p, 11, m.ID, 0, 2*testBlock); err != nil || n != 2*testBlock {
			t.Errorf("hot read = %d bytes, %v", n, err)
		}
		hotEnd = p.Now()
	})
	b.Env.Run()
	hotTime := (hotEnd - hotStart).Seconds()

	if n := b.DemoteAll(); n != 2 {
		t.Fatalf("DemoteAll moved %d blocks, want 2", n)
	}

	// Cold read: same bytes, slower.
	var coldStart, coldEnd sim.Time
	b.Env.Go(func(p *sim.Proc) {
		coldStart = p.Now()
		if n, err := b.Read(p, 11, m.ID, 0, 2*testBlock); err != nil || n != 2*testBlock {
			t.Errorf("cold read = %d bytes, %v", n, err)
		}
		coldEnd = p.Now()
	})
	b.Env.Run()
	coldTime := (coldEnd - coldStart).Seconds()
	if coldTime <= hotTime*1.5 {
		t.Errorf("cold read took %.3fs vs hot %.3fs; want clearly slower", coldTime, hotTime)
	}
	if b.PromotedBlocks != 2 {
		t.Errorf("PromotedBlocks = %d, want 2", b.PromotedBlocks)
	}

	// Re-read after promotion: hot rate again.
	var reStart, reEnd sim.Time
	b.Env.Go(func(p *sim.Proc) {
		reStart = p.Now()
		if n, err := b.Read(p, 11, m.ID, 0, 2*testBlock); err != nil || n != 2*testBlock {
			t.Errorf("promoted read = %d bytes, %v", n, err)
		}
		reEnd = p.Now()
	})
	b.Env.Run()
	reTime := (reEnd - reStart).Seconds()
	if reTime > hotTime*1.2 {
		t.Errorf("promoted re-read took %.3fs vs hot baseline %.3fs; promotion did not restore the hot path", reTime, hotTime)
	}
	if b.PromotedBlocks != 2 {
		t.Errorf("promoted re-read changed PromotedBlocks to %d", b.PromotedBlocks)
	}
}

// TestSimTieringOffByDefault: with ColdReadBps unset, DemoteAll changes
// nothing — the calibrated figures stay exactly as measured.
func TestSimTieringOffByDefault(t *testing.T) {
	b := smallBSFS(t)
	m := b.CreateBlob(testBlock, 1)
	b.Env.Go(func(p *sim.Proc) {
		if _, err := b.Write(p, 10, m.ID, blob.KindAppend, 0, testBlock, 1); err != nil {
			t.Error(err)
		}
	})
	b.Env.Run()
	var hotStart, hotEnd sim.Time
	b.Env.Go(func(p *sim.Proc) {
		hotStart = p.Now()
		if _, err := b.Read(p, 11, m.ID, 0, testBlock); err != nil {
			t.Error(err)
		}
		hotEnd = p.Now()
	})
	b.Env.Run()

	b.DemoteAll()
	var coldStart, coldEnd sim.Time
	b.Env.Go(func(p *sim.Proc) {
		coldStart = p.Now()
		if _, err := b.Read(p, 11, m.ID, 0, testBlock); err != nil {
			t.Error(err)
		}
		coldEnd = p.Now()
	})
	b.Env.Run()
	if hot, cold := (hotEnd - hotStart), (coldEnd - coldStart); cold != hot {
		t.Errorf("unmodeled tiering changed read time: hot %v cold %v", hot, cold)
	}
}
