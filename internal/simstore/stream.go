package simstore

import (
	"blobseer/internal/blob"
	"blobseer/internal/sim"
	"blobseer/internal/simnet"
)

// Streaming models of the BSFS client pipeline (Section IV-B). The
// per-op Write/Read models bill a single block commit or fetch; these
// helpers string nBlocks of them into one sequential stream the way
// the real bsfs reader/writer does, with a bounded window of ops in
// flight. depth/readahead 0 (or 1 for writes) is the fully synchronous
// client: exactly one block in flight, every block boundary a stall.

// StreamWrite models a create-mode BSFS writer streaming nBlocks of
// the blob's block size from node client: every full block is a
// complete two-phase offset write, and up to depth commits run
// concurrently while the stream keeps producing (write-behind). Block
// offsets are fixed at enqueue time, so commit completion order is
// irrelevant — the write/write concurrency BlobSeer is built for.
func (b *BSFS) StreamWrite(p *sim.Proc, client simnet.NodeID, id blob.ID, nBlocks, depth int, nonceBase uint64) error {
	m, err := b.VM.GetMeta(id)
	if err != nil {
		return err
	}
	if depth < 1 {
		depth = 1
	}
	var firstErr error
	parallel(p, nBlocks, depth, func(cp *sim.Proc, i int) {
		if firstErr != nil {
			return
		}
		off := int64(i) * m.BlockSize
		if _, err := b.Write(cp, client, id, blob.KindWrite, off, m.BlockSize, nonceBase+uint64(i)+1); err != nil && firstErr == nil {
			firstErr = err
		}
	})
	return firstErr
}

// StreamRead models a BSFS reader streaming the first nBlocks of the
// blob sequentially: block fetches are issued in order with up to
// 1+readahead in flight, so consuming block i overlaps the transfer of
// blocks i+1..i+readahead. readahead 0 is the synchronous path.
func (b *BSFS) StreamRead(p *sim.Proc, client simnet.NodeID, id blob.ID, nBlocks, readahead int) error {
	m, err := b.VM.GetMeta(id)
	if err != nil {
		return err
	}
	if readahead < 0 {
		readahead = 0
	}
	var firstErr error
	parallel(p, nBlocks, 1+readahead, func(cp *sim.Proc, i int) {
		if firstErr != nil {
			return
		}
		if _, err := b.Read(cp, client, id, int64(i)*m.BlockSize, m.BlockSize); err != nil && firstErr == nil {
			firstErr = err
		}
	})
	return firstErr
}
