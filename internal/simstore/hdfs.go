package simstore

import (
	"fmt"

	"blobseer/internal/placement"
	"blobseer/internal/sim"
	"blobseer/internal/simnet"
)

// HDFS is the simulated HDFS-like baseline: centralized namenode,
// sequential chunk writes through a pipeline with per-chunk setup cost,
// single-writer immutable files, no append.
type HDFS struct {
	Env *sim.Env
	Net *simnet.Net
	Tun Tuning

	strategy placement.Strategy
	nodes    []*placement.Node
	byAddr   map[string]simnet.NodeID
	nnNode   simnet.NodeID
	nnRes    *sim.Resource

	files map[string]*simFile
}

type simFile struct {
	blocks []simBlock
	size   int64
}

type simBlock struct {
	node simnet.NodeID
	len  int64
}

// NewHDFS deploys the baseline: namenode on nnNode, datanodes on
// dnNodes.
func NewHDFS(net *simnet.Net, tun Tuning, strategy placement.Strategy, nnNode simnet.NodeID, dnNodes []simnet.NodeID) *HDFS {
	h := &HDFS{
		Env: net.Env(), Net: net, Tun: tun,
		strategy: strategy,
		byAddr:   make(map[string]simnet.NodeID),
		nnNode:   nnNode,
		nnRes:    net.Env().NewResource(1),
		files:    make(map[string]*simFile),
	}
	for _, n := range dnNodes {
		addr := fmt.Sprintf("datanode-%d", n)
		h.byAddr[addr] = n
		h.nodes = append(h.nodes, &placement.Node{Addr: addr, Host: HostOfNode(n), Alive: true})
	}
	return h
}

func (h *HDFS) writeCap() float64 { return h.Tun.HDFSWriteEff * h.Net.Config().UpBps }
func (h *HDFS) readCap() float64  { return h.Tun.HDFSReadEff * h.Net.Config().UpBps }

// CreateFile registers an empty file.
func (h *HDFS) CreateFile(path string) error {
	if _, dup := h.files[path]; dup {
		return fmt.Errorf("simstore: file %s exists", path)
	}
	h.files[path] = &simFile{}
	return nil
}

// AppendBlock streams one chunk of ln bytes onto the file being
// written: a namenode allocation plus pipeline setup, then the
// transfer. The HDFS client writes strictly one chunk at a time.
func (h *HDFS) AppendBlock(p *sim.Proc, client simnet.NodeID, path string, ln int64) error {
	f, ok := h.files[path]
	if !ok {
		return fmt.Errorf("simstore: no such file %s", path)
	}
	// Namenode allocation (serialized, centralized).
	h.Net.Message(p, client, h.nnNode, 256)
	h.nnRes.Use(p, h.Tun.NNService)
	targets, err := h.strategy.Pick(1, 1, HostOfNode(client), h.nodes)
	if err != nil {
		return err
	}
	dst := h.byAddr[targets[0][0].Addr]
	p.Sleep(h.Tun.HDFSChunkSetup)
	if dst == client {
		// HDFS 0.20's local-first fast path still runs the full
		// checksummed datanode write pipeline over loopback.
		h.Net.TransferDisk(p, client, dst, ln, h.Tun.HDFSLocalWriteBps, dst)
	} else {
		h.Net.TransferDisk(p, client, dst, ln, h.writeCap(), dst)
	}
	f.blocks = append(f.blocks, simBlock{node: dst, len: ln})
	f.size += ln
	return nil
}

// Write streams a size-byte file from node client, chunk by chunk.
func (h *HDFS) Write(p *sim.Proc, client simnet.NodeID, path string, size, blockSize int64) error {
	if err := h.CreateFile(path); err != nil {
		return err
	}
	for off := int64(0); off < size; off += blockSize {
		ln := blockSize
		if off+ln > size {
			ln = size - off
		}
		if err := h.AppendBlock(p, client, path, ln); err != nil {
			return err
		}
	}
	return nil
}

// Read fetches [off, off+size) of a file from node client, chunk by
// chunk (the HDFS client reads blocks sequentially through its
// prefetching buffer).
func (h *HDFS) Read(p *sim.Proc, client simnet.NodeID, path string, off, size int64) (int64, error) {
	f, ok := h.files[path]
	if !ok {
		return 0, fmt.Errorf("simstore: no such file %s", path)
	}
	// Namenode location lookup.
	h.Net.Message(p, client, h.nnNode, 256)
	h.nnRes.Use(p, h.Tun.NNService)
	total := int64(0)
	pos := int64(0)
	for _, blk := range f.blocks {
		start, end := pos, pos+blk.len
		pos = end
		if end <= off || start >= off+size {
			continue
		}
		lo, hi := start, end
		if lo < off {
			lo = off
		}
		if hi > off+size {
			hi = off + size
		}
		n := hi - lo
		h.Net.TransferDisk(p, blk.node, client, n, h.readCap(), blk.node)
		total += n
	}
	return total, nil
}

// Size returns a file's length.
func (h *HDFS) Size(path string) int64 {
	if f, ok := h.files[path]; ok {
		return f.size
	}
	return 0
}

// Layout returns chunks-per-datanode counts (Figure 3b).
func (h *HDFS) Layout() []int { return placement.Layout(h.nodes) }

// LocationsOf returns the fabric node of each chunk of a file.
func (h *HDFS) LocationsOf(path string) []simnet.NodeID {
	f, ok := h.files[path]
	if !ok {
		return nil
	}
	out := make([]simnet.NodeID, len(f.blocks))
	for i, b := range f.blocks {
		out[i] = b.node
	}
	return out
}
