package simstore

import (
	"fmt"

	"blobseer/internal/blob"
	"blobseer/internal/sim"
	"blobseer/internal/simnet"
	"blobseer/internal/util"
)

// Storage is the file-level view the simulated Map/Reduce engine uses —
// the moral equivalent of fs.FileSystem for the fluid models.
type Storage interface {
	Name() string
	BlockSize() int64
	// Env returns the simulation environment the storage runs in.
	Env() *sim.Env
	// CreateFile registers an empty file.
	CreateFile(name string) error
	// AppendBlock appends n bytes (<= block size) from node client.
	AppendBlock(p *sim.Proc, client simnet.NodeID, name string, n int64) error
	// ReadRange fetches [off, off+size) from node client.
	ReadRange(p *sim.Proc, client simnet.NodeID, name string, off, size int64) error
	// Size returns the file length.
	Size(name string) int64
	// ChunkNodes returns the fabric node storing each chunk (locality).
	ChunkNodes(name string) []simnet.NodeID
	// Pipeline returns the client library's streaming windows
	// (readahead blocks, write-behind depth); 0/0 means fully
	// synchronous block I/O. The simulated Map/Reduce engine uses it
	// to decide how much task compute overlaps storage traffic.
	Pipeline() (readahead, writeBehind int)
}

// BSFSFiles adapts the simulated BSFS to the Storage interface: one
// BLOB per file, appends through the full two-phase protocol.
type BSFSFiles struct {
	B           *BSFS
	BlockSz     int64
	Replication int

	files map[string]blob.ID
	nonce uint64
}

var _ Storage = (*BSFSFiles)(nil)

// NewBSFSFiles wraps b.
func NewBSFSFiles(b *BSFS, blockSize int64, replication int) *BSFSFiles {
	if replication < 1 {
		replication = 1
	}
	return &BSFSFiles{B: b, BlockSz: blockSize, Replication: replication, files: make(map[string]blob.ID)}
}

// Name implements Storage.
func (f *BSFSFiles) Name() string { return "bsfs" }

// Env implements Storage.
func (f *BSFSFiles) Env() *sim.Env { return f.B.Env }

// BlockSize implements Storage.
func (f *BSFSFiles) BlockSize() int64 { return f.BlockSz }

// CreateFile implements Storage.
func (f *BSFSFiles) CreateFile(name string) error {
	if _, dup := f.files[name]; dup {
		return fmt.Errorf("simstore: file %s exists", name)
	}
	m := f.B.CreateBlob(f.BlockSz, f.Replication)
	f.files[name] = m.ID
	return nil
}

// AppendBlock implements Storage.
func (f *BSFSFiles) AppendBlock(p *sim.Proc, client simnet.NodeID, name string, n int64) error {
	id, ok := f.files[name]
	if !ok {
		return fmt.Errorf("simstore: no such file %s", name)
	}
	f.nonce++
	_, err := f.B.Write(p, client, id, blob.KindAppend, 0, n, f.nonce)
	return err
}

// ReadRange implements Storage.
func (f *BSFSFiles) ReadRange(p *sim.Proc, client simnet.NodeID, name string, off, size int64) error {
	id, ok := f.files[name]
	if !ok {
		return fmt.Errorf("simstore: no such file %s", name)
	}
	_, err := f.B.Read(p, client, id, off, size)
	return err
}

// Size implements Storage.
func (f *BSFSFiles) Size(name string) int64 {
	id, ok := f.files[name]
	if !ok {
		return 0
	}
	_, size, err := f.B.VM.Latest(id)
	if err != nil {
		return 0
	}
	return size
}

// Pipeline implements Storage from the deployment's tuning: the BSFS
// client pipelines, the baseline's does not.
func (f *BSFSFiles) Pipeline() (int, int) {
	return f.B.Tun.ReadaheadBlocks, f.B.Tun.WriteBehindDepth
}

// ChunkNodes implements Storage.
func (f *BSFSFiles) ChunkNodes(name string) []simnet.NodeID {
	id, ok := f.files[name]
	if !ok {
		return nil
	}
	nodes, err := f.B.LocationsOf(id)
	if err != nil {
		return nil
	}
	return nodes
}

// HDFSFiles adapts the simulated HDFS baseline to Storage. Appends are
// only legal while the single writer streams the file (the baseline has
// no reopen-append, matching the real system).
type HDFSFiles struct {
	H       *HDFS
	BlockSz int64
}

var _ Storage = (*HDFSFiles)(nil)

// NewHDFSFiles wraps h.
func NewHDFSFiles(h *HDFS, blockSize int64) *HDFSFiles {
	return &HDFSFiles{H: h, BlockSz: blockSize}
}

// Name implements Storage.
func (f *HDFSFiles) Name() string { return "hdfs" }

// Env implements Storage.
func (f *HDFSFiles) Env() *sim.Env { return f.H.Env }

// BlockSize implements Storage.
func (f *HDFSFiles) BlockSize() int64 { return f.BlockSz }

// CreateFile implements Storage.
func (f *HDFSFiles) CreateFile(name string) error { return f.H.CreateFile(name) }

// AppendBlock implements Storage.
func (f *HDFSFiles) AppendBlock(p *sim.Proc, client simnet.NodeID, name string, n int64) error {
	return f.H.AppendBlock(p, client, name, util.Min(n, f.BlockSz))
}

// ReadRange implements Storage.
func (f *HDFSFiles) ReadRange(p *sim.Proc, client simnet.NodeID, name string, off, size int64) error {
	_, err := f.H.Read(p, client, name, off, size)
	return err
}

// Size implements Storage.
func (f *HDFSFiles) Size(name string) int64 { return f.H.Size(name) }

// ChunkNodes implements Storage.
func (f *HDFSFiles) ChunkNodes(name string) []simnet.NodeID { return f.H.LocationsOf(name) }

// Pipeline implements Storage: the HDFS-like client is synchronous.
func (f *HDFSFiles) Pipeline() (int, int) { return 0, 0 }
