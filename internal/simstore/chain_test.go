package simstore

import (
	"math"
	"testing"

	"blobseer/internal/blob"
	"blobseer/internal/placement"
	"blobseer/internal/sim"
	"blobseer/internal/simnet"
	"blobseer/internal/util"
)

// writeBlocks runs one multi-block append from node 10 and returns the
// virtual completion time.
func writeBlocks(t *testing.T, b *BSFS, id blob.ID, nBlocks int) sim.Time {
	t.Helper()
	var end sim.Time
	b.Env.Go(func(p *sim.Proc) {
		if _, err := b.Write(p, 10, id, blob.KindAppend, 0, int64(nBlocks)*testBlock, 1); err != nil {
			t.Error(err)
			return
		}
		end = p.Now()
	})
	b.Env.Run()
	return end
}

// TestChainedWriteClientEgress is the acceptance byte-count pin: on the
// simnet billing model, a chained write of N blocks at replication R
// charges the client exactly N blocks of uplink egress — not R×N —
// with the remaining (R-1)×N block copies billed hop by hop to the
// forwarding providers.
func TestChainedWriteClientEgress(t *testing.T) {
	const (
		nBlocks = 8
		repl    = 3
		client  = 10
	)
	payload := float64(nBlocks) * float64(testBlock)

	b := smallBSFS(t)
	m := b.CreateBlob(testBlock, repl)
	writeBlocks(t, b, m.ID, nBlocks)

	egress := b.Net.EgressOf(client)
	if math.Abs(egress-payload) > 1 {
		t.Errorf("chained client egress = %.0f bytes, want exactly %.0f (N blocks, not R×N)", egress, payload)
	}
	// The other R-1 copies travel provider-to-provider.
	var provEgress float64
	for _, n := range b.provNode {
		provEgress += b.Net.EgressOf(n)
	}
	if want := float64(repl-1) * payload; math.Abs(provEgress-want) > 1 {
		t.Errorf("provider forwarding egress = %.0f bytes, want %.0f ((R-1)×N blocks)", provEgress, want)
	}

	// The legacy plane charges the client the full R×N.
	fb := smallBSFS(t)
	fb.FanoutWrites = true
	fm := fb.CreateBlob(testBlock, repl)
	writeBlocks(t, fb, fm.ID, nBlocks)
	if egress := fb.Net.EgressOf(client); math.Abs(egress-float64(repl)*payload) > 1 {
		t.Errorf("fanout client egress = %.0f bytes, want %.0f (R×N blocks)", egress, float64(repl)*payload)
	}
}

// TestChainedWriteBeatsFanoutAtR3 pins the structural throughput win:
// at replication 3 the chained plane's write completes well ahead of
// fan-out, whose client uplink carries three copies of everything.
func TestChainedWriteBeatsFanoutAtR3(t *testing.T) {
	const nBlocks = 8

	chained := smallBSFS(t)
	cm := chained.CreateBlob(testBlock, 3)
	chainedEnd := writeBlocks(t, chained, cm.ID, nBlocks)

	fanout := smallBSFS(t)
	fanout.FanoutWrites = true
	fm := fanout.CreateBlob(testBlock, 3)
	fanoutEnd := writeBlocks(t, fanout, fm.ID, nBlocks)

	if float64(chainedEnd) > 0.6*float64(fanoutEnd) {
		t.Errorf("chained write (%.2fs) should finish in <60%% of fanout (%.2fs) at R=3",
			chainedEnd.Seconds(), fanoutEnd.Seconds())
	}
}

// TestReadRotationSpreadsReplicaLoad: with the block replicated on two
// providers, repeated reads must be served by both, not serialize on
// the first recorded replica.
func TestReadRotationSpreadsReplicaLoad(t *testing.T) {
	b := smallBSFS(t)
	m := b.CreateBlob(testBlock, 2)
	b.Env.Go(func(p *sim.Proc) {
		if _, err := b.Write(p, 10, m.ID, blob.KindAppend, 0, testBlock, 1); err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < 4; i++ {
			if _, err := b.Read(p, 11, m.ID, 0, testBlock); err != nil {
				t.Error(err)
				return
			}
		}
	})
	b.Env.Run()

	// Find the two provider nodes holding the replicas and check both
	// served read traffic (write-hop egress is at most one block).
	served := 0
	for _, n := range b.provNode {
		if b.Net.EgressOf(n) > 1.5*float64(testBlock) {
			served++
		}
	}
	if served < 2 {
		t.Errorf("4 reads of a 2-replica block were served by %d providers, want both", served)
	}
}

// TestChainedSingleReplicaMatchesFanout: at R=1 the planes are the same
// single flow; their virtual completion times must agree.
func TestChainedSingleReplicaMatchesFanout(t *testing.T) {
	a := smallBSFS(t)
	am := a.CreateBlob(testBlock, 1)
	aEnd := writeBlocks(t, a, am.ID, 4)

	f := smallBSFS(t)
	f.FanoutWrites = true
	fm := f.CreateBlob(testBlock, 1)
	fEnd := writeBlocks(t, f, fm.ID, 4)

	if aEnd != fEnd {
		t.Errorf("R=1 chained (%.3fs) and fanout (%.3fs) should cost the same", aEnd.Seconds(), fEnd.Seconds())
	}
}

// --- acceptance benchmarks: client egress per write on the simnet
// billing model, chained vs fan-out ---

func benchmarkWritePlane(b *testing.B, fanout bool) {
	const (
		nBlocks = 8
		repl    = 3
		client  = 10
	)
	var egressPerWrite, mbps float64
	for i := 0; i < b.N; i++ {
		env := sim.NewEnv()
		net := simnet.New(env, simnet.Grid5000(12))
		bs := NewBSFS(net, DefaultTuning(), placement.NewRoundRobin(), 0,
			[]simnet.NodeID{1, 2}, []simnet.NodeID{3, 4, 5, 6, 7, 8, 9})
		bs.FanoutWrites = fanout
		m := bs.CreateBlob(testBlock, repl)
		var end sim.Time
		bs.Env.Go(func(p *sim.Proc) {
			if _, err := bs.Write(p, client, m.ID, blob.KindAppend, 0, nBlocks*testBlock, 1); err != nil {
				b.Error(err)
				return
			}
			end = p.Now()
		})
		bs.Env.Run()
		egressPerWrite = net.EgressOf(client)
		mbps = float64(nBlocks*testBlock) / float64(util.MB) / end.Seconds()
	}
	b.ReportMetric(egressPerWrite/float64(util.MB), "client_egress_MB/write")
	b.ReportMetric(mbps, "sim_MB/s")
}

func BenchmarkWriteFanout(b *testing.B)  { benchmarkWritePlane(b, true) }
func BenchmarkWriteChained(b *testing.B) { benchmarkWritePlane(b, false) }
