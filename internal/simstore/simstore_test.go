package simstore

import (
	"math"
	"testing"

	"blobseer/internal/blob"
	"blobseer/internal/placement"
	"blobseer/internal/sim"
	"blobseer/internal/simnet"
	"blobseer/internal/util"
)

const testBlock = 64 * util.MB

// smallBSFS deploys a simulated BlobSeer on a 12-node fabric: vm on 0,
// metadata on 1-2, providers on 3-9; nodes 10-11 free for clients.
func smallBSFS(t *testing.T) *BSFS {
	t.Helper()
	env := sim.NewEnv()
	net := simnet.New(env, simnet.Grid5000(12))
	return NewBSFS(net, DefaultTuning(), placement.NewRoundRobin(),
		0, []simnet.NodeID{1, 2}, []simnet.NodeID{3, 4, 5, 6, 7, 8, 9})
}

func smallHDFS(t *testing.T, strategy placement.Strategy) *HDFS {
	t.Helper()
	env := sim.NewEnv()
	net := simnet.New(env, simnet.Grid5000(12))
	return NewHDFS(net, DefaultTuning(), strategy, 0,
		[]simnet.NodeID{3, 4, 5, 6, 7, 8, 9})
}

func TestBSFSWriteAssignsSequentialVersions(t *testing.T) {
	b := smallBSFS(t)
	m := b.CreateBlob(testBlock, 1)
	var versions []blob.Version
	b.Env.Go(func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			v, err := b.Write(p, 10, m.ID, blob.KindAppend, 0, testBlock, uint64(i)+1)
			if err != nil {
				t.Errorf("write %d: %v", i, err)
				return
			}
			versions = append(versions, v)
		}
	})
	b.Env.Run()
	if len(versions) != 3 {
		t.Fatalf("want 3 versions, got %v", versions)
	}
	for i, v := range versions {
		if v != blob.Version(i+1) {
			t.Errorf("write %d got version %d", i, v)
		}
	}
	if _, size, err := b.VM.Latest(m.ID); err != nil || size != 3*testBlock {
		t.Errorf("latest size = %d, err %v; want %d", size, err, 3*testBlock)
	}
}

func TestBSFSSingleStreamRateMatchesTuning(t *testing.T) {
	b := smallBSFS(t)
	m := b.CreateBlob(testBlock, 1)
	var end sim.Time
	b.Env.Go(func(p *sim.Proc) {
		if _, err := b.Write(p, 10, m.ID, blob.KindAppend, 0, testBlock, 1); err != nil {
			t.Error(err)
			return
		}
		end = p.Now()
	})
	b.Env.Run()
	cap := b.Tun.BSFSWriteEff * b.Net.Config().UpBps
	ideal := float64(testBlock) / cap
	got := end.Seconds()
	if got < ideal || got > ideal*1.2 {
		t.Errorf("single write took %.3fs, want within 20%% above the %.3fs cap-limited time", got, ideal)
	}
}

func TestBSFSReadBackBytes(t *testing.T) {
	b := smallBSFS(t)
	m := b.CreateBlob(testBlock, 1)
	b.Env.Go(func(p *sim.Proc) {
		if _, err := b.Write(p, 10, m.ID, blob.KindAppend, 0, 2*testBlock, 1); err != nil {
			t.Error(err)
		}
	})
	b.Env.Run()
	var n int64
	b.Env.Go(func(p *sim.Proc) {
		var err error
		n, err = b.Read(p, 11, m.ID, testBlock/2, testBlock)
		if err != nil {
			t.Error(err)
		}
	})
	b.Env.Run()
	if n != testBlock {
		t.Errorf("read returned %d bytes, want %d", n, testBlock)
	}
}

func TestBSFSReplicationWritesAllCopies(t *testing.T) {
	b := smallBSFS(t)
	b.FanoutWrites = true // the legacy plane: client pushes every copy
	m := b.CreateBlob(testBlock, 3)
	var end sim.Time
	b.Env.Go(func(p *sim.Proc) {
		if _, err := b.Write(p, 10, m.ID, blob.KindAppend, 0, testBlock, 1); err != nil {
			t.Error(err)
			return
		}
		end = p.Now()
	})
	b.Env.Run()
	layout := b.Layout()
	total := 0
	for _, c := range layout {
		total += c
	}
	if total != 3 {
		t.Errorf("3 replicas should occupy 3 provider slots, layout %v", layout)
	}
	// Replicas are written sequentially by the same client flow, so 3x
	// the single-copy time is a lower bound.
	cap := b.Tun.BSFSWriteEff * b.Net.Config().UpBps
	if min := 3 * float64(testBlock) / cap; end.Seconds() < min {
		t.Errorf("replicated write took %.3fs, want >= %.3fs", end.Seconds(), min)
	}
}

func TestBSFSRoundRobinLayoutIsBalanced(t *testing.T) {
	b := smallBSFS(t)
	m := b.CreateBlob(testBlock, 1)
	b.Env.Go(func(p *sim.Proc) {
		for i := 0; i < 14; i++ { // 2 full rounds over 7 providers
			if _, err := b.Write(p, 10, m.ID, blob.KindAppend, 0, testBlock, uint64(i)+1); err != nil {
				t.Error(err)
				return
			}
		}
	})
	b.Env.Run()
	for i, c := range b.Layout() {
		if c != 2 {
			t.Errorf("provider %d stores %d blocks, want 2 (layout %v)", i, c, b.Layout())
		}
	}
}

func TestBSFSLocationsOfReportsNodes(t *testing.T) {
	b := smallBSFS(t)
	m := b.CreateBlob(testBlock, 1)
	b.Env.Go(func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			if _, err := b.Write(p, 10, m.ID, blob.KindAppend, 0, testBlock, uint64(i)+1); err != nil {
				t.Error(err)
			}
		}
	})
	b.Env.Run()
	nodes, err := b.LocationsOf(m.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 3 {
		t.Fatalf("want 3 chunk locations, got %v", nodes)
	}
	for i, n := range nodes {
		if n < 3 || n > 9 {
			t.Errorf("chunk %d on non-provider node %d", i, n)
		}
	}
}

func TestHDFSLocalFirstWritesLocally(t *testing.T) {
	h := smallHDFS(t, placement.NewLocalFirst(placement.NewRandomSticky(4, 1)))
	h.Env.Go(func(p *sim.Proc) {
		// Client on node 5 (a datanode): every chunk must stay local.
		if err := h.Write(p, 5, "/f", 4*testBlock, testBlock); err != nil {
			t.Error(err)
		}
	})
	h.Env.Run()
	for i, n := range h.LocationsOf("/f") {
		if n != 5 {
			t.Errorf("chunk %d placed on node %d, want local node 5", i, n)
		}
	}
}

func TestHDFSDedicatedWriterSpreadsChunks(t *testing.T) {
	h := smallHDFS(t, placement.NewLocalFirst(placement.NewRandomSticky(2, 7)))
	h.Env.Go(func(p *sim.Proc) {
		// Client on node 10 is NOT a datanode: placement falls through
		// to the sticky-random inner strategy.
		if err := h.Write(p, 10, "/f", 8*testBlock, testBlock); err != nil {
			t.Error(err)
		}
	})
	h.Env.Run()
	distinct := make(map[simnet.NodeID]bool)
	for _, n := range h.LocationsOf("/f") {
		if n == 10 {
			t.Error("chunk placed on the non-datanode client")
		}
		distinct[n] = true
	}
	if len(distinct) < 2 {
		t.Errorf("sticky placement with window 2 over 8 chunks should hit >=2 nodes, got %d", len(distinct))
	}
}

func TestHDFSNoDuplicateCreate(t *testing.T) {
	h := smallHDFS(t, placement.NewRandom(1))
	if err := h.CreateFile("/f"); err != nil {
		t.Fatal(err)
	}
	if err := h.CreateFile("/f"); err == nil {
		t.Fatal("duplicate create should fail")
	}
}

func TestHDFSReadUnknownFileFails(t *testing.T) {
	h := smallHDFS(t, placement.NewRandom(1))
	h.Env.Go(func(p *sim.Proc) {
		if _, err := h.Read(p, 10, "/missing", 0, testBlock); err == nil {
			t.Error("read of missing file should fail")
		}
	})
	h.Env.Run()
}

// TestDiskContentionHalvesRate pins the disk model: two concurrent
// readers pulling distinct chunks from the same datanode share its
// disk medium, so each sees roughly half the single-reader rate.
func TestDiskContentionHalvesRate(t *testing.T) {
	mk := func() *HDFS {
		env := sim.NewEnv()
		cfg := simnet.Grid5000(12)
		cfg.DiskBps = 80e6 // below the read cap so the disk binds
		net := simnet.New(env, cfg)
		return NewHDFS(net, DefaultTuning(), placement.NewRandomSticky(100, 1), 0,
			[]simnet.NodeID{3, 4, 5, 6, 7, 8, 9})
	}

	// Solo: one reader.
	h := mk()
	h.Env.Go(func(p *sim.Proc) {
		if err := h.Write(p, 10, "/f", 2*testBlock, testBlock); err != nil {
			t.Error(err)
		}
	})
	h.Env.Run()
	soloStart := h.Env.Now()
	var solo sim.Time
	h.Env.Go(func(p *sim.Proc) {
		if _, err := h.Read(p, 10, "/f", 0, testBlock); err != nil {
			t.Error(err)
		}
		solo = p.Now() - soloStart
	})
	h.Env.Run()

	// Contended: two readers on different client nodes, same disk
	// (window 100 stickiness pins both chunks to one datanode).
	h2 := mk()
	h2.Env.Go(func(p *sim.Proc) {
		if err := h2.Write(p, 10, "/f", 2*testBlock, testBlock); err != nil {
			t.Error(err)
		}
	})
	h2.Env.Run()
	nodes := h2.LocationsOf("/f")
	if nodes[0] != nodes[1] {
		t.Fatalf("expected both chunks on one node, got %v", nodes)
	}
	dualStart := h2.Env.Now()
	var dual [2]sim.Time
	for i := 0; i < 2; i++ {
		i := i
		client := simnet.NodeID(10 + i)
		h2.Env.Go(func(p *sim.Proc) {
			if _, err := h2.Read(p, client, "/f", int64(i)*testBlock, testBlock); err != nil {
				t.Error(err)
			}
			dual[i] = p.Now() - dualStart
		})
	}
	h2.Env.Run()

	// Solo rate is the per-stream cap; contended rate is the halved
	// disk medium (which is below the cap by construction).
	soloRate := h2.Tun.HDFSReadEff * h2.Net.Config().UpBps
	want := soloRate / (h2.Net.Config().DiskBps / 2)
	for i := range dual {
		ratio := dual[i].Seconds() / solo.Seconds()
		if math.Abs(ratio-want) > 0.15*want {
			t.Errorf("reader %d contended/solo ratio = %.2f, want ~%.2f (disk shared)", i, ratio, want)
		}
	}
}

func TestBSFSFilesRoundTrip(t *testing.T) {
	b := smallBSFS(t)
	f := NewBSFSFiles(b, testBlock, 1)
	if f.Name() != "bsfs" {
		t.Errorf("name = %q", f.Name())
	}
	if err := f.CreateFile("/a"); err != nil {
		t.Fatal(err)
	}
	if err := f.CreateFile("/a"); err == nil {
		t.Fatal("duplicate create should fail")
	}
	f.Env().Go(func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			if err := f.AppendBlock(p, 10, "/a", testBlock); err != nil {
				t.Error(err)
			}
		}
		if err := f.ReadRange(p, 11, "/a", 0, 2*testBlock); err != nil {
			t.Error(err)
		}
		if err := f.AppendBlock(p, 10, "/missing", testBlock); err == nil {
			t.Error("append to missing file should fail")
		}
	})
	f.Env().Run()
	if got := f.Size("/a"); got != 3*testBlock {
		t.Errorf("size = %d, want %d", got, 3*testBlock)
	}
	if nodes := f.ChunkNodes("/a"); len(nodes) != 3 {
		t.Errorf("chunk nodes = %v, want 3 entries", nodes)
	}
}

func TestHDFSFilesRoundTrip(t *testing.T) {
	h := smallHDFS(t, placement.NewRandom(3))
	f := NewHDFSFiles(h, testBlock)
	if f.Name() != "hdfs" {
		t.Errorf("name = %q", f.Name())
	}
	if err := f.CreateFile("/a"); err != nil {
		t.Fatal(err)
	}
	f.Env().Go(func(p *sim.Proc) {
		for i := 0; i < 2; i++ {
			if err := f.AppendBlock(p, 10, "/a", testBlock); err != nil {
				t.Error(err)
			}
		}
		if err := f.ReadRange(p, 11, "/a", testBlock/2, testBlock); err != nil {
			t.Error(err)
		}
	})
	f.Env().Run()
	if got := f.Size("/a"); got != 2*testBlock {
		t.Errorf("size = %d, want %d", got, 2*testBlock)
	}
}

// TestConcurrentBSFSWritersAllCommit pins the write/write concurrency
// claim at simulation level: N writers appending concurrently all get
// distinct versions and the blob ends at N blocks.
func TestConcurrentBSFSWritersAllCommit(t *testing.T) {
	b := smallBSFS(t)
	m := b.CreateBlob(testBlock, 1)
	const n = 12
	seen := make(map[blob.Version]bool)
	for i := 0; i < n; i++ {
		i := i
		b.Env.Go(func(p *sim.Proc) {
			v, err := b.Write(p, simnet.NodeID(3+(i%7)), m.ID, blob.KindAppend, 0, testBlock, uint64(i)+1)
			if err != nil {
				t.Errorf("writer %d: %v", i, err)
				return
			}
			if seen[v] {
				t.Errorf("duplicate version %d", v)
			}
			seen[v] = true
		})
	}
	b.Env.Run()
	if len(seen) != n {
		t.Fatalf("want %d distinct versions, got %d", n, len(seen))
	}
	if _, size, _ := b.VM.Latest(m.ID); size != n*testBlock {
		t.Errorf("final size %d, want %d", size, int64(n)*testBlock)
	}
}
