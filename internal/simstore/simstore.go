// Package simstore models BSFS and the HDFS-like baseline at the
// paper's deployment scale (270 nodes) on the simulated Grid'5000
// fabric. Crucially, the *decision logic* is the real library code —
// placement strategies (internal/placement), version assignment and
// publication ordering (vmanager.State), and segment-tree construction
// and resolution (mdtree over an in-memory store) — while only the data
// movement is fluid-simulated. The figures' shapes therefore emerge
// from the same algorithms a real deployment runs; the per-stream
// efficiency constants are the single calibration documented in
// EXPERIMENTS.md.
package simstore

import (
	"context"
	"fmt"
	"sort"

	"blobseer/internal/blob"
	"blobseer/internal/dht"
	"blobseer/internal/mdtree"
	"blobseer/internal/placement"
	"blobseer/internal/pmanager"
	"blobseer/internal/sim"
	"blobseer/internal/simnet"
	"blobseer/internal/vmanager"
)

// Tuning holds the calibration constants of the simulation.
type Tuning struct {
	// Per-flow rate caps as fractions of the link rate: single-stream
	// protocol efficiency. The paper measures ~47 MB/s HDFS writes and
	// ~65 MB/s BSFS writes on a 117.5 MB/s link.
	BSFSWriteEff float64
	BSFSReadEff  float64
	HDFSWriteEff float64
	HDFSReadEff  float64

	HDFSChunkSetup sim.Time // namenode alloc + pipeline setup per chunk
	VMService      sim.Time // version-manager service per op (the serialization point)
	VMShards       int      // control-plane shards; blob id % K picks the serving shard (0/1 = single manager)
	NNService      sim.Time // namenode service per op
	MetaService    sim.Time // metadata provider service per op
	MetaFanout     int      // concurrent per-provider batch RPCs per client
	PipelineDepth  int      // concurrent block flows per BSFS client

	// BSFS client streaming-pipeline windows (Section IV-B): how many
	// block fetches a sequential reader keeps in flight ahead of the
	// consumer, and how many full-block commits a writer keeps in
	// flight behind the producer. Zero models the synchronous client
	// the paper measured — the figures are calibrated against it — so
	// DefaultTuning leaves both off; the streaming ablation and the
	// Stream benchmarks turn them on to quantify the overlap win.
	ReadaheadBlocks  int
	WriteBehindDepth int

	// HDFSLocalWriteBps caps a datanode's local write path (loopback
	// socket + checksum verification + journal): slower than one remote
	// BlobSeer stream, which is why the co-deployed RandomTextWriter
	// still favors BSFS's remote round-robin striping (Section V-G).
	HDFSLocalWriteBps float64

	// Cold-tier model for providers on a tiered store (store.Tiered).
	// A block marked demoted serves its next read from the cold tier:
	// the flow is capped at ColdReadBps (the slow backend's media rate)
	// and pays ColdPenalty once (promotion setup: cold open + hot
	// install), after which the block is hot again. Zero ColdReadBps
	// leaves tiering unmodeled — the calibrated figures are unchanged.
	ColdReadBps float64
	ColdPenalty sim.Time
}

// DefaultTuning returns the calibrated constants.
func DefaultTuning() Tuning {
	return Tuning{
		BSFSWriteEff:      0.57, // ~67 MB/s
		BSFSReadEff:       0.55, // ~65 MB/s
		HDFSWriteEff:      0.40, // ~47 MB/s
		HDFSReadEff:       0.55, // ~65 MB/s solo; contention does the rest
		HDFSChunkSetup:    40 * sim.Millisecond,
		VMService:         2 * sim.Millisecond,
		NNService:         2 * sim.Millisecond,
		MetaService:       200 * sim.Microsecond,
		MetaFanout:        8,
		PipelineDepth:     2,
		HDFSLocalWriteBps: 48e6,
	}
}

// HostOfNode names the synthetic host of a fabric node (shared between
// storage and Map/Reduce co-deployment).
func HostOfNode(n simnet.NodeID) string { return fmt.Sprintf("h%d", n) }

// ProviderAddr returns the simulated RPC address of the data provider
// deployed on node n (failure injection and repair experiments name
// providers by address, as the real stack does).
func ProviderAddr(n simnet.NodeID) string { return fmt.Sprintf("provider-%d", n) }

// parallel runs n closures as child processes with bounded concurrency
// and blocks p until all complete. The kernel is cooperative, so the
// shared index needs no lock.
func parallel(p *sim.Proc, n, depth int, run func(cp *sim.Proc, i int)) {
	if n == 0 {
		return
	}
	if depth <= 0 || depth > n {
		depth = n
	}
	env := p.Env()
	done := env.NewEvent()
	next := 0
	live := depth
	for w := 0; w < depth; w++ {
		env.Go(func(cp *sim.Proc) {
			for next < n {
				i := next
				next++
				run(cp, i)
			}
			live--
			if live == 0 {
				done.Fire()
			}
		})
	}
	done.Wait(p)
}

// BSFS is the simulated BlobSeer/BSFS deployment.
type BSFS struct {
	Env *sim.Env
	Net *simnet.Net
	Tun Tuning

	// FanoutWrites selects the legacy data plane: the client pushes
	// every replica itself (R×B of client egress per block). The
	// default is the chained plane — one client flow to the chain head
	// plus one provider-to-provider flow per further hop — matching the
	// real client's core.DataPlaneChained.
	FanoutWrites bool

	VM    *vmanager.State
	PM    *pmanager.State
	Store *mdtree.MemStore

	vmNode    simnet.NodeID
	provNode  map[string]simnet.NodeID
	metaNode  map[string]simnet.NodeID
	metaAddrs []string
	ring      *dht.Ring
	vmRes     []*sim.Resource // one service queue per control-plane shard
	metaRes   map[string]*sim.Resource
	readRR    int // rotates the replica serving each extent fetch

	// Self-healing state (mirrors internal/repair over the simulated
	// fabric): dead providers serve nothing, the overlay records where
	// repair pushed relocated replicas, and the counters feed the
	// kill-provider ablation.
	dead           map[string]bool
	overlay        map[string][]string // block key -> extra replica addrs
	RepairedBlocks int
	RepairedBytes  int64

	// Tiered-store state (see Tuning.ColdReadBps): every written block
	// key, which of them currently live cold, and how many reads paid
	// the promotion path.
	blocks         map[string]bool
	demoted        map[string]bool
	PromotedBlocks int
}

// NewBSFS deploys a simulated BlobSeer instance: the version manager
// (and provider manager) on vmNode, metadata providers on metaNodes,
// data providers on provNodes — the paper's Section V-C layout.
func NewBSFS(net *simnet.Net, tun Tuning, strategy placement.Strategy, vmNode simnet.NodeID, metaNodes, provNodes []simnet.NodeID) *BSFS {
	shards := tun.VMShards
	if shards < 1 {
		shards = 1
	}
	b := &BSFS{
		Env: net.Env(), Net: net, Tun: tun,
		VM:       vmanager.NewState(nil),
		PM:       pmanager.NewState(strategy),
		Store:    mdtree.NewMemStore(),
		vmNode:   vmNode,
		provNode: make(map[string]simnet.NodeID),
		metaNode: make(map[string]simnet.NodeID),
		metaRes:  make(map[string]*sim.Resource),
		vmRes:    make([]*sim.Resource, shards),
		dead:     make(map[string]bool),
		overlay:  make(map[string][]string),
		blocks:   make(map[string]bool),
		demoted:  make(map[string]bool),
	}
	for k := range b.vmRes {
		b.vmRes[k] = b.Env.NewResource(1)
	}
	for _, n := range provNodes {
		addr := fmt.Sprintf("provider-%d", n)
		b.provNode[addr] = n
		b.PM.Register(addr, HostOfNode(n))
	}
	for _, n := range metaNodes {
		addr := fmt.Sprintf("meta-%d", n)
		b.metaNode[addr] = n
		b.metaAddrs = append(b.metaAddrs, addr)
		b.metaRes[addr] = b.Env.NewResource(1)
	}
	b.ring = dht.NewRing(b.metaAddrs, dht.DefaultVnodes)
	return b
}

// CreateBlob registers a new blob (instantaneous control plane: the
// paper's deployments create files once before measuring).
func (b *BSFS) CreateBlob(blockSize int64, replication int) blob.Meta {
	m, err := b.VM.CreateBlob(blockSize, replication)
	if err != nil {
		panic(err)
	}
	return m
}

// chargeMetaOps bills DHT traffic for a set of tree-node keys the way
// the real client now ships them: grouped by responsible provider, one
// batched RPC per provider in parallel. Each provider still pays the
// per-node service time (its store is touched once per node), but the
// per-node network round-trip collapses into one per provider.
func (b *BSFS) chargeMetaOps(p *sim.Proc, client simnet.NodeID, keys []string) {
	groups := make(map[string][]string)
	for _, k := range keys {
		addr := b.ring.Lookup(k, 1)[0]
		groups[addr] = append(groups[addr], k)
	}
	addrs := make([]string, 0, len(groups))
	for addr := range groups {
		addrs = append(addrs, addr)
	}
	sort.Strings(addrs) // deterministic simulation order
	parallel(p, len(addrs), b.Tun.MetaFanout, func(cp *sim.Proc, i int) {
		addr := addrs[i]
		batch := groups[addr]
		b.Net.Message(cp, client, b.metaNode[addr], 64+int64(len(batch))*192)
		b.metaRes[addr].Use(cp, b.Tun.MetaService*sim.Time(len(batch)))
	})
}

// vmShardRes returns the service queue of the version-manager shard
// owning id, mirroring vmanager.ShardOf.
func (b *BSFS) vmShardRes(id blob.ID) *sim.Resource {
	if len(b.vmRes) == 1 {
		return b.vmRes[0]
	}
	return b.vmRes[vmanager.ShardOf(id, len(b.vmRes))]
}

// writeCap and readCap are the per-flow rate ceilings: single-stream
// protocol efficiency as a fraction of the link rate.
func (b *BSFS) writeCap() float64 { return b.Tun.BSFSWriteEff * b.Net.Config().UpBps }
func (b *BSFS) readCap() float64  { return b.Tun.BSFSReadEff * b.Net.Config().UpBps }

// Write performs the full two-phase write protocol from node client.
// It returns the assigned version.
func (b *BSFS) Write(p *sim.Proc, client simnet.NodeID, id blob.ID, kind blob.WriteKind, off, size int64, nonce uint64) (blob.Version, error) {
	m, err := b.VM.GetMeta(id)
	if err != nil {
		return 0, err
	}
	nBlocks := int(blob.Blocks(size, m.BlockSize))

	// Provider allocation (provider manager co-hosted with the VM node).
	b.Net.Message(p, client, b.vmNode, 256)
	targets, err := b.PM.Allocate(nBlocks, m.Replication, HostOfNode(client))
	if err != nil {
		return 0, err
	}

	// Phase 1: data transfer, PipelineDepth flows in parallel.
	parallel(p, nBlocks, b.Tun.PipelineDepth, func(cp *sim.Proc, i int) {
		blockLen := m.BlockSize
		if int64(i) == int64(nBlocks-1) {
			if rem := size - int64(nBlocks-1)*m.BlockSize; rem > 0 {
				blockLen = rem
			}
		}
		if b.FanoutWrites {
			for _, addr := range targets[i] {
				// The provider's storage medium is in the path whether
				// the block travels the network or stays local.
				dst := b.provNode[addr]
				b.Net.TransferDisk(cp, client, dst, blockLen, b.writeCap(), dst)
			}
			return
		}
		// Chain replication: the client ships the block once to the
		// chain head; every hop streams frames to the next replica
		// while persisting locally, so all hops are concurrently
		// active flows and the block completes when the slowest hop
		// (the one its tail ack waits on) finishes. The client is
		// charged B of egress; each further hop bills the forwarding
		// provider's uplink.
		env := cp.Env()
		done := env.NewEvent()
		live := len(targets[i])
		src := client
		for _, addr := range targets[i] {
			hopSrc, hopDst := src, b.provNode[addr]
			env.Go(func(hp *sim.Proc) {
				b.Net.TransferDisk(hp, hopSrc, hopDst, blockLen, b.writeCap(), hopDst)
				live--
				if live == 0 {
					done.Fire()
				}
			})
			src = hopDst
		}
		done.Wait(cp)
	})

	// Phase 2a: version assignment — the only serialized step, queued
	// on the service resource of the shard owning this blob (the
	// simulated twin of the Router's hash(id) % K dispatch). Writers to
	// blobs on different shards never share a queue.
	b.Net.Message(p, client, b.vmNode, 128)
	b.vmShardRes(id).Use(p, b.Tun.VMService)
	a, err := b.VM.AssignVersion(id, kind, off, size, nonce, 0)
	if err != nil {
		return 0, err
	}

	// Phase 2b: metadata weaving over the real tree code.
	hist := &blob.History{}
	if err := hist.Extend(a.Descs); err != nil {
		return 0, err
	}
	refs := make([]mdtree.BlockRef, nBlocks)
	for i := range refs {
		ln := m.BlockSize
		if i == nBlocks-1 {
			if rem := size - int64(nBlocks-1)*m.BlockSize; rem > 0 {
				ln = rem
			}
		}
		refs[i] = mdtree.BlockRef{
			Key:       blob.BlockKey{Blob: id, Nonce: nonce, Seq: uint32(i)},
			Providers: targets[i],
			Len:       ln,
		}
		b.blocks[refs[i].Key.String()] = true // fresh writes land hot
	}
	if _, err := mdtree.Build(context.Background(), b.Store, m, hist, a.Version, refs); err != nil {
		return 0, err
	}
	created, err := mdtree.PlanNodes(m, hist, a.Version)
	if err != nil {
		return 0, err
	}
	keys := make([]string, len(created))
	for i, idn := range created {
		keys[i] = idn.Key()
	}
	b.chargeMetaOps(p, client, keys)

	// Phase 2c: commit.
	b.Net.Message(p, client, b.vmNode, 64)
	if err := b.VM.Commit(id, a.Version); err != nil {
		return 0, err
	}
	return a.Version, nil
}

// countingStore records the fetch pattern Resolve produces so reads can
// be billed: each GetBatch is one frontier level (one batched round-trip
// per provider), each lone Get a level of one.
type countingStore struct {
	inner  *mdtree.MemStore
	levels [][]string
}

func (c *countingStore) Put(ctx context.Context, n mdtree.Node) error {
	return c.inner.Put(ctx, n)
}

func (c *countingStore) PutBatch(ctx context.Context, nodes []mdtree.Node) error {
	return c.inner.PutBatch(ctx, nodes)
}

func (c *countingStore) Get(ctx context.Context, id mdtree.NodeID) (mdtree.Node, error) {
	c.levels = append(c.levels, []string{id.Key()})
	return c.inner.Get(ctx, id)
}

func (c *countingStore) GetBatch(ctx context.Context, ids []mdtree.NodeID) (map[mdtree.NodeID]mdtree.Node, error) {
	keys := make([]string, len(ids))
	for i, id := range ids {
		keys[i] = id.Key()
	}
	c.levels = append(c.levels, keys)
	return c.inner.GetBatch(ctx, ids)
}

// Read fetches [off, off+size) of the latest published version from
// node client, returning the bytes-equivalent amount read.
func (b *BSFS) Read(p *sim.Proc, client simnet.NodeID, id blob.ID, off, size int64) (int64, error) {
	m, err := b.VM.GetMeta(id)
	if err != nil {
		return 0, err
	}
	// Latest-version query.
	b.Net.Message(p, client, b.vmNode, 64)
	v, vsize, err := b.VM.Latest(id)
	if err != nil {
		return 0, err
	}
	if v == blob.NoVersion {
		return 0, nil
	}
	cs := &countingStore{inner: b.Store}
	extents, err := mdtree.Resolve(context.Background(), cs, m, v, vsize, blob.Range{Off: off, Len: size})
	if err != nil {
		return 0, err
	}
	// Tree descent: one batched multi-get round per frontier level.
	// Levels are inherently sequential (a level's children are unknown
	// until it is fetched), but within a level all providers answer in
	// parallel.
	for _, level := range cs.levels {
		b.chargeMetaOps(p, client, level)
	}
	// Block fetches. A replica co-located with the reading client is
	// served locally (Map/Reduce schedules tasks for exactly that);
	// otherwise rotate across the live replica set so concurrent readers
	// spread load instead of piling onto the first replica (the
	// cooperative kernel makes the shared rotation cursor safe). Dead
	// providers are skipped; once the original replica set is exhausted
	// the location overlay supplies repair copies — the same fall-through
	// order as the real client's fetchExtentInto.
	total := int64(0)
	var lost *mdtree.Extent
	parallel(p, len(extents), b.Tun.PipelineDepth, func(cp *sim.Proc, i int) {
		e := extents[i]
		if !e.HasData || len(e.Block.Providers) == 0 {
			return
		}
		addrs := b.liveReplicas(e.Block)
		if len(addrs) == 0 {
			if lost == nil {
				lost = &extents[i]
			}
			return
		}
		pick := -1
		for j, addr := range addrs {
			if b.provNode[addr] == client {
				pick = j
				break
			}
		}
		if pick < 0 {
			pick = b.readRR % len(addrs)
			b.readRR++
		}
		src := b.provNode[addrs[pick]]
		rate := b.readCap()
		if key := e.Block.Key.String(); b.demoted[key] {
			// Cold hit: the block streams at the slow tier's media rate
			// and pays the promotion setup once; it is hot afterwards.
			delete(b.demoted, key)
			b.PromotedBlocks++
			if b.Tun.ColdPenalty > 0 {
				cp.Sleep(b.Tun.ColdPenalty)
			}
			if b.Tun.ColdReadBps > 0 && b.Tun.ColdReadBps < rate {
				rate = b.Tun.ColdReadBps
			}
		}
		b.Net.TransferDisk(cp, src, client, e.Len, rate, src)
	})
	if lost != nil {
		return 0, fmt.Errorf("simstore: all replicas of block %s dead", lost.Block.Key)
	}
	for _, e := range extents {
		total += e.Len
	}
	return total, nil
}

// liveReplicas returns the replica addresses a read may be served
// from, mirroring the real client's fall-through order exactly: live
// originals while any exist, overlay relocations only once every
// original replica is dead (core.fetchExtentInto consults the overlay
// strictly as a last resort, so the sim must not credit repair copies
// with extra read capacity while originals still serve).
func (b *BSFS) liveReplicas(ref mdtree.BlockRef) []string {
	out := make([]string, 0, len(ref.Providers))
	for _, a := range ref.Providers {
		if !b.dead[a] {
			out = append(out, a)
		}
	}
	if len(out) > 0 {
		return out
	}
	for _, a := range b.overlay[ref.Key.String()] {
		if !b.dead[a] {
			out = append(out, a)
		}
	}
	return out
}

// liveCopies returns every live holder of the block — originals and
// overlay relocations together. The repair scanner counts redundancy
// with this (a relocated copy satisfies the replication target even
// while originals serve reads).
func (b *BSFS) liveCopies(ref mdtree.BlockRef) []string {
	out := make([]string, 0, len(ref.Providers))
	for _, a := range ref.Providers {
		if !b.dead[a] {
			out = append(out, a)
		}
	}
	for _, a := range b.overlay[ref.Key.String()] {
		if !b.dead[a] {
			out = append(out, a)
		}
	}
	return out
}

// KillProvider crashes a data provider: it stops serving reads and
// repair sources, and leaves the allocation pool.
func (b *BSFS) KillProvider(addr string) {
	b.dead[addr] = true
	b.PM.MarkDead(addr)
}

// Repair runs one scan-and-repair pass from node runner: it walks every
// blob's published versions through the real metadata code, diffs each
// block's replica set (originals + overlay) against live membership,
// and pushes each missing replica provider-to-provider over the fabric
// with `concurrency` transfers in flight — the simulated twin of
// repair.Engine.RunOnce. It returns the number of replicas created.
func (b *BSFS) Repair(p *sim.Proc, concurrency int) (int, error) {
	type job struct {
		ref mdtree.BlockRef
		src string
		dst []string
	}
	seen := make(map[string]bool)
	var jobs []job
	load := make(map[string]int64)
	var liveAddrs []string
	for addr := range b.provNode {
		if !b.dead[addr] {
			liveAddrs = append(liveAddrs, addr)
		}
	}
	sort.Strings(liveAddrs)
	for _, id := range b.VM.Blobs() {
		m, err := b.VM.GetMeta(id)
		if err != nil {
			return 0, err
		}
		published, _, err := b.VM.Latest(id)
		if err != nil || published == blob.NoVersion {
			continue
		}
		oldest, err := b.VM.PrunedBelow(id)
		if err != nil {
			return 0, err
		}
		hist := &blob.History{}
		descs, err := b.VM.History(id, 0)
		if err != nil {
			return 0, err
		}
		if err := hist.Extend(descs); err != nil {
			return 0, err
		}
		for v := oldest; v <= published; v++ {
			d, ok := hist.Desc(v)
			if !ok || d.Aborted {
				continue
			}
			extents, err := mdtree.Resolve(context.Background(), b.Store, m, v, d.SizeAfter, blob.Range{Off: 0, Len: d.SizeAfter})
			if err != nil {
				return 0, err
			}
			for _, e := range extents {
				if !e.HasData || len(e.Block.Providers) == 0 || seen[e.Block.Key.String()] {
					continue
				}
				seen[e.Block.Key.String()] = true
				live := b.liveCopies(e.Block)
				missing := m.Replication - len(live)
				if missing <= 0 || len(live) == 0 {
					continue
				}
				holding := make(map[string]bool, len(live))
				for _, a := range live {
					holding[a] = true
				}
				var dst []string
				for len(dst) < missing {
					best := ""
					for _, a := range liveAddrs {
						if holding[a] {
							continue
						}
						if best == "" || load[a] < load[best] {
							best = a
						}
					}
					if best == "" {
						break
					}
					holding[best] = true
					load[best]++
					dst = append(dst, best)
				}
				if len(dst) > 0 {
					jobs = append(jobs, job{ref: e.Block, src: live[0], dst: dst})
				}
			}
		}
	}
	copies := 0
	parallel(p, len(jobs), concurrency, func(cp *sim.Proc, i int) {
		j := jobs[i]
		// The source provider pushes the block down a chain of targets,
		// exactly like the real mReplicate reusing the chained data
		// plane: every hop is a concurrently active provider-to-provider
		// flow billed on the fabric.
		env := cp.Env()
		done := env.NewEvent()
		live := len(j.dst)
		src := b.provNode[j.src]
		for _, addr := range j.dst {
			hopSrc, hopDst := src, b.provNode[addr]
			env.Go(func(hp *sim.Proc) {
				b.Net.TransferDisk(hp, hopSrc, hopDst, j.ref.Len, b.writeCap(), hopDst)
				live--
				if live == 0 {
					done.Fire()
				}
			})
			src = hopDst
		}
		done.Wait(cp)
		b.overlay[j.ref.Key.String()] = append(b.overlay[j.ref.Key.String()], j.dst...)
		copies += len(j.dst)
		b.RepairedBlocks++
		b.RepairedBytes += j.ref.Len * int64(len(j.dst))
	})
	return copies, nil
}

// DemoteAll moves every stored block to the cold tier (the simulated
// twin of store.Tiered.DemoteNow with an elapsed idle policy), and
// returns how many blocks went cold. Subsequent reads pay the cold-tier
// path once per block, then the block is hot again.
func (b *BSFS) DemoteAll() int {
	n := 0
	for k := range b.blocks {
		if !b.demoted[k] {
			b.demoted[k] = true
			n++
		}
	}
	return n
}

// Layout returns blocks-per-provider counts (Figure 3b).
func (b *BSFS) Layout() []int { return b.PM.Layout() }

// LocationsOf returns, for each block of the blob's latest version, the
// fabric node storing it (the simulated Map/Reduce scheduler's locality
// source).
func (b *BSFS) LocationsOf(id blob.ID) ([]simnet.NodeID, error) {
	m, err := b.VM.GetMeta(id)
	if err != nil {
		return nil, err
	}
	v, size, err := b.VM.Latest(id)
	if err != nil || v == blob.NoVersion {
		return nil, err
	}
	extents, err := mdtree.Resolve(context.Background(), b.Store, m, v, size, blob.Range{Off: 0, Len: size})
	if err != nil {
		return nil, err
	}
	out := make([]simnet.NodeID, 0, len(extents))
	for _, e := range extents {
		if e.HasData && len(e.Block.Providers) > 0 {
			out = append(out, b.provNode[e.Block.Providers[0]])
		} else {
			out = append(out, -1)
		}
	}
	return out, nil
}
