package simstore

import (
	"testing"

	"blobseer/internal/blob"
	"blobseer/internal/placement"
	"blobseer/internal/sim"
	"blobseer/internal/simnet"
	"blobseer/internal/util"
)

// streamFixture deploys a small BSFS with one single-replica blob.
func streamFixture() (*BSFS, blob.Meta) {
	env := sim.NewEnv()
	net := simnet.New(env, simnet.Grid5000(12))
	b := NewBSFS(net, DefaultTuning(), placement.NewRoundRobin(), 0,
		[]simnet.NodeID{1, 2}, []simnet.NodeID{3, 4, 5, 6, 7, 8, 9})
	m := b.CreateBlob(testBlock, 1)
	return b, m
}

// streamWriteTime streams nBlocks through StreamWrite at the given
// depth on a fresh deployment and returns the virtual elapsed time.
func streamWriteTime(t testing.TB, nBlocks, depth int) sim.Time {
	t.Helper()
	b, m := streamFixture()
	var end sim.Time
	b.Env.Go(func(p *sim.Proc) {
		if err := b.StreamWrite(p, 10, m.ID, nBlocks, depth, 0); err != nil {
			t.Error(err)
			return
		}
		end = p.Now()
	})
	b.Env.Run()
	return end
}

// streamReadTime pre-writes nBlocks synchronously, then streams them
// back through StreamRead at the given readahead, returning the
// virtual time of the read phase alone.
func streamReadTime(t testing.TB, nBlocks, readahead int) sim.Time {
	t.Helper()
	b, m := streamFixture()
	b.Env.Go(func(p *sim.Proc) {
		if err := b.StreamWrite(p, 10, m.ID, nBlocks, 1, 0); err != nil {
			t.Error(err)
		}
	})
	b.Env.Run()
	start := b.Env.Now()
	var end sim.Time
	b.Env.Go(func(p *sim.Proc) {
		if err := b.StreamRead(p, 11, m.ID, nBlocks, readahead); err != nil {
			t.Error(err)
			return
		}
		end = p.Now()
	})
	b.Env.Run()
	return end - start
}

// TestStreamWritePipelinedBeatsSync pins the tentpole claim on the
// simnet billing model: a write-behind window of 4 blocks finishes a
// 16-block stream well ahead of the synchronous client.
func TestStreamWritePipelinedBeatsSync(t *testing.T) {
	syncT := streamWriteTime(t, 16, 1)
	pipeT := streamWriteTime(t, 16, 4)
	if float64(pipeT) > 0.8*float64(syncT) {
		t.Errorf("pipelined write (%.2fs) should finish in <80%% of sync (%.2fs)",
			pipeT.Seconds(), syncT.Seconds())
	}
}

// TestStreamReadPipelinedBeatsSync: same for the readahead window.
func TestStreamReadPipelinedBeatsSync(t *testing.T) {
	syncT := streamReadTime(t, 16, 0)
	pipeT := streamReadTime(t, 16, 3)
	if float64(pipeT) > 0.8*float64(syncT) {
		t.Errorf("pipelined read (%.2fs) should finish in <80%% of sync (%.2fs)",
			pipeT.Seconds(), syncT.Seconds())
	}
}

// TestStreamWriteDepthOneIsSequential pins the ablation contract: a
// window of one block in flight costs exactly the same virtual time as
// the plain sequential loop of per-block writes the figures run — the
// pipelined client with the window closed IS the synchronous client.
func TestStreamWriteDepthOneIsSequential(t *testing.T) {
	streamed := streamWriteTime(t, 8, 1)

	b, m := streamFixture()
	var end sim.Time
	b.Env.Go(func(p *sim.Proc) {
		for i := 0; i < 8; i++ {
			if _, err := b.Write(p, 10, m.ID, blob.KindWrite, int64(i)*testBlock, testBlock, uint64(i)+1); err != nil {
				t.Error(err)
				return
			}
		}
		end = p.Now()
	})
	b.Env.Run()
	if streamed != end {
		t.Errorf("StreamWrite depth 1 (%.3fs) should match the sequential loop (%.3fs)",
			streamed.Seconds(), end.Seconds())
	}
}

// --- acceptance benchmarks: streaming throughput, synchronous vs
// pipelined client (CI smoke runs these alongside the data-plane ones) ---

func BenchmarkStreamWrite(b *testing.B) {
	const nBlocks = 16
	for _, c := range []struct {
		name  string
		depth int
	}{{"sync", 1}, {"pipelined", 4}} {
		b.Run(c.name, func(b *testing.B) {
			var end sim.Time
			for i := 0; i < b.N; i++ {
				end = streamWriteTime(b, nBlocks, c.depth)
			}
			b.ReportMetric(float64(nBlocks*testBlock)/float64(util.MB)/end.Seconds(), "sim_MB/s")
		})
	}
}

func BenchmarkStreamRead(b *testing.B) {
	const nBlocks = 16
	for _, c := range []struct {
		name      string
		readahead int
	}{{"sync", 0}, {"pipelined", 3}} {
		b.Run(c.name, func(b *testing.B) {
			var end sim.Time
			for i := 0; i < b.N; i++ {
				end = streamReadTime(b, nBlocks, c.readahead)
			}
			b.ReportMetric(float64(nBlocks*testBlock)/float64(util.MB)/end.Seconds(), "sim_MB/s")
		})
	}
}
