package simstore

import (
	"testing"

	"blobseer/internal/blob"
	"blobseer/internal/placement"
	"blobseer/internal/sim"
	"blobseer/internal/simnet"
	"blobseer/internal/util"
)

const repairBlock = 4 * util.MB

func newRepairSim(t *testing.T, providers int) (*BSFS, []simnet.NodeID, simnet.NodeID) {
	t.Helper()
	env := sim.NewEnv()
	fabric := providers + 4
	net := simnet.New(env, simnet.Grid5000(fabric))
	metas := []simnet.NodeID{1, 2}
	provs := make([]simnet.NodeID, providers)
	for i := range provs {
		provs[i] = simnet.NodeID(3 + i)
	}
	writer := simnet.NodeID(fabric - 1)
	b := NewBSFS(net, DefaultTuning(), placement.NewRoundRobin(), 0, metas, provs)
	return b, provs, writer
}

// TestSimRepairPinsTraffic mirrors the real-stack op-count regression:
// a repair pass moves exactly the lost replicas — provider-to-provider,
// never over the client's uplink — and a second pass moves nothing.
func TestSimRepairPinsTraffic(t *testing.T) {
	const nBlocks = 8
	b, provs, writer := newRepairSim(t, 6)
	m := b.CreateBlob(repairBlock, 3)
	b.Env.Go(func(p *sim.Proc) {
		for i := 0; i < nBlocks; i++ {
			if _, err := b.Write(p, writer, m.ID, blob.KindAppend, 0, repairBlock, uint64(i)+1); err != nil {
				panic(err)
			}
		}
	})
	b.Env.Run()

	victim := ProviderAddr(provs[0])
	b.KillProvider(victim)
	// Round-robin at R=3 over 6 providers: each provider holds
	// nBlocks*3/6 replicas.
	lost := nBlocks * 3 / 6
	writerEgress := b.Net.EgressOf(writer)

	var copies int
	b.Env.Go(func(p *sim.Proc) {
		n, err := b.Repair(p, 4)
		if err != nil {
			panic(err)
		}
		copies = n
	})
	b.Env.Run()
	if copies != lost {
		t.Errorf("repair created %d replicas, want exactly the %d lost", copies, lost)
	}
	if b.RepairedBlocks != lost || b.RepairedBytes != int64(lost)*repairBlock {
		t.Errorf("repair counters = %d blocks / %d bytes, want %d / %d",
			b.RepairedBlocks, b.RepairedBytes, lost, int64(lost)*repairBlock)
	}
	if got := b.Net.EgressOf(writer); got != writerEgress {
		t.Errorf("repair billed the client uplink: egress %f -> %f", writerEgress, got)
	}

	// Idempotence: a second pass finds nothing under-replicated.
	b.Env.Go(func(p *sim.Proc) {
		n, err := b.Repair(p, 4)
		if err != nil {
			panic(err)
		}
		copies = n
	})
	b.Env.Run()
	if copies != 0 {
		t.Errorf("second repair pass created %d redundant replicas", copies)
	}
}

// TestSimReadsSurviveViaOverlay pins the overlay read path of the
// simulator: after repair, blocks whose whole original replica set is
// dead still read through their relocated copies.
func TestSimReadsSurviveViaOverlay(t *testing.T) {
	const nBlocks = 6
	b, provs, writer := newRepairSim(t, 6)
	m := b.CreateBlob(repairBlock, 3)
	b.Env.Go(func(p *sim.Proc) {
		for i := 0; i < nBlocks; i++ {
			if _, err := b.Write(p, writer, m.ID, blob.KindAppend, 0, repairBlock, uint64(i)+1); err != nil {
				panic(err)
			}
		}
	})
	b.Env.Run()

	b.KillProvider(ProviderAddr(provs[0]))
	b.Env.Go(func(p *sim.Proc) {
		if _, err := b.Repair(p, 4); err != nil {
			panic(err)
		}
	})
	b.Env.Run()

	// Kill the rest of the {0,1,2} replica set: block 0's originals are
	// all gone; only the repair copy remains.
	b.KillProvider(ProviderAddr(provs[1]))
	b.KillProvider(ProviderAddr(provs[2]))
	var got int64
	b.Env.Go(func(p *sim.Proc) {
		n, err := b.Read(p, writer, m.ID, 0, int64(nBlocks)*repairBlock)
		if err != nil {
			panic(err)
		}
		got = n
	})
	b.Env.Run()
	if got != int64(nBlocks)*repairBlock {
		t.Errorf("read returned %d bytes, want %d", got, int64(nBlocks)*repairBlock)
	}

	// Without the overlay entries the same read would fail: verify the
	// failure mode by wiping them.
	b2, provs2, writer2 := newRepairSim(t, 6)
	m2 := b2.CreateBlob(repairBlock, 3)
	b2.Env.Go(func(p *sim.Proc) {
		for i := 0; i < nBlocks; i++ {
			if _, err := b2.Write(p, writer2, m2.ID, blob.KindAppend, 0, repairBlock, uint64(i)+1); err != nil {
				panic(err)
			}
		}
	})
	b2.Env.Run()
	b2.KillProvider(ProviderAddr(provs2[0]))
	b2.KillProvider(ProviderAddr(provs2[1]))
	b2.KillProvider(ProviderAddr(provs2[2]))
	b2.Env.Go(func(p *sim.Proc) {
		if _, err := b2.Read(p, writer2, m2.ID, 0, int64(nBlocks)*repairBlock); err == nil {
			panic("read of fully-dead replica set succeeded without repair")
		}
	})
	b2.Env.Run()
}
