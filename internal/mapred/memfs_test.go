package mapred

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"blobseer/internal/fs"
)

// memFS is a minimal in-memory fs.FileSystem used by the white-box
// tests of this package (the real backends live above mapred in the
// dependency graph, so they are exercised from engine_test.go in the
// external test package instead).
type memFS struct {
	mu        sync.Mutex
	files     map[string][]byte
	blockSize int64
}

var _ fs.FileSystem = (*memFS)(nil)

func newMemFS(blockSize int64) *memFS {
	return &memFS{files: make(map[string][]byte), blockSize: blockSize}
}

func (m *memFS) Name() string     { return "memfs" }
func (m *memFS) BlockSize() int64 { return m.blockSize }

func (m *memFS) Create(ctx context.Context, path string, overwrite bool) (fs.Writer, error) {
	path = fs.Clean(path)
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[path]; ok && !overwrite {
		return nil, fs.ErrExists
	}
	m.files[path] = nil
	return &memWriter{fs: m, path: path}, nil
}

func (m *memFS) Append(ctx context.Context, path string) (fs.Writer, error) {
	path = fs.Clean(path)
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[path]; !ok {
		return nil, fs.ErrNotFound
	}
	return &memWriter{fs: m, path: path, appendMode: true}, nil
}

func (m *memFS) Open(ctx context.Context, path string) (fs.Reader, error) {
	path = fs.Clean(path)
	m.mu.Lock()
	data, ok := m.files[path]
	m.mu.Unlock()
	if !ok {
		return nil, fs.ErrNotFound
	}
	return &memReader{Reader: bytes.NewReader(data)}, nil
}

func (m *memFS) Stat(ctx context.Context, path string) (fs.FileStatus, error) {
	path = fs.Clean(path)
	m.mu.Lock()
	defer m.mu.Unlock()
	if data, ok := m.files[path]; ok {
		return fs.FileStatus{Path: path, Size: int64(len(data))}, nil
	}
	// Directory if any file lives under it.
	for p := range m.files {
		if strings.HasPrefix(p, path+"/") || path == "/" {
			return fs.FileStatus{Path: path, IsDir: true}, nil
		}
	}
	return fs.FileStatus{}, fs.ErrNotFound
}

func (m *memFS) List(ctx context.Context, path string) ([]fs.FileStatus, error) {
	path = fs.Clean(path)
	prefix := path + "/"
	if path == "/" {
		prefix = "/"
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []fs.FileStatus
	for p, data := range m.files {
		if strings.HasPrefix(p, prefix) && !strings.Contains(p[len(prefix):], "/") {
			out = append(out, fs.FileStatus{Path: p, Size: int64(len(data))})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

func (m *memFS) Mkdirs(ctx context.Context, path string) error { return nil }

func (m *memFS) Delete(ctx context.Context, path string, recursive bool) error {
	path = fs.Clean(path)
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.files, path)
	for p := range m.files {
		if recursive && strings.HasPrefix(p, path+"/") {
			delete(m.files, p)
		}
	}
	return nil
}

func (m *memFS) Rename(ctx context.Context, src, dst string) error {
	src, dst = fs.Clean(src), fs.Clean(dst)
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.files[src]
	if !ok {
		return fs.ErrNotFound
	}
	delete(m.files, src)
	m.files[dst] = data
	return nil
}

func (m *memFS) Locations(ctx context.Context, path string, off, length int64) ([]fs.BlockLocation, error) {
	st, err := m.Stat(ctx, path)
	if err != nil {
		return nil, err
	}
	var out []fs.BlockLocation
	for o := int64(0); o < st.Size; o += m.blockSize {
		ln := m.blockSize
		if o+ln > st.Size {
			ln = st.Size - o
		}
		host := fmt.Sprintf("memhost-%d", (o/m.blockSize)%3)
		out = append(out, fs.BlockLocation{Off: o, Len: ln, Hosts: []string{host}})
	}
	return out, nil
}

type memWriter struct {
	fs         *memFS
	path       string
	appendMode bool
	buf        []byte
	closed     bool
}

func (w *memWriter) Write(p []byte) (int, error) {
	if w.closed {
		return 0, fs.ErrWriterClosed
	}
	w.buf = append(w.buf, p...)
	return len(p), nil
}

func (w *memWriter) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	w.fs.mu.Lock()
	defer w.fs.mu.Unlock()
	if w.appendMode {
		w.fs.files[w.path] = append(w.fs.files[w.path], w.buf...)
	} else {
		w.fs.files[w.path] = w.buf
	}
	return nil
}

type memReader struct {
	*bytes.Reader
}

func (r *memReader) Close() error { return nil }

var _ io.Seeker = (*memReader)(nil)
