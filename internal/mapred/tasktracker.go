package mapred

import (
	"context"
	"fmt"
	"sync"
	"time"

	"blobseer/internal/fs"
	"blobseer/internal/rpc"
	"blobseer/internal/wire"
)

// TaskTracker RPC method numbers.
const (
	mGetMapOutput uint16 = iota + 1
)

// TaskTrackerConfig configures one tracker.
type TaskTrackerConfig struct {
	Addr        string // this tracker's RPC endpoint (shuffle serving)
	Host        string // physical host (locality matching)
	FS          fs.FileSystem
	JT          *JTClient
	Pool        *rpc.Pool
	MapSlots    int           // concurrent map tasks (2 in the paper's Hadoop era)
	ReduceSlots int           // concurrent reduce tasks
	Poll        time.Duration // heartbeat interval
}

func (c *TaskTrackerConfig) fill() {
	if c.MapSlots <= 0 {
		c.MapSlots = 2
	}
	if c.ReduceSlots <= 0 {
		c.ReduceSlots = 1
	}
	if c.Poll <= 0 {
		c.Poll = 5 * time.Millisecond
	}
}

// TaskTracker executes map and reduce tasks and serves map outputs to
// reducers (the shuffle).
type TaskTracker struct {
	cfg TaskTrackerConfig

	mu      sync.Mutex
	outputs map[string][]byte // shuffle key -> serialized KVs
	running int

	stop chan struct{}
	wg   sync.WaitGroup
}

func shuffleKey(jobID uint64, mapTask, partition int) string {
	return fmt.Sprintf("%d/%d/%d", jobID, mapTask, partition)
}

// NewTaskTracker returns an unstarted tracker.
func NewTaskTracker(cfg TaskTrackerConfig) *TaskTracker {
	cfg.fill()
	return &TaskTracker{
		cfg:     cfg,
		outputs: make(map[string][]byte),
		stop:    make(chan struct{}),
	}
}

// Mux returns the tracker's RPC dispatch table (shuffle service).
func (t *TaskTracker) Mux() *rpc.Mux {
	m := rpc.NewMux()
	m.Handle(mGetMapOutput, t.handleGetMapOutput)
	return m
}

func (t *TaskTracker) handleGetMapOutput(ctx context.Context, p []byte) ([]byte, error) {
	r := wire.NewReader(p)
	jobID := r.U64()
	mapTask := int(r.U32())
	partition := int(r.U32())
	if err := r.Err(); err != nil {
		return nil, err
	}
	t.mu.Lock()
	data, ok := t.outputs[shuffleKey(jobID, mapTask, partition)]
	t.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("mapred: no output for job %d map %d partition %d", jobID, mapTask, partition)
	}
	b := wire.NewBuffer(4 + len(data))
	b.Bytes32(data)
	return b.Bytes(), nil
}

// Start launches the heartbeat loop.
func (t *TaskTracker) Start() {
	t.wg.Add(1)
	go t.loop()
}

// Stop terminates the tracker and waits for in-flight tasks.
func (t *TaskTracker) Stop() {
	select {
	case <-t.stop:
	default:
		close(t.stop)
	}
	t.wg.Wait()
}

func (t *TaskTracker) loop() {
	defer t.wg.Done()
	ctx := context.Background()
	ticker := time.NewTicker(t.cfg.Poll)
	defer ticker.Stop()
	for {
		select {
		case <-t.stop:
			return
		case <-ticker.C:
		}
		t.mu.Lock()
		free := t.cfg.MapSlots + t.cfg.ReduceSlots - t.running
		t.mu.Unlock()
		if free <= 0 {
			continue
		}
		asgs, gc, err := t.cfg.JT.RequestTasks(ctx, t.cfg.Addr, t.cfg.Host, free, free)
		if err != nil {
			continue // jobtracker unreachable; retry next beat
		}
		if len(gc) > 0 {
			t.gcJobs(gc)
		}
		for _, a := range asgs {
			t.mu.Lock()
			t.running++
			t.mu.Unlock()
			t.wg.Add(1)
			go func(a Assignment) {
				defer t.wg.Done()
				err := t.runTask(ctx, a)
				msg := ""
				if err != nil {
					msg = err.Error()
				}
				_ = t.cfg.JT.Report(ctx, a.JobID, a.Type, a.TaskID, t.cfg.Addr, err == nil, msg)
				t.mu.Lock()
				t.running--
				t.mu.Unlock()
			}(a)
		}
	}
}

func (t *TaskTracker) gcJobs(ids []uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, id := range ids {
		prefix := fmt.Sprintf("%d/", id)
		for k := range t.outputs {
			if len(k) > len(prefix) && k[:len(prefix)] == prefix {
				delete(t.outputs, k)
			}
		}
	}
}

func (t *TaskTracker) runTask(ctx context.Context, a Assignment) error {
	if a.Type == taskMap {
		return t.runMap(ctx, a)
	}
	return t.runReduce(ctx, a)
}

// runMap executes one map task: read the split, apply the mapper,
// partition the output. Map-only jobs write part-m files directly (the
// RandomTextWriter pattern); jobs with reducers keep the partitions in
// memory for the shuffle.
func (t *TaskTracker) runMap(ctx context.Context, a Assignment) error {
	app, err := LookupApp(a.Conf.App)
	if err != nil {
		return err
	}
	mapper, err := app.NewMapper(&a.Conf)
	if err != nil {
		return err
	}

	if a.Conf.NumReduces == 0 {
		// Map-only: emit writes lines straight to this task's output
		// file, mirroring Hadoop's part-m-NNNNN convention.
		path := fmt.Sprintf("%s/part-m-%05d", fs.Clean(a.Conf.OutputDir), a.TaskID)
		w, err := t.cfg.FS.Create(ctx, path, true)
		if err != nil {
			return err
		}
		emit := func(k, v string) error {
			_, err := fmt.Fprintf(w, "%s\t%s\n", k, v)
			return err
		}
		if err := t.feedMapper(ctx, a, mapper, emit); err != nil {
			w.Close()
			return err
		}
		return w.Close()
	}

	parts := make([][]KV, a.Conf.NumReduces)
	emit := func(k, v string) error {
		p := partitionOf(k, a.Conf.NumReduces)
		parts[p] = append(parts[p], KV{Key: k, Value: v})
		return nil
	}
	if err := t.feedMapper(ctx, a, mapper, emit); err != nil {
		return err
	}
	t.mu.Lock()
	for p, kvs := range parts {
		sortKVs(kvs)
		t.outputs[shuffleKey(a.JobID, a.TaskID, p)] = encodeKVs(kvs)
	}
	t.mu.Unlock()
	return nil
}

// feedMapper streams the split's records through the mapper.
func (t *TaskTracker) feedMapper(ctx context.Context, a Assignment, mapper Mapper, emit Emit) error {
	if a.Split.Synthetic {
		rec := Record{
			Key:   fmt.Sprintf("%d", a.Split.SynthSeq),
			Value: fmt.Sprintf("%d", a.Split.SynthSize),
		}
		return mapper.Map(ctx, rec, emit)
	}
	lr, err := newLineReader(ctx, t.cfg.FS, a.Split, a.Conf.InputVersion)
	if err != nil {
		return err
	}
	defer lr.close()
	for {
		rec, ok, err := lr.next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if err := mapper.Map(ctx, rec, emit); err != nil {
			return err
		}
	}
}

// runReduce fetches its partition from every map's tracker, merges by
// key, applies the reducer and writes the output file — or appends to
// the shared output file when the job asks for the concurrent-append
// mode of Section V-F.
func (t *TaskTracker) runReduce(ctx context.Context, a Assignment) error {
	app, err := LookupApp(a.Conf.App)
	if err != nil {
		return err
	}
	if app.NewReducer == nil {
		return fmt.Errorf("mapred: app %q has no reducer", a.Conf.App)
	}
	reducer, err := app.NewReducer(&a.Conf)
	if err != nil {
		return err
	}

	// Shuffle: pull this partition from every map output.
	var all []KV
	for mapTask := 0; mapTask < a.NumMaps; mapTask++ {
		addr := a.MapAddrs[mapTask]
		kvs, err := t.fetchMapOutput(ctx, addr, a.JobID, mapTask, a.TaskID)
		if err != nil {
			return fmt.Errorf("mapred: shuffle from %s: %w", addr, err)
		}
		all = append(all, kvs...)
	}
	sortKVs(all)

	var w fs.Writer
	if a.Conf.SharedOutput {
		shared := fs.Clean(a.Conf.OutputDir) + "/output"
		w, err = t.cfg.FS.Append(ctx, shared)
		if err != nil {
			// HDFS has no append: fall back to per-reducer part files,
			// the behaviour the paper describes as Hadoop's status quo.
			w, err = t.cfg.FS.Create(ctx, fmt.Sprintf("%s/part-r-%05d", fs.Clean(a.Conf.OutputDir), a.TaskID), true)
		}
	} else {
		w, err = t.cfg.FS.Create(ctx, fmt.Sprintf("%s/part-r-%05d", fs.Clean(a.Conf.OutputDir), a.TaskID), true)
	}
	if err != nil {
		return err
	}
	emit := func(k, v string) error {
		_, err := fmt.Fprintf(w, "%s\t%s\n", k, v)
		return err
	}
	// Group runs of equal keys.
	for i := 0; i < len(all); {
		j := i
		for j < len(all) && all[j].Key == all[i].Key {
			j++
		}
		values := make([]string, 0, j-i)
		for _, kv := range all[i:j] {
			values = append(values, kv.Value)
		}
		if err := reducer.Reduce(ctx, all[i].Key, values, emit); err != nil {
			w.Close()
			return err
		}
		i = j
	}
	return w.Close()
}

func (t *TaskTracker) fetchMapOutput(ctx context.Context, addr string, jobID uint64, mapTask, partition int) ([]KV, error) {
	if addr == t.cfg.Addr {
		// Local shortcut: reducers co-located with the map output.
		t.mu.Lock()
		data, ok := t.outputs[shuffleKey(jobID, mapTask, partition)]
		t.mu.Unlock()
		if !ok {
			return nil, fmt.Errorf("mapred: local output missing")
		}
		return decodeKVs(data)
	}
	cl, err := t.cfg.Pool.Get(addr)
	if err != nil {
		return nil, err
	}
	b := wire.NewBuffer(16)
	b.U64(jobID)
	b.U32(uint32(mapTask))
	b.U32(uint32(partition))
	resp, err := cl.Call(ctx, mGetMapOutput, b.Bytes())
	if err != nil {
		return nil, err
	}
	r := wire.NewReader(resp)
	data := r.Bytes32()
	if err := r.Err(); err != nil {
		return nil, err
	}
	return decodeKVs(data)
}

// SubmitAndWait submits conf and polls until the job finishes.
func SubmitAndWait(ctx context.Context, jt *JTClient, conf JobConf, poll time.Duration) (JobStatus, error) {
	if poll <= 0 {
		poll = 10 * time.Millisecond
	}
	id, err := jt.Submit(ctx, conf)
	if err != nil {
		return JobStatus{}, err
	}
	for {
		st, err := jt.Status(ctx, id)
		if err != nil {
			return JobStatus{}, err
		}
		if st.State != JobRunning {
			if st.State == JobFailed {
				return st, fmt.Errorf("mapred: job failed: %s", st.Err)
			}
			return st, nil
		}
		select {
		case <-ctx.Done():
			return JobStatus{}, ctx.Err()
		case <-time.After(poll):
		}
	}
}
