package mapred_test

import (
	"bufio"
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"blobseer/internal/cluster"
	"blobseer/internal/fs"
	"blobseer/internal/mapred"
	"blobseer/internal/mapred/apps"
)

const B = 4 * 1024

// storageFactory abstracts "which paper storage layer backs the job".
type storageFactory struct {
	name  string
	start func(t *testing.T, nodes int) func(host string) (fs.FileSystem, error)
}

var backends = []storageFactory{
	{
		name: "bsfs",
		start: func(t *testing.T, nodes int) func(string) (fs.FileSystem, error) {
			cl, err := cluster.StartBlobSeer(cluster.Config{
				DataProviders: nodes, MetaProviders: 2, BlockSize: B,
			})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(cl.Stop)
			return func(host string) (fs.FileSystem, error) { return cl.NewBSFS(host) }
		},
	},
	{
		name: "hdfs",
		start: func(t *testing.T, nodes int) func(string) (fs.FileSystem, error) {
			h, err := cluster.StartHDFS(cluster.HDFSConfig{Datanodes: nodes, BlockSize: B})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(h.Stop)
			return func(host string) (fs.FileSystem, error) { return h.NewFS(host) }
		},
	},
}

func startEngine(t *testing.T, fsFor func(string) (fs.FileSystem, error), trackers int) *cluster.MapRed {
	t.Helper()
	m, err := cluster.StartMapRed(cluster.MapRedConfig{
		Trackers: trackers,
		FSFor:    fsFor,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Stop)
	return m
}

func catDir(t *testing.T, fsys fs.FileSystem, dir string) string {
	t.Helper()
	sts, err := fsys.List(context.Background(), dir)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for _, st := range sts {
		if st.IsDir {
			continue
		}
		r, err := fsys.Open(context.Background(), st.Path)
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(r)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			sb.WriteString(sc.Text())
			sb.WriteByte('\n')
		}
		r.Close()
	}
	return sb.String()
}

func TestRandomTextWriterOnBothBackends(t *testing.T) {
	// The paper's first application: map-only, every mapper writes its
	// own output file (Section V-G, Figure 6a).
	for _, backend := range backends {
		t.Run(backend.name, func(t *testing.T) {
			fsFor := backend.start(t, 4)
			m := startEngine(t, fsFor, 3)
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()

			st, err := mapred.SubmitAndWait(ctx, m.Client(), mapred.JobConf{
				Name: "rtw",
				App:  apps.RandomTextWriterApp,
				Args: map[string]string{
					"mappers":        "6",
					"bytesPerMapper": strconv.Itoa(2 * B),
				},
				OutputDir: "/out-rtw",
			}, 0)
			if err != nil {
				t.Fatal(err)
			}
			if st.MapsTotal != 6 || st.MapsDone != 6 {
				t.Errorf("status = %+v", st)
			}
			fsys, _ := fsFor("")
			sts, err := fsys.List(ctx, "/out-rtw")
			if err != nil || len(sts) != 6 {
				t.Fatalf("outputs = %d files, %v", len(sts), err)
			}
			var total int64
			for _, s := range sts {
				if s.Size == 0 {
					t.Errorf("empty output %s", s.Path)
				}
				total += s.Size
			}
			if total < 6*2*B {
				t.Errorf("total output %d < requested %d", total, 6*2*B)
			}
		})
	}
}

func TestDistributedGrepOnBothBackends(t *testing.T) {
	// The paper's second application: concurrent reads of a shared
	// input file, counting lines matching an expression (Figure 6b).
	for _, backend := range backends {
		t.Run(backend.name, func(t *testing.T) {
			fsFor := backend.start(t, 4)
			fsys, err := fsFor("")
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()

			// Build an input with a known number of matches spread over
			// multiple blocks.
			w, err := fsys.Create(ctx, "/grep-input", true)
			if err != nil {
				t.Fatal(err)
			}
			wantMatches := 0
			for i := 0; int64(i*40) < 3*B; i++ {
				line := fmt.Sprintf("log entry %06d without the token\n", i)
				if i%7 == 0 {
					line = fmt.Sprintf("log entry %06d with NEEDLE inside\n", i)
					wantMatches++
				}
				if _, err := w.Write([]byte(line)); err != nil {
					t.Fatal(err)
				}
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}

			m := startEngine(t, fsFor, 3)
			st, err := mapred.SubmitAndWait(ctx, m.Client(), mapred.JobConf{
				Name:       "grep",
				App:        apps.GrepApp,
				Args:       map[string]string{"pattern": "NEEDLE"},
				InputPaths: []string{"/grep-input"},
				OutputDir:  "/out-grep",
				NumReduces: 1,
			}, 0)
			if err != nil {
				t.Fatal(err)
			}
			if st.MapsTotal < 2 {
				t.Errorf("expected multiple splits, got %d", st.MapsTotal)
			}
			out := strings.TrimSpace(catDir(t, fsys, "/out-grep"))
			want := fmt.Sprintf("NEEDLE\t%d", wantMatches)
			if out != want {
				t.Errorf("grep output = %q, want %q", out, want)
			}
		})
	}
}

func TestWordCountCorrectness(t *testing.T) {
	fsFor := backends[0].start(t, 4) // bsfs
	fsys, _ := fsFor("")
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	w, err := fsys.Create(ctx, "/wc-in", true)
	if err != nil {
		t.Fatal(err)
	}
	doc := "the quick brown fox\njumps over the lazy dog\nthe dog barks\n"
	// Repeat to span several blocks.
	reps := int(3*B)/len(doc) + 1
	for i := 0; i < reps; i++ {
		if _, err := w.Write([]byte(doc)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	m := startEngine(t, fsFor, 3)
	if _, err := mapred.SubmitAndWait(ctx, m.Client(), mapred.JobConf{
		Name:       "wc",
		App:        apps.WordCountApp,
		InputPaths: []string{"/wc-in"},
		OutputDir:  "/wc-out",
		NumReduces: 3,
	}, 0); err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, line := range strings.Split(strings.TrimSpace(catDir(t, fsys, "/wc-out")), "\n") {
		parts := strings.Split(line, "\t")
		if len(parts) != 2 {
			t.Fatalf("bad output line %q", line)
		}
		n, err := strconv.Atoi(parts[1])
		if err != nil {
			t.Fatal(err)
		}
		counts[parts[0]] = n
	}
	if counts["the"] != 3*reps {
		t.Errorf("count(the) = %d, want %d", counts["the"], 3*reps)
	}
	if counts["dog"] != 2*reps {
		t.Errorf("count(dog) = %d, want %d", counts["dog"], 2*reps)
	}
	if counts["fox"] != reps {
		t.Errorf("count(fox) = %d, want %d", counts["fox"], reps)
	}
}

func TestLocalityPreferredScheduling(t *testing.T) {
	// With trackers co-deployed on every storage host (the paper's
	// deployment), most map tasks should be node-local.
	cl, err := cluster.StartBlobSeer(cluster.Config{DataProviders: 4, MetaProviders: 2, BlockSize: B})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Stop)
	fsFor := func(host string) (fs.FileSystem, error) { return cl.NewBSFS(host) }

	fsys, _ := fsFor("")
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	w, _ := fsys.Create(ctx, "/in", true)
	for i := 0; int64(i*20) < 8*B; i++ {
		fmt.Fprintf(w, "padding line %06d\n", i)
	}
	w.Close()

	hosts := make([]string, 4)
	for i := range hosts {
		hosts[i] = cl.HostOf(i)
	}
	m, err := cluster.StartMapRed(cluster.MapRedConfig{
		Trackers: 4,
		Hosts:    hosts,
		FSFor:    fsFor,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Stop)

	st, err := mapred.SubmitAndWait(ctx, m.Client(), mapred.JobConf{
		Name:       "grep-local",
		App:        apps.GrepApp,
		Args:       map[string]string{"pattern": "zzz"},
		InputPaths: []string{"/in"},
		OutputDir:  "/out",
		NumReduces: 1,
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.LocalMaps == 0 {
		t.Errorf("no local maps: %+v", st)
	}
	if st.LocalMaps+st.RemoteMaps < st.MapsTotal {
		t.Errorf("locality accounting incomplete: %+v", st)
	}
}

func TestSharedOutputConcurrentAppendMode(t *testing.T) {
	// Section V-F's proposed improvement: reducers append to one shared
	// output file. On BSFS this works natively; the engine must fall
	// back to part files on HDFS.
	for _, backend := range backends {
		t.Run(backend.name, func(t *testing.T) {
			fsFor := backend.start(t, 4)
			fsys, _ := fsFor("")
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()

			w, _ := fsys.Create(ctx, "/in", true)
			for i := 0; i < 500; i++ {
				fmt.Fprintf(w, "word%d word%d target\n", i%10, i%3)
			}
			w.Close()

			m := startEngine(t, fsFor, 3)
			if fsys.Name() == "bsfs" {
				// Pre-create the shared output file so appenders have a target.
				sw, err := fsys.Create(ctx, "/shared-out/output", true)
				if err != nil {
					t.Fatal(err)
				}
				sw.Close()
			}
			if _, err := mapred.SubmitAndWait(ctx, m.Client(), mapred.JobConf{
				Name:         "wc-shared",
				App:          apps.WordCountApp,
				InputPaths:   []string{"/in"},
				OutputDir:    "/shared-out",
				NumReduces:   3,
				SharedOutput: true,
			}, 0); err != nil {
				t.Fatal(err)
			}
			sts, err := fsys.List(ctx, "/shared-out")
			if err != nil {
				t.Fatal(err)
			}
			if fsys.Name() == "bsfs" {
				if len(sts) != 1 || fs.Base(sts[0].Path) != "output" {
					t.Errorf("bsfs shared output = %+v, want single 'output' file", sts)
				}
			} else {
				if len(sts) != 3 {
					t.Errorf("hdfs fallback = %d files, want 3 part files", len(sts))
				}
			}
			// Either way the counts must be correct.
			out := catDir(t, fsys, "/shared-out")
			if !strings.Contains(out, "target\t500") {
				t.Errorf("shared output missing expected count; got:\n%s", out)
			}
		})
	}
}

func TestTaskRetryOnFailure(t *testing.T) {
	mapred.RegisterApp("flaky-test-app", &mapred.App{
		NewMapper: func(conf *mapred.JobConf) (mapred.Mapper, error) {
			return &flakyMapper{tag: "flaky", failures: 2}, nil
		},
		MakeSplits: func(ctx context.Context, fsys fs.FileSystem, conf *mapred.JobConf) ([]mapred.Split, error) {
			return []mapred.Split{{Synthetic: true, SynthSeq: 0, SynthSize: 1}}, nil
		},
	})
	fsFor := backends[0].start(t, 2)
	m := startEngine(t, fsFor, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	st, err := mapred.SubmitAndWait(ctx, m.Client(), mapred.JobConf{
		Name:        "flaky",
		App:         "flaky-test-app",
		OutputDir:   "/flaky-out",
		MaxAttempts: 5,
	}, 0)
	if err != nil {
		t.Fatalf("job should succeed after retries: %v", err)
	}
	if st.MapsDone != 1 {
		t.Errorf("status = %+v", st)
	}
}

func TestJobFailsAfterMaxAttempts(t *testing.T) {
	mapred.RegisterApp("always-fails-app", &mapred.App{
		NewMapper: func(conf *mapred.JobConf) (mapred.Mapper, error) {
			return &flakyMapper{tag: "doomed", failures: 1 << 30}, nil
		},
		MakeSplits: func(ctx context.Context, fsys fs.FileSystem, conf *mapred.JobConf) ([]mapred.Split, error) {
			return []mapred.Split{{Synthetic: true}}, nil
		},
	})
	fsFor := backends[0].start(t, 2)
	m := startEngine(t, fsFor, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	_, err := mapred.SubmitAndWait(ctx, m.Client(), mapred.JobConf{
		Name:        "doomed",
		App:         "always-fails-app",
		OutputDir:   "/doomed-out",
		MaxAttempts: 2,
	}, 0)
	if err == nil {
		t.Fatal("doomed job reported success")
	}
}

// flakyMapper fails its first N attempts; attempts are counted in
// package state keyed by tag+record so retries of the same task are
// observed across mapper instances.
type flakyMapper struct {
	tag      string
	failures int
}

var flakyAttempts = struct {
	mu sync.Mutex
	n  map[string]int
}{n: map[string]int{}}

func (f *flakyMapper) Map(ctx context.Context, rec mapred.Record, emit mapred.Emit) error {
	key := f.tag + "/" + rec.Key
	flakyAttempts.mu.Lock()
	flakyAttempts.n[key]++
	attempt := flakyAttempts.n[key]
	flakyAttempts.mu.Unlock()
	if attempt <= f.failures {
		return fmt.Errorf("injected failure (attempt %d)", attempt)
	}
	return emit("ok", "1")
}
