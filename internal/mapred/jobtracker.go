package mapred

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"blobseer/internal/fs"
	"blobseer/internal/rpc"
	"blobseer/internal/wire"
)

// Task types.
const (
	taskMap uint8 = iota
	taskReduce
)

// Task states.
type taskPhase uint8

const (
	taskPending taskPhase = iota
	taskRunning
	taskDone
)

// JobState is the lifecycle of a job.
type JobState uint8

// Job lifecycle states.
const (
	JobRunning JobState = iota
	JobSucceeded
	JobFailed
)

func (s JobState) String() string {
	switch s {
	case JobSucceeded:
		return "succeeded"
	case JobFailed:
		return "failed"
	default:
		return "running"
	}
}

// JobStatus is the polling snapshot returned to clients.
type JobStatus struct {
	State       JobState
	MapsTotal   int
	MapsDone    int
	ReducesDone int
	LocalMaps   int // node-local map assignments (Section V-E's "local maps")
	RemoteMaps  int // assignments that read their input remotely
	Err         string
}

type taskState struct {
	phase    taskPhase
	attempts int
	tracker  string // tracker addr running (or having run) the task
}

type job struct {
	id     uint64
	conf   JobConf
	splits []Split
	maps   []taskState
	reds   []taskState

	mapsDone, redsDone    int
	localMaps, remoteMaps int
	state                 JobState
	errMsg                string
	mapOutputAddrs        []string // per map task: tracker serving its output
}

// Assignment is one task handed to a tracker.
type Assignment struct {
	JobID    uint64
	Type     uint8
	TaskID   int
	Conf     JobConf
	Split    Split    // map tasks
	NumMaps  int      // reduce tasks
	MapAddrs []string // reduce tasks: tracker addr per map task
}

// JobTracker is the scheduling core. The Service wraps it with RPC.
type JobTracker struct {
	mu      sync.Mutex
	fsys    fs.FileSystem
	nextJob uint64
	jobs    map[uint64]*job
	done    []uint64 // recently finished jobs (trackers GC their shuffle state)
}

// NewJobTracker returns a jobtracker using fsys for split computation.
func NewJobTracker(fsys fs.FileSystem) *JobTracker {
	return &JobTracker{fsys: fsys, jobs: make(map[uint64]*job)}
}

// Submit computes splits and enqueues a job.
func (jt *JobTracker) Submit(ctx context.Context, conf JobConf) (uint64, error) {
	conf.fill()
	app, err := LookupApp(conf.App)
	if err != nil {
		return 0, err
	}
	var splits []Split
	if app.MakeSplits != nil {
		splits, err = app.MakeSplits(ctx, jt.fsys, &conf)
	} else {
		splits, err = TextSplits(ctx, jt.fsys, conf.InputPaths, conf.InputVersion)
	}
	if err != nil {
		return 0, fmt.Errorf("mapred: computing splits: %w", err)
	}
	if len(splits) == 0 {
		return 0, errors.New("mapred: job has no input splits")
	}
	if conf.OutputDir != "" {
		if err := jt.fsys.Mkdirs(ctx, conf.OutputDir); err != nil {
			return 0, err
		}
	}
	jt.mu.Lock()
	defer jt.mu.Unlock()
	jt.nextJob++
	j := &job{
		id:             jt.nextJob,
		conf:           conf,
		splits:         splits,
		maps:           make([]taskState, len(splits)),
		reds:           make([]taskState, conf.NumReduces),
		mapOutputAddrs: make([]string, len(splits)),
	}
	jt.jobs[j.id] = j
	return j.id, nil
}

// RequestTasks assigns up to mapSlots map tasks and reduceSlots reduce
// tasks to the tracker at addr/host, preferring node-local splits —
// the affinity scheduling of Section IV-C. It also returns IDs of jobs
// whose shuffle state the tracker may garbage-collect.
func (jt *JobTracker) RequestTasks(addr, host string, mapSlots, reduceSlots int) ([]Assignment, []uint64) {
	jt.mu.Lock()
	defer jt.mu.Unlock()
	var out []Assignment
	for _, j := range jt.jobs {
		if j.state != JobRunning {
			continue
		}
		// Map tasks: node-local first, then any pending (remote maps).
		for pass := 0; pass < 2 && mapSlots > 0; pass++ {
			for i := range j.maps {
				if mapSlots == 0 {
					break
				}
				if j.maps[i].phase != taskPending {
					continue
				}
				local := hostIn(host, j.splits[i].Hosts)
				if pass == 0 && !local {
					continue
				}
				j.maps[i].phase = taskRunning
				j.maps[i].tracker = addr
				if local {
					j.localMaps++
				} else {
					j.remoteMaps++
				}
				out = append(out, Assignment{
					JobID: j.id, Type: taskMap, TaskID: i, Conf: j.conf, Split: j.splits[i],
				})
				mapSlots--
			}
		}
		// Reduce tasks start once every map has finished (the paper's
		// applications have no early shuffle).
		if j.mapsDone == len(j.maps) {
			for i := range j.reds {
				if reduceSlots == 0 {
					break
				}
				if j.reds[i].phase != taskPending {
					continue
				}
				j.reds[i].phase = taskRunning
				j.reds[i].tracker = addr
				out = append(out, Assignment{
					JobID: j.id, Type: taskReduce, TaskID: i, Conf: j.conf,
					NumMaps: len(j.maps), MapAddrs: append([]string(nil), j.mapOutputAddrs...),
				})
				reduceSlots--
			}
		}
	}
	gc := jt.done
	jt.done = nil
	return out, gc
}

func hostIn(host string, hosts []string) bool {
	if host == "" {
		return false
	}
	for _, h := range hosts {
		if h == host {
			return true
		}
	}
	return false
}

// Report records a task attempt's outcome. Failed tasks are retried up
// to MaxAttempts; beyond that the job fails.
func (jt *JobTracker) Report(jobID uint64, taskType uint8, taskID int, addr string, success bool, errMsg string) error {
	jt.mu.Lock()
	defer jt.mu.Unlock()
	j, ok := jt.jobs[jobID]
	if !ok {
		return fmt.Errorf("mapred: unknown job %d", jobID)
	}
	var ts *taskState
	switch {
	case taskType == taskMap && taskID >= 0 && taskID < len(j.maps):
		ts = &j.maps[taskID]
	case taskType == taskReduce && taskID >= 0 && taskID < len(j.reds):
		ts = &j.reds[taskID]
	default:
		return fmt.Errorf("mapred: bad task %d/%d", taskType, taskID)
	}
	if ts.phase == taskDone {
		return nil // duplicate report
	}
	if success {
		ts.phase = taskDone
		if taskType == taskMap {
			j.mapsDone++
			j.mapOutputAddrs[taskID] = addr
		} else {
			j.redsDone++
		}
		jt.maybeFinishLocked(j)
		return nil
	}
	ts.attempts++
	if ts.attempts >= j.conf.MaxAttempts {
		j.state = JobFailed
		j.errMsg = fmt.Sprintf("task %d failed %d times: %s", taskID, ts.attempts, errMsg)
		jt.done = append(jt.done, j.id)
		return nil
	}
	ts.phase = taskPending // retry
	return nil
}

func (jt *JobTracker) maybeFinishLocked(j *job) {
	if j.mapsDone == len(j.maps) && j.redsDone == len(j.reds) {
		j.state = JobSucceeded
		jt.done = append(jt.done, j.id)
	}
}

// Status snapshots a job.
func (jt *JobTracker) Status(jobID uint64) (JobStatus, error) {
	jt.mu.Lock()
	defer jt.mu.Unlock()
	j, ok := jt.jobs[jobID]
	if !ok {
		return JobStatus{}, fmt.Errorf("mapred: unknown job %d", jobID)
	}
	return JobStatus{
		State:       j.state,
		MapsTotal:   len(j.maps),
		MapsDone:    j.mapsDone,
		ReducesDone: j.redsDone,
		LocalMaps:   j.localMaps,
		RemoteMaps:  j.remoteMaps,
		Err:         j.errMsg,
	}, nil
}

// ----- RPC plumbing -----

// JobTracker RPC method numbers.
const (
	mSubmitJob uint16 = iota + 1
	mRequestTasks
	mReportTask
	mJobStatus
)

func encodeConf(b *wire.Buffer, c JobConf) {
	b.String(c.Name)
	b.String(c.App)
	b.U32(uint32(len(c.Args)))
	for k, v := range c.Args {
		b.String(k)
		b.String(v)
	}
	b.StringSlice(c.InputPaths)
	b.String(c.OutputDir)
	b.U32(uint32(c.NumReduces))
	b.Bool(c.SharedOutput)
	b.U32(uint32(c.MaxAttempts))
	b.U64(c.InputVersion)
}

func decodeConf(r *wire.Reader) JobConf {
	c := JobConf{Name: r.String(), App: r.String()}
	n := r.U32()
	if n > 0 && r.Err() == nil {
		c.Args = make(map[string]string, n)
		for i := uint32(0); i < n; i++ {
			k := r.String()
			c.Args[k] = r.String()
		}
	}
	c.InputPaths = r.StringSlice()
	c.OutputDir = r.String()
	c.NumReduces = int(r.U32())
	c.SharedOutput = r.Bool()
	c.MaxAttempts = int(r.U32())
	c.InputVersion = r.U64()
	return c
}

func encodeSplit(b *wire.Buffer, s Split) {
	b.String(s.Path)
	b.I64(s.Off)
	b.I64(s.Len)
	b.StringSlice(s.Hosts)
	b.Bool(s.Synthetic)
	b.U32(uint32(s.SynthSeq))
	b.I64(s.SynthSize)
}

func decodeSplit(r *wire.Reader) Split {
	return Split{
		Path:      r.String(),
		Off:       r.I64(),
		Len:       r.I64(),
		Hosts:     r.StringSlice(),
		Synthetic: r.Bool(),
		SynthSeq:  int(r.U32()),
		SynthSize: r.I64(),
	}
}

// JTService is the jobtracker RPC shell.
type JTService struct {
	jt *JobTracker
}

// NewJTService wraps jt.
func NewJTService(jt *JobTracker) *JTService { return &JTService{jt: jt} }

// Tracker exposes the core (tests).
func (s *JTService) Tracker() *JobTracker { return s.jt }

// Mux returns the dispatch table.
func (s *JTService) Mux() *rpc.Mux {
	m := rpc.NewMux()
	m.Handle(mSubmitJob, s.handleSubmit)
	m.Handle(mRequestTasks, s.handleRequestTasks)
	m.Handle(mReportTask, s.handleReport)
	m.Handle(mJobStatus, s.handleStatus)
	return m
}

func (s *JTService) handleSubmit(ctx context.Context, p []byte) ([]byte, error) {
	r := wire.NewReader(p)
	conf := decodeConf(r)
	if err := r.Err(); err != nil {
		return nil, err
	}
	id, err := s.jt.Submit(ctx, conf)
	if err != nil {
		return nil, err
	}
	b := wire.NewBuffer(8)
	b.U64(id)
	return b.Bytes(), nil
}

func (s *JTService) handleRequestTasks(ctx context.Context, p []byte) ([]byte, error) {
	r := wire.NewReader(p)
	addr := r.String()
	host := r.String()
	mapSlots := int(r.U32())
	reduceSlots := int(r.U32())
	if err := r.Err(); err != nil {
		return nil, err
	}
	asgs, gc := s.jt.RequestTasks(addr, host, mapSlots, reduceSlots)
	b := wire.NewBuffer(128)
	b.U32(uint32(len(asgs)))
	for _, a := range asgs {
		b.U64(a.JobID)
		b.U8(a.Type)
		b.U32(uint32(a.TaskID))
		encodeConf(b, a.Conf)
		encodeSplit(b, a.Split)
		b.U32(uint32(a.NumMaps))
		b.StringSlice(a.MapAddrs)
	}
	b.U32(uint32(len(gc)))
	for _, id := range gc {
		b.U64(id)
	}
	return b.Bytes(), nil
}

func (s *JTService) handleReport(ctx context.Context, p []byte) ([]byte, error) {
	r := wire.NewReader(p)
	jobID := r.U64()
	taskType := r.U8()
	taskID := int(r.U32())
	addr := r.String()
	success := r.Bool()
	errMsg := r.String()
	if err := r.Err(); err != nil {
		return nil, err
	}
	return nil, s.jt.Report(jobID, taskType, taskID, addr, success, errMsg)
}

func (s *JTService) handleStatus(ctx context.Context, p []byte) ([]byte, error) {
	r := wire.NewReader(p)
	jobID := r.U64()
	if err := r.Err(); err != nil {
		return nil, err
	}
	st, err := s.jt.Status(jobID)
	if err != nil {
		return nil, err
	}
	b := wire.NewBuffer(64)
	b.U8(uint8(st.State))
	b.U32(uint32(st.MapsTotal))
	b.U32(uint32(st.MapsDone))
	b.U32(uint32(st.ReducesDone))
	b.U32(uint32(st.LocalMaps))
	b.U32(uint32(st.RemoteMaps))
	b.String(st.Err)
	return b.Bytes(), nil
}

// JTClient is the jobtracker RPC client (used by tasktrackers and by
// the job-submission helper).
type JTClient struct {
	pool *rpc.Pool
	addr string
}

// NewJTClient returns a client for the jobtracker at addr.
func NewJTClient(pool *rpc.Pool, addr string) *JTClient {
	return &JTClient{pool: pool, addr: addr}
}

func (c *JTClient) call(ctx context.Context, m uint16, payload []byte) ([]byte, error) {
	cl, err := c.pool.Get(c.addr)
	if err != nil {
		return nil, err
	}
	return cl.Call(ctx, m, payload)
}

// Submit sends a job.
func (c *JTClient) Submit(ctx context.Context, conf JobConf) (uint64, error) {
	b := wire.NewBuffer(128)
	encodeConf(b, conf)
	resp, err := c.call(ctx, mSubmitJob, b.Bytes())
	if err != nil {
		return 0, err
	}
	r := wire.NewReader(resp)
	id := r.U64()
	return id, r.Err()
}

// RequestTasks polls for work.
func (c *JTClient) RequestTasks(ctx context.Context, addr, host string, mapSlots, reduceSlots int) ([]Assignment, []uint64, error) {
	b := wire.NewBuffer(64)
	b.String(addr)
	b.String(host)
	b.U32(uint32(mapSlots))
	b.U32(uint32(reduceSlots))
	resp, err := c.call(ctx, mRequestTasks, b.Bytes())
	if err != nil {
		return nil, nil, err
	}
	r := wire.NewReader(resp)
	n := r.U32()
	asgs := make([]Assignment, 0, n)
	for i := uint32(0); i < n; i++ {
		a := Assignment{JobID: r.U64(), Type: r.U8(), TaskID: int(r.U32())}
		a.Conf = decodeConf(r)
		a.Split = decodeSplit(r)
		a.NumMaps = int(r.U32())
		a.MapAddrs = r.StringSlice()
		asgs = append(asgs, a)
	}
	g := r.U32()
	gc := make([]uint64, 0, g)
	for i := uint32(0); i < g; i++ {
		gc = append(gc, r.U64())
	}
	return asgs, gc, r.Err()
}

// Report sends a task outcome.
func (c *JTClient) Report(ctx context.Context, jobID uint64, taskType uint8, taskID int, addr string, success bool, errMsg string) error {
	b := wire.NewBuffer(64)
	b.U64(jobID)
	b.U8(taskType)
	b.U32(uint32(taskID))
	b.String(addr)
	b.Bool(success)
	b.String(errMsg)
	_, err := c.call(ctx, mReportTask, b.Bytes())
	return err
}

// Status polls a job.
func (c *JTClient) Status(ctx context.Context, jobID uint64) (JobStatus, error) {
	b := wire.NewBuffer(8)
	b.U64(jobID)
	resp, err := c.call(ctx, mJobStatus, b.Bytes())
	if err != nil {
		return JobStatus{}, err
	}
	r := wire.NewReader(resp)
	st := JobStatus{
		State:       JobState(r.U8()),
		MapsTotal:   int(r.U32()),
		MapsDone:    int(r.U32()),
		ReducesDone: int(r.U32()),
		LocalMaps:   int(r.U32()),
		RemoteMaps:  int(r.U32()),
		Err:         r.String(),
	}
	return st, r.Err()
}

// Wait polls a job until it leaves JobRunning, returning its final
// status. A zero poll interval defaults to 5ms.
func (c *JTClient) Wait(ctx context.Context, jobID uint64, poll time.Duration) (JobStatus, error) {
	if poll <= 0 {
		poll = 5 * time.Millisecond
	}
	for {
		st, err := c.Status(ctx, jobID)
		if err != nil {
			return st, err
		}
		if st.State != JobRunning {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-time.After(poll):
		}
	}
}
