package apps

import (
	"context"
	"strconv"
	"strings"
	"testing"

	"blobseer/internal/mapred"
)

// collect gathers emitted pairs.
type collect struct {
	keys, vals []string
}

func (c *collect) emit(k, v string) error {
	c.keys = append(c.keys, k)
	c.vals = append(c.vals, v)
	return nil
}

func TestAppsAreRegistered(t *testing.T) {
	for _, name := range []string{RandomTextWriterApp, GrepApp, WordCountApp} {
		if _, err := mapred.LookupApp(name); err != nil {
			t.Errorf("app %q not registered: %v", name, err)
		}
	}
}

func TestRTWSplits(t *testing.T) {
	conf := &mapred.JobConf{Args: map[string]string{"mappers": "3", "bytesPerMapper": "1024"}}
	splits, err := rtwSplits(context.Background(), nil, conf)
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) != 3 {
		t.Fatalf("want 3 splits, got %d", len(splits))
	}
	for i, s := range splits {
		if !s.Synthetic || s.SynthSeq != i || s.SynthSize != 1024 {
			t.Errorf("split %d = %+v", i, s)
		}
	}
}

func TestRTWSplitsRejectsBadSize(t *testing.T) {
	for _, bad := range []string{"", "0", "-5", "abc"} {
		conf := &mapred.JobConf{Args: map[string]string{"bytesPerMapper": bad}}
		if _, err := rtwSplits(context.Background(), nil, conf); err == nil {
			t.Errorf("bytesPerMapper=%q should be rejected", bad)
		}
	}
}

func TestRTWMapperMeetsBudget(t *testing.T) {
	m := &rtwMapper{}
	c := &collect{}
	budget := int64(4096)
	rec := mapred.Record{Key: "2", Value: strconv.FormatInt(budget, 10)}
	if err := m.Map(context.Background(), rec, c.emit); err != nil {
		t.Fatal(err)
	}
	total := int64(0)
	for _, v := range c.vals {
		total += int64(len(v)) + 1 // the engine adds one newline per line
		for _, w := range strings.Fields(v) {
			if !contains(Words, w) {
				t.Fatalf("generated word %q not in vocabulary", w)
			}
		}
	}
	if total < budget || total > budget+256 {
		t.Errorf("generated %d bytes for a %d budget", total, budget)
	}
}

func TestRTWMapperDeterministicPerSeq(t *testing.T) {
	run := func() []string {
		m := &rtwMapper{}
		c := &collect{}
		if err := m.Map(context.Background(), mapred.Record{Key: "1", Value: "512"}, c.emit); err != nil {
			t.Fatal(err)
		}
		return c.vals
	}
	a, b := run(), run()
	if strings.Join(a, "|") != strings.Join(b, "|") {
		t.Error("same split seq must generate identical text")
	}
}

func TestRTWMapperRejectsBadRecord(t *testing.T) {
	m := &rtwMapper{}
	c := &collect{}
	if err := m.Map(context.Background(), mapred.Record{Key: "x", Value: "10"}, c.emit); err == nil {
		t.Error("bad seq should fail")
	}
	if err := m.Map(context.Background(), mapred.Record{Key: "1", Value: "x"}, c.emit); err == nil {
		t.Error("bad budget should fail")
	}
}

func TestGrepMapperCountsMatchingLines(t *testing.T) {
	m := &grepMapper{pattern: "seer"}
	c := &collect{}
	lines := []string{"blob seer rules", "nothing here", "seer again"}
	for _, l := range lines {
		if err := m.Map(context.Background(), mapred.Record{Value: l}, c.emit); err != nil {
			t.Fatal(err)
		}
	}
	if len(c.keys) != 2 {
		t.Fatalf("want 2 matches, got %d", len(c.keys))
	}
	for i := range c.keys {
		if c.keys[i] != "seer" || c.vals[i] != "1" {
			t.Errorf("emit %d = (%q, %q)", i, c.keys[i], c.vals[i])
		}
	}
}

func TestWordCountMapper(t *testing.T) {
	c := &collect{}
	if err := (wcMapper{}).Map(context.Background(), mapred.Record{Value: "  a b  a\t"}, c.emit); err != nil {
		t.Fatal(err)
	}
	if strings.Join(c.keys, ",") != "a,b,a" {
		t.Errorf("keys = %v", c.keys)
	}
}

func TestSumReducer(t *testing.T) {
	c := &collect{}
	if err := (sumReducer{}).Reduce(context.Background(), "k", []string{"1", "2", "39"}, c.emit); err != nil {
		t.Fatal(err)
	}
	if len(c.vals) != 1 || c.vals[0] != "42" {
		t.Errorf("sum = %v", c.vals)
	}
	if err := (sumReducer{}).Reduce(context.Background(), "k", []string{"1", "x"}, c.emit); err == nil {
		t.Error("non-integer value should fail")
	}
}

func contains(xs []string, w string) bool {
	for _, x := range xs {
		if x == w {
			return true
		}
	}
	return false
}
