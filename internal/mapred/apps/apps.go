// Package apps implements the Map/Reduce applications the paper
// evaluates (Section V-G) plus the classic wordcount: RandomTextWriter
// (massively parallel writes, each mapper to its own output file) and
// distributed grep (concurrent reads of one shared input file, tiny
// reduce). Importing this package registers all three with the engine.
package apps

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"blobseer/internal/fs"
	"blobseer/internal/mapred"
	"blobseer/internal/util"
)

// Application names for JobConf.App.
const (
	RandomTextWriterApp = "randomtextwriter"
	GrepApp             = "grep"
	WordCountApp        = "wordcount"
)

// Words is the vocabulary RandomTextWriter samples sentences from —
// the same idea as Hadoop's predefined word list.
var Words = []string{
	"blob", "seer", "throughput", "concurrency", "hadoop", "storage",
	"version", "snapshot", "segment", "tree", "provider", "metadata",
	"cluster", "stripe", "block", "append", "write", "read", "lock",
	"free", "grid", "parallel", "data", "intensive", "scalable",
}

func init() {
	mapred.RegisterApp(RandomTextWriterApp, &mapred.App{
		NewMapper:  func(conf *mapred.JobConf) (mapred.Mapper, error) { return &rtwMapper{}, nil },
		MakeSplits: rtwSplits,
	})
	mapred.RegisterApp(GrepApp, &mapred.App{
		NewMapper: func(conf *mapred.JobConf) (mapred.Mapper, error) {
			pat := conf.Args["pattern"]
			if pat == "" {
				return nil, fmt.Errorf("grep: missing 'pattern' argument")
			}
			return &grepMapper{pattern: pat}, nil
		},
		NewReducer: func(conf *mapred.JobConf) (mapred.Reducer, error) {
			return sumReducer{}, nil
		},
	})
	mapred.RegisterApp(WordCountApp, &mapred.App{
		NewMapper: func(conf *mapred.JobConf) (mapred.Mapper, error) { return wcMapper{}, nil },
		NewReducer: func(conf *mapred.JobConf) (mapred.Reducer, error) {
			return sumReducer{}, nil
		},
	})
}

// ----- RandomTextWriter -----

// rtwSplits builds one synthetic split per mapper. Args:
//
//	mappers:        number of map tasks (default 1)
//	bytesPerMapper: output volume per task (required)
//	seed:           RNG seed base (default 1)
func rtwSplits(ctx context.Context, fsys fs.FileSystem, conf *mapred.JobConf) ([]mapred.Split, error) {
	mappers, _ := strconv.Atoi(conf.Args["mappers"])
	if mappers <= 0 {
		mappers = 1
	}
	size, err := strconv.ParseInt(conf.Args["bytesPerMapper"], 10, 64)
	if err != nil || size <= 0 {
		return nil, fmt.Errorf("randomtextwriter: bad bytesPerMapper %q", conf.Args["bytesPerMapper"])
	}
	out := make([]mapred.Split, mappers)
	for i := range out {
		out[i] = mapred.Split{Synthetic: true, SynthSeq: i, SynthSize: size}
	}
	return out, nil
}

type rtwMapper struct{}

// Map generates SynthSize bytes of random sentences. The record's key
// is the split sequence (seeds the RNG), its value the byte budget.
func (m *rtwMapper) Map(ctx context.Context, rec mapred.Record, emit mapred.Emit) error {
	seq, err := strconv.Atoi(rec.Key)
	if err != nil {
		return fmt.Errorf("randomtextwriter: bad seq %q", rec.Key)
	}
	budget, err := strconv.ParseInt(rec.Value, 10, 64)
	if err != nil {
		return fmt.Errorf("randomtextwriter: bad budget %q", rec.Value)
	}
	rng := util.NewSplitMix64(uint64(seq) + 1)
	var sb strings.Builder
	written := int64(0)
	for written < budget {
		sb.Reset()
		nWords := 5 + rng.Intn(10)
		for w := 0; w < nWords; w++ {
			if w > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteString(Words[rng.Intn(len(Words))])
		}
		line := sb.String()
		if err := emit(strconv.FormatInt(written, 10), line); err != nil {
			return err
		}
		written += int64(len(line)) + 1
	}
	return nil
}

// ----- Distributed grep -----

type grepMapper struct {
	pattern string
}

// Map counts lines containing the pattern; like the paper's grep, the
// mappers "simply output the value of these counters".
func (m *grepMapper) Map(ctx context.Context, rec mapred.Record, emit mapred.Emit) error {
	if strings.Contains(rec.Value, m.pattern) {
		return emit(m.pattern, "1")
	}
	return nil
}

// ----- WordCount -----

type wcMapper struct{}

// Map emits (word, 1) for every word of the line.
func (m wcMapper) Map(ctx context.Context, rec mapred.Record, emit mapred.Emit) error {
	for _, w := range strings.Fields(rec.Value) {
		if err := emit(w, "1"); err != nil {
			return err
		}
	}
	return nil
}

// sumReducer adds up integer values per key ("the reducers sum up all
// the outputs of the mappers").
type sumReducer struct{}

// Reduce implements mapred.Reducer.
func (sumReducer) Reduce(ctx context.Context, key string, values []string, emit mapred.Emit) error {
	total := int64(0)
	for _, v := range values {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return fmt.Errorf("sum: bad value %q for key %q", v, key)
		}
		total += n
	}
	return emit(key, strconv.FormatInt(total, 10))
}
