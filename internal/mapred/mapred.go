// Package mapred is the Hadoop-like Map/Reduce engine of the
// reproduction (Section II-B): a jobtracker scheduling map and reduce
// tasks over tasktrackers, with data-locality-aware placement driven by
// the storage layer's getFileBlockLocations — the affinity scheduling
// whose storage-side support Section IV-C describes. It runs unmodified
// over either BSFS or the HDFS-like baseline, which is exactly how the
// paper swaps storage layers under Hadoop.
package mapred

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"blobseer/internal/fs"
	"blobseer/internal/wire"
)

// JobConf describes one Map/Reduce job.
type JobConf struct {
	Name       string
	App        string            // registered application name
	Args       map[string]string // application parameters
	InputPaths []string          // ignored by apps with synthetic splits
	OutputDir  string
	NumReduces int // 0 = map-only job (outputs written by mappers)
	// SharedOutput makes every reducer append to one shared output file
	// instead of writing part-r-NNNNN files — the concurrent-append
	// improvement Section V-F proposes. Requires a storage layer with
	// append support (BSFS); the engine falls back to per-reducer files
	// when the layer refuses.
	SharedOutput bool
	// InputVersion pins every input file to one published snapshot
	// (Section VI-A: a workflow stage reads a frozen dataset while
	// another stage keeps writing it). 0 reads the latest contents.
	// Requires a storage layer implementing fs.SnapshotReader (BSFS).
	InputVersion uint64
	MaxAttempts  int // per-task retry budget (default 3)
}

func (c *JobConf) fill() {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
}

// Emit publishes one intermediate or output pair.
type Emit func(key, value string) error

// Record is one input record (for text input: byte offset and line).
type Record struct {
	Key   string
	Value string
}

// Mapper processes records of one split.
type Mapper interface {
	Map(ctx context.Context, rec Record, emit Emit) error
}

// Reducer folds all values of one key.
type Reducer interface {
	Reduce(ctx context.Context, key string, values []string, emit Emit) error
}

// Split is one unit of map work. Either a file range (with locality
// hints) or a synthetic split for generator apps like RandomTextWriter.
type Split struct {
	Path      string
	Off       int64
	Len       int64
	Hosts     []string
	Synthetic bool
	SynthSeq  int   // index of the synthetic split
	SynthSize int64 // bytes the generator should produce
}

// App is a registered Map/Reduce application. The engine runs inside
// one binary, so applications register factories by name instead of
// shipping jars.
type App struct {
	// NewMapper builds the mapper for a job (required).
	NewMapper func(conf *JobConf) (Mapper, error)
	// NewReducer builds the reducer (nil for map-only apps).
	NewReducer func(conf *JobConf) (Reducer, error)
	// MakeSplits overrides input splitting (nil = block-aligned text
	// splits over conf.InputPaths).
	MakeSplits func(ctx context.Context, fsys fs.FileSystem, conf *JobConf) ([]Split, error)
}

var (
	appsMu sync.RWMutex
	apps   = map[string]*App{}
)

// RegisterApp installs an application under name (panics on duplicates,
// mirroring net/http's mux registration).
func RegisterApp(name string, app *App) {
	appsMu.Lock()
	defer appsMu.Unlock()
	if _, dup := apps[name]; dup {
		panic(fmt.Sprintf("mapred: duplicate app %q", name))
	}
	apps[name] = app
}

// LookupApp fetches a registered application.
func LookupApp(name string) (*App, error) {
	appsMu.RLock()
	defer appsMu.RUnlock()
	app, ok := apps[name]
	if !ok {
		return nil, fmt.Errorf("mapred: unknown app %q", name)
	}
	return app, nil
}

// KV is one intermediate pair.
type KV struct {
	Key   string
	Value string
}

// encodeKVs serializes intermediate pairs for shuffle transfer.
func encodeKVs(kvs []KV) []byte {
	b := wire.NewBuffer(16 * len(kvs))
	b.U32(uint32(len(kvs)))
	for _, kv := range kvs {
		b.String(kv.Key)
		b.String(kv.Value)
	}
	return b.Bytes()
}

// decodeKVs parses shuffle data.
func decodeKVs(data []byte) ([]KV, error) {
	r := wire.NewReader(data)
	n := r.U32()
	if r.Err() != nil || n > uint32(len(data)) {
		return nil, fmt.Errorf("mapred: corrupt shuffle segment")
	}
	out := make([]KV, 0, n)
	for i := uint32(0); i < n; i++ {
		out = append(out, KV{Key: r.String(), Value: r.String()})
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// partitionOf implements the default hash partitioner.
func partitionOf(key string, numReduces int) int {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return int(h % uint32(numReduces))
}

// sortKVs orders pairs by key (stable so equal keys keep map order).
func sortKVs(kvs []KV) {
	sort.SliceStable(kvs, func(i, j int) bool { return kvs[i].Key < kvs[j].Key })
}

// TextSplits produces block-aligned splits with locality hints for the
// given input files — Hadoop's FileInputFormat: one split per storage
// block, so one mapper per 64 MB chunk (Section V-G). A nonzero
// version pins the split computation (and later the record readers) to
// that published snapshot of every input file; the directory structure
// itself is read at its current state.
func TextSplits(ctx context.Context, fsys fs.FileSystem, paths []string, version uint64) ([]Split, error) {
	var out []Split
	for _, p := range paths {
		st, err := fsys.Stat(ctx, p)
		if err != nil {
			return nil, fmt.Errorf("mapred: stat input %s: %w", p, err)
		}
		if st.IsDir {
			children, err := fsys.List(ctx, p)
			if err != nil {
				return nil, err
			}
			var sub []string
			for _, ch := range children {
				if !ch.IsDir && !strings.HasPrefix(fs.Base(ch.Path), "_") {
					sub = append(sub, ch.Path)
				}
			}
			splits, err := TextSplits(ctx, fsys, sub, version)
			if err != nil {
				return nil, err
			}
			out = append(out, splits...)
			continue
		}
		if version > 0 {
			// The pinned snapshot's size, not the current one, bounds
			// the splits.
			r, err := openInput(ctx, fsys, p, version)
			if err != nil {
				return nil, err
			}
			st.Size, err = r.Seek(0, io.SeekEnd)
			r.Close()
			if err != nil {
				return nil, err
			}
		}
		if st.Size == 0 {
			continue
		}
		bs := fsys.BlockSize()
		locs, err := fsys.Locations(ctx, p, 0, st.Size)
		if err != nil {
			return nil, fmt.Errorf("mapred: locations of %s: %w", p, err)
		}
		hostsAt := func(off int64) []string {
			for _, l := range locs {
				if off >= l.Off && off < l.Off+l.Len {
					return l.Hosts
				}
			}
			return nil
		}
		for off := int64(0); off < st.Size; off += bs {
			ln := bs
			if off+ln > st.Size {
				ln = st.Size - off
			}
			out = append(out, Split{Path: p, Off: off, Len: ln, Hosts: hostsAt(off)})
		}
	}
	return out, nil
}

// lineReader yields the records of a text split: Hadoop's
// LineRecordReader semantics — a split owns every line that *starts*
// inside it; a split with Off > 0 skips the first (partial) line, and
// the last line is read across the split boundary.
type lineReader struct {
	r     fs.Reader
	split Split
	pos   int64 // file offset of the next unread byte
	buf   []byte
	eof   bool
}

// openInput opens an input file, pinned to a snapshot when version is
// nonzero. Storage layers without versioning reject pinned opens.
func openInput(ctx context.Context, fsys fs.FileSystem, path string, version uint64) (fs.Reader, error) {
	if version == 0 {
		return fsys.Open(ctx, path)
	}
	sr, ok := fsys.(fs.SnapshotReader)
	if !ok {
		return nil, fmt.Errorf("mapred: input version %d requested but %s has no snapshot support", version, fsys.Name())
	}
	return sr.OpenVersion(ctx, path, version)
}

func newLineReader(ctx context.Context, fsys fs.FileSystem, split Split, version uint64) (*lineReader, error) {
	r, err := openInput(ctx, fsys, split.Path, version)
	if err != nil {
		return nil, err
	}
	lr := &lineReader{r: r, split: split, pos: split.Off}
	if split.Off > 0 {
		// Hadoop's LineRecordReader convention: back up one byte and
		// discard through the first newline. If the byte before the
		// split was itself a newline, this consumes exactly that byte
		// and the split's first full line is preserved; otherwise the
		// partial line (owned by the previous split) is skipped.
		lr.pos = split.Off - 1
		if _, err := r.Seek(lr.pos, 0); err != nil {
			r.Close()
			return nil, err
		}
		if _, _, err := lr.nextLine(); err != nil && err != errEOF {
			r.Close()
			return nil, err
		}
	}
	return lr, nil
}

// nextLine returns the next line (without the newline) and its start
// offset. io.EOF-style end is signaled with ok == false.
func (lr *lineReader) nextLine() (string, int64, error) {
	start := lr.pos
	for {
		if i := indexByte(lr.buf, '\n'); i >= 0 {
			line := string(lr.buf[:i])
			lr.buf = lr.buf[i+1:]
			lr.pos += int64(i + 1)
			return line, start, nil
		}
		if lr.eof {
			if len(lr.buf) == 0 {
				return "", start, errEOF
			}
			line := string(lr.buf)
			lr.pos += int64(len(lr.buf))
			lr.buf = nil
			return line, start, nil
		}
		chunk := make([]byte, 64*1024)
		n, err := lr.r.Read(chunk)
		lr.buf = append(lr.buf, chunk[:n]...)
		if err != nil {
			lr.eof = true
		}
	}
}

// next returns the next record owned by this split.
func (lr *lineReader) next() (Record, bool, error) {
	if lr.pos >= lr.split.Off+lr.split.Len {
		return Record{}, false, nil // lines starting past the split end belong to the next split
	}
	line, start, err := lr.nextLine()
	if err == errEOF {
		return Record{}, false, nil
	}
	if err != nil {
		return Record{}, false, err
	}
	return Record{Key: fmt.Sprintf("%d", start), Value: line}, true, nil
}

func (lr *lineReader) close() error { return lr.r.Close() }

var errEOF = fmt.Errorf("mapred: end of split")

func indexByte(b []byte, c byte) int {
	for i, x := range b {
		if x == c {
			return i
		}
	}
	return -1
}
