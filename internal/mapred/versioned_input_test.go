package mapred_test

import (
	"context"
	"fmt"
	"io"
	"strings"
	"testing"

	"blobseer/internal/cluster"
	"blobseer/internal/fs"
	"blobseer/internal/mapred"
	"blobseer/internal/mapred/apps"
)

// TestGrepPinnedToSnapshot is Section VI-A in action: one workflow
// stage greps a *frozen* snapshot of the dataset while another stage
// keeps appending to the same file. The pinned job's counts must
// reflect only the snapshot, and a later unpinned job sees everything.
func TestGrepPinnedToSnapshot(t *testing.T) {
	cl, err := cluster.StartBlobSeer(cluster.Config{
		DataProviders: 3,
		BlockSize:     B,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Stop)
	fsFor := func(host string) (fs.FileSystem, error) { return cl.NewBSFS(host) }
	mr := startEngine(t, fsFor, 3)

	ctx := context.Background()
	bsfsFS, err := cl.NewBSFS("")
	if err != nil {
		t.Fatal(err)
	}
	var fsys fs.FileSystem = bsfsFS

	// Stage 1 writes the dataset: 500 matching lines.
	w, err := fsys.Create(ctx, "/data/set.txt", true)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if _, err := io.WriteString(w, "needle in line\n"); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	snapshot, err := bsfsFS.Versions(ctx, "/data/set.txt")
	if err != nil {
		t.Fatal(err)
	}

	// Stage 2 keeps appending more matches after the snapshot.
	a, err := fsys.Append(ctx, "/data/set.txt")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if _, err := io.WriteString(a, "needle appended later\n"); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	runGrepJob := func(inputVersion uint64, outDir string) int64 {
		t.Helper()
		jt := mr.Client()
		id, err := jt.Submit(ctx, mapred.JobConf{
			Name:         "pinned-grep",
			App:          apps.GrepApp,
			Args:         map[string]string{"pattern": "needle"},
			InputPaths:   []string{"/data/set.txt"},
			OutputDir:    outDir,
			NumReduces:   1,
			InputVersion: inputVersion,
		})
		if err != nil {
			t.Fatal(err)
		}
		st, err := jt.Wait(ctx, id, 0)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != mapred.JobSucceeded {
			t.Fatalf("job failed: %s", st.Err)
		}
		r, err := fsys.Open(ctx, outDir+"/part-r-00000")
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		out, err := io.ReadAll(r)
		if err != nil {
			t.Fatal(err)
		}
		var n int64
		if _, err := fmt.Sscanf(strings.TrimSpace(string(out)), "needle\t%d", &n); err != nil {
			t.Fatalf("bad output %q: %v", out, err)
		}
		return n
	}

	if got := runGrepJob(uint64(snapshot), "/out-pinned"); got != 500 {
		t.Errorf("pinned grep counted %d, want the snapshot's 500", got)
	}
	if got := runGrepJob(0, "/out-latest"); got != 800 {
		t.Errorf("unpinned grep counted %d, want all 800", got)
	}
}

// TestPinnedInputRejectedByHDFS: the baseline has no snapshots, so a
// pinned job must fail with a clear error rather than silently reading
// the latest contents.
func TestPinnedInputRejectedByHDFS(t *testing.T) {
	h, err := cluster.StartHDFS(cluster.HDFSConfig{Datanodes: 2, BlockSize: B})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(h.Stop)
	fsFor := func(host string) (fs.FileSystem, error) { return h.NewFS(host) }
	mr := startEngine(t, fsFor, 2)

	ctx := context.Background()
	fsys, err := fsFor("")
	if err != nil {
		t.Fatal(err)
	}
	w, err := fsys.Create(ctx, "/in.txt", true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.WriteString(w, "needle\n"); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Split computation probes the snapshot capability, so the refusal
	// arrives at submission — fail-fast, not a half-run job.
	jt := mr.Client()
	_, err = jt.Submit(ctx, mapred.JobConf{
		Name:         "pinned-on-hdfs",
		App:          apps.GrepApp,
		Args:         map[string]string{"pattern": "needle"},
		InputPaths:   []string{"/in.txt"},
		OutputDir:    "/out",
		NumReduces:   1,
		InputVersion: 1,
	})
	if err == nil {
		t.Fatal("pinned job on HDFS should be rejected at submit")
	}
	if !strings.Contains(err.Error(), "snapshot") {
		t.Errorf("rejection should mention missing snapshot support: %v", err)
	}
}
