package mapred

import (
	"context"
	"testing"

	"blobseer/internal/fs"
)

func TestPartitionOfStable(t *testing.T) {
	for _, key := range []string{"", "a", "word", "another-key"} {
		p := partitionOf(key, 4)
		if p < 0 || p >= 4 {
			t.Fatalf("partition out of range: %d", p)
		}
		if p != partitionOf(key, 4) {
			t.Fatal("partition not deterministic")
		}
	}
	spread := map[int]bool{}
	for i := 0; i < 100; i++ {
		spread[partitionOf(string(rune('a'+i%26))+string(rune(i)), 4)] = true
	}
	if len(spread) < 2 {
		t.Error("partitioner sends everything to one reducer")
	}
}

func TestKVCodec(t *testing.T) {
	in := []KV{{"k1", "v1"}, {"", ""}, {"key", "value with spaces"}}
	out, err := decodeKVs(encodeKVs(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 || out[0] != in[0] || out[1] != in[1] || out[2] != in[2] {
		t.Errorf("round trip = %v", out)
	}
	if _, err := decodeKVs([]byte{0xff, 0xff, 0xff, 0xff}); err == nil {
		t.Error("garbage decoded")
	}
}

func TestSortKVsStable(t *testing.T) {
	kvs := []KV{{"b", "1"}, {"a", "1"}, {"b", "2"}, {"a", "2"}}
	sortKVs(kvs)
	want := []KV{{"a", "1"}, {"a", "2"}, {"b", "1"}, {"b", "2"}}
	for i := range want {
		if kvs[i] != want[i] {
			t.Fatalf("sorted = %v", kvs)
		}
	}
}

// lineReaderFS builds an in-memory file for split-boundary tests (the
// real storage backends are exercised in engine_test.go).
func lineReaderFS(t *testing.T, content string, blockSize int64) fs.FileSystem {
	t.Helper()
	f := newMemFS(blockSize)
	w, err := f.Create(context.Background(), "/input", true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte(content)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return f
}

func readSplit(t *testing.T, fsys fs.FileSystem, split Split) []string {
	t.Helper()
	lr, err := newLineReader(context.Background(), fsys, split, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer lr.close()
	var lines []string
	for {
		rec, ok, err := lr.next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return lines
		}
		lines = append(lines, rec.Value)
	}
}

func TestLineReaderSplitBoundaries(t *testing.T) {
	// Every line must be owned by exactly one split regardless of where
	// the block boundary falls.
	content := "alpha\nbravo\ncharlie\ndelta\necho\nfoxtrot\n"
	size := int64(len(content))
	fsys := lineReaderFS(t, content, 16)
	for splitLen := int64(5); splitLen <= size; splitLen++ {
		var all []string
		for off := int64(0); off < size; off += splitLen {
			ln := splitLen
			if off+ln > size {
				ln = size - off
			}
			all = append(all, readSplit(t, fsys, Split{Path: "/input", Off: off, Len: ln})...)
		}
		want := []string{"alpha", "bravo", "charlie", "delta", "echo", "foxtrot"}
		if len(all) != len(want) {
			t.Fatalf("splitLen %d: got %d lines %v, want %d", splitLen, len(all), all, len(want))
		}
		for i := range want {
			if all[i] != want[i] {
				t.Fatalf("splitLen %d: line %d = %q, want %q", splitLen, i, all[i], want[i])
			}
		}
	}
}

func TestLineReaderNoTrailingNewline(t *testing.T) {
	content := "one\ntwo\nthree" // no final newline
	fsys := lineReaderFS(t, content, 8)
	lines := readSplit(t, fsys, Split{Path: "/input", Off: 0, Len: int64(len(content))})
	if len(lines) != 3 || lines[2] != "three" {
		t.Fatalf("lines = %v", lines)
	}
}

func TestTextSplitsBlockAligned(t *testing.T) {
	content := ""
	for i := 0; i < 100; i++ {
		content += "line-of-text\n" // 13 bytes each
	}
	fsys := lineReaderFS(t, content, 256)
	splits, err := TextSplits(context.Background(), fsys, []string{"/input"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	wantSplits := (len(content) + 255) / 256
	if len(splits) != wantSplits {
		t.Fatalf("%d splits, want %d", len(splits), wantSplits)
	}
	var total int64
	for _, s := range splits {
		total += s.Len
		if len(s.Hosts) == 0 {
			t.Error("split without locality hints")
		}
	}
	if total != int64(len(content)) {
		t.Errorf("splits cover %d bytes, want %d", total, len(content))
	}
}

func TestLookupApp(t *testing.T) {
	if _, err := LookupApp("no-such-app"); err == nil {
		t.Error("unknown app resolved")
	}
}
