package hdfs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"sync"

	"blobseer/internal/blob"
	"blobseer/internal/fs"
	"blobseer/internal/provider"
	"blobseer/internal/rpc"
)

// datanodeKey names a chunk in a datanode's store. Datanodes reuse the
// provider daemon; HDFS block IDs map into its key space with a zero
// blob and the block ID as nonce.
func datanodeKey(id BlockID) blob.BlockKey {
	return blob.BlockKey{Blob: 0, Nonce: uint64(id), Seq: 0}
}

// Config configures an HDFS client.
type Config struct {
	Pool        *rpc.Pool
	NNAddr      string // namenode endpoint
	BlockSize   int64
	Replication int
	Host        string // client host (local-first placement)
}

// FS implements fs.FileSystem over the HDFS-like baseline.
type FS struct {
	cfg Config
	nn  *NNClient
	dn  *provider.Client
}

var _ fs.FileSystem = (*FS)(nil)

// New returns an HDFS client.
func New(cfg Config) (*FS, error) {
	if cfg.Pool == nil || cfg.NNAddr == "" {
		return nil, fmt.Errorf("hdfs: pool and namenode address are required")
	}
	if cfg.BlockSize <= 0 {
		return nil, fmt.Errorf("hdfs: block size must be positive")
	}
	if cfg.Replication <= 0 {
		cfg.Replication = 1
	}
	return &FS{
		cfg: cfg,
		nn:  NewNNClient(cfg.Pool, cfg.NNAddr),
		dn:  provider.NewClient(cfg.Pool),
	}, nil
}

// Name implements fs.FileSystem.
func (f *FS) Name() string { return "hdfs" }

// BlockSize implements fs.FileSystem.
func (f *FS) BlockSize() int64 { return f.cfg.BlockSize }

func newLease() string {
	var b [8]byte
	rand.Read(b[:])
	return hex.EncodeToString(b[:])
}

// Create implements fs.FileSystem.
func (f *FS) Create(ctx context.Context, path string, overwrite bool) (fs.Writer, error) {
	lease := newLease()
	id, err := f.nn.Create(ctx, path, overwrite, lease)
	if err != nil {
		return nil, err
	}
	return &writer{fs: f, ctx: ctx, file: id, lease: lease}, nil
}

// Append implements fs.FileSystem: HDFS 0.20 has no append — the gap
// BlobSeer's Figure 5 experiment highlights.
func (f *FS) Append(ctx context.Context, path string) (fs.Writer, error) {
	return nil, fs.ErrNoAppend
}

// Open implements fs.FileSystem.
func (f *FS) Open(ctx context.Context, path string) (fs.Reader, error) {
	blocks, size, err := f.nn.GetBlockLocations(ctx, path, 0, int64(1)<<62)
	if err != nil {
		return nil, err
	}
	return &reader{fs: f, ctx: ctx, blocks: blocks, size: size}, nil
}

// Stat implements fs.FileSystem.
func (f *FS) Stat(ctx context.Context, path string) (fs.FileStatus, error) {
	return f.nn.Stat(ctx, path)
}

// List implements fs.FileSystem.
func (f *FS) List(ctx context.Context, path string) ([]fs.FileStatus, error) {
	return f.nn.List(ctx, path)
}

// Mkdirs implements fs.FileSystem.
func (f *FS) Mkdirs(ctx context.Context, path string) error { return f.nn.Mkdirs(ctx, path) }

// Delete implements fs.FileSystem.
func (f *FS) Delete(ctx context.Context, path string, recursive bool) error {
	return f.nn.Delete(ctx, path, recursive)
}

// Rename implements fs.FileSystem.
func (f *FS) Rename(ctx context.Context, src, dst string) error {
	return f.nn.Rename(ctx, src, dst)
}

// Locations implements fs.FileSystem.
func (f *FS) Locations(ctx context.Context, path string, off, length int64) ([]fs.BlockLocation, error) {
	blocks, _, err := f.nn.GetBlockLocations(ctx, path, off, length)
	if err != nil {
		return nil, err
	}
	out := make([]fs.BlockLocation, len(blocks))
	for i, b := range blocks {
		out[i] = fs.BlockLocation{Off: b.Off, Len: b.Len, Hosts: b.Hosts}
	}
	return out, nil
}

// writer streams a file block by block: buffer a chunk, ask the
// namenode for a target (AddBlock), push it to the datanode pipeline,
// commit the length (CompleteBlock) — HDFS's client-side buffering
// described in Section II-B.
type writer struct {
	fs    *FS
	ctx   context.Context
	file  FileID
	lease string

	mu     sync.Mutex
	buf    []byte
	closed bool
}

// Write implements io.Writer.
func (w *writer) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, fs.ErrWriterClosed
	}
	total := 0
	for len(p) > 0 {
		room := int(w.fs.cfg.BlockSize) - len(w.buf)
		if room == 0 {
			if err := w.lockedFlush(); err != nil {
				return total, err
			}
			room = int(w.fs.cfg.BlockSize)
		}
		n := len(p)
		if n > room {
			n = room
		}
		w.buf = append(w.buf, p[:n]...)
		p = p[n:]
		total += n
	}
	if int64(len(w.buf)) == w.fs.cfg.BlockSize {
		if err := w.lockedFlush(); err != nil {
			return total, err
		}
	}
	return total, nil
}

// lockedFlush commits the buffered block. On error the buffer is
// restored, so a transient failure loses nothing and Close may retry.
func (w *writer) lockedFlush() error {
	if len(w.buf) == 0 {
		return nil
	}
	data := w.buf
	w.buf = nil
	err := func() error {
		bid, targets, err := w.fs.nn.AddBlock(w.ctx, w.file, w.lease, w.fs.cfg.Host, w.fs.cfg.Replication)
		if err != nil {
			return err
		}
		// Replication pipeline: HDFS forwards through the datanode chain;
		// we model it as sequential stores in pipeline order.
		for _, addr := range targets {
			if err := w.fs.dn.Put(w.ctx, addr, datanodeKey(bid), data); err != nil {
				return fmt.Errorf("hdfs: pipeline to %s: %w", addr, err)
			}
		}
		return w.fs.nn.CompleteBlock(w.ctx, w.file, w.lease, bid, int64(len(data)))
	}()
	if err != nil {
		w.buf = data
	}
	return err
}

// Close flushes the final block and seals the file (immutable).
// Close flushes the buffered tail and seals the file. It only latches
// the writer closed once both succeed: a failed Close keeps the state
// and may be retried, and never reports a lost tail as durable.
func (w *writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	if err := w.lockedFlush(); err != nil {
		return err
	}
	if err := w.fs.nn.CompleteFile(w.ctx, w.file, w.lease); err != nil {
		return err
	}
	w.closed = true
	return nil
}

// reader implements the HDFS read path: the block list is fetched once
// from the namenode at open; data reads go straight to datanodes with
// whole-block prefetching.
type reader struct {
	fs     *FS
	ctx    context.Context
	blocks []LocatedBlock
	size   int64

	mu       sync.Mutex
	pos      int64
	cacheOff int64
	cache    []byte
	closed   bool
}

// Read implements io.Reader.
func (r *reader) Read(p []byte) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return 0, fs.ErrReaderClosed
	}
	if r.pos >= r.size {
		return 0, io.EOF
	}
	want := int64(len(p))
	if r.pos+want > r.size {
		want = r.size - r.pos
	}
	n := 0
	for want > 0 {
		data, err := r.lockedFetch(r.pos)
		if err != nil {
			if n > 0 {
				return n, nil
			}
			return 0, err
		}
		c := copy(p[n:int64(n)+want], data)
		n += c
		r.pos += int64(c)
		want -= int64(c)
		if c == 0 {
			break
		}
	}
	return n, nil
}

func (r *reader) lockedFetch(off int64) ([]byte, error) {
	// Locate the block containing off.
	var lb *LocatedBlock
	for i := range r.blocks {
		if off >= r.blocks[i].Off && off < r.blocks[i].Off+r.blocks[i].Len {
			lb = &r.blocks[i]
			break
		}
	}
	if lb == nil {
		return nil, fmt.Errorf("hdfs: no block covers offset %d", off)
	}
	if r.cache == nil || r.cacheOff != lb.Off {
		var data []byte
		var err error
		for _, addr := range lb.Locations {
			data, err = r.fs.dn.Get(r.ctx, addr, datanodeKey(lb.Block), 0, lb.Len)
			if err == nil {
				break
			}
		}
		if err != nil {
			return nil, fmt.Errorf("hdfs: all replicas failed for block %d: %w", lb.Block, err)
		}
		r.cache = data
		r.cacheOff = lb.Off
	}
	return r.cache[off-r.cacheOff:], nil
}

// Seek implements io.Seeker.
func (r *reader) Seek(offset int64, whence int) (int64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return 0, fs.ErrReaderClosed
	}
	var abs int64
	switch whence {
	case io.SeekStart:
		abs = offset
	case io.SeekCurrent:
		abs = r.pos + offset
	case io.SeekEnd:
		abs = r.size + offset
	default:
		return 0, fmt.Errorf("hdfs: bad whence %d", whence)
	}
	if abs < 0 {
		return 0, fmt.Errorf("hdfs: negative seek position %d", abs)
	}
	r.pos = abs
	return abs, nil
}

// Close implements io.Closer.
func (r *reader) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.closed = true
	r.cache = nil
	return nil
}
