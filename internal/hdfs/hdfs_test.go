package hdfs_test

import (
	"bytes"
	"context"
	"errors"
	"io"
	"testing"

	"blobseer/internal/cluster"
	"blobseer/internal/fs"
	"blobseer/internal/hdfs"
	"blobseer/internal/placement"
	"blobseer/internal/util"
)

const B = 4 * 1024

func startHDFS(t *testing.T, cfg cluster.HDFSConfig) (*hdfs.FS, *cluster.HDFS) {
	t.Helper()
	if cfg.BlockSize == 0 {
		cfg.BlockSize = B
	}
	h, err := cluster.StartHDFS(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(h.Stop)
	f, err := h.NewFS("")
	if err != nil {
		t.Fatal(err)
	}
	return f, h
}

func pattern(tag byte, n int) []byte {
	d := make([]byte, n)
	for i := range d {
		d[i] = tag ^ byte(i*7)
	}
	return d
}

func writeFile(t *testing.T, f fs.FileSystem, path string, data []byte) {
	t.Helper()
	w, err := f.Create(context.Background(), path, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	f, _ := startHDFS(t, cluster.HDFSConfig{Datanodes: 4})
	data := pattern('h', 3*B+99)
	writeFile(t, f, "/data/file", data)
	r, err := f.Open(context.Background(), "/data/file")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got, err := io.ReadAll(r)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("round trip mismatch (%d vs %d bytes): %v", len(got), len(data), err)
	}
	st, err := f.Stat(context.Background(), "/data/file")
	if err != nil || st.Size != int64(len(data)) {
		t.Errorf("Stat = %+v, %v", st, err)
	}
}

func TestAppendNotSupported(t *testing.T) {
	// Section V-F: "We could not perform the same experiment for HDFS,
	// since it does not implement the append operation."
	f, _ := startHDFS(t, cluster.HDFSConfig{})
	writeFile(t, f, "/f", pattern('a', 10))
	if _, err := f.Append(context.Background(), "/f"); !errors.Is(err, fs.ErrNoAppend) {
		t.Errorf("Append err = %v, want ErrNoAppend", err)
	}
}

func TestSingleWriterEnforced(t *testing.T) {
	f, _ := startHDFS(t, cluster.HDFSConfig{})
	ctx := context.Background()
	w1, err := f.Create(ctx, "/locked", true)
	if err != nil {
		t.Fatal(err)
	}
	// Second concurrent writer is rejected while the first holds the file.
	if _, err := f.Create(ctx, "/locked", true); !errors.Is(err, fs.ErrBusy) {
		t.Errorf("second create err = %v, want ErrBusy", err)
	}
	w1.Write(pattern('x', 10))
	if err := w1.Close(); err != nil {
		t.Fatal(err)
	}
	// After close the file is immutable but replaceable.
	w2, err := f.Create(ctx, "/locked", true)
	if err != nil {
		t.Fatal(err)
	}
	w2.Close()
}

func TestSeekAndSubReads(t *testing.T) {
	f, _ := startHDFS(t, cluster.HDFSConfig{})
	data := pattern('s', 2*B+50)
	writeFile(t, f, "/seek", data)
	r, _ := f.Open(context.Background(), "/seek")
	defer r.Close()
	if _, err := r.Seek(B-7, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 14)
	if _, err := io.ReadFull(r, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data[B-7:B+7]) {
		t.Error("cross-block read after seek mismatch")
	}
}

func TestLocalFirstPlacement(t *testing.T) {
	// A client co-deployed with a datanode stores every chunk locally —
	// the behaviour the paper works around by writing from dedicated
	// nodes (Section V-D).
	h, err := cluster.StartHDFS(cluster.HDFSConfig{Datanodes: 4, BlockSize: B})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Stop()
	f, err := h.NewFS(h.HostOf(2)) // co-deployed with datanode 2
	if err != nil {
		t.Fatal(err)
	}
	writeFile(t, f, "/local", pattern('l', 4*B))
	layout := h.Namenode().Layout()
	if layout[2] != 4 {
		t.Errorf("layout = %v, want all 4 blocks on datanode 2", layout)
	}
	d := util.ManhattanDistance(layout)
	if d == 0 {
		t.Error("local-first placement should be maximally unbalanced")
	}
}

func TestRemoteClientStickyPlacementUnbalanced(t *testing.T) {
	// The Figure 3(b) shape: a remote client writing through the
	// default (sticky) policy produces a measurably unbalanced layout,
	// while round-robin (BlobSeer's strategy) would be perfectly balanced.
	h, err := cluster.StartHDFS(cluster.HDFSConfig{Datanodes: 10, BlockSize: B})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Stop()
	f, _ := h.NewFS("") // dedicated (non-datanode) client
	writeFile(t, f, "/big", pattern('b', 40*B))
	d := util.ManhattanDistance(h.Namenode().Layout())
	if d == 0 {
		t.Error("sticky placement produced a perfectly balanced layout")
	}
}

func TestReplicationPipelineAndFailover(t *testing.T) {
	h, err := cluster.StartHDFS(cluster.HDFSConfig{Datanodes: 3, BlockSize: B, Replication: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Stop()
	f, _ := h.NewFS("")
	data := pattern('r', 2*B)
	writeFile(t, f, "/rep", data)
	// Wipe one datanode; reads must fail over to surviving replicas.
	h.DatanodeService(h.DatanodeAddrs[0]).Store().DeletePrefix("")
	r, _ := f.Open(context.Background(), "/rep")
	defer r.Close()
	got, err := io.ReadAll(r)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("read after datanode loss: %v", err)
	}
}

func TestNamespaceOps(t *testing.T) {
	f, _ := startHDFS(t, cluster.HDFSConfig{})
	ctx := context.Background()
	writeFile(t, f, "/a/x", pattern('1', 100))
	writeFile(t, f, "/a/y", pattern('2', 200))
	sts, err := f.List(ctx, "/a")
	if err != nil || len(sts) != 2 {
		t.Fatalf("List = %v, %v", sts, err)
	}
	if sts[0].Size != 100 || sts[1].Size != 200 {
		t.Errorf("sizes = %d/%d", sts[0].Size, sts[1].Size)
	}
	if err := f.Rename(ctx, "/a/x", "/b/x"); err != nil {
		t.Fatal(err)
	}
	if err := f.Delete(ctx, "/a", true); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Open(ctx, "/a/y"); !errors.Is(err, fs.ErrNotFound) {
		t.Errorf("deleted open err = %v", err)
	}
	if err := f.Mkdirs(ctx, "/m/n"); err != nil {
		t.Fatal(err)
	}
	st, err := f.Stat(ctx, "/m/n")
	if err != nil || !st.IsDir {
		t.Errorf("mkdirs stat = %+v, %v", st, err)
	}
}

func TestLocationsForScheduling(t *testing.T) {
	h, err := cluster.StartHDFS(cluster.HDFSConfig{
		Datanodes: 4,
		BlockSize: B,
		Strategy:  placement.NewRoundRobin(), // deterministic for the test
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Stop()
	f, _ := h.NewFS("")
	writeFile(t, f, "/input", pattern('L', 4*B))
	locs, err := f.Locations(context.Background(), "/input", 0, 4*B)
	if err != nil {
		t.Fatal(err)
	}
	if len(locs) != 4 {
		t.Fatalf("got %d locations", len(locs))
	}
	for i, l := range locs {
		if l.Off != int64(i)*B || len(l.Hosts) != 1 || l.Hosts[0] == "" {
			t.Errorf("loc %d = %+v", i, l)
		}
	}
}

func TestPartialBlockLocations(t *testing.T) {
	f, _ := startHDFS(t, cluster.HDFSConfig{})
	writeFile(t, f, "/p", pattern('p', B+B/2))
	locs, err := f.Locations(context.Background(), "/p", B, B)
	if err != nil {
		t.Fatal(err)
	}
	if len(locs) != 1 || locs[0].Off != B || locs[0].Len != B/2 {
		t.Errorf("locs = %+v", locs)
	}
}

func TestEmptyFile(t *testing.T) {
	f, _ := startHDFS(t, cluster.HDFSConfig{})
	writeFile(t, f, "/empty", nil)
	st, err := f.Stat(context.Background(), "/empty")
	if err != nil || st.Size != 0 {
		t.Fatalf("Stat = %+v, %v", st, err)
	}
	r, err := f.Open(context.Background(), "/empty")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if data, _ := io.ReadAll(r); len(data) != 0 {
		t.Error("empty file read returned data")
	}
}

// TestWriterCloseDoesNotLatchSuccessOnError mirrors the bsfs writer
// regression: Close used to set closed=true before the final flush, so
// a failed flush made a repeat Close return nil — reporting a lost
// tail (and an unsealed file) as durable.
func TestWriterCloseDoesNotLatchSuccessOnError(t *testing.T) {
	f, _ := startHDFS(t, cluster.HDFSConfig{Datanodes: 2})
	ctx, cancel := context.WithCancel(context.Background())
	w, err := f.Create(ctx, "/lost-tail", true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(pattern('T', B/2)); err != nil {
		t.Fatal(err)
	}
	cancel() // the final flush will fail
	if err := w.Close(); err == nil {
		t.Fatal("Close with a failing flush returned nil")
	}
	if err := w.Close(); err == nil {
		t.Fatal("repeat Close after a failed flush returned nil (tail silently lost)")
	}
}

// TestReaderClosedSemantics: closed hdfs readers must return the
// reader sentinel from both Read and Seek, matching fs.ErrClosed.
func TestReaderClosedSemantics(t *testing.T) {
	f, _ := startHDFS(t, cluster.HDFSConfig{Datanodes: 2})
	writeFile(t, f, "/closed", pattern('c', B))
	r, err := f.Open(context.Background(), "/closed")
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(make([]byte, 8)); !errors.Is(err, fs.ErrReaderClosed) || !errors.Is(err, fs.ErrClosed) {
		t.Errorf("Read after Close = %v, want ErrReaderClosed", err)
	}
	if _, err := r.Seek(0, io.SeekStart); !errors.Is(err, fs.ErrReaderClosed) {
		t.Errorf("Seek after Close = %v, want ErrReaderClosed", err)
	}
}
