package hdfs

import (
	"context"

	"blobseer/internal/fs"
	"blobseer/internal/placement"
	"blobseer/internal/rpc"
	"blobseer/internal/wire"
)

// RPC method numbers for the namenode.
const (
	mRegisterDatanode uint16 = iota + 1
	mCreate
	mAddBlock
	mCompleteBlock
	mCompleteFile
	mGetBlockLocations
	mStat
	mList
	mMkdirs
	mDelete
	mRename
	mMarkDead
)

// Service is the namenode RPC shell.
type Service struct {
	nn *Namenode
}

// NewService wraps nn.
func NewService(nn *Namenode) *Service { return &Service{nn: nn} }

// Namenode exposes the core (tests).
func (s *Service) Namenode() *Namenode { return s.nn }

// Mux returns the dispatch table.
func (s *Service) Mux() *rpc.Mux {
	m := rpc.NewMux()
	m.Handle(mRegisterDatanode, s.handleRegister)
	m.Handle(mCreate, s.handleCreate)
	m.Handle(mAddBlock, s.handleAddBlock)
	m.Handle(mCompleteBlock, s.handleCompleteBlock)
	m.Handle(mCompleteFile, s.handleCompleteFile)
	m.Handle(mGetBlockLocations, s.handleGetBlockLocations)
	m.Handle(mStat, s.handleStat)
	m.Handle(mList, s.handleList)
	m.Handle(mMkdirs, s.handleMkdirs)
	m.Handle(mDelete, s.handleDelete)
	m.Handle(mRename, s.handleRename)
	m.Handle(mMarkDead, s.handleMarkDead)
	return m
}

func (s *Service) handleRegister(ctx context.Context, p []byte) ([]byte, error) {
	r := wire.NewReader(p)
	addr, host := r.String(), r.String()
	if err := r.Err(); err != nil {
		return nil, err
	}
	s.nn.RegisterDatanode(addr, host)
	return nil, nil
}

func (s *Service) handleMarkDead(ctx context.Context, p []byte) ([]byte, error) {
	r := wire.NewReader(p)
	addr := r.String()
	if err := r.Err(); err != nil {
		return nil, err
	}
	s.nn.MarkDead(addr)
	return nil, nil
}

func (s *Service) handleCreate(ctx context.Context, p []byte) ([]byte, error) {
	r := wire.NewReader(p)
	path := r.String()
	overwrite := r.Bool()
	lease := r.String()
	if err := r.Err(); err != nil {
		return nil, err
	}
	id, err := s.nn.Create(path, overwrite, lease)
	if err != nil {
		return nil, fs.WrapErr(err)
	}
	b := wire.NewBuffer(8)
	b.U64(uint64(id))
	return b.Bytes(), nil
}

func (s *Service) handleAddBlock(ctx context.Context, p []byte) ([]byte, error) {
	r := wire.NewReader(p)
	id := FileID(r.U64())
	lease := r.String()
	clientHost := r.String()
	replicas := int(r.U32())
	if err := r.Err(); err != nil {
		return nil, err
	}
	bid, addrs, err := s.nn.AddBlock(id, lease, clientHost, replicas)
	if err != nil {
		return nil, fs.WrapErr(err)
	}
	b := wire.NewBuffer(32)
	b.U64(uint64(bid))
	b.StringSlice(addrs)
	return b.Bytes(), nil
}

func (s *Service) handleCompleteBlock(ctx context.Context, p []byte) ([]byte, error) {
	r := wire.NewReader(p)
	id := FileID(r.U64())
	lease := r.String()
	bid := BlockID(r.U64())
	length := r.I64()
	if err := r.Err(); err != nil {
		return nil, err
	}
	return nil, fs.WrapErr(s.nn.CompleteBlock(id, lease, bid, length))
}

func (s *Service) handleCompleteFile(ctx context.Context, p []byte) ([]byte, error) {
	r := wire.NewReader(p)
	id := FileID(r.U64())
	lease := r.String()
	if err := r.Err(); err != nil {
		return nil, err
	}
	return nil, fs.WrapErr(s.nn.CompleteFile(id, lease))
}

func (s *Service) handleGetBlockLocations(ctx context.Context, p []byte) ([]byte, error) {
	r := wire.NewReader(p)
	path := r.String()
	off, length := r.I64(), r.I64()
	if err := r.Err(); err != nil {
		return nil, err
	}
	blocks, size, err := s.nn.GetBlockLocations(path, off, length)
	if err != nil {
		return nil, fs.WrapErr(err)
	}
	b := wire.NewBuffer(64)
	b.I64(size)
	b.U32(uint32(len(blocks)))
	for _, lb := range blocks {
		b.U64(uint64(lb.Block))
		b.I64(lb.Off)
		b.I64(lb.Len)
		b.StringSlice(lb.Locations)
		b.StringSlice(lb.Hosts)
	}
	return b.Bytes(), nil
}

func encodeStatus(b *wire.Buffer, st fs.FileStatus) {
	b.String(st.Path)
	b.I64(st.Size)
	b.Bool(st.IsDir)
}

func decodeStatus(r *wire.Reader) fs.FileStatus {
	return fs.FileStatus{Path: r.String(), Size: r.I64(), IsDir: r.Bool()}
}

func (s *Service) handleStat(ctx context.Context, p []byte) ([]byte, error) {
	r := wire.NewReader(p)
	path := r.String()
	if err := r.Err(); err != nil {
		return nil, err
	}
	st, err := s.nn.Stat(path)
	if err != nil {
		return nil, fs.WrapErr(err)
	}
	b := wire.NewBuffer(32)
	encodeStatus(b, st)
	return b.Bytes(), nil
}

func (s *Service) handleList(ctx context.Context, p []byte) ([]byte, error) {
	r := wire.NewReader(p)
	path := r.String()
	if err := r.Err(); err != nil {
		return nil, err
	}
	sts, err := s.nn.List(path)
	if err != nil {
		return nil, fs.WrapErr(err)
	}
	b := wire.NewBuffer(64)
	b.U32(uint32(len(sts)))
	for _, st := range sts {
		encodeStatus(b, st)
	}
	return b.Bytes(), nil
}

func (s *Service) handleMkdirs(ctx context.Context, p []byte) ([]byte, error) {
	r := wire.NewReader(p)
	path := r.String()
	if err := r.Err(); err != nil {
		return nil, err
	}
	return nil, fs.WrapErr(s.nn.Mkdirs(path))
}

func (s *Service) handleDelete(ctx context.Context, p []byte) ([]byte, error) {
	r := wire.NewReader(p)
	path := r.String()
	recursive := r.Bool()
	if err := r.Err(); err != nil {
		return nil, err
	}
	return nil, fs.WrapErr(s.nn.Delete(path, recursive))
}

func (s *Service) handleRename(ctx context.Context, p []byte) ([]byte, error) {
	r := wire.NewReader(p)
	src, dst := r.String(), r.String()
	if err := r.Err(); err != nil {
		return nil, err
	}
	return nil, fs.WrapErr(s.nn.Rename(src, dst))
}

// NNClient is the namenode RPC client.
type NNClient struct {
	pool *rpc.Pool
	addr string
}

// NewNNClient returns a client for the namenode at addr.
func NewNNClient(pool *rpc.Pool, addr string) *NNClient {
	return &NNClient{pool: pool, addr: addr}
}

func (c *NNClient) call(ctx context.Context, m uint16, payload []byte) ([]byte, error) {
	cl, err := c.pool.Get(c.addr)
	if err != nil {
		return nil, err
	}
	resp, err := cl.Call(ctx, m, payload)
	if err != nil {
		if rpc.CodeOf(err) == CodeNoProviders {
			return nil, placement.ErrNoProviders
		}
		return nil, fs.UnwrapErr(err)
	}
	return resp, nil
}

// CodeNoProviders mirrors pmanager's code for a full cluster outage.
const CodeNoProviders uint16 = 30

// Register announces a datanode.
func (c *NNClient) Register(ctx context.Context, addr, host string) error {
	b := wire.NewBuffer(16)
	b.String(addr)
	b.String(host)
	_, err := c.call(ctx, mRegisterDatanode, b.Bytes())
	return err
}

// MarkDead removes a datanode.
func (c *NNClient) MarkDead(ctx context.Context, addr string) error {
	b := wire.NewBuffer(16)
	b.String(addr)
	_, err := c.call(ctx, mMarkDead, b.Bytes())
	return err
}

// Create registers a new single-writer file.
func (c *NNClient) Create(ctx context.Context, path string, overwrite bool, lease string) (FileID, error) {
	b := wire.NewBuffer(32)
	b.String(path)
	b.Bool(overwrite)
	b.String(lease)
	resp, err := c.call(ctx, mCreate, b.Bytes())
	if err != nil {
		return 0, err
	}
	r := wire.NewReader(resp)
	id := FileID(r.U64())
	return id, r.Err()
}

// AddBlock allocates the file's next chunk.
func (c *NNClient) AddBlock(ctx context.Context, id FileID, lease, clientHost string, replicas int) (BlockID, []string, error) {
	b := wire.NewBuffer(32)
	b.U64(uint64(id))
	b.String(lease)
	b.String(clientHost)
	b.U32(uint32(replicas))
	resp, err := c.call(ctx, mAddBlock, b.Bytes())
	if err != nil {
		return 0, nil, err
	}
	r := wire.NewReader(resp)
	bid := BlockID(r.U64())
	addrs := r.StringSlice()
	return bid, addrs, r.Err()
}

// CompleteBlock commits the last block's length.
func (c *NNClient) CompleteBlock(ctx context.Context, id FileID, lease string, bid BlockID, length int64) error {
	b := wire.NewBuffer(40)
	b.U64(uint64(id))
	b.String(lease)
	b.U64(uint64(bid))
	b.I64(length)
	_, err := c.call(ctx, mCompleteBlock, b.Bytes())
	return err
}

// CompleteFile closes the file.
func (c *NNClient) CompleteFile(ctx context.Context, id FileID, lease string) error {
	b := wire.NewBuffer(24)
	b.U64(uint64(id))
	b.String(lease)
	_, err := c.call(ctx, mCompleteFile, b.Bytes())
	return err
}

// GetBlockLocations fetches the chunks overlapping a range.
func (c *NNClient) GetBlockLocations(ctx context.Context, path string, off, length int64) ([]LocatedBlock, int64, error) {
	b := wire.NewBuffer(32)
	b.String(path)
	b.I64(off)
	b.I64(length)
	resp, err := c.call(ctx, mGetBlockLocations, b.Bytes())
	if err != nil {
		return nil, 0, err
	}
	r := wire.NewReader(resp)
	size := r.I64()
	n := r.U32()
	blocks := make([]LocatedBlock, 0, n)
	for i := uint32(0); i < n; i++ {
		blocks = append(blocks, LocatedBlock{
			Block:     BlockID(r.U64()),
			Off:       r.I64(),
			Len:       r.I64(),
			Locations: r.StringSlice(),
			Hosts:     r.StringSlice(),
		})
	}
	return blocks, size, r.Err()
}

// Stat describes a path.
func (c *NNClient) Stat(ctx context.Context, path string) (fs.FileStatus, error) {
	b := wire.NewBuffer(16)
	b.String(path)
	resp, err := c.call(ctx, mStat, b.Bytes())
	if err != nil {
		return fs.FileStatus{}, err
	}
	r := wire.NewReader(resp)
	st := decodeStatus(r)
	return st, r.Err()
}

// List enumerates a directory.
func (c *NNClient) List(ctx context.Context, path string) ([]fs.FileStatus, error) {
	b := wire.NewBuffer(16)
	b.String(path)
	resp, err := c.call(ctx, mList, b.Bytes())
	if err != nil {
		return nil, err
	}
	r := wire.NewReader(resp)
	n := r.U32()
	out := make([]fs.FileStatus, 0, n)
	for i := uint32(0); i < n; i++ {
		out = append(out, decodeStatus(r))
	}
	return out, r.Err()
}

// Mkdirs creates directories.
func (c *NNClient) Mkdirs(ctx context.Context, path string) error {
	b := wire.NewBuffer(16)
	b.String(path)
	_, err := c.call(ctx, mMkdirs, b.Bytes())
	return err
}

// Delete unlinks a path.
func (c *NNClient) Delete(ctx context.Context, path string, recursive bool) error {
	b := wire.NewBuffer(20)
	b.String(path)
	b.Bool(recursive)
	_, err := c.call(ctx, mDelete, b.Bytes())
	return err
}

// Rename moves a path.
func (c *NNClient) Rename(ctx context.Context, src, dst string) error {
	b := wire.NewBuffer(32)
	b.String(src)
	b.String(dst)
	_, err := c.call(ctx, mRename, b.Bytes())
	return err
}
