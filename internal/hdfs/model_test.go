package hdfs_test

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"testing"

	"blobseer/internal/cluster"
	"blobseer/internal/util"
)

// TestHDFSMatchesFlatModel drives random create/read/rename/delete
// schedules against a live HDFS deployment and a map-based reference:
// whole-file contents, random sub-range reads (through the prefetching
// stream), and namespace state must all agree.
func TestHDFSMatchesFlatModel(t *testing.T) {
	const block = int64(4 * util.KB)
	names := []string{"/a", "/b", "/dir/c", "/dir/d"}

	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprint(seed), func(t *testing.T) {
			h, err := cluster.StartHDFS(cluster.HDFSConfig{Datanodes: 3, BlockSize: block})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(h.Stop)
			ctx := context.Background()
			fsys, err := h.NewFS("")
			if err != nil {
				t.Fatal(err)
			}

			rng := rand.New(rand.NewSource(seed))
			model := map[string][]byte{}

			randPayload := func() []byte {
				// Anything from sub-block to several blocks, unaligned.
				n := 1 + rng.Intn(int(3*block))
				p := make([]byte, n)
				rng.Read(p)
				return p
			}

			for step := 0; step < 40; step++ {
				name := names[rng.Intn(len(names))]
				switch rng.Intn(5) {
				case 0, 1: // create/overwrite, streaming random chunk sizes
					payload := randPayload()
					w, err := fsys.Create(ctx, name, true)
					if err != nil {
						t.Fatalf("step %d create %s: %v", step, name, err)
					}
					for off := 0; off < len(payload); {
						n := 1 + rng.Intn(len(payload)-off)
						c, err := w.Write(payload[off : off+n])
						if err != nil {
							t.Fatal(err)
						}
						off += c
					}
					if err := w.Close(); err != nil {
						t.Fatal(err)
					}
					model[name] = payload

				case 2: // full read
					want, ok := model[name]
					r, err := fsys.Open(ctx, name)
					if !ok {
						if err == nil {
							r.Close()
							t.Fatalf("step %d: opened deleted/missing %s", step, name)
						}
						continue
					}
					if err != nil {
						t.Fatalf("step %d open %s: %v", step, name, err)
					}
					got, err := io.ReadAll(r)
					r.Close()
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(got, want) {
						t.Fatalf("step %d: %s contents diverged (%d vs %d bytes)", step, name, len(got), len(want))
					}

				case 3: // random sub-range read via Seek
					want, ok := model[name]
					if !ok || len(want) == 0 {
						continue
					}
					off := rng.Intn(len(want))
					n := 1 + rng.Intn(len(want)-off)
					r, err := fsys.Open(ctx, name)
					if err != nil {
						t.Fatal(err)
					}
					if _, err := r.Seek(int64(off), io.SeekStart); err != nil {
						t.Fatal(err)
					}
					got := make([]byte, n)
					if _, err := io.ReadFull(r, got); err != nil {
						t.Fatalf("step %d: ranged read %s [%d,+%d): %v", step, name, off, n, err)
					}
					r.Close()
					if !bytes.Equal(got, want[off:off+n]) {
						t.Fatalf("step %d: %s range [%d,+%d) diverged", step, name, off, n)
					}

				case 4: // delete or rename
					if rng.Intn(2) == 0 {
						err := fsys.Delete(ctx, name, false)
						_, ok := model[name]
						if ok && err != nil {
							t.Fatalf("step %d delete %s: %v", step, name, err)
						}
						delete(model, name)
					} else {
						dst := names[rng.Intn(len(names))]
						if dst == name {
							continue
						}
						_, srcOK := model[name]
						_, dstOK := model[dst]
						err := fsys.Rename(ctx, name, dst)
						if srcOK && !dstOK {
							if err != nil {
								t.Fatalf("step %d rename %s->%s: %v", step, name, dst, err)
							}
							model[dst] = model[name]
							delete(model, name)
						} else if err == nil && !srcOK {
							t.Fatalf("step %d: rename of missing %s succeeded", step, name)
						}
					}
				}

				// Sizes always agree.
				for name, want := range model {
					st, err := fsys.Stat(ctx, name)
					if err != nil {
						t.Fatalf("step %d stat %s: %v", step, name, err)
					}
					if st.Size != int64(len(want)) {
						t.Fatalf("step %d: %s size %d, want %d", step, name, st.Size, len(want))
					}
				}
			}
		})
	}
}
