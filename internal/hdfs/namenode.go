// Package hdfs is the baseline the paper compares BSFS against: a
// faithful-in-shape reimplementation of the HDFS 0.20 storage model
// (Section II-B). A centralized namenode keeps both the directory
// structure and the chunk layout; datanodes store 64 MB blocks (they
// reuse the provider daemon); files are single-writer, immutable once
// closed, and — deliberately — there is NO append (Section V-F: "We
// could not perform the same experiment for HDFS, since it does not
// implement the append operation").
package hdfs

import (
	"context"
	"fmt"
	"sync"

	"blobseer/internal/blob"
	"blobseer/internal/fs"
	"blobseer/internal/namespace"
	"blobseer/internal/placement"
)

// FileID identifies a file inode on the namenode.
type FileID uint64

// BlockID identifies one stored chunk.
type BlockID uint64

// blockInfo is one chunk of a file.
type blockInfo struct {
	id        BlockID
	length    int64
	locations []string // datanode addresses
}

type fileMeta struct {
	blocks []blockInfo
	size   int64
	open   bool
	lease  string
}

// Namenode is the centralized metadata server. It reuses the namespace
// tree for the directory structure (files resolve to FileIDs) and adds
// the chunk-layout map — the two metadata kinds GoogleFS/HDFS
// centralize on one master (Section II-B).
type Namenode struct {
	mu        sync.Mutex
	ns        *namespace.State
	files     map[FileID]*fileMeta
	nextFile  FileID
	nextBlock BlockID
	nodes     []*placement.Node
	byAddr    map[string]*placement.Node
	strategy  placement.Strategy
	blockSize int64
}

// NewNamenode returns a namenode placing blocks with strategy.
// DefaultStrategy() reproduces the behaviour measured in the paper.
func NewNamenode(blockSize int64, strategy placement.Strategy) *Namenode {
	n := &Namenode{
		files:     make(map[FileID]*fileMeta),
		byAddr:    make(map[string]*placement.Node),
		strategy:  strategy,
		blockSize: blockSize,
	}
	n.ns = namespace.NewState(func(ctx context.Context, _ int64, _ int) (blob.ID, error) {
		// The namespace creator runs under n.mu (callers hold it).
		n.nextFile++
		n.files[n.nextFile] = &fileMeta{open: true}
		return blob.ID(n.nextFile), nil
	})
	return n
}

// DefaultStrategy is the calibrated model of HDFS 0.20's placement: the
// first replica goes to the local datanode when the client is
// co-deployed; otherwise targets are random with a sticky window, which
// reproduces the chunk clustering the paper measured in Figure 3(b).
func DefaultStrategy(seed uint64) placement.Strategy {
	return placement.NewLocalFirst(placement.NewRandomSticky(8, seed))
}

// BlockSize returns the chunk size.
func (n *Namenode) BlockSize() int64 { return n.blockSize }

// RegisterDatanode adds a datanode.
func (n *Namenode) RegisterDatanode(addr, host string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if nd, ok := n.byAddr[addr]; ok {
		nd.Alive = true
		nd.Host = host
		return
	}
	nd := &placement.Node{Addr: addr, Host: host, Alive: true}
	n.nodes = append(n.nodes, nd)
	n.byAddr[addr] = nd
}

// MarkDead removes a datanode from placement.
func (n *Namenode) MarkDead(addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if nd, ok := n.byAddr[addr]; ok {
		nd.Alive = false
	}
}

// Layout returns blocks-per-datanode counts (Figure 3(b) metric).
func (n *Namenode) Layout() []int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return placement.Layout(n.nodes)
}

// Datanodes lists registered datanodes.
func (n *Namenode) Datanodes() []placement.Node {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]placement.Node, len(n.nodes))
	for i, nd := range n.nodes {
		out[i] = *nd
	}
	return out
}

// Create registers a new file held by lease. Concurrent writers are
// rejected: HDFS allows only one writer at a time.
func (n *Namenode) Create(path string, overwrite bool, lease string) (FileID, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	// Overwriting a file currently open by another writer is refused.
	if e, err := n.ns.StatEntry(path); err == nil && !e.IsDir {
		if fm := n.files[FileID(e.Blob)]; fm != nil && fm.open {
			return 0, fs.ErrBusy
		}
	}
	id, err := n.ns.CreateFile(context.Background(), path, n.blockSize, 1, overwrite)
	if err != nil {
		return 0, err
	}
	fid := FileID(id)
	n.files[fid].lease = lease
	return fid, nil
}

// AddBlock allocates the next chunk of an open file and picks its
// target datanode(s).
func (n *Namenode) AddBlock(id FileID, lease string, clientHost string, replicas int) (BlockID, []string, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	fm, ok := n.files[id]
	if !ok {
		return 0, nil, fs.ErrNotFound
	}
	if !fm.open || fm.lease != lease {
		return 0, nil, fs.ErrBusy
	}
	if replicas < 1 {
		replicas = 1
	}
	targets, err := n.strategy.Pick(1, replicas, clientHost, n.nodes)
	if err != nil {
		return 0, nil, err
	}
	n.nextBlock++
	bid := n.nextBlock
	addrs := make([]string, len(targets[0]))
	for i, nd := range targets[0] {
		addrs[i] = nd.Addr
	}
	fm.blocks = append(fm.blocks, blockInfo{id: bid, locations: addrs})
	return bid, addrs, nil
}

// CompleteBlock records the written length of the file's last block,
// making those bytes visible to readers.
func (n *Namenode) CompleteBlock(id FileID, lease string, bid BlockID, length int64) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	fm, ok := n.files[id]
	if !ok {
		return fs.ErrNotFound
	}
	if !fm.open || fm.lease != lease {
		return fs.ErrBusy
	}
	if len(fm.blocks) == 0 || fm.blocks[len(fm.blocks)-1].id != bid {
		return fmt.Errorf("hdfs: block %d is not the file's last block", bid)
	}
	if length < 0 || length > n.blockSize {
		return fmt.Errorf("hdfs: bad block length %d", length)
	}
	fm.blocks[len(fm.blocks)-1].length = length
	fm.size += length
	return nil
}

// CompleteFile closes the file; it becomes immutable.
func (n *Namenode) CompleteFile(id FileID, lease string) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	fm, ok := n.files[id]
	if !ok {
		return fs.ErrNotFound
	}
	if !fm.open || fm.lease != lease {
		return fs.ErrBusy
	}
	fm.open = false
	fm.lease = ""
	return nil
}

// LocatedBlock is one chunk of a read plan.
type LocatedBlock struct {
	Block     BlockID
	Off       int64 // offset in file
	Len       int64
	Locations []string // datanode addresses
	Hosts     []string // physical hosts of those datanodes
}

// GetBlockLocations resolves path and returns the chunks overlapping
// [off, off+length), with their datanodes — Hadoop's central read and
// scheduling primitive.
func (n *Namenode) GetBlockLocations(path string, off, length int64) ([]LocatedBlock, int64, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	id, err := n.ns.GetFile(path)
	if err != nil {
		return nil, 0, err
	}
	fm := n.files[FileID(id)]
	if fm == nil {
		return nil, 0, fs.ErrNotFound
	}
	var out []LocatedBlock
	pos := int64(0)
	for _, b := range fm.blocks {
		blockRange := blob.Range{Off: pos, Len: b.length}
		if blockRange.Intersects(blob.Range{Off: off, Len: length}) {
			hosts := make([]string, len(b.locations))
			for i, addr := range b.locations {
				if nd, ok := n.byAddr[addr]; ok {
					hosts[i] = nd.Host
				}
			}
			out = append(out, LocatedBlock{Block: b.id, Off: pos, Len: b.length, Locations: b.locations, Hosts: hosts})
		}
		pos += b.length
	}
	return out, fm.size, nil
}

// Stat describes a path.
func (n *Namenode) Stat(path string) (fs.FileStatus, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	e, err := n.ns.StatEntry(path)
	if err != nil {
		return fs.FileStatus{}, err
	}
	st := fs.FileStatus{Path: fs.Clean(path), IsDir: e.IsDir}
	if !e.IsDir {
		if fm := n.files[FileID(e.Blob)]; fm != nil {
			st.Size = fm.size
		}
	}
	return st, nil
}

// List enumerates a directory.
func (n *Namenode) List(path string) ([]fs.FileStatus, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	entries, err := n.ns.List(path)
	if err != nil {
		return nil, err
	}
	dir := fs.Clean(path)
	if dir == "/" {
		dir = ""
	}
	out := make([]fs.FileStatus, 0, len(entries))
	for _, e := range entries {
		st := fs.FileStatus{Path: dir + "/" + e.Name, IsDir: e.IsDir}
		if !e.IsDir {
			if fm := n.files[FileID(e.Blob)]; fm != nil {
				st.Size = fm.size
			}
		}
		out = append(out, st)
	}
	return out, nil
}

// Mkdirs creates directories.
func (n *Namenode) Mkdirs(path string) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.ns.Mkdirs(path)
}

// Delete unlinks a path and forgets the chunk layout of removed files.
func (n *Namenode) Delete(path string, recursive bool) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	orphans, err := n.ns.Delete(path, recursive)
	if err != nil {
		return err
	}
	for _, id := range orphans {
		delete(n.files, FileID(id))
	}
	return nil
}

// Rename moves a path.
func (n *Namenode) Rename(src, dst string) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.ns.Rename(src, dst)
}
