package rpc

import (
	"bytes"
	"context"
	"encoding/binary"
	"net"
	"testing"
	"time"

	"blobseer/internal/trace"
	"blobseer/internal/wire"
)

// rawExchange captures the exact frame Client.Call puts on the wire for
// one request, answers it with a canned OK response, and returns the
// raw request bytes.
func rawExchange(t *testing.T, ctx context.Context, method uint16, payload []byte) []byte {
	t.Helper()
	cliConn, srvConn := net.Pipe()
	c := NewClient(cliConn)
	defer c.Close()

	frameCh := make(chan []byte, 1)
	go func() {
		frame, err := wire.ReadFrame(srvConn, 0)
		if err != nil {
			close(frameCh)
			return
		}
		frameCh <- frame
		// Minimal OK response: echo the request id.
		buf := wire.NewBuffer(13)
		buf.U64(binary.BigEndian.Uint64(frame[:8]))
		buf.U16(method)
		buf.U8(flagResponse)
		buf.U16(StatusOK)
		_ = wire.WriteFrame(srvConn, buf.Bytes())
	}()

	if _, err := c.Call(ctx, method, payload); err != nil {
		t.Fatal(err)
	}
	frame, ok := <-frameCh
	if !ok {
		t.Fatal("no frame captured")
	}
	return frame
}

// TestWireFormatUntracedPinned pins the untraced request frame to the
// pre-trace protocol byte for byte: u64 id | u16 method | u8 0 | u16 0 |
// payload, nothing else. Old peers must interoperate with new clients
// as long as no trace context rides the call.
func TestWireFormatUntracedPinned(t *testing.T) {
	payload := []byte("payload-bytes")
	frame := rawExchange(t, context.Background(), 7, payload)

	want := []byte{
		0, 0, 0, 0, 0, 0, 0, 1, // request id 1 (first call on the client)
		0, 7, // method
		0,    // flags: no response bit, no trace bit
		0, 0, // status
	}
	want = append(want, payload...)
	if !bytes.Equal(frame, want) {
		t.Errorf("untraced frame:\n got %x\nwant %x", frame, want)
	}
}

// TestWireFormatTraced pins the traced layout: the legacy 13-byte
// header with the trace bit set, then exactly 25 trace bytes (trace id
// hi, lo, parent span, flags), then the payload.
func TestWireFormatTraced(t *testing.T) {
	id := trace.ID{Hi: 0x1111222233334444, Lo: 0x5555666677778888}
	ctx := trace.NewContext(context.Background(), trace.Context{Trace: id, Span: 0x0102030405060708})
	payload := []byte("xyz")
	frame := rawExchange(t, ctx, 9, payload)

	want := []byte{
		0, 0, 0, 0, 0, 0, 0, 1, // request id
		0, 9, // method
		flagTrace, // flags
		0, 0,      // status
		0x11, 0x11, 0x22, 0x22, 0x33, 0x33, 0x44, 0x44, // trace id hi
		0x55, 0x55, 0x66, 0x66, 0x77, 0x77, 0x88, 0x88, // trace id lo
		0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, // parent span
		traceSampled, // trace flags
	}
	want = append(want, payload...)
	if len(frame) != 13+traceHdrLen+len(payload) {
		t.Fatalf("traced frame length = %d, want %d", len(frame), 13+traceHdrLen+len(payload))
	}
	if !bytes.Equal(frame, want) {
		t.Errorf("traced frame:\n got %x\nwant %x", frame, want)
	}
}

// TestTracePropagation: a traced call's server-side span must join the
// caller's trace with the caller's span as parent, named via the
// registered MethodName function.
func TestTracePropagation(t *testing.T) {
	mux := NewMux()
	mux.Handle(3, func(ctx context.Context, p []byte) ([]byte, error) {
		// The traced request's handler must see the inbound context.
		if string(p) == "traced" {
			if tc, ok := trace.FromContext(ctx); !ok || tc.Trace.IsZero() {
				t.Error("handler ctx carries no trace context")
			}
		}
		return []byte("ok"), nil
	})
	n := NewInprocNetwork()
	lis, err := n.Listen("traced")
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New("svc", 0)
	srv := NewServer(mux)
	srv.SetTrace(tr, func(m uint16) string { return "op3" })
	go srv.Serve(lis)
	defer srv.Close()

	conn, err := n.Dial("traced")
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(conn)
	defer c.Close()

	id := trace.NewID()
	ctx := trace.NewContext(context.Background(), trace.Context{Trace: id, Span: 42})
	if _, err := c.Call(ctx, 3, []byte("traced")); err != nil {
		t.Fatal(err)
	}

	spans := tr.Spans(id)
	if len(spans) != 1 {
		t.Fatalf("server recorded %d spans for the trace, want 1", len(spans))
	}
	sp := spans[0]
	if sp.Op != "op3" || sp.Service != "svc" {
		t.Errorf("span = %s.%s, want svc.op3", sp.Service, sp.Op)
	}
	if sp.Parent != 42 {
		t.Errorf("span parent = %d, want the caller's span 42", sp.Parent)
	}

	// An untraced call through the same server must record nothing.
	before := tr.Recorded()
	if _, err := c.Call(context.Background(), 3, []byte("hi")); err != nil {
		t.Fatal(err)
	}
	if tr.Recorded() != before {
		t.Error("untraced call recorded a server span")
	}
}

// TestTraceErrorSpan: a failing handler's span must carry the wire
// status code and message.
func TestTraceErrorSpan(t *testing.T) {
	mux := NewMux()
	mux.Handle(4, func(ctx context.Context, p []byte) ([]byte, error) {
		return nil, CodedError(42, "nope")
	})
	n := NewInprocNetwork()
	lis, err := n.Listen("erring")
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New("svc", 0)
	srv := NewServer(mux)
	srv.SetTrace(tr, nil) // no name fn: the numeric fallback
	go srv.Serve(lis)
	defer srv.Close()

	conn, _ := n.Dial("erring")
	c := NewClient(conn)
	defer c.Close()

	ctx, id := trace.WithRoot(context.Background())
	if _, err := c.Call(ctx, 4, nil); err == nil {
		t.Fatal("expected remote error")
	}
	spans := tr.Spans(id)
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	if spans[0].Op != "m4" {
		t.Errorf("fallback op name = %q, want m4", spans[0].Op)
	}
	if spans[0].Code != 42 || spans[0].Err != "nope" {
		t.Errorf("error span = code %d err %q, want 42 %q", spans[0].Code, spans[0].Err, "nope")
	}
}

// TestTraceSurvivesRetryRedial: the trace context lives on the caller's
// ctx, not the connection, so a Retry loop that re-dials after
// transport failures must deliver the same trace ID to the server that
// finally answers.
func TestTraceSurvivesRetryRedial(t *testing.T) {
	mux := NewMux()
	mux.Handle(5, func(ctx context.Context, p []byte) ([]byte, error) {
		return []byte("ok"), nil
	})
	n := NewInprocNetwork()
	lis, err := n.Listen("flaky")
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New("svc", 0)
	srv := NewServer(mux)
	srv.SetTrace(tr, func(m uint16) string { return "flaky_op" })
	go srv.Serve(lis)
	defer srv.Close()

	ctx, id := trace.WithRoot(context.Background())
	attempts := 0
	err = Retry(ctx, Backoff{Attempts: 5, Base: time.Millisecond}, func(ctx context.Context) error {
		attempts++
		if attempts < 3 {
			// Simulate a dead peer: dial a nonexistent endpoint.
			if _, err := n.Dial("nowhere"); err != nil {
				return err
			}
			t.Fatal("dial of nonexistent endpoint succeeded")
		}
		conn, err := n.Dial("flaky")
		if err != nil {
			return err
		}
		c := NewClient(conn)
		defer c.Close()
		_, err = c.Call(ctx, 5, []byte("req"))
		return err
	})
	if err != nil {
		t.Fatalf("retry failed: %v", err)
	}
	if attempts != 3 {
		t.Fatalf("attempts = %d, want 3", attempts)
	}
	spans := tr.Spans(id)
	if len(spans) != 1 {
		t.Fatalf("server holds %d spans of the trace after re-dials, want exactly 1", len(spans))
	}
	if spans[0].Op != "flaky_op" {
		t.Errorf("span op = %q", spans[0].Op)
	}
}
