package rpc

import (
	"context"
	"math/rand/v2"
	"time"
)

// Backoff describes a retry schedule: up to Attempts total tries with
// exponentially growing, jittered delays between them. The zero value
// means "no retries" (one attempt); most callers start from
// DefaultBackoff.
type Backoff struct {
	Attempts int           // total tries, including the first (min 1)
	Base     time.Duration // delay before the first retry
	Max      time.Duration // delay ceiling (0 = uncapped)
}

// DefaultBackoff is the schedule the manager clients (version manager,
// namespace, provider manager, metadata DHT) retry with: enough budget
// (~1s of cumulative delay) to ride out a control-service crash-restart
// cycle, small enough that a genuinely dead service fails calls in
// about a second.
var DefaultBackoff = Backoff{Attempts: 8, Base: 10 * time.Millisecond, Max: 300 * time.Millisecond}

// Retry runs fn until it succeeds, returns a non-retryable error, the
// schedule is exhausted, or ctx is done. Only TransportFailure errors
// are retried: application errors mean the peer is alive and answered —
// repeating the call would repeat the answer — and ctx expiry means the
// caller gave up. Each delay is the exponential step with half-range
// jitter (uniform in [d/2, d]), decorrelating clients that all observed
// the same restart.
//
// Retrying is only safe when the operation tolerates duplicate
// delivery: the response may have been lost *after* the peer applied
// the request. Publish/Commit is idempotent by design; AssignVersion
// may leak an in-flight version on such a lost response, which the
// dead-writer janitor aborts.
func Retry(ctx context.Context, b Backoff, fn func(ctx context.Context) error) error {
	attempts := b.Attempts
	if attempts < 1 {
		attempts = 1
	}
	delay := b.Base
	if delay <= 0 {
		delay = 10 * time.Millisecond
	}
	var err error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			jittered := delay/2 + rand.N(delay/2+1)
			t := time.NewTimer(jittered)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return err // the last transport failure, not ctx.Err()
			}
			delay *= 2
			if b.Max > 0 && delay > b.Max {
				delay = b.Max
			}
		}
		err = fn(ctx)
		if err == nil || !TransportFailure(err) {
			return err
		}
		if ctx.Err() != nil {
			return err
		}
	}
	return err
}
