package rpc

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

// startServer wires a mux to a fresh inproc endpoint and returns a dialer.
func startServer(t *testing.T, mux *Mux) (*InprocNetwork, string, *Server) {
	t.Helper()
	n := NewInprocNetwork()
	lis, err := n.Listen("svc")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(mux)
	go srv.Serve(lis)
	t.Cleanup(func() { srv.Close() })
	return n, "svc", srv
}

func TestCallRoundTrip(t *testing.T) {
	mux := NewMux()
	mux.Handle(1, func(ctx context.Context, p []byte) ([]byte, error) {
		return append([]byte("echo:"), p...), nil
	})
	n, addr, _ := startServer(t, mux)
	conn, err := n.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(conn)
	defer c.Close()

	resp, err := c.Call(context.Background(), 1, []byte("hi"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "echo:hi" {
		t.Errorf("resp = %q", resp)
	}
}

func TestRemoteError(t *testing.T) {
	mux := NewMux()
	mux.Handle(2, func(ctx context.Context, p []byte) ([]byte, error) {
		return nil, CodedError(42, "nope")
	})
	n, addr, _ := startServer(t, mux)
	conn, _ := n.Dial(addr)
	c := NewClient(conn)
	defer c.Close()

	_, err := c.Call(context.Background(), 2, nil)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want RemoteError", err)
	}
	if re.Code != 42 || re.Msg != "nope" {
		t.Errorf("remote error = %+v", re)
	}
	if CodeOf(err) != 42 {
		t.Errorf("CodeOf = %d", CodeOf(err))
	}
}

func TestUnknownMethod(t *testing.T) {
	n, addr, _ := startServer(t, NewMux())
	conn, _ := n.Dial(addr)
	c := NewClient(conn)
	defer c.Close()
	_, err := c.Call(context.Background(), 99, nil)
	var re *RemoteError
	if !errors.As(err, &re) || re.Code != StatusError {
		t.Fatalf("err = %v", err)
	}
}

func TestConcurrentPipelinedCalls(t *testing.T) {
	mux := NewMux()
	mux.Handle(3, func(ctx context.Context, p []byte) ([]byte, error) { return p, nil })
	n, addr, _ := startServer(t, mux)
	conn, _ := n.Dial(addr)
	c := NewClient(conn)
	defer c.Close()

	const N = 64
	var wg sync.WaitGroup
	errs := make(chan error, N)
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			want := fmt.Sprintf("payload-%d", i)
			resp, err := c.Call(context.Background(), 3, []byte(want))
			if err != nil {
				errs <- err
				return
			}
			if string(resp) != want {
				errs <- fmt.Errorf("mismatch: got %q want %q", resp, want)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestBlockingHandlerDoesNotStallOthers(t *testing.T) {
	release := make(chan struct{})
	mux := NewMux()
	mux.Handle(1, func(ctx context.Context, p []byte) ([]byte, error) { <-release; return []byte("slow"), nil })
	mux.Handle(2, func(ctx context.Context, p []byte) ([]byte, error) { return []byte("fast"), nil })
	n, addr, _ := startServer(t, mux)
	conn, _ := n.Dial(addr)
	c := NewClient(conn)
	defer c.Close()

	slowDone := make(chan error, 1)
	go func() {
		_, err := c.Call(context.Background(), 1, nil)
		slowDone <- err
	}()
	// The fast call must complete while the slow one is blocked.
	resp, err := c.Call(context.Background(), 2, nil)
	if err != nil || string(resp) != "fast" {
		t.Fatalf("fast call failed: %v %q", err, resp)
	}
	close(release)
	if err := <-slowDone; err != nil {
		t.Fatalf("slow call: %v", err)
	}
}

func TestCallContextCancel(t *testing.T) {
	mux := NewMux()
	block := make(chan struct{})
	defer close(block)
	mux.Handle(1, func(ctx context.Context, p []byte) ([]byte, error) { <-block; return nil, nil })
	n, addr, _ := startServer(t, mux)
	conn, _ := n.Dial(addr)
	c := NewClient(conn)
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := c.Call(ctx, 1, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
}

func TestServerCloseFailsInflight(t *testing.T) {
	mux := NewMux()
	started := make(chan struct{})
	block := make(chan struct{})
	mux.Handle(1, func(ctx context.Context, p []byte) ([]byte, error) { close(started); <-block; return nil, nil })
	n, addr, srv := startServer(t, mux)
	conn, _ := n.Dial(addr)
	c := NewClient(conn)
	defer c.Close()

	done := make(chan error, 1)
	go func() {
		_, err := c.Call(context.Background(), 1, nil)
		done <- err
	}()
	<-started
	close(block) // let the handler finish so Close's wait returns
	srv.Close()
	err := <-done
	// The call either completed before the teardown or failed with a
	// transport error; it must not hang or return a silent nil payload.
	if err != nil && !errors.Is(err, ErrConnBroken) {
		t.Logf("in-flight call ended with: %v", err)
	}
}

func TestConnBrokenSurfacesToPendingCalls(t *testing.T) {
	mux := NewMux()
	block := make(chan struct{})
	defer close(block)
	mux.Handle(1, func(ctx context.Context, p []byte) ([]byte, error) { <-block; return nil, nil })
	n, addr, _ := startServer(t, mux)
	conn, _ := n.Dial(addr)
	c := NewClient(conn)

	done := make(chan error, 1)
	go func() {
		_, err := c.Call(context.Background(), 1, nil)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	c.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrConnBroken) {
			t.Fatalf("err = %v, want ErrConnBroken", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pending call never failed after close")
	}
}

func TestInprocNetworkLifecycle(t *testing.T) {
	n := NewInprocNetwork()
	if _, err := n.Dial("nobody"); err == nil {
		t.Error("dial to unknown address succeeded")
	}
	lis, err := n.Listen("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Listen("a"); err == nil {
		t.Error("duplicate listen succeeded")
	}
	if lis.Addr().Network() != "inproc" || lis.Addr().String() != "a" {
		t.Error("addr wrong")
	}
	lis.Close()
	if _, err := n.Dial("a"); err == nil {
		t.Error("dial after close succeeded")
	}
	// Address is reusable after close.
	if _, err := n.Listen("a"); err != nil {
		t.Errorf("relisten failed: %v", err)
	}
}

func TestPoolReusesAndRedials(t *testing.T) {
	mux := NewMux()
	mux.Handle(1, func(ctx context.Context, p []byte) ([]byte, error) { return []byte("ok"), nil })
	n, addr, _ := startServer(t, mux)
	pool := NewPool(n.Dial)
	defer pool.Close()

	c1, err := pool.Get(addr)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := pool.Get(addr)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Error("pool did not reuse client")
	}
	// Break the connection; the pool must hand out a fresh client.
	c1.Close()
	deadline := time.Now().Add(2 * time.Second)
	for {
		c3, err := pool.Get(addr)
		if err != nil {
			t.Fatal(err)
		}
		if c3 != c1 {
			if _, err := c3.Call(context.Background(), 1, nil); err != nil {
				t.Fatalf("fresh client call: %v", err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("pool kept returning the broken client")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestOverTCP(t *testing.T) {
	mux := NewMux()
	mux.Handle(7, func(ctx context.Context, p []byte) ([]byte, error) { return append(p, '!'), nil })
	lis, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Skipf("cannot listen on loopback: %v", err)
	}
	srv := NewServer(mux)
	go srv.Serve(lis)
	defer srv.Close()

	conn, err := net.Dial("tcp", lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(conn)
	defer c.Close()
	resp, err := c.Call(context.Background(), 7, []byte("tcp"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "tcp!" {
		t.Errorf("resp = %q", resp)
	}
}
