package rpc

import (
	"fmt"
	"net"
	"sync"
	"time"
)

// Dialer opens a connection to an address. Deployments use TCPDialer;
// tests and embedded clusters use an InprocNetwork's Dial.
type Dialer func(addr string) (net.Conn, error)

// TCPDialer dials real TCP addresses.
func TCPDialer(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }

// ListenTCP opens a TCP listener on addr ("host:0" picks a free port).
func ListenTCP(addr string) (net.Listener, error) { return net.Listen("tcp", addr) }

// InprocNetwork is an in-process transport: named listeners connected
// through net.Pipe. It lets a whole BlobSeer deployment (version
// manager, providers, namespace manager, trackers...) run inside one
// test binary with the exact same RPC code paths as a TCP deployment.
type InprocNetwork struct {
	mu        sync.Mutex
	listeners map[string]*inprocListener
}

// NewInprocNetwork returns an empty in-process network.
func NewInprocNetwork() *InprocNetwork {
	return &InprocNetwork{listeners: make(map[string]*inprocListener)}
}

// Listen registers a named endpoint. Addresses are free-form strings
// (daemons use "role-N" style names).
func (n *InprocNetwork) Listen(addr string) (net.Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.listeners[addr]; ok {
		return nil, fmt.Errorf("inproc: address %q already in use", addr)
	}
	l := &inprocListener{
		net:    n,
		addr:   addr,
		accept: make(chan net.Conn),
		done:   make(chan struct{}),
	}
	n.listeners[addr] = l
	return l, nil
}

// Dial connects to a named endpoint.
func (n *InprocNetwork) Dial(addr string) (net.Conn, error) {
	n.mu.Lock()
	l, ok := n.listeners[addr]
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("inproc: connection refused: %q", addr)
	}
	client, server := net.Pipe()
	select {
	case l.accept <- server:
		return client, nil
	case <-l.done:
		return nil, fmt.Errorf("inproc: connection refused: %q", addr)
	}
}

func (n *InprocNetwork) remove(addr string) {
	n.mu.Lock()
	delete(n.listeners, addr)
	n.mu.Unlock()
}

type inprocListener struct {
	net    *InprocNetwork
	addr   string
	accept chan net.Conn
	done   chan struct{}
	once   sync.Once
}

func (l *inprocListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.accept:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

func (l *inprocListener) Close() error {
	l.once.Do(func() {
		close(l.done)
		l.net.remove(l.addr)
	})
	return nil
}

func (l *inprocListener) Addr() net.Addr { return inprocAddr(l.addr) }

type inprocAddr string

func (a inprocAddr) Network() string { return "inproc" }
func (a inprocAddr) String() string  { return string(a) }

// Pool caches one Client per address and redials transparently when a
// connection breaks. All BlobSeer client-side components share a Pool so
// that e.g. 250 concurrent readers multiplex over one connection per
// provider, as the C++ implementation does.
type Pool struct {
	dial    Dialer
	timeout time.Duration // per-call I/O deadline applied to new clients

	mu      sync.Mutex
	clients map[string]*Client
}

// NewPool returns a Pool using dial for new connections.
func NewPool(dial Dialer) *Pool {
	return &Pool{dial: dial, clients: make(map[string]*Client)}
}

// SetCallTimeout applies a per-call I/O deadline to every client the
// pool hands out (existing pooled clients included): see
// Client.SetIOTimeout. 0 disables — the historical behavior, where a
// hung peer blocks its callers forever.
func (p *Pool) SetCallTimeout(d time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.timeout = d
	for _, c := range p.clients {
		c.SetIOTimeout(d)
	}
}

// Get returns a live client for addr, dialing if needed.
func (p *Pool) Get(addr string) (*Client, error) {
	p.mu.Lock()
	if c, ok := p.clients[addr]; ok {
		c.mu.Lock()
		healthy := c.err == nil
		c.mu.Unlock()
		if healthy {
			p.mu.Unlock()
			return c, nil
		}
		delete(p.clients, addr)
	}
	p.mu.Unlock()

	conn, err := p.dial(addr)
	if err != nil {
		return nil, fmt.Errorf("rpc: dial %s: %w", addr, err)
	}
	c := NewClient(conn)
	p.mu.Lock()
	c.SetIOTimeout(p.timeout)
	p.mu.Unlock()

	p.mu.Lock()
	defer p.mu.Unlock()
	if existing, ok := p.clients[addr]; ok {
		existing.mu.Lock()
		healthy := existing.err == nil
		existing.mu.Unlock()
		if healthy { // lost the race; keep the established one
			go c.Close()
			return existing, nil
		}
	}
	p.clients[addr] = c
	return c, nil
}

// Close closes every pooled client.
func (p *Pool) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for addr, c := range p.clients {
		c.Close()
		delete(p.clients, addr)
	}
}
