package rpc

import (
	"context"
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"
)

// TestCallTimeoutStalledServer is the regression test for the
// historical hang: a peer that accepts the connection and then never
// responds used to block callers forever. With a per-call I/O deadline
// the call must fail with ErrCallTimeout, classified as a transport
// failure so retry layers treat it like a dead peer.
func TestCallTimeoutStalledServer(t *testing.T) {
	n := NewInprocNetwork()
	lis, err := n.Listen("stalled")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	// A "server" that reads frames but never answers them.
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			go func() {
				buf := make([]byte, 4096)
				for {
					if _, err := conn.Read(buf); err != nil {
						return
					}
				}
			}()
		}
	}()

	conn, err := n.Dial("stalled")
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(conn)
	defer c.Close()
	c.SetIOTimeout(50 * time.Millisecond)

	start := time.Now()
	_, err = c.Call(context.Background(), 1, []byte("ping"))
	if !errors.Is(err, ErrCallTimeout) {
		t.Fatalf("err = %v, want ErrCallTimeout", err)
	}
	if !TransportFailure(err) {
		t.Errorf("ErrCallTimeout not classified as transport failure")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("call took %v, deadline did not bound it", elapsed)
	}
}

// TestCallTimeoutWriteStall covers the other half of the hang: a peer
// that stops *reading*, so the frame write itself blocks (net.Pipe has
// no buffer, which makes this easy to provoke).
func TestCallTimeoutWriteStall(t *testing.T) {
	n := NewInprocNetwork()
	lis, err := n.Listen("deaf")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go func() {
		for {
			if _, err := lis.Accept(); err != nil {
				return // accepted conn is held open but never read
			}
		}
	}()

	conn, err := n.Dial("deaf")
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(conn)
	defer c.Close()
	c.SetIOTimeout(50 * time.Millisecond)

	_, err = c.Call(context.Background(), 1, []byte("ping"))
	if !errors.Is(err, ErrCallTimeout) {
		t.Fatalf("err = %v, want ErrCallTimeout", err)
	}
}

// TestNoTimeoutExemptsCall: a WaitPublished-style call marked with
// NoTimeout must survive a server that answers slower than the I/O
// deadline.
func TestNoTimeoutExemptsCall(t *testing.T) {
	mux := NewMux()
	mux.Handle(1, func(ctx context.Context, p []byte) ([]byte, error) {
		time.Sleep(150 * time.Millisecond)
		return []byte("late"), nil
	})
	n, addr, _ := startServer(t, mux)
	conn, err := n.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(conn)
	defer c.Close()
	c.SetIOTimeout(50 * time.Millisecond)

	resp, err := c.Call(NoTimeout(context.Background()), 1, nil)
	if err != nil {
		t.Fatalf("NoTimeout call failed: %v", err)
	}
	if string(resp) != "late" {
		t.Errorf("resp = %q", resp)
	}
}

// TestContextDeadlineOverridesIOTimeout: an explicit caller deadline
// suppresses the response timer (the caller knows how long it wants to
// wait), and its expiry surfaces as ctx.Err, not ErrCallTimeout.
func TestContextDeadlineOverridesIOTimeout(t *testing.T) {
	mux := NewMux()
	mux.Handle(1, func(ctx context.Context, p []byte) ([]byte, error) {
		time.Sleep(100 * time.Millisecond)
		return []byte("ok"), nil
	})
	n, addr, _ := startServer(t, mux)
	conn, _ := n.Dial(addr)
	c := NewClient(conn)
	defer c.Close()
	c.SetIOTimeout(20 * time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	if _, err := c.Call(ctx, 1, nil); err != nil {
		t.Fatalf("call with generous ctx deadline failed: %v", err)
	}

	ctx2, cancel2 := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel2()
	_, err := c.Call(ctx2, 1, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if TransportFailure(err) {
		t.Errorf("ctx deadline classified as transport failure; retries would loop on a caller that gave up")
	}
}

func TestPoolSetCallTimeout(t *testing.T) {
	n := NewInprocNetwork()
	lis, err := n.Listen("stalled")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				buf := make([]byte, 4096)
				for {
					if _, err := c.Read(buf); err != nil {
						return
					}
				}
			}(conn)
		}
	}()

	p := NewPool(n.Dial)
	defer p.Close()

	// Applied to a client pooled before the setting...
	before, err := p.Get("stalled")
	if err != nil {
		t.Fatal(err)
	}
	p.SetCallTimeout(50 * time.Millisecond)
	if _, err := before.Call(context.Background(), 1, nil); !errors.Is(err, ErrCallTimeout) {
		t.Fatalf("existing client: err = %v, want ErrCallTimeout", err)
	}

	// ...and to clients dialed after it (the failed call above broke
	// the pooled client, so this Get redials).
	after, err := p.Get("stalled")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := after.Call(context.Background(), 1, nil); !errors.Is(err, ErrCallTimeout) {
		t.Fatalf("fresh client: err = %v, want ErrCallTimeout", err)
	}
}

func TestRetryTransientFailure(t *testing.T) {
	var calls atomic.Int32
	err := Retry(context.Background(), Backoff{Attempts: 5, Base: time.Millisecond}, func(ctx context.Context) error {
		if calls.Add(1) < 3 {
			return ErrConnBroken
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Retry = %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("fn called %d times, want 3", got)
	}
}

func TestRetryStopsOnAppError(t *testing.T) {
	appErr := CodedError(7, "application said no")
	var calls atomic.Int32
	err := Retry(context.Background(), Backoff{Attempts: 5, Base: time.Millisecond}, func(ctx context.Context) error {
		calls.Add(1)
		return appErr
	})
	if CodeOf(err) != 7 {
		t.Fatalf("Retry = %v, want coded app error", err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("fn called %d times, want 1 (app errors must not be retried)", got)
	}
}

func TestRetryExhaustsSchedule(t *testing.T) {
	var calls atomic.Int32
	err := Retry(context.Background(), Backoff{Attempts: 3, Base: time.Millisecond}, func(ctx context.Context) error {
		calls.Add(1)
		return ErrConnBroken
	})
	if !errors.Is(err, ErrConnBroken) {
		t.Fatalf("Retry = %v, want ErrConnBroken", err)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("fn called %d times, want 3", got)
	}
}

func TestRetryRespectsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int32
	done := make(chan error, 1)
	go func() {
		done <- Retry(ctx, Backoff{Attempts: 100, Base: 100 * time.Millisecond}, func(ctx context.Context) error {
			calls.Add(1)
			return ErrConnBroken
		})
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		// The last observed transport failure is more useful to the
		// caller than "context canceled".
		if !errors.Is(err, ErrConnBroken) {
			t.Fatalf("Retry = %v, want ErrConnBroken", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Retry did not return after ctx cancel")
	}
	if got := calls.Load(); got > 3 {
		t.Errorf("fn called %d times after early cancel", got)
	}
}

// TestRetryBackoffSchedule pins the retry cadence: each inter-attempt
// gap is the exponential step with half-range jitter — uniform in
// [d/2, d] where d doubles from Base and is capped at Max. The lower
// bounds are hard (sleeping less would thundering-herd a restarted
// service); the upper bounds get scheduling slack.
func TestRetryBackoffSchedule(t *testing.T) {
	const (
		base  = 40 * time.Millisecond
		max   = 80 * time.Millisecond
		slack = 150 * time.Millisecond // goroutine scheduling latency
	)
	var stamps []time.Time
	err := Retry(context.Background(), Backoff{Attempts: 4, Base: base, Max: max}, func(ctx context.Context) error {
		stamps = append(stamps, time.Now())
		return ErrConnBroken
	})
	if !errors.Is(err, ErrConnBroken) {
		t.Fatalf("Retry = %v", err)
	}
	if len(stamps) != 4 {
		t.Fatalf("fn called %d times, want 4", len(stamps))
	}
	// Delay before retry i: d doubles 40ms -> 80ms -> (capped) 80ms,
	// and the jitter draws uniformly from [d/2, d].
	wantMin := []time.Duration{base / 2, max / 2, max / 2}
	wantMax := []time.Duration{base, max, max}
	for i := 1; i < len(stamps); i++ {
		gap := stamps[i].Sub(stamps[i-1])
		if gap < wantMin[i-1] {
			t.Errorf("gap %d = %v, below jitter floor %v", i, gap, wantMin[i-1])
		}
		if gap > wantMax[i-1]+slack {
			t.Errorf("gap %d = %v, above jittered delay %v (+%v slack)", i, gap, wantMax[i-1], slack)
		}
	}
}

// TestRetryJitterSpreads: the whole point of jitter is decorrelating
// clients, so repeated schedules must not all land on the same delay.
// With uniform draws from [d/2, d] (a 20ms span here), 12 runs
// producing identical first gaps to within a millisecond would mean
// the jitter term is gone.
func TestRetryJitterSpreads(t *testing.T) {
	const base = 40 * time.Millisecond
	var gaps []time.Duration
	for run := 0; run < 12; run++ {
		var stamps []time.Time
		Retry(context.Background(), Backoff{Attempts: 2, Base: base}, func(ctx context.Context) error {
			stamps = append(stamps, time.Now())
			return ErrConnBroken
		})
		gaps = append(gaps, stamps[1].Sub(stamps[0]))
	}
	lo, hi := gaps[0], gaps[0]
	for _, g := range gaps[1:] {
		if g < lo {
			lo = g
		}
		if g > hi {
			hi = g
		}
	}
	if hi-lo < time.Millisecond {
		t.Errorf("12 first-retry gaps all within %v of each other (lo=%v hi=%v); jitter is not spreading", hi-lo, lo, hi)
	}
}

func TestRetryZeroValueSingleAttempt(t *testing.T) {
	var calls atomic.Int32
	err := Retry(context.Background(), Backoff{}, func(ctx context.Context) error {
		calls.Add(1)
		return ErrConnBroken
	})
	if !errors.Is(err, ErrConnBroken) {
		t.Fatalf("Retry = %v", err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("fn called %d times, want 1 for zero-value Backoff", got)
	}
}
