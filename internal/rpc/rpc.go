// Package rpc is the minimal remote-procedure-call layer every daemon
// in the reproduction is built on: pipelined request/response over a
// single connection, numeric method dispatch, and pluggable transports
// (real TCP for deployments, an in-process network for tests and
// embedded clusters).
//
// Frame layout (inside a wire frame):
//
//	u64 request id | u16 method | u8 flags | u16 status | [trace] | payload...
//
// flags bit 0 marks a response. status is non-zero on a response whose
// payload is an error message; services map status codes back to
// sentinel errors. flags bit 1, on a request, announces a 25-byte
// trace context between the status and the payload: u64 trace-id hi,
// u64 trace-id lo, u64 parent span id, u8 trace flags (bit 0 =
// sampled). Requests without the bit carry no trace bytes at all, so
// untraced frames are byte-identical to the pre-trace protocol and old
// peers interoperate.
package rpc

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"blobseer/internal/trace"
	"blobseer/internal/wire"
)

const (
	flagResponse = 1
	// flagTrace marks a request frame carrying a trace context.
	flagTrace = 2
	// traceSampled is bit 0 of the trace-flags byte.
	traceSampled = 1
	// traceHdrLen is the size of the optional trace context block.
	traceHdrLen = 25
)

// StatusOK marks a successful response.
const StatusOK uint16 = 0

// StatusError is the generic failure status used when a handler returns
// an error that carries no specific code.
const StatusError uint16 = 1

// statusTransport marks a locally-generated failure: the connection
// died while a call was in flight.
const statusTransport uint16 = 0xffff

// ErrConnBroken wraps transport-level call failures so callers can
// distinguish them from remote application errors and retry safely.
var ErrConnBroken = errors.New("rpc: connection broken")

// ErrCallTimeout wraps calls aborted by the transport's own per-call
// I/O deadline: the peer accepted the connection but produced no
// response in time — the signature of a hung or wedged service. It is
// distinct from the caller's ctx expiring (the caller gave up) and is
// classified as a TransportFailure, so Retry treats a hung peer exactly
// like a dead one.
var ErrCallTimeout = errors.New("rpc: call timed out")

// noTimeoutKey marks a context as exempt from the client's per-call
// I/O deadline.
type noTimeoutKey struct{}

// NoTimeout returns a context whose calls bypass the transport's
// per-call I/O deadline. Intentionally long-blocking RPCs (the version
// manager's WaitPublished) opt out this way while everything else on
// the same connection stays bounded.
func NoTimeout(ctx context.Context) context.Context {
	return context.WithValue(ctx, noTimeoutKey{}, true)
}

func hasNoTimeout(ctx context.Context) bool {
	v, _ := ctx.Value(noTimeoutKey{}).(bool)
	return v
}

// RemoteError is an error returned by the remote handler.
type RemoteError struct {
	Code uint16
	Msg  string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("rpc: remote error (code %d): %s", e.Code, e.Msg)
}

// Coder is implemented by errors that carry a protocol status code so
// they survive the wire round-trip as something machine-checkable.
type Coder interface{ RPCCode() uint16 }

// CodedError creates an error carrying an explicit status code.
func CodedError(code uint16, msg string) error { return &codedError{code: code, msg: msg} }

type codedError struct {
	code uint16
	msg  string
}

func (e *codedError) Error() string   { return e.msg }
func (e *codedError) RPCCode() uint16 { return e.code }

// TransportFailure reports whether err means the remote endpoint could
// not be reached or the connection died before a response arrived —
// the signal that a provider may actually be down. Application-level
// errors (RemoteError, coded errors) mean the remote answered and is
// alive; context cancellation means the *caller* gave up. Neither is
// evidence of a dead endpoint, so failure-feedback loops (core
// reporting MarkDead to the provider manager) key off this predicate.
func TransportFailure(err error) bool {
	if err == nil {
		return false
	}
	var re *RemoteError
	if errors.As(err, &re) {
		return false
	}
	var c Coder
	if errors.As(err, &c) {
		return false
	}
	// The transport's own per-call deadline firing means the *peer* went
	// silent, not that the caller gave up: retryable.
	if errors.Is(err, ErrCallTimeout) {
		return true
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	return true
}

// CodeOf extracts the status code from err (StatusError if none).
func CodeOf(err error) uint16 {
	var c Coder
	if errors.As(err, &c) {
		return c.RPCCode()
	}
	var re *RemoteError
	if errors.As(err, &re) {
		return re.Code
	}
	return StatusError
}

// HandlerFunc processes one request payload and returns a response
// payload or an error. ctx carries the request's trace context (if the
// frame was traced), so handlers that fan out — a provider forwarding
// down a replica chain, the namespace manager calling the version
// manager — propagate causality by passing ctx to their own calls.
type HandlerFunc func(ctx context.Context, payload []byte) ([]byte, error)

// Mux dispatches requests by method number. The zero value is usable.
type Mux struct {
	mu       sync.RWMutex
	handlers map[uint16]HandlerFunc
}

// NewMux returns an empty Mux.
func NewMux() *Mux { return &Mux{handlers: make(map[uint16]HandlerFunc)} }

// Handle registers fn for method m, replacing any previous handler.
func (x *Mux) Handle(m uint16, fn HandlerFunc) {
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.handlers == nil {
		x.handlers = make(map[uint16]HandlerFunc)
	}
	x.handlers[m] = fn
}

func (x *Mux) lookup(m uint16) (HandlerFunc, bool) {
	x.mu.RLock()
	defer x.mu.RUnlock()
	fn, ok := x.handlers[m]
	return fn, ok
}

// Server serves RPC requests on accepted connections. Each request runs
// in its own goroutine, so handlers may block (the version manager's
// wait-for-publication call relies on this).
type Server struct {
	mux *Mux

	tracer *trace.Tracer
	opName func(uint16) string

	mu     sync.Mutex
	lis    net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer returns a server dispatching through mux.
func NewServer(mux *Mux) *Server {
	return &Server{mux: mux, conns: make(map[net.Conn]struct{})}
}

// SetTrace attaches a tracer: every dispatched request records one
// server-side span, named via opName (each service package exports a
// MethodName for this). Must be called before Serve.
func (s *Server) SetTrace(t *trace.Tracer, opName func(uint16) string) {
	s.tracer = t
	s.opName = opName
}

// Serve accepts connections from lis until the server is closed. It
// always returns a non-nil error; after Close the error is net.ErrClosed.
func (s *Server) Serve(lis net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		lis.Close()
		return net.ErrClosed
	}
	s.lis = lis
	s.mu.Unlock()
	for {
		conn, err := lis.Accept()
		if err != nil {
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return net.ErrClosed
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

// Close stops the listener and all connections, waiting for in-flight
// handlers to finish writing.
func (s *Server) Close() error {
	s.Sever()
	s.wg.Wait()
	return nil
}

// Sever closes the listener and every active connection WITHOUT
// waiting for in-flight handlers — the abrupt first half of Close,
// exposed for crash injection: a handler blocked server-side (a
// publication waiter, say) must not be able to stall a "crash". The
// caller may unblock such handlers after severing and then Close to
// drain; their response writes fail harmlessly on the dead conns.
func (s *Server) Sever() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	lis := s.lis
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	if lis != nil {
		lis.Close()
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.wg.Done()
	}()
	var wmu sync.Mutex // serializes response frames on the shared conn
	var hwg sync.WaitGroup
	defer hwg.Wait()
	for {
		frame, err := wire.ReadFrame(conn, 0)
		if err != nil {
			return
		}
		r := wire.NewReader(frame)
		id := r.U64()
		method := r.U16()
		flags := r.U8()
		_ = r.U16() // status unused on requests
		var tc trace.Context
		if flags&flagTrace != 0 {
			hi, lo := r.U64(), r.U64()
			span := r.U64()
			if tf := r.U8(); tf&traceSampled != 0 {
				tc = trace.Context{Trace: trace.ID{Hi: hi, Lo: lo}, Span: trace.SpanID(span)}
			}
		}
		if r.Err() != nil || flags&flagResponse != 0 {
			return // protocol violation; drop the connection
		}
		payload := frame[len(frame)-r.Remaining():]
		hwg.Add(1)
		go func() {
			defer hwg.Done()
			ctx := context.Background()
			if !tc.Trace.IsZero() {
				ctx = trace.NewContext(ctx, tc)
			}
			resp, status := s.dispatch(ctx, method, payload)
			buf := wire.NewBuffer(13 + len(resp))
			buf.U64(id)
			buf.U16(method)
			buf.U8(flagResponse)
			buf.U16(status)
			out := append(buf.Bytes(), resp...)
			wmu.Lock()
			err := wire.WriteFrame(conn, out)
			wmu.Unlock()
			if err != nil {
				conn.Close()
			}
		}()
	}
}

func (s *Server) dispatch(ctx context.Context, method uint16, payload []byte) ([]byte, uint16) {
	fn, ok := s.mux.lookup(method)
	if !ok {
		return []byte(fmt.Sprintf("unknown method %d", method)), StatusError
	}
	var sp trace.Active
	if s.tracer != nil {
		name := "m" + strconv.Itoa(int(method))
		if s.opName != nil {
			name = s.opName(method)
		}
		ctx, sp = s.tracer.Start(ctx, name)
	}
	resp, err := fn(ctx, payload)
	if err != nil {
		code := CodeOf(err)
		sp.FinishCode(code, err.Error())
		return []byte(err.Error()), code
	}
	sp.FinishCode(StatusOK, "")
	return resp, StatusOK
}

// Client is a pipelined RPC client over one connection. It is safe for
// concurrent use; concurrent Calls share the connection.
type Client struct {
	conn net.Conn

	nextID  atomic.Uint64
	timeout atomic.Int64 // per-call I/O deadline in ns (0 = none)

	mu      sync.Mutex
	pending map[uint64]chan callResult
	err     error // set once the read loop dies

	wmu sync.Mutex // serializes request frames
}

// SetIOTimeout bounds every subsequent Call: frame writes get a write
// deadline, and a call whose response does not arrive within d fails
// with ErrCallTimeout. Calls whose ctx carries its own deadline, or
// which opted out via NoTimeout, are exempt from the response bound
// (the write deadline always applies). d <= 0 disables.
func (c *Client) SetIOTimeout(d time.Duration) { c.timeout.Store(int64(d)) }

type callResult struct {
	payload []byte
	status  uint16
}

// NewClient wraps an established connection.
func NewClient(conn net.Conn) *Client {
	c := &Client{conn: conn, pending: make(map[uint64]chan callResult)}
	go c.readLoop()
	return c
}

// Call sends a request and waits for its response or ctx cancellation.
func (c *Client) Call(ctx context.Context, method uint16, payload []byte) ([]byte, error) {
	id := c.nextID.Add(1)
	ch := make(chan callResult, 1)

	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	c.pending[id] = ch
	c.mu.Unlock()

	// A trace context on ctx rides the frame so the server joins the
	// caller's trace; untraced calls emit exactly the legacy header.
	tc, traced := trace.FromContext(ctx)
	traced = traced && !tc.Trace.IsZero()
	hdr := 13
	var flags uint8
	if traced {
		hdr += traceHdrLen
		flags |= flagTrace
	}
	buf := wire.NewBuffer(hdr + len(payload))
	buf.U64(id)
	buf.U16(method)
	buf.U8(flags)
	buf.U16(0)
	if traced {
		buf.U64(tc.Trace.Hi)
		buf.U64(tc.Trace.Lo)
		buf.U64(uint64(tc.Span))
		buf.U8(traceSampled)
	}
	frame := append(buf.Bytes(), payload...)

	d := time.Duration(c.timeout.Load())
	c.wmu.Lock()
	if d > 0 {
		// A peer that stopped draining its socket must not wedge the
		// sender forever: bound the frame write.
		c.conn.SetWriteDeadline(time.Now().Add(d))
	}
	err := wire.WriteFrame(c.conn, frame)
	c.wmu.Unlock()
	if err != nil {
		c.forget(id)
		// A failed frame write may have left a partial frame on the
		// wire; the connection is unusable for framing either way.
		c.conn.Close()
		if errors.Is(err, os.ErrDeadlineExceeded) {
			return nil, fmt.Errorf("%w: frame write stalled for %v", ErrCallTimeout, d)
		}
		return nil, fmt.Errorf("rpc: send: %w", err)
	}

	// The response bound: skipped when the caller manages its own
	// deadline or explicitly opted out (long-blocking waits).
	var ioTimer <-chan time.Time
	if d > 0 && !hasNoTimeout(ctx) {
		if _, hasDeadline := ctx.Deadline(); !hasDeadline {
			t := time.NewTimer(d)
			defer t.Stop()
			ioTimer = t.C
		}
	}

	select {
	case res := <-ch:
		switch res.status {
		case StatusOK:
			return res.payload, nil
		case statusTransport:
			return nil, fmt.Errorf("%w: %s", ErrConnBroken, res.payload)
		default:
			return nil, &RemoteError{Code: res.status, Msg: string(res.payload)}
		}
	case <-ioTimer:
		c.forget(id)
		return nil, fmt.Errorf("%w: no response within %v", ErrCallTimeout, d)
	case <-ctx.Done():
		c.forget(id)
		return nil, ctx.Err()
	}
}

func (c *Client) forget(id uint64) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
}

// Close tears down the connection; in-flight calls fail.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) readLoop() {
	var err error
	for {
		var frame []byte
		frame, err = wire.ReadFrame(c.conn, 0)
		if err != nil {
			break
		}
		r := wire.NewReader(frame)
		id := r.U64()
		_ = r.U16() // method echo
		flags := r.U8()
		status := r.U16()
		if r.Err() != nil || flags&flagResponse == 0 {
			err = errors.New("rpc: protocol violation in response")
			break
		}
		payload := frame[len(frame)-r.Remaining():]
		c.mu.Lock()
		ch, ok := c.pending[id]
		delete(c.pending, id)
		c.mu.Unlock()
		if ok {
			ch <- callResult{payload: payload, status: status}
		}
	}
	if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
		err = fmt.Errorf("rpc: connection closed: %w", err)
	}
	c.mu.Lock()
	c.err = err
	for id, ch := range c.pending {
		delete(c.pending, id)
		ch <- callResult{payload: []byte(err.Error()), status: statusTransport}
	}
	c.mu.Unlock()
	c.conn.Close()
}
