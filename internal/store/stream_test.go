package store

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

func TestStreamWriterOutOfOrderFrames(t *testing.T) {
	for name, s := range engines(t) {
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			want := []byte("0123456789abcdef")
			w, err := s.PutWriter("k")
			if err != nil {
				t.Fatal(err)
			}
			// Frames land out of order, as pipelined RPCs may.
			for _, fr := range []struct{ off, end int }{{8, 16}, {0, 4}, {4, 8}} {
				if err := w.WriteAt(want[fr.off:fr.end], int64(fr.off)); err != nil {
					t.Fatal(err)
				}
			}
			// Invisible until commit.
			if s.Has("k") {
				t.Fatal("uncommitted stream visible")
			}
			if err := w.Commit(); err != nil {
				t.Fatal(err)
			}
			got, err := s.Get("k")
			if err != nil || !bytes.Equal(got, want) {
				t.Fatalf("Get = %q, %v", got, err)
			}
			// Writer is spent.
			if err := w.WriteAt([]byte("x"), 0); err == nil {
				t.Error("write after commit succeeded")
			}
			if err := w.Commit(); err == nil {
				t.Error("double commit succeeded")
			}
		})
	}
}

func TestStreamWriterAbort(t *testing.T) {
	for name, s := range engines(t) {
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			w, err := s.PutWriter("k")
			if err != nil {
				t.Fatal(err)
			}
			if err := w.WriteAt([]byte("partial"), 0); err != nil {
				t.Fatal(err)
			}
			if err := w.Abort(); err != nil {
				t.Fatal(err)
			}
			if s.Has("k") {
				t.Error("aborted stream visible")
			}
			if st := s.Stats(); st.Items != 0 || st.Bytes != 0 {
				t.Errorf("aborted stream counted in stats: %+v", st)
			}
			if err := w.WriteAt([]byte("x"), 0); err == nil {
				t.Error("write after abort succeeded")
			}
			if err := w.Abort(); err != nil {
				t.Errorf("double abort errored: %v", err)
			}
		})
	}
}

func TestStreamWriterReplacesAndCoexists(t *testing.T) {
	for name, s := range engines(t) {
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			if err := s.Put("k", []byte("old")); err != nil {
				t.Fatal(err)
			}
			// Two concurrent writers for the same key must not trample
			// each other's frames; last commit wins.
			w1, err := s.PutWriter("k")
			if err != nil {
				t.Fatal(err)
			}
			w2, err := s.PutWriter("k")
			if err != nil {
				t.Fatal(err)
			}
			if err := w1.WriteAt([]byte("first"), 0); err != nil {
				t.Fatal(err)
			}
			if err := w2.WriteAt([]byte("second"), 0); err != nil {
				t.Fatal(err)
			}
			if err := w1.Commit(); err != nil {
				t.Fatal(err)
			}
			if err := w2.Commit(); err != nil {
				t.Fatal(err)
			}
			got, err := s.Get("k")
			if err != nil || string(got) != "second" {
				t.Fatalf("Get = %q, %v", got, err)
			}
			if st := s.Stats(); st.Items != 1 {
				t.Errorf("items = %d, want 1", st.Items)
			}
		})
	}
}

func TestStreamWriterUncommittedInvisibleToPrefixOps(t *testing.T) {
	for name, s := range engines(t) {
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			w, err := s.PutWriter("b1/aa/0")
			if err != nil {
				t.Fatal(err)
			}
			if err := w.WriteAt([]byte("inflight"), 0); err != nil {
				t.Fatal(err)
			}
			// An in-flight stream is not an item: GC by prefix must not
			// count or disturb it.
			n, err := s.DeletePrefix("b1/aa/")
			if err != nil || n != 0 {
				t.Fatalf("DeletePrefix = %d, %v", n, err)
			}
			if err := w.Commit(); err != nil {
				t.Fatal(err)
			}
			if !s.Has("b1/aa/0") {
				t.Error("commit after unrelated DeletePrefix lost the value")
			}
		})
	}
}

func TestFSStoreSweepsOrphanedTempFilesOnOpen(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFSStore(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("kept", []byte("v")); err != nil {
		t.Fatal(err)
	}
	w, err := s.PutWriter("orphan")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteAt([]byte("partial"), 0); err != nil {
		t.Fatal(err)
	}
	s.Close() // "crash": the writer never commits or aborts

	s2, err := NewFSStore(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if !s2.Has("kept") {
		t.Error("committed value lost across reopen")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Errorf("orphaned temp file %s survived reopen", e.Name())
		}
	}
}
