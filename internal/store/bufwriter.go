package store

import (
	"errors"
	"sync"
)

// bufWriter is the shared frame-assembly engine behind the backends
// that buffer a streaming block before installing it in one shot (mem,
// http, tiered write-back). Frames land at arbitrary offsets; Commit
// hands the assembled buffer to the backend's commit callback, which
// takes ownership (no copy).
type bufWriter struct {
	mu     sync.Mutex
	buf    []byte
	done   bool
	commit func(buf []byte) error
	abort  func()
}

func newBufWriter(commit func(buf []byte) error) *bufWriter {
	return &bufWriter{commit: commit}
}

func (w *bufWriter) WriteAt(p []byte, off int64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.done {
		return errors.New("store: write on finished writer")
	}
	if off < 0 {
		return errors.New("store: negative write offset")
	}
	if end := int(off) + len(p); end > len(w.buf) {
		if end > cap(w.buf) {
			// Grow geometrically: frames mostly arrive in ascending
			// order, so linear growth would copy the buffer once per
			// frame — quadratic in the block size.
			newCap := 2 * cap(w.buf)
			if newCap < end {
				newCap = end
			}
			grown := make([]byte, end, newCap)
			copy(grown, w.buf)
			w.buf = grown
		} else {
			w.buf = w.buf[:end]
		}
	}
	copy(w.buf[off:], p)
	return nil
}

func (w *bufWriter) Commit() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.done {
		return errors.New("store: commit on finished writer")
	}
	w.done = true
	buf := w.buf
	w.buf = nil
	return w.commit(buf)
}

func (w *bufWriter) Abort() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.done = true
	w.buf = nil
	if w.abort != nil {
		w.abort()
	}
	return nil
}
