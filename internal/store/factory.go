package store

import (
	"fmt"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Opener constructs a Store from a parsed URL. The query carries
// backend options; openers must ignore parameters they do not know so
// shared knobs can be added without breaking registered backends.
type Opener func(u *url.URL) (Store, error)

var (
	registryMu sync.RWMutex
	registry   = map[string]Opener{}
)

// Register installs an opener for a URL scheme, replacing any previous
// registration. The built-in schemes (mem, file, http, https, tiered)
// are registered at init; deployments can add their own backends
// (an S3 SDK, a dedup engine, ...) without touching this package.
func Register(scheme string, open Opener) {
	registryMu.Lock()
	defer registryMu.Unlock()
	registry[strings.ToLower(scheme)] = open
}

// Open constructs a store from a backend URL:
//
//	mem://                                sharded in-memory store
//	file:///var/blocks?sync=1             file-backed store (sync=1 fsyncs writes
//	                                      and directory renames)
//	http://peer:9000/base                 remote HTTP object store (S3-flavored
//	                                      GET/PUT/DELETE/range/list; see httpstore.go)
//	tiered://?hot=mem://&cold=file:///c   hot/cold tiered engine; see tiered.go
//	                                      for the policy knobs (max-hot-bytes,
//	                                      demote-after, demote-every, write-back)
//
// Nested URLs inside tiered:// only need escaping when they carry a
// query of their own (url.QueryEscape the whole nested URL then).
func Open(rawURL string) (Store, error) {
	u, err := url.Parse(rawURL)
	if err != nil {
		return nil, fmt.Errorf("store: open %q: %w", rawURL, err)
	}
	if u.Scheme == "" {
		return nil, fmt.Errorf("store: open %q: no scheme (want mem://, file://, http://, tiered://)", rawURL)
	}
	registryMu.RLock()
	open, ok := registry[strings.ToLower(u.Scheme)]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("store: open %q: unknown backend scheme %q", rawURL, u.Scheme)
	}
	st, err := open(u)
	if err != nil {
		return nil, fmt.Errorf("store: open %q: %w", rawURL, err)
	}
	return st, nil
}

// OpenMember opens the store URL for member i of a fleet: every "{n}"
// in the URL is replaced by the member index first, so one template
// like "file:///var/blobseer/provider-{n}" (or a tiered URL nesting
// it) configures a whole deployment without colliding directories.
func OpenMember(rawURL string, i int) (Store, error) {
	return Open(strings.ReplaceAll(rawURL, "{n}", strconv.Itoa(i)))
}

func init() {
	Register("mem", func(u *url.URL) (Store, error) {
		return NewMemStore(), nil
	})
	Register("file", openFile)
	Register("http", openHTTP)
	Register("https", openHTTP)
	Register("tiered", openTiered)
}

// openFile maps file URLs onto NewFSStore. Both absolute
// ("file:///var/blocks") and relative ("file:data" or "file://data/x",
// where the host part is read as the first path element) forms work.
func openFile(u *url.URL) (Store, error) {
	path := u.Path
	switch {
	case u.Opaque != "":
		path = u.Opaque
	case u.Host != "":
		path = u.Host + u.Path
	}
	if path == "" {
		return nil, fmt.Errorf("file store: empty path")
	}
	return NewFSStore(path, boolParam(u.Query(), "sync"))
}

func openHTTP(u *url.URL) (Store, error) {
	base := *u
	base.RawQuery = ""
	base.Fragment = ""
	return NewHTTPStore(base.String()), nil
}

func openTiered(u *url.URL) (Store, error) {
	q := u.Query()
	hotURL, coldURL := q.Get("hot"), q.Get("cold")
	if hotURL == "" || coldURL == "" {
		return nil, fmt.Errorf("tiered store: want hot= and cold= backend URLs")
	}
	hot, err := Open(hotURL)
	if err != nil {
		return nil, fmt.Errorf("tiered store: hot tier: %w", err)
	}
	cold, err := Open(coldURL)
	if err != nil {
		hot.Close()
		return nil, fmt.Errorf("tiered store: cold tier: %w", err)
	}
	opts := TierOptions{WriteBack: boolParam(q, "write-back")}
	if opts.MaxHotBytes, err = sizeParam(q, "max-hot-bytes"); err != nil {
		hot.Close()
		cold.Close()
		return nil, fmt.Errorf("tiered store: %w", err)
	}
	if opts.DemoteAfter, err = durParam(q, "demote-after"); err == nil {
		opts.Interval, err = durParam(q, "demote-every")
	}
	if err != nil {
		hot.Close()
		cold.Close()
		return nil, fmt.Errorf("tiered store: %w", err)
	}
	return NewTiered(hot, cold, opts), nil
}

// boolParam reads a boolean query option: absent or "0"/"false" is
// false, anything else ("1", "true", bare "sync=") is true.
func boolParam(q url.Values, name string) bool {
	if !q.Has(name) {
		return false
	}
	v := strings.ToLower(q.Get(name))
	return v != "0" && v != "false"
}

func sizeParam(q url.Values, name string) (int64, error) {
	v := q.Get(name)
	if v == "" {
		return 0, nil
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad %s %q (want a byte count)", name, v)
	}
	return n, nil
}

func durParam(q url.Values, name string) (time.Duration, error) {
	v := q.Get(name)
	if v == "" {
		return 0, nil
	}
	d, err := time.ParseDuration(v)
	if err != nil || d < 0 {
		return 0, fmt.Errorf("bad %s %q (want a duration like 30s)", name, v)
	}
	return d, nil
}
