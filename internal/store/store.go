// Package store provides the storage engines behind data providers and
// metadata providers. Backends are selected by URL through Open (see
// factory.go): a sharded in-memory store ("mem://", the default for
// experiments, mirroring the paper's RAM-resident providers), a
// file-backed store for durable deployments ("file:///dir?sync=1"), a
// generic HTTP object store speaking an S3-flavored GET/PUT/DELETE/
// range/list protocol ("http://host:port/base"), and a composing
// hot/cold tiered engine ("tiered://?hot=...&cold=...") that demotes
// idle blocks to the slow backend and promotes them back on read.
// Every backend implements the full Store contract, so providers, the
// repair plane and GC run unchanged on any of them.
package store

import "errors"

// ErrNotFound is returned when a key is absent.
var ErrNotFound = errors.New("store: key not found")

// TierStat is one storage tier's occupancy inside a composite store.
type TierStat struct {
	Name  string // "hot" / "cold"
	Items int64
	Bytes int64
}

// Stats summarizes a store's contents. Items and Bytes count the
// logical contents (each key once, however many tiers hold a copy);
// Tiers breaks physical occupancy down per tier for composite engines
// (empty for flat backends).
type Stats struct {
	Items int64
	Bytes int64
	Tiers []TierStat
}

// BlockWriter assembles one value from frames that may arrive in any
// order (the streaming data plane delivers a block's chunks as
// independent, pipelined RPCs). The value stays invisible to readers
// until Commit; Abort discards everything written so far. A writer is
// safe for concurrent use with other store operations, but individual
// WriteAt calls are serialized by the caller per writer.
type BlockWriter interface {
	// WriteAt stores p at byte offset off within the value.
	WriteAt(p []byte, off int64) error
	// Commit publishes the assembled value under the writer's key,
	// replacing any previous value. The writer is spent afterwards.
	Commit() error
	// Abort discards the partial value. Safe after Commit (no-op).
	Abort() error
}

// Store is a flat key-value blob store with sub-range reads. Keys are
// opaque strings (block keys and metadata node identifiers serialize
// into them). Implementations are safe for concurrent use.
type Store interface {
	// Put stores val under key, replacing any previous value.
	Put(key string, val []byte) error
	// PutWriter opens a streaming writer for key: frames land via
	// WriteAt and the value becomes visible atomically on Commit.
	PutWriter(key string) (BlockWriter, error)
	// Get returns the full value (a copy) or ErrNotFound.
	Get(key string) ([]byte, error)
	// GetRange returns length bytes starting at off within the value.
	// Reads beyond the stored length are truncated; off past the end
	// yields an empty slice.
	GetRange(key string, off, length int64) ([]byte, error)
	// Has reports whether key exists.
	Has(key string) bool
	// Delete removes key (no error if absent).
	Delete(key string) error
	// DeletePrefix removes all keys with the given prefix, returning
	// the number removed. Used by write-abort garbage collection.
	DeletePrefix(prefix string) (int, error)
	// Keys enumerates the stored keys with the given prefix ("" lists
	// everything), in no particular order. In-flight streaming writes
	// are invisible until Commit. This is the inventory primitive behind
	// provider block reports: the repair plane asks providers what they
	// actually hold rather than trusting allocation-time estimates.
	Keys(prefix string) ([]string, error)
	// Stats returns item/byte counts.
	Stats() Stats
	// Close releases resources.
	Close() error
}

func clampRange(valLen, off, length int64) (int64, int64) {
	if off < 0 {
		off = 0
	}
	if off >= valLen {
		return valLen, 0
	}
	if length < 0 || off+length > valLen {
		length = valLen - off
	}
	return off, length
}
