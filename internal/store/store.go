// Package store provides the storage engines behind data providers and
// metadata providers: a sharded in-memory store (the default for
// experiments, mirroring the paper's RAM-resident providers) and a
// file-backed store for durable deployments.
package store

import "errors"

// ErrNotFound is returned when a key is absent.
var ErrNotFound = errors.New("store: key not found")

// Stats summarizes a store's contents.
type Stats struct {
	Items int64
	Bytes int64
}

// Store is a flat key-value blob store with sub-range reads. Keys are
// opaque strings (block keys and metadata node identifiers serialize
// into them). Implementations are safe for concurrent use.
type Store interface {
	// Put stores val under key, replacing any previous value.
	Put(key string, val []byte) error
	// Get returns the full value (a copy) or ErrNotFound.
	Get(key string) ([]byte, error)
	// GetRange returns length bytes starting at off within the value.
	// Reads beyond the stored length are truncated; off past the end
	// yields an empty slice.
	GetRange(key string, off, length int64) ([]byte, error)
	// Has reports whether key exists.
	Has(key string) bool
	// Delete removes key (no error if absent).
	Delete(key string) error
	// DeletePrefix removes all keys with the given prefix, returning
	// the number removed. Used by write-abort garbage collection.
	DeletePrefix(prefix string) (int, error)
	// Stats returns item/byte counts.
	Stats() Stats
	// Close releases resources.
	Close() error
}

func clampRange(valLen, off, length int64) (int64, int64) {
	if off < 0 {
		off = 0
	}
	if off >= valLen {
		return valLen, 0
	}
	if length < 0 || off+length > valLen {
		length = valLen - off
	}
	return off, length
}
