package store

import (
	"net/url"
	"path/filepath"
	"testing"
	"time"
)

func TestOpenSchemes(t *testing.T) {
	cases := []struct {
		url  string
		want string // concrete type name
	}{
		{"mem://", "*store.MemStore"},
		{"file://" + t.TempDir(), "*store.FSStore"},
		{"file://" + t.TempDir() + "?sync=1", "*store.FSStore"},
		{"http://127.0.0.1:1/base", "*store.HTTPStore"},
		{"https://127.0.0.1:1/base", "*store.HTTPStore"},
		{"tiered://?hot=mem://&cold=mem://", "*store.Tiered"},
	}
	for _, c := range cases {
		st, err := Open(c.url)
		if err != nil {
			t.Fatalf("Open(%q): %v", c.url, err)
		}
		switch c.want {
		case "*store.MemStore":
			_, ok := st.(*MemStore)
			if !ok {
				t.Fatalf("Open(%q) = %T", c.url, st)
			}
		case "*store.FSStore":
			_, ok := st.(*FSStore)
			if !ok {
				t.Fatalf("Open(%q) = %T", c.url, st)
			}
		case "*store.HTTPStore":
			_, ok := st.(*HTTPStore)
			if !ok {
				t.Fatalf("Open(%q) = %T", c.url, st)
			}
		case "*store.Tiered":
			_, ok := st.(*Tiered)
			if !ok {
				t.Fatalf("Open(%q) = %T", c.url, st)
			}
		}
		st.Close()
	}
}

func TestOpenErrors(t *testing.T) {
	bad := []string{
		"",
		"bogus://x",
		"tiered://",                      // missing hot= and cold=
		"tiered://?hot=mem://",           // missing cold=
		"tiered://?hot=x://&cold=mem://", // bad nested scheme
		"tiered://?hot=mem://&cold=mem://&max-hot-bytes=abc",
		"tiered://?hot=mem://&cold=mem://&demote-after=xyz",
	}
	for _, u := range bad {
		if st, err := Open(u); err == nil {
			st.Close()
			t.Fatalf("Open(%q) succeeded, want error", u)
		}
	}
}

func TestOpenFilePaths(t *testing.T) {
	dir := t.TempDir()
	abs := filepath.Join(dir, "blocks")
	st, err := Open("file://" + abs)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer st.Close()
	if err := st.Put("k", []byte("v")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	// A second store over the same directory sees the block.
	st2, err := Open("file://" + abs)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer st2.Close()
	if !st2.Has("k") {
		t.Fatal("block not visible through second store over same dir")
	}
}

func TestOpenMember(t *testing.T) {
	dir := t.TempDir()
	st0, err := OpenMember("file://"+dir+"/p{n}", 0)
	if err != nil {
		t.Fatalf("OpenMember(0): %v", err)
	}
	defer st0.Close()
	st1, err := OpenMember("file://"+dir+"/p{n}", 1)
	if err != nil {
		t.Fatalf("OpenMember(1): %v", err)
	}
	defer st1.Close()
	if err := st0.Put("k", []byte("zero")); err != nil {
		t.Fatal(err)
	}
	if st1.Has("k") {
		t.Fatal("members share a directory; {n} substitution failed")
	}
	// Without {n} every member shares one store URL (mem:// gives each
	// its own instance anyway).
	if _, err := OpenMember("mem://", 3); err != nil {
		t.Fatalf("OpenMember(mem://): %v", err)
	}
}

func TestOpenTieredOptions(t *testing.T) {
	q := url.Values{}
	q.Set("hot", "mem://")
	q.Set("cold", "mem://")
	q.Set("max-hot-bytes", "4096")
	q.Set("demote-after", "250ms")
	q.Set("demote-every", "1s")
	q.Set("write-back", "1")
	st, err := Open("tiered://?" + q.Encode())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer st.Close()
	ti, ok := st.(*Tiered)
	if !ok {
		t.Fatalf("Open = %T", st)
	}
	if ti.opts.MaxHotBytes != 4096 {
		t.Fatalf("MaxHotBytes = %d", ti.opts.MaxHotBytes)
	}
	if ti.opts.DemoteAfter != 250*time.Millisecond {
		t.Fatalf("DemoteAfter = %v", ti.opts.DemoteAfter)
	}
	if ti.opts.Interval != time.Second {
		t.Fatalf("Interval = %v", ti.opts.Interval)
	}
	if !ti.opts.WriteBack {
		t.Fatal("WriteBack not set")
	}
}

func TestRegisterCustomScheme(t *testing.T) {
	shared := NewMemStore()
	Register("custom-test", func(u *url.URL) (Store, error) { return shared, nil })
	st, err := Open("custom-test://whatever")
	if err != nil {
		t.Fatalf("Open(custom scheme): %v", err)
	}
	if st != Store(shared) {
		t.Fatalf("Open returned %T, want the registered instance", st)
	}
	// A tiered URL can nest a custom scheme too.
	ti, err := Open("tiered://?hot=mem://&cold=custom-test://x")
	if err != nil {
		t.Fatalf("Open(tiered over custom): %v", err)
	}
	ti.Close()
}
