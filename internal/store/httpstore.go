package store

import (
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
)

// HTTPStore is a Store backed by a remote HTTP object server speaking
// an S3-flavored protocol — the shape production blobs actually live
// behind (an object store, a blob gateway, a peer's Handler). Relative
// to the base URL:
//
//	PUT    /o/<escaped-key>        store an object (body = value)
//	GET    /o/<escaped-key>        fetch it (optional Range: bytes=a-b)
//	HEAD   /o/<escaped-key>        existence probe
//	DELETE /o/<escaped-key>        remove it (absent is not an error)
//	GET    /?list=1&prefix=P       enumerate keys (one escaped key per line)
//	DELETE /?prefix=P              bulk delete, response body = count
//	GET    /?stats=1               "items bytes"
//
// Keys are URL-path-escaped on the wire (block keys are arbitrary
// strings). Handler serves the same protocol over any local Store, so
// every test runs against a real in-process server and any blobseer
// node can export its store to peers.
type HTTPStore struct {
	base   string // no trailing slash
	client *http.Client
}

// NewHTTPStore returns a store speaking to the object server at base
// (e.g. "http://127.0.0.1:9000/blocks").
func NewHTTPStore(base string) *HTTPStore {
	return &HTTPStore{base: strings.TrimRight(base, "/"), client: &http.Client{}}
}

func (s *HTTPStore) objURL(key string) string {
	return s.base + "/o/" + url.PathEscape(key)
}

// do runs one request and fails on any status outside ok. The response
// body is fully drained so the connection returns to the pool.
func (s *HTTPStore) do(req *http.Request, ok ...int) ([]byte, error) {
	resp, err := s.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("httpstore: %s %s: %w", req.Method, req.URL.Path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("httpstore: %s %s: %w", req.Method, req.URL.Path, err)
	}
	for _, code := range ok {
		if resp.StatusCode == code {
			return body, nil
		}
	}
	if resp.StatusCode == http.StatusNotFound {
		return nil, ErrNotFound
	}
	return nil, fmt.Errorf("httpstore: %s %s: unexpected status %s", req.Method, req.URL.Path, resp.Status)
}

// Put implements Store.
func (s *HTTPStore) Put(key string, val []byte) error {
	req, err := http.NewRequest(http.MethodPut, s.objURL(key), strings.NewReader(string(val)))
	if err != nil {
		return err
	}
	_, err = s.do(req, http.StatusOK, http.StatusCreated, http.StatusNoContent)
	return err
}

// PutWriter implements Store: frames assemble locally and the value
// uploads in one PUT on Commit, so a half-written block is never
// visible remotely.
func (s *HTTPStore) PutWriter(key string) (BlockWriter, error) {
	return newBufWriter(func(buf []byte) error {
		return s.Put(key, buf)
	}), nil
}

// Get implements Store.
func (s *HTTPStore) Get(key string) ([]byte, error) {
	req, err := http.NewRequest(http.MethodGet, s.objURL(key), nil)
	if err != nil {
		return nil, err
	}
	return s.do(req, http.StatusOK)
}

// GetRange implements Store. The clamp semantics of the contract map
// onto HTTP ranges: a start past the end answers 416, which is the
// contract's empty slice.
func (s *HTTPStore) GetRange(key string, off, length int64) ([]byte, error) {
	if off < 0 {
		off = 0 // clamp keeps the requested length, matching clampRange
	}
	if length == 0 {
		if !s.Has(key) {
			return nil, ErrNotFound
		}
		return []byte{}, nil
	}
	req, err := http.NewRequest(http.MethodGet, s.objURL(key), nil)
	if err != nil {
		return nil, err
	}
	if length < 0 {
		req.Header.Set("Range", fmt.Sprintf("bytes=%d-", off))
	} else {
		req.Header.Set("Range", fmt.Sprintf("bytes=%d-%d", off, off+length-1))
	}
	resp, err := s.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("httpstore: get %s: %w", key, err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusPartialContent, http.StatusOK:
		return io.ReadAll(resp.Body)
	case http.StatusRequestedRangeNotSatisfiable:
		io.Copy(io.Discard, resp.Body)
		return []byte{}, nil
	case http.StatusNotFound:
		io.Copy(io.Discard, resp.Body)
		return nil, ErrNotFound
	}
	io.Copy(io.Discard, resp.Body)
	return nil, fmt.Errorf("httpstore: get %s: unexpected status %s", key, resp.Status)
}

// Has implements Store.
func (s *HTTPStore) Has(key string) bool {
	req, err := http.NewRequest(http.MethodHead, s.objURL(key), nil)
	if err != nil {
		return false
	}
	resp, err := s.client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// Delete implements Store.
func (s *HTTPStore) Delete(key string) error {
	req, err := http.NewRequest(http.MethodDelete, s.objURL(key), nil)
	if err != nil {
		return err
	}
	_, err = s.do(req, http.StatusOK, http.StatusNoContent, http.StatusNotFound)
	return err
}

// DeletePrefix implements Store. The sweep runs server-side: one bulk
// DELETE instead of list + N round-trips.
func (s *HTTPStore) DeletePrefix(prefix string) (int, error) {
	req, err := http.NewRequest(http.MethodDelete, s.base+"/?prefix="+url.QueryEscape(prefix), nil)
	if err != nil {
		return 0, err
	}
	body, err := s.do(req, http.StatusOK)
	if err != nil {
		return 0, err
	}
	n, err := strconv.Atoi(strings.TrimSpace(string(body)))
	if err != nil {
		return 0, fmt.Errorf("httpstore: delete prefix %q: bad count %q", prefix, body)
	}
	return n, nil
}

// Keys implements Store.
func (s *HTTPStore) Keys(prefix string) ([]string, error) {
	req, err := http.NewRequest(http.MethodGet, s.base+"/?list=1&prefix="+url.QueryEscape(prefix), nil)
	if err != nil {
		return nil, err
	}
	body, err := s.do(req, http.StatusOK)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" {
			continue
		}
		key, err := url.PathUnescape(line)
		if err != nil {
			return nil, fmt.Errorf("httpstore: list: bad key %q", line)
		}
		out = append(out, key)
	}
	return out, nil
}

// Stats implements Store.
func (s *HTTPStore) Stats() Stats {
	req, err := http.NewRequest(http.MethodGet, s.base+"/?stats=1", nil)
	if err != nil {
		return Stats{}
	}
	body, err := s.do(req, http.StatusOK)
	if err != nil {
		return Stats{}
	}
	var st Stats
	if _, err := fmt.Sscanf(string(body), "%d %d", &st.Items, &st.Bytes); err != nil {
		return Stats{}
	}
	return st
}

// Close implements Store.
func (s *HTTPStore) Close() error {
	s.client.CloseIdleConnections()
	return nil
}
