package store

import (
	"fmt"
	"testing"
	"time"
)

func newTestTiered(t *testing.T, opts TierOptions) (*Tiered, *MemStore, *MemStore) {
	t.Helper()
	hot, cold := NewMemStore(), NewMemStore()
	ti := NewTiered(hot, cold, opts)
	t.Cleanup(func() { ti.Close() })
	return ti, hot, cold
}

func TestTieredWriteThroughLandsBothTiers(t *testing.T) {
	ti, hot, cold := newTestTiered(t, TierOptions{})
	if err := ti.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if !hot.Has("k") || !cold.Has("k") {
		t.Fatalf("write-through put: hot=%v cold=%v, want both", hot.Has("k"), cold.Has("k"))
	}
}

func TestTieredWriteBackDefersCold(t *testing.T) {
	ti, hot, cold := newTestTiered(t, TierOptions{WriteBack: true})
	if err := ti.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if !hot.Has("k") || cold.Has("k") {
		t.Fatalf("write-back put: hot=%v cold=%v, want hot only", hot.Has("k"), cold.Has("k"))
	}
	n, err := ti.DemoteNow()
	if err != nil || n != 1 {
		t.Fatalf("DemoteNow = (%d, %v), want (1, nil)", n, err)
	}
	if hot.Has("k") || !cold.Has("k") {
		t.Fatalf("after demotion: hot=%v cold=%v, want cold only", hot.Has("k"), cold.Has("k"))
	}
	got, err := cold.Get("k")
	if err != nil || string(got) != "v" {
		t.Fatalf("cold value = %q, %v", got, err)
	}
}

func TestTieredPromotionOnRead(t *testing.T) {
	ti, hot, _ := newTestTiered(t, TierOptions{})
	if err := ti.Put("k", []byte("hello world")); err != nil {
		t.Fatal(err)
	}
	if n, err := ti.DemoteNow(); err != nil || n != 1 {
		t.Fatalf("DemoteNow = (%d, %v)", n, err)
	}
	if hot.Has("k") {
		t.Fatal("block still hot after demotion")
	}

	got, err := ti.Get("k")
	if err != nil || string(got) != "hello world" {
		t.Fatalf("Get after demotion = %q, %v", got, err)
	}
	if !hot.Has("k") {
		t.Fatal("read did not promote the block back to hot")
	}
	c := ti.Counters()
	if c.ColdHits != 1 || c.Promotions != 1 || c.Demotions != 1 {
		t.Fatalf("counters = %+v", c)
	}

	// The next read is a hot hit.
	if _, err := ti.Get("k"); err != nil {
		t.Fatal(err)
	}
	if c := ti.Counters(); c.HotHits != 1 || c.ColdHits != 1 {
		t.Fatalf("counters after re-read = %+v", c)
	}
}

func TestTieredGetRangePromotes(t *testing.T) {
	ti, hot, _ := newTestTiered(t, TierOptions{})
	if err := ti.Put("k", []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	if _, err := ti.DemoteNow(); err != nil {
		t.Fatal(err)
	}
	got, err := ti.GetRange("k", 3, 4)
	if err != nil || string(got) != "3456" {
		t.Fatalf("GetRange after demotion = %q, %v", got, err)
	}
	if !hot.Has("k") {
		t.Fatal("range read did not promote the whole block")
	}
	// Past-end clamp still holds on the cold path.
	if _, err := ti.DemoteNow(); err != nil {
		t.Fatal(err)
	}
	got, err = ti.GetRange("k", 20, 5)
	if err != nil || len(got) != 0 {
		t.Fatalf("past-end GetRange = %q, %v", got, err)
	}
}

func TestTieredDemoteAfterSparesRecent(t *testing.T) {
	ti, hot, _ := newTestTiered(t, TierOptions{DemoteAfter: time.Hour})
	if err := ti.Put("old", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := ti.Put("new", []byte("y")); err != nil {
		t.Fatal(err)
	}
	// Backdate "old" beyond the idle threshold.
	ti.mu.Lock()
	ti.access["old"] = time.Now().Add(-2 * time.Hour)
	ti.mu.Unlock()
	n, err := ti.DemoteNow()
	if err != nil || n != 1 {
		t.Fatalf("DemoteNow = (%d, %v), want (1, nil)", n, err)
	}
	if hot.Has("old") {
		t.Fatal("idle block not demoted")
	}
	if !hot.Has("new") {
		t.Fatal("recent block demoted")
	}
}

func TestTieredMaxHotBytesEvictsLRU(t *testing.T) {
	ti, hot, _ := newTestTiered(t, TierOptions{MaxHotBytes: 256})
	val := make([]byte, 100)
	for i := 0; i < 4; i++ {
		if err := ti.Put(fmt.Sprintf("k%d", i), val); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond) // distinct access times
	}
	st := hot.Stats()
	if st.Bytes > 256 {
		t.Fatalf("hot tier over budget: %d bytes", st.Bytes)
	}
	// The most recent keys stay hot; the oldest were evicted.
	if !hot.Has("k3") {
		t.Fatal("most recent block evicted")
	}
	if hot.Has("k0") {
		t.Fatal("oldest block still hot")
	}
	// Evicted blocks remain readable (promotion pulls them back).
	got, err := ti.Get("k0")
	if err != nil || len(got) != 100 {
		t.Fatalf("evicted block unreadable: %d bytes, %v", len(got), err)
	}
}

func TestTieredStatsBreakdown(t *testing.T) {
	ti, _, _ := newTestTiered(t, TierOptions{})
	if err := ti.Put("a", []byte("12345")); err != nil {
		t.Fatal(err)
	}
	if err := ti.Put("b", []byte("678")); err != nil {
		t.Fatal(err)
	}
	st := ti.Stats()
	if st.Items != 2 || st.Bytes != 8 {
		t.Fatalf("logical stats = %+v", st)
	}
	if len(st.Tiers) != 2 || st.Tiers[0].Name != "hot" || st.Tiers[1].Name != "cold" {
		t.Fatalf("tiers = %+v", st.Tiers)
	}
	if st.Tiers[0].Items != 2 || st.Tiers[1].Items != 2 {
		t.Fatalf("write-through tier items = %+v", st.Tiers)
	}
	if _, err := ti.DemoteNow(); err != nil {
		t.Fatal(err)
	}
	st = ti.Stats()
	if st.Items != 2 || st.Bytes != 8 {
		t.Fatalf("logical stats changed across demotion: %+v", st)
	}
	if st.Tiers[0].Items != 0 || st.Tiers[1].Items != 2 {
		t.Fatalf("post-demotion tier items = %+v", st.Tiers)
	}
}

func TestTieredDeleteSpansTiers(t *testing.T) {
	ti, hot, cold := newTestTiered(t, TierOptions{})
	if err := ti.Put("gone", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := ti.Put("cold-only", []byte("y")); err != nil {
		t.Fatal(err)
	}
	if _, err := ti.DemoteNow(); err != nil {
		t.Fatal(err)
	}
	if _, err := ti.Get("gone"); err != nil { // promote one back
		t.Fatal(err)
	}
	if err := ti.Delete("gone"); err != nil {
		t.Fatal(err)
	}
	if hot.Has("gone") || cold.Has("gone") {
		t.Fatal("Delete left a tier copy behind")
	}
	if err := ti.Delete("cold-only"); err != nil {
		t.Fatal(err)
	}
	if cold.Has("cold-only") {
		t.Fatal("Delete missed the demoted copy")
	}
}

func TestTieredDeletePrefixCountsDistinct(t *testing.T) {
	ti, _, _ := newTestTiered(t, TierOptions{})
	for i := 0; i < 3; i++ {
		if err := ti.Put(fmt.Sprintf("p/%d", i), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	// p/0 demoted+promoted lives in both tiers; it must count once.
	if _, err := ti.DemoteNow(); err != nil {
		t.Fatal(err)
	}
	if _, err := ti.Get("p/0"); err != nil {
		t.Fatal(err)
	}
	n, err := ti.DeletePrefix("p/")
	if err != nil || n != 3 {
		t.Fatalf("DeletePrefix = (%d, %v), want (3, nil)", n, err)
	}
	if ti.Has("p/1") {
		t.Fatal("prefixed key survived")
	}
}

func TestTieredWriteBackOverwriteAfterDemotion(t *testing.T) {
	ti, _, cold := newTestTiered(t, TierOptions{WriteBack: true})
	if err := ti.Put("k", []byte("generation-one")); err != nil {
		t.Fatal(err)
	}
	if _, err := ti.DemoteNow(); err != nil {
		t.Fatal(err)
	}
	if err := ti.Put("k", []byte("gen2")); err != nil {
		t.Fatal(err)
	}
	// The stale demoted copy is gone; stats count one logical block.
	if cold.Has("k") {
		t.Fatal("stale cold generation survived the overwrite")
	}
	st := ti.Stats()
	if st.Items != 1 || st.Bytes != 4 {
		t.Fatalf("stats = %+v, want 1 item / 4 bytes", st)
	}
	got, err := ti.Get("k")
	if err != nil || string(got) != "gen2" {
		t.Fatalf("Get = %q, %v", got, err)
	}
}

func TestTieredPolicyLoop(t *testing.T) {
	ti, hot, cold := newTestTiered(t, TierOptions{Interval: 2 * time.Millisecond})
	if err := ti.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for hot.Has("k") && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if hot.Has("k") {
		t.Fatal("policy loop never demoted the block")
	}
	if !cold.Has("k") {
		t.Fatal("demoted block missing from cold")
	}
	got, err := ti.Get("k")
	if err != nil || string(got) != "v" {
		t.Fatalf("Get = %q, %v", got, err)
	}
}
