package store

import (
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
)

// Handler serves a Store over the HTTP object protocol HTTPStore
// speaks (see its doc for the routes). It turns any node into a blob
// server: tests run backends against a real in-process HTTP server,
// and a deployment can export a provider's store to remote peers. Mount
// it at the base path of the consumers' store URL (wrap with
// http.StripPrefix when nesting under a longer path).
func Handler(st Store) http.Handler {
	return &storeHandler{st: st}
}

type storeHandler struct {
	st Store
}

func (h *storeHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	// The escaped path preserves %2F inside keys; URL.Path would have
	// already collapsed it into a separator.
	esc := r.URL.EscapedPath()
	if rest, ok := strings.CutPrefix(esc, "/o/"); ok {
		key, err := url.PathUnescape(rest)
		if err != nil || key == "" || strings.Contains(rest, "/") {
			http.Error(w, "bad object key", http.StatusBadRequest)
			return
		}
		h.object(w, r, key)
		return
	}
	if esc == "/" || esc == "" {
		h.root(w, r)
		return
	}
	http.NotFound(w, r)
}

func (h *storeHandler) object(w http.ResponseWriter, r *http.Request, key string) {
	switch r.Method {
	case http.MethodGet:
		if rng := r.Header.Get("Range"); rng != "" {
			h.objectRange(w, key, rng)
			return
		}
		val, err := h.st.Get(key)
		if err == ErrNotFound {
			http.NotFound(w, r)
			return
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Length", strconv.Itoa(len(val)))
		w.Write(val)

	case http.MethodHead:
		if !h.st.Has(key) {
			w.WriteHeader(http.StatusNotFound)
			return
		}
		w.WriteHeader(http.StatusOK)

	case http.MethodPut:
		val, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := h.st.Put(key, val); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusCreated)

	case http.MethodDelete:
		if err := h.st.Delete(key); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusNoContent)

	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// objectRange answers a ranged GET. The store's clamp semantics apply,
// so a start past the end is an empty 206 rather than a 416 — the
// client treats both as the contract's empty slice.
func (h *storeHandler) objectRange(w http.ResponseWriter, key, rng string) {
	off, length, ok := parseRange(rng)
	if !ok {
		http.Error(w, "bad range", http.StatusBadRequest)
		return
	}
	val, err := h.st.GetRange(key, off, length)
	if err == ErrNotFound {
		http.Error(w, "not found", http.StatusNotFound)
		return
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Length", strconv.Itoa(len(val)))
	w.WriteHeader(http.StatusPartialContent)
	w.Write(val)
}

// parseRange handles the single-range forms the client emits:
// "bytes=a-b" (length b-a+1) and "bytes=a-" (to the end, length -1).
func parseRange(rng string) (off, length int64, ok bool) {
	spec, found := strings.CutPrefix(rng, "bytes=")
	if !found {
		return 0, 0, false
	}
	a, b, found := strings.Cut(spec, "-")
	if !found {
		return 0, 0, false
	}
	off, err := strconv.ParseInt(a, 10, 64)
	if err != nil || off < 0 {
		return 0, 0, false
	}
	if b == "" {
		return off, -1, true
	}
	end, err := strconv.ParseInt(b, 10, 64)
	if err != nil || end < off {
		return 0, 0, false
	}
	return off, end - off + 1, true
}

func (h *storeHandler) root(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	switch {
	case r.Method == http.MethodGet && q.Has("list"):
		keys, err := h.st.Keys(q.Get("prefix"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		for _, k := range keys {
			fmt.Fprintln(w, url.PathEscape(k))
		}

	case r.Method == http.MethodGet && q.Has("stats"):
		st := h.st.Stats()
		fmt.Fprintf(w, "%d %d", st.Items, st.Bytes)

	case r.Method == http.MethodDelete && q.Has("prefix"):
		n, err := h.st.DeletePrefix(q.Get("prefix"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		fmt.Fprintf(w, "%d", n)

	default:
		http.Error(w, "bad request", http.StatusBadRequest)
	}
}
