package store

import "blobseer/internal/wire"

// EncodeTiers appends a Stats.Tiers breakdown to a wire buffer as
// ntiers u32 | (name string | items i64 | bytes i64)*. Single-tier
// backends encode a zero count. Shared by the provider stat response
// and the provider-manager heartbeat/list payloads so every hop carries
// the same per-tier occupancy a tiered store reports.
func EncodeTiers(b *wire.Buffer, tiers []TierStat) {
	b.U32(uint32(len(tiers)))
	for _, ts := range tiers {
		b.String(ts.Name)
		b.I64(ts.Items)
		b.I64(ts.Bytes)
	}
}

// DecodeTiers reads the breakdown written by EncodeTiers. A missing
// suffix (older peer) or zero count decodes as nil: a single-tier
// backend.
func DecodeTiers(r *wire.Reader) []TierStat {
	if r.Remaining() == 0 {
		return nil
	}
	n := r.U32()
	if n == 0 || r.Err() != nil {
		return nil
	}
	tiers := make([]TierStat, 0, n)
	for i := uint32(0); i < n; i++ {
		tiers = append(tiers, TierStat{
			Name:  r.String(),
			Items: r.I64(),
			Bytes: r.I64(),
		})
	}
	return tiers
}
