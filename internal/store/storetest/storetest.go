// Package storetest is the shared conformance harness for Store
// backends. Every backend — mem, fs, http, tiered — must pass the same
// contract: Run exercises the visibility, clamping, enumeration and
// concurrency semantics the provider and repair planes rely on, so a
// new backend is wired in by writing an opener, not by re-deriving the
// contract from the consumers.
package storetest

import (
	"fmt"
	"sync"
	"testing"

	"blobseer/internal/store"
)

// Run exercises the full Store contract against a fresh store from mk.
// mk is called once per subtest so cross-test state never leaks.
func Run(t *testing.T, mk func(t *testing.T) store.Store) {
	t.Helper()
	tests := []struct {
		name string
		fn   func(t *testing.T, st store.Store)
	}{
		{"PutGet", testPutGet},
		{"Overwrite", testOverwrite},
		{"NotFound", testNotFound},
		{"GetRangeClamps", testGetRangeClamps},
		{"HasDelete", testHasDelete},
		{"PutWriter", testPutWriter},
		{"PutWriterInvisible", testPutWriterInvisible},
		{"PutWriterAbort", testPutWriterAbort},
		{"DeletePrefix", testDeletePrefix},
		{"DeletePrefixSkipsInFlight", testDeletePrefixSkipsInFlight},
		{"Keys", testKeys},
		{"Stats", testStats},
		{"AwkwardKeys", testAwkwardKeys},
		{"Concurrent", testConcurrent},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			st := mk(t)
			defer st.Close()
			tc.fn(t, st)
		})
	}
}

func put(t *testing.T, st store.Store, key, val string) {
	t.Helper()
	if err := st.Put(key, []byte(val)); err != nil {
		t.Fatalf("Put(%q): %v", key, err)
	}
}

func get(t *testing.T, st store.Store, key string) string {
	t.Helper()
	v, err := st.Get(key)
	if err != nil {
		t.Fatalf("Get(%q): %v", key, err)
	}
	return string(v)
}

func testPutGet(t *testing.T, st store.Store) {
	put(t, st, "a", "alpha")
	put(t, st, "b", "")
	if got := get(t, st, "a"); got != "alpha" {
		t.Fatalf("Get(a) = %q, want alpha", got)
	}
	if got := get(t, st, "b"); got != "" {
		t.Fatalf("Get(b) = %q, want empty", got)
	}
}

func testOverwrite(t *testing.T, st store.Store) {
	put(t, st, "k", "first")
	put(t, st, "k", "second-and-longer")
	if got := get(t, st, "k"); got != "second-and-longer" {
		t.Fatalf("Get after overwrite = %q", got)
	}
	put(t, st, "k", "3rd")
	if got := get(t, st, "k"); got != "3rd" {
		t.Fatalf("Get after shrinking overwrite = %q", got)
	}
}

func testNotFound(t *testing.T, st store.Store) {
	if _, err := st.Get("missing"); err != store.ErrNotFound {
		t.Fatalf("Get(missing) err = %v, want ErrNotFound", err)
	}
	if _, err := st.GetRange("missing", 0, 4); err != store.ErrNotFound {
		t.Fatalf("GetRange(missing) err = %v, want ErrNotFound", err)
	}
	if st.Has("missing") {
		t.Fatal("Has(missing) = true")
	}
	if err := st.Delete("missing"); err != nil {
		t.Fatalf("Delete(missing) must be a no-op, got %v", err)
	}
}

func testGetRangeClamps(t *testing.T, st store.Store) {
	put(t, st, "k", "0123456789")
	cases := []struct {
		off, length int64
		want        string
	}{
		{0, 10, "0123456789"},
		{0, -1, "0123456789"},
		{3, 4, "3456"},
		{3, -1, "3456789"},
		{0, 0, ""},
		{9, 5, "9"},      // length clamps to the end
		{10, 3, ""},      // start at end
		{99, 3, ""},      // start past end
		{-2, 5, "01234"}, // negative start clamps to 0, length kept
		{-2, -1, "0123456789"},
	}
	for _, c := range cases {
		got, err := st.GetRange("k", c.off, c.length)
		if err != nil {
			t.Fatalf("GetRange(%d,%d): %v", c.off, c.length, err)
		}
		if string(got) != c.want {
			t.Fatalf("GetRange(%d,%d) = %q, want %q", c.off, c.length, got, c.want)
		}
	}
}

func testHasDelete(t *testing.T, st store.Store) {
	put(t, st, "k", "v")
	if !st.Has("k") {
		t.Fatal("Has(k) = false after Put")
	}
	if err := st.Delete("k"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if st.Has("k") {
		t.Fatal("Has(k) = true after Delete")
	}
	if _, err := st.Get("k"); err != store.ErrNotFound {
		t.Fatalf("Get after Delete err = %v, want ErrNotFound", err)
	}
}

func testPutWriter(t *testing.T, st store.Store) {
	w, err := st.PutWriter("k")
	if err != nil {
		t.Fatalf("PutWriter: %v", err)
	}
	// Frames land out of order and overlapping; the last write wins.
	if err := w.WriteAt([]byte("6789"), 6); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	if err := w.WriteAt([]byte("012345"), 0); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	if err := w.WriteAt([]byte("345"), 3); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	if err := w.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if got := get(t, st, "k"); got != "0123456789" {
		t.Fatalf("assembled block = %q, want 0123456789", got)
	}
}

func testPutWriterInvisible(t *testing.T, st store.Store) {
	w, err := st.PutWriter("k")
	if err != nil {
		t.Fatalf("PutWriter: %v", err)
	}
	if err := w.WriteAt([]byte("partial"), 0); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	if st.Has("k") {
		t.Fatal("in-flight write visible via Has")
	}
	if _, err := st.Get("k"); err != store.ErrNotFound {
		t.Fatalf("in-flight write visible via Get: err = %v", err)
	}
	keys, err := st.Keys("")
	if err != nil {
		t.Fatalf("Keys: %v", err)
	}
	if len(keys) != 0 {
		t.Fatalf("in-flight write visible via Keys: %v", keys)
	}
	if err := w.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if got := get(t, st, "k"); got != "partial" {
		t.Fatalf("Get after Commit = %q", got)
	}
}

func testPutWriterAbort(t *testing.T, st store.Store) {
	w, err := st.PutWriter("k")
	if err != nil {
		t.Fatalf("PutWriter: %v", err)
	}
	if err := w.WriteAt([]byte("doomed"), 0); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	if err := w.Abort(); err != nil {
		t.Fatalf("Abort: %v", err)
	}
	if st.Has("k") {
		t.Fatal("aborted write visible")
	}

	// A writer overwriting an existing block must not clobber it before
	// Commit, and the committed value replaces the old one.
	put(t, st, "x", "old")
	w2, err := st.PutWriter("x")
	if err != nil {
		t.Fatalf("PutWriter: %v", err)
	}
	if err := w2.WriteAt([]byte("new!"), 0); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	if got := get(t, st, "x"); got != "old" {
		t.Fatalf("old value clobbered pre-Commit: %q", got)
	}
	if err := w2.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if got := get(t, st, "x"); got != "new!" {
		t.Fatalf("Get after overwriting Commit = %q", got)
	}
}

func testDeletePrefix(t *testing.T, st store.Store) {
	put(t, st, "blk/1", "a")
	put(t, st, "blk/2", "bb")
	put(t, st, "blk/3", "ccc")
	put(t, st, "other", "dddd")
	n, err := st.DeletePrefix("blk/")
	if err != nil {
		t.Fatalf("DeletePrefix: %v", err)
	}
	if n != 3 {
		t.Fatalf("DeletePrefix removed %d, want 3", n)
	}
	if st.Has("blk/2") {
		t.Fatal("prefixed key survived DeletePrefix")
	}
	if !st.Has("other") {
		t.Fatal("unrelated key removed by DeletePrefix")
	}
	n, err = st.DeletePrefix("blk/")
	if err != nil || n != 0 {
		t.Fatalf("second DeletePrefix = (%d, %v), want (0, nil)", n, err)
	}
}

func testDeletePrefixSkipsInFlight(t *testing.T, st store.Store) {
	put(t, st, "blk/done", "x")
	w, err := st.PutWriter("blk/inflight")
	if err != nil {
		t.Fatalf("PutWriter: %v", err)
	}
	if err := w.WriteAt([]byte("y"), 0); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	n, err := st.DeletePrefix("blk/")
	if err != nil {
		t.Fatalf("DeletePrefix: %v", err)
	}
	if n != 1 {
		t.Fatalf("DeletePrefix counted %d, want 1 (in-flight write is not a block)", n)
	}
	// The sweep must not have broken the in-flight writer.
	if err := w.Commit(); err != nil {
		t.Fatalf("Commit after DeletePrefix: %v", err)
	}
	if got := get(t, st, "blk/inflight"); got != "y" {
		t.Fatalf("committed block = %q", got)
	}
}

func testKeys(t *testing.T, st store.Store) {
	put(t, st, "a/1", "x")
	put(t, st, "a/2", "x")
	put(t, st, "b/1", "x")
	all, err := st.Keys("")
	if err != nil {
		t.Fatalf("Keys: %v", err)
	}
	if len(all) != 3 {
		t.Fatalf("Keys(\"\") = %v, want 3 keys", all)
	}
	as, err := st.Keys("a/")
	if err != nil {
		t.Fatalf("Keys: %v", err)
	}
	if len(as) != 2 {
		t.Fatalf("Keys(a/) = %v, want 2 keys", as)
	}
	seen := map[string]bool{}
	for _, k := range as {
		seen[k] = true
	}
	if !seen["a/1"] || !seen["a/2"] {
		t.Fatalf("Keys(a/) = %v", as)
	}
}

func testStats(t *testing.T, st store.Store) {
	if s := st.Stats(); s.Items != 0 || s.Bytes != 0 {
		t.Fatalf("empty Stats = %+v", s)
	}
	put(t, st, "a", "12345")
	put(t, st, "b", "123")
	put(t, st, "a", "12") // overwrite shrinks
	s := st.Stats()
	if s.Items != 2 || s.Bytes != 5 {
		t.Fatalf("Stats = {Items:%d Bytes:%d}, want {2 5}", s.Items, s.Bytes)
	}
	if err := st.Delete("b"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	s = st.Stats()
	if s.Items != 1 || s.Bytes != 2 {
		t.Fatalf("Stats after delete = {Items:%d Bytes:%d}, want {1 2}", s.Items, s.Bytes)
	}
}

func testAwkwardKeys(t *testing.T, st store.Store) {
	// Block keys are arbitrary strings: separators, spaces, percent
	// signs and raw bytes must round-trip through every backend
	// (including URL-escaping ones).
	keys := []string{
		"v/3/blk/00af",
		"with space",
		"percent%2Fliteral",
		"unicode-號",
		"trailing/",
	}
	for i, k := range keys {
		put(t, st, k, fmt.Sprintf("val-%d", i))
	}
	for i, k := range keys {
		if got := get(t, st, k); got != fmt.Sprintf("val-%d", i) {
			t.Fatalf("Get(%q) = %q", k, got)
		}
	}
	all, err := st.Keys("")
	if err != nil {
		t.Fatalf("Keys: %v", err)
	}
	if len(all) != len(keys) {
		t.Fatalf("Keys = %v, want %d keys", all, len(keys))
	}
}

func testConcurrent(t *testing.T, st store.Store) {
	const workers, per = 8, 16
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				key := fmt.Sprintf("w%d/k%d", w, i)
				val := fmt.Sprintf("value-%d-%d", w, i)
				if i%2 == 0 {
					if err := st.Put(key, []byte(val)); err != nil {
						t.Errorf("Put(%q): %v", key, err)
						return
					}
				} else {
					bw, err := st.PutWriter(key)
					if err != nil {
						t.Errorf("PutWriter(%q): %v", key, err)
						return
					}
					if err := bw.WriteAt([]byte(val), 0); err != nil {
						t.Errorf("WriteAt(%q): %v", key, err)
						return
					}
					if err := bw.Commit(); err != nil {
						t.Errorf("Commit(%q): %v", key, err)
						return
					}
				}
				got, err := st.Get(key)
				if err != nil || string(got) != val {
					t.Errorf("Get(%q) = %q, %v", key, got, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	st2 := st.Stats()
	if want := int64(workers * per); st2.Items != want {
		t.Fatalf("Stats.Items = %d, want %d", st2.Items, want)
	}
	keys, err := st.Keys("w3/")
	if err != nil || len(keys) != per {
		t.Fatalf("Keys(w3/) = %d keys, %v; want %d", len(keys), err, per)
	}
}
