package store_test

import (
	"net/http/httptest"
	"testing"
	"time"

	"blobseer/internal/store"
	"blobseer/internal/store/storetest"
)

// TestConformance runs the shared contract harness against every
// backend, each behind the same URL factory the daemons use.
func TestConformance(t *testing.T) {
	t.Run("Mem", func(t *testing.T) {
		storetest.Run(t, func(t *testing.T) store.Store {
			return openURL(t, "mem://")
		})
	})
	t.Run("FS", func(t *testing.T) {
		storetest.Run(t, func(t *testing.T) store.Store {
			return openURL(t, "file://"+t.TempDir())
		})
	})
	t.Run("FSSync", func(t *testing.T) {
		storetest.Run(t, func(t *testing.T) store.Store {
			return openURL(t, "file://"+t.TempDir()+"?sync=1")
		})
	})
	t.Run("HTTP", func(t *testing.T) {
		storetest.Run(t, func(t *testing.T) store.Store {
			srv := httptest.NewServer(store.Handler(store.NewMemStore()))
			t.Cleanup(srv.Close)
			return openURL(t, srv.URL)
		})
	})
	t.Run("HTTPOverFS", func(t *testing.T) {
		storetest.Run(t, func(t *testing.T) store.Store {
			backing, err := store.NewFSStore(t.TempDir(), false)
			if err != nil {
				t.Fatal(err)
			}
			srv := httptest.NewServer(store.Handler(backing))
			t.Cleanup(srv.Close)
			return openURL(t, srv.URL)
		})
	})
	t.Run("TieredWriteThrough", func(t *testing.T) {
		storetest.Run(t, func(t *testing.T) store.Store {
			return openURL(t, "tiered://?hot=mem://&cold=mem://")
		})
	})
	t.Run("TieredWriteBack", func(t *testing.T) {
		storetest.Run(t, func(t *testing.T) store.Store {
			return openURL(t, "tiered://?hot=mem://&cold=mem://&write-back=1")
		})
	})
	t.Run("TieredFSCold", func(t *testing.T) {
		storetest.Run(t, func(t *testing.T) store.Store {
			return openURL(t, "tiered://?hot=mem://&cold=file://"+t.TempDir())
		})
	})
	// The contract must hold while the policy loop demotes everything
	// it can as fast as it can — reads land mid-demotion and must still
	// see every committed block via promotion.
	t.Run("TieredAggressiveDemotion", func(t *testing.T) {
		storetest.Run(t, func(t *testing.T) store.Store {
			hot := store.NewMemStore()
			cold := store.NewMemStore()
			return store.NewTiered(hot, cold, store.TierOptions{
				DemoteAfter: 0,
				Interval:    time.Millisecond,
			})
		})
	})
	t.Run("TieredAggressiveWriteBack", func(t *testing.T) {
		storetest.Run(t, func(t *testing.T) store.Store {
			hot := store.NewMemStore()
			cold := store.NewMemStore()
			return store.NewTiered(hot, cold, store.TierOptions{
				DemoteAfter: 0,
				Interval:    time.Millisecond,
				WriteBack:   true,
			})
		})
	})
}

func openURL(t *testing.T, rawURL string) store.Store {
	t.Helper()
	st, err := store.Open(rawURL)
	if err != nil {
		t.Fatalf("Open(%q): %v", rawURL, err)
	}
	return st
}
