package store

import (
	"errors"
	"hash/fnv"
	"strings"
	"sync"
)

const memShards = 16

// MemStore is a sharded in-memory Store. Values are copied on Put and
// Get so callers can reuse buffers freely.
type MemStore struct {
	shards [memShards]memShard
}

type memShard struct {
	mu sync.RWMutex
	m  map[string][]byte
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	s := &MemStore{}
	for i := range s.shards {
		s.shards[i].m = make(map[string][]byte)
	}
	return s
}

func (s *MemStore) shard(key string) *memShard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return &s.shards[h.Sum32()%memShards]
}

// Put implements Store.
func (s *MemStore) Put(key string, val []byte) error {
	cp := append([]byte(nil), val...)
	sh := s.shard(key)
	sh.mu.Lock()
	sh.m[key] = cp
	sh.mu.Unlock()
	return nil
}

// PutWriter implements Store.
func (s *MemStore) PutWriter(key string) (BlockWriter, error) {
	return &memWriter{s: s, key: key}, nil
}

// memWriter accumulates frames in a private buffer and installs it on
// Commit without a copy (the buffer ownership transfers to the store).
type memWriter struct {
	s    *MemStore
	key  string
	mu   sync.Mutex
	buf  []byte
	done bool
}

func (w *memWriter) WriteAt(p []byte, off int64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.done {
		return errors.New("store: write on finished writer")
	}
	if off < 0 {
		return errors.New("store: negative write offset")
	}
	if end := int(off) + len(p); end > len(w.buf) {
		if end > cap(w.buf) {
			// Grow geometrically: frames mostly arrive in ascending
			// order, so linear growth would copy the buffer once per
			// frame — quadratic in the block size.
			newCap := 2 * cap(w.buf)
			if newCap < end {
				newCap = end
			}
			grown := make([]byte, end, newCap)
			copy(grown, w.buf)
			w.buf = grown
		} else {
			w.buf = w.buf[:end]
		}
	}
	copy(w.buf[off:], p)
	return nil
}

func (w *memWriter) Commit() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.done {
		return errors.New("store: commit on finished writer")
	}
	w.done = true
	sh := w.s.shard(w.key)
	sh.mu.Lock()
	sh.m[w.key] = w.buf
	sh.mu.Unlock()
	w.buf = nil
	return nil
}

func (w *memWriter) Abort() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.done = true
	w.buf = nil
	return nil
}

// Get implements Store.
func (s *MemStore) Get(key string) ([]byte, error) {
	sh := s.shard(key)
	sh.mu.RLock()
	v, ok := sh.m[key]
	sh.mu.RUnlock()
	if !ok {
		return nil, ErrNotFound
	}
	return append([]byte(nil), v...), nil
}

// GetRange implements Store.
func (s *MemStore) GetRange(key string, off, length int64) ([]byte, error) {
	sh := s.shard(key)
	sh.mu.RLock()
	v, ok := sh.m[key]
	sh.mu.RUnlock()
	if !ok {
		return nil, ErrNotFound
	}
	o, l := clampRange(int64(len(v)), off, length)
	return append([]byte(nil), v[o:o+l]...), nil
}

// Has implements Store.
func (s *MemStore) Has(key string) bool {
	sh := s.shard(key)
	sh.mu.RLock()
	_, ok := sh.m[key]
	sh.mu.RUnlock()
	return ok
}

// Delete implements Store.
func (s *MemStore) Delete(key string) error {
	sh := s.shard(key)
	sh.mu.Lock()
	delete(sh.m, key)
	sh.mu.Unlock()
	return nil
}

// DeletePrefix implements Store.
func (s *MemStore) DeletePrefix(prefix string) (int, error) {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for k := range sh.m {
			if strings.HasPrefix(k, prefix) {
				delete(sh.m, k)
				n++
			}
		}
		sh.mu.Unlock()
	}
	return n, nil
}

// Keys implements Store.
func (s *MemStore) Keys(prefix string) ([]string, error) {
	var out []string
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for k := range sh.m {
			if strings.HasPrefix(k, prefix) {
				out = append(out, k)
			}
		}
		sh.mu.RUnlock()
	}
	return out, nil
}

// Stats implements Store.
func (s *MemStore) Stats() Stats {
	var st Stats
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		st.Items += int64(len(sh.m))
		for _, v := range sh.m {
			st.Bytes += int64(len(v))
		}
		sh.mu.RUnlock()
	}
	return st
}

// Close implements Store.
func (s *MemStore) Close() error { return nil }
