package store

import (
	"hash/fnv"
	"strings"
	"sync"
)

const memShards = 16

// MemStore is a sharded in-memory Store. Values are copied on Put and
// Get so callers can reuse buffers freely.
type MemStore struct {
	shards [memShards]memShard
}

type memShard struct {
	mu sync.RWMutex
	m  map[string][]byte
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	s := &MemStore{}
	for i := range s.shards {
		s.shards[i].m = make(map[string][]byte)
	}
	return s
}

func (s *MemStore) shard(key string) *memShard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return &s.shards[h.Sum32()%memShards]
}

// Put implements Store.
func (s *MemStore) Put(key string, val []byte) error {
	cp := append([]byte(nil), val...)
	sh := s.shard(key)
	sh.mu.Lock()
	sh.m[key] = cp
	sh.mu.Unlock()
	return nil
}

// PutWriter implements Store. Frames accumulate in a private buffer
// whose ownership transfers to the store on Commit (no copy).
func (s *MemStore) PutWriter(key string) (BlockWriter, error) {
	return newBufWriter(func(buf []byte) error {
		sh := s.shard(key)
		sh.mu.Lock()
		sh.m[key] = buf
		sh.mu.Unlock()
		return nil
	}), nil
}

// Get implements Store.
func (s *MemStore) Get(key string) ([]byte, error) {
	sh := s.shard(key)
	sh.mu.RLock()
	v, ok := sh.m[key]
	sh.mu.RUnlock()
	if !ok {
		return nil, ErrNotFound
	}
	return append([]byte(nil), v...), nil
}

// GetRange implements Store.
func (s *MemStore) GetRange(key string, off, length int64) ([]byte, error) {
	sh := s.shard(key)
	sh.mu.RLock()
	v, ok := sh.m[key]
	sh.mu.RUnlock()
	if !ok {
		return nil, ErrNotFound
	}
	o, l := clampRange(int64(len(v)), off, length)
	return append([]byte(nil), v[o:o+l]...), nil
}

// Has implements Store.
func (s *MemStore) Has(key string) bool {
	sh := s.shard(key)
	sh.mu.RLock()
	_, ok := sh.m[key]
	sh.mu.RUnlock()
	return ok
}

// Delete implements Store.
func (s *MemStore) Delete(key string) error {
	sh := s.shard(key)
	sh.mu.Lock()
	delete(sh.m, key)
	sh.mu.Unlock()
	return nil
}

// DeletePrefix implements Store.
func (s *MemStore) DeletePrefix(prefix string) (int, error) {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for k := range sh.m {
			if strings.HasPrefix(k, prefix) {
				delete(sh.m, k)
				n++
			}
		}
		sh.mu.Unlock()
	}
	return n, nil
}

// Keys implements Store.
func (s *MemStore) Keys(prefix string) ([]string, error) {
	var out []string
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for k := range sh.m {
			if strings.HasPrefix(k, prefix) {
				out = append(out, k)
			}
		}
		sh.mu.RUnlock()
	}
	return out, nil
}

// Stats implements Store.
func (s *MemStore) Stats() Stats {
	var st Stats
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		st.Items += int64(len(sh.m))
		for _, v := range sh.m {
			st.Bytes += int64(len(v))
		}
		sh.mu.RUnlock()
	}
	return st
}

// Close implements Store.
func (s *MemStore) Close() error { return nil }
