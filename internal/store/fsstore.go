package store

import (
	"encoding/hex"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
)

// FSStore is a file-backed Store: each key becomes one file whose name
// is the hex encoding of the key (safe for arbitrary key bytes). It is
// the durable engine for real deployments of providers and metadata
// providers; experiments default to MemStore.
type FSStore struct {
	dir  string
	sync bool // fsync after writes

	mu  sync.RWMutex  // guards cross-file operations (DeletePrefix vs Put races)
	seq atomic.Uint64 // distinguishes concurrent streaming writers' temp files
}

// NewFSStore opens (creating if needed) a store rooted at dir. If
// syncWrites is set, every Put is fsynced before returning. Temp files
// orphaned by a crash mid-write are swept on open (no writer can be
// live at that point).
func NewFSStore(dir string, syncWrites bool) (*FSStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("fsstore: %w", err)
	}
	if entries, err := os.ReadDir(dir); err == nil {
		for _, e := range entries {
			if strings.HasSuffix(e.Name(), ".tmp") {
				os.Remove(filepath.Join(dir, e.Name()))
			}
		}
	}
	return &FSStore{dir: dir, sync: syncWrites}, nil
}

func (s *FSStore) path(key string) string {
	return filepath.Join(s.dir, hex.EncodeToString([]byte(key)))
}

// Put implements Store.
func (s *FSStore) Put(key string, val []byte) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	tmp := s.path(key) + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("fsstore: put %s: %w", key, err)
	}
	if _, err := f.Write(val); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("fsstore: put %s: %w", key, err)
	}
	if s.sync {
		if err := f.Sync(); err != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("fsstore: sync %s: %w", key, err)
		}
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("fsstore: close %s: %w", key, err)
	}
	if err := os.Rename(tmp, s.path(key)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("fsstore: commit %s: %w", key, err)
	}
	if s.sync {
		// The rename is only durable once the directory entry is: fsync
		// the parent, or a power loss can roll back a committed block
		// even though its bytes were synced.
		if err := s.syncDir(); err != nil {
			return fmt.Errorf("fsstore: commit %s: %w", key, err)
		}
	}
	return nil
}

// syncDir fsyncs the store directory, making recent renames durable.
func (s *FSStore) syncDir() error {
	d, err := os.Open(s.dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// PutWriter implements Store. Frames accumulate in a uniquely named
// temp file (the ".tmp" suffix keeps it invisible to DeletePrefix and
// Stats); Commit renames it into place atomically.
func (s *FSStore) PutWriter(key string) (BlockWriter, error) {
	tmp := fmt.Sprintf("%s.w%d.tmp", s.path(key), s.seq.Add(1))
	f, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("fsstore: stream %s: %w", key, err)
	}
	return &fsWriter{s: s, key: key, tmp: tmp, f: f}, nil
}

type fsWriter struct {
	s    *FSStore
	key  string
	tmp  string
	mu   sync.Mutex
	f    *os.File
	done bool
}

func (w *fsWriter) WriteAt(p []byte, off int64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.done {
		return errors.New("fsstore: write on finished writer")
	}
	if off < 0 {
		return errors.New("fsstore: negative write offset")
	}
	if _, err := w.f.WriteAt(p, off); err != nil {
		return fmt.Errorf("fsstore: stream %s: %w", w.key, err)
	}
	return nil
}

func (w *fsWriter) Commit() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.done {
		return errors.New("fsstore: commit on finished writer")
	}
	w.done = true
	if w.s.sync {
		if err := w.f.Sync(); err != nil {
			w.f.Close()
			os.Remove(w.tmp)
			return fmt.Errorf("fsstore: sync %s: %w", w.key, err)
		}
	}
	if err := w.f.Close(); err != nil {
		os.Remove(w.tmp)
		return fmt.Errorf("fsstore: close %s: %w", w.key, err)
	}
	w.s.mu.RLock()
	defer w.s.mu.RUnlock()
	if err := os.Rename(w.tmp, w.s.path(w.key)); err != nil {
		os.Remove(w.tmp)
		return fmt.Errorf("fsstore: commit %s: %w", w.key, err)
	}
	if w.s.sync {
		if err := w.s.syncDir(); err != nil {
			return fmt.Errorf("fsstore: commit %s: %w", w.key, err)
		}
	}
	return nil
}

func (w *fsWriter) Abort() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.done {
		return nil
	}
	w.done = true
	w.f.Close()
	return os.Remove(w.tmp)
}

// Get implements Store.
func (s *FSStore) Get(key string) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, err := os.ReadFile(s.path(key))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, ErrNotFound
	}
	return v, err
}

// GetRange implements Store.
func (s *FSStore) GetRange(key string, off, length int64) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	f, err := os.Open(s.path(key))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, ErrNotFound
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	o, l := clampRange(fi.Size(), off, length)
	buf := make([]byte, l)
	if l == 0 {
		return buf, nil
	}
	if _, err := f.ReadAt(buf, o); err != nil {
		return nil, fmt.Errorf("fsstore: read %s: %w", key, err)
	}
	return buf, nil
}

// Has implements Store.
func (s *FSStore) Has(key string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, err := os.Stat(s.path(key))
	return err == nil
}

// Delete implements Store.
func (s *FSStore) Delete(key string) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	err := os.Remove(s.path(key))
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	return err
}

// DeletePrefix implements Store.
func (s *FSStore) DeletePrefix(prefix string) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return 0, err
	}
	hexPrefix := hex.EncodeToString([]byte(prefix))
	n := 0
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") || !strings.HasPrefix(name, hexPrefix) {
			continue
		}
		if err := os.Remove(filepath.Join(s.dir, name)); err == nil {
			n++
		}
	}
	return n, nil
}

// Keys implements Store.
func (s *FSStore) Keys(prefix string) ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	hexPrefix := hex.EncodeToString([]byte(prefix))
	var out []string
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") || !strings.HasPrefix(name, hexPrefix) {
			continue
		}
		raw, err := hex.DecodeString(name)
		if err != nil {
			continue // foreign file in the store directory
		}
		out = append(out, string(raw))
	}
	return out, nil
}

// Stats implements Store.
func (s *FSStore) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var st Stats
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return st
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			continue
		}
		fi, err := e.Info()
		if err != nil {
			continue
		}
		st.Items++
		st.Bytes += fi.Size()
	}
	return st
}

// Close implements Store.
func (s *FSStore) Close() error { return nil }
