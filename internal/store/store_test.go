package store

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"
)

// engines returns a fresh instance of every Store implementation.
func engines(t *testing.T) map[string]Store {
	t.Helper()
	fss, err := NewFSStore(t.TempDir(), false)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Store{
		"mem": NewMemStore(),
		"fs":  fss,
	}
}

func TestStoreKeys(t *testing.T) {
	for name, s := range engines(t) {
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			keys, err := s.Keys("")
			if err != nil || len(keys) != 0 {
				t.Fatalf("Keys on empty store = %v, %v", keys, err)
			}
			for _, k := range []string{"b1/a/0", "b1/a/1", "b2/ff/0", "t1/2/0/4"} {
				if err := s.Put(k, []byte("x")); err != nil {
					t.Fatal(err)
				}
			}
			all, err := s.Keys("")
			if err != nil {
				t.Fatal(err)
			}
			sort.Strings(all)
			want := []string{"b1/a/0", "b1/a/1", "b2/ff/0", "t1/2/0/4"}
			if fmt.Sprint(all) != fmt.Sprint(want) {
				t.Errorf("Keys(\"\") = %v, want %v", all, want)
			}
			blocks, err := s.Keys("b1/a/")
			if err != nil || len(blocks) != 2 {
				t.Errorf("Keys(prefix) = %v, %v", blocks, err)
			}
			// In-flight streaming writes are invisible until Commit.
			w, err := s.PutWriter("b9/9/0")
			if err != nil {
				t.Fatal(err)
			}
			if err := w.WriteAt([]byte("partial"), 0); err != nil {
				t.Fatal(err)
			}
			inflight, _ := s.Keys("b9/")
			if len(inflight) != 0 {
				t.Errorf("in-flight streaming write visible in Keys: %v", inflight)
			}
			if err := w.Commit(); err != nil {
				t.Fatal(err)
			}
			committed, _ := s.Keys("b9/")
			if len(committed) != 1 {
				t.Errorf("committed key missing from Keys: %v", committed)
			}
		})
	}
}

func TestStoreBasics(t *testing.T) {
	for name, s := range engines(t) {
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			if s.Has("k") {
				t.Error("fresh store has key")
			}
			if _, err := s.Get("k"); !errors.Is(err, ErrNotFound) {
				t.Errorf("Get missing = %v", err)
			}
			if err := s.Put("k", []byte("value-1")); err != nil {
				t.Fatal(err)
			}
			v, err := s.Get("k")
			if err != nil || string(v) != "value-1" {
				t.Fatalf("Get = %q, %v", v, err)
			}
			// Overwrite.
			if err := s.Put("k", []byte("v2")); err != nil {
				t.Fatal(err)
			}
			v, _ = s.Get("k")
			if string(v) != "v2" {
				t.Errorf("overwrite failed: %q", v)
			}
			if err := s.Delete("k"); err != nil {
				t.Fatal(err)
			}
			if s.Has("k") {
				t.Error("key survives delete")
			}
			if err := s.Delete("k"); err != nil {
				t.Errorf("double delete errored: %v", err)
			}
		})
	}
}

func TestStoreGetRange(t *testing.T) {
	for name, s := range engines(t) {
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			data := []byte("0123456789")
			if err := s.Put("k", data); err != nil {
				t.Fatal(err)
			}
			cases := []struct {
				off, length int64
				want        string
			}{
				{0, 10, "0123456789"},
				{0, -1, "0123456789"},
				{3, 4, "3456"},
				{8, 100, "89"}, // clamped
				{10, 5, ""},    // at end
				{20, 5, ""},    // past end
				{-2, 3, "012"}, // negative off clamped to 0
			}
			for _, c := range cases {
				got, err := s.GetRange("k", c.off, c.length)
				if err != nil {
					t.Fatalf("GetRange(%d,%d): %v", c.off, c.length, err)
				}
				if string(got) != c.want {
					t.Errorf("GetRange(%d,%d) = %q, want %q", c.off, c.length, got, c.want)
				}
			}
			if _, err := s.GetRange("missing", 0, 1); !errors.Is(err, ErrNotFound) {
				t.Errorf("missing GetRange err = %v", err)
			}
		})
	}
}

func TestStoreDeletePrefix(t *testing.T) {
	for name, s := range engines(t) {
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			keys := []string{"b1/aa/0", "b1/aa/1", "b1/ab/0", "b2/aa/0"}
			for _, k := range keys {
				if err := s.Put(k, []byte(k)); err != nil {
					t.Fatal(err)
				}
			}
			n, err := s.DeletePrefix("b1/aa/")
			if err != nil {
				t.Fatal(err)
			}
			if n != 2 {
				t.Errorf("deleted %d, want 2", n)
			}
			if s.Has("b1/aa/0") || s.Has("b1/aa/1") {
				t.Error("prefixed keys survive")
			}
			if !s.Has("b1/ab/0") || !s.Has("b2/aa/0") {
				t.Error("unrelated keys deleted")
			}
		})
	}
}

func TestStoreStats(t *testing.T) {
	for name, s := range engines(t) {
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			if st := s.Stats(); st.Items != 0 || st.Bytes != 0 {
				t.Errorf("fresh stats = %+v", st)
			}
			s.Put("a", make([]byte, 100))
			s.Put("b", make([]byte, 50))
			st := s.Stats()
			if st.Items != 2 || st.Bytes != 150 {
				t.Errorf("stats = %+v", st)
			}
		})
	}
}

func TestStoreValueIsolation(t *testing.T) {
	// Mutating caller buffers after Put / after Get must not corrupt
	// stored data.
	for name, s := range engines(t) {
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			buf := []byte("immutable")
			if err := s.Put("k", buf); err != nil {
				t.Fatal(err)
			}
			buf[0] = 'X'
			v, _ := s.Get("k")
			if string(v) != "immutable" {
				t.Fatalf("Put aliased caller buffer: %q", v)
			}
			v[0] = 'Y'
			v2, _ := s.Get("k")
			if string(v2) != "immutable" {
				t.Fatalf("Get aliased stored buffer: %q", v2)
			}
		})
	}
}

func TestStoreConcurrentAccess(t *testing.T) {
	for name, s := range engines(t) {
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			var wg sync.WaitGroup
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < 50; i++ {
						k := fmt.Sprintf("g%d/k%d", g, i)
						if err := s.Put(k, []byte(k)); err != nil {
							t.Error(err)
							return
						}
						v, err := s.Get(k)
						if err != nil || !bytes.Equal(v, []byte(k)) {
							t.Errorf("get %s = %q, %v", k, v, err)
							return
						}
					}
				}(g)
			}
			wg.Wait()
			if st := s.Stats(); st.Items != 400 {
				t.Errorf("items = %d, want 400", st.Items)
			}
		})
	}
}

func TestFSStoreBinaryKeysAndPersistence(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFSStore(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	key := string([]byte{0, 1, '/', 0xff, 'x'})
	if err := s.Put(key, []byte("bin")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	// Reopen and read back.
	s2, err := NewFSStore(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	v, err := s2.Get(key)
	if err != nil || string(v) != "bin" {
		t.Fatalf("reopened Get = %q, %v", v, err)
	}
}
