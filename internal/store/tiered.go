package store

import (
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// TierOptions configures a Tiered store's demotion policy and write
// path.
type TierOptions struct {
	// MaxHotBytes bounds the hot tier: whenever it grows past this,
	// least-recently-accessed blocks are demoted until it fits again.
	// 0 leaves the hot tier unbounded (age-driven demotion only).
	MaxHotBytes int64
	// DemoteAfter is the idle age at which a policy pass demotes a hot
	// block. 0 makes every pass demote everything not accessed since
	// the previous pass started (useful for tests and ablations; real
	// deployments want an age like 10m).
	DemoteAfter time.Duration
	// Interval runs the background policy loop this often. 0 disables
	// the loop; DemoteNow still works for manual or test-driven passes.
	Interval time.Duration
	// WriteBack selects the write path. Write-through (the default)
	// copies every committed block to the cold tier immediately, so
	// demotion is a pure hot-copy drop. Write-back lands blocks on the
	// hot tier only and defers the cold copy to demotion — faster
	// writes, but blocks written since the last pass live in one tier.
	WriteBack bool
}

// TierCounters snapshots a Tiered store's traffic split.
type TierCounters struct {
	HotHits    int64 // reads served by the hot tier
	ColdHits   int64 // reads that had to touch the cold tier
	Promotions int64 // cold blocks copied back to hot on read
	Demotions  int64 // hot blocks dropped (and flushed, when dirty) to cold
}

// Tiered composes a fast hot store and a slow cold store into one
// Store: reads hit the hot tier first and transparently promote cold
// blocks back on a miss, a policy loop demotes idle blocks, and every
// contract operation (Keys, Has, Delete, DeletePrefix) spans both
// tiers — so providers, block reports, repair and GC see one logical
// store and a demoted block still counts as present. Build one with
// NewTiered or a "tiered://?hot=...&cold=..." URL.
type Tiered struct {
	hot, cold Store
	opts      TierOptions

	hotHits, coldHits, promotions, demotions atomic.Int64

	mu         sync.Mutex
	access     map[string]time.Time // last access per hot-resident key
	dirty      map[string]int64     // write-back keys not yet flushed (-> value size)
	dirtyBytes int64
	stop       chan struct{}
}

// NewTiered composes hot and cold under the given policy, taking
// ownership of both (Close closes them). The background policy loop
// starts immediately when opts.Interval > 0.
func NewTiered(hot, cold Store, opts TierOptions) *Tiered {
	s := &Tiered{
		hot:    hot,
		cold:   cold,
		opts:   opts,
		access: make(map[string]time.Time),
		dirty:  make(map[string]int64),
	}
	if opts.Interval > 0 {
		s.stop = make(chan struct{})
		go s.policyLoop(s.stop)
	}
	return s
}

func (s *Tiered) policyLoop(stop <-chan struct{}) {
	t := time.NewTicker(s.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			s.DemoteNow()
		}
	}
}

// Put implements Store.
func (s *Tiered) Put(key string, val []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.putLocked(key, val)
}

func (s *Tiered) putLocked(key string, val []byte) error {
	if s.opts.WriteBack {
		if err := s.hot.Put(key, val); err != nil {
			return err
		}
		if old, ok := s.dirty[key]; ok {
			s.dirtyBytes -= old
		} else if err := s.cold.Delete(key); err != nil {
			// Drop any demoted copy of the old value so the tiers never
			// hold two generations of one key.
			return err
		}
		s.dirty[key] = int64(len(val))
		s.dirtyBytes += int64(len(val))
	} else {
		// Cold first: a block is committed only once the durable tier
		// holds it; the hot copy is a pure read accelerator.
		if err := s.cold.Put(key, val); err != nil {
			return err
		}
		if err := s.hot.Put(key, val); err != nil {
			return err
		}
	}
	s.access[key] = time.Now()
	s.evictLocked()
	return nil
}

// PutWriter implements Store: frames assemble locally and land through
// the tier write path in one shot on Commit, so neither tier ever
// holds a partial block.
func (s *Tiered) PutWriter(key string) (BlockWriter, error) {
	return newBufWriter(func(buf []byte) error {
		return s.Put(key, buf)
	}), nil
}

// Get implements Store, promoting on a hot miss.
func (s *Tiered) Get(key string) ([]byte, error) {
	if val, err := s.hot.Get(key); err == nil {
		s.hotHits.Add(1)
		s.touch(key)
		return val, nil
	} else if err != ErrNotFound {
		return nil, err
	}
	val, err := s.cold.Get(key)
	if err != nil {
		return nil, err
	}
	s.coldHits.Add(1)
	s.promote(key, val)
	return val, nil
}

// GetRange implements Store. A cold hit promotes the whole block —
// the access pattern that demoted it was cold, the one reading it back
// is likely sequential over the block — then serves the range from the
// promoted copy.
func (s *Tiered) GetRange(key string, off, length int64) ([]byte, error) {
	if val, err := s.hot.GetRange(key, off, length); err == nil {
		s.hotHits.Add(1)
		s.touch(key)
		return val, nil
	} else if err != ErrNotFound {
		return nil, err
	}
	val, err := s.cold.Get(key)
	if err != nil {
		return nil, err
	}
	s.coldHits.Add(1)
	s.promote(key, val)
	o, l := clampRange(int64(len(val)), off, length)
	return append([]byte(nil), val[o:o+l]...), nil
}

func (s *Tiered) touch(key string) {
	s.mu.Lock()
	if _, ok := s.access[key]; ok {
		s.access[key] = time.Now()
	}
	s.mu.Unlock()
}

// promote installs a cold block's value in the hot tier. Best-effort:
// a full hot tier or a raced delete leaves the read correct either way.
func (s *Tiered) promote(key string, val []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.cold.Has(key) {
		return // deleted while we were reading; do not resurrect it
	}
	if err := s.hot.Put(key, val); err != nil {
		return
	}
	s.access[key] = time.Now()
	s.promotions.Add(1)
	s.evictLocked()
}

// Has implements Store: a block in either tier is present.
func (s *Tiered) Has(key string) bool {
	return s.hot.Has(key) || s.cold.Has(key)
}

// Delete implements Store, removing the key from both tiers.
func (s *Tiered) Delete(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.forgetLocked(key)
	return errors.Join(s.hot.Delete(key), s.cold.Delete(key))
}

func (s *Tiered) forgetLocked(key string) {
	delete(s.access, key)
	if sz, ok := s.dirty[key]; ok {
		s.dirtyBytes -= sz
		delete(s.dirty, key)
	}
}

// DeletePrefix implements Store: the sweep spans both tiers, so GC
// reclaims demoted blocks too. The count is distinct logical keys.
func (s *Tiered) DeletePrefix(prefix string) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys, err := s.keysLocked(prefix)
	if err != nil {
		return 0, err
	}
	for _, k := range keys {
		s.forgetLocked(k)
	}
	if _, err := s.hot.DeletePrefix(prefix); err != nil {
		return 0, err
	}
	if _, err := s.cold.DeletePrefix(prefix); err != nil {
		return 0, err
	}
	return len(keys), nil
}

// Keys implements Store: the union of both tiers, each key once —
// block reports list demoted blocks, so the repair plane never
// re-replicates a block for merely being cold.
func (s *Tiered) Keys(prefix string) ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.keysLocked(prefix)
}

func (s *Tiered) keysLocked(prefix string) ([]string, error) {
	hotKeys, err := s.hot.Keys(prefix)
	if err != nil {
		return nil, err
	}
	coldKeys, err := s.cold.Keys(prefix)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool, len(hotKeys)+len(coldKeys))
	out := make([]string, 0, len(coldKeys))
	for _, set := range [][]string{coldKeys, hotKeys} {
		for _, k := range set {
			if !seen[k] {
				seen[k] = true
				out = append(out, k)
			}
		}
	}
	return out, nil
}

// Stats implements Store. Items/Bytes count the logical contents (cold
// holds everything except unflushed write-back blocks); Tiers breaks
// down physical occupancy.
func (s *Tiered) Stats() Stats {
	// Snapshot under the mutation lock so a concurrent demotion cannot
	// move a block between the cold snapshot and the dirty count.
	s.mu.Lock()
	hotSt := s.hot.Stats()
	coldSt := s.cold.Stats()
	st := Stats{
		Items: coldSt.Items + int64(len(s.dirty)),
		Bytes: coldSt.Bytes + s.dirtyBytes,
	}
	s.mu.Unlock()
	st.Tiers = []TierStat{
		{Name: "hot", Items: hotSt.Items, Bytes: hotSt.Bytes},
		{Name: "cold", Items: coldSt.Items, Bytes: coldSt.Bytes},
	}
	return st
}

// TierStats returns each tier's physical occupancy.
func (s *Tiered) TierStats() (hot, cold Stats) {
	return s.hot.Stats(), s.cold.Stats()
}

// Counters snapshots the tier traffic counters.
func (s *Tiered) Counters() TierCounters {
	return TierCounters{
		HotHits:    s.hotHits.Load(),
		ColdHits:   s.coldHits.Load(),
		Promotions: s.promotions.Load(),
		Demotions:  s.demotions.Load(),
	}
}

// DemoteNow runs one policy pass synchronously and reports how many
// blocks it demoted: first every hot block idle for DemoteAfter or
// longer (oldest first), then — when MaxHotBytes bounds the hot tier —
// least-recently-used blocks until the tier fits. Dirty write-back
// blocks are flushed to cold before their hot copy is dropped.
func (s *Tiered) DemoteNow() (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cutoff := time.Now().Add(-s.opts.DemoteAfter)
	type aged struct {
		key string
		at  time.Time
	}
	byAge := make([]aged, 0, len(s.access))
	for k, at := range s.access {
		byAge = append(byAge, aged{k, at})
	}
	sort.Slice(byAge, func(i, j int) bool { return byAge[i].at.Before(byAge[j].at) })

	n := 0
	rest := byAge[:0]
	for _, a := range byAge {
		if a.at.After(cutoff) {
			rest = append(rest, a)
			continue
		}
		if err := s.demoteLocked(a.key); err != nil {
			return n, err
		}
		n++
	}
	if s.opts.MaxHotBytes > 0 {
		st := s.hot.Stats()
		for _, a := range rest {
			if st.Bytes <= s.opts.MaxHotBytes {
				break
			}
			sz, err := s.sizeOf(a.key)
			if err != nil {
				return n, err
			}
			if err := s.demoteLocked(a.key); err != nil {
				return n, err
			}
			st.Bytes -= sz
			n++
		}
	}
	return n, nil
}

// evictLocked demotes least-recently-used blocks until the hot tier is
// back under MaxHotBytes (called after every hot insert).
func (s *Tiered) evictLocked() {
	if s.opts.MaxHotBytes <= 0 {
		return
	}
	st := s.hot.Stats()
	for st.Bytes > s.opts.MaxHotBytes && len(s.access) > 0 {
		oldest, at := "", time.Time{}
		for k, t := range s.access {
			if oldest == "" || t.Before(at) {
				oldest, at = k, t
			}
		}
		sz, err := s.sizeOf(oldest)
		if err != nil || s.demoteLocked(oldest) != nil {
			return // eviction is best-effort; the next pass retries
		}
		st.Bytes -= sz
	}
}

func (s *Tiered) sizeOf(key string) (int64, error) {
	val, err := s.hot.Get(key)
	if err == ErrNotFound {
		return 0, nil
	}
	return int64(len(val)), err
}

// demoteLocked drops one block's hot copy, flushing it to cold first
// when it is dirty. Caller holds s.mu.
func (s *Tiered) demoteLocked(key string) error {
	if _, dirty := s.dirty[key]; dirty {
		val, err := s.hot.Get(key)
		if err == ErrNotFound {
			s.forgetLocked(key)
			return nil
		}
		if err != nil {
			return err
		}
		if err := s.cold.Put(key, val); err != nil {
			return err // keep it hot and dirty; the next pass retries
		}
		s.dirtyBytes -= s.dirty[key]
		delete(s.dirty, key)
	}
	if err := s.hot.Delete(key); err != nil {
		return err
	}
	delete(s.access, key)
	s.demotions.Add(1)
	return nil
}

// Close implements Store: stops the policy loop and closes both tiers.
func (s *Tiered) Close() error {
	s.mu.Lock()
	if s.stop != nil {
		close(s.stop)
		s.stop = nil
	}
	s.mu.Unlock()
	return errors.Join(s.hot.Close(), s.cold.Close())
}
