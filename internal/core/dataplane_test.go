package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"blobseer/internal/mdtree"
	"blobseer/internal/placement"
	"blobseer/internal/pmanager"
	"blobseer/internal/provider"
	"blobseer/internal/rpc"
	"blobseer/internal/store"
	"blobseer/internal/vmanager"
)

// These white-box tests run the client against a hand-built in-process
// deployment instead of package cluster (which imports core and would
// cycle). That also lets them wrap the transport and the stores with
// counters — the instruments for byte-accounting and rotation claims.

// countingConn counts bytes the client writes (its egress).
type countingConn struct {
	net.Conn
	sent *atomic.Int64
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.sent.Add(int64(n))
	return n, err
}

// countingStore counts block reads served by one provider.
type countingStore struct {
	store.Store
	gets atomic.Int64
}

func (c *countingStore) GetRange(key string, off, length int64) ([]byte, error) {
	c.gets.Add(1)
	return c.Store.GetRange(key, off, length)
}

type miniDeploy struct {
	net    *rpc.InprocNetwork
	vmAddr string
	pmAddr string
	// meta is the version manager's (repair) view of the metadata
	// store; clientMeta is what clients write through — tests may wrap
	// it with failure injection without breaking abort repair.
	meta       mdtree.Store
	clientMeta mdtree.Store
	provStore  []*countingStore
}

// startMini deploys vmanager + pmanager + nProv chain-capable providers
// over an inproc network and returns the fabric.
func startMini(t *testing.T, nProv int, meta mdtree.Store) *miniDeploy {
	t.Helper()
	return startMiniWith(t, nProv, meta, true)
}

func startMiniWith(t *testing.T, nProv int, meta mdtree.Store, withForwarder bool) *miniDeploy {
	t.Helper()
	d := &miniDeploy{net: rpc.NewInprocNetwork(), meta: meta, clientMeta: meta}
	serve := func(name string, mux *rpc.Mux) string {
		lis, err := d.net.Listen(name)
		if err != nil {
			t.Fatal(err)
		}
		srv := rpc.NewServer(mux)
		go srv.Serve(lis)
		t.Cleanup(func() { srv.Close() })
		return name
	}
	d.vmAddr = serve("vmanager", vmanager.NewService(vmanager.NewState(vmanager.MetadataRepairer(meta))).Mux())
	pmState := pmanager.NewState(placement.NewRoundRobin())
	d.pmAddr = serve("pmanager", pmanager.NewService(pmState).Mux())

	// Providers forward over their own pool, so the client pool's
	// byte counters see client traffic only.
	provPool := rpc.NewPool(d.net.Dial)
	t.Cleanup(provPool.Close)
	for i := 0; i < nProv; i++ {
		cs := &countingStore{Store: store.NewMemStore()}
		d.provStore = append(d.provStore, cs)
		var opts []provider.Option
		if withForwarder {
			opts = append(opts, provider.WithForwarder(provPool))
		}
		addr := serve(fmt.Sprintf("provider-%d", i), provider.NewService(cs, opts...).Mux())
		pmState.Register(addr, fmt.Sprintf("host-%d", i))
	}
	return d
}

// TestChainUnsupportedHeadIsCached: providers without a forwarder (a
// mixed-version cluster) answer CodeChainUnsupported; the client must
// fall back per block, remember those heads, and stop attempting
// doomed chains while the data still reaches every replica.
func TestChainUnsupportedHeadIsCached(t *testing.T) {
	const blockSize = int64(4 * 1024)
	d := startMiniWith(t, 2, mdtree.NewMemStore(), false)
	c, _ := d.newClient(t, DataPlaneChained)
	ctx := context.Background()
	m, err := c.Create(ctx, blockSize, 2)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{3}, int(4*blockSize))
	v, err := c.Append(ctx, m.ID, payload)
	if err != nil {
		t.Fatalf("write against forwarderless providers did not fall back: %v", err)
	}
	if n := c.ChainFallbacks(); n != 4 {
		t.Errorf("ChainFallbacks = %d, want 4 (one per block)", n)
	}
	c.mu.Lock()
	cached := len(c.noChain)
	c.mu.Unlock()
	if cached == 0 {
		t.Error("no chain-unsupported heads cached after fallbacks")
	}
	got, err := c.Read(ctx, m.ID, v, 0, int64(len(payload)))
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("read back: %v", err)
	}
	// Replication still happened through the fallback.
	for i, cs := range d.provStore {
		if st := cs.Stats(); st.Items != 4 {
			t.Errorf("provider %d holds %d blocks, want 4", i, st.Items)
		}
	}
}

// newClient returns a core client whose egress bytes accumulate in the
// returned counter.
func (d *miniDeploy) newClient(t *testing.T, plane DataPlane) (*Client, *atomic.Int64) {
	t.Helper()
	sent := new(atomic.Int64)
	pool := rpc.NewPool(func(addr string) (net.Conn, error) {
		conn, err := d.net.Dial(addr)
		if err != nil {
			return nil, err
		}
		return &countingConn{Conn: conn, sent: sent}, nil
	})
	t.Cleanup(pool.Close)
	return NewClient(Config{
		Pool:      pool,
		VMAddr:    d.vmAddr,
		PMAddr:    d.pmAddr,
		MetaStore: d.clientMeta,
		DataPlane: plane,
	}), sent
}

// TestChainedWriteClientEgressBytes pins the tentpole claim on the real
// client stack: a chained write of N blocks at replication R costs the
// client ~N blocks of uplink, where the fan-out plane pays ~R×N.
func TestChainedWriteClientEgressBytes(t *testing.T) {
	const (
		blockSize = int64(64 * 1024)
		nBlocks   = 4
		repl      = 3
	)
	payloadBytes := int64(nBlocks) * blockSize

	run := func(plane DataPlane) int64 {
		d := startMini(t, 4, mdtree.NewMemStore())
		c, sent := d.newClient(t, plane)
		ctx := context.Background()
		m, err := c.Create(ctx, blockSize, repl)
		if err != nil {
			t.Fatal(err)
		}
		payload := bytes.Repeat([]byte{0x5a}, int(payloadBytes))
		v, err := c.Append(ctx, m.ID, payload)
		if err != nil {
			t.Fatal(err)
		}
		// The data must actually be replicated and readable either way.
		got, err := c.Read(ctx, m.ID, v, 0, payloadBytes)
		if err != nil || !bytes.Equal(got, payload) {
			t.Fatalf("read back: %v", err)
		}
		return sent.Load()
	}

	chained := run(DataPlaneChained)
	fanout := run(DataPlaneFanout)

	// Chained: one copy of the payload plus protocol overhead. The read
	// and control RPCs ride the same counter, so allow generous slack —
	// generous is still far below a second payload copy.
	slack := payloadBytes / 2
	if chained < payloadBytes || chained > payloadBytes+slack {
		t.Errorf("chained client egress = %d, want ~%d (+%d slack)", chained, payloadBytes, slack)
	}
	if fanout < repl*payloadBytes {
		t.Errorf("fanout client egress = %d, want >= %d (R×payload)", fanout, repl*payloadBytes)
	}
	t.Logf("client egress: chained %d bytes, fanout %d bytes (payload %d, R=%d)",
		chained, fanout, payloadBytes, repl)
}

// TestChainedReplicasHoldIdenticalBlocks verifies every replica in the
// chain ends up with byte-identical committed blocks.
func TestChainedReplicasHoldIdenticalBlocks(t *testing.T) {
	const blockSize = int64(8 * 1024)
	d := startMini(t, 3, mdtree.NewMemStore())
	c, _ := d.newClient(t, DataPlaneChained)
	ctx := context.Background()
	m, err := c.Create(ctx, blockSize, 3)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{7}, int(4*blockSize))
	if _, err := c.Append(ctx, m.ID, payload); err != nil {
		t.Fatal(err)
	}
	for i, cs := range d.provStore {
		st := cs.Stats()
		if st.Items != 4 || st.Bytes != 4*blockSize {
			t.Errorf("provider %d stats = %+v, want 4 items / %d bytes", i, st, 4*blockSize)
		}
	}
}

// TestReadRotationSpreadsAcrossReplicas pins that repeated reads of the
// same block do not serialize on the first replica address.
func TestReadRotationSpreadsAcrossReplicas(t *testing.T) {
	const blockSize = int64(4 * 1024)
	d := startMini(t, 2, mdtree.NewMemStore())
	c, _ := d.newClient(t, DataPlaneChained)
	ctx := context.Background()
	m, err := c.Create(ctx, blockSize, 2)
	if err != nil {
		t.Fatal(err)
	}
	v, err := c.Append(ctx, m.ID, make([]byte, blockSize))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := c.Read(ctx, m.ID, v, 0, blockSize); err != nil {
			t.Fatal(err)
		}
	}
	a, b := d.provStore[0].gets.Load(), d.provStore[1].gets.Load()
	if a == 0 || b == 0 {
		t.Errorf("8 reads of a 2-replica block hit providers %d/%d times; rotation should spread them", a, b)
	}
}

// failingMetaStore fails every Put while broken — the injection for
// metadata-build failure mid-write.
type failingMetaStore struct {
	*mdtree.MemStore
	broken atomic.Bool
}

func (f *failingMetaStore) Put(ctx context.Context, n mdtree.Node) error {
	if f.broken.Load() {
		return errors.New("injected metadata failure")
	}
	return f.MemStore.Put(ctx, n)
}

func (f *failingMetaStore) PutBatch(ctx context.Context, nodes []mdtree.Node) error {
	if f.broken.Load() {
		return errors.New("injected metadata failure")
	}
	return f.MemStore.PutBatch(ctx, nodes)
}

// TestFailedWriteAbortsAssignedVersion pins the version-leak fix: when
// a write dies after AssignVersion, doWrite must abort the version so
// the publication line is repaired immediately — a later write must
// publish without waiting for any janitor.
func TestFailedWriteAbortsAssignedVersion(t *testing.T) {
	const blockSize = int64(4 * 1024)
	inner := mdtree.NewMemStore()
	meta := &failingMetaStore{MemStore: inner}
	d := startMini(t, 2, inner) // the VM repairs through the healthy view
	d.clientMeta = meta
	c, _ := d.newClient(t, DataPlaneChained)
	ctx := context.Background()
	m, err := c.Create(ctx, blockSize, 1)
	if err != nil {
		t.Fatal(err)
	}

	meta.broken.Store(true)
	if _, err := c.Append(ctx, m.ID, make([]byte, blockSize)); err == nil {
		t.Fatal("write with broken metadata store succeeded")
	}
	meta.broken.Store(false)

	// No deployment janitor runs here: only doWrite's own abort can
	// have repaired the line, so this publishes (or the test hangs on
	// the stalled version and times out below).
	v, err := c.Append(ctx, m.ID, make([]byte, blockSize))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.WaitPublished(ctx, m.ID, v, 2*time.Second); err != nil {
		t.Fatalf("version after failed write never published: %v", err)
	}
	// The failed write's blocks were garbage collected.
	var items int64
	for _, cs := range d.provStore {
		items += cs.Stats().Items
	}
	if items != 1 {
		t.Errorf("%d blocks on providers, want 1 (failed write's orphans GC'd)", items)
	}
}

// TestChainOrderLeadsWithLocalProvider pins the chain-head choice: the
// provider co-hosted with the client must lead the chain.
func TestChainOrderLeadsWithLocalProvider(t *testing.T) {
	d := startMini(t, 3, mdtree.NewMemStore())
	pool := rpc.NewPool(d.net.Dial)
	t.Cleanup(pool.Close)
	c := NewClient(Config{
		Pool: pool, VMAddr: d.vmAddr, PMAddr: d.pmAddr,
		MetaStore: d.meta, Host: "host-1",
	})
	ctx := context.Background()
	got := c.chainOrder(ctx, []string{"provider-0", "provider-1", "provider-2"})
	want := []string{"provider-1", "provider-0", "provider-2"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("chainOrder = %v, want %v", got, want)
		}
	}
	// No co-hosted provider: order untouched.
	c2 := NewClient(Config{
		Pool: pool, VMAddr: d.vmAddr, PMAddr: d.pmAddr,
		MetaStore: d.meta, Host: "elsewhere",
	})
	got = c2.chainOrder(ctx, []string{"provider-2", "provider-0"})
	if got[0] != "provider-2" || got[1] != "provider-0" {
		t.Fatalf("chainOrder without local replica = %v", got)
	}
}
