package core

import (
	"context"
	"fmt"

	"blobseer/internal/blob"
	"blobseer/internal/mdtree"
)

// GCStats summarizes one garbage-collection sweep.
type GCStats struct {
	From, To    blob.Version // versions discarded: [From, To)
	NodesFreed  int          // metadata tree nodes deleted
	BlocksFreed int          // data block replicas deleted
}

// GC discards every snapshot version below keep and reclaims the
// storage no kept version can reach (Section III-A1's version
// garbaging). The sweep is differential-aware: a block written by a
// pruned version survives if any kept snapshot still reads it through
// a shared subtree; only nodes and blocks hidden by later writes (or
// bridge nodes reachable solely from pruned roots) are deleted.
//
// The prune point is advanced at the version manager first, so
// concurrent readers of kept versions are never affected; a reader
// pinned below keep loses its snapshot — the paper's stated contract
// for garbaged versions.
func (c *Client) GC(ctx context.Context, id blob.ID, keep blob.Version) (GCStats, error) {
	deleter, ok := c.meta.(mdtree.Deleter)
	if !ok {
		return GCStats{}, fmt.Errorf("core: metadata store %T cannot delete nodes", c.meta)
	}
	m, err := c.Meta(ctx, id)
	if err != nil {
		return GCStats{}, err
	}
	// Full history: the liveness analysis needs every descriptor up to
	// the prune point (descriptors themselves are never discarded).
	descs, err := c.vm.History(ctx, id, 0)
	if err != nil {
		return GCStats{}, err
	}
	hist := &blob.History{}
	if err := hist.Extend(descs); err != nil {
		return GCStats{}, err
	}

	from, err := c.vm.Prune(ctx, id, keep)
	if err != nil {
		return GCStats{}, err
	}
	// Pruned versions must stop resolving through the size cache:
	// flat reads of a garbaged version report the version manager's
	// ErrPruned, not a stale read against deleted nodes.
	c.mu.Lock()
	for k := range c.sizes {
		if k.id == id && k.v < keep {
			delete(c.sizes, k)
		}
	}
	c.mu.Unlock()
	st := GCStats{From: from, To: keep}
	for k := from; k < keep; k++ {
		d, ok := hist.Desc(k)
		if !ok {
			return st, fmt.Errorf("core: gc: history missing version %d", k)
		}
		dead, err := mdtree.DeadNodes(m, hist, k, keep)
		if err != nil {
			return st, fmt.Errorf("core: gc of version %d: %w", k, err)
		}
		for _, dn := range dead {
			if dn.Leaf && !d.Aborted {
				// Free the data block first: once the leaf is gone there
				// is no other record of where the payload lives.
				node, err := c.meta.Get(ctx, dn.ID)
				if err == nil {
					for _, addr := range node.Block.Providers {
						if err := c.prov.Delete(ctx, addr, node.Block.Key); err == nil {
							st.BlocksFreed++
						}
					}
					// Repair copies and their overlay record go with the
					// block: a dangling relocation entry would point
					// readers at storage the providers already reclaimed.
					if c.overlay != nil {
						extras, oerr := c.overlay.Get(ctx, node.Block.Key)
						if oerr == nil {
							for _, addr := range extras {
								if err := c.prov.Delete(ctx, addr, node.Block.Key); err == nil {
									st.BlocksFreed++
								}
							}
							_ = c.overlay.Remove(ctx, node.Block.Key)
						}
					}
				}
			}
			if err := deleter.Delete(ctx, dn.ID); err != nil {
				return st, fmt.Errorf("core: gc: delete node %s: %w", dn.ID.Key(), err)
			}
			st.NodesFreed++
		}
	}
	return st, nil
}
