package core_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"blobseer/internal/blob"
	"blobseer/internal/cluster"
	"blobseer/internal/core"
	"blobseer/internal/util"
)

const B = 4 * 1024 // block size for these tests

func startCluster(t *testing.T, cfg cluster.Config) *cluster.BlobSeer {
	t.Helper()
	if cfg.BlockSize == 0 {
		cfg.BlockSize = B
	}
	c, err := cluster.StartBlobSeer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	return c
}

func pattern(tag byte, n int) []byte {
	d := make([]byte, n)
	for i := range d {
		d[i] = tag ^ byte(i*31)
	}
	return d
}

func TestWriteReadRoundTrip(t *testing.T) {
	cl := startCluster(t, cluster.Config{DataProviders: 4, MetaProviders: 2})
	c := cl.NewClient("")
	ctx := context.Background()

	m, err := c.Create(ctx, B, 1)
	if err != nil {
		t.Fatal(err)
	}
	data := pattern('a', 3*B+100) // 4 blocks, partial tail
	v, err := c.Write(ctx, m.ID, 0, data)
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 {
		t.Errorf("version = %d", v)
	}
	got, err := c.Read(ctx, m.ID, blob.NoVersion, 0, int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("read mismatch: %d vs %d bytes", len(got), len(data))
	}
}

func TestReadSubRanges(t *testing.T) {
	cl := startCluster(t, cluster.Config{})
	c := cl.NewClient("")
	ctx := context.Background()
	m, _ := c.Create(ctx, B, 1)
	data := pattern('r', 4*B)
	if _, err := c.Write(ctx, m.ID, 0, data); err != nil {
		t.Fatal(err)
	}
	cases := []struct{ off, n int64 }{
		{0, 10},         // head
		{B - 5, 10},     // straddles block boundary
		{2*B + 7, B},    // middle, unaligned
		{4*B - 10, 100}, // clamped at EOF
		{4 * B, 10},     // past EOF -> empty
		{0, 4 * B},      // everything
		{3 * B, 1},      // single byte
	}
	for _, cse := range cases {
		got, err := c.Read(ctx, m.ID, blob.NoVersion, cse.off, cse.n)
		if err != nil {
			t.Fatalf("read(%d,%d): %v", cse.off, cse.n, err)
		}
		end := cse.off + cse.n
		if end > int64(len(data)) {
			end = int64(len(data))
		}
		var want []byte
		if cse.off < int64(len(data)) {
			want = data[cse.off:end]
		}
		if !bytes.Equal(got, want) {
			t.Errorf("read(%d,%d) = %d bytes, want %d", cse.off, cse.n, len(got), len(want))
		}
	}
}

func TestVersioningRollbackAndOldReads(t *testing.T) {
	cl := startCluster(t, cluster.Config{})
	c := cl.NewClient("")
	ctx := context.Background()
	m, _ := c.Create(ctx, B, 1)

	v1Data := pattern('1', 2*B)
	v1, err := c.Write(ctx, m.ID, 0, v1Data)
	if err != nil {
		t.Fatal(err)
	}
	v2Data := pattern('2', B)
	v2, err := c.Write(ctx, m.ID, 0, v2Data) // overwrite block 0
	if err != nil {
		t.Fatal(err)
	}
	// Latest reflects v2.
	got, _ := c.Read(ctx, m.ID, blob.NoVersion, 0, 2*B)
	want := append(append([]byte(nil), v2Data...), v1Data[B:]...)
	if !bytes.Equal(got, want) {
		t.Error("latest read mismatch")
	}
	// v1 is still fully readable (rollback / time travel).
	got, err = c.Read(ctx, m.ID, v1, 0, 2*B)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, v1Data) {
		t.Error("old version read mismatch")
	}
	_ = v2
}

func TestAppendsGrowBlob(t *testing.T) {
	cl := startCluster(t, cluster.Config{})
	c := cl.NewClient("")
	ctx := context.Background()
	m, _ := c.Create(ctx, B, 1)

	var want []byte
	for i := 0; i < 5; i++ {
		chunk := pattern(byte('a'+i), B)
		if _, err := c.Append(ctx, m.ID, chunk); err != nil {
			t.Fatal(err)
		}
		want = append(want, chunk...)
	}
	v, size, err := c.Latest(ctx, m.ID)
	if err != nil || v != 5 || size != 5*B {
		t.Fatalf("Latest = v%d size %d, %v", v, size, err)
	}
	got, _ := c.Read(ctx, m.ID, blob.NoVersion, 0, size)
	if !bytes.Equal(got, want) {
		t.Error("append accumulation mismatch")
	}
}

func TestConcurrentAppendsAllLand(t *testing.T) {
	// Figure 5's semantics: N concurrent appenders, every chunk lands
	// exactly once, snapshots linearize.
	cl := startCluster(t, cluster.Config{DataProviders: 8, MetaProviders: 3})
	ctx := context.Background()
	setup := cl.NewClient("")
	m, _ := setup.Create(ctx, B, 1)

	const N = 16
	var wg sync.WaitGroup
	errs := make(chan error, N)
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := cl.NewClient("") // each appender is its own client
			chunk := bytes.Repeat([]byte{byte(i + 1)}, B)
			if _, err := c.Append(ctx, m.ID, chunk); err != nil {
				errs <- fmt.Errorf("appender %d: %w", i, err)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	v, size, err := setup.WaitPublished(ctx, m.ID, N, 10*time.Second)
	if err != nil || v != N || size != N*B {
		t.Fatalf("after appends: v%d size %d, %v", v, size, err)
	}
	got, err := setup.Read(ctx, m.ID, blob.NoVersion, 0, size)
	if err != nil {
		t.Fatal(err)
	}
	// Every appender's chunk appears exactly once, each block uniform.
	seen := map[byte]int{}
	for b := 0; b < N; b++ {
		blockVal := got[b*B]
		for j := 1; j < B; j++ {
			if got[b*B+j] != blockVal {
				t.Fatalf("block %d not uniform", b)
			}
		}
		seen[blockVal]++
	}
	for i := 1; i <= N; i++ {
		if seen[byte(i)] != 1 {
			t.Errorf("appender %d's chunk appears %d times", i, seen[byte(i)])
		}
	}
}

func TestConcurrentWritersDisjointBlocks(t *testing.T) {
	// Concurrent writes at different offsets of the same blob — the
	// write/write concurrency HDFS cannot do at all.
	cl := startCluster(t, cluster.Config{DataProviders: 8})
	ctx := context.Background()
	setup := cl.NewClient("")
	m, _ := setup.Create(ctx, B, 1)
	// Pre-size the blob so writers overwrite disjoint ranges.
	if _, err := setup.Write(ctx, m.ID, 0, make([]byte, 8*B)); err != nil {
		t.Fatal(err)
	}

	const N = 8
	var wg sync.WaitGroup
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := cl.NewClient("")
			data := bytes.Repeat([]byte{byte('A' + i)}, B)
			if _, err := c.Write(ctx, m.ID, int64(i)*B, data); err != nil {
				t.Errorf("writer %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	if _, _, err := setup.WaitPublished(ctx, m.ID, N+1, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	got, err := setup.Read(ctx, m.ID, blob.NoVersion, 0, 8*B)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < N; i++ {
		for j := 0; j < B; j++ {
			if got[i*B+j] != byte('A'+i) {
				t.Fatalf("block %d corrupted at %d: %c", i, j, got[i*B+j])
			}
		}
	}
}

func TestReadersDecoupledFromWriters(t *testing.T) {
	// A reader pinned to version 1 sees identical data regardless of
	// how many writers run concurrently.
	cl := startCluster(t, cluster.Config{DataProviders: 6})
	ctx := context.Background()
	c := cl.NewClient("")
	m, _ := c.Create(ctx, B, 1)
	v1Data := pattern('x', 2*B)
	if _, err := c.Write(ctx, m.ID, 0, v1Data); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // writer churn
		defer wg.Done()
		w := cl.NewClient("")
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := w.Write(ctx, m.ID, 0, pattern(byte(i), B)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < 20; i++ {
		got, err := c.Read(ctx, m.ID, 1, 0, 2*B)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, v1Data) {
			t.Fatal("pinned-version read changed under concurrent writes")
		}
	}
	close(stop)
	wg.Wait()
}

func TestReadUnpublishedVersionRejected(t *testing.T) {
	cl := startCluster(t, cluster.Config{})
	c := cl.NewClient("")
	ctx := context.Background()
	m, _ := c.Create(ctx, B, 1)
	if _, err := c.Read(ctx, m.ID, 3, 0, 10); !errors.Is(err, core.ErrNotPublished) {
		t.Errorf("err = %v, want ErrNotPublished", err)
	}
}

func TestEmptyBlobReads(t *testing.T) {
	cl := startCluster(t, cluster.Config{})
	c := cl.NewClient("")
	ctx := context.Background()
	m, _ := c.Create(ctx, B, 1)
	got, err := c.Read(ctx, m.ID, blob.NoVersion, 0, 100)
	if err != nil || got != nil {
		t.Errorf("empty blob read = %v, %v", got, err)
	}
}

func TestUnalignedWriteRejectedClientSide(t *testing.T) {
	cl := startCluster(t, cluster.Config{})
	c := cl.NewClient("")
	ctx := context.Background()
	m, _ := c.Create(ctx, B, 1)
	if _, err := c.Write(ctx, m.ID, 7, make([]byte, B)); err == nil {
		t.Error("unaligned write accepted")
	}
	if _, err := c.Write(ctx, m.ID, 0, nil); err == nil {
		t.Error("empty write accepted")
	}
}

func TestReplicationSurvivesProviderLoss(t *testing.T) {
	cl := startCluster(t, cluster.Config{DataProviders: 3})
	ctx := context.Background()
	c := cl.NewClient("")
	m, _ := c.Create(ctx, B, 2) // replication 2
	data := pattern('z', 2*B)
	if _, err := c.Write(ctx, m.ID, 0, data); err != nil {
		t.Fatal(err)
	}
	// Kill one provider's contents entirely.
	victim := cl.ProviderAddrs[0]
	cl.ProviderService(victim).Store().DeletePrefix("")
	got, err := c.Read(ctx, m.ID, blob.NoVersion, 0, 2*B)
	if err != nil {
		t.Fatalf("read after replica loss: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Error("read mismatch after replica loss")
	}
}

func TestLocationsExposeDataLayout(t *testing.T) {
	cl := startCluster(t, cluster.Config{DataProviders: 4})
	ctx := context.Background()
	c := cl.NewClient("")
	m, _ := c.Create(ctx, B, 1)
	if _, err := c.Write(ctx, m.ID, 0, pattern('L', 4*B)); err != nil {
		t.Fatal(err)
	}
	locs, err := c.Locations(ctx, m.ID, blob.NoVersion, 0, 4*B)
	if err != nil {
		t.Fatal(err)
	}
	if len(locs) != 4 {
		t.Fatalf("got %d locations", len(locs))
	}
	hostSeen := map[string]bool{}
	for i, l := range locs {
		if l.Off != int64(i)*B || l.Len != B {
			t.Errorf("loc %d = [%d,%d)", i, l.Off, l.Off+l.Len)
		}
		if len(l.Providers) != 1 || len(l.Hosts) != 1 || l.Hosts[0] == "" {
			t.Errorf("loc %d providers/hosts = %v/%v", i, l.Providers, l.Hosts)
		}
		hostSeen[l.Hosts[0]] = true
	}
	// Round-robin placement: 4 blocks on 4 distinct hosts.
	if len(hostSeen) != 4 {
		t.Errorf("blocks on %d hosts, want 4", len(hostSeen))
	}
}

func TestWriteFailsCleanlyWhenProvidersDie(t *testing.T) {
	cl := startCluster(t, cluster.Config{DataProviders: 2})
	ctx := context.Background()
	c := cl.NewClient("")
	m, _ := c.Create(ctx, B, 1)
	if _, err := c.Write(ctx, m.ID, 0, pattern('1', B)); err != nil {
		t.Fatal(err)
	}
	// Mark every provider dead: allocation must fail, and the blob
	// must remain intact at version 1.
	for _, addr := range cl.ProviderAddrs {
		cl.PMService().State().MarkDead(addr)
	}
	if _, err := c.Write(ctx, m.ID, 0, pattern('2', B)); err == nil {
		t.Fatal("write succeeded with no providers")
	}
	v, size, err := c.Latest(ctx, m.ID)
	if err != nil || v != 1 || size != B {
		t.Fatalf("blob damaged: v%d size %d %v", v, size, err)
	}
}

func TestWriteAcrossTCP(t *testing.T) {
	cl := startCluster(t, cluster.Config{DataProviders: 3, MetaProviders: 2, UseTCP: true})
	c := cl.NewClient("")
	ctx := context.Background()
	m, err := c.Create(ctx, B, 1)
	if err != nil {
		t.Fatal(err)
	}
	data := pattern('t', 2*B+17)
	if _, err := c.Write(ctx, m.ID, 0, data); err != nil {
		t.Fatal(err)
	}
	got, err := c.Read(ctx, m.ID, blob.NoVersion, 0, int64(len(data)))
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("TCP round trip failed: %v", err)
	}
}

func TestManyVersionsStressAgainstModel(t *testing.T) {
	cl := startCluster(t, cluster.Config{DataProviders: 5, MetaProviders: 3})
	c := cl.NewClient("")
	ctx := context.Background()
	m, _ := c.Create(ctx, B, 1)

	rng := util.NewSplitMix64(2026)
	var model []byte
	apply := func(off int64, data []byte) {
		end := off + int64(len(data))
		if end > int64(len(model)) {
			model = append(model, make([]byte, end-int64(len(model)))...)
		}
		copy(model[off:], data)
	}
	for i := 0; i < 25; i++ {
		sizeBlocks := int64(len(model)) / B
		var off int64
		var data []byte
		if rng.Intn(2) == 0 || sizeBlocks == 0 {
			// Block-multiple appends keep the EOF aligned so every
			// subsequent append stays legal (the BSFS layer handles
			// unaligned tails; core does not).
			data = pattern(byte(rng.Next()), int((1+rng.Int63n(3))*B))
			if _, err := c.Append(ctx, m.ID, data); err != nil {
				t.Fatalf("step %d append: %v", i, err)
			}
			off = int64(len(model))
		} else {
			off = rng.Int63n(sizeBlocks) * B
			n := (1 + rng.Int63n(2)) * B
			data = pattern(byte(rng.Next()), int(n))
			if _, err := c.Write(ctx, m.ID, off, data); err != nil {
				t.Fatalf("step %d write: %v", i, err)
			}
		}
		apply(off, data)
		got, err := c.Read(ctx, m.ID, blob.NoVersion, 0, int64(len(model)))
		if err != nil {
			t.Fatalf("step %d read: %v", i, err)
		}
		if !bytes.Equal(got, model) {
			t.Fatalf("step %d: state diverged from model", i)
		}
	}
	// One final partial append (legal: EOF is aligned) — the tail must
	// read back and further appends must be rejected.
	tail := pattern('T', B/3)
	if _, err := c.Append(ctx, m.ID, tail); err != nil {
		t.Fatalf("final partial append: %v", err)
	}
	apply(int64(len(model)), tail)
	got, err := c.Read(ctx, m.ID, blob.NoVersion, 0, int64(len(model)))
	if err != nil || !bytes.Equal(got, model) {
		t.Fatalf("final read mismatch: %v", err)
	}
	if _, err := c.Append(ctx, m.ID, []byte("x")); err == nil {
		t.Error("append onto unaligned EOF accepted by core")
	}
}
