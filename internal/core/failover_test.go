package core_test

import (
	"bytes"
	"context"
	"testing"

	"blobseer/internal/blob"
	"blobseer/internal/cluster"
	"blobseer/internal/mdtree"
	"blobseer/internal/util"
)

// TestReadFailsOverToReplica exercises Section VI-B's replication: with
// replication 2, losing the primary copy of every block (simulated by
// deleting the payloads from the primary provider's store) leaves all
// data readable through the surviving replicas.
func TestReadFailsOverToReplica(t *testing.T) {
	const block = int64(4 * util.KB)
	cl, err := cluster.StartBlobSeer(cluster.Config{
		DataProviders: 3,
		MetaProviders: 2,
		BlockSize:     block,
		Replication:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	ctx := context.Background()
	c := cl.NewClient("")
	m, err := c.Create(ctx, block, 2)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0xAB}, int(6*block))
	v, err := c.Append(ctx, m.ID, payload)
	if err != nil {
		t.Fatal(err)
	}

	// Every block must be on two distinct providers.
	extents, err := mdtree.Resolve(ctx, cl.MetaStore, m, v, int64(len(payload)),
		blob.Range{Off: 0, Len: int64(len(payload))})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range extents {
		if len(e.Block.Providers) != 2 {
			t.Fatalf("block %s has %d replicas, want 2", e.Block.Key, len(e.Block.Providers))
		}
		if e.Block.Providers[0] == e.Block.Providers[1] {
			t.Fatalf("block %s replicated onto the same provider", e.Block.Key)
		}
	}

	// Kill exactly the primary copy of every block (replica copies that
	// happen to live on the same providers stay).
	for _, e := range extents {
		st := cl.ProviderService(e.Block.Providers[0]).Store()
		if err := st.Delete(e.Block.Key.String()); err != nil {
			t.Fatal(err)
		}
	}

	got, err := c.Read(ctx, m.ID, v, 0, int64(len(payload)))
	if err != nil {
		t.Fatalf("read after primary loss: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("failover read returned wrong bytes")
	}
}

// TestWriteFallsBackWhenChainBreaks: a provider that errors mid-chain
// (a mixed-version or misbehaving hop) must not fail the write — the
// client falls back to per-replica fan-out, and every block still ends
// up on its full replica set.
func TestWriteFallsBackWhenChainBreaks(t *testing.T) {
	const block = int64(4 * util.KB)
	cl, err := cluster.StartBlobSeer(cluster.Config{
		DataProviders: 3,
		MetaProviders: 2,
		BlockSize:     block,
		Replication:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	ctx := context.Background()

	// Every provider refuses chained puts; plain puts still work.
	for _, addr := range cl.ProviderAddrs {
		cl.ProviderService(addr).BreakChain(true)
	}

	c := cl.NewClient("")
	m, err := c.Create(ctx, block, 2)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0x77}, int(4*block))
	v, err := c.Append(ctx, m.ID, payload)
	if err != nil {
		t.Fatalf("write through broken chain did not fall back: %v", err)
	}
	if n := c.ChainFallbacks(); n != 4 {
		t.Errorf("ChainFallbacks = %d, want 4 (one per block)", n)
	}

	// The fallback must have reached the full replica set: losing any
	// one copy of every block leaves the data readable.
	extents, err := mdtree.Resolve(ctx, cl.MetaStore, m, v, int64(len(payload)),
		blob.Range{Off: 0, Len: int64(len(payload))})
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range extents {
		if len(e.Block.Providers) != 2 {
			t.Fatalf("block %s has %d replicas, want 2", e.Block.Key, len(e.Block.Providers))
		}
		// Alternate which replica dies so both rotation positions see a
		// failure at some block.
		st := cl.ProviderService(e.Block.Providers[i%2]).Store()
		if err := st.Delete(e.Block.Key.String()); err != nil {
			t.Fatal(err)
		}
	}
	got, err := c.Read(ctx, m.ID, v, 0, int64(len(payload)))
	if err != nil {
		t.Fatalf("read after alternating replica loss: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("failover read returned wrong bytes")
	}
}

// TestReadRotationSurvivesAlternatingLoss: with replication 2 and the
// surviving copy alternating between the two replicas block by block,
// every rotation position must fail over to whichever replica still
// holds the block.
func TestReadRotationSurvivesAlternatingLoss(t *testing.T) {
	const block = int64(4 * util.KB)
	cl, err := cluster.StartBlobSeer(cluster.Config{
		DataProviders: 4,
		MetaProviders: 2,
		BlockSize:     block,
		Replication:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	ctx := context.Background()
	c := cl.NewClient("")
	m, err := c.Create(ctx, block, 2)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0xCD}, int(8*block))
	v, err := c.Append(ctx, m.ID, payload)
	if err != nil {
		t.Fatal(err)
	}
	extents, err := mdtree.Resolve(ctx, cl.MetaStore, m, v, int64(len(payload)),
		blob.Range{Off: 0, Len: int64(len(payload))})
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range extents {
		st := cl.ProviderService(e.Block.Providers[i%2]).Store()
		if err := st.Delete(e.Block.Key.String()); err != nil {
			t.Fatal(err)
		}
	}
	// Repeat the read so the rotation counter cycles through both
	// starting positions for every block.
	for i := 0; i < 4; i++ {
		got, err := c.Read(ctx, m.ID, v, 0, int64(len(payload)))
		if err != nil {
			t.Fatalf("read %d after alternating loss: %v", i, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("read %d returned wrong bytes", i)
		}
	}
}

// TestReadFailsWhenAllReplicasLost: with every copy gone, the read
// reports the failure instead of fabricating zeros.
func TestReadFailsWhenAllReplicasLost(t *testing.T) {
	const block = int64(4 * util.KB)
	cl, err := cluster.StartBlobSeer(cluster.Config{
		DataProviders: 3,
		BlockSize:     block,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	ctx := context.Background()
	c := cl.NewClient("")
	m, err := c.Create(ctx, block, 1)
	if err != nil {
		t.Fatal(err)
	}
	v, err := c.Append(ctx, m.ID, bytes.Repeat([]byte{1}, int(2*block)))
	if err != nil {
		t.Fatal(err)
	}
	for _, addr := range cl.ProviderAddrs {
		if _, err := cl.ProviderService(addr).Store().DeletePrefix(""); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Read(ctx, m.ID, v, 0, 2*block); err == nil {
		t.Fatal("read with all replicas lost should fail")
	}
}
