package core_test

import (
	"bytes"
	"context"
	"testing"

	"blobseer/internal/cluster"
	"blobseer/internal/util"
)

// TestWholeWriteFailsAndOrphansAreGCd pins the paper's failure rule
// ("if writing of a block fails, then the whole write fails"): with
// one provider registered at an unreachable address, a multi-block
// write fails as a unit, no version is consumed, the blocks that *did*
// land are garbage-collected by nonce, and the blob remains fully
// usable afterwards.
func TestWholeWriteFailsAndOrphansAreGCd(t *testing.T) {
	const block = int64(4 * util.KB)
	cl, err := cluster.StartBlobSeer(cluster.Config{
		DataProviders: 3,
		BlockSize:     block,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	ctx := context.Background()

	// A phantom provider: registered for placement, but nothing
	// listens there, so every block put to it fails.
	cl.PMService().State().Register("phantom-provider", "host-ghost")

	c := cl.NewClient("")
	m, err := c.Create(ctx, block, 1)
	if err != nil {
		t.Fatal(err)
	}

	// 8 blocks round-robin over 4 placement slots: two blocks must hit
	// the phantom, so the write fails regardless of rotation offset.
	if _, err := c.Append(ctx, m.ID, make([]byte, 8*block)); err == nil {
		t.Fatal("write through an unreachable provider should fail as a whole")
	}

	// No version was consumed by the failure.
	if v, size, err := c.Latest(ctx, m.ID); err != nil || v != 0 || size != 0 {
		t.Fatalf("failed write left state behind: v=%d size=%d err=%v", v, size, err)
	}
	// The blocks that made it to live providers were GC'd by nonce.
	var leftover int64
	for _, addr := range cl.ProviderAddrs {
		leftover += cl.ProviderService(addr).Store().Stats().Items
	}
	if leftover != 0 {
		t.Fatalf("%d orphan blocks left on live providers after failed write", leftover)
	}

	// The blob works once the phantom is removed from placement.
	cl.PMService().State().MarkDead("phantom-provider")
	payload := bytes.Repeat([]byte{9}, int(8*block))
	v, err := c.Append(ctx, m.ID, payload)
	if err != nil {
		t.Fatalf("write after phantom removal: %v", err)
	}
	got, err := c.Read(ctx, m.ID, v, 0, int64(len(payload)))
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("recovery read failed: %v", err)
	}
}
