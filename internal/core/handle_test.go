package core_test

import (
	"bytes"
	"context"
	"errors"
	"io"
	"sync"
	"testing"
	"time"

	"blobseer/internal/blob"
	"blobseer/internal/cluster"
	"blobseer/internal/core"
)

// TestSnapshotReadAtContract pins the io.ReaderAt contract on pinned
// snapshots: full fill with nil error inside the snapshot, io.EOF
// exactly at the tail (n < len(p) only there), io.EOF with n == 0 past
// the end, and an explicit error for negative offsets.
func TestSnapshotReadAtContract(t *testing.T) {
	cl := startCluster(t, cluster.Config{DataProviders: 4})
	ctx := context.Background()
	c := cl.NewClient("")
	b, err := c.CreateBlob(ctx, B, 1)
	if err != nil {
		t.Fatal(err)
	}
	data := pattern('h', 3*B+100) // 4 blocks, partial tail
	if _, err := b.Write(ctx, 0, data); err != nil {
		t.Fatal(err)
	}
	s, err := b.Latest(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if s.Size() != int64(len(data)) || s.Version() != 1 {
		t.Fatalf("snapshot = v%d size %d, want v1 size %d", s.Version(), s.Size(), len(data))
	}

	// Interior reads: full fill, nil error, exact bytes.
	for _, cse := range []struct{ off, n int64 }{
		{0, 10}, {B - 5, 10}, {2*B + 7, B}, {0, int64(len(data)) - 1},
	} {
		p := make([]byte, cse.n)
		n, err := s.ReadAt(p, cse.off)
		if err != nil || n != int(cse.n) {
			t.Fatalf("ReadAt(%d,%d) = %d, %v; want full fill, nil", cse.off, cse.n, n, err)
		}
		if !bytes.Equal(p, data[cse.off:cse.off+cse.n]) {
			t.Fatalf("ReadAt(%d,%d) returned wrong bytes", cse.off, cse.n)
		}
	}

	// A read ending exactly at the tail: full fill plus io.EOF.
	p := make([]byte, 100)
	if n, err := s.ReadAt(p, int64(len(data))-100); n != 100 || err != io.EOF {
		t.Fatalf("tail ReadAt = %d, %v; want 100, io.EOF", n, err)
	}
	if !bytes.Equal(p, data[len(data)-100:]) {
		t.Fatal("tail ReadAt returned wrong bytes")
	}
	// A read straddling the tail: short fill plus io.EOF.
	if n, err := s.ReadAt(p, int64(len(data))-40); n != 40 || err != io.EOF {
		t.Fatalf("straddling ReadAt = %d, %v; want 40, io.EOF", n, err)
	}
	// Entirely past the end: 0, io.EOF.
	if n, err := s.ReadAt(p, int64(len(data))); n != 0 || err != io.EOF {
		t.Fatalf("past-EOF ReadAt = %d, %v; want 0, io.EOF", n, err)
	}
	// Negative offsets are an error, not a clamp.
	if _, err := s.ReadAt(p, -1); !errors.Is(err, core.ErrNegativeOffset) {
		t.Fatalf("negative ReadAt err = %v, want ErrNegativeOffset", err)
	}
}

// TestSnapshotReadAtReusedDirtyBuffer: ReadAt fills the caller's
// buffer in place, so holes and short-block tails must be cleared
// explicitly — a reused buffer holding stale bytes must come back
// exactly as the snapshot's content.
func TestSnapshotReadAtReusedDirtyBuffer(t *testing.T) {
	cl := startCluster(t, cluster.Config{DataProviders: 4})
	ctx := context.Background()
	c := cl.NewClient("")
	b, err := c.CreateBlob(ctx, B, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Write block 0 and block 2, leaving block 1 a hole, by growing the
	// blob then overwriting: write 3 blocks, then a sparse view comes
	// from reading v1 which only covers block 0.
	if _, err := b.Write(ctx, 0, pattern('a', B)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Write(ctx, 2*B, pattern('c', B/2)); err != nil {
		t.Fatal(err)
	}
	s, err := b.WaitPublished(ctx, 2, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]byte, s.Size())
	copy(want, pattern('a', B))
	copy(want[2*B:], pattern('c', B/2))

	dirty := bytes.Repeat([]byte{0xff}, int(s.Size()))
	if _, err := s.ReadAt(dirty, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !bytes.Equal(dirty, want) {
		t.Fatal("reused dirty buffer not fully overwritten: holes must read as zeros")
	}
}

// TestLatestOnUnpublishedBlob: the error-taxonomy fix — a blob with no
// published writes yields an explicit zero-size snapshot (Version ==
// NoVersion), distinguishable from a zero-length clamp, and its reads
// cleanly report io.EOF.
func TestLatestOnUnpublishedBlob(t *testing.T) {
	cl := startCluster(t, cluster.Config{})
	ctx := context.Background()
	c := cl.NewClient("")
	b, err := c.CreateBlob(ctx, B, 1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := b.Latest(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if s.Version() != blob.NoVersion || s.Size() != 0 {
		t.Fatalf("unpublished blob snapshot = v%d size %d, want NoVersion size 0", s.Version(), s.Size())
	}
	if n, err := s.ReadAt(make([]byte, 10), 0); n != 0 || err != io.EOF {
		t.Fatalf("unpublished ReadAt = %d, %v; want 0, io.EOF", n, err)
	}
	// Pinning a named version that was never published stays an error.
	if _, err := b.Snapshot(ctx, 1); !errors.Is(err, core.ErrNotPublished) {
		t.Fatalf("Snapshot(1) err = %v, want ErrNotPublished", err)
	}
}

// TestSnapshotPinnedMetadataOps is the op-count regression pin for the
// handle redesign: after one warming read, N repeated ReadAt calls
// against a pinned Snapshot must cost ZERO version-manager round-trips
// and ZERO metadata-DHT fetches (the node cache serves the tree), where
// the flat Read path used to pay the Meta+Latest(+VersionInfo) triple
// on every call.
func TestSnapshotPinnedMetadataOps(t *testing.T) {
	cl := startCluster(t, cluster.Config{
		DataProviders: 4,
		MetaProviders: 2,
		MetaCacheSize: -1, // default-sized immutable-node cache
	})
	ctx := context.Background()
	c := cl.NewClient("")
	b, err := c.CreateBlob(ctx, B, 1)
	if err != nil {
		t.Fatal(err)
	}
	data := pattern('m', 8*B)
	if _, err := b.Write(ctx, 0, data); err != nil {
		t.Fatal(err)
	}
	s, err := b.Latest(ctx)
	if err != nil {
		t.Fatal(err)
	}

	buf := make([]byte, len(data))
	read := func() {
		t.Helper()
		if _, err := s.ReadAtContext(ctx, buf, 0); err != nil && err != io.EOF {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, data) {
			t.Fatal("pinned read returned wrong data")
		}
	}
	read() // warm the node cache

	vmCalls := cl.VMService().Calls()
	warm := c.MetaCacheStats()
	const N = 10
	for i := 0; i < N; i++ {
		read()
	}
	if got := cl.VMService().Calls(); got != vmCalls {
		t.Errorf("%d repeated pinned reads cost %d version-manager round-trips, want 0", N, got-vmCalls)
	}
	warmer := c.MetaCacheStats()
	if warmer.Misses != warm.Misses {
		t.Errorf("%d repeated pinned reads missed the node cache %d times, want 0", N, warmer.Misses-warm.Misses)
	}

	// The flat path on a pinned version also amortizes: the version
	// size is cached after the first resolution, so N flat reads of the
	// same published version cost no further VM round-trips either.
	if _, err := c.Read(ctx, b.ID(), s.Version(), 0, int64(len(data))); err != nil {
		t.Fatal(err)
	}
	vmCalls = cl.VMService().Calls()
	for i := 0; i < N; i++ {
		if _, err := c.Read(ctx, b.ID(), s.Version(), 0, int64(len(data))); err != nil {
			t.Fatal(err)
		}
	}
	if got := cl.VMService().Calls(); got != vmCalls {
		t.Errorf("%d flat pinned-version reads cost %d version-manager round-trips, want 0", N, got-vmCalls)
	}
}

// TestParallelReadAtWhileWritersPublish hammers one Snapshot with
// concurrent ReadAt calls from many goroutines while writers keep
// publishing new versions — the pinned snapshot must stay bit-stable
// and data-race free (run under -race in CI).
func TestParallelReadAtWhileWritersPublish(t *testing.T) {
	cl := startCluster(t, cluster.Config{DataProviders: 6, MetaProviders: 2, MetaCacheSize: -1})
	ctx := context.Background()
	c := cl.NewClient("")
	b, err := c.CreateBlob(ctx, B, 1)
	if err != nil {
		t.Fatal(err)
	}
	data := pattern('p', 6*B)
	if _, err := b.Write(ctx, 0, data); err != nil {
		t.Fatal(err)
	}
	s, err := b.Latest(ctx)
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var writers sync.WaitGroup
	writers.Add(1)
	go func() { // writer churn: new versions over the same range
		defer writers.Done()
		w := cl.NewClient("")
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := w.Write(ctx, b.ID(), 0, pattern(byte(i), B)); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	const readers = 8
	var wg sync.WaitGroup
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := make([]byte, B+13)
			for i := 0; i < 20; i++ {
				off := int64((g*17 + i*31) % (5 * B))
				n, err := s.ReadAt(buf, off)
				if err != nil && err != io.EOF {
					t.Errorf("reader %d: %v", g, err)
					return
				}
				if !bytes.Equal(buf[:n], data[off:off+int64(n)]) {
					t.Errorf("reader %d: pinned snapshot changed under concurrent writes", g)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	writers.Wait()
}

// TestBlobHandleWriteAppendRoundTrip drives writes and appends through
// the handle surface and reads them back through pinned snapshots and
// the streaming reader.
func TestBlobHandleWriteAppendRoundTrip(t *testing.T) {
	cl := startCluster(t, cluster.Config{DataProviders: 4})
	ctx := context.Background()
	c := cl.NewClient("")
	b, err := c.CreateBlob(ctx, B, 1)
	if err != nil {
		t.Fatal(err)
	}
	first := pattern('1', 2*B)
	if v, err := b.Write(ctx, 0, first); err != nil || v != 1 {
		t.Fatalf("Write = v%d, %v", v, err)
	}
	second := pattern('2', B)
	if v, err := b.Append(ctx, second); err != nil || v != 2 {
		t.Fatalf("Append = v%d, %v", v, err)
	}

	// Each snapshot pin sees its own immutable state.
	s1, err := b.Snapshot(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := b.Snapshot(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Size() != 2*B || s2.Size() != 3*B {
		t.Fatalf("sizes = %d, %d", s1.Size(), s2.Size())
	}

	// Sequential streaming through the shared engine.
	r := s2.NewReader(ctx, core.ReaderOptions{Readahead: 2})
	defer r.Close()
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	want := append(append([]byte(nil), first...), second...)
	if !bytes.Equal(got, want) {
		t.Fatalf("streamed read mismatch: %d vs %d bytes", len(got), len(want))
	}

	// Streaming writes through the handle's write-behind writer.
	b2, err := c.CreateBlob(ctx, B, 1)
	if err != nil {
		t.Fatal(err)
	}
	w := b2.NewWriter(ctx, core.WriterOptions{Depth: 2})
	payload := pattern('w', 4*B+99)
	for off := 0; off < len(payload); off += 777 {
		end := min(off+777, len(payload))
		if _, err := w.Write(payload[off:end]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	s, err := b2.Latest(ctx)
	if err != nil {
		t.Fatal(err)
	}
	back := make([]byte, s.Size())
	if _, err := s.ReadAt(back, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !bytes.Equal(back, payload) {
		t.Fatal("write-behind handle stream mismatch")
	}
}

// TestSnapshotLocationsPinned: Locations through a pinned snapshot
// reflect that version's layout even after later versions move data.
func TestSnapshotLocationsPinned(t *testing.T) {
	cl := startCluster(t, cluster.Config{DataProviders: 4})
	ctx := context.Background()
	c := cl.NewClient("")
	b, err := c.CreateBlob(ctx, B, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Write(ctx, 0, pattern('L', 4*B)); err != nil {
		t.Fatal(err)
	}
	s, err := b.Latest(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// New versions over the same blocks do not disturb the pin.
	if _, err := b.Write(ctx, 0, pattern('M', 2*B)); err != nil {
		t.Fatal(err)
	}
	locs, err := s.Locations(ctx, 0, s.Size())
	if err != nil {
		t.Fatal(err)
	}
	if len(locs) != 4 {
		t.Fatalf("got %d locations, want 4", len(locs))
	}
	for i, l := range locs {
		if l.Off != int64(i)*B || l.Len != B || len(l.Hosts) != 1 {
			t.Errorf("loc %d = %+v", i, l)
		}
	}
}
