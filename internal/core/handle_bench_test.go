package core_test

import (
	"context"
	"io"
	"testing"

	"blobseer/internal/cluster"
	"blobseer/internal/core"
)

// benchSnapshot deploys a small cluster, publishes an nBlocks-block
// blob and returns a pinned snapshot plus the flat client. With
// metered set the client carries a live metrics registry, so the
// instrumented hot path is measured instead of the no-op one.
func benchSnapshot(b *testing.B, nBlocks int, metered bool) (*core.Client, *core.Snapshot) {
	b.Helper()
	cl, err := cluster.StartBlobSeer(cluster.Config{
		DataProviders: 4,
		MetaProviders: 2,
		BlockSize:     B,
		MetaCacheSize: -1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(cl.Stop)
	ctx := context.Background()
	var c *core.Client
	if metered {
		c, _ = cl.NewMeteredClient("", "bench")
	} else {
		c = cl.NewClient("")
	}
	bh, err := c.CreateBlob(ctx, B, 1)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := bh.Write(ctx, 0, pattern('b', nBlocks*B)); err != nil {
		b.Fatal(err)
	}
	s, err := bh.Latest(ctx)
	if err != nil {
		b.Fatal(err)
	}
	// Warm the immutable-node cache so both paths measure steady state.
	buf := make([]byte, s.Size())
	if _, err := s.ReadAt(buf, 0); err != nil && err != io.EOF {
		b.Fatal(err)
	}
	return c, s
}

// BenchmarkSnapshotReadAt measures repeated pinned-snapshot reads into
// a caller-owned buffer: zero whole-range intermediate allocations and
// zero per-call metadata round-trips. Compare allocs/op against
// BenchmarkFlatRead.
func BenchmarkSnapshotReadAt(b *testing.B) {
	benchmarkSnapshotReadAt(b, false)
}

// BenchmarkSnapshotReadAtMetered is the instrumented twin of
// BenchmarkSnapshotReadAt: the same workload through a client wired to
// a live metrics registry, so every read times Resolve and bumps the
// cache/stream counters. The delta between the two pins the hot-path
// cost of instrumentation; it must stay in the noise (<5%).
func BenchmarkSnapshotReadAtMetered(b *testing.B) {
	benchmarkSnapshotReadAt(b, true)
}

func benchmarkSnapshotReadAt(b *testing.B, metered bool) {
	const nBlocks = 8
	_, s := benchSnapshot(b, nBlocks, metered)
	buf := make([]byte, s.Size())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.ReadAt(buf, 0); err != nil && err != io.EOF {
			b.Fatal(err)
		}
	}
	b.SetBytes(s.Size())
}

// BenchmarkFlatRead measures the same workload through the flat
// compatibility shim, which allocates a fresh whole-range buffer and
// re-resolves the version on every call.
func BenchmarkFlatRead(b *testing.B) {
	const nBlocks = 8
	c, s := benchSnapshot(b, nBlocks, false)
	ctx := context.Background()
	id, v, size := s.Blob().ID(), s.Version(), s.Size()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Read(ctx, id, v, 0, size); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(size)
}
