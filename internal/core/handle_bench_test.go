package core_test

import (
	"context"
	"io"
	"testing"

	"blobseer/internal/cluster"
	"blobseer/internal/core"
)

// benchSnapshot deploys a small cluster, publishes an nBlocks-block
// blob and returns a pinned snapshot plus the flat client.
func benchSnapshot(b *testing.B, nBlocks int) (*core.Client, *core.Snapshot) {
	b.Helper()
	cl, err := cluster.StartBlobSeer(cluster.Config{
		DataProviders: 4,
		MetaProviders: 2,
		BlockSize:     B,
		MetaCacheSize: -1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(cl.Stop)
	ctx := context.Background()
	c := cl.NewClient("")
	bh, err := c.CreateBlob(ctx, B, 1)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := bh.Write(ctx, 0, pattern('b', nBlocks*B)); err != nil {
		b.Fatal(err)
	}
	s, err := bh.Latest(ctx)
	if err != nil {
		b.Fatal(err)
	}
	// Warm the immutable-node cache so both paths measure steady state.
	buf := make([]byte, s.Size())
	if _, err := s.ReadAt(buf, 0); err != nil && err != io.EOF {
		b.Fatal(err)
	}
	return c, s
}

// BenchmarkSnapshotReadAt measures repeated pinned-snapshot reads into
// a caller-owned buffer: zero whole-range intermediate allocations and
// zero per-call metadata round-trips. Compare allocs/op against
// BenchmarkFlatRead.
func BenchmarkSnapshotReadAt(b *testing.B) {
	const nBlocks = 8
	_, s := benchSnapshot(b, nBlocks)
	buf := make([]byte, s.Size())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.ReadAt(buf, 0); err != nil && err != io.EOF {
			b.Fatal(err)
		}
	}
	b.SetBytes(s.Size())
}

// BenchmarkFlatRead measures the same workload through the flat
// compatibility shim, which allocates a fresh whole-range buffer and
// re-resolves the version on every call.
func BenchmarkFlatRead(b *testing.B) {
	const nBlocks = 8
	c, s := benchSnapshot(b, nBlocks)
	ctx := context.Background()
	id, v, size := s.Blob().ID(), s.Version(), s.Size()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Read(ctx, id, v, 0, size); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(size)
}
