// Package core implements the BlobSeer client — the paper's primary
// contribution seen from the application side. It orchestrates the
// versioning access interface of Section III-A over the distributed
// services: data providers (blocks), the provider manager (placement),
// metadata providers (segment trees in a DHT) and the version manager
// (version assignment and publication).
//
// The write path is the paper's two-phase protocol: data first, fully
// in parallel with all other writers; then version assignment (the only
// serialized step) followed by concurrent metadata weaving. Readers are
// completely decoupled: they only ever see published, immutable
// snapshots.
package core

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"blobseer/internal/blob"
	"blobseer/internal/mdtree"
	"blobseer/internal/metrics"
	"blobseer/internal/pmanager"
	"blobseer/internal/provider"
	"blobseer/internal/rpc"
	"blobseer/internal/stream"
	"blobseer/internal/trace"
	"blobseer/internal/vmanager"
)

// ErrNotPublished is returned when a read names a version newer than
// the latest published snapshot. Readers must not observe in-flight
// writes (Section III-A5).
var ErrNotPublished = errors.New("core: version not published yet")

// Concurrency limits for the data path.
const (
	putConcurrency   = 8  // block uploads in flight per write
	fetchConcurrency = 16 // block downloads in flight per read
)

// DataPlane selects how a write's blocks reach their replicas.
type DataPlane int

const (
	// DataPlaneChained (the default) streams each block once to the
	// head of a replica chain; providers forward frames hop to hop, so
	// the client's egress is B bytes per block regardless of the
	// replication level. A failed chain falls back to fan-out for the
	// affected block.
	DataPlaneChained DataPlane = iota
	// DataPlaneFanout is the legacy path: the client pushes every
	// replica itself, costing R×B of client uplink per block.
	DataPlaneFanout
)

// Config wires a Client to a deployment.
type Config struct {
	Pool   *rpc.Pool
	VMAddr string // version manager endpoint (single-shard deployments)
	// VMAddrs lists the version-manager shard endpoints in shard order
	// for a sharded control plane (addr k serves the blob IDs with
	// vmanager.ShardOf(id, K) == k). When set it takes precedence over
	// VMAddr; more than one address routes every call through a
	// vmanager.Router.
	VMAddrs   []string
	PMAddr    string       // provider manager endpoint
	MetaStore mdtree.Store // metadata DHT (mdtree.NewDHTStore) or test store
	Host      string       // this client's host name, for locality-aware placement

	// MetaCacheSize bounds the client-side cache of immutable tree
	// nodes: > 0 wraps MetaStore in an mdtree.NodeCache with that many
	// entries, < 0 uses mdtree.DefaultCacheSize, 0 disables caching.
	// Safe at any setting — nodes never change once written — and worth
	// enabling whenever the same ranges are read repeatedly (MapReduce
	// input scans).
	MetaCacheSize int

	// DataPlane selects the replication transport for writes
	// (DataPlaneChained by default).
	DataPlane DataPlane

	// FrameSize overrides the chained data plane's streaming frame
	// payload size (provider.DefaultFrameSize if 0).
	FrameSize int

	// Overlay resolves relocated replicas: when the repair plane copies
	// a block off a dead provider, the new location is recorded here
	// (metadata is immutable, so the original replica set in the tree
	// leaf never changes). Reads consult it only after exhausting a
	// block's original replicas; nil disables the lookup.
	Overlay LocationOverlay

	// Metrics, when non-nil, receives the client's observability
	// surface: a resolve-latency histogram, node-cache and replica
	// fallback gauges, failure-feedback counters, and the streaming
	// layer's pipeline gauges. Nil keeps the data path metric-free
	// (every instrument degrades to a no-op).
	Metrics *metrics.Registry

	// Tracer, when non-nil, records client-side spans (read, readat,
	// resolve, write, ...) for sampled requests, and its sampling
	// policy decides which fresh requests start a trace. Nil keeps the
	// hot path trace-free; ops tagged via WithTrace still propagate
	// their trace context to the services either way.
	Tracer *trace.Tracer

	// DisableFailureFeedback stops the client from reporting providers
	// it could not reach to the provider manager. The feedback loop is
	// on by default: a MarkDead report pulls a dead provider out of the
	// allocation pool immediately instead of waiting for heartbeat
	// expiry. Reports fire only on transport-level failures (connection
	// refused/broken), never on application errors, and are rate-limited
	// per provider.
	DisableFailureFeedback bool
}

// LocationOverlay is the read path's view of the repair plane's
// relocation records (implemented by repair.Overlay). Get returns the
// extra providers holding repair copies of the block (nil when none);
// Remove purges the record when the block itself is garbage-collected.
type LocationOverlay interface {
	Get(ctx context.Context, key blob.BlockKey) ([]string, error)
	Remove(ctx context.Context, key blob.BlockKey) error
}

// Client is a BlobSeer client. It is safe for concurrent use; all
// state it keeps is cache (histories, provider host map).
type Client struct {
	vm         vmanager.API
	pm         *pmanager.Client
	prov       *provider.Client
	meta       mdtree.Store
	host       string
	plane      DataPlane
	frameSize  int
	nonce      nonceSource
	readRR     atomic.Uint64 // rotates the first replica tried per fetch
	putSem     chan struct{} // global cap on concurrent per-replica puts
	overlay    LocationOverlay
	noFeedback bool

	chainFallbacks atomic.Uint64 // blocks that fell back to fan-out
	deadReports    atomic.Uint64 // MarkDead feedback reports sent
	deadSuppressed atomic.Uint64 // reports dropped by the per-provider rate limit

	reg      *metrics.Registry  // nil unless Config.Metrics was set
	mResolve *metrics.Histogram // metadata resolve latency per readInto
	coll     *stream.Collector  // client-wide stream pipeline counters (nil when unmetered)
	tracer   *trace.Tracer      // nil unless Config.Tracer was set (nil is a no-op)

	mu        sync.Mutex
	histories map[blob.ID]*blob.History
	metas     map[blob.ID]blob.Meta
	sizes     map[verKey]int64     // published (blob, version) -> size; descriptors are immutable
	hosts     map[string]string    // provider addr -> host
	noChain   map[string]struct{}  // heads that answered CodeChainUnsupported
	reported  map[string]time.Time // providers recently reported dead (rate limit)
}

// verKey names one published snapshot for the size cache.
type verKey struct {
	id blob.ID
	v  blob.Version
}

// maxSizeCacheEntries bounds the published-version size cache. Cached
// sizes are tiny and immutable, but a long-lived client pinning many
// versions must not grow without limit; on overflow the whole map is
// dropped (entries are one cheap Latest/VersionInfo round-trip to
// refill, so plain reset beats LRU bookkeeping here).
const maxSizeCacheEntries = 4096

// NewClient builds a client from cfg.
func NewClient(cfg Config) *Client {
	meta := mdtree.MaybeCache(cfg.MetaStore, cfg.MetaCacheSize)
	c := &Client{
		vm:         NewVMClient(cfg.Pool, cfg.VMAddr, cfg.VMAddrs),
		pm:         pmanager.NewClient(cfg.Pool, cfg.PMAddr),
		prov:       provider.NewClient(cfg.Pool),
		meta:       meta,
		host:       cfg.Host,
		plane:      cfg.DataPlane,
		frameSize:  cfg.FrameSize,
		overlay:    cfg.Overlay,
		noFeedback: cfg.DisableFailureFeedback,
		tracer:     cfg.Tracer,
		nonce:      newNonceSource(),
		putSem:     make(chan struct{}, putConcurrency),
		histories:  make(map[blob.ID]*blob.History),
		metas:      make(map[blob.ID]blob.Meta),
		sizes:      make(map[verKey]int64),
		hosts:      make(map[string]string),
		noChain:    make(map[string]struct{}),
		reported:   make(map[string]time.Time),
	}
	if reg := cfg.Metrics; reg != nil {
		c.reg = reg
		c.mResolve = reg.Histogram("resolve_latency")
		c.coll = &stream.Collector{}
		reg.GaugeFunc("chain_fallbacks", func() int64 { return int64(c.chainFallbacks.Load()) })
		reg.GaugeFunc("dead_reports", func() int64 { return int64(c.deadReports.Load()) })
		reg.GaugeFunc("dead_reports_suppressed", func() int64 { return int64(c.deadSuppressed.Load()) })
		reg.GaugeFunc("meta_cache_hits", func() int64 { return c.MetaCacheStats().Hits })
		reg.GaugeFunc("meta_cache_misses", func() int64 { return c.MetaCacheStats().Misses })
		if f, ok := cfg.MetaStore.(interface{ Fallbacks() int64 }); ok {
			reg.GaugeFunc("meta_replica_fallbacks", f.Fallbacks)
		}
		reg.GaugeFunc("readers_open", c.coll.ReadersOpen)
		reg.GaugeFunc("writers_open", c.coll.WritersOpen)
		reg.GaugeFunc("prefetched", c.coll.Prefetched)
		reg.GaugeFunc("prefetch_hits", c.coll.PrefetchHits)
		reg.GaugeFunc("prefetch_canceled", c.coll.Canceled)
		reg.GaugeFunc("write_behind_depth", c.coll.WriteBehindDepth)
		reg.GaugeFunc("write_behind_commits", c.coll.WriteBehindCommits)
		reg.GaugeFunc("write_behind_bytes", c.coll.WriteBehindBytes)
	}
	return c
}

// Metrics exposes the registry handed in via Config.Metrics (nil for an
// unmetered client).
func (c *Client) Metrics() *metrics.Registry { return c.reg }

// Tracer exposes the tracer handed in via Config.Tracer (nil for an
// untraced client).
func (c *Client) Tracer() *trace.Tracer { return c.tracer }

// WithTrace force-samples: it returns ctx tagged with a fresh trace
// root plus the trace ID to look the spans up with later. Every RPC
// issued under the returned context is traced end to end — client-side
// spans (when the client has a tracer), every service hop's server
// span — regardless of any sampling rate. This is how the blaster and
// tests tag individual operations, and how `bsfsctl trace` gets an ID
// to stitch.
func WithTrace(ctx context.Context) (context.Context, trace.ID) {
	return trace.WithRoot(ctx)
}

// StreamCollector returns the client-wide stream pipeline counters, or
// nil for an unmetered client (stream wiring is nil-safe either way).
func (c *Client) StreamCollector() *stream.Collector { return c.coll }

// ChainFallbacks reports how many blocks this client pushed through the
// fan-out fallback because their replica chain failed — the signal that
// a deployment is quietly paying R×B of client egress again.
func (c *Client) ChainFallbacks() uint64 { return c.chainFallbacks.Load() }

// DeadReports reports how many MarkDead feedback reports this client
// has sent to the provider manager (tests, observability).
func (c *Client) DeadReports() uint64 { return c.deadReports.Load() }

// DeadReportsSuppressed reports how many MarkDead reports the
// per-provider rate limit swallowed. A high ratio of suppressed to sent
// reports means the client keeps hitting the same dead providers —
// stale metadata pointing at a departed node, or a repair plane that
// cannot keep up.
func (c *Client) DeadReportsSuppressed() uint64 { return c.deadSuppressed.Load() }

// deadReportTTL rate-limits MarkDead feedback per provider: one report
// per TTL is plenty — the provider manager needs the bit once, and a
// revived provider re-registers or heartbeats its way back in.
const deadReportTTL = 30 * time.Second

// reportDead closes the failure-feedback loop: a provider the client
// could not reach at the transport level is reported to the provider
// manager so allocation stops handing it out before heartbeat expiry
// fires. Fire-and-forget on a background context — the caller's read or
// write must not block on control-plane bookkeeping.
func (c *Client) reportDead(addr string, err error) {
	if c.noFeedback || !rpc.TransportFailure(err) {
		return
	}
	c.mu.Lock()
	if at, ok := c.reported[addr]; ok && time.Since(at) < deadReportTTL {
		c.mu.Unlock()
		c.deadSuppressed.Add(1)
		return
	}
	c.reported[addr] = time.Now()
	c.mu.Unlock()
	c.deadReports.Add(1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = c.pm.MarkDead(ctx, addr)
	}()
}

// MetaCacheStats returns the client's node-cache counters, or zeroes
// when the client runs uncached.
func (c *Client) MetaCacheStats() mdtree.CacheStats {
	if nc, ok := c.meta.(*mdtree.NodeCache); ok {
		return nc.Stats()
	}
	return mdtree.CacheStats{}
}

// nonceSource hands out write nonces unique across clients with
// overwhelming probability: a random 64-bit base plus a counter.
type nonceSource struct {
	base    uint64
	counter *atomic.Uint64
}

func newNonceSource() nonceSource {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		binary.BigEndian.PutUint64(b[:], uint64(time.Now().UnixNano()))
	}
	return nonceSource{base: binary.BigEndian.Uint64(b[:]), counter: new(atomic.Uint64)}
}

func (n nonceSource) next() uint64 { return n.base + n.counter.Add(1) }

// VM exposes the version-manager client (BSFS and tools need direct
// access for size/stat queries). In a sharded deployment this is a
// *vmanager.Router; otherwise a *vmanager.Client.
func (c *Client) VM() vmanager.API { return c.vm }

// NewVMClient builds the version-manager client surface for a
// deployment: a plain per-address client when there is one endpoint,
// a shard Router when there are several. addrs wins over addr.
func NewVMClient(pool *rpc.Pool, addr string, addrs []string) vmanager.API {
	switch {
	case len(addrs) > 1:
		return vmanager.NewRouter(pool, addrs)
	case len(addrs) == 1:
		return vmanager.NewClient(pool, addrs[0])
	default:
		return vmanager.NewClient(pool, addr)
	}
}

// Create allocates a new empty BLOB.
func (c *Client) Create(ctx context.Context, blockSize int64, replication int) (blob.Meta, error) {
	ctx, sp := c.tracer.Start(ctx, "create")
	m, err := c.vm.CreateBlob(ctx, blockSize, replication)
	sp.Finish(err)
	if err != nil {
		return blob.Meta{}, err
	}
	c.mu.Lock()
	c.metas[m.ID] = m
	c.mu.Unlock()
	return m, nil
}

// Meta returns the blob's static configuration (cached).
func (c *Client) Meta(ctx context.Context, id blob.ID) (blob.Meta, error) {
	c.mu.Lock()
	m, ok := c.metas[id]
	c.mu.Unlock()
	if ok {
		return m, nil
	}
	ctx, sp := c.tracer.Start(ctx, "meta")
	m, err := c.vm.GetMeta(ctx, id)
	sp.Finish(err)
	if err != nil {
		return blob.Meta{}, err
	}
	c.mu.Lock()
	c.metas[id] = m
	c.mu.Unlock()
	return m, nil
}

// Latest returns the newest published version and the blob size at it.
func (c *Client) Latest(ctx context.Context, id blob.ID) (blob.Version, int64, error) {
	ctx, sp := c.tracer.Start(ctx, "latest")
	v, size, err := c.vm.Latest(ctx, id)
	sp.Finish(err)
	return v, size, err
}

// WaitPublished blocks until version v is published (the snapshot
// notification mechanism of Section III-A5).
func (c *Client) WaitPublished(ctx context.Context, id blob.ID, v blob.Version, timeout time.Duration) (blob.Version, int64, error) {
	ctx, sp := c.tracer.Start(ctx, "wait")
	pv, size, err := c.vm.WaitPublished(ctx, id, v, timeout)
	sp.Finish(err)
	return pv, size, err
}

// Write stores data at off in blob id and returns the new snapshot
// version. Off must be block-aligned; a partial final block is only
// allowed when the write reaches (or extends) the end of the blob.
// The returned version may not be immediately readable: it publishes
// once all lower versions commit (use WaitPublished to observe it).
func (c *Client) Write(ctx context.Context, id blob.ID, off int64, data []byte) (blob.Version, error) {
	return c.doWrite(ctx, id, blob.KindWrite, off, data)
}

// Append adds data at the end of blob id; the offset is fixed by the
// version manager at assignment time (Section III-D).
func (c *Client) Append(ctx context.Context, id blob.ID, data []byte) (blob.Version, error) {
	return c.doWrite(ctx, id, blob.KindAppend, 0, data)
}

func (c *Client) doWrite(ctx context.Context, id blob.ID, kind blob.WriteKind, off int64, data []byte) (_ blob.Version, err error) {
	if len(data) == 0 {
		return 0, fmt.Errorf("core: empty %s", kind)
	}
	op := "write"
	if kind == blob.KindAppend {
		op = "append"
	}
	ctx, sp := c.tracer.Start(ctx, op)
	defer func() { sp.Finish(err) }()
	m, err := c.Meta(ctx, id)
	if err != nil {
		return 0, err
	}
	if kind == blob.KindWrite && off%m.BlockSize != 0 {
		return 0, fmt.Errorf("core: write offset %d not aligned to block size %d", off, m.BlockSize)
	}
	nBlocks := int(blob.Blocks(int64(len(data)), m.BlockSize))

	// Phase 1a: allocate providers for every block of the patch.
	targets, err := c.pm.Allocate(ctx, nBlocks, m.Replication, c.host)
	if err != nil {
		return 0, fmt.Errorf("core: allocate providers: %w", err)
	}

	// Phase 1b: store all blocks, fully parallel with other writers.
	// One worker per block (putConcurrency in flight): the chained
	// plane ships the block once to the head of its replica chain, the
	// fan-out plane pushes every replica itself.
	nonce := c.nonce.next()
	refs := make([]mdtree.BlockRef, nBlocks)
	sem := make(chan struct{}, putConcurrency)
	var wg sync.WaitGroup
	var werrMu sync.Mutex
	var werr error
	for i := 0; i < nBlocks; i++ {
		start := int64(i) * m.BlockSize
		end := start + m.BlockSize
		if end > int64(len(data)) {
			end = int64(len(data))
		}
		key := blob.BlockKey{Blob: id, Nonce: nonce, Seq: uint32(i)}
		refs[i] = mdtree.BlockRef{Key: key, Providers: targets[i], Len: end - start}
		chunk := data[start:end]
		wg.Add(1)
		sem <- struct{}{}
		go func(replicas []string, key blob.BlockKey, chunk []byte) {
			defer func() { <-sem; wg.Done() }()
			var err error
			if c.plane == DataPlaneChained {
				err = c.putBlockChained(ctx, replicas, key, chunk)
			} else {
				err = c.putBlockFanout(ctx, replicas, key, chunk)
			}
			if err != nil {
				werrMu.Lock()
				if werr == nil {
					werr = err
				}
				werrMu.Unlock()
			}
		}(targets[i], key, chunk)
	}
	wg.Wait()
	if werr != nil {
		// The paper: "If, for some reason, writing of a block fails,
		// then the whole write fails." No version was assigned, so no
		// repair is needed — just GC the orphaned blocks.
		c.gcBlocks(id, nonce, targets)
		return 0, werr
	}

	// Phase 2a: version assignment — the single serialization point.
	since := c.cachedLatest(id)
	a, err := c.vm.AssignVersion(ctx, id, kind, off, int64(len(data)), nonce, since)
	if err != nil {
		c.gcBlocks(id, nonce, targets)
		return 0, err
	}
	hist, err := c.extendHistory(id, a.Descs)
	if err != nil {
		// The version was assigned: leaving it dangling would stall
		// publication of every later version until the janitor notices.
		// Abort it so the version manager repairs the line now.
		if aerr := c.vm.Abort(ctx, id, a.Version); aerr != nil {
			return 0, fmt.Errorf("core: history cache failed (%v) and abort failed: %w", err, aerr)
		}
		c.gcBlocks(id, nonce, targets)
		return 0, fmt.Errorf("core: history cache: %w", err)
	}

	// Phase 2b: weave and store metadata, concurrently with all other
	// writers (including ones still working on lower versions).
	if _, err := mdtree.Build(ctx, c.meta, m, hist, a.Version, refs); err != nil {
		// Whatever Build managed to write through into the cache is
		// suspect from here on: the janitor will eventually abort this
		// version and the repairer rewrite its nodes in place. Purge
		// unconditionally — invalidation is local and always safe.
		c.invalidateMetaVersion(id, a.Version)
		// Let the version manager repair the line so later versions
		// stay readable, then GC our blocks.
		if aerr := c.vm.Abort(ctx, id, a.Version); aerr != nil {
			return 0, fmt.Errorf("core: metadata build failed (%v) and abort failed: %w", err, aerr)
		}
		c.gcBlocks(id, nonce, targets)
		return 0, fmt.Errorf("core: metadata build: %w", err)
	}

	// Phase 2c: report success; the VM publishes in version order.
	if err := c.vm.Commit(ctx, id, a.Version); err != nil {
		// A failed commit usually means the janitor aborted us and the
		// repairer rewrote our nodes; what we write-through cached is
		// now stale.
		c.invalidateMetaVersion(id, a.Version)
		return 0, err
	}
	return a.Version, nil
}

// putBlockChained stores one block on all its replicas through the
// streaming chain, falling back to direct fan-out when any chain hop
// fails mid-write (mixed-version providers, a dead downstream hop).
// Plain puts are idempotent whole-block writes, so replicas the chain
// did reach are simply overwritten; the write only fails if a replica
// is truly down.
func (c *Client) putBlockChained(ctx context.Context, replicas []string, key blob.BlockKey, chunk []byte) error {
	chain := c.chainOrder(ctx, replicas)
	c.mu.Lock()
	_, headNoChain := c.noChain[chain[0]]
	c.mu.Unlock()
	if !headNoChain {
		err := c.prov.PutChained(ctx, chain, key, chunk, c.frameSize)
		if err == nil {
			return nil
		}
		if ctx.Err() != nil {
			// The caller's context died, not the chain: re-sending R
			// full copies through the fan-out would be a doomed egress
			// burst (and would misreport chain health).
			return err
		}
		if rpc.CodeOf(err) == provider.CodeChainUnsupported {
			// The head itself cannot forward (old-version or tail-only
			// deployment) — a permanent property, so stop attempting
			// chains headed there instead of paying a doomed round
			// trip per block.
			c.mu.Lock()
			c.noChain[chain[0]] = struct{}{}
			c.mu.Unlock()
		}
		// An unreachable chain head is a dead provider; a coded chain
		// failure only means some hop broke (the head answered).
		c.reportDead(chain[0], err)
	}
	c.chainFallbacks.Add(1)
	return c.putBlockFanout(ctx, replicas, key, chunk)
}

// putBlockFanout pushes one block to each of its replicas in parallel —
// the legacy data plane, and the chained plane's per-block fallback.
// The client-wide putSem keeps the total number of in-flight puts at
// putConcurrency no matter how many blocks fan out at once (block
// workers hold slots of a different semaphore, so this cannot cycle).
func (c *Client) putBlockFanout(ctx context.Context, replicas []string, key blob.BlockKey, chunk []byte) error {
	var wg sync.WaitGroup
	var mu sync.Mutex
	var ferr error
	for _, addr := range replicas {
		wg.Add(1)
		c.putSem <- struct{}{}
		go func(addr string) {
			defer func() { <-c.putSem; wg.Done() }()
			if err := c.prov.Put(ctx, addr, key, chunk); err != nil {
				c.reportDead(addr, err)
				mu.Lock()
				if ferr == nil {
					ferr = fmt.Errorf("core: store block %s on %s: %w", key, addr, err)
				}
				mu.Unlock()
			}
		}(addr)
	}
	wg.Wait()
	return ferr
}

// localReplicaIndex returns the index of the replica co-hosted with the
// client, or -1 when there is none (or the client has no host label).
func (c *Client) localReplicaIndex(ctx context.Context, replicas []string) int {
	if c.host == "" || len(replicas) < 2 {
		return -1
	}
	for i, h := range c.hostsFor(ctx, replicas) {
		if h == c.host {
			return i
		}
	}
	return -1
}

// chainOrder orders a block's replica set for chain transfer: the
// provider co-hosted with the client (if any) leads, so the first hop
// stays on the local machine and the block leaves the client NIC at
// most once.
func (c *Client) chainOrder(ctx context.Context, replicas []string) []string {
	i := c.localReplicaIndex(ctx, replicas)
	if i <= 0 {
		return replicas
	}
	ordered := make([]string, 0, len(replicas))
	ordered = append(ordered, replicas[i])
	ordered = append(ordered, replicas[:i]...)
	ordered = append(ordered, replicas[i+1:]...)
	return ordered
}

// invalidateMetaVersion purges a version's nodes from the client's
// metadata cache after an abort: repair re-Builds those node IDs with
// empty block refs, so the cached copies no longer match the published
// tree.
func (c *Client) invalidateMetaVersion(id blob.ID, v blob.Version) {
	if nc, ok := c.meta.(*mdtree.NodeCache); ok {
		nc.InvalidateVersion(id, v)
	}
}

// gcBlocks best-effort deletes every block a failed write stored.
func (c *Client) gcBlocks(id blob.ID, nonce uint64, targets [][]string) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	seen := map[string]bool{}
	for _, set := range targets {
		for _, addr := range set {
			if !seen[addr] {
				seen[addr] = true
				_, _ = c.prov.DeleteWrite(ctx, addr, id, nonce)
			}
		}
	}
}

func (c *Client) cachedLatest(id blob.ID) blob.Version {
	c.mu.Lock()
	defer c.mu.Unlock()
	if h, ok := c.histories[id]; ok {
		return h.Latest()
	}
	return 0
}

// extendHistory merges descriptors into the cache and returns a private
// snapshot safe to use during metadata builds.
func (c *Client) extendHistory(id blob.ID, descs []blob.WriteDesc) (*blob.History, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	h, ok := c.histories[id]
	if !ok {
		h = &blob.History{}
		c.histories[id] = h
	}
	if err := h.Extend(descs); err != nil {
		return nil, err
	}
	return h.Clone(), nil
}

// versionSize resolves the blob size at published version v, caching
// the answer: published write descriptors are immutable, so once a
// (blob, version) pair has been seen published its size never changes.
// A version newer than the latest published snapshot fails with
// ErrNotPublished.
func (c *Client) versionSize(ctx context.Context, id blob.ID, v blob.Version) (int64, error) {
	key := verKey{id, v}
	c.mu.Lock()
	size, ok := c.sizes[key]
	c.mu.Unlock()
	if ok {
		return size, nil
	}
	pub, pubSize, err := c.vm.Latest(ctx, id)
	if err != nil {
		return 0, err
	}
	if v > pub {
		return 0, fmt.Errorf("%w: version %d, published %d", ErrNotPublished, v, pub)
	}
	if v == pub {
		size = pubSize
	} else {
		d, err := c.vm.VersionInfo(ctx, id, v)
		if err != nil {
			return 0, err
		}
		size = d.SizeAfter
	}
	c.mu.Lock()
	if len(c.sizes) >= maxSizeCacheEntries {
		c.sizes = make(map[verKey]int64)
	}
	c.sizes[key] = size
	c.mu.Unlock()
	return size, nil
}

// Read returns length bytes starting at off from version v of blob id
// (v == blob.NoVersion reads the latest published snapshot). Reads are
// clamped at the snapshot size; unwritten regions read as zeros.
//
// Read is a compatibility shim over the Snapshot handle path: it pins
// the version, allocates a result buffer, and fills it with one
// ReadAt. Its clamp semantics are deliberately loose — a read past EOF
// and a read of an unpublished (empty) blob both return (nil, nil),
// indistinguishable from each other. Callers that need to tell the two
// apart, or that read the same version more than once, should use
// OpenBlob/Snapshot: the handle resolves the version metadata once and
// reads into caller-owned buffers with no per-call round-trips.
func (c *Client) Read(ctx context.Context, id blob.ID, v blob.Version, off, length int64) (_ []byte, err error) {
	ctx, sp := c.tracer.Start(ctx, "read")
	defer func() { sp.Finish(err) }()
	b, err := c.OpenBlob(ctx, id)
	if err != nil {
		return nil, err
	}
	s, err := b.Snapshot(ctx, v)
	if err != nil {
		return nil, err
	}
	if off >= s.size || length <= 0 {
		return nil, nil // empty blob, zero-length request, or past-EOF clamp
	}
	if off+length > s.size {
		length = s.size - off
	}
	buf := make([]byte, length)
	if _, err := s.ReadAtContext(ctx, buf, off); err != nil && err != io.EOF {
		return nil, err
	}
	return buf, nil
}

// readInto resolves [off, off+len(dst)) of version v into extents and
// fetches each extent's bytes directly into the matching subslice of
// dst — the zero-copy core of Snapshot.ReadAt: no whole-range
// intermediate buffer exists at any point. Holes and the zero tails of
// short blocks are cleared explicitly (dst may be a reused buffer
// holding stale bytes). The requested range must lie inside the
// snapshot.
func (c *Client) readInto(ctx context.Context, m blob.Meta, v blob.Version, size, off int64, dst []byte) error {
	t0 := time.Now()
	rctx, sp := c.tracer.Start(ctx, "resolve")
	extents, err := mdtree.Resolve(rctx, c.meta, m, v, size, blob.Range{Off: off, Len: int64(len(dst))})
	sp.Finish(err)
	c.mResolve.ObserveSince(t0)
	if err != nil {
		return err
	}
	fill := func(ctx context.Context, e mdtree.Extent) error {
		sub := dst[e.FileOff-off : e.FileOff-off+e.Len]
		if !e.HasData || len(e.Block.Providers) == 0 {
			clear(sub) // hole or repaired-abort leaf reads as zeros
			return nil
		}
		n, err := c.fetchExtentInto(ctx, e, sub)
		if err != nil {
			return err
		}
		clear(sub[n:]) // bytes past the stored block length read as zeros
		return nil
	}
	if len(extents) == 1 {
		// The common small-read case: one extent, no fan-out machinery.
		return fill(ctx, extents[0])
	}
	sem := make(chan struct{}, fetchConcurrency)
	var wg sync.WaitGroup
	var rerrMu sync.Mutex
	var rerr error
	for _, e := range extents {
		wg.Add(1)
		sem <- struct{}{}
		go func(e mdtree.Extent) {
			defer func() { <-sem; wg.Done() }()
			if err := fill(ctx, e); err != nil {
				rerrMu.Lock()
				if rerr == nil {
					rerr = err
				}
				rerrMu.Unlock()
			}
		}(e)
	}
	wg.Wait()
	return rerr
}

// fetchExtentInto reads one extent into dst, returning the byte count
// stored (a block shorter than the request leaves a zero tail for the
// caller to clear). A replica co-hosted with the client is tried first
// (Map/Reduce schedules tasks onto replica hosts expecting a local
// read); otherwise the starting replica rotates so concurrent readers
// spread load across the replica set instead of serializing on the
// first address. Either way the remaining replicas serve as failover,
// and once the original replica set is exhausted the location overlay
// is consulted for repair copies. Providers that failed at the
// transport level are reported to the provider manager.
func (c *Client) fetchExtentInto(ctx context.Context, e mdtree.Extent, dst []byte) (int, error) {
	n := len(e.Block.Providers)
	start := c.localReplicaIndex(ctx, e.Block.Providers)
	if start < 0 {
		start = 0
		if n > 1 {
			start = int(c.readRR.Add(1) % uint64(n))
		}
	}
	var lastErr error
	for i := 0; i < n; i++ {
		addr := e.Block.Providers[(start+i)%n]
		data, err := c.prov.Get(ctx, addr, e.Block.Key, e.DataOff, e.Len)
		if err == nil {
			return copy(dst, data), nil
		}
		c.reportDead(addr, err)
		lastErr = err
	}
	// Every original replica failed; a repair pass may have relocated
	// the block. Addresses already tried are skipped.
	if c.overlay != nil {
		extras, oerr := c.overlay.Get(ctx, e.Block.Key)
		if oerr == nil {
			tried := make(map[string]bool, n)
			for _, a := range e.Block.Providers {
				tried[a] = true
			}
			for _, addr := range extras {
				if tried[addr] {
					continue
				}
				data, err := c.prov.Get(ctx, addr, e.Block.Key, e.DataOff, e.Len)
				if err == nil {
					return copy(dst, data), nil
				}
				c.reportDead(addr, err)
				lastErr = err
			}
		}
	}
	return 0, fmt.Errorf("core: all replicas failed for %s: %w", e.Block.Key, lastErr)
}

// Location describes where one piece of a blob range physically lives —
// the primitive BSFS maps Hadoop's getFileBlockLocations onto
// (Section IV-C).
type Location struct {
	Off       int64
	Len       int64
	Providers []string // provider RPC addresses (replicas)
	Hosts     []string // physical hosts of those providers
}

// Locations returns the block locations covering [off, off+length) of
// version v (NoVersion = latest published). Like Read, it is a shim
// over the Snapshot handle path: pinning a Snapshot once and calling
// its Locations avoids re-resolving the version on every query.
func (c *Client) Locations(ctx context.Context, id blob.ID, v blob.Version, off, length int64) ([]Location, error) {
	b, err := c.OpenBlob(ctx, id)
	if err != nil {
		return nil, err
	}
	s, err := b.Snapshot(ctx, v)
	if err != nil {
		return nil, err
	}
	return s.Locations(ctx, off, length)
}

// locationsAt maps a pinned (version, size) range onto provider
// addresses and hosts.
func (c *Client) locationsAt(ctx context.Context, m blob.Meta, v blob.Version, size, off, length int64) ([]Location, error) {
	extents, err := mdtree.Resolve(ctx, c.meta, m, v, size, blob.Range{Off: off, Len: length})
	if err != nil {
		return nil, err
	}
	out := make([]Location, 0, len(extents))
	for _, e := range extents {
		loc := Location{Off: e.FileOff, Len: e.Len}
		if e.HasData {
			loc.Providers = e.Block.Providers
			loc.Hosts = c.hostsFor(ctx, e.Block.Providers)
		}
		out = append(out, loc)
	}
	return out, nil
}

// hostsFor maps provider addresses to hosts, refreshing the cached
// membership once on a miss.
func (c *Client) hostsFor(ctx context.Context, addrs []string) []string {
	c.mu.Lock()
	missing := false
	for _, a := range addrs {
		if _, ok := c.hosts[a]; !ok {
			missing = true
			break
		}
	}
	c.mu.Unlock()
	if missing {
		if infos, err := c.pm.List(ctx); err == nil {
			c.mu.Lock()
			for _, in := range infos {
				c.hosts[in.Addr] = in.Host
			}
			// Addresses the membership no longer lists (dead and
			// deregistered providers referenced by old block refs) are
			// cached as unknown, so they don't re-trigger a List
			// round-trip on every subsequent fetch.
			for _, a := range addrs {
				if _, ok := c.hosts[a]; !ok {
					c.hosts[a] = ""
				}
			}
			c.mu.Unlock()
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	hosts := make([]string, len(addrs))
	for i, a := range addrs {
		hosts[i] = c.hosts[a] // "" if unknown
	}
	return hosts
}
