package core_test

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"testing"

	"blobseer/internal/blob"
	"blobseer/internal/cluster"
	"blobseer/internal/util"
	"blobseer/internal/vmanager"
)

const gcBlock = int64(4 * util.KB)

func gcCluster(t *testing.T) *cluster.BlobSeer {
	t.Helper()
	cl, err := cluster.StartBlobSeer(cluster.Config{
		DataProviders: 4,
		MetaProviders: 2,
		BlockSize:     gcBlock,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Stop)
	return cl
}

func fill(b byte, blocks int) []byte {
	return bytes.Repeat([]byte{b}, int(gcBlock)*blocks)
}

// storedBlocks sums block items across all data providers.
func storedBlocks(cl *cluster.BlobSeer) int64 {
	var n int64
	for _, addr := range cl.ProviderAddrs {
		n += cl.ProviderService(addr).Store().Stats().Items
	}
	return n
}

// TestGCFreesOverwrittenBlocks replays Figure 1 and prunes everything
// below the final version: v1's two overwritten blocks are freed, its
// two shared blocks survive, and the kept snapshot reads back intact.
func TestGCFreesOverwrittenBlocks(t *testing.T) {
	cl := gcCluster(t)
	ctx := context.Background()
	c := cl.NewClient("")
	m, err := c.Create(ctx, gcBlock, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Append(ctx, m.ID, fill('a', 4)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write(ctx, m.ID, gcBlock, fill('x', 2)); err != nil {
		t.Fatal(err)
	}
	v3, err := c.Append(ctx, m.ID, fill('e', 1))
	if err != nil {
		t.Fatal(err)
	}

	before := storedBlocks(cl)
	if before != 7 { // 4 + 2 + 1 differential blocks
		t.Fatalf("expected 7 stored blocks before GC, got %d", before)
	}

	st, err := c.GC(ctx, m.ID, v3)
	if err != nil {
		t.Fatal(err)
	}
	if st.From != 1 || st.To != v3 {
		t.Errorf("pruned [%d,%d), want [1,%d)", st.From, st.To, v3)
	}
	if st.BlocksFreed != 2 {
		t.Errorf("freed %d blocks, want 2 (v1's overwritten middle)", st.BlocksFreed)
	}
	if after := storedBlocks(cl); after != before-2 {
		t.Errorf("stored blocks %d -> %d, want %d", before, after, before-2)
	}

	// The kept snapshot is untouched.
	got, err := c.Read(ctx, m.ID, v3, 0, 5*gcBlock)
	if err != nil {
		t.Fatal(err)
	}
	want := append(append(fill('a', 1), fill('x', 2)...), append(fill('a', 1), fill('e', 1)...)...)
	if !bytes.Equal(got, want) {
		t.Fatal("kept snapshot changed after GC")
	}

	// Pruned snapshots are gone, with the dedicated error.
	if _, err := c.Read(ctx, m.ID, 1, 0, gcBlock); !errors.Is(err, vmanager.ErrPruned) {
		t.Fatalf("read of pruned version: got %v, want ErrPruned", err)
	}
}

// TestGCIdempotentAndMonotone: pruning twice at the same point frees
// nothing more; pruning backwards is a no-op; pruning an unpublished
// version is rejected.
func TestGCIdempotentAndMonotone(t *testing.T) {
	cl := gcCluster(t)
	ctx := context.Background()
	c := cl.NewClient("")
	m, err := c.Create(ctx, gcBlock, 1)
	if err != nil {
		t.Fatal(err)
	}
	var last blob.Version
	for i := 0; i < 3; i++ {
		if last, err = c.Write(ctx, m.ID, 0, fill(byte('a'+i), 1)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.GC(ctx, m.ID, last+1); !errors.Is(err, vmanager.ErrBadPrune) {
		t.Fatalf("pruning beyond published: got %v, want ErrBadPrune", err)
	}
	st, err := c.GC(ctx, m.ID, last)
	if err != nil {
		t.Fatal(err)
	}
	if st.BlocksFreed != 2 {
		t.Errorf("first sweep freed %d blocks, want 2", st.BlocksFreed)
	}
	st, err = c.GC(ctx, m.ID, last)
	if err != nil {
		t.Fatal(err)
	}
	if st.BlocksFreed != 0 || st.NodesFreed != 0 {
		t.Errorf("second sweep freed %d blocks / %d nodes, want 0/0", st.BlocksFreed, st.NodesFreed)
	}
	if _, err := c.GC(ctx, m.ID, 1); err != nil {
		t.Errorf("backwards prune should be a no-op, got %v", err)
	}
}

// TestGCRandomSchedules drives random write/append/GC schedules and
// checks every kept version against a flat reference model after each
// sweep — the end-to-end safety property of differential GC.
func TestGCRandomSchedules(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			cl := gcCluster(t)
			ctx := context.Background()
			c := cl.NewClient("")
			m, err := c.Create(ctx, gcBlock, 1)
			if err != nil {
				t.Fatal(err)
			}

			// Reference: the flat contents of every version.
			ref := map[blob.Version][]byte{}
			cur := []byte{}
			prunedBelow := blob.Version(1)
			var latest blob.Version

			for step := 0; step < 24; step++ {
				blocks := 1 + rng.Intn(3)
				data := fill(byte('a'+step%26), blocks)
				var v blob.Version
				if len(cur) > 0 && rng.Intn(2) == 0 {
					// Overwrite at a random aligned offset. Keep the write
					// inside the blob or exactly extending it.
					maxOff := int64(len(cur)) / gcBlock
					off := int64(rng.Intn(int(maxOff)+1)) * gcBlock
					if off+int64(len(data)) < int64(len(cur)) {
						// mid-blob writes must cover whole blocks: data
						// already is whole blocks, fine.
					}
					v, err = c.Write(ctx, m.ID, off, data)
					if err != nil {
						t.Fatal(err)
					}
					next := append([]byte(nil), cur...)
					if need := off + int64(len(data)); int64(len(next)) < need {
						next = append(next, make([]byte, need-int64(len(next)))...)
					}
					copy(next[off:], data)
					cur = next
				} else {
					v, err = c.Append(ctx, m.ID, data)
					if err != nil {
						t.Fatal(err)
					}
					cur = append(append([]byte(nil), cur...), data...)
				}
				latest = v
				ref[v] = append([]byte(nil), cur...)

				// Occasionally garbage-collect up to a random kept point.
				if rng.Intn(4) == 0 && latest > prunedBelow {
					keep := prunedBelow + blob.Version(rng.Intn(int(latest-prunedBelow))) + 1
					if _, err := c.GC(ctx, m.ID, keep); err != nil {
						t.Fatalf("gc keep=%d: %v", keep, err)
					}
					prunedBelow = keep
				}

				// Validate every kept version byte-for-byte.
				for kv := prunedBelow; kv <= latest; kv++ {
					want := ref[kv]
					got, err := c.Read(ctx, m.ID, kv, 0, int64(len(want)))
					if err != nil {
						t.Fatalf("step %d: read kept v%d: %v", step, kv, err)
					}
					if !bytes.Equal(got, want) {
						t.Fatalf("step %d: kept v%d diverged from reference", step, kv)
					}
				}
				// And a pruned one (if any) must fail.
				if prunedBelow > 1 {
					if _, err := c.Read(ctx, m.ID, prunedBelow-1, 0, gcBlock); !errors.Is(err, vmanager.ErrPruned) {
						t.Fatalf("step %d: pruned v%d still readable (err=%v)", step, prunedBelow-1, err)
					}
				}
			}
		})
	}
}
