package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"blobseer/internal/blob"
	"blobseer/internal/stream"
)

// ErrNegativeOffset is returned by ReadAt for offsets below zero (the
// io.ReaderAt contract forbids silently clamping them).
var ErrNegativeOffset = errors.New("core: negative read offset")

// Blob is a handle on one BLOB. It pins the blob's static Meta once at
// open time, so writes, appends and snapshot queries through the
// handle never re-resolve it — the paper's access model is exactly
// handle-shaped (a client opens a BLOB, pins snapshot versions, and
// works against them while writers publish new versions concurrently).
// A Blob is safe for concurrent use.
type Blob struct {
	c    *Client
	meta blob.Meta
}

// OpenBlob returns a handle on an existing BLOB, resolving its static
// configuration once (cached across the client).
func (c *Client) OpenBlob(ctx context.Context, id blob.ID) (*Blob, error) {
	m, err := c.Meta(ctx, id)
	if err != nil {
		return nil, err
	}
	return &Blob{c: c, meta: m}, nil
}

// CreateBlob allocates a new empty BLOB and returns its handle.
func (c *Client) CreateBlob(ctx context.Context, blockSize int64, replication int) (*Blob, error) {
	m, err := c.Create(ctx, blockSize, replication)
	if err != nil {
		return nil, err
	}
	return &Blob{c: c, meta: m}, nil
}

// ID returns the blob's identity.
func (b *Blob) ID() blob.ID { return b.meta.ID }

// Meta returns the blob's static configuration, pinned at open time.
func (b *Blob) Meta() blob.Meta { return b.meta }

// Client returns the client the handle runs on.
func (b *Blob) Client() *Client { return b.c }

// Write stores data at off and returns the new snapshot version. Off
// must be block-aligned; a partial final block is only allowed when
// the write reaches (or extends) the end of the blob. The returned
// version may not be immediately readable: it publishes once all
// lower versions commit (use WaitPublished to observe it).
func (b *Blob) Write(ctx context.Context, off int64, data []byte) (blob.Version, error) {
	return b.c.Write(ctx, b.meta.ID, off, data)
}

// Append adds data at the end of the blob; the offset is fixed by the
// version manager at assignment time (Section III-D).
func (b *Blob) Append(ctx context.Context, data []byte) (blob.Version, error) {
	return b.c.Append(ctx, b.meta.ID, data)
}

// Latest pins the newest published snapshot. An unpublished blob (no
// writes committed yet) yields a zero-size Snapshot whose Version is
// blob.NoVersion — explicitly distinguishable from a zero-length
// clamp, unlike the flat Client.Read which returns (nil, nil) for
// both.
func (b *Blob) Latest(ctx context.Context) (*Snapshot, error) {
	v, size, err := b.c.vm.Latest(ctx, b.meta.ID)
	if err != nil {
		return nil, err
	}
	return &Snapshot{b: b, ctx: ctx, version: v, size: size}, nil
}

// Snapshot pins published version v. v == blob.NoVersion pins the
// latest published snapshot (see Latest). Naming a version newer than
// the latest published one fails with ErrNotPublished. The (version,
// size) pair is resolved once: every subsequent ReadAt or Locations
// call on the returned Snapshot skips the metadata round-trips
// entirely.
func (b *Blob) Snapshot(ctx context.Context, v blob.Version) (*Snapshot, error) {
	if v == blob.NoVersion {
		return b.Latest(ctx)
	}
	size, err := b.c.versionSize(ctx, b.meta.ID, v)
	if err != nil {
		return nil, err
	}
	return &Snapshot{b: b, ctx: ctx, version: v, size: size}, nil
}

// WaitPublished blocks until version v is published (the snapshot
// notification mechanism of Section III-A5), then pins it.
func (b *Blob) WaitPublished(ctx context.Context, v blob.Version, timeout time.Duration) (*Snapshot, error) {
	pub, size, err := b.c.vm.WaitPublished(ctx, b.meta.ID, v, timeout)
	if err != nil {
		return nil, err
	}
	if pub == v {
		return &Snapshot{b: b, ctx: ctx, version: v, size: size}, nil
	}
	// Publication moved past v while we waited: pin v itself.
	return b.Snapshot(ctx, v)
}

// WriterOptions configures a streaming writer over a Blob.
type WriterOptions struct {
	// Append streams to the end of the blob. An unaligned existing tail
	// is merged with one read-modify-write on first flush — only safe
	// for a single appender, exactly the semantics Hadoop applications
	// expect; block-aligned appends keep full append/append
	// concurrency. When false the stream writes at fixed offsets
	// starting from Off.
	Append bool
	// Off is the starting offset of a non-append stream (must be
	// block-aligned).
	Off int64
	// Depth is the write-behind window: up to this many full-block
	// commits proceed in the background while Write keeps buffering.
	// <= 0 keeps writes fully synchronous.
	Depth int
}

// NewWriter returns a write-behind streaming writer committing to the
// blob one block-sized snapshot at a time — the engine BSFS file
// writers run on, available to raw-blob applications directly.
func (b *Blob) NewWriter(ctx context.Context, o WriterOptions) *stream.Writer {
	return stream.NewWriter(ctx, stream.WriterConfig{
		BlockSize: b.meta.BlockSize,
		Depth:     o.Depth,
		Collector: b.c.coll,
		Start: func(ctx context.Context) (stream.StartState, error) {
			if !o.Append {
				return stream.StartState{OffsetMode: true, Off: o.Off}, nil
			}
			s, err := b.Latest(ctx)
			if err != nil {
				return stream.StartState{}, err
			}
			rem := s.Size() % b.meta.BlockSize
			if rem == 0 {
				return stream.StartState{}, nil // native append path
			}
			// An unaligned tail cannot go through native appends (the
			// version manager rejects appends onto unaligned EOFs), so
			// merge it once and continue with offset-tracked writes.
			tailStart := s.Size() - rem
			tail := make([]byte, rem)
			if _, err := s.ReadAtContext(ctx, tail, tailStart); err != nil && err != io.EOF {
				return stream.StartState{}, err
			}
			return stream.StartState{OffsetMode: true, Off: tailStart, Prefix: tail}, nil
		},
		WriteAt: func(ctx context.Context, off int64, data []byte) error {
			_, err := b.Write(ctx, off, data)
			return err
		},
		Append: func(ctx context.Context, data []byte) error {
			_, err := b.Append(ctx, data)
			return err
		},
	})
}

// Snapshot is a pinned, immutable published version of a BLOB. The
// (version, size) pair is resolved at creation; reads against the
// snapshot go straight to metadata-tree resolution (served from the
// client's immutable-node cache when warm) and the data providers —
// zero version-manager round-trips, no matter how many reads the
// snapshot serves or how many new versions writers publish meanwhile.
// A Snapshot is safe for concurrent use: ReadAt may run from many
// goroutines at once.
type Snapshot struct {
	b       *Blob
	ctx     context.Context // pinned at creation; bare ReadAt runs under it
	version blob.Version
	size    int64
}

var _ io.ReaderAt = (*Snapshot)(nil)

// Blob returns the handle the snapshot was pinned from.
func (s *Snapshot) Blob() *Blob { return s.b }

// Version returns the pinned snapshot version (blob.NoVersion for the
// zero-size snapshot of an unpublished blob).
func (s *Snapshot) Version() blob.Version { return s.version }

// Size returns the blob size at the pinned version.
func (s *Snapshot) Size() int64 { return s.size }

// ReadAt implements io.ReaderAt against the pinned snapshot: it fills
// p starting at byte off of the snapshot, resolving extents directly
// into p's subslices — no intermediate whole-range buffer is
// allocated. It returns len(p) with a nil error when the range lies
// strictly inside the snapshot, and io.EOF (with however many tail
// bytes remained) for any read that reaches the snapshot's end.
// Unwritten holes read as zeros. The snapshot's creation context
// governs cancellation; use ReadAtContext for per-call control.
func (s *Snapshot) ReadAt(p []byte, off int64) (int, error) {
	return s.ReadAtContext(s.ctx, p, off)
}

// ReadAtContext is ReadAt under an explicit context.
func (s *Snapshot) ReadAtContext(ctx context.Context, p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, ErrNegativeOffset
	}
	if len(p) == 0 {
		if off >= s.size {
			return 0, io.EOF
		}
		return 0, nil
	}
	if off >= s.size {
		return 0, io.EOF
	}
	n := len(p)
	if off+int64(n) > s.size {
		n = int(s.size - off)
	}
	ctx, sp := s.b.c.tracer.Start(ctx, "readat")
	if err := s.b.c.readInto(ctx, s.b.meta, s.version, s.size, off, p[:n]); err != nil {
		sp.Finish(err)
		return 0, err
	}
	sp.Finish(nil) // a clean tail read's io.EOF is success, not an error
	if off+int64(n) == s.size {
		return n, io.EOF // the read reached the tail exactly
	}
	return n, nil
}

// Locations returns the block locations covering [off, off+length) of
// the pinned snapshot — the layout primitive affinity schedulers ask
// (Section IV-C) — without re-resolving the version.
func (s *Snapshot) Locations(ctx context.Context, off, length int64) ([]Location, error) {
	if s.version == blob.NoVersion {
		return nil, nil
	}
	return s.b.c.locationsAt(ctx, s.b.meta, s.version, s.size, off, length)
}

// ReaderOptions configures a sequential streaming reader over a
// Snapshot.
type ReaderOptions struct {
	// Readahead is the asynchronous prefetch window, in blocks. <= 0
	// keeps reads fully synchronous.
	Readahead int
	// NoCache disables block caching and prefetch entirely (ablation:
	// reads hit BlobSeer at request granularity).
	NoCache bool
}

// NewReader returns a sequential io.ReadSeekCloser over the snapshot
// with whole-block caching and bounded asynchronous readahead — the
// engine BSFS file readers run on, available to raw-blob applications
// directly.
func (s *Snapshot) NewReader(ctx context.Context, o ReaderOptions) *stream.Reader {
	return stream.NewReader(ctx, stream.ReaderConfig{
		Size:      s.size,
		BlockSize: s.b.meta.BlockSize,
		Readahead: o.Readahead,
		NoCache:   o.NoCache,
		Collector: s.b.c.coll,
		Fetch: func(ctx context.Context, off, length int64) (_ []byte, err error) {
			// One span per stream-engine block fetch, so demand reads
			// and readahead prefetches both show up in the trace.
			ctx, sp := s.b.c.tracer.Start(ctx, "stream.fetch")
			defer func() { sp.Finish(err) }()
			buf := make([]byte, length)
			n, err := s.ReadAtContext(ctx, buf, off)
			if err != nil && err != io.EOF {
				return nil, err
			}
			if int64(n) != length {
				return nil, fmt.Errorf("core: snapshot fetch [%d,+%d): short read of %d bytes", off, length, n)
			}
			return buf, nil
		},
	})
}
