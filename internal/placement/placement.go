// Package placement implements the block placement strategies compared
// in the paper. The provider manager (BlobSeer), the namenode (the
// HDFS-like baseline) and the large-scale simulator all share these
// implementations, so the load-balancing behaviour measured in
// Figure 3(b) comes from the exact same code everywhere.
//
// Strategies are stateful (the round-robin cursor, the sticky window)
// and not safe for concurrent use; the owning manager serializes calls.
package placement

import (
	"errors"
	"fmt"

	"blobseer/internal/util"
)

// Node describes one storage node as seen by an allocator.
type Node struct {
	Addr   string // RPC endpoint
	Host   string // physical host (for locality decisions)
	Blocks int64  // blocks currently stored (allocators update this)
	Alive  bool
	// Draining marks a node being decommissioned: it still serves reads
	// (and acts as a repair source) but receives no new blocks.
	Draining bool
}

// ErrNoProviders is returned when no alive node can satisfy a request.
var ErrNoProviders = errors.New("placement: no alive providers")

// Strategy selects storage targets for new blocks.
type Strategy interface {
	// Pick returns, for each of n blocks, `replicas` distinct nodes.
	// Implementations update Node.Blocks for the choices they make so
	// consecutive calls observe their own load. clientHost is the host
	// of the writing client ("" if unknown / not co-deployed).
	Pick(n, replicas int, clientHost string, nodes []*Node) ([][]*Node, error)
	Name() string
}

func alive(nodes []*Node) []*Node {
	out := make([]*Node, 0, len(nodes))
	for _, nd := range nodes {
		if nd.Alive && !nd.Draining {
			out = append(out, nd)
		}
	}
	return out
}

// spreadReplicas fills targets[1:] with distinct nodes following the
// primary in index order (wrapping), charging each for the stored block.
func spreadReplicas(primaryIdx, replicas int, pool []*Node, targets []*Node) error {
	if replicas > len(pool) {
		return fmt.Errorf("placement: replication %d exceeds %d alive providers", replicas, len(pool))
	}
	targets[0] = pool[primaryIdx]
	pool[primaryIdx].Blocks++
	for r := 1; r < replicas; r++ {
		idx := (primaryIdx + r) % len(pool)
		targets[r] = pool[idx]
		pool[idx].Blocks++
	}
	return nil
}

// RoundRobin is BlobSeer's default strategy: blocks are dealt to
// providers in strict rotation, producing the near-ideal balance the
// paper credits for BSFS's sustained throughput (Section V-D).
type RoundRobin struct {
	next int
}

// NewRoundRobin returns a fresh round-robin allocator.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Name implements Strategy.
func (s *RoundRobin) Name() string { return "roundrobin" }

// Pick implements Strategy.
func (s *RoundRobin) Pick(n, replicas int, clientHost string, nodes []*Node) ([][]*Node, error) {
	pool := alive(nodes)
	if len(pool) == 0 {
		return nil, ErrNoProviders
	}
	out := make([][]*Node, n)
	for i := range out {
		out[i] = make([]*Node, replicas)
		if err := spreadReplicas(s.next%len(pool), replicas, pool, out[i]); err != nil {
			return nil, err
		}
		s.next = (s.next + 1) % len(pool)
	}
	return out, nil
}

// Random places each block on an independently uniform node.
type Random struct {
	rng *util.SplitMix64
}

// NewRandom returns a seeded uniform-random allocator.
func NewRandom(seed uint64) *Random { return &Random{rng: util.NewSplitMix64(seed)} }

// Name implements Strategy.
func (s *Random) Name() string { return "random" }

// Pick implements Strategy.
func (s *Random) Pick(n, replicas int, clientHost string, nodes []*Node) ([][]*Node, error) {
	pool := alive(nodes)
	if len(pool) == 0 {
		return nil, ErrNoProviders
	}
	out := make([][]*Node, n)
	for i := range out {
		out[i] = make([]*Node, replicas)
		if err := spreadReplicas(s.rng.Intn(len(pool)), replicas, pool, out[i]); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// RandomSticky models the chunk clustering the paper measured for HDFS
// when a single remote client writes a large file (Figure 3(b)): the
// namenode picks a target and keeps re-using it for a window of
// consecutive blocks before switching. Window=1 degenerates to Random;
// larger windows reproduce larger measured unbalance.
type RandomSticky struct {
	Window  int
	rng     *util.SplitMix64
	current int
	used    int
}

// NewRandomSticky returns a sticky allocator with the given window.
func NewRandomSticky(window int, seed uint64) *RandomSticky {
	if window < 1 {
		window = 1
	}
	return &RandomSticky{Window: window, rng: util.NewSplitMix64(seed), current: -1}
}

// Name implements Strategy.
func (s *RandomSticky) Name() string { return fmt.Sprintf("randomsticky(%d)", s.Window) }

// Pick implements Strategy.
func (s *RandomSticky) Pick(n, replicas int, clientHost string, nodes []*Node) ([][]*Node, error) {
	pool := alive(nodes)
	if len(pool) == 0 {
		return nil, ErrNoProviders
	}
	out := make([][]*Node, n)
	for i := range out {
		if s.current < 0 || s.current >= len(pool) || s.used >= s.Window {
			s.current = s.rng.Intn(len(pool))
			s.used = 0
		}
		out[i] = make([]*Node, replicas)
		if err := spreadReplicas(s.current, replicas, pool, out[i]); err != nil {
			return nil, err
		}
		s.used++
	}
	return out, nil
}

// LocalFirst is the HDFS 0.20 default policy: if the writing client is
// co-deployed with a storage node, the first replica lands there;
// otherwise the Fallback strategy decides. This is why the paper's
// Section V-D deploys test clients on dedicated nodes — otherwise HDFS
// stores the whole file locally.
type LocalFirst struct {
	Fallback Strategy
}

// NewLocalFirst wraps fallback with local-first behaviour.
func NewLocalFirst(fallback Strategy) *LocalFirst { return &LocalFirst{Fallback: fallback} }

// Name implements Strategy.
func (s *LocalFirst) Name() string { return "localfirst+" + s.Fallback.Name() }

// Pick implements Strategy.
func (s *LocalFirst) Pick(n, replicas int, clientHost string, nodes []*Node) ([][]*Node, error) {
	pool := alive(nodes)
	if len(pool) == 0 {
		return nil, ErrNoProviders
	}
	localIdx := -1
	if clientHost != "" {
		for i, nd := range pool {
			if nd.Host == clientHost {
				localIdx = i
				break
			}
		}
	}
	if localIdx < 0 {
		return s.Fallback.Pick(n, replicas, clientHost, nodes)
	}
	out := make([][]*Node, n)
	for i := range out {
		out[i] = make([]*Node, replicas)
		if err := spreadReplicas(localIdx, replicas, pool, out[i]); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// LeastLoaded greedily picks the node currently storing the fewest
// blocks; with a single writer it behaves like round-robin, but it also
// absorbs heterogeneous starting loads.
type LeastLoaded struct{}

// NewLeastLoaded returns the greedy balancer.
func NewLeastLoaded() *LeastLoaded { return &LeastLoaded{} }

// Name implements Strategy.
func (s *LeastLoaded) Name() string { return "leastloaded" }

// Pick implements Strategy.
func (s *LeastLoaded) Pick(n, replicas int, clientHost string, nodes []*Node) ([][]*Node, error) {
	pool := alive(nodes)
	if len(pool) == 0 {
		return nil, ErrNoProviders
	}
	out := make([][]*Node, n)
	for i := range out {
		best := 0
		for j, nd := range pool {
			if nd.Blocks < pool[best].Blocks {
				best = j
			}
		}
		out[i] = make([]*Node, replicas)
		if err := spreadReplicas(best, replicas, pool, out[i]); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Layout summarizes a placement as blocks-per-node counts keyed by the
// node order given, for the Figure 3(b) unbalance metric.
func Layout(nodes []*Node) []int {
	counts := make([]int, len(nodes))
	for i, nd := range nodes {
		counts[i] = int(nd.Blocks)
	}
	return counts
}
