package placement

import (
	"testing"

	"blobseer/internal/util"
)

func mkNodes(n int) []*Node {
	nodes := make([]*Node, n)
	for i := range nodes {
		nodes[i] = &Node{
			Addr:  "provider-" + string(rune('a'+i)),
			Host:  "host-" + string(rune('a'+i)),
			Alive: true,
		}
	}
	return nodes
}

func TestRoundRobinBalance(t *testing.T) {
	nodes := mkNodes(5)
	s := NewRoundRobin()
	targets, err := s.Pick(100, 1, "", nodes)
	if err != nil {
		t.Fatal(err)
	}
	if len(targets) != 100 {
		t.Fatalf("got %d target sets", len(targets))
	}
	for _, nd := range nodes {
		if nd.Blocks != 20 {
			t.Errorf("node %s has %d blocks, want 20", nd.Addr, nd.Blocks)
		}
	}
	if d := util.ManhattanDistance(Layout(nodes)); d != 0 {
		t.Errorf("round robin unbalance = %v, want 0", d)
	}
}

func TestRoundRobinCursorPersistsAcrossCalls(t *testing.T) {
	nodes := mkNodes(4)
	s := NewRoundRobin()
	for i := 0; i < 6; i++ {
		if _, err := s.Pick(1, 1, "", nodes); err != nil {
			t.Fatal(err)
		}
	}
	// 6 blocks over 4 nodes: first two nodes have 2, rest 1.
	if nodes[0].Blocks != 2 || nodes[1].Blocks != 2 || nodes[2].Blocks != 1 || nodes[3].Blocks != 1 {
		t.Errorf("layout = %v", Layout(nodes))
	}
}

func TestRoundRobinSkipsDeadNodes(t *testing.T) {
	nodes := mkNodes(3)
	nodes[1].Alive = false
	s := NewRoundRobin()
	targets, err := s.Pick(10, 1, "", nodes)
	if err != nil {
		t.Fatal(err)
	}
	for _, set := range targets {
		if set[0] == nodes[1] {
			t.Fatal("placed block on dead node")
		}
	}
	if nodes[1].Blocks != 0 {
		t.Error("dead node charged")
	}
}

func TestReplicationDistinctTargets(t *testing.T) {
	nodes := mkNodes(5)
	s := NewRoundRobin()
	targets, err := s.Pick(20, 3, "", nodes)
	if err != nil {
		t.Fatal(err)
	}
	for _, set := range targets {
		if len(set) != 3 {
			t.Fatalf("replica set size = %d", len(set))
		}
		seen := map[*Node]bool{}
		for _, nd := range set {
			if seen[nd] {
				t.Fatal("duplicate replica target")
			}
			seen[nd] = true
		}
	}
	total := int64(0)
	for _, nd := range nodes {
		total += nd.Blocks
	}
	if total != 60 {
		t.Errorf("total stored = %d, want 60", total)
	}
}

func TestReplicationExceedsProviders(t *testing.T) {
	nodes := mkNodes(2)
	s := NewRoundRobin()
	if _, err := s.Pick(1, 3, "", nodes); err == nil {
		t.Fatal("over-replication accepted")
	}
}

func TestNoAliveProviders(t *testing.T) {
	nodes := mkNodes(2)
	nodes[0].Alive = false
	nodes[1].Alive = false
	for _, s := range []Strategy{NewRoundRobin(), NewRandom(1), NewRandomSticky(4, 1), NewLeastLoaded(), NewLocalFirst(NewRandom(1))} {
		if _, err := s.Pick(1, 1, "", nodes); err != ErrNoProviders {
			t.Errorf("%s: err = %v, want ErrNoProviders", s.Name(), err)
		}
	}
}

func TestRandomCoversNodes(t *testing.T) {
	nodes := mkNodes(8)
	s := NewRandom(42)
	if _, err := s.Pick(400, 1, "", nodes); err != nil {
		t.Fatal(err)
	}
	for _, nd := range nodes {
		if nd.Blocks == 0 {
			t.Errorf("node %s never chosen in 400 picks", nd.Addr)
		}
	}
}

func TestRandomStickyClustersMoreThanRandom(t *testing.T) {
	// The calibrated HDFS model: a sticky window must produce strictly
	// more unbalance than pure random placement, which in turn is more
	// unbalanced than round robin. This ordering is the essence of
	// Figure 3(b).
	const blocks = 246 // the paper's 16 GB file
	const N = 50

	run := func(s Strategy) float64 {
		nodes := mkNodes(N)
		if _, err := s.Pick(blocks, 1, "", nodes); err != nil {
			t.Fatal(err)
		}
		return util.ManhattanDistance(Layout(nodes))
	}
	rr := run(NewRoundRobin())
	rnd := run(NewRandom(7))
	sticky := run(NewRandomSticky(8, 7))
	if !(rr <= rnd && rnd < sticky) {
		t.Errorf("unbalance ordering violated: rr=%v random=%v sticky=%v", rr, rnd, sticky)
	}
}

func TestRandomStickyWindow(t *testing.T) {
	nodes := mkNodes(10)
	s := NewRandomSticky(5, 3)
	targets, err := s.Pick(5, 1, "", nodes)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(targets); i++ {
		if targets[i][0] != targets[0][0] {
			t.Fatal("sticky window switched nodes early")
		}
	}
}

func TestLocalFirstUsesLocalNode(t *testing.T) {
	nodes := mkNodes(4)
	s := NewLocalFirst(NewRandom(1))
	targets, err := s.Pick(10, 1, "host-c", nodes)
	if err != nil {
		t.Fatal(err)
	}
	for _, set := range targets {
		if set[0].Host != "host-c" {
			t.Fatalf("block placed on %s, want host-c", set[0].Host)
		}
	}
}

func TestLocalFirstFallsBackForRemoteClient(t *testing.T) {
	nodes := mkNodes(4)
	s := NewLocalFirst(NewRoundRobin())
	if _, err := s.Pick(8, 1, "not-a-storage-host", nodes); err != nil {
		t.Fatal(err)
	}
	if d := util.ManhattanDistance(Layout(nodes)); d != 0 {
		t.Errorf("fallback round robin unbalance = %v", d)
	}
}

func TestLeastLoadedAbsorbsSkew(t *testing.T) {
	nodes := mkNodes(3)
	nodes[0].Blocks = 10 // pre-existing load
	s := NewLeastLoaded()
	if _, err := s.Pick(20, 1, "", nodes); err != nil {
		t.Fatal(err)
	}
	// All 20 blocks should go to the two empty nodes.
	if nodes[0].Blocks != 10 {
		t.Errorf("loaded node received blocks: %d", nodes[0].Blocks)
	}
	if nodes[1].Blocks != 10 || nodes[2].Blocks != 10 {
		t.Errorf("layout = %v", Layout(nodes))
	}
}

func TestStrategyNames(t *testing.T) {
	if NewRoundRobin().Name() != "roundrobin" {
		t.Error("roundrobin name")
	}
	if NewRandomSticky(8, 0).Name() != "randomsticky(8)" {
		t.Error("sticky name")
	}
	if NewLocalFirst(NewRandom(0)).Name() != "localfirst+random" {
		t.Error("localfirst name")
	}
}
