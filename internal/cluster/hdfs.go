package cluster

import (
	"fmt"
	"net"

	"blobseer/internal/hdfs"
	"blobseer/internal/placement"
	"blobseer/internal/provider"
	"blobseer/internal/rpc"
	"blobseer/internal/store"
	"blobseer/internal/util"
)

// HDFSConfig describes an HDFS-like baseline deployment.
type HDFSConfig struct {
	Datanodes   int
	BlockSize   int64
	Replication int
	Strategy    placement.Strategy // default: hdfs.DefaultStrategy(seed 1)
	UseTCP      bool
}

func (c *HDFSConfig) fill() {
	if c.Datanodes == 0 {
		c.Datanodes = 4
	}
	if c.BlockSize == 0 {
		c.BlockSize = util.MB
	}
	if c.Replication == 0 {
		c.Replication = 1
	}
	if c.Strategy == nil {
		c.Strategy = hdfs.DefaultStrategy(1)
	}
}

// HDFS is a running baseline deployment.
type HDFS struct {
	Cfg           HDFSConfig
	Pool          *rpc.Pool
	NNAddr        string
	DatanodeAddrs []string

	nnSvc   *hdfs.Service
	dnSvcs  map[string]*provider.Service
	net     *rpc.InprocNetwork
	servers []*rpc.Server
}

// StartHDFS deploys a namenode plus datanodes.
func StartHDFS(cfg HDFSConfig) (*HDFS, error) {
	cfg.fill()
	h := &HDFS{Cfg: cfg, dnSvcs: make(map[string]*provider.Service)}

	var listen func(name string) (net.Listener, string, error)
	if cfg.UseTCP {
		listen = func(name string) (net.Listener, string, error) {
			lis, err := rpc.ListenTCP("127.0.0.1:0")
			if err != nil {
				return nil, "", err
			}
			return lis, lis.Addr().String(), nil
		}
		h.Pool = rpc.NewPool(rpc.TCPDialer)
	} else {
		h.net = rpc.NewInprocNetwork()
		listen = func(name string) (net.Listener, string, error) {
			lis, err := h.net.Listen(name)
			if err != nil {
				return nil, "", err
			}
			return lis, name, nil
		}
		h.Pool = rpc.NewPool(h.net.Dial)
	}

	serve := func(name string, mux *rpc.Mux) (string, error) {
		lis, addr, err := listen(name)
		if err != nil {
			return "", err
		}
		srv := rpc.NewServer(mux)
		h.servers = append(h.servers, srv)
		go srv.Serve(lis)
		return addr, nil
	}

	h.nnSvc = hdfs.NewService(hdfs.NewNamenode(cfg.BlockSize, cfg.Strategy))
	nnAddr, err := serve("namenode", h.nnSvc.Mux())
	if err != nil {
		h.Stop()
		return nil, err
	}
	h.NNAddr = nnAddr

	for i := 0; i < cfg.Datanodes; i++ {
		svc := provider.NewService(store.NewMemStore())
		addr, err := serve(fmt.Sprintf("datanode-%d", i), svc.Mux())
		if err != nil {
			h.Stop()
			return nil, err
		}
		h.DatanodeAddrs = append(h.DatanodeAddrs, addr)
		h.dnSvcs[addr] = svc
		h.nnSvc.Namenode().RegisterDatanode(addr, h.HostOf(i))
	}
	return h, nil
}

// HostOf returns the synthetic host name of datanode i (shared scheme
// with BlobSeer deployments so co-deployment scenarios line up).
func (h *HDFS) HostOf(i int) string { return fmt.Sprintf("host-%d", i) }

// NewFS returns an HDFS client for this deployment.
func (h *HDFS) NewFS(host string) (*hdfs.FS, error) {
	return hdfs.New(hdfs.Config{
		Pool:        h.Pool,
		NNAddr:      h.NNAddr,
		BlockSize:   h.Cfg.BlockSize,
		Replication: h.Cfg.Replication,
		Host:        host,
	})
}

// Namenode exposes the namenode core (tests, layout metrics).
func (h *HDFS) Namenode() *hdfs.Namenode { return h.nnSvc.Namenode() }

// DatanodeService returns the daemon behind a datanode address.
func (h *HDFS) DatanodeService(addr string) *provider.Service { return h.dnSvcs[addr] }

// Stop shuts the deployment down.
func (h *HDFS) Stop() {
	for _, s := range h.servers {
		s.Close()
	}
	if h.Pool != nil {
		h.Pool.Close()
	}
}
