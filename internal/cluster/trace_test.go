package cluster

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"blobseer/internal/blob"
	"blobseer/internal/core"
	"blobseer/internal/trace"
)

// findService walks a stitched tree and returns the first node whose
// service name has the given prefix, plus its depth below root.
func findService(n *trace.Node, prefix string, depth int) (*trace.Node, int) {
	if strings.HasPrefix(n.Span.Service, prefix) {
		return n, depth
	}
	for _, c := range n.Children {
		if f, d := findService(c, prefix, depth+1); f != nil {
			return f, d
		}
	}
	return nil, 0
}

// TestClusterTraceEndToEnd is the acceptance path: one traced BSFS-level
// read against a live in-process cluster must stitch into a single tree
// whose root is the client span, with the version manager, metadata DHT
// and data provider server spans correctly nested below it.
func TestClusterTraceEndToEnd(t *testing.T) {
	cl, err := StartBlobSeer(Config{
		DataProviders: 2,
		MetaProviders: 2,
		BlockSize:     4096,
		MetricsAddr:   "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()

	client := cl.NewClient("")
	ctx := context.Background()
	b, err := client.CreateBlob(ctx, 4096, 1)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte("trace-me!"), 2048) // > 4 blocks
	v, err := b.Write(ctx, 0, data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.WaitPublished(ctx, v, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	// The traced operation: one flat read of the latest snapshot.
	tctx, id := core.WithTrace(ctx)
	got, err := client.Read(tctx, b.ID(), blob.NoVersion, 0, int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("traced read returned wrong bytes")
	}

	spans := cl.TraceExporter().Spans(id)
	if len(spans) < 4 {
		t.Fatalf("exporter retained %d spans of the trace, want >= 4: %+v", len(spans), spans)
	}
	roots := trace.Stitch(spans)
	if len(roots) != 1 {
		t.Fatalf("Stitch produced %d roots, want one connected tree:\n%s",
			len(roots), trace.FormatTree(roots))
	}
	root := roots[0]
	tree := trace.FormatTree(roots)
	if root.Span.Service != "client" || root.Span.Op != "read" {
		t.Errorf("root = %s.%s, want client.read\n%s", root.Span.Service, root.Span.Op, tree)
	}

	// The version manager answers the snapshot pin directly under the
	// client's read span.
	vm, vmDepth := findService(root, "vmanager", 0)
	if vm == nil {
		t.Fatalf("no vmanager span in the tree:\n%s", tree)
	}
	if vm.Span.Op != "latest" || vm.Span.Parent != root.Span.ID || vmDepth != 1 {
		t.Errorf("vmanager span = op %q parent %d depth %d, want latest under the root\n%s",
			vm.Span.Op, vm.Span.Parent, vmDepth, tree)
	}

	// The metadata DHT serves the tree resolution under the client's
	// resolve span, which itself nests under readat.
	meta, metaDepth := findService(root, "meta-", 0)
	if meta == nil {
		t.Fatalf("no metadata DHT span in the tree:\n%s", tree)
	}
	if metaDepth < 2 {
		t.Errorf("meta span %s.%s at depth %d, want nested under the client's resolve\n%s",
			meta.Span.Service, meta.Span.Op, metaDepth, tree)
	}

	// The data providers serve the block fetches below readat.
	prov, provDepth := findService(root, "provider-", 0)
	if prov == nil {
		t.Fatalf("no provider span in the tree:\n%s", tree)
	}
	if prov.Span.Op != "get_block" || provDepth < 2 {
		t.Errorf("provider span = op %q depth %d, want get_block under readat\n%s",
			prov.Span.Op, provDepth, tree)
	}

	// The same trace must be reachable over HTTP exactly the way
	// `bsfsctl trace` fetches it: via /trace on the metrics listener.
	fetched, err := trace.Fetch(cl.MetricsURL(), id)
	if err != nil {
		t.Fatalf("HTTP trace fetch: %v", err)
	}
	if len(fetched) != len(spans) {
		t.Errorf("HTTP fetch returned %d spans, exporter holds %d", len(fetched), len(spans))
	}
}

// TestClusterTraceSurvivesVMKillRestart: a vmanager shard killed and
// restarted keeps its original tracer, so spans recorded after recovery
// still join client traces — and the retry loop that rides out the
// outage carries the trace context to whichever incarnation answers.
func TestClusterTraceSurvivesVMKillRestart(t *testing.T) {
	cl, err := StartBlobSeer(Config{
		DataProviders: 2,
		MetaProviders: 2,
		BlockSize:     4096,
		DataDir:       t.TempDir(),
		CallTimeout:   2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()

	client := cl.NewClient("")
	ctx := context.Background()
	b, err := client.CreateBlob(ctx, 4096, 1)
	if err != nil {
		t.Fatal(err)
	}
	v, err := b.Write(ctx, 0, bytes.Repeat([]byte("x"), 4096))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.WaitPublished(ctx, v, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	cl.KillVMShard(0)
	if err := cl.RestartVMShard(0); err != nil {
		t.Fatal(err)
	}

	// The first traced call after the restart may land on a severed
	// pooled connection; retry like a real client until one incarnation
	// answers. The trace ID rides the context, not the connection.
	tctx, id := core.WithTrace(ctx)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, _, err = client.Latest(tctx, b.ID()); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("Latest never succeeded after restart: %v", err)
		}
		time.Sleep(50 * time.Millisecond)
	}

	spans := cl.TraceExporter().Spans(id)
	var vmSpan *trace.Span
	for i := range spans {
		if strings.HasPrefix(spans[i].Service, "vmanager") && spans[i].Op == "latest" {
			vmSpan = &spans[i]
		}
	}
	if vmSpan == nil {
		t.Fatalf("restarted vmanager recorded no span for the traced call: %+v", spans)
	}
	if vmSpan.Trace != id {
		t.Errorf("vmanager span trace = %v, want %v", vmSpan.Trace, id)
	}
}

// TestClusterNoSpanLeakUntraced: with sampling off (the default
// Config), a full write/read workload must record zero spans anywhere —
// the tracing plane is compiled in but strictly pay-for-use.
func TestClusterNoSpanLeakUntraced(t *testing.T) {
	cl, err := StartBlobSeer(Config{
		DataProviders: 2,
		MetaProviders: 2,
		BlockSize:     4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()

	client := cl.NewClient("")
	ctx := context.Background()
	b, err := client.CreateBlob(ctx, 4096, 1)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte("y"), 2*4096)
	v, err := b.Write(ctx, 0, data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.WaitPublished(ctx, v, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Read(ctx, b.ID(), blob.NoVersion, 0, int64(len(data))); err != nil {
		t.Fatal(err)
	}

	if n := cl.ClientTracer().Recorded(); n != 0 {
		t.Errorf("client tracer recorded %d spans for an untraced workload", n)
	}
	cl.tracersMu.Lock()
	defer cl.tracersMu.Unlock()
	for name, tr := range cl.tracers {
		if n := tr.Recorded(); n != 0 {
			t.Errorf("%s tracer recorded %d spans for an untraced workload", name, n)
		}
	}
}

// TestClusterTraceSampling: Config.TraceSample=1 samples organically —
// no explicit WithTrace — and the slow-root index surfaces the roots.
func TestClusterTraceSampling(t *testing.T) {
	cl, err := StartBlobSeer(Config{
		DataProviders: 2,
		MetaProviders: 2,
		BlockSize:     4096,
		TraceSample:   1,
		TraceSlow:     time.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()

	client := cl.NewClient("")
	ctx := context.Background()
	b, err := client.CreateBlob(ctx, 4096, 1)
	if err != nil {
		t.Fatal(err)
	}
	v, err := b.Write(ctx, 0, bytes.Repeat([]byte("z"), 4096))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.WaitPublished(ctx, v, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	if n := cl.ClientTracer().Recorded(); n == 0 {
		t.Error("TraceSample=1 recorded no client spans")
	}
	roots := cl.TraceExporter().SlowRoots()
	if len(roots) == 0 {
		t.Fatal("TraceSlow recorded no slow roots")
	}
	// Only the client originates roots; daemon spans always have a
	// parent and must never pollute the slow index.
	for _, r := range roots {
		if r.Service != "client" {
			t.Errorf("slow index holds non-root span %s.%s", r.Service, r.Op)
		}
	}
}
