// Package cluster assembles whole deployments in one process: every
// daemon of Figure 2 (version manager, provider manager, data
// providers, metadata providers, namespace manager) wired over an
// in-process or TCP transport, exactly as the automated Grid'5000
// deployment of Section V-A wires physical machines. Tests, examples
// and the CLI tools all start clusters through this package.
package cluster

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"blobseer/internal/bsfs"
	"blobseer/internal/core"
	"blobseer/internal/dht"
	"blobseer/internal/mdtree"
	"blobseer/internal/metrics"
	"blobseer/internal/namespace"
	"blobseer/internal/placement"
	"blobseer/internal/pmanager"
	"blobseer/internal/provider"
	"blobseer/internal/repair"
	"blobseer/internal/rpc"
	"blobseer/internal/store"
	"blobseer/internal/trace"
	"blobseer/internal/util"
	"blobseer/internal/vmanager"
)

// Config describes a BlobSeer deployment.
type Config struct {
	DataProviders   int
	MetaProviders   int
	BlockSize       int64
	Replication     int // data replication level
	MetaReplication int // DHT replication level
	MetaCacheSize   int // per-client immutable-node cache entries (<0 default, 0 off)
	Strategy        placement.Strategy
	WriteTimeout    time.Duration  // janitor abort threshold; 0 disables
	UseTCP          bool           // listen on loopback TCP instead of inproc
	DataPlane       core.DataPlane // write transport (chained by default)
	FrameSize       int            // chained-plane frame size (0 = provider default)
	// BSFS streaming-pipeline tunables (Section IV-B): 0 picks the
	// bsfs defaults, negative disables (fully synchronous block I/O).
	ReadaheadBlocks  int  // reader async prefetch window, in blocks
	WriteBehindDepth int  // writer background commits in flight
	DisableCache     bool // ablation: no block cache, no pipeline

	// Self-healing replication (the repair plane). Heartbeats and the
	// expiry ticker form the liveness loop; the repair engine restores
	// redundancy after provider loss. All three default off so the
	// paper-faithful experiments keep their exact traffic shape.
	HeartbeatInterval time.Duration // providers heartbeat store stats to the pmanager (0 disables)
	ExpireAfter       time.Duration // pmanager expires providers silent this long (0 disables)
	RepairInterval    time.Duration // background repair scan period (0 = on-demand via RepairEngine only)
	RepairConcurrency int           // parallel block repairs (0 = repair.DefaultConcurrency)

	// VMShards runs K independent version-manager shard services
	// instead of one. Shard k owns the blob IDs with
	// vmanager.ShardOf(id, K) == k and keeps its own WAL (under
	// DataDir/vmanager/shard-<k> when durable); clients route through a
	// vmanager.Router, so publish throughput scales with K. 0/1 keeps
	// the classic single manager.
	VMShards int

	// Crash durability (the control-plane WAL). DataDir enables
	// write-ahead logging for the version manager and the namespace
	// under DataDir/vmanager and DataDir/namespace; both recover their
	// state from the logs at start. Empty keeps the historical
	// in-memory-only control plane.
	DataDir string
	// WALSyncInterval selects the fsync policy: 0 syncs every record
	// (no acknowledged operation is ever lost); >0 batches fsyncs at
	// this interval (client-acked publishes are still always synced).
	WALSyncInterval time.Duration
	// CallTimeout is the per-call RPC I/O deadline applied to the
	// deployment's shared pool: calls against a hung peer fail (and
	// become retryable) after this long. 0 disables, the historical
	// behavior.
	CallTimeout time.Duration

	// MetricsAddr, when non-empty, serves the whole deployment's
	// metrics over HTTP at this address ("127.0.0.1:0" picks a free
	// port; MetricsURL reports the bound endpoint). Every daemon's
	// registry is exported under its service name regardless — the
	// address only controls whether an HTTP listener fronts them. The
	// same listener also serves the trace exporter at /trace.
	MetricsAddr string

	// Distributed tracing. Every daemon always carries a tracer (it
	// records only requests that arrive already-traced, so an untraced
	// workload costs nothing); TraceSample sets the client-side head
	// sampling probability in [0,1], TraceSlow force-samples any client
	// root operation slower than the threshold, and TraceBuf bounds
	// each tracer's span ring (0 = trace.DefaultBufSpans).
	TraceSample float64
	TraceSlow   time.Duration
	TraceBuf    int

	// StoreURL selects every data provider's block-store backend (see
	// store.Open): "mem://" (the default when empty), "file:///path",
	// "http://peer/base", or a composing "tiered://?hot=...&cold=...".
	// A "{n}" anywhere in the URL expands to the provider index, so one
	// template configures the whole fleet without directory collisions.
	StoreURL string
}

func (c *Config) fill() {
	if c.DataProviders == 0 {
		c.DataProviders = 4
	}
	if c.MetaProviders == 0 {
		c.MetaProviders = 2
	}
	if c.BlockSize == 0 {
		c.BlockSize = util.MB // tests default to small blocks
	}
	if c.Replication == 0 {
		c.Replication = 1
	}
	if c.MetaReplication == 0 {
		c.MetaReplication = 1
	}
	if c.Strategy == nil {
		c.Strategy = placement.NewRoundRobin()
	}
	if c.VMShards == 0 {
		c.VMShards = 1
	}
	if c.ReadaheadBlocks == 0 {
		c.ReadaheadBlocks = bsfs.DefaultReadaheadBlocks
	}
	if c.WriteBehindDepth == 0 {
		c.WriteBehindDepth = bsfs.DefaultWriteBehindDepth
	}
}

// BlobSeer is a running deployment.
type BlobSeer struct {
	Cfg           Config
	Pool          *rpc.Pool
	VMAddr        string   // shard 0's address (the whole manager when unsharded)
	VMAddrs       []string // every version-manager shard, in shard order
	PMAddr        string
	NSAddr        string
	ProviderAddrs []string
	MetaAddrs     []string
	MetaStore     mdtree.Store
	Overlay       *repair.Overlay

	vmSvcs     []*vmanager.Service // per shard, in shard order
	pmSvc      *pmanager.Service
	nsSvc      *namespace.Service
	provSvcs   map[string]*provider.Service
	provStores []store.Store // provider-order backends, closed on Stop
	metaSvcs   map[string]*dht.MetaService

	repairEng *repair.Engine

	exporter    *metrics.Exporter
	metricsURL  string
	stopMetrics func() error

	tracersMu    sync.Mutex
	tracers      map[string]*trace.Tracer // per-daemon, by service name
	clientTracer *trace.Tracer            // shared by every NewClient of this deployment
	traceExp     *trace.Exporter

	net       *rpc.InprocNetwork
	serversMu sync.Mutex
	servers   []*rpc.Server
	srvByAddr map[string]*rpc.Server

	heartbeatMu   sync.Mutex
	stopHeartbeat map[string]chan struct{} // per-provider heartbeat loops
}

// listenerFactory abstracts inproc vs TCP endpoints.
type listenerFactory func(name string) (net.Listener, string, error)

// StartBlobSeer deploys all services of a BlobSeer instance.
func StartBlobSeer(cfg Config) (*BlobSeer, error) {
	cfg.fill()
	c := &BlobSeer{
		Cfg:           cfg,
		provSvcs:      make(map[string]*provider.Service),
		metaSvcs:      make(map[string]*dht.MetaService),
		srvByAddr:     make(map[string]*rpc.Server),
		stopHeartbeat: make(map[string]chan struct{}),
		tracers:       make(map[string]*trace.Tracer),
		traceExp:      trace.NewExporter(),
	}
	c.clientTracer = trace.New("client", cfg.TraceBuf)
	c.clientTracer.SetSampling(cfg.TraceSample, cfg.TraceSlow)
	c.traceExp.Register(c.clientTracer)

	var listen listenerFactory
	if cfg.UseTCP {
		listen = func(name string) (net.Listener, string, error) {
			lis, err := rpc.ListenTCP("127.0.0.1:0")
			if err != nil {
				return nil, "", err
			}
			return lis, lis.Addr().String(), nil
		}
		c.Pool = rpc.NewPool(rpc.TCPDialer)
	} else {
		c.net = rpc.NewInprocNetwork()
		listen = func(name string) (net.Listener, string, error) {
			lis, err := c.net.Listen(name)
			if err != nil {
				return nil, "", err
			}
			return lis, name, nil
		}
		c.Pool = rpc.NewPool(c.net.Dial)
	}
	if cfg.CallTimeout > 0 {
		c.Pool.SetCallTimeout(cfg.CallTimeout)
	}

	serve := func(name string, mux *rpc.Mux, opName func(uint16) string) (string, error) {
		lis, addr, err := listen(name)
		if err != nil {
			return "", err
		}
		srv := rpc.NewServer(mux)
		srv.SetTrace(c.tracerFor(name), opName)
		c.serversMu.Lock()
		c.servers = append(c.servers, srv)
		c.srvByAddr[addr] = srv
		c.serversMu.Unlock()
		go srv.Serve(lis)
		return addr, nil
	}

	// Metadata providers + DHT.
	for i := 0; i < cfg.MetaProviders; i++ {
		svc := dht.NewMetaService(store.NewMemStore())
		addr, err := serve(fmt.Sprintf("meta-%d", i), svc.Mux(), dht.MethodName)
		if err != nil {
			c.Stop()
			return nil, err
		}
		c.MetaAddrs = append(c.MetaAddrs, addr)
		c.metaSvcs[addr] = svc
	}
	ring := dht.NewRing(c.MetaAddrs, dht.DefaultVnodes)
	dhtClient := dht.NewClient(ring, c.Pool, cfg.MetaReplication)
	c.MetaStore = mdtree.NewDHTStore(dhtClient)
	// The location overlay shares the metadata DHT: relocation records
	// are tiny KV entries under their own namespace.
	c.Overlay = repair.NewOverlay(dhtClient)

	// Version manager shards (with abort repair over the DHT, each
	// recovered from its own WAL when the deployment is durable).
	for k := 0; k < cfg.VMShards; k++ {
		vmState, err := c.newVMState(k)
		if err != nil {
			c.Stop()
			return nil, err
		}
		svc := vmanager.NewService(vmState)
		if cfg.WriteTimeout > 0 {
			svc.StartJanitor(cfg.WriteTimeout, cfg.WriteTimeout/2)
		}
		addr, err := serve(c.vmName(k), svc.Mux(), vmanager.MethodName)
		if err != nil {
			svc.StopJanitor()
			c.Stop()
			return nil, err
		}
		c.vmSvcs = append(c.vmSvcs, svc)
		c.VMAddrs = append(c.VMAddrs, addr)
	}
	c.VMAddr = c.VMAddrs[0]

	// Provider manager (with the liveness-expiry loop when configured).
	c.pmSvc = pmanager.NewService(pmanager.NewState(cfg.Strategy))
	if cfg.ExpireAfter > 0 {
		c.pmSvc.StartExpiry(cfg.ExpireAfter, cfg.ExpireAfter/2)
	}
	pmAddr, err := serve("pmanager", c.pmSvc.Mux(), pmanager.MethodName)
	if err != nil {
		c.Stop()
		return nil, err
	}
	c.PMAddr = pmAddr

	// Namespace manager (the BSFS layer's file->BLOB map).
	nsState, err := c.newNSState()
	if err != nil {
		c.Stop()
		return nil, err
	}
	c.nsSvc = namespace.NewService(nsState)
	nsAddr, err := serve("namespace", c.nsSvc.Mux(), namespace.MethodName)
	if err != nil {
		c.Stop()
		return nil, err
	}
	c.NSAddr = nsAddr

	// Data providers; each lives on its own synthetic host, mirroring
	// the paper's one-provider-per-machine deployment. The block store
	// behind each comes from the backend URL (mem:// when unset).
	storeURL := cfg.StoreURL
	if storeURL == "" {
		storeURL = "mem://"
	}
	for i := 0; i < cfg.DataProviders; i++ {
		st, err := store.OpenMember(storeURL, i)
		if err != nil {
			c.Stop()
			return nil, fmt.Errorf("cluster: provider %d store: %w", i, err)
		}
		c.provStores = append(c.provStores, st)
		svc := provider.NewService(st, provider.WithForwarder(c.Pool))
		addr, err := serve(fmt.Sprintf("provider-%d", i), svc.Mux(), provider.MethodName)
		if err != nil {
			c.Stop()
			return nil, err
		}
		c.ProviderAddrs = append(c.ProviderAddrs, addr)
		c.provSvcs[addr] = svc
		c.pmSvc.State().Register(addr, c.HostOf(i))
		if cfg.HeartbeatInterval > 0 {
			c.startHeartbeat(addr, c.HostOf(i), svc)
		}
	}

	// Repair engine: scanner + executor over the deployment's own
	// client stack. Constructed always (tests and bsfsctl-style tools
	// drive RunOnce directly); the background loop only runs when a
	// scan period is configured.
	c.repairEng = repair.New(repair.Config{
		VM:          c.newVMAPI(),
		PM:          pmanager.NewClient(c.Pool, c.PMAddr),
		Prov:        provider.NewClient(c.Pool),
		Meta:        c.MetaStore,
		Overlay:     c.Overlay,
		Concurrency: cfg.RepairConcurrency,
	})
	if cfg.RepairInterval > 0 {
		c.repairEng.Start(cfg.RepairInterval)
	}

	// Metrics export: every daemon's registry under its service name —
	// the same layout a multi-machine deployment gets from one
	// blobseerd -metrics-addr per daemon, collapsed onto one endpoint.
	c.exporter = metrics.NewExporter()
	for k, svc := range c.vmSvcs {
		c.exporter.Register(c.vmName(k), svc.Metrics())
	}
	c.exporter.Register("pmanager", c.pmSvc.Metrics())
	c.exporter.Register("namespace", c.nsSvc.Metrics())
	for i, addr := range c.ProviderAddrs {
		c.exporter.Register(fmt.Sprintf("provider-%d", i), c.provSvcs[addr].Metrics())
	}
	for i, addr := range c.MetaAddrs {
		c.exporter.Register(fmt.Sprintf("meta-%d", i), c.metaSvcs[addr].Metrics())
	}
	c.exporter.Register("repair", c.repairEng.Metrics())
	if cfg.MetricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", c.exporter)
		mux.Handle("/", c.exporter)
		mux.Handle("/trace", c.traceExp)
		bound, stop, err := metrics.ServeHandler(cfg.MetricsAddr, mux)
		if err != nil {
			c.Stop()
			return nil, fmt.Errorf("cluster: metrics listener: %w", err)
		}
		c.metricsURL = "http://" + bound
		c.stopMetrics = stop
	}
	return c, nil
}

// tracerFor returns (creating on first use) the tracer of a named
// daemon and registers it with the deployment trace exporter. Daemon
// tracers never head-sample on their own — they record exactly the
// requests that arrive carrying a sampled trace context.
func (c *BlobSeer) tracerFor(name string) *trace.Tracer {
	c.tracersMu.Lock()
	defer c.tracersMu.Unlock()
	t, ok := c.tracers[name]
	if !ok {
		t = trace.New(name, c.Cfg.TraceBuf)
		c.tracers[name] = t
		c.traceExp.Register(t)
	}
	return t
}

// startHeartbeat launches the provider's liveness loop: every interval
// it reports itself (with live store statistics) to the provider
// manager over the same RPC path a real daemon uses, re-registering if
// the manager has lost its membership.
func (c *BlobSeer) startHeartbeat(addr, host string, svc *provider.Service) {
	stop := make(chan struct{})
	c.heartbeatMu.Lock()
	c.stopHeartbeat[addr] = stop
	c.heartbeatMu.Unlock()
	pm := pmanager.NewClient(c.Pool, c.PMAddr)
	interval := c.Cfg.HeartbeatInterval
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				ctx, cancel := context.WithTimeout(context.Background(), interval)
				if known, err := pm.Heartbeat(ctx, addr, svc.Store().Stats()); err == nil && !known {
					_ = pm.Register(ctx, addr, host)
				}
				cancel()
			}
		}
	}()
}

// KillProvider simulates a provider crash: its RPC server goes down
// (in-flight and future calls fail at the transport level) and its
// heartbeat loop stops, so only failure feedback or heartbeat expiry
// can remove it from the allocation pool — exactly a real crash's
// signature. The provider's store is NOT cleared: a later repair pass
// must not depend on it, but tests can inspect it.
func (c *BlobSeer) KillProvider(addr string) {
	c.heartbeatMu.Lock()
	if stop, ok := c.stopHeartbeat[addr]; ok {
		close(stop)
		delete(c.stopHeartbeat, addr)
	}
	c.heartbeatMu.Unlock()
	c.serversMu.Lock()
	srv, ok := c.srvByAddr[addr]
	c.serversMu.Unlock()
	if ok {
		srv.Close()
	}
}

// RepairEngine exposes the deployment's repair plane (tests, tools).
func (c *BlobSeer) RepairEngine() *repair.Engine { return c.repairEng }

// Exporter exposes the deployment-wide metrics exporter. It is always
// populated (register extra registries, snapshot in tests); an HTTP
// listener fronts it only when Config.MetricsAddr was set.
func (c *BlobSeer) Exporter() *metrics.Exporter { return c.exporter }

// MetricsURL returns the served metrics endpoint ("http://host:port"),
// or "" when Config.MetricsAddr was empty. The same listener answers
// /trace queries.
func (c *BlobSeer) MetricsURL() string { return c.metricsURL }

// TraceExporter exposes the deployment-wide trace exporter: every
// daemon's span buffer plus the shared client tracer (tests stitch
// trees from it directly; the metrics listener serves it at /trace).
func (c *BlobSeer) TraceExporter() *trace.Exporter { return c.traceExp }

// ClientTracer exposes the tracer shared by every client of this
// deployment (tests adjust sampling per-scenario with SetSampling).
func (c *BlobSeer) ClientTracer() *trace.Tracer { return c.clientTracer }

// HostOf returns the synthetic host name of data provider i.
func (c *BlobSeer) HostOf(i int) string { return fmt.Sprintf("host-%d", i) }

// NewClient returns a core client for this deployment. host may be ""
// (a dedicated, non-co-deployed node, as in the paper's microbenchmark
// boot-up phases) or one of HostOf(i) for a co-deployed client.
func (c *BlobSeer) NewClient(host string) *core.Client {
	return core.NewClient(core.Config{
		Pool:          c.Pool,
		VMAddrs:       c.VMAddrs,
		PMAddr:        c.PMAddr,
		MetaStore:     c.MetaStore,
		Host:          host,
		MetaCacheSize: c.Cfg.MetaCacheSize,
		DataPlane:     c.Cfg.DataPlane,
		FrameSize:     c.Cfg.FrameSize,
		Overlay:       c.Overlay,
		Tracer:        c.clientTracer,
	})
}

// NewMeteredClient returns a core client wired to a fresh metrics
// registry, registered with the deployment exporter under name — so a
// scrape shows the client side (resolve latency, cache hit rates,
// stream pipeline gauges) next to every daemon.
func (c *BlobSeer) NewMeteredClient(host, name string) (*core.Client, *metrics.Registry) {
	reg := metrics.NewRegistry()
	cl := core.NewClient(core.Config{
		Pool:          c.Pool,
		VMAddrs:       c.VMAddrs,
		PMAddr:        c.PMAddr,
		MetaStore:     c.MetaStore,
		Host:          host,
		MetaCacheSize: c.Cfg.MetaCacheSize,
		DataPlane:     c.Cfg.DataPlane,
		FrameSize:     c.Cfg.FrameSize,
		Overlay:       c.Overlay,
		Metrics:       reg,
		Tracer:        c.clientTracer,
	})
	c.exporter.Register(name, reg)
	return cl, reg
}

// NewMeteredBSFS returns a BSFS client whose core client exports its
// metrics through the deployment exporter under name.
func (c *BlobSeer) NewMeteredBSFS(host, name string) (*bsfs.FS, error) {
	cl, _ := c.NewMeteredClient(host, name)
	return bsfs.New(bsfs.Config{
		Core:             cl,
		NS:               namespace.NewClient(c.Pool, c.NSAddr),
		BlockSize:        c.Cfg.BlockSize,
		Replication:      c.Cfg.Replication,
		ReadaheadBlocks:  c.Cfg.ReadaheadBlocks,
		WriteBehindDepth: c.Cfg.WriteBehindDepth,
		DisableCache:     c.Cfg.DisableCache,
	})
}

// NewBSFS returns a BSFS file-system client for this deployment.
func (c *BlobSeer) NewBSFS(host string) (*bsfs.FS, error) {
	return bsfs.New(bsfs.Config{
		Core:             c.NewClient(host),
		NS:               namespace.NewClient(c.Pool, c.NSAddr),
		BlockSize:        c.Cfg.BlockSize,
		Replication:      c.Cfg.Replication,
		ReadaheadBlocks:  c.Cfg.ReadaheadBlocks,
		WriteBehindDepth: c.Cfg.WriteBehindDepth,
		DisableCache:     c.Cfg.DisableCache,
	})
}

// VMService exposes the version manager — shard 0 when sharded (tests).
func (c *BlobSeer) VMService() *vmanager.Service { return c.vmSvcs[0] }

// VMServiceShard exposes one version-manager shard (tests).
func (c *BlobSeer) VMServiceShard(k int) *vmanager.Service { return c.vmSvcs[k] }

// VMShards reports the configured shard count.
func (c *BlobSeer) VMShards() int { return len(c.vmSvcs) }

// NSService exposes the namespace manager (tests).
func (c *BlobSeer) NSService() *namespace.Service { return c.nsSvc }

// PMService exposes the provider manager (tests, layout metrics).
func (c *BlobSeer) PMService() *pmanager.Service { return c.pmSvc }

// ProviderService returns the daemon behind a provider address (tests,
// failure injection).
func (c *BlobSeer) ProviderService(addr string) *provider.Service { return c.provSvcs[addr] }

// MetaService returns the daemon behind a metadata provider address
// (tests, failure injection).
func (c *BlobSeer) MetaService(addr string) *dht.MetaService { return c.metaSvcs[addr] }

// Stop shuts every daemon down.
func (c *BlobSeer) Stop() {
	if c.stopMetrics != nil {
		_ = c.stopMetrics()
		c.stopMetrics = nil
	}
	if c.repairEng != nil {
		c.repairEng.Stop()
	}
	c.heartbeatMu.Lock()
	for addr, stop := range c.stopHeartbeat {
		close(stop)
		delete(c.stopHeartbeat, addr)
	}
	c.heartbeatMu.Unlock()
	if c.pmSvc != nil {
		c.pmSvc.StopExpiry()
	}
	for _, svc := range c.vmSvcs {
		svc.StopJanitor()
	}
	c.serversMu.Lock()
	servers := append([]*rpc.Server(nil), c.servers...)
	c.serversMu.Unlock()
	for _, s := range servers {
		s.Sever()
	}
	// Parked WaitPublished handlers would stall the drain below for
	// their full wait timeout; wake them now that no response can
	// reach a client.
	for _, svc := range c.vmSvcs {
		svc.State().ReleaseWaiters()
	}
	for _, s := range servers {
		s.Close()
	}
	// Graceful shutdown: flush the control-plane logs (the SIGTERM
	// path of blobseerd does the same).
	for _, svc := range c.vmSvcs {
		svc.State().CloseWAL()
	}
	if c.nsSvc != nil {
		c.nsSvc.State().CloseWAL()
	}
	// Release the provider backends (stops tiered policy loops, closes
	// HTTP connection pools).
	for _, st := range c.provStores {
		st.Close()
	}
	c.provStores = nil
	if c.Pool != nil {
		c.Pool.Close()
	}
}
