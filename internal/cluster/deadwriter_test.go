package cluster_test

import (
	"bytes"
	"context"
	"testing"
	"time"

	"blobseer/internal/blob"
	"blobseer/internal/cluster"
	"blobseer/internal/util"
)

// TestDeadWriterRecovery is the paper's dead-writer scenario end to
// end: a writer is assigned a version, then crashes before writing its
// metadata. Publication stalls (linearizability demands in-order
// reveal), a healthy writer commits the next version, and the version
// manager's janitor eventually aborts the corpse, repairs its metadata
// as an empty patch, and lets publication advance. The aborted range
// reads as zeros; the healthy write is intact.
func TestDeadWriterRecovery(t *testing.T) {
	const block = int64(4 * util.KB)
	cl, err := cluster.StartBlobSeer(cluster.Config{
		DataProviders: 3,
		MetaProviders: 2,
		BlockSize:     block,
		WriteTimeout:  50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	ctx := context.Background()
	c := cl.NewClient("")
	m, err := c.Create(ctx, block, 1)
	if err != nil {
		t.Fatal(err)
	}

	// A good baseline version so the blob is non-empty.
	if _, err := c.Append(ctx, m.ID, bytes.Repeat([]byte{'a'}, int(block))); err != nil {
		t.Fatal(err)
	}

	// The dying writer: grabs version 2 and vanishes without writing
	// data, metadata, or a commit.
	vm := c.VM()
	a, err := vm.AssignVersion(ctx, m.ID, blob.KindAppend, 0, block, 12345, 0)
	if err != nil {
		t.Fatal(err)
	}
	corpse := a.Version

	// A healthy writer appends after the corpse; its version (3) cannot
	// publish until version 2 resolves.
	healthy, err := c.Append(ctx, m.ID, bytes.Repeat([]byte{'c'}, int(block)))
	if err != nil {
		t.Fatal(err)
	}
	if pub, _, _ := vm.Latest(ctx, m.ID); pub >= corpse {
		t.Fatalf("publication advanced past the un-repaired corpse: %d", pub)
	}

	// The janitor (50 ms threshold) must reclaim it.
	pub, _, err := c.WaitPublished(ctx, m.ID, healthy, 5*time.Second)
	if err != nil {
		t.Fatalf("publication never advanced past the dead writer: %v", err)
	}
	if pub < healthy {
		t.Fatalf("published %d, want >= %d", pub, healthy)
	}

	// The corpse's descriptor is marked aborted and its range reads as
	// zeros; the healthy append is intact after it.
	d, err := vm.VersionInfo(ctx, m.ID, corpse)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Aborted {
		t.Error("corpse version not marked aborted")
	}
	got, err := c.Read(ctx, m.ID, healthy, 0, 3*block)
	if err != nil {
		t.Fatal(err)
	}
	want := append(append(bytes.Repeat([]byte{'a'}, int(block)),
		make([]byte, block)...), bytes.Repeat([]byte{'c'}, int(block))...)
	if !bytes.Equal(got, want) {
		t.Fatal("post-recovery contents wrong")
	}
}
