package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"blobseer/internal/blob"
	"blobseer/internal/rpc"
	"blobseer/internal/util"
	"blobseer/internal/vmanager"
)

// TestChaosVManagerKillRestart is the PR's acceptance test: concurrent
// writers keep appending to one blob while the version manager is
// killed and restarted repeatedly. Every write the client saw
// acknowledged (Commit returned nil) must be readable afterwards —
// the publication line survives every crash.
func TestChaosVManagerKillRestart(t *testing.T) {
	cfg := Config{
		DataProviders: 4,
		MetaProviders: 2,
		BlockSize:     64 * util.KB,
		DataDir:       t.TempDir(),
		WriteTimeout:  2 * time.Second,
		CallTimeout:   2 * time.Second,
	}
	c, err := StartBlobSeer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	client := c.NewClient("")
	ctx := context.Background()
	h, err := client.CreateBlob(ctx, cfg.BlockSize, 1)
	if err != nil {
		t.Fatal(err)
	}
	id := h.ID()

	// Writers hammer the blob through the crashes. The write path is
	// core.Client's full stack: assign, store blocks, weave metadata,
	// commit. A generous retry schedule rides out each restart window.
	const writers = 4
	const cycles = 4 // ≥3 kill-restart cycles per the acceptance bar
	var (
		ackMu sync.Mutex
		acked []blob.Version
	)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	payload := make([]byte, cfg.BlockSize)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wh, err := client.OpenBlob(ctx, id)
			if err != nil {
				t.Errorf("writer %d: open: %v", w, err)
				return
			}
			for {
				select {
				case <-stop:
					return
				default:
				}
				wctx, cancel := context.WithTimeout(ctx, 10*time.Second)
				v, err := wh.Append(wctx, payload)
				cancel()
				if err != nil {
					// Failed writes are fine mid-crash — the janitor
					// aborts their versions. Only *acknowledged* writes
					// carry a durability promise.
					continue
				}
				ackMu.Lock()
				acked = append(acked, v)
				ackMu.Unlock()
			}
		}(w)
	}

	for i := 0; i < cycles; i++ {
		time.Sleep(150 * time.Millisecond)
		c.KillVManager()
		time.Sleep(100 * time.Millisecond)
		if err := c.RestartVManager(); err != nil {
			close(stop)
			wg.Wait()
			t.Fatalf("cycle %d: %v", i, err)
		}
	}
	time.Sleep(150 * time.Millisecond)
	close(stop)
	wg.Wait()

	ackMu.Lock()
	n := len(acked)
	var maxAcked blob.Version
	for _, v := range acked {
		if v > maxAcked {
			maxAcked = v
		}
	}
	ackMu.Unlock()
	if n == 0 {
		t.Fatal("no writes were acknowledged across the chaos run; the test exercised nothing")
	}
	t.Logf("%d acknowledged writes across %d kill-restart cycles, max version %d", n, cycles, maxAcked)

	// Wait out publication of everything acknowledged (in-flight
	// versions from failed writes may sit ahead of acked ones until
	// the janitor aborts them).
	vm := vmanager.NewClient(c.Pool, c.VMAddr)
	wctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	pub, _, err := vm.WaitPublished(wctx, id, maxAcked, 25*time.Second)
	if err != nil {
		t.Fatalf("acknowledged version %d never published after recovery: %v (published %d)", maxAcked, err, pub)
	}

	// Every acknowledged version must be present, non-aborted, and its
	// data readable end-to-end.
	rctx, rcancel := context.WithTimeout(ctx, 60*time.Second)
	defer rcancel()
	rh, err := client.OpenBlob(rctx, id)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, cfg.BlockSize)
	for _, v := range acked {
		d, err := vm.VersionInfo(rctx, id, v)
		if err != nil {
			t.Fatalf("acknowledged version %d lost: %v", v, err)
		}
		if d.Aborted {
			t.Fatalf("acknowledged version %d was aborted by recovery", v)
		}
		snap, err := rh.Snapshot(rctx, v)
		if err != nil {
			t.Fatalf("snapshot %d: %v", v, err)
		}
		n, err := snap.ReadAtContext(rctx, buf, d.Off)
		if err != nil && err != io.EOF {
			t.Fatalf("read of acknowledged version %d at %d: %v", v, d.Off, err)
		}
		if int64(n) != d.Len {
			t.Fatalf("read of acknowledged version %d: %d bytes, want %d", v, n, d.Len)
		}
	}

	// Recovery is idempotent: one more kill-restart with no traffic
	// in between must reproduce the same publication point.
	c.KillVManager()
	if err := c.RestartVManager(); err != nil {
		t.Fatal(err)
	}
	pub2, _, err := vm.Latest(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if pub2 < pub {
		t.Fatalf("second recovery regressed publication: %d -> %d", pub, pub2)
	}
}

// TestChaosWaitPublishedRearms pins the satellite fix: a WaitPublished
// waiter armed before a vmanager crash must not hang for its full
// timeout — the retrying client re-issues the wait against the
// restarted manager and completes as soon as the version publishes.
func TestChaosWaitPublishedRearms(t *testing.T) {
	cfg := Config{
		DataProviders: 2,
		MetaProviders: 1,
		BlockSize:     64 * util.KB,
		DataDir:       t.TempDir(),
		CallTimeout:   time.Second,
	}
	c, err := StartBlobSeer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	ctx := context.Background()
	vm := vmanager.NewClient(c.Pool, c.VMAddr)
	// Wide schedule: the waiter must survive the restart window.
	vm.SetRetry(rpc.Backoff{Attempts: 20, Base: 20 * time.Millisecond, Max: 200 * time.Millisecond})
	m, err := vm.CreateBlob(ctx, cfg.BlockSize, 1)
	if err != nil {
		t.Fatal(err)
	}

	type waitResult struct {
		pub blob.Version
		err error
	}
	res := make(chan waitResult, 1)
	go func() {
		pub, _, err := vm.WaitPublished(ctx, m.ID, 1, 20*time.Second)
		res <- waitResult{pub, err}
	}()
	time.Sleep(100 * time.Millisecond) // let the waiter arm server-side

	c.KillVManager()
	time.Sleep(50 * time.Millisecond)
	if err := c.RestartVManager(); err != nil {
		t.Fatal(err)
	}

	// Publish version 1 through the recovered manager.
	a, err := vm.AssignVersion(ctx, m.ID, blob.KindAppend, 0, cfg.BlockSize, 1, blob.NoVersion)
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.Commit(ctx, m.ID, a.Version); err != nil {
		t.Fatal(err)
	}

	select {
	case r := <-res:
		if r.err != nil {
			t.Fatalf("re-armed wait failed: %v", r.err)
		}
		if r.pub < 1 {
			t.Fatalf("re-armed wait returned pub=%d", r.pub)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("WaitPublished hung across the restart: waiter was lost, not re-armed")
	}
}

// TestChaosNamespaceKillRestart drives the namespace manager through a
// crash: files created (and acknowledged) before the kill must resolve
// to the same blobs afterwards, and the error paths must behave
// identically on the recovered tree.
func TestChaosNamespaceKillRestart(t *testing.T) {
	cfg := Config{
		DataProviders: 2,
		MetaProviders: 1,
		BlockSize:     64 * util.KB,
		DataDir:       t.TempDir(),
		CallTimeout:   time.Second,
	}
	c, err := StartBlobSeer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	ctx := context.Background()
	fs, err := c.NewBSFS("")
	if err != nil {
		t.Fatal(err)
	}
	ids := map[string]blob.ID{}
	for i := 0; i < 5; i++ {
		path := fmt.Sprintf("/dir/file-%d", i)
		f, err := fs.Create(ctx, path, false)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		b, err := fs.OpenBlob(ctx, path)
		if err != nil {
			t.Fatal(err)
		}
		ids[path] = b.ID()
	}

	c.KillNamespace()
	if err := c.RestartNamespace(); err != nil {
		t.Fatal(err)
	}

	for path, want := range ids {
		b, err := fs.OpenBlob(ctx, path)
		if err != nil {
			t.Fatalf("%s lost across namespace restart: %v", path, err)
		}
		if got := b.ID(); got != want {
			t.Errorf("%s remapped: blob %d -> %d", path, want, got)
		}
	}
	// Error paths on the recovered tree.
	if _, err := fs.Create(ctx, "/dir/file-0", false); err == nil {
		t.Error("duplicate create succeeded after recovery")
	}
	if _, err := fs.Open(ctx, "/never-existed"); err == nil {
		t.Error("open of a missing file succeeded after recovery")
	}
}

// TestChaosNoWALLosesState is the control arm: without a DataDir the
// restart comes back empty — the historical failure mode the WAL
// exists to fix.
func TestChaosNoWALLosesState(t *testing.T) {
	cfg := Config{
		DataProviders: 2,
		MetaProviders: 1,
		BlockSize:     64 * util.KB,
		CallTimeout:   time.Second,
	}
	c, err := StartBlobSeer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	ctx := context.Background()
	vm := vmanager.NewClient(c.Pool, c.VMAddr)
	m, err := vm.CreateBlob(ctx, cfg.BlockSize, 1)
	if err != nil {
		t.Fatal(err)
	}

	c.KillVManager()
	if err := c.RestartVManager(); err != nil {
		t.Fatal(err)
	}
	if _, err := vm.GetMeta(ctx, m.ID); !errors.Is(err, vmanager.ErrUnknownBlob) {
		t.Fatalf("volatile restart kept blob %d (err=%v); expected it lost", m.ID, err)
	}
}
