package cluster_test

import (
	"bytes"
	"context"
	"testing"
	"time"

	"blobseer/internal/blob"
	"blobseer/internal/cluster"
	"blobseer/internal/store"
)

// demoteAll forces a demotion pass on every provider's tiered store and
// returns the number of blocks moved cold.
func demoteAll(t *testing.T, cl *cluster.BlobSeer) int {
	t.Helper()
	n := 0
	for _, addr := range cl.ProviderAddrs {
		svc := cl.ProviderService(addr)
		if svc == nil {
			continue
		}
		ti, ok := svc.Store().(*store.Tiered)
		if !ok {
			t.Fatalf("provider %s store is %T, want *store.Tiered", addr, svc.Store())
		}
		k, err := ti.DemoteNow()
		if err != nil {
			t.Fatalf("demote %s: %v", addr, err)
		}
		n += k
	}
	return n
}

// TestTieredClusterEndToEnd runs a full deployment on tiered provider
// stores: after every block is demoted to the cold tier, reads still
// return the data (promotion on read) and the hot tiers fill back up.
func TestTieredClusterEndToEnd(t *testing.T) {
	const nBlocks = 6
	cl, err := cluster.StartBlobSeer(cluster.Config{
		DataProviders: 4,
		Replication:   2,
		BlockSize:     int64(blockSize),
		StoreURL:      "tiered://?hot=mem://&cold=mem://",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	ctx := context.Background()
	client := cl.NewClient("")
	m, err := client.Create(ctx, int64(blockSize), 2)
	if err != nil {
		t.Fatal(err)
	}
	payload := writeBlocks(t, cl, m.ID, nBlocks)

	if n := demoteAll(t, cl); n != 2*nBlocks {
		t.Fatalf("demoted %d blocks, want %d", n, 2*nBlocks)
	}
	for _, addr := range cl.ProviderAddrs {
		hot, cold := cl.ProviderService(addr).Store().(*store.Tiered).TierStats()
		if hot.Items != 0 {
			t.Fatalf("provider %s still holds %d hot blocks after demote-all", addr, hot.Items)
		}
		if cold.Items == 0 {
			t.Fatalf("provider %s cold tier empty after demote-all", addr)
		}
	}

	got, err := client.Read(ctx, m.ID, blob.NoVersion, 0, int64(len(payload)))
	if err != nil {
		t.Fatalf("read after demotion: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("read after demotion returned wrong bytes (%d of %d)", len(got), len(payload))
	}
	// The read promoted blocks back: at least one provider is hot again.
	promoted := 0
	for _, addr := range cl.ProviderAddrs {
		c := cl.ProviderService(addr).Store().(*store.Tiered).Counters()
		promoted += int(c.Promotions)
	}
	if promoted == 0 {
		t.Fatal("reads served but nothing promoted back to hot")
	}
}

// TestRepairIgnoresDemotedBlocks is the false-positive guard: demoting
// every block to the cold tier must not make the repair plane see
// missing replicas — a cold block is present, just slow. After a real
// provider death, repair copies exactly the lost blocks and the data
// stays readable from the tiered survivors.
func TestRepairIgnoresDemotedBlocks(t *testing.T) {
	const nBlocks = 8
	cl, err := cluster.StartBlobSeer(cluster.Config{
		DataProviders: 6,
		Replication:   3,
		BlockSize:     int64(blockSize),
		StoreURL:      "tiered://?hot=mem://&cold=mem://",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	ctx := context.Background()
	client := cl.NewClient("")
	m, err := client.Create(ctx, int64(blockSize), 3)
	if err != nil {
		t.Fatal(err)
	}
	payload := writeBlocks(t, cl, m.ID, nBlocks)

	if n := demoteAll(t, cl); n != 3*nBlocks {
		t.Fatalf("demoted %d blocks, want %d", n, 3*nBlocks)
	}

	// A scan over an all-cold cluster finds nothing to repair and no
	// strays: block reports enumerate both tiers.
	eng := cl.RepairEngine()
	rep, err := eng.RunOnce(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.UnderReplicated != 0 || rep.Copies != 0 {
		t.Fatalf("repair re-replicated %d demoted-but-present blocks (%d copies)",
			rep.UnderReplicated, rep.Copies)
	}
	_, orphans, err := eng.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for addr, n := range orphans {
		if n != 0 {
			t.Fatalf("demoted blocks audited as strays on %s: %d", addr, n)
		}
	}

	// Now an actual death: repair restores exactly the lost replicas,
	// sourcing copies from tiered (possibly all-cold) survivors.
	victim := cl.ProviderAddrs[0]
	lost := cl.ProviderService(victim).Store().Stats().Items
	if lost == 0 {
		t.Fatal("victim holds no blocks; test topology broken")
	}
	cl.KillProvider(victim)
	cl.PMService().State().MarkDead(victim)
	rep, err = eng.RunOnce(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if int64(rep.UnderReplicated) != lost || int64(rep.Copies) != lost {
		t.Fatalf("repair touched %d blocks / %d copies, want exactly the %d lost blocks",
			rep.UnderReplicated, rep.Copies, lost)
	}
	live := cl.ProviderAddrs[1:]
	if got := liveItems(cl, live); got != int64(3*nBlocks) {
		t.Fatalf("live replicas after repair = %d, want %d", got, 3*nBlocks)
	}
	got, err := client.Read(ctx, m.ID, blob.NoVersion, 0, int64(len(payload)))
	if err != nil {
		t.Fatalf("read after repair: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("read after repair returned wrong bytes")
	}
}

// TestGCReclaimsDemotedBlocks: version GC must delete a hidden
// version's blocks from BOTH tiers — a block demoted before the GC pass
// must not survive in cold storage.
func TestGCReclaimsDemotedBlocks(t *testing.T) {
	cl, err := cluster.StartBlobSeer(cluster.Config{
		DataProviders: 4,
		Replication:   2,
		BlockSize:     int64(blockSize),
		StoreURL:      "tiered://?hot=mem://&cold=mem://",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	ctx := context.Background()
	client := cl.NewClient("")
	m, err := client.Create(ctx, int64(blockSize), 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Write(ctx, m.ID, 0, bytes.Repeat([]byte{1}, 2*blockSize)); err != nil {
		t.Fatal(err)
	}
	v2, err := client.Write(ctx, m.ID, 0, bytes.Repeat([]byte{2}, 2*blockSize))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := client.WaitPublished(ctx, m.ID, v2, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	// Both versions' blocks go cold, then v1 is collected.
	demoteAll(t, cl)
	if _, err := client.GC(ctx, m.ID, v2); err != nil {
		t.Fatal(err)
	}

	// Exactly v2's replicas remain, and no tier hides a v1 leftover.
	var total int64
	for _, addr := range cl.ProviderAddrs {
		ti := cl.ProviderService(addr).Store().(*store.Tiered)
		hot, cold := ti.TierStats()
		total += ti.Stats().Items
		if hot.Items+cold.Items < ti.Stats().Items {
			t.Fatalf("provider %s tier accounting inconsistent: hot %d cold %d logical %d",
				addr, hot.Items, cold.Items, ti.Stats().Items)
		}
	}
	if want := int64(2 * 2); total != want { // 2 blocks x R=2
		t.Fatalf("blocks after GC = %d, want %d (v1 leftovers in a tier?)", total, want)
	}
}

// TestTieredStatsReachControlPlane drives the heartbeat RPC path and
// checks the per-tier breakdown arrives at the provider manager's
// listing — what bsfsctl providers renders.
func TestTieredStatsReachControlPlane(t *testing.T) {
	cl, err := cluster.StartBlobSeer(cluster.Config{
		DataProviders:     2,
		Replication:       1,
		BlockSize:         int64(blockSize),
		StoreURL:          "tiered://?hot=mem://&cold=mem://",
		HeartbeatInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	ctx := context.Background()
	client := cl.NewClient("")
	m, err := client.Create(ctx, int64(blockSize), 1)
	if err != nil {
		t.Fatal(err)
	}
	writeBlocks(t, cl, m.ID, 4)
	demoteAll(t, cl)

	deadline := time.Now().Add(2 * time.Second)
	for {
		infos := cl.PMService().State().List()
		ok := len(infos) > 0
		for _, in := range infos {
			if len(in.Tiers) != 2 || in.Tiers[0].Name != "hot" || in.Tiers[1].Name != "cold" {
				ok = false
				break
			}
			if in.Blocks != in.Tiers[0].Items+in.Tiers[1].Items {
				ok = false // all blocks demoted: logical == hot + cold
				break
			}
		}
		if ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("tier breakdown never reached the provider manager: %+v", infos)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
