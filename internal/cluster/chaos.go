package cluster

import (
	"fmt"
	"net"
	"path/filepath"

	"blobseer/internal/namespace"
	"blobseer/internal/rpc"
	"blobseer/internal/vmanager"
	"blobseer/internal/wal"
)

// This file is the control-plane half of the chaos harness: crash and
// restart injection for the version manager and the namespace manager,
// mirroring KillProvider for the data plane. A "crash" closes the RPC
// server (in-flight and future calls fail at the transport level, the
// signature clients see from a real dead process) and drops the
// in-memory state; "restart" rebuilds the state from the WAL — or from
// nothing when the deployment runs without one, which is exactly the
// data-loss ablation AblationCrashRecovery measures.

func (c *BlobSeer) walOptions() wal.Options {
	if c.Cfg.WALSyncInterval > 0 {
		return wal.Options{Policy: wal.SyncInterval, Interval: c.Cfg.WALSyncInterval}
	}
	return wal.Options{Policy: wal.SyncAlways}
}

// newVMState builds the version-manager core: recovered from the WAL
// when DataDir is set, fresh and volatile otherwise.
func (c *BlobSeer) newVMState() (*vmanager.State, error) {
	repairer := vmanager.MetadataRepairer(c.MetaStore)
	if c.Cfg.DataDir == "" {
		return vmanager.NewState(repairer), nil
	}
	log, err := wal.Open(filepath.Join(c.Cfg.DataDir, "vmanager"), c.walOptions())
	if err != nil {
		return nil, err
	}
	st, err := vmanager.Recover(log, repairer)
	if err != nil {
		log.Close()
		return nil, err
	}
	return st, nil
}

// newNSState builds the namespace core, WAL-recovered when durable.
func (c *BlobSeer) newNSState() (*namespace.State, error) {
	creator := namespace.VMBlobCreator(vmanager.NewClient(c.Pool, c.VMAddr))
	if c.Cfg.DataDir == "" {
		return namespace.NewState(creator), nil
	}
	log, err := wal.Open(filepath.Join(c.Cfg.DataDir, "namespace"), c.walOptions())
	if err != nil {
		return nil, err
	}
	st, err := namespace.Recover(log, creator)
	if err != nil {
		log.Close()
		return nil, err
	}
	return st, nil
}

// relisten re-binds a control service's endpoint after a restart: the
// same inproc name, or the same TCP host:port (the restarted daemon of
// a real deployment comes back on its configured address).
func (c *BlobSeer) relisten(name, addr string) (net.Listener, error) {
	if c.Cfg.UseTCP {
		return rpc.ListenTCP(addr)
	}
	return c.net.Listen(name)
}

// takeServer detaches a service's server from the registry; the
// caller owns its shutdown (Sever/Close), so a kill can unblock
// parked handlers between severing the conns and draining.
func (c *BlobSeer) takeServer(addr string) *rpc.Server {
	c.serversMu.Lock()
	srv := c.srvByAddr[addr]
	delete(c.srvByAddr, addr)
	c.serversMu.Unlock()
	return srv
}

func (c *BlobSeer) addServer(addr string, srv *rpc.Server) {
	c.serversMu.Lock()
	c.servers = append(c.servers, srv)
	c.srvByAddr[addr] = srv
	c.serversMu.Unlock()
}

// KillVManager crashes the version manager: its server goes down
// mid-flight, the janitor stops, and the WAL is released so a restart
// can reopen it. Pending WaitPublished waiters die with the server —
// their clients see a transport failure and (with the retrying client)
// re-arm against the recovered instance.
func (c *BlobSeer) KillVManager() {
	c.vmSvc.StopJanitor()
	// Sever conns first (no response can reach a client), then wake
	// parked WaitPublished handlers, then drain. Without the release a
	// "crash" would block on armed waiters for their full timeout.
	srv := c.takeServer(c.VMAddr)
	if srv != nil {
		srv.Sever()
	}
	c.vmSvc.State().ReleaseWaiters()
	if srv != nil {
		srv.Close()
	}
	// In-process we cannot kill -9 the page cache; closing the log is
	// the closest faithful crash point. Every client-acknowledged
	// publish was AppendSync'd before its ack, so the interesting
	// durability property is still exercised.
	c.vmSvc.State().CloseWAL()
}

// RestartVManager recovers the version manager from its WAL (or from
// nothing without one) and serves it on the original address.
func (c *BlobSeer) RestartVManager() error {
	st, err := c.newVMState()
	if err != nil {
		return fmt.Errorf("cluster: restart vmanager: %w", err)
	}
	c.vmSvc = vmanager.NewService(st)
	if c.Cfg.WriteTimeout > 0 {
		c.vmSvc.StartJanitor(c.Cfg.WriteTimeout, c.Cfg.WriteTimeout/2)
	}
	lis, err := c.relisten("vmanager", c.VMAddr)
	if err != nil {
		return fmt.Errorf("cluster: restart vmanager: %w", err)
	}
	srv := rpc.NewServer(c.vmSvc.Mux())
	c.addServer(c.VMAddr, srv)
	go srv.Serve(lis)
	return nil
}

// KillNamespace crashes the namespace manager.
func (c *BlobSeer) KillNamespace() {
	if srv := c.takeServer(c.NSAddr); srv != nil {
		srv.Close()
	}
	c.nsSvc.State().CloseWAL()
}

// RestartNamespace recovers the namespace from its WAL and serves it
// on the original address.
func (c *BlobSeer) RestartNamespace() error {
	st, err := c.newNSState()
	if err != nil {
		return fmt.Errorf("cluster: restart namespace: %w", err)
	}
	c.nsSvc = namespace.NewService(st)
	lis, err := c.relisten("namespace", c.NSAddr)
	if err != nil {
		return fmt.Errorf("cluster: restart namespace: %w", err)
	}
	srv := rpc.NewServer(c.nsSvc.Mux())
	c.addServer(c.NSAddr, srv)
	go srv.Serve(lis)
	return nil
}
