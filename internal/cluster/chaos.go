package cluster

import (
	"fmt"
	"net"
	"path/filepath"

	"blobseer/internal/core"
	"blobseer/internal/namespace"
	"blobseer/internal/rpc"
	"blobseer/internal/vmanager"
	"blobseer/internal/wal"
)

// This file is the control-plane half of the chaos harness: crash and
// restart injection for the version manager and the namespace manager,
// mirroring KillProvider for the data plane. A "crash" closes the RPC
// server (in-flight and future calls fail at the transport level, the
// signature clients see from a real dead process) and drops the
// in-memory state; "restart" rebuilds the state from the WAL — or from
// nothing when the deployment runs without one, which is exactly the
// data-loss ablation AblationCrashRecovery measures.

func (c *BlobSeer) walOptions() wal.Options {
	if c.Cfg.WALSyncInterval > 0 {
		return wal.Options{Policy: wal.SyncInterval, Interval: c.Cfg.WALSyncInterval}
	}
	return wal.Options{Policy: wal.SyncAlways}
}

// vmName is shard k's endpoint name; shard 0 keeps the historical
// "vmanager" name so single-shard deployments are wire-identical.
func (c *BlobSeer) vmName(k int) string {
	if k == 0 {
		return "vmanager"
	}
	return fmt.Sprintf("vmanager-%d", k)
}

// vmWALDir is shard k's log directory. A single shard keeps the
// historical flat layout; sharded deployments nest one WAL per shard,
// so kill/restart/recovery is fully independent across shards.
func (c *BlobSeer) vmWALDir(k int) string {
	if c.Cfg.VMShards <= 1 {
		return filepath.Join(c.Cfg.DataDir, "vmanager")
	}
	return filepath.Join(c.Cfg.DataDir, "vmanager", fmt.Sprintf("shard-%d", k))
}

// newVMState builds shard k's version-manager core: recovered from its
// WAL when DataDir is set, fresh and volatile otherwise.
func (c *BlobSeer) newVMState(k int) (*vmanager.State, error) {
	repairer := vmanager.MetadataRepairer(c.MetaStore)
	si := vmanager.ShardInfo{Index: k, Count: c.Cfg.VMShards}
	if c.Cfg.DataDir == "" {
		return vmanager.NewShardState(repairer, si), nil
	}
	log, err := wal.Open(c.vmWALDir(k), c.walOptions())
	if err != nil {
		return nil, err
	}
	st, err := vmanager.RecoverShard(log, repairer, si)
	if err != nil {
		log.Close()
		return nil, err
	}
	return st, nil
}

// newVMAPI builds the deployment's version-manager client surface: a
// plain client for one shard, a Router across all of them otherwise.
func (c *BlobSeer) newVMAPI() vmanager.API {
	return core.NewVMClient(c.Pool, c.VMAddr, c.VMAddrs)
}

// newNSState builds the namespace core, WAL-recovered when durable.
func (c *BlobSeer) newNSState() (*namespace.State, error) {
	creator := namespace.VMBlobCreator(c.newVMAPI())
	if c.Cfg.DataDir == "" {
		return namespace.NewState(creator), nil
	}
	log, err := wal.Open(filepath.Join(c.Cfg.DataDir, "namespace"), c.walOptions())
	if err != nil {
		return nil, err
	}
	st, err := namespace.Recover(log, creator)
	if err != nil {
		log.Close()
		return nil, err
	}
	return st, nil
}

// relisten re-binds a control service's endpoint after a restart: the
// same inproc name, or the same TCP host:port (the restarted daemon of
// a real deployment comes back on its configured address).
func (c *BlobSeer) relisten(name, addr string) (net.Listener, error) {
	if c.Cfg.UseTCP {
		return rpc.ListenTCP(addr)
	}
	return c.net.Listen(name)
}

// takeServer detaches a service's server from the registry; the
// caller owns its shutdown (Sever/Close), so a kill can unblock
// parked handlers between severing the conns and draining.
func (c *BlobSeer) takeServer(addr string) *rpc.Server {
	c.serversMu.Lock()
	srv := c.srvByAddr[addr]
	delete(c.srvByAddr, addr)
	c.serversMu.Unlock()
	return srv
}

func (c *BlobSeer) addServer(addr string, srv *rpc.Server) {
	c.serversMu.Lock()
	c.servers = append(c.servers, srv)
	c.srvByAddr[addr] = srv
	c.serversMu.Unlock()
}

// KillVMShard crashes version-manager shard k: its server goes down
// mid-flight, its janitor stops, and its WAL is released so a restart
// can reopen it. Pending WaitPublished waiters on that shard die with
// the server — their clients see a transport failure and (with the
// retrying client) re-arm against the recovered instance. Sibling
// shards are untouched and keep publishing throughout.
func (c *BlobSeer) KillVMShard(k int) {
	svc := c.vmSvcs[k]
	svc.StopJanitor()
	// Sever conns first (no response can reach a client), then wake
	// parked WaitPublished handlers, then drain. Without the release a
	// "crash" would block on armed waiters for their full timeout.
	srv := c.takeServer(c.VMAddrs[k])
	if srv != nil {
		srv.Sever()
	}
	svc.State().ReleaseWaiters()
	if srv != nil {
		srv.Close()
	}
	// In-process we cannot kill -9 the page cache; closing the log is
	// the closest faithful crash point. Every client-acknowledged
	// publish was AppendSync'd before its ack, so the interesting
	// durability property is still exercised.
	svc.State().CloseWAL()
}

// RestartVMShard recovers shard k from its WAL (or from nothing
// without one) and serves it on its original address.
func (c *BlobSeer) RestartVMShard(k int) error {
	st, err := c.newVMState(k)
	if err != nil {
		return fmt.Errorf("cluster: restart vmanager shard %d: %w", k, err)
	}
	svc := vmanager.NewService(st)
	if c.Cfg.WriteTimeout > 0 {
		svc.StartJanitor(c.Cfg.WriteTimeout, c.Cfg.WriteTimeout/2)
	}
	lis, err := c.relisten(c.vmName(k), c.VMAddrs[k])
	if err != nil {
		svc.StopJanitor()
		return fmt.Errorf("cluster: restart vmanager shard %d: %w", k, err)
	}
	c.vmSvcs[k] = svc
	srv := rpc.NewServer(svc.Mux())
	// The restarted shard keeps the original tracer: spans recorded
	// before the crash and after the recovery stitch into one tree.
	srv.SetTrace(c.tracerFor(c.vmName(k)), vmanager.MethodName)
	c.addServer(c.VMAddrs[k], srv)
	go srv.Serve(lis)
	return nil
}

// KillVManager crashes every version-manager shard (the whole control
// plane; single-shard deployments keep their historical semantics).
func (c *BlobSeer) KillVManager() {
	for k := range c.vmSvcs {
		c.KillVMShard(k)
	}
}

// RestartVManager recovers every shard from its WAL (or from nothing
// without one) and serves each on its original address.
func (c *BlobSeer) RestartVManager() error {
	for k := range c.vmSvcs {
		if err := c.RestartVMShard(k); err != nil {
			return err
		}
	}
	return nil
}

// KillNamespace crashes the namespace manager.
func (c *BlobSeer) KillNamespace() {
	if srv := c.takeServer(c.NSAddr); srv != nil {
		srv.Close()
	}
	c.nsSvc.State().CloseWAL()
}

// RestartNamespace recovers the namespace from its WAL and serves it
// on the original address.
func (c *BlobSeer) RestartNamespace() error {
	st, err := c.newNSState()
	if err != nil {
		return fmt.Errorf("cluster: restart namespace: %w", err)
	}
	c.nsSvc = namespace.NewService(st)
	lis, err := c.relisten("namespace", c.NSAddr)
	if err != nil {
		return fmt.Errorf("cluster: restart namespace: %w", err)
	}
	srv := rpc.NewServer(c.nsSvc.Mux())
	srv.SetTrace(c.tracerFor("namespace"), namespace.MethodName)
	c.addServer(c.NSAddr, srv)
	go srv.Serve(lis)
	return nil
}
