package cluster_test

import (
	"bytes"
	"context"
	"testing"

	"blobseer/internal/cluster"
	"blobseer/internal/util"
)

// TestCachedClientWarmReread drives the full stack — client, version
// manager, data providers, metadata DHT over RPC — with the immutable-
// node cache on: a re-read of the same range must be correct and must
// stop touching the metadata providers (the many-mappers-one-input
// MapReduce pattern).
func TestCachedClientWarmReread(t *testing.T) {
	const block = int64(4 * util.KB)
	cl, err := cluster.StartBlobSeer(cluster.Config{
		DataProviders: 3,
		MetaProviders: 3,
		BlockSize:     block,
		MetaCacheSize: -1, // default-sized NodeCache
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	ctx := context.Background()
	c := cl.NewClient("")
	m, err := c.Create(ctx, block, 1)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0xb5}, int(16*block))
	v, err := c.Append(ctx, m.ID, payload)
	if err != nil {
		t.Fatal(err)
	}

	read := func() {
		t.Helper()
		got, err := c.Read(ctx, m.ID, v, 0, int64(len(payload)))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatal("cached read returned wrong data")
		}
	}
	read()
	warm := c.MetaCacheStats()
	read()
	warmer := c.MetaCacheStats()
	if warmer.Misses != warm.Misses {
		t.Errorf("second read missed the cache %d times, want 0", warmer.Misses-warm.Misses)
	}
	if warmer.Hits <= warm.Hits {
		t.Errorf("second read recorded no cache hits (stats %+v -> %+v)", warm, warmer)
	}
}
