package cluster_test

import (
	"bytes"
	"context"
	"testing"
	"time"

	"blobseer/internal/blob"
	"blobseer/internal/cluster"
)

// writeBlocks publishes an nBlocks-block payload and returns it.
func writeBlocks(t *testing.T, cl *cluster.BlobSeer, id blob.ID, nBlocks int) []byte {
	t.Helper()
	ctx := context.Background()
	client := cl.NewClient("")
	payload := bytes.Repeat([]byte("self-heal "), nBlocks*blockSize/10+1)[:nBlocks*blockSize]
	v, err := client.Append(ctx, id, payload)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := client.WaitPublished(ctx, id, v, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	return payload
}

// liveItems sums committed block counts over the given providers.
func liveItems(cl *cluster.BlobSeer, addrs []string) int64 {
	var n int64
	for _, a := range addrs {
		if svc := cl.ProviderService(a); svc != nil {
			n += svc.Store().Stats().Items
		}
	}
	return n
}

// TestRepairConvergesAfterProviderDeath is the kill-provider acceptance
// test: with R=3, killing one provider after publish converges every
// affected block back to 3 live replicas with repair traffic pinned to
// exactly the lost blocks, and reads keep succeeding — through the
// location overlay — even after every original replica of a block has
// died post-repair.
func TestRepairConvergesAfterProviderDeath(t *testing.T) {
	const nBlocks = 8
	cl, err := cluster.StartBlobSeer(cluster.Config{
		DataProviders: 6,
		Replication:   3,
		BlockSize:     int64(blockSize),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	ctx := context.Background()
	client := cl.NewClient("")
	m, err := client.Create(ctx, int64(blockSize), 3)
	if err != nil {
		t.Fatal(err)
	}
	payload := writeBlocks(t, cl, m.ID, nBlocks)

	// Every block landed on 3 of 6 providers.
	if got := liveItems(cl, cl.ProviderAddrs); got != int64(3*nBlocks) {
		t.Fatalf("replicas stored = %d, want %d", got, 3*nBlocks)
	}

	// Crash the first provider and (deterministically, instead of
	// waiting out heartbeat expiry) mark it dead.
	victim := cl.ProviderAddrs[0]
	lost := cl.ProviderService(victim).Store().Stats().Items
	if lost == 0 {
		t.Fatal("victim holds no blocks; test topology broken")
	}
	cl.KillProvider(victim)
	cl.PMService().State().MarkDead(victim)

	eng := cl.RepairEngine()
	rep, err := eng.RunOnce(ctx)
	if err != nil {
		t.Fatalf("repair pass: %v (report %+v)", err, rep)
	}
	if int64(rep.UnderReplicated) != lost || int64(rep.Copies) != lost {
		t.Errorf("repair touched %d blocks / %d copies, want exactly the %d lost blocks",
			rep.UnderReplicated, rep.Copies, lost)
	}
	// Convergence: every affected block is back at 3 live replicas, so
	// the live providers together hold the full 3*nBlocks again.
	live := cl.ProviderAddrs[1:]
	if got := liveItems(cl, live); got != int64(3*nBlocks) {
		t.Errorf("live replicas after repair = %d, want %d", got, 3*nBlocks)
	}
	tasks, err := eng.Scan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 0 {
		t.Errorf("still %d under-replicated blocks after repair: %+v", len(tasks), tasks)
	}

	// Op-count regression: a second pass must find nothing to do — no
	// full-cluster rescans re-copying healthy blocks, no redundant
	// copies of repaired ones.
	rep2, err := eng.RunOnce(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Copies != 0 || rep2.UnderReplicated != 0 {
		t.Errorf("second pass made %d copies of %d blocks; repair must be idempotent",
			rep2.Copies, rep2.UnderReplicated)
	}
	if got := liveItems(cl, live); got != int64(3*nBlocks) {
		t.Errorf("second pass changed stored replicas to %d", got)
	}

	// Second and third original deaths post-repair: blocks whose whole
	// original replica set was {p0,p1,p2} are now reachable only via
	// the overlay's relocated copies. Reads must still return the full
	// payload.
	for _, addr := range cl.ProviderAddrs[1:3] {
		cl.KillProvider(addr)
		cl.PMService().State().MarkDead(addr)
	}
	got, err := client.Read(ctx, m.ID, blob.NoVersion, 0, int64(len(payload)))
	if err != nil {
		t.Fatalf("read after two more original deaths: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("read after failures returned wrong bytes (%d of %d)", len(got), len(payload))
	}
}

// TestHeartbeatExpiryRemovesCrashedProvider drives the liveness loop
// end to end over the real RPC path: a crashed provider stops
// heartbeating, the expiry ticker retires it, and allocation stops
// naming it — with no explicit MarkDead anywhere.
func TestHeartbeatExpiryRemovesCrashedProvider(t *testing.T) {
	const maxAge = 80 * time.Millisecond
	cl, err := cluster.StartBlobSeer(cluster.Config{
		DataProviders:     4,
		BlockSize:         int64(blockSize),
		HeartbeatInterval: maxAge / 8,
		ExpireAfter:       maxAge,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()

	victim := cl.ProviderAddrs[2]
	cl.KillProvider(victim)

	deadline := time.Now().Add(5 * time.Second)
	for {
		dead := false
		for _, in := range cl.PMService().State().List() {
			if in.Addr == victim && !in.Alive {
				dead = true
			}
		}
		if dead {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("crashed provider never expired from the membership")
		}
		time.Sleep(5 * time.Millisecond)
	}
	targets, err := cl.PMService().State().Allocate(8, 1, "")
	if err != nil {
		t.Fatal(err)
	}
	for _, set := range targets {
		if set[0] == victim {
			t.Fatal("expired provider still receiving allocations")
		}
	}
	// The survivors' heartbeats carry real store stats into List.
	for _, in := range cl.PMService().State().List() {
		if in.Addr != victim && !in.Alive {
			t.Errorf("heartbeating provider %s expired", in.Addr)
		}
	}
}

// TestFailureFeedbackMarksDead pins the failure-feedback satellite:
// when a read gives up on an unreachable provider, the client reports
// it and allocation stops handing it out — before any heartbeat expiry
// could fire (none is configured here).
func TestFailureFeedbackMarksDead(t *testing.T) {
	cl, err := cluster.StartBlobSeer(cluster.Config{
		DataProviders: 4,
		Replication:   2,
		BlockSize:     int64(blockSize),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	ctx := context.Background()
	client := cl.NewClient("")
	m, err := client.Create(ctx, int64(blockSize), 2)
	if err != nil {
		t.Fatal(err)
	}
	payload := writeBlocks(t, cl, m.ID, 4)

	victim := cl.ProviderAddrs[1]
	cl.KillProvider(victim)

	// Reads succeed via replica rotation. A single-extent read's
	// starting replica alternates per call, so a couple of reads of a
	// block replicated on the victim are guaranteed to attempt it —
	// and the failed attempt must trigger feedback.
	for i := 0; i < 4 && client.DeadReports() == 0; i++ {
		got, err := client.Read(ctx, m.ID, blob.NoVersion, int64(blockSize), int64(blockSize))
		if err != nil || !bytes.Equal(got, payload[blockSize:2*blockSize]) {
			t.Fatalf("read with one dead replica: %v", err)
		}
	}
	if client.DeadReports() == 0 {
		t.Fatal("client sent no failure feedback for the unreachable provider")
	}
	// The full range stays readable too.
	got, err := client.Read(ctx, m.ID, blob.NoVersion, 0, int64(len(payload)))
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("full read with one dead replica: %v", err)
	}
	// ...and the async MarkDead lands at the provider manager.
	deadline := time.Now().Add(5 * time.Second)
	for {
		dead := false
		for _, in := range cl.PMService().State().List() {
			if in.Addr == victim && !in.Alive {
				dead = true
			}
		}
		if dead {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("failure feedback never reached the provider manager")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Rate limiting: a repeat read hits the same dead provider again but
	// must not re-report it within the TTL.
	before := client.DeadReports()
	if _, err := client.Read(ctx, m.ID, blob.NoVersion, 0, int64(len(payload))); err != nil {
		t.Fatal(err)
	}
	if client.DeadReports() != before {
		t.Errorf("repeat read re-reported the same provider within the TTL: %d -> %d",
			before, client.DeadReports())
	}
}

// TestDecommissionDrainThenRetire covers planned maintenance: a
// decommissioned provider leaves allocation immediately, a drain pass
// re-replicates everything it holds, it is retired only when nothing
// depends on it any more, and reads never skip a beat.
func TestDecommissionDrainThenRetire(t *testing.T) {
	const nBlocks = 6
	cl, err := cluster.StartBlobSeer(cluster.Config{
		DataProviders: 5,
		Replication:   2,
		BlockSize:     int64(blockSize),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	ctx := context.Background()
	client := cl.NewClient("")
	m, err := client.Create(ctx, int64(blockSize), 2)
	if err != nil {
		t.Fatal(err)
	}
	payload := writeBlocks(t, cl, m.ID, nBlocks)

	// A typo'd address must fail loudly, not report a successful drain
	// of nothing.
	if _, err := cl.RepairEngine().Decommission(ctx, "no-such-provider"); err == nil {
		t.Fatal("decommission of unknown provider reported success")
	}

	victim := cl.ProviderAddrs[0]
	held := cl.ProviderService(victim).Store().Stats().Items
	if held == 0 {
		t.Fatal("victim holds no blocks")
	}
	rep, err := cl.RepairEngine().Decommission(ctx, victim)
	if err != nil {
		t.Fatalf("decommission: %v (report %+v)", err, rep)
	}
	if int64(rep.Copies) != held {
		t.Errorf("drain copied %d replicas, want exactly the %d the victim held", rep.Copies, held)
	}
	var vInfo *struct {
		alive, draining bool
	}
	for _, in := range cl.PMService().State().List() {
		if in.Addr == victim {
			vInfo = &struct{ alive, draining bool }{in.Alive, in.Draining}
		}
	}
	if vInfo == nil || vInfo.alive {
		t.Errorf("decommissioned provider not retired: %+v", vInfo)
	}
	// The retired provider's process is still up (planned maintenance:
	// the operator shuts it down after the drain) — but even hard-killing
	// it now loses nothing.
	cl.KillProvider(victim)
	got, err := client.Read(ctx, m.ID, blob.NoVersion, 0, int64(len(payload)))
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("read after drain-then-kill: %v", err)
	}
}

// TestOrphanAuditFindsStrays pins the inventory path (block reports
// over store key enumeration): a block copy that no metadata or
// overlay record accounts for shows up in the audit, and a clean
// deployment audits clean.
func TestOrphanAuditFindsStrays(t *testing.T) {
	cl, err := cluster.StartBlobSeer(cluster.Config{
		DataProviders: 4,
		Replication:   2,
		BlockSize:     int64(blockSize),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	ctx := context.Background()
	client := cl.NewClient("")
	m, err := client.Create(ctx, int64(blockSize), 2)
	if err != nil {
		t.Fatal(err)
	}
	writeBlocks(t, cl, m.ID, 4)

	eng := cl.RepairEngine()
	orphans, err := eng.Orphans(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for addr, n := range orphans {
		if n != 0 {
			t.Errorf("clean deployment reports %d orphans on %s", n, addr)
		}
	}

	// Plant a stray: a copy of a live block on a provider that is in
	// neither its replica set nor the overlay (the signature of a
	// repair push whose relocation record was lost).
	var strayAddr string
	locs, err := client.Locations(ctx, m.ID, blob.NoVersion, 0, int64(blockSize))
	if err != nil || len(locs) == 0 {
		t.Fatalf("locations: %v", err)
	}
	holders := map[string]bool{}
	for _, a := range locs[0].Providers {
		holders[a] = true
	}
	for _, a := range cl.ProviderAddrs {
		if !holders[a] {
			strayAddr = a
			break
		}
	}
	// Copy block 0's bytes under its real key onto the non-holder
	// (locs[0] is the write's seq-0 block, so match on Seq).
	srcSvc := cl.ProviderService(locs[0].Providers[0])
	keys, err := srcSvc.Store().Keys("b")
	if err != nil || len(keys) == 0 {
		t.Fatalf("source store keys: %v, %v", keys, err)
	}
	strayKey := ""
	for _, k := range keys {
		if bk, err := blob.ParseBlockKey(k); err == nil && bk.Seq == 0 {
			strayKey = k
			break
		}
	}
	if strayKey == "" {
		t.Fatalf("seq-0 block not found among %v", keys)
	}
	val, err := srcSvc.Store().Get(strayKey)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.ProviderService(strayAddr).Store().Put(strayKey, val); err != nil {
		t.Fatal(err)
	}

	orphans, err = eng.Orphans(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if orphans[strayAddr] == 0 {
		t.Errorf("planted stray on %s not reported: %v", strayAddr, orphans)
	}
	total := 0
	for _, n := range orphans {
		total += n
	}
	if total != 1 {
		t.Errorf("audit reported %d orphans, want exactly the planted one: %v", total, orphans)
	}
}

// TestGCPurgesOverlay pins the overlay lifecycle: version GC deletes
// relocated replicas with their blocks and removes the overlay entry,
// leaving no dangling relocation records.
func TestGCPurgesOverlay(t *testing.T) {
	cl, err := cluster.StartBlobSeer(cluster.Config{
		DataProviders: 4,
		Replication:   2,
		BlockSize:     int64(blockSize),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	ctx := context.Background()
	client := cl.NewClient("")
	m, err := client.Create(ctx, int64(blockSize), 2)
	if err != nil {
		t.Fatal(err)
	}

	// Two published versions; v1's blocks are fully hidden by v2.
	v1Payload := bytes.Repeat([]byte{1}, 2*blockSize)
	v1, err := client.Write(ctx, m.ID, 0, v1Payload)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := client.Write(ctx, m.ID, 0, bytes.Repeat([]byte{2}, 2*blockSize))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := client.WaitPublished(ctx, m.ID, v2, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	// Kill a provider and repair: some blocks gain overlay entries.
	victim := cl.ProviderAddrs[0]
	cl.KillProvider(victim)
	cl.PMService().State().MarkDead(victim)
	if _, err := cl.RepairEngine().RunOnce(ctx); err != nil {
		t.Fatal(err)
	}

	// Find the victim-held blocks that gained overlay entries, split by
	// the version that wrote them (the write nonce identifies it).
	descs, err := client.VM().History(ctx, m.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	nonceOf := map[blob.Version]uint64{}
	for _, d := range descs {
		nonceOf[d.Version] = d.Nonce
	}
	keys, err := cl.ProviderService(victim).Store().Keys("b")
	if err != nil {
		t.Fatal(err)
	}
	var v1Relocated, v2Relocated []blob.BlockKey
	for _, k := range keys {
		bk, err := blob.ParseBlockKey(k)
		if err != nil {
			continue
		}
		if extras, _ := cl.Overlay.Get(ctx, bk); len(extras) > 0 {
			switch bk.Nonce {
			case nonceOf[v1]:
				v1Relocated = append(v1Relocated, bk)
			case nonceOf[v2]:
				v2Relocated = append(v2Relocated, bk)
			}
		}
	}
	if len(v1Relocated) == 0 {
		t.Fatal("repair recorded no overlay entries for v1 blocks")
	}

	// GC everything below v2: v1's hidden blocks and their relocation
	// records go; v2's survive.
	if _, err := client.GC(ctx, m.ID, v2); err != nil {
		t.Fatal(err)
	}
	for _, bk := range v1Relocated {
		extras, err := cl.Overlay.Get(ctx, bk)
		if err != nil {
			t.Fatal(err)
		}
		if len(extras) != 0 {
			t.Errorf("overlay entry for GC'd block %s survived: %v", bk, extras)
		}
	}
	for _, bk := range v2Relocated {
		if extras, _ := cl.Overlay.Get(ctx, bk); len(extras) == 0 {
			t.Errorf("overlay entry for live block %s purged by GC", bk)
		}
	}
	// The current version still reads.
	got, err := client.Read(ctx, m.ID, blob.NoVersion, 0, 2*int64(blockSize))
	if err != nil || !bytes.Equal(got, bytes.Repeat([]byte{2}, 2*blockSize)) {
		t.Fatalf("current version unreadable after GC: %v", err)
	}
}
