package cluster_test

import (
	"bytes"
	"context"
	"testing"

	"blobseer/internal/cluster"
	"blobseer/internal/util"
)

// TestMetadataSurvivesMetaProviderLoss: with DHT replication 2, wiping
// one metadata provider's entire store leaves every tree node readable
// through its replica — the "DHT resilient by construction" claim of
// Section VI-B, exercised through the full client stack.
func TestMetadataSurvivesMetaProviderLoss(t *testing.T) {
	const block = int64(4 * util.KB)
	cl, err := cluster.StartBlobSeer(cluster.Config{
		DataProviders:   3,
		MetaProviders:   3,
		MetaReplication: 2,
		BlockSize:       block,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	ctx := context.Background()
	c := cl.NewClient("")
	m, err := c.Create(ctx, block, 1)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0x5c}, int(8*block))
	v, err := c.Append(ctx, m.ID, payload)
	if err != nil {
		t.Fatal(err)
	}

	// Wipe one metadata provider completely. Every node it held has a
	// second copy on the ring's next provider.
	if _, err := cl.MetaService(cl.MetaAddrs[0]).Store().DeletePrefix(""); err != nil {
		t.Fatal(err)
	}

	got, err := c.Read(ctx, m.ID, v, 0, int64(len(payload)))
	if err != nil {
		t.Fatalf("read after metadata provider loss: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("metadata failover returned wrong data")
	}

	// New writes keep working too (puts go to the surviving replicas;
	// the wiped provider simply gets fresh copies of new nodes).
	if _, err := c.Append(ctx, m.ID, payload[:block]); err != nil {
		t.Fatalf("write after metadata provider loss: %v", err)
	}
}
