package cluster

import (
	"context"
	"sync"
	"testing"
	"time"

	"blobseer/internal/blob"
	"blobseer/internal/core"
	"blobseer/internal/rpc"
	"blobseer/internal/util"
	"blobseer/internal/vmanager"
)

// TestShardLocalRouting is the op-count proof of shard-local routing: a
// full write to blob X (assign, commit and the surrounding metadata
// calls) must touch exactly the shard that owns X — every sibling
// shard's per-op counters stay frozen.
func TestShardLocalRouting(t *testing.T) {
	cfg := Config{
		DataProviders: 2,
		MetaProviders: 1,
		VMShards:      4,
		BlockSize:     64 * util.KB,
		CallTimeout:   2 * time.Second,
	}
	c, err := StartBlobSeer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	ctx := context.Background()
	client := c.NewClient("")
	h, err := client.CreateBlob(ctx, cfg.BlockSize, 1)
	if err != nil {
		t.Fatal(err)
	}
	owner := vmanager.ShardOf(h.ID(), cfg.VMShards)

	before := make([]vmanager.OpCounts, cfg.VMShards)
	for k := range before {
		before[k] = c.VMServiceShard(k).Ops()
	}

	payload := make([]byte, cfg.BlockSize)
	if _, err := h.Append(ctx, payload); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Append(ctx, payload); err != nil {
		t.Fatal(err)
	}

	for k := 0; k < cfg.VMShards; k++ {
		delta := c.VMServiceShard(k).Ops().Total() - before[k].Total()
		if k == owner {
			ops := c.VMServiceShard(k).Ops()
			if delta == 0 {
				t.Errorf("owning shard %d saw no traffic for blob %d", k, h.ID())
			}
			if ops.Assign-before[k].Assign != 2 || ops.Commit-before[k].Commit != 2 {
				t.Errorf("owning shard %d: assign +%d commit +%d, want +2/+2",
					k, ops.Assign-before[k].Assign, ops.Commit-before[k].Commit)
			}
			continue
		}
		if delta != 0 {
			t.Errorf("sibling shard %d saw %d ops for a blob it does not own (owner %d)", k, delta, owner)
		}
	}
}

// TestShardedClusterEndToEnd runs the full client stack against a
// sharded control plane: files created through the namespace spread
// over shards, and reads come back intact.
func TestShardedClusterEndToEnd(t *testing.T) {
	cfg := Config{
		DataProviders: 3,
		MetaProviders: 2,
		VMShards:      3,
		BlockSize:     64 * util.KB,
		CallTimeout:   2 * time.Second,
	}
	c, err := StartBlobSeer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	ctx := context.Background()
	fs, err := c.NewBSFS("")
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, cfg.BlockSize)
	for i := range payload {
		payload[i] = byte(i)
	}
	paths := []string{"/a", "/b", "/c", "/d", "/e"}
	shardsHit := map[int]bool{}
	for _, p := range paths {
		f, err := fs.Create(ctx, p, false)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(payload); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		b, err := fs.OpenBlob(ctx, p)
		if err != nil {
			t.Fatal(err)
		}
		shardsHit[vmanager.ShardOf(b.ID(), cfg.VMShards)] = true
	}
	if len(shardsHit) < 2 {
		t.Errorf("5 files landed on %d shard(s); round-robin minting should spread them", len(shardsHit))
	}
	for _, p := range paths {
		r, err := fs.Open(ctx, p)
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, len(payload))
		if _, err := r.Read(buf); err != nil {
			t.Fatalf("read %s: %v", p, err)
		}
		r.Close()
		for i := range buf {
			if buf[i] != payload[i] {
				t.Fatalf("%s corrupt at %d", p, i)
			}
		}
	}
}

// TestChaosVMShardKillRestart is the sharded acceptance test: with K=2
// shards, killing the shard that owns blob A mid-write must (a) lose
// zero acknowledged publishes on A once the shard recovers, and (b)
// leave the sibling shard publishing blob B throughout the outage.
func TestChaosVMShardKillRestart(t *testing.T) {
	cfg := Config{
		DataProviders: 3,
		MetaProviders: 1,
		VMShards:      2,
		BlockSize:     64 * util.KB,
		DataDir:       t.TempDir(),
		CallTimeout:   time.Second,
		// The kill can orphan an assigned-but-uncommitted version; the
		// janitor must abort it or the publication line stalls forever.
		WriteTimeout: 2 * time.Second,
	}
	c, err := StartBlobSeer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	ctx := context.Background()
	client := c.NewClient("")
	// Mint until we hold one blob per shard.
	byShard := map[int]*core.Blob{}
	for len(byShard) < 2 {
		h, err := client.CreateBlob(ctx, cfg.BlockSize, 1)
		if err != nil {
			t.Fatal(err)
		}
		byShard[vmanager.ShardOf(h.ID(), cfg.VMShards)] = h
	}
	const victim = 0
	vic, sib := byShard[victim], byShard[1]

	payload := make([]byte, cfg.BlockSize)
	type tally struct {
		mu    sync.Mutex
		acked []blob.Version
	}
	var vt, st tally
	stop := make(chan struct{})
	var wg sync.WaitGroup
	writer := func(h *core.Blob, ta *tally) {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			wctx, cancel := context.WithTimeout(ctx, 5*time.Second)
			v, err := h.Append(wctx, payload)
			cancel()
			if err != nil {
				continue // only acknowledged writes carry the promise
			}
			ta.mu.Lock()
			ta.acked = append(ta.acked, v)
			ta.mu.Unlock()
		}
	}
	wg.Add(2)
	go writer(vic, &vt)
	go writer(sib, &st)

	time.Sleep(200 * time.Millisecond)
	c.KillVMShard(victim)

	// The outage window: the sibling shard must keep publishing.
	st.mu.Lock()
	sibBefore := len(st.acked)
	st.mu.Unlock()
	time.Sleep(300 * time.Millisecond)
	st.mu.Lock()
	sibDuring := len(st.acked)
	st.mu.Unlock()
	if sibDuring <= sibBefore {
		t.Errorf("sibling shard stalled during the outage: %d -> %d acks", sibBefore, sibDuring)
	}

	if err := c.RestartVMShard(victim); err != nil {
		t.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()

	vt.mu.Lock()
	vicAcked := append([]blob.Version(nil), vt.acked...)
	vt.mu.Unlock()
	if len(vicAcked) == 0 {
		t.Fatal("no writes acknowledged on the victim shard; the test exercised nothing")
	}
	var maxAcked blob.Version
	for _, v := range vicAcked {
		if v > maxAcked {
			maxAcked = v
		}
	}
	t.Logf("victim shard: %d acked (max v%d); sibling: %d acked (%d during outage)",
		len(vicAcked), maxAcked, len(st.acked), sibDuring-sibBefore)

	// Zero acked publishes lost on the recovered shard.
	vm := core.NewVMClient(c.Pool, c.VMAddr, c.VMAddrs)
	vm.SetRetry(rpc.Backoff{Attempts: 10, Base: 20 * time.Millisecond, Max: 200 * time.Millisecond})
	wctx, cancel := context.WithTimeout(ctx, 20*time.Second)
	defer cancel()
	if _, _, err := vm.WaitPublished(wctx, vic.ID(), maxAcked, 15*time.Second); err != nil {
		t.Fatalf("acked version %d never published after shard recovery: %v", maxAcked, err)
	}
	for _, v := range vicAcked {
		d, err := vm.VersionInfo(ctx, vic.ID(), v)
		if err != nil {
			t.Fatalf("acked version %d lost across shard crash: %v", v, err)
		}
		if d.Aborted {
			t.Fatalf("acked version %d aborted by recovery", v)
		}
	}
}
