package cluster_test

import (
	"bytes"
	"context"
	"io"
	"testing"

	"blobseer/internal/cluster"
	"blobseer/internal/core"
	"blobseer/internal/util"
)

// TestHandleAPIAcrossTCP drives the handle surface over real TCP
// connections — CreateBlob, write-behind streaming, a pinned Snapshot
// serving ReadAt and a readahead stream — the full production wiring
// under the redesigned client API.
func TestHandleAPIAcrossTCP(t *testing.T) {
	const block = int64(4 * util.KB)
	cl, err := cluster.StartBlobSeer(cluster.Config{
		DataProviders: 3,
		MetaProviders: 2,
		BlockSize:     block,
		MetaCacheSize: -1,
		UseTCP:        true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	ctx := context.Background()
	c := cl.NewClient("")

	b, err := c.CreateBlob(ctx, block, 2)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte("tcp-handle "), int(3*block)/11)
	w := b.NewWriter(ctx, core.WriterOptions{Depth: 2})
	for off := 0; off < len(data); off += 1000 {
		end := min(off+1000, len(data))
		if _, err := w.Write(data[off:end]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	s, err := b.Latest(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if s.Size() != int64(len(data)) {
		t.Fatalf("snapshot size = %d, want %d", s.Size(), len(data))
	}
	got := make([]byte, len(data))
	if _, err := s.ReadAt(got, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("TCP handle ReadAt mismatch")
	}

	r := s.NewReader(ctx, core.ReaderOptions{Readahead: 2})
	defer r.Close()
	streamed, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(streamed, data) {
		t.Fatal("TCP handle stream mismatch")
	}
}
