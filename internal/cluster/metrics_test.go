package cluster

import (
	"context"
	"io"
	"testing"

	"blobseer/internal/metrics"
)

// TestClusterMetricsEndToEnd drives real I/O through a deployment and
// asserts the /metrics endpoint shows live counters and histograms
// from every layer: version manager, provider manager, namespace,
// data providers, metadata providers, repair, and the client itself.
func TestClusterMetricsEndToEnd(t *testing.T) {
	cl, err := StartBlobSeer(Config{
		DataProviders: 2,
		MetaProviders: 2,
		BlockSize:     4096,
		MetricsAddr:   "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	if cl.MetricsURL() == "" {
		t.Fatal("no metrics URL despite MetricsAddr")
	}

	fsys, err := cl.NewMeteredBSFS("", "client")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	w, err := fsys.Create(ctx, "/m/file", true)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 3*4096)
	for i := range data {
		data[i] = byte(i)
	}
	if _, err := w.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := fsys.Open(ctx, "/m/file")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadAll(r); err != nil {
		t.Fatal(err)
	}
	r.Close()
	if _, err := cl.RepairEngine().RunOnce(ctx); err != nil {
		t.Fatal(err)
	}

	snap, err := metrics.Fetch(cl.MetricsURL())
	if err != nil {
		t.Fatal(err)
	}

	// Every service the write+read+repair pass touched must show
	// nonzero activity (counters or histogram observations).
	active := func(name string) bool {
		s, ok := snap[name]
		if !ok {
			return false
		}
		for _, v := range s.Counters {
			if v > 0 {
				return true
			}
		}
		for _, h := range s.Histograms {
			if h.Count > 0 {
				return true
			}
		}
		return false
	}
	want := []string{"vmanager", "pmanager", "namespace", "provider-0", "meta-0", "repair", "client"}
	n := 0
	for _, svc := range want {
		if active(svc) {
			n++
		} else {
			t.Errorf("service %s shows no activity in /metrics", svc)
		}
	}
	if n < 6 {
		t.Fatalf("only %d of %d services show live metrics", n, len(want))
	}

	// Spot-check cross-layer signals: a write must have moved provider
	// bytes and published through the version manager; the read must
	// have resolved metadata through the client histogram.
	provBytes := int64(0)
	for _, svc := range []string{"provider-0", "provider-1"} {
		provBytes += snap[svc].Counters["bytes_in"]
	}
	if provBytes < int64(len(data)) {
		t.Errorf("providers saw %d bytes in, want >= %d", provBytes, len(data))
	}
	if h := snap["vmanager"].Histograms["latency_commit"]; h.Count == 0 {
		t.Error("vmanager commit latency histogram is empty after a write")
	}
	if h := snap["client"].Histograms["resolve_latency"]; h.Count == 0 {
		t.Error("client resolve latency histogram is empty after a read")
	}
	if snap["namespace"].Counters["ops_create_file"] == 0 {
		t.Error("namespace create_file counter is zero after Create")
	}
}
