package cluster

import (
	"fmt"
	"time"

	"blobseer/internal/fs"
	"blobseer/internal/mapred"
	"blobseer/internal/rpc"
)

// MapRedConfig describes a Map/Reduce deployment over some storage
// layer. FSFor builds a FileSystem client for a given host — the
// co-deployment knob: passing the storage cluster's HostOf(i) for
// tracker i reproduces the paper's "tasktracker co-deployed with a
// datanode/provider on the same physical machine".
type MapRedConfig struct {
	Trackers    int
	MapSlots    int
	ReduceSlots int
	Poll        time.Duration
	FSFor       func(host string) (fs.FileSystem, error)
	Hosts       []string // host of each tracker; default host-0..host-N-1
}

func (c *MapRedConfig) fill() {
	if c.Trackers == 0 {
		c.Trackers = 3
	}
	if c.Poll == 0 {
		c.Poll = 2 * time.Millisecond
	}
	if c.Hosts == nil {
		for i := 0; i < c.Trackers; i++ {
			c.Hosts = append(c.Hosts, fmt.Sprintf("host-%d", i))
		}
	}
}

// MapRed is a running Map/Reduce deployment (jobtracker +
// tasktrackers) on its own in-process control network.
type MapRed struct {
	Cfg    MapRedConfig
	Pool   *rpc.Pool
	JTAddr string

	jtSvc    *mapred.JTService
	trackers []*mapred.TaskTracker
	servers  []*rpc.Server
	net      *rpc.InprocNetwork
}

// StartMapRed deploys the engine. jtFS is the FileSystem the jobtracker
// uses for split computation (typically FSFor("")).
func StartMapRed(cfg MapRedConfig) (*MapRed, error) {
	cfg.fill()
	if cfg.FSFor == nil {
		return nil, fmt.Errorf("cluster: MapRedConfig.FSFor is required")
	}
	m := &MapRed{Cfg: cfg, net: rpc.NewInprocNetwork()}
	m.Pool = rpc.NewPool(m.net.Dial)

	jtFS, err := cfg.FSFor("")
	if err != nil {
		return nil, err
	}
	m.jtSvc = mapred.NewJTService(mapred.NewJobTracker(jtFS))
	lis, err := m.net.Listen("jobtracker")
	if err != nil {
		return nil, err
	}
	srv := rpc.NewServer(m.jtSvc.Mux())
	m.servers = append(m.servers, srv)
	go srv.Serve(lis)
	m.JTAddr = "jobtracker"

	for i := 0; i < cfg.Trackers; i++ {
		host := cfg.Hosts[i]
		tfs, err := cfg.FSFor(host)
		if err != nil {
			m.Stop()
			return nil, err
		}
		addr := fmt.Sprintf("tracker-%d", i)
		tt := mapred.NewTaskTracker(mapred.TaskTrackerConfig{
			Addr:        addr,
			Host:        host,
			FS:          tfs,
			JT:          mapred.NewJTClient(m.Pool, m.JTAddr),
			Pool:        m.Pool,
			MapSlots:    cfg.MapSlots,
			ReduceSlots: cfg.ReduceSlots,
			Poll:        cfg.Poll,
		})
		tlis, err := m.net.Listen(addr)
		if err != nil {
			m.Stop()
			return nil, err
		}
		tsrv := rpc.NewServer(tt.Mux())
		m.servers = append(m.servers, tsrv)
		go tsrv.Serve(tlis)
		tt.Start()
		m.trackers = append(m.trackers, tt)
	}
	return m, nil
}

// Client returns a jobtracker client for submissions.
func (m *MapRed) Client() *mapred.JTClient {
	return mapred.NewJTClient(m.Pool, m.JTAddr)
}

// JTService exposes the jobtracker (tests).
func (m *MapRed) JTService() *mapred.JTService { return m.jtSvc }

// Stop shuts the deployment down.
func (m *MapRed) Stop() {
	for _, tt := range m.trackers {
		tt.Stop()
	}
	for _, s := range m.servers {
		s.Close()
	}
	if m.Pool != nil {
		m.Pool.Close()
	}
}
