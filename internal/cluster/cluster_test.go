package cluster_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"

	"blobseer/internal/cluster"
	"blobseer/internal/fs"
	"blobseer/internal/mapred"
	"blobseer/internal/mapred/apps"
	"blobseer/internal/util"
)

const blockSize = int(64 * util.KB)

// TestBlobSeerOverTCP runs the full client stack against daemons
// listening on real loopback TCP sockets — the cross-process
// deployment cmd/blobseerd provides, in-process.
func TestBlobSeerOverTCP(t *testing.T) {
	cl, err := cluster.StartBlobSeer(cluster.Config{
		DataProviders: 4,
		MetaProviders: 2,
		BlockSize:     int64(blockSize),
		UseTCP:        true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()

	ctx := context.Background()
	fsys, err := cl.NewBSFS("")
	if err != nil {
		t.Fatal(err)
	}

	payload := bytes.Repeat([]byte("tcp"), blockSize) // ~3 blocks
	w, err := fsys.Create(ctx, "/t/f", true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(payload); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := fsys.Open(ctx, "/t/f")
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(r)
	r.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("TCP round trip mismatch: %d bytes vs %d", len(got), len(payload))
	}

	locs, err := fsys.Locations(ctx, "/t/f", 0, int64(len(payload)))
	if err != nil {
		t.Fatal(err)
	}
	if len(locs) == 0 {
		t.Fatal("no block locations over TCP")
	}
	for _, l := range locs {
		if len(l.Hosts) == 0 || !strings.HasPrefix(l.Hosts[0], "host-") {
			t.Fatalf("bad location hosts %v", l.Hosts)
		}
	}
}

// TestHDFSOverTCP checks the baseline over TCP, including its defining
// restriction: no append.
func TestHDFSOverTCP(t *testing.T) {
	h, err := cluster.StartHDFS(cluster.HDFSConfig{
		Datanodes: 3,
		BlockSize: int64(blockSize),
		UseTCP:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Stop()

	ctx := context.Background()
	fsys, err := h.NewFS("")
	if err != nil {
		t.Fatal(err)
	}
	w, err := fsys.Create(ctx, "/f", true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.WriteString(w, "immutable once written"); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := fsys.Append(ctx, "/f"); !errors.Is(err, fs.ErrNoAppend) {
		t.Fatalf("HDFS append should return ErrNoAppend, got %v", err)
	}
	r, err := fsys.Open(ctx, "/f")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(r)
	r.Close()
	if string(got) != "immutable once written" {
		t.Fatalf("read back %q", got)
	}
}

// TestConcurrentAppendersOverTCP is Figure 5's pattern on the real
// stack: uncoordinated appenders, every block survives.
func TestConcurrentAppendersOverTCP(t *testing.T) {
	cl, err := cluster.StartBlobSeer(cluster.Config{
		DataProviders: 4,
		BlockSize:     int64(blockSize),
		UseTCP:        true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	ctx := context.Background()

	setup, err := cl.NewBSFS("")
	if err != nil {
		t.Fatal(err)
	}
	w, err := setup.Create(ctx, "/log", true)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	const appenders = 8
	var wg sync.WaitGroup
	errs := make(chan error, appenders)
	for i := 0; i < appenders; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fsys, err := cl.NewBSFS("")
			if err != nil {
				errs <- err
				return
			}
			a, err := fsys.Append(ctx, "/log")
			if err != nil {
				errs <- err
				return
			}
			block := bytes.Repeat([]byte{byte('a' + i)}, blockSize)
			if _, err := a.Write(block); err != nil {
				errs <- err
				return
			}
			errs <- a.Close()
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	st, err := setup.Stat(ctx, "/log")
	if err != nil {
		t.Fatal(err)
	}
	if st.Size != int64(appenders*blockSize) {
		t.Fatalf("final size %d, want %d", st.Size, appenders*blockSize)
	}
	// Each appender's block must be present, intact and uninterleaved.
	r, err := setup.Open(ctx, "/log")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	data, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[byte]int)
	for off := 0; off < len(data); off += blockSize {
		b := data[off]
		for i := 0; i < blockSize; i++ {
			if data[off+i] != b {
				t.Fatalf("block at %d interleaved: %c vs %c", off, b, data[off+i])
			}
		}
		seen[b]++
	}
	if len(seen) != appenders {
		t.Fatalf("want %d distinct appender blocks, got %d", appenders, len(seen))
	}
}

// TestMapReduceWordCountOverTCPStorage runs a full Map/Reduce job whose
// storage RPCs travel real TCP.
func TestMapReduceWordCountOverTCPStorage(t *testing.T) {
	cl, err := cluster.StartBlobSeer(cluster.Config{
		DataProviders: 3,
		BlockSize:     4 * util.KB,
		UseTCP:        true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	fsFor := func(host string) (fs.FileSystem, error) { return cl.NewBSFS(host) }

	mr, err := cluster.StartMapRed(cluster.MapRedConfig{Trackers: 3, FSFor: fsFor})
	if err != nil {
		t.Fatal(err)
	}
	defer mr.Stop()

	ctx := context.Background()
	fsys, err := fsFor("")
	if err != nil {
		t.Fatal(err)
	}
	w, err := fsys.Create(ctx, "/in/t.txt", true)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		if _, err := io.WriteString(w, "alpha beta alpha\n"); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	jt := mr.Client()
	id, err := jt.Submit(ctx, mapred.JobConf{
		Name:       "wc",
		App:        apps.WordCountApp,
		InputPaths: []string{"/in/t.txt"},
		OutputDir:  "/out",
		NumReduces: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := jt.Wait(ctx, id, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != mapred.JobSucceeded {
		t.Fatalf("job failed: %s", st.Err)
	}

	var out strings.Builder
	entries, err := fsys.List(ctx, "/out")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		r, err := fsys.Open(ctx, e.Path)
		if err != nil {
			t.Fatal(err)
		}
		d, err := io.ReadAll(r)
		r.Close()
		if err != nil {
			t.Fatal(err)
		}
		out.Write(d)
	}
	if !strings.Contains(out.String(), "alpha\t4000") || !strings.Contains(out.String(), "beta\t2000") {
		t.Fatalf("wordcount output wrong:\n%s", out.String())
	}
}

// TestWriteAvoidsDeadProvider injects a provider failure: after the
// provider manager marks a provider dead, new writes land only on live
// providers and reads of new data succeed.
func TestWriteAvoidsDeadProvider(t *testing.T) {
	cl, err := cluster.StartBlobSeer(cluster.Config{
		DataProviders: 3,
		BlockSize:     int64(blockSize),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	ctx := context.Background()

	dead := cl.ProviderAddrs[1]
	cl.PMService().State().MarkDead(dead)

	client := cl.NewClient("")
	m, err := client.Create(ctx, int64(blockSize), 1)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{7}, 4*blockSize)
	v, err := client.Append(ctx, m.ID, payload)
	if err != nil {
		t.Fatal(err)
	}
	locs, err := client.Locations(ctx, m.ID, v, 0, int64(len(payload)))
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range locs {
		for _, a := range l.Providers {
			if a == dead {
				t.Fatalf("block [%d,+%d) placed on dead provider %s", l.Off, l.Len, dead)
			}
		}
	}
	got, err := client.Read(ctx, m.ID, v, 0, int64(len(payload)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("read-back mismatch after provider death")
	}
}

// TestCoDeployedClientStillBalanced: unlike HDFS's local-first policy,
// BlobSeer's round-robin ignores the writer's location, so a client
// co-deployed with provider 0 still spreads blocks across everyone —
// the root cause of the Figure 3(b) difference.
func TestCoDeployedClientStillBalanced(t *testing.T) {
	cl, err := cluster.StartBlobSeer(cluster.Config{
		DataProviders: 4,
		BlockSize:     int64(blockSize),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	ctx := context.Background()

	fsys, err := cl.NewBSFS(cl.HostOf(0)) // co-deployed writer
	if err != nil {
		t.Fatal(err)
	}
	w, err := fsys.Create(ctx, "/f", true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(make([]byte, 8*blockSize)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	locs, err := fsys.Locations(ctx, "/f", 0, int64(8*blockSize))
	if err != nil {
		t.Fatal(err)
	}
	hosts := make(map[string]int)
	for _, l := range locs {
		for _, h := range l.Hosts {
			hosts[h]++
		}
	}
	if len(hosts) != 4 {
		t.Fatalf("round-robin should use all 4 providers, got %v", hosts)
	}
	for h, c := range hosts {
		if c != 2 {
			t.Errorf("host %s stores %d blocks, want 2 (%v)", h, c, hosts)
		}
	}
}

func TestClusterDefaults(t *testing.T) {
	cl, err := cluster.StartBlobSeer(cluster.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	if len(cl.ProviderAddrs) != 4 || len(cl.MetaAddrs) != 2 {
		t.Fatalf("defaults: %d providers, %d metas", len(cl.ProviderAddrs), len(cl.MetaAddrs))
	}
	// Namespace, version and provider managers must be reachable.
	ctx := context.Background()
	fsys, err := cl.NewBSFS("")
	if err != nil {
		t.Fatal(err)
	}
	if err := fsys.Mkdirs(ctx, "/a/b/c"); err != nil {
		t.Fatal(err)
	}
	st, err := fsys.Stat(ctx, "/a/b/c")
	if err != nil || !st.IsDir {
		t.Fatalf("mkdirs round trip: %+v, %v", st, err)
	}
}

func TestHostOfNaming(t *testing.T) {
	cl, err := cluster.StartBlobSeer(cluster.Config{DataProviders: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	h, err := cluster.StartHDFS(cluster.HDFSConfig{Datanodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Stop()
	for i := 0; i < 2; i++ {
		if cl.HostOf(i) != h.HostOf(i) {
			t.Fatalf("host naming must agree for co-deployment: %s vs %s", cl.HostOf(i), h.HostOf(i))
		}
		if want := fmt.Sprintf("host-%d", i); cl.HostOf(i) != want {
			t.Fatalf("HostOf(%d) = %s, want %s", i, cl.HostOf(i), want)
		}
	}
}
