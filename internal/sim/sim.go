// Package sim is a deterministic discrete-event simulation kernel: the
// substrate that replaces the paper's 270-machine Grid'5000 testbed.
// Processes are goroutines scheduled cooperatively — exactly one runs
// at a time, handed control by the scheduler in virtual-time order — so
// simulations are data-race-free and fully reproducible without locks
// in model code.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is virtual time in nanoseconds.
type Time int64

// Time unit constants.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Seconds renders a virtual duration in seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// DurationFromSeconds converts seconds to virtual time.
func DurationFromSeconds(s float64) Time { return Time(s * float64(Second)) }

// Env is one simulation universe.
type Env struct {
	now    Time
	queue  eventHeap
	seq    uint64
	parked chan struct{} // a proc signals here when it yields or exits
	nProcs int           // live processes (leak diagnostics)
}

// NewEnv returns an empty simulation at time zero.
func NewEnv() *Env {
	return &Env{parked: make(chan struct{})}
}

// Now returns the current virtual time.
func (e *Env) Now() Time { return e.now }

// Procs returns the number of live processes (blocked or runnable).
func (e *Env) Procs() int { return e.nProcs }

type event struct {
	at   Time
	seq  uint64
	proc *Proc  // wake this process...
	fn   func() // ...or run this scheduler-context callback
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

func (e *Env) schedule(at Time, p *Proc, fn func()) {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling into the past (%d < %d)", at, e.now))
	}
	e.seq++
	heap.Push(&e.queue, event{at: at, seq: e.seq, proc: p, fn: fn})
}

// Call schedules fn to run in scheduler context after delay. fn must
// not block or yield; it may schedule further events and fire Events.
// The network model uses this for flow-completion bookkeeping.
func (e *Env) Call(delay Time, fn func()) {
	e.schedule(e.now+delay, nil, fn)
}

// Proc is one simulated process.
type Proc struct {
	env    *Env
	resume chan struct{}
	id     int
}

// Env returns the owning environment.
func (p *Proc) Env() *Env { return p.env }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.env.now }

// Go spawns a process that starts at the current virtual time.
func (e *Env) Go(fn func(p *Proc)) *Proc {
	e.nProcs++
	p := &Proc{env: e, resume: make(chan struct{}), id: e.nProcs}
	go func() {
		<-p.resume // wait for the scheduler to start us
		fn(p)
		e.nProcs--
		e.parked <- struct{}{} // final yield: process exits
	}()
	e.schedule(e.now, p, nil)
	return p
}

// Run processes events until the queue is empty, returning the final
// virtual time. Processes still blocked on events that never fire are
// reported by Procs() (a model bug); their goroutines are abandoned.
func (e *Env) Run() Time {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(event)
		e.now = ev.at
		switch {
		case ev.fn != nil:
			ev.fn()
		case ev.proc != nil:
			ev.proc.resume <- struct{}{}
			<-e.parked // until the proc yields or exits
		}
	}
	return e.now
}

// RunUntil processes events up to and including time limit.
func (e *Env) RunUntil(limit Time) Time {
	for len(e.queue) > 0 && e.queue[0].at <= limit {
		ev := heap.Pop(&e.queue).(event)
		e.now = ev.at
		switch {
		case ev.fn != nil:
			ev.fn()
		case ev.proc != nil:
			ev.proc.resume <- struct{}{}
			<-e.parked
		}
	}
	if e.now < limit {
		e.now = limit
	}
	return e.now
}

// yield parks the process and returns control to the scheduler.
func (p *Proc) yield() {
	p.env.parked <- struct{}{}
	<-p.resume
}

// Sleep suspends the process for d of virtual time.
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		d = 0
	}
	p.env.schedule(p.env.now+d, p, nil)
	p.yield()
}

// Event is a one-shot signal processes can wait on.
type Event struct {
	env     *Env
	fired   bool
	waiters []*Proc
}

// NewEvent creates an unfired event.
func (e *Env) NewEvent() *Event { return &Event{env: e} }

// Fired reports whether the event fired.
func (ev *Event) Fired() bool { return ev.fired }

// Fire triggers the event, waking all waiters at the current instant.
// Safe to call from process or scheduler-callback context; firing
// twice is a no-op.
func (ev *Event) Fire() {
	if ev.fired {
		return
	}
	ev.fired = true
	for _, p := range ev.waiters {
		ev.env.schedule(ev.env.now, p, nil)
	}
	ev.waiters = nil
}

// Wait blocks the process until the event fires (returns immediately
// if it already has).
func (ev *Event) Wait(p *Proc) {
	if ev.fired {
		return
	}
	ev.waiters = append(ev.waiters, p)
	p.yield()
}

// Resource is a FIFO server pool with fixed per-request service time —
// the model for serialized daemons like the version manager (version
// assignment is BlobSeer's only serialization point) and the HDFS
// namenode.
type Resource struct {
	env     *Env
	servers int
	busy    int
	queue   []*Proc
}

// NewResource creates a pool with the given number of servers.
func (e *Env) NewResource(servers int) *Resource {
	if servers < 1 {
		servers = 1
	}
	return &Resource{env: e, servers: servers}
}

// QueueLen returns the number of waiting processes (tests, metrics).
func (r *Resource) QueueLen() int { return len(r.queue) }

// Use occupies one server for the given service time, queueing FIFO
// when all servers are busy.
func (r *Resource) Use(p *Proc, service Time) {
	// Re-check after waking: a process arriving between our wake-up
	// being scheduled and running may have taken the freed server.
	for r.busy >= r.servers {
		r.queue = append(r.queue, p)
		p.yield()
	}
	r.busy++
	p.Sleep(service)
	r.busy--
	if len(r.queue) > 0 {
		next := r.queue[0]
		r.queue = r.queue[1:]
		r.env.schedule(r.env.now, next, nil)
	}
}
