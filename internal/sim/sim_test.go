package sim

import (
	"testing"
)

func TestSleepOrdering(t *testing.T) {
	env := NewEnv()
	var order []int
	env.Go(func(p *Proc) {
		p.Sleep(20 * Millisecond)
		order = append(order, 2)
	})
	env.Go(func(p *Proc) {
		p.Sleep(10 * Millisecond)
		order = append(order, 1)
	})
	env.Go(func(p *Proc) {
		p.Sleep(30 * Millisecond)
		order = append(order, 3)
	})
	end := env.Run()
	if end != 30*Millisecond {
		t.Errorf("end = %v", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if env.Procs() != 0 {
		t.Errorf("leaked %d procs", env.Procs())
	}
}

func TestSameInstantFIFO(t *testing.T) {
	env := NewEnv()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		env.Go(func(p *Proc) {
			p.Sleep(Millisecond)
			order = append(order, i)
		})
	}
	env.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant order not FIFO: %v", order)
		}
	}
}

func TestEventWakesAllWaiters(t *testing.T) {
	env := NewEnv()
	ev := env.NewEvent()
	woken := 0
	for i := 0; i < 4; i++ {
		env.Go(func(p *Proc) {
			ev.Wait(p)
			woken++
			if p.Now() != 7*Millisecond {
				t.Errorf("woken at %v", p.Now())
			}
		})
	}
	env.Go(func(p *Proc) {
		p.Sleep(7 * Millisecond)
		ev.Fire()
	})
	env.Run()
	if woken != 4 {
		t.Errorf("woken = %d", woken)
	}
	// Waiting on a fired event returns immediately.
	env2 := NewEnv()
	ev2 := env2.NewEvent()
	ev2.Fire()
	ran := false
	env2.Go(func(p *Proc) {
		ev2.Wait(p)
		ran = true
	})
	env2.Run()
	if !ran {
		t.Error("wait on fired event blocked")
	}
	if !ev2.Fired() {
		t.Error("Fired() false after Fire")
	}
}

func TestDoubleFireHarmless(t *testing.T) {
	env := NewEnv()
	ev := env.NewEvent()
	env.Go(func(p *Proc) { ev.Fire(); ev.Fire() })
	env.Run()
}

func TestResourceSerializes(t *testing.T) {
	env := NewEnv()
	res := env.NewResource(1)
	var finish []Time
	for i := 0; i < 3; i++ {
		env.Go(func(p *Proc) {
			res.Use(p, 10*Millisecond)
			finish = append(finish, p.Now())
		})
	}
	env.Run()
	want := []Time{10 * Millisecond, 20 * Millisecond, 30 * Millisecond}
	if len(finish) != 3 {
		t.Fatalf("finish = %v", finish)
	}
	for i := range want {
		if finish[i] != want[i] {
			t.Errorf("finish[%d] = %v, want %v", i, finish[i], want[i])
		}
	}
}

func TestResourceParallelServers(t *testing.T) {
	env := NewEnv()
	res := env.NewResource(2)
	var finish []Time
	for i := 0; i < 4; i++ {
		env.Go(func(p *Proc) {
			res.Use(p, 10*Millisecond)
			finish = append(finish, p.Now())
		})
	}
	env.Run()
	// 2 at t=10ms, 2 at t=20ms.
	if finish[0] != 10*Millisecond || finish[1] != 10*Millisecond ||
		finish[2] != 20*Millisecond || finish[3] != 20*Millisecond {
		t.Errorf("finish = %v", finish)
	}
}

func TestResourceNoOvercommit(t *testing.T) {
	// Stagger arrivals so releases and arrivals interleave at shared
	// instants; the in-service count must never exceed the server count.
	env := NewEnv()
	res := env.NewResource(2)
	inService, maxIn := 0, 0
	for i := 0; i < 12; i++ {
		i := i
		env.Go(func(p *Proc) {
			p.Sleep(Time(i%3) * Millisecond)
			res.Use(p, Millisecond) // occupies a server for 1ms
			// Track occupancy via a zero-length critical section probe:
			inService++
			if inService > maxIn {
				maxIn = inService
			}
			inService--
		})
	}
	env.Run()
	if res.busy != 0 || res.QueueLen() != 0 {
		t.Errorf("resource not drained: busy=%d queue=%d", res.busy, res.QueueLen())
	}
}

func TestCallRunsInOrder(t *testing.T) {
	env := NewEnv()
	var got []int
	env.Go(func(p *Proc) {
		env.Call(5*Millisecond, func() { got = append(got, 2) })
		env.Call(1*Millisecond, func() { got = append(got, 1) })
		p.Sleep(10 * Millisecond)
		got = append(got, 3)
	})
	env.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("got = %v", got)
	}
}

func TestRunUntil(t *testing.T) {
	env := NewEnv()
	fired := 0
	env.Go(func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Sleep(10 * Millisecond)
			fired++
		}
	})
	env.RunUntil(35 * Millisecond)
	if fired != 3 {
		t.Errorf("fired = %d at %v", fired, env.Now())
	}
	env.Run()
	if fired != 10 {
		t.Errorf("fired = %d after drain", fired)
	}
}

func TestSchedulingIntoPastPanics(t *testing.T) {
	env := NewEnv()
	env.Go(func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("no panic for negative Call delay after time advanced")
			}
			// Unwind cleanly: the kernel expects a final park, which the
			// deferred recover path provides by finishing the proc.
		}()
		p.Sleep(Millisecond)
		env.Call(-2*Millisecond, func() {})
	})
	env.Run()
}

func TestTimeConversions(t *testing.T) {
	if (2 * Second).Seconds() != 2.0 {
		t.Error("Seconds conversion")
	}
	if DurationFromSeconds(0.5) != 500*Millisecond {
		t.Error("DurationFromSeconds conversion")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []Time {
		env := NewEnv()
		var out []Time
		ev := env.NewEvent()
		res := env.NewResource(1)
		for i := 0; i < 5; i++ {
			i := i
			env.Go(func(p *Proc) {
				p.Sleep(Time(i) * Millisecond)
				res.Use(p, 2*Millisecond)
				if i == 3 {
					ev.Fire()
				}
				out = append(out, p.Now())
			})
		}
		env.Go(func(p *Proc) {
			ev.Wait(p)
			out = append(out, p.Now())
		})
		env.Run()
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("nondeterministic length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %v vs %v", i, a, b)
		}
	}
}
