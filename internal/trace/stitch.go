package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Node is one span in a stitched causal tree.
type Node struct {
	Span     Span
	Children []*Node
	// Orphan marks a span whose parent was not among the collected
	// spans (evicted from a ring, or its service unreachable); it is
	// promoted to a root so the data still renders.
	Orphan bool
}

// Stitch reassembles spans (typically polled from several /trace
// endpoints) into a forest of causal trees: children are attached to
// the span whose ID they name as parent, duplicates (the same span
// seen via two endpoints) are dropped, and spans whose parent is
// missing surface as orphan roots rather than disappearing. Roots and
// children are ordered by start time.
func Stitch(spans []Span) []*Node {
	byID := make(map[SpanID]*Node, len(spans))
	order := make([]*Node, 0, len(spans))
	for _, sp := range spans {
		if sp.ID == 0 {
			continue
		}
		if _, dup := byID[sp.ID]; dup {
			continue
		}
		n := &Node{Span: sp}
		byID[sp.ID] = n
		order = append(order, n)
	}
	var roots []*Node
	for _, n := range order {
		if n.Span.Parent == 0 {
			roots = append(roots, n)
			continue
		}
		if p, ok := byID[n.Span.Parent]; ok && p != n {
			p.Children = append(p.Children, n)
			continue
		}
		n.Orphan = true
		roots = append(roots, n)
	}
	byStart := func(ns []*Node) {
		sort.Slice(ns, func(i, j int) bool { return ns[i].Span.Start.Before(ns[j].Span.Start) })
	}
	byStart(roots)
	for _, n := range order {
		byStart(n.Children)
	}
	return roots
}

// FormatTree renders a stitched forest as the indented causal tree
// bsfsctl prints: one line per span with service.op, the per-hop
// duration, and any error.
func FormatTree(roots []*Node) string {
	var b strings.Builder
	for _, r := range roots {
		formatNode(&b, r, 0)
	}
	return b.String()
}

func formatNode(b *strings.Builder, n *Node, depth int) {
	label := strings.Repeat("  ", depth) + n.Span.Service + "." + n.Span.Op
	if n.Orphan {
		label += " (orphan)"
	}
	fmt.Fprintf(b, "%-44s %10s", label, fmtDur(n.Span.Duration))
	if n.Span.Err != "" {
		fmt.Fprintf(b, "  ERR(%d) %s", n.Span.Code, n.Span.Err)
	}
	b.WriteByte('\n')
	for _, c := range n.Children {
		formatNode(b, c, depth+1)
	}
}

// fmtDur renders a duration at ~3 significant figures so columns stay
// readable across micro- and millisecond hops.
func fmtDur(d time.Duration) string {
	switch {
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.3fs", d.Seconds())
	}
}
