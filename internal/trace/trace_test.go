package trace

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestIDRoundTrip(t *testing.T) {
	id := ID{Hi: 0x0123456789abcdef, Lo: 0xfedcba9876543210}
	s := id.String()
	if len(s) != 32 {
		t.Fatalf("String() = %q, want 32 hex digits", s)
	}
	back, err := ParseID(s)
	if err != nil {
		t.Fatal(err)
	}
	if back != id {
		t.Errorf("ParseID(String()) = %v, want %v", back, id)
	}
	for _, bad := range []string{"", "xyz", strings.Repeat("0", 31), strings.Repeat("g", 32)} {
		if _, err := ParseID(bad); err == nil {
			t.Errorf("ParseID(%q) accepted malformed input", bad)
		}
	}

	// JSON must carry the hex string form (u64 halves don't survive a
	// float64 mantissa).
	data, err := json.Marshal(id)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != `"`+s+`"` {
		t.Errorf("json = %s, want %q", data, s)
	}
	var dec ID
	if err := json.Unmarshal(data, &dec); err != nil {
		t.Fatal(err)
	}
	if dec != id {
		t.Errorf("json round-trip = %v, want %v", dec, id)
	}
}

func TestNewIDNonZero(t *testing.T) {
	for i := 0; i < 100; i++ {
		if NewID().IsZero() {
			t.Fatal("NewID returned the zero ID")
		}
	}
}

func TestTracerRecordsOnlyTracedContexts(t *testing.T) {
	tr := New("svc", 0) // sampling fully off

	// A plain context must not record.
	ctx, sp := tr.Start(context.Background(), "op")
	if sp.Recording() {
		t.Fatal("unsampled Start is recording")
	}
	sp.Finish(nil)
	if _, ok := FromContext(ctx); ok {
		t.Fatal("unsampled Start installed a trace context")
	}
	if tr.Recorded() != 0 {
		t.Fatalf("Recorded() = %d after unsampled op", tr.Recorded())
	}

	// A force-sampled root context must record, and children must nest.
	rctx, id := WithRoot(context.Background())
	cctx, root := tr.Start(rctx, "root")
	if !root.Recording() || root.Trace() != id {
		t.Fatalf("root not recording trace %v", id)
	}
	_, child := tr.Start(cctx, "child")
	child.Finish(nil)
	root.Finish(nil)

	spans := tr.Spans(id)
	if len(spans) != 2 {
		t.Fatalf("Spans(%v) returned %d spans, want 2", id, len(spans))
	}
	var rootSp, childSp *Span
	for i := range spans {
		if spans[i].Op == "root" {
			rootSp = &spans[i]
		} else {
			childSp = &spans[i]
		}
	}
	if rootSp == nil || childSp == nil {
		t.Fatalf("missing root/child span in %+v", spans)
	}
	if rootSp.Parent != 0 {
		t.Errorf("root parent = %v, want 0", rootSp.Parent)
	}
	if childSp.Parent != rootSp.ID {
		t.Errorf("child parent = %v, want %v", childSp.Parent, rootSp.ID)
	}
}

func TestHeadSampling(t *testing.T) {
	always := New("svc", 0)
	always.SetSampling(1, 0)
	_, sp := always.Start(context.Background(), "op")
	if !sp.Recording() {
		t.Error("rate 1: fresh root not sampled")
	}
	sp.Finish(nil)

	never := New("svc", 0)
	never.SetSampling(0, 0)
	for i := 0; i < 50; i++ {
		if _, sp := never.Start(context.Background(), "op"); sp.Recording() {
			t.Fatal("rate 0: fresh root sampled")
		}
	}
}

func TestRingBounded(t *testing.T) {
	tr := New("svc", 16)
	tr.SetSampling(1, 0)
	id := NewID()
	ctx := NewContext(context.Background(), Context{Trace: id})
	const total = 500
	for i := 0; i < total; i++ {
		_, sp := tr.Start(ctx, "op")
		sp.Finish(nil)
	}
	if got := tr.Recorded(); got != total {
		t.Errorf("Recorded() = %d, want %d", got, total)
	}
	// Capacity rounds up to the stripe count, but eviction must hold:
	// nowhere near all 500 spans may be retained.
	if got := len(tr.Spans(id)); got > 2*16 {
		t.Errorf("ring retained %d spans, want <= 32 (bounded)", got)
	}
}

func TestSlowRootCapture(t *testing.T) {
	tr := New("svc", 0)
	tr.SetSampling(0, time.Nanosecond) // slow>0: trace everything, index slow roots

	ctx, root := tr.Start(context.Background(), "read")
	if !root.Recording() {
		t.Fatal("slow-armed tracer did not sample a fresh root")
	}
	_, child := tr.Start(ctx, "resolve")
	time.Sleep(time.Millisecond)
	child.Finish(nil)
	root.Finish(nil)

	roots := tr.SlowRoots()
	if len(roots) != 1 {
		t.Fatalf("SlowRoots() = %d entries, want 1 (children must not be indexed)", len(roots))
	}
	r := roots[0]
	if r.Op != "read" || r.Service != "svc" || r.Trace != root.Trace() {
		t.Errorf("slow root = %+v", r)
	}
	if r.Duration < time.Millisecond {
		t.Errorf("slow root duration = %v, want >= 1ms", r.Duration)
	}
}

func TestNilTracerIsNoop(t *testing.T) {
	var tr *Tracer
	ctx, sp := tr.Start(context.Background(), "op")
	if sp.Recording() {
		t.Error("nil tracer recording")
	}
	sp.Finish(nil)
	if ctx != context.Background() {
		t.Error("nil tracer modified ctx")
	}
	if tr.Spans(NewID()) != nil || tr.SlowRoots() != nil || tr.Recorded() != 0 || tr.Service() != "" {
		t.Error("nil tracer query not empty")
	}
	tr.SetSampling(1, time.Second) // must not panic
}

func TestStitch(t *testing.T) {
	id := NewID()
	t0 := time.Now()
	spans := []Span{
		{Trace: id, ID: 1, Parent: 0, Service: "client", Op: "read", Start: t0},
		{Trace: id, ID: 2, Parent: 1, Service: "vmanager", Op: "latest", Start: t0.Add(time.Millisecond)},
		{Trace: id, ID: 3, Parent: 1, Service: "client", Op: "readat", Start: t0.Add(2 * time.Millisecond)},
		{Trace: id, ID: 4, Parent: 3, Service: "provider-0", Op: "get_block", Start: t0.Add(3 * time.Millisecond)},
		{Trace: id, ID: 2, Parent: 1, Service: "vmanager", Op: "latest", Start: t0.Add(time.Millisecond)}, // duplicate
		{Trace: id, ID: 9, Parent: 7, Service: "meta-0", Op: "get", Start: t0.Add(4 * time.Millisecond)},  // orphan
	}
	roots := Stitch(spans)
	if len(roots) != 2 {
		t.Fatalf("Stitch returned %d roots, want 2 (tree + orphan)", len(roots))
	}
	tree := roots[0]
	if tree.Span.ID != 1 || len(tree.Children) != 2 {
		t.Fatalf("root = span %d with %d children, want span 1 with 2", tree.Span.ID, len(tree.Children))
	}
	// Children sorted by start: latest (t0+1ms) before readat (t0+2ms).
	if tree.Children[0].Span.Op != "latest" || tree.Children[1].Span.Op != "readat" {
		t.Errorf("child order = %s, %s", tree.Children[0].Span.Op, tree.Children[1].Span.Op)
	}
	if n := tree.Children[1].Children; len(n) != 1 || n[0].Span.Op != "get_block" {
		t.Errorf("get_block not nested under readat")
	}
	if !roots[1].Orphan || roots[1].Span.ID != 9 {
		t.Errorf("orphan span not promoted to root: %+v", roots[1])
	}

	out := FormatTree(roots)
	for _, want := range []string{"client.read", "  vmanager.latest", "    provider-0.get_block", "meta-0.get (orphan)"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatTree output missing %q:\n%s", want, out)
		}
	}
}

func TestExporterHTTPRoundTrip(t *testing.T) {
	tr := New("svc", 0)
	tr.SetSampling(0, time.Nanosecond)
	exp := NewExporter()
	exp.Register(tr)

	ctx, root := tr.Start(context.Background(), "write")
	_, child := tr.Start(ctx, "commit")
	time.Sleep(time.Millisecond)
	child.Finish(nil)
	root.Finish(nil)
	id := root.Trace()

	srv := httptest.NewServer(exp.Handler())
	defer srv.Close()

	spans, err := Fetch(srv.URL, id)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 2 {
		t.Fatalf("Fetch returned %d spans, want 2", len(spans))
	}
	// Sorted by start: the root began first.
	if spans[0].Op != "write" || spans[1].Parent != spans[0].ID {
		t.Errorf("fetched spans lost structure: %+v", spans)
	}

	slow, err := FetchSlow(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if len(slow) != 1 || slow[0].Trace != id {
		t.Errorf("FetchSlow = %+v, want the one slow root", slow)
	}

	// An unknown but well-formed ID returns an empty span set, not an error.
	none, err := Fetch(srv.URL, NewID())
	if err != nil {
		t.Fatal(err)
	}
	if len(none) != 0 {
		t.Errorf("unknown trace returned %d spans", len(none))
	}
}

// The paired benchmarks pin the no-op path: tracing compiled into a hot
// path must cost nothing measurable until a request is sampled. Compare
// allocs/op across the three.
func BenchmarkStartFinishNilTracer(b *testing.B) {
	var tr *Tracer
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := tr.Start(ctx, "op")
		sp.Finish(nil)
	}
}

func BenchmarkStartFinishSamplingOff(b *testing.B) {
	tr := New("svc", 0)
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := tr.Start(ctx, "op")
		sp.Finish(nil)
	}
}

func BenchmarkStartFinishSampled(b *testing.B) {
	tr := New("svc", 0)
	tr.SetSampling(1, 0)
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := tr.Start(ctx, "op")
		sp.Finish(nil)
	}
}
