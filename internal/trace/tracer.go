package trace

import (
	"context"
	"math"
	"math/rand/v2"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultBufSpans is the default per-tracer span capacity.
const DefaultBufSpans = 4096

// nStripes fans recording across independent rings so concurrent
// handlers on one service don't serialize on a single mutex. Queries
// scan every stripe; recording touches exactly one.
const nStripes = 8

type stripe struct {
	mu   sync.Mutex
	buf  []Span
	next int
	full bool
}

func (st *stripe) record(sp Span) {
	st.mu.Lock()
	st.buf[st.next] = sp
	st.next++
	if st.next == len(st.buf) {
		st.next = 0
		st.full = true
	}
	st.mu.Unlock()
}

func (st *stripe) collect(id ID, out []Span) []Span {
	st.mu.Lock()
	n := st.next
	if st.full {
		n = len(st.buf)
	}
	for i := 0; i < n; i++ {
		if st.buf[i].Trace == id {
			out = append(out, st.buf[i])
		}
	}
	st.mu.Unlock()
	return out
}

// Root is one slow-root index entry: a sampled root span whose
// duration crossed the tracer's slow threshold. The index answers
// "what was slow lately?" without knowing any trace ID up front.
type Root struct {
	Trace    ID            `json:"trace"`
	Service  string        `json:"service"`
	Op       string        `json:"op"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	Err      string        `json:"err,omitempty"`
}

// Tracer records spans for one service into a bounded lock-striped
// ring. The nil *Tracer is a valid no-op, mirroring the nil metrics
// registry: Start on a nil tracer returns ctx unchanged and a zero
// Active whose Finish does nothing, so instrumented code never
// branches on "is tracing on".
type Tracer struct {
	service string

	// sample is the head-sampling threshold: a fresh root is sampled
	// iff a random uint64 is below it (0 = never, MaxUint64 = always).
	sample atomic.Uint64
	// slow (ns, 0 = off) arms slow-root capture: every root is traced
	// and the ones slower than the threshold are indexed in slowBuf.
	slow atomic.Int64

	stripes [nStripes]stripe

	slowMu   sync.Mutex
	slowBuf  []Root
	slowNext int
	slowFull bool

	recorded atomic.Uint64 // total spans recorded (tests, leak checks)
}

// New returns a tracer for service with capacity for bufSpans spans
// (DefaultBufSpans if <= 0), rounded up to the stripe count. Sampling
// starts fully off; see SetSampling.
func New(service string, bufSpans int) *Tracer {
	if bufSpans <= 0 {
		bufSpans = DefaultBufSpans
	}
	per := (bufSpans + nStripes - 1) / nStripes
	t := &Tracer{service: service}
	for i := range t.stripes {
		t.stripes[i].buf = make([]Span, per)
	}
	t.slowBuf = make([]Root, 64)
	return t
}

// Service returns the service name stamped on recorded spans.
func (t *Tracer) Service() string {
	if t == nil {
		return ""
	}
	return t.service
}

// SetSampling configures head sampling and slow-root capture. rate is
// the probability (clamped to [0,1]) that a fresh root — an operation
// with no inbound trace context — starts a sampled trace. slow, when
// positive, traces every root and records the ones that exceed it in
// the slow index, so tail outliers are captured even at rate 0.
// Requests arriving with a trace context are always recorded; the
// sampling decision was the root's to make.
func (t *Tracer) SetSampling(rate float64, slow time.Duration) {
	if t == nil {
		return
	}
	var th uint64
	switch {
	case rate >= 1:
		th = math.MaxUint64
	case rate > 0:
		th = uint64(rate * float64(math.MaxUint64))
	}
	t.sample.Store(th)
	t.slow.Store(int64(slow))
}

func (t *Tracer) sampleHit() bool {
	if t.slow.Load() > 0 {
		return true
	}
	th := t.sample.Load()
	if th == 0 {
		return false
	}
	if th == math.MaxUint64 {
		return true
	}
	return rand.Uint64() < th
}

// Active is an in-flight span handed out by Start. It is a value, not
// a pointer: the zero Active (not recording) costs nothing to carry
// and Finish on it is a no-op.
type Active struct {
	t      *Tracer
	trace  ID
	id     SpanID
	parent SpanID
	op     string
	start  time.Time
}

// Recording reports whether the span will be recorded on Finish.
func (a Active) Recording() bool { return a.t != nil }

// Trace returns the trace this span belongs to (zero if not recording).
func (a Active) Trace() ID { return a.trace }

// Start opens a span for op. If ctx already carries a trace context
// the span joins that trace as a child of the current span; otherwise
// the tracer's head-sampling decides whether a fresh root trace
// begins. When not recording, the original ctx and a zero Active come
// back with no allocation.
func (t *Tracer) Start(ctx context.Context, op string) (context.Context, Active) {
	if t == nil {
		return ctx, Active{}
	}
	tc, ok := FromContext(ctx)
	if !ok {
		if !t.sampleHit() {
			return ctx, Active{}
		}
		tc = Context{Trace: NewID()}
	}
	a := Active{
		t:      t,
		trace:  tc.Trace,
		id:     newSpanID(),
		parent: tc.Span,
		op:     op,
		start:  time.Now(),
	}
	return NewContext(ctx, Context{Trace: tc.Trace, Span: a.id}), a
}

// Finish records the span. A nil err records success; otherwise the
// error message is kept with the generic error code.
func (a Active) Finish(err error) {
	if a.t == nil {
		return
	}
	var code uint16
	msg := ""
	if err != nil {
		code = 1
		msg = err.Error()
	}
	a.FinishCode(code, msg)
}

// FinishCode records the span with an explicit protocol status code —
// the RPC server uses this so a span's error matches what went on the
// wire.
func (a Active) FinishCode(code uint16, msg string) {
	t := a.t
	if t == nil {
		return
	}
	d := time.Since(a.start)
	t.stripes[uint64(a.id)%nStripes].record(Span{
		Trace:    a.trace,
		ID:       a.id,
		Parent:   a.parent,
		Service:  t.service,
		Op:       a.op,
		Start:    a.start,
		Duration: d,
		Code:     code,
		Err:      msg,
	})
	t.recorded.Add(1)
	if a.parent == 0 {
		if s := t.slow.Load(); s > 0 && d >= time.Duration(s) {
			t.recordSlow(Root{
				Trace:    a.trace,
				Service:  t.service,
				Op:       a.op,
				Start:    a.start,
				Duration: d,
				Err:      msg,
			})
		}
	}
}

func (t *Tracer) recordSlow(r Root) {
	t.slowMu.Lock()
	t.slowBuf[t.slowNext] = r
	t.slowNext++
	if t.slowNext == len(t.slowBuf) {
		t.slowNext = 0
		t.slowFull = true
	}
	t.slowMu.Unlock()
}

// Spans returns every retained span of trace id, unordered.
func (t *Tracer) Spans(id ID) []Span {
	if t == nil {
		return nil
	}
	var out []Span
	for i := range t.stripes {
		out = t.stripes[i].collect(id, out)
	}
	return out
}

// SlowRoots returns the retained slow-root index entries, most recent
// last.
func (t *Tracer) SlowRoots() []Root {
	if t == nil {
		return nil
	}
	t.slowMu.Lock()
	defer t.slowMu.Unlock()
	var out []Root
	if t.slowFull {
		out = append(out, t.slowBuf[t.slowNext:]...)
	}
	out = append(out, t.slowBuf[:t.slowNext]...)
	return out
}

// Recorded returns the total number of spans ever recorded — the
// leak-check hook: a workload that should produce no spans must leave
// this at zero.
func (t *Tracer) Recorded() uint64 {
	if t == nil {
		return 0
	}
	return t.recorded.Load()
}

// Exporter aggregates the tracers of one process (or one in-process
// cluster) behind a single query surface; the HTTP side lives in
// http.go.
type Exporter struct {
	mu      sync.Mutex
	tracers []*Tracer
}

// NewExporter returns an empty exporter.
func NewExporter() *Exporter { return &Exporter{} }

// Register adds t to the exporter. Nil tracers are ignored.
func (e *Exporter) Register(t *Tracer) {
	if t == nil {
		return
	}
	e.mu.Lock()
	e.tracers = append(e.tracers, t)
	e.mu.Unlock()
}

func (e *Exporter) snapshot() []*Tracer {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]*Tracer(nil), e.tracers...)
}

// Spans returns every retained span of trace id across all registered
// tracers, sorted by start time.
func (e *Exporter) Spans(id ID) []Span {
	var out []Span
	for _, t := range e.snapshot() {
		out = append(out, t.Spans(id)...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// SlowRoots returns the slow-root entries of all registered tracers,
// sorted by start time.
func (e *Exporter) SlowRoots() []Root {
	var out []Root
	for _, t := range e.snapshot() {
		out = append(out, t.SlowRoots()...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}
