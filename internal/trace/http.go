package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// spansResponse is the wire shape of a /trace query.
type spansResponse struct {
	Spans []Span `json:"spans"`
}

// slowResponse is the wire shape of a /trace?slow=1 query.
type slowResponse struct {
	Slow []Root `json:"slow"`
}

// ServeHTTP answers trace queries: ?id=<32-hex> returns that trace's
// retained spans, ?slow=1 returns the slow-root index. It is mounted
// at /trace next to the metrics exporter.
func (e *Exporter) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	if q.Get("slow") != "" {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(slowResponse{Slow: e.SlowRoots()})
		return
	}
	idStr := q.Get("id")
	if idStr == "" {
		http.Error(w, "trace: want ?id=<32-hex-digit trace id> or ?slow=1", http.StatusBadRequest)
		return
	}
	id, err := ParseID(idStr)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(spansResponse{Spans: e.Spans(id)})
}

// Handler returns an http.Handler with the exporter mounted at /trace.
func (e *Exporter) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/trace", e)
	return mux
}

// normalize turns "host:port" or a full URL into the /trace query URL.
func normalize(endpoint string) string {
	if !strings.Contains(endpoint, "://") {
		endpoint = "http://" + endpoint
	}
	if !strings.Contains(endpoint, "/trace") {
		endpoint = strings.TrimRight(endpoint, "/") + "/trace"
	}
	return endpoint
}

func fetchJSON(url string, out any) error {
	cl := &http.Client{Timeout: 5 * time.Second}
	resp, err := cl.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("trace: %s: %s: %s", url, resp.Status, strings.TrimSpace(string(body)))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Fetch polls one endpoint ("host:port" or URL) for trace id's spans.
func Fetch(endpoint string, id ID) ([]Span, error) {
	var r spansResponse
	if err := fetchJSON(normalize(endpoint)+"?id="+id.String(), &r); err != nil {
		return nil, err
	}
	return r.Spans, nil
}

// FetchSlow polls one endpoint for its slow-root index.
func FetchSlow(endpoint string) ([]Root, error) {
	var r slowResponse
	if err := fetchJSON(normalize(endpoint)+"?slow=1", &r); err != nil {
		return nil, err
	}
	return r.Slow, nil
}
