// Package trace is the dependency-free distributed tracing subsystem:
// 128-bit trace IDs ride the RPC frame between services, each process
// records the spans it executes into a bounded in-memory ring, and a
// stitcher reassembles the per-service fragments into one causal tree.
//
// The design mirrors the metrics plane: recording is nil-safe and the
// not-sampled path allocates nothing, so tracing stays compiled into
// every hot path at zero cost until a request is actually sampled.
// There is no collector daemon — `bsfsctl trace <id>` polls every
// service's /trace endpoint and stitches client-side, which is enough
// for a deployment of this size and keeps the subsystem dependency
// free.
package trace

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"strconv"
	"time"
)

// ID is a 128-bit trace identifier shared by every span of one request.
type ID struct {
	Hi, Lo uint64
}

// NewID returns a random non-zero trace ID. Collisions across the
// lifetime of a ring buffer are what matter here, not global
// uniqueness, so a PRNG is plenty.
func NewID() ID {
	for {
		id := ID{Hi: rand.Uint64(), Lo: rand.Uint64()}
		if !id.IsZero() {
			return id
		}
	}
}

// IsZero reports whether id is the absent trace.
func (id ID) IsZero() bool { return id.Hi == 0 && id.Lo == 0 }

// String renders the ID as 32 lowercase hex digits.
func (id ID) String() string { return fmt.Sprintf("%016x%016x", id.Hi, id.Lo) }

// ParseID parses the 32-hex-digit form produced by String.
func ParseID(s string) (ID, error) {
	if len(s) != 32 {
		return ID{}, fmt.Errorf("trace: malformed trace id %q (want 32 hex digits)", s)
	}
	hi, err := strconv.ParseUint(s[:16], 16, 64)
	if err != nil {
		return ID{}, fmt.Errorf("trace: malformed trace id %q: %v", s, err)
	}
	lo, err := strconv.ParseUint(s[16:], 16, 64)
	if err != nil {
		return ID{}, fmt.Errorf("trace: malformed trace id %q: %v", s, err)
	}
	return ID{Hi: hi, Lo: lo}, nil
}

// MarshalJSON encodes the ID as its hex string: 64-bit halves do not
// survive JSON numbers (float64 mantissa), and the string form is what
// operators paste into bsfsctl anyway.
func (id ID) MarshalJSON() ([]byte, error) { return json.Marshal(id.String()) }

// UnmarshalJSON decodes the hex string form.
func (id *ID) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	v, err := ParseID(s)
	if err != nil {
		return err
	}
	*id = v
	return nil
}

// SpanID is a 64-bit span identifier, unique within one trace. It
// marshals as hex for the same mantissa reason as ID.
type SpanID uint64

// String renders the span ID as 16 lowercase hex digits.
func (s SpanID) String() string { return fmt.Sprintf("%016x", uint64(s)) }

// MarshalJSON encodes the span ID as its hex string.
func (s SpanID) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// UnmarshalJSON decodes the hex string form.
func (s *SpanID) UnmarshalJSON(b []byte) error {
	var str string
	if err := json.Unmarshal(b, &str); err != nil {
		return err
	}
	v, err := strconv.ParseUint(str, 16, 64)
	if err != nil {
		return fmt.Errorf("trace: malformed span id %q: %v", str, err)
	}
	*s = SpanID(v)
	return nil
}

func newSpanID() SpanID {
	for {
		if id := SpanID(rand.Uint64()); id != 0 {
			return id
		}
	}
}

// Context is the trace state carried across process boundaries: which
// trace the request belongs to and which span is the current parent.
// Span 0 means "at the root, no span started yet" — the first span
// opened under such a context becomes a root of the stitched tree.
type Context struct {
	Trace ID
	Span  SpanID
}

type ctxKey struct{}

// NewContext returns a copy of ctx carrying tc.
func NewContext(ctx context.Context, tc Context) context.Context {
	return context.WithValue(ctx, ctxKey{}, tc)
}

// FromContext extracts the trace context, if any.
func FromContext(ctx context.Context) (Context, bool) {
	tc, ok := ctx.Value(ctxKey{}).(Context)
	return tc, ok
}

// WithRoot force-samples: it returns ctx tagged with a fresh trace at
// its root, plus the trace ID for later lookup. Every RPC issued under
// the returned context is traced end to end regardless of any tracer's
// sampling rate — this is the hook tests and the blaster use to tag
// individual operations.
func WithRoot(ctx context.Context) (context.Context, ID) {
	id := NewID()
	return NewContext(ctx, Context{Trace: id}), id
}

// Span is one recorded unit of work: an RPC handled by a service, or a
// client-side operation that fans out into RPCs. Parent 0 marks a root.
type Span struct {
	Trace    ID            `json:"trace"`
	ID       SpanID        `json:"id"`
	Parent   SpanID        `json:"parent,omitempty"`
	Service  string        `json:"service"`
	Op       string        `json:"op"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	Code     uint16        `json:"code,omitempty"`
	Err      string        `json:"err,omitempty"`
}
